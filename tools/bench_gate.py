#!/usr/bin/env python3
"""Bench-regression gate over a committed throughput history.

Usage: bench_gate.py BENCH_sweep.json bench/BENCH_history.json [--no-append]

Replaces the old hardcoded 4,000 cells/s constant (docs/PERF.md "CI
regression gate"): the floor is now derived from the committed history —
80% of the median serial cells/s over the most recent five entries.
The median rides out one-off runner jitter in either direction; the 20%
margin absorbs steady-state variance between runners.

Checks, in order:
  1. the run's `identical` flag is true (parallel == serial output);
  2. if the run used the result cache, hit+dedup cells must not cover the
     whole sweep — a fully cache-served run measures file reads, not the
     engine, and must not enter the history;
  3. serial_cells_per_second >= 0.8 * median(last <= 5 history entries).

On success the run is appended to the history file (up to a cap of 50
entries, oldest dropped) so the floor tracks intentional throughput
changes without hand-editing a constant. Commit the updated history when
a PR intentionally shifts performance. --no-append gates without
recording (e.g. exploratory local runs).

Exit codes: 0 pass, 1 regression/divergence, 2 usage or malformed input.
"""

import json
import statistics
import sys

HISTORY_WINDOW = 5
HISTORY_CAP = 50
FLOOR_FRACTION = 0.8


def fail(message: str) -> None:
    print(f"bench_gate: {message}", file=sys.stderr)
    sys.exit(1)


def main(argv: list[str]) -> int:
    args = [a for a in argv[1:] if a != "--no-append"]
    append = "--no-append" not in argv[1:]
    if len(args) != 2:
        print(__doc__, file=sys.stderr)
        return 2

    bench_path, history_path = args
    try:
        with open(bench_path) as f:
            bench = json.load(f)
        with open(history_path) as f:
            history = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_gate: {e}", file=sys.stderr)
        return 2
    if not isinstance(history, list) or not history:
        print(f"bench_gate: {history_path} must be a non-empty JSON list",
              file=sys.stderr)
        return 2

    if not bench.get("identical", False):
        fail("parallel sweep diverged from serial (identical=false)")

    cache = bench.get("report", {}).get("cache", {})
    served = cache.get("hit_cells", 0) + cache.get("dedup_cells", 0)
    cells = bench.get("cells", 0)
    if cells and served >= cells:
        fail(
            f"run was fully cache-served ({served}/{cells} cells) — "
            "throughput measures the cache, not the engine; gate with "
            "JAVAFLOW_CACHE=off or a cold cache dir"
        )

    got = bench["serial_cells_per_second"]
    window = [e["serial_cells_per_second"] for e in history[-HISTORY_WINDOW:]]
    floor = FLOOR_FRACTION * statistics.median(window)
    print(
        f"bench_gate: serial {got:.1f} cells/s, floor {floor:.1f} "
        f"(median of last {len(window)} of {len(history)} entries, "
        f"scheduler {bench.get('scheduler', '?')})"
    )
    if got < floor:
        fail(f"serial sweep regressed: {got:.1f} < {floor:.1f} cells/s")

    if append:
        meta = bench.get("metadata", {})
        history.append(
            {
                "git_sha": meta.get("git_sha", "unknown"),
                "timestamp_utc": meta.get("timestamp_utc", "unknown"),
                "stride": bench.get("stride", 0),
                "scheduler": bench.get("scheduler", "unknown"),
                "serial_cells_per_second": got,
                "parallel_cells_per_second": bench.get(
                    "parallel_cells_per_second", 0.0
                ),
            }
        )
        history = history[-HISTORY_CAP:]
        with open(history_path, "w") as f:
            json.dump(history, f, indent=2)
            f.write("\n")
        print(f"bench_gate: appended run to {history_path} "
              f"({len(history)} entries)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
