#!/usr/bin/env python3
"""Bench-regression gate over a committed throughput history.

Usage: bench_gate.py BENCH_sweep.json bench/BENCH_history.json
                     [--no-append] [--snapshot FILE.jfs]
                     [--serving BENCH_serving.json]
       bench_gate.py --serving BENCH_serving.json

Replaces the old hardcoded 4,000 cells/s constant (docs/PERF.md "CI
regression gate"): the floor is now derived from the committed history —
80% of the median serial cells/s over the most recent five entries.
The median rides out one-off runner jitter in either direction; the 20%
margin absorbs steady-state variance between runners.

Checks, in order:
  1. the run's `identical` flag is true (parallel == serial output);
  2. if the run used the result cache, hit+dedup cells must not cover the
     whole sweep — a fully cache-served run measures file reads, not the
     engine, and must not enter the history;
  3. serial_cells_per_second >= 0.8 * median(last <= 5 history entries).

On success the run is appended to the history file (up to a cap of 50
entries, oldest dropped) so the floor tracks intentional throughput
changes without hand-editing a constant. Commit the updated history when
a PR intentionally shifts performance. --no-append gates without
recording (e.g. exploratory local runs).

--snapshot FILE.jfs records the run-snapshot's integrity digest (the
trailing FNV-64 checksum of the .jfs file, as printed by
`javaflow_explain --digest`) alongside cells/s in the appended history
entry, tying each throughput point to the exact simulation results that
produced it.

--serving BENCH_serving.json additionally gates the multi-tenant
serving benchmark (docs/SERVING.md): the run's `identical` flag
(digest-equal reruns on every config) and `overlap_ok` flag (non-zero
Chapter 8 superposition witness on the wider fabrics) must both be
true, and `requests_per_second` must clear 80% of the median over the
history entries that already carry `serving_requests_per_second`
(entries predating the serving bench are skipped; with none present
the throughput is recorded without gating). The appended history entry
then carries `serving_requests_per_second`. With `--serving` alone (no
positional arguments) only the serving checks run and nothing is
appended.

Exit codes: 0 pass, 1 regression/divergence, 2 usage or malformed input.
"""

import json
import statistics
import struct
import sys

HISTORY_WINDOW = 5
HISTORY_CAP = 50
FLOOR_FRACTION = 0.8


def fail(message: str) -> None:
    print(f"bench_gate: {message}", file=sys.stderr)
    sys.exit(1)


def snapshot_digest(path: str) -> str:
    """Trailing FNV-64 checksum of a .jfs snapshot, as 16 hex digits."""
    with open(path, "rb") as f:
        data = f.read()
    if len(data) < 8:
        raise ValueError(f"{path}: too short to be a snapshot")
    return format(struct.unpack("<Q", data[-8:])[0], "016x")


def check_serving(serving_path: str, history: list | None) -> float:
    """Gates BENCH_serving.json; returns its aggregate requests/s."""
    try:
        with open(serving_path) as f:
            serving = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_gate: {e}", file=sys.stderr)
        sys.exit(2)

    if not serving.get("identical", False):
        fail("serving rerun digests diverged (identical=false)")
    if not serving.get("overlap_ok", False):
        fail("serving run never overlapped residencies (overlap_ok=false)")

    rps = serving.get("requests_per_second", 0.0)
    window = [
        e["serving_requests_per_second"]
        for e in (history or [])[-HISTORY_WINDOW:]
        if "serving_requests_per_second" in e
    ]
    if window:
        floor = FLOOR_FRACTION * statistics.median(window)
        print(
            f"bench_gate: serving {rps:.1f} req/s, floor {floor:.1f} "
            f"(median of {len(window)} serving entries)"
        )
        if rps < floor:
            fail(f"serving throughput regressed: {rps:.1f} < {floor:.1f} "
                 "req/s")
    else:
        print(f"bench_gate: serving {rps:.1f} req/s "
              "(no serving history yet, recording only)")
    return rps


def main(argv: list[str]) -> int:
    rest = argv[1:]
    append = "--no-append" not in rest
    snapshot_path = None
    serving_path = None
    args = []
    i = 0
    while i < len(rest):
        if rest[i] == "--no-append":
            pass
        elif rest[i] == "--snapshot":
            i += 1
            if i >= len(rest):
                print(__doc__, file=sys.stderr)
                return 2
            snapshot_path = rest[i]
        elif rest[i] == "--serving":
            i += 1
            if i >= len(rest):
                print(__doc__, file=sys.stderr)
                return 2
            serving_path = rest[i]
        else:
            args.append(rest[i])
        i += 1
    if len(args) == 0 and serving_path is not None:
        # Standalone serving gate: no history to compare or append to.
        check_serving(serving_path, None)
        return 0
    if len(args) != 2:
        print(__doc__, file=sys.stderr)
        return 2

    bench_path, history_path = args
    try:
        with open(bench_path) as f:
            bench = json.load(f)
        with open(history_path) as f:
            history = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_gate: {e}", file=sys.stderr)
        return 2
    if not isinstance(history, list) or not history:
        print(f"bench_gate: {history_path} must be a non-empty JSON list",
              file=sys.stderr)
        return 2

    if not bench.get("identical", False):
        fail("parallel sweep diverged from serial (identical=false)")

    cache = bench.get("report", {}).get("cache", {})
    served = cache.get("hit_cells", 0) + cache.get("dedup_cells", 0)
    cells = bench.get("cells", 0)
    if cells and served >= cells:
        fail(
            f"run was fully cache-served ({served}/{cells} cells) — "
            "throughput measures the cache, not the engine; gate with "
            "JAVAFLOW_CACHE=off or a cold cache dir"
        )

    got = bench["serial_cells_per_second"]
    window = [e["serial_cells_per_second"] for e in history[-HISTORY_WINDOW:]]
    floor = FLOOR_FRACTION * statistics.median(window)
    print(
        f"bench_gate: serial {got:.1f} cells/s, floor {floor:.1f} "
        f"(median of last {len(window)} of {len(history)} entries, "
        f"scheduler {bench.get('scheduler', '?')})"
    )
    if got < floor:
        fail(f"serial sweep regressed: {got:.1f} < {floor:.1f} cells/s")

    serving_rps = None
    if serving_path is not None:
        serving_rps = check_serving(serving_path, history)

    digest = None
    if snapshot_path is not None:
        try:
            digest = snapshot_digest(snapshot_path)
        except (OSError, ValueError) as e:
            print(f"bench_gate: {e}", file=sys.stderr)
            return 2
        print(f"bench_gate: snapshot digest {digest}")

    if append:
        meta = bench.get("metadata", {})
        entry = {
            "git_sha": meta.get("git_sha", "unknown"),
            "timestamp_utc": meta.get("timestamp_utc", "unknown"),
            "stride": bench.get("stride", 0),
            "scheduler": bench.get("scheduler", "unknown"),
            "serial_cells_per_second": got,
            "parallel_cells_per_second": bench.get(
                "parallel_cells_per_second", 0.0
            ),
        }
        if digest is not None:
            entry["snapshot_digest"] = digest
        if serving_rps is not None:
            entry["serving_requests_per_second"] = serving_rps
        history.append(entry)
        history = history[-HISTORY_CAP:]
        with open(history_path, "w") as f:
            json.dump(history, f, indent=2)
            f.write("\n")
        print(f"bench_gate: appended run to {history_path} "
              f"({len(history)} entries)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
