// javaflow_explain — critical-path attribution CLI (docs/OBSERVABILITY.md).
//
// Three modes over src/obs/critpath + src/obs/snapshot:
//
//   javaflow_explain <method> [--config <name>] [--scenario bp1|bp2]
//     Runs one cell with the flight recorder and prints the realized
//     critical path: per-category attribution (summing exactly to the
//     run's ticks), the delta against the static lower bound from
//     analysis::compute_bounds, and the slowest on-path hops.
//
//   javaflow_explain --snapshot <out.jfs> [--stride <n>] [--threads <n>]
//     Runs an attribution sweep over the corpus (all Table 15 configs ×
//     both scenarios) and writes a versioned, checksummed snapshot file.
//     Deterministic: the same corpus and stride produce byte-identical
//     files for every thread count.
//
//   javaflow_explain --diff <a.jfs> <b.jfs> [--json] [--max-rows <n>]
//     Diffs two snapshots. Exit codes signal drift for CI wiring:
//     0 = identical, 1 = drift (or incomparable), 2 = usage/IO error.
//
//   javaflow_explain --digest <file.jfs>
//     Prints the snapshot's integrity digest (the identity bench_gate.py
//     records in BENCH_history.json).
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/explain.hpp"
#include "obs/snapshot.hpp"
#include "sim/config.hpp"
#include "workloads/corpus.hpp"

namespace {

using javaflow::bytecode::Method;

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s <method> [--config <name>] [--scenario bp1|bp2]\n"
      "       [--max-steps <n>]\n"
      "       %s --snapshot <out.jfs> [--stride <n>] [--threads <n>]\n"
      "       %s --diff <a.jfs> <b.jfs> [--json] [--max-rows <n>]\n"
      "       %s --digest <file.jfs>\n"
      "       %s --list [substring]\n",
      argv0, argv0, argv0, argv0, argv0);
  return 2;
}

const Method* find_method(const javaflow::workloads::Corpus& corpus,
                          const std::string& name) {
  for (const Method& m : corpus.program.methods) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

void suggest(const javaflow::workloads::Corpus& corpus,
             const std::string& name) {
  int shown = 0;
  for (const Method& m : corpus.program.methods) {
    if (m.name.find(name) == std::string::npos) continue;
    if (shown == 0) std::fprintf(stderr, "did you mean:\n");
    std::fprintf(stderr, "  %s\n", m.name.c_str());
    if (++shown == 10) break;
  }
}

long parse_count(const char* v, const char* flag) {
  char* end = nullptr;
  const long n = std::strtol(v, &end, 10);
  if (end == v || *end != '\0' || n < 0) {
    std::fprintf(stderr, "%s expects a non-negative integer, got %s\n",
                 flag, v);
    std::exit(2);
  }
  return n;
}

int run_diff(const std::string& a_path, const std::string& b_path,
             bool json, std::size_t max_rows) {
  javaflow::obs::Snapshot a, b;
  if (!javaflow::obs::load_snapshot(a_path, a)) {
    std::fprintf(stderr, "cannot load snapshot: %s\n", a_path.c_str());
    return 2;
  }
  if (!javaflow::obs::load_snapshot(b_path, b)) {
    std::fprintf(stderr, "cannot load snapshot: %s\n", b_path.c_str());
    return 2;
  }
  const javaflow::obs::SnapshotDiff d = javaflow::obs::diff_snapshots(a, b);
  if (json) {
    javaflow::obs::write_diff_json(std::cout, d);
  } else {
    javaflow::obs::write_diff_text(std::cout, d, max_rows);
  }
  std::cout.flush();
  return d.identical ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string method_name, config_name = "Compact2", scenario_name = "bp1";
  std::string snapshot_path, diff_a, diff_b, digest_path;
  long stride = 1, threads = 1, max_steps = 40, max_rows = 20;
  bool json = false, list = false;
  std::string list_filter;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--list") {
      list = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') list_filter = argv[++i];
    } else if (arg == "--config") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      config_name = v;
    } else if (arg == "--scenario") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      scenario_name = v;
    } else if (arg == "--snapshot") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      snapshot_path = v;
    } else if (arg == "--diff") {
      const char* a = value();
      const char* b = value();
      if (a == nullptr || b == nullptr) return usage(argv[0]);
      diff_a = a;
      diff_b = b;
    } else if (arg == "--digest") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      digest_path = v;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--stride") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      stride = parse_count(v, "--stride");
    } else if (arg == "--threads") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      threads = parse_count(v, "--threads");
    } else if (arg == "--max-steps") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      max_steps = parse_count(v, "--max-steps");
    } else if (arg == "--max-rows") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      max_rows = parse_count(v, "--max-rows");
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return usage(argv[0]);
    } else if (method_name.empty()) {
      method_name = arg;
    } else {
      return usage(argv[0]);
    }
  }

  if (!diff_a.empty()) {
    return run_diff(diff_a, diff_b, json,
                    static_cast<std::size_t>(max_rows));
  }

  if (!digest_path.empty()) {
    std::ifstream f(digest_path, std::ios::binary);
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", digest_path.c_str());
      return 2;
    }
    const std::string bytes((std::istreambuf_iterator<char>(f)),
                            std::istreambuf_iterator<char>());
    javaflow::obs::Snapshot snap;
    if (!javaflow::obs::deserialize_snapshot(bytes, snap)) {
      std::fprintf(stderr, "not a valid snapshot: %s\n",
                   digest_path.c_str());
      return 2;
    }
    std::printf("%016" PRIx64 "\n", javaflow::obs::snapshot_digest(bytes));
    return 0;
  }

  const javaflow::workloads::Corpus corpus =
      javaflow::workloads::make_corpus({});

  if (list) {
    for (const Method& m : corpus.program.methods) {
      if (!list_filter.empty() &&
          m.name.find(list_filter) == std::string::npos) {
        continue;
      }
      std::printf("%s (%zu insts, %s)\n", m.name.c_str(), m.code.size(),
                  m.benchmark.c_str());
    }
    return 0;
  }

  if (!snapshot_path.empty()) {
    javaflow::analysis::SnapshotBuildOptions options;
    options.stride = static_cast<int>(stride > 0 ? stride : 1);
    options.threads = static_cast<int>(threads);
    options.allow_oversubscribe = true;
    const javaflow::obs::Snapshot snap =
        javaflow::analysis::build_snapshot(corpus, options);
    if (!javaflow::obs::save_snapshot(snap, snapshot_path)) {
      std::fprintf(stderr, "cannot write %s\n", snapshot_path.c_str());
      return 2;
    }
    const std::string bytes = javaflow::obs::serialize_snapshot(snap);
    std::size_t attributed = 0;
    for (const javaflow::obs::SnapshotCell& c : snap.cells) {
      if (c.attributed) ++attributed;
    }
    std::fprintf(stderr,
                 "wrote %s: %zu cells (%zu attributed), stride %ld, "
                 "digest %016" PRIx64 "\n",
                 snapshot_path.c_str(), snap.cells.size(), attributed,
                 stride, javaflow::obs::snapshot_digest(bytes));
    return 0;
  }

  if (method_name.empty()) return usage(argv[0]);

  const Method* m = find_method(corpus, method_name);
  if (m == nullptr) {
    std::fprintf(stderr, "unknown method: %s\n", method_name.c_str());
    suggest(corpus, method_name);
    return 2;
  }

  javaflow::sim::BranchPredictor::Scenario scenario;
  if (scenario_name == "bp1" || scenario_name == "BP1") {
    scenario = javaflow::sim::BranchPredictor::Scenario::BP1;
  } else if (scenario_name == "bp2" || scenario_name == "BP2") {
    scenario = javaflow::sim::BranchPredictor::Scenario::BP2;
  } else {
    std::fprintf(stderr, "unknown scenario: %s (expected bp1 or bp2)\n",
                 scenario_name.c_str());
    return 2;
  }

  javaflow::sim::MachineConfig config;
  try {
    config = javaflow::sim::config_by_name(config_name);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }

  const javaflow::analysis::Explanation ex =
      javaflow::analysis::explain_method(*m, corpus.program.pool, config,
                                         scenario);
  std::vector<std::string> labels;
  labels.reserve(m->code.size());
  for (std::size_t i = 0; i < m->code.size(); ++i) {
    labels.push_back(std::to_string(i) + " " +
                     std::string(javaflow::bytecode::op_name(
                         m->code[i].op)));
  }
  javaflow::analysis::write_explanation_text(
      std::cout, ex, labels, static_cast<std::size_t>(max_steps));
  std::cout.flush();
  return ex.ok ? 0 : 1;
}
