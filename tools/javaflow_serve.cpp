// javaflow_serve — multi-tenant serving CLI (docs/SERVING.md).
//
// Drives a deterministic seeded request stream over a corpus slice on
// one (or all six) Table 15 configurations through the serving frontend
// (serve::serve): admission queueing, occupancy-aware placement with
// canonical-plan sharing, idle-LRU eviction, and per-request latency
// accounting on the shared-fabric MultiEngine.
//
// Usage:
//   javaflow_serve [--config <name>|all] [--seed <n>] [--requests <n>]
//                  [--mean-gap <ticks>] [--hot-fraction <n/256>]
//                  [--hot <n>] [--methods <n>] [--out <file>] [--digest]
//
// Defaults: --config Compact2, --seed 1, --requests 64, --mean-gap 64,
// --hot-fraction 128, --hot 4, --methods = the hand-written kernels,
// --out - (stdout). --digest prints one "<config> <digest>" line per
// configuration to stdout instead of JSON — the CI smoke step compares
// these across runs and thread counts. Exit codes: 0 ok, 1 bad usage.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "serve/server.hpp"
#include "sim/config.hpp"
#include "workloads/corpus.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--config <name>|all] [--seed <n>] "
               "[--requests <n>] [--mean-gap <ticks>]\n"
               "       [--hot-fraction <n/256>] [--hot <n>] "
               "[--methods <n>] [--out <file>] [--digest]\n",
               argv0);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string config_name = "Compact2";
  std::string out_path = "-";
  javaflow::serve::RequestStreamOptions stream;
  bool digest_only = false;
  long methods_limit = -1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (arg == "--config") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      config_name = v;
    } else if (arg == "--seed") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      stream.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--requests") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      stream.num_requests = static_cast<std::int32_t>(std::atol(v));
    } else if (arg == "--mean-gap") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      stream.mean_gap_ticks = std::atol(v);
    } else if (arg == "--hot-fraction") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      stream.hot_fraction_256 = static_cast<std::int32_t>(std::atol(v));
    } else if (arg == "--hot") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      stream.hot_methods = static_cast<std::int32_t>(std::atol(v));
    } else if (arg == "--methods") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      methods_limit = std::atol(v);
    } else if (arg == "--out") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      out_path = v;
    } else if (arg == "--digest") {
      digest_only = true;
    } else {
      return usage(argv[0]);
    }
  }

  std::vector<javaflow::sim::MachineConfig> configs;
  if (config_name == "all") {
    configs = javaflow::sim::table15_configs();
  } else {
    try {
      configs.push_back(javaflow::sim::config_by_name(config_name));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
  }

  const javaflow::workloads::Corpus corpus = javaflow::workloads::make_corpus(
      {/*seed=*/20141215, /*total_methods=*/0});
  std::size_t n = corpus.program.methods.size();
  if (methods_limit >= 0) {
    n = std::min(n, static_cast<std::size_t>(methods_limit));
  }
  std::vector<std::int32_t> methods;
  for (std::size_t i = 0; i < n; ++i) {
    methods.push_back(static_cast<std::int32_t>(i));
  }
  if (methods.empty()) {
    std::fprintf(stderr, "no methods to serve\n");
    return 1;
  }

  std::ofstream file;
  std::ostream* os = &std::cout;
  if (!digest_only && out_path != "-") {
    file.open(out_path);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
      return 1;
    }
    os = &file;
  }

  if (!digest_only) *os << "{\"tool\": \"javaflow_serve\", \"reports\": [";
  bool first = true;
  for (const javaflow::sim::MachineConfig& cfg : configs) {
    const javaflow::serve::ServeReport rep =
        javaflow::serve::serve(corpus.program, methods, cfg, stream);
    if (digest_only) {
      std::printf("%s %llu\n", cfg.name.c_str(),
                  static_cast<unsigned long long>(rep.digest()));
      continue;
    }
    if (!first) *os << ", ";
    first = false;
    rep.write_json(*os);
  }
  if (!digest_only) *os << "]}\n";
  return 0;
}
