// javaflow_lint — static verification of the corpus' dataflow graphs,
// placements and token ordering (rule catalogue in docs/LINT.md).
//
//   javaflow_lint                          lint the full 1605-method corpus
//                                          on every Table 15 configuration
//   javaflow_lint --config Compact2        one configuration only
//   javaflow_lint --json                   machine-readable findings
//   javaflow_lint --file corpus.jfasm      lint a program image instead
//
// Exits 0 when no error-severity finding is raised, 1 otherwise (warnings
// never fail the run), 2 on usage errors.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/lint.hpp"
#include "bytecode/textio.hpp"
#include "sim/config.hpp"
#include "workloads/corpus.hpp"

using namespace javaflow;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: javaflow_lint [options]\n"
      "  --config NAME     lint placements on one Table 15 configuration\n"
      "                    (repeatable; default: all six)\n"
      "  --file PATH       lint a .jfasm program image instead of the\n"
      "                    built-in corpus\n"
      "  --kernels-only    restrict the corpus to the hand-written kernels\n"
      "  --methods N       corpus size (default 1605, Table 16)\n"
      "  --threads N       worker threads (0 = auto, default; 1 = serial)\n"
      "  --buffer-cap N    per-node operand buffer capacity (JF-E005)\n"
      "  --fanout-cap N    consumer-address array limit (JF-E006)\n"
      "  --no-warnings     suppress warning-severity rules\n"
      "  --json            emit the report as JSON on stdout\n"
      "  --quiet           summary only (text mode)\n");
  return 2;
}

bool parse_int(const char* s, int& out) {
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (end == s || *end != '\0') return false;
  out = static_cast<int>(v);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> config_names;
  std::string file;
  bool kernels_only = false;
  bool json = false;
  bool quiet = false;
  int methods = 1605;
  int threads = 0;
  analysis::LintOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    int value = 0;
    if (arg == "--config") {
      const char* v = next();
      if (v == nullptr) return usage();
      config_names.emplace_back(v);
    } else if (arg == "--file") {
      const char* v = next();
      if (v == nullptr) return usage();
      file = v;
    } else if (arg == "--kernels-only") {
      kernels_only = true;
    } else if (arg == "--methods") {
      const char* v = next();
      if (v == nullptr || !parse_int(v, methods)) return usage();
    } else if (arg == "--threads") {
      const char* v = next();
      if (v == nullptr || !parse_int(v, threads)) return usage();
    } else if (arg == "--buffer-cap") {
      const char* v = next();
      if (v == nullptr || !parse_int(v, value)) return usage();
      options.node_buffer_capacity = value;
    } else if (arg == "--fanout-cap") {
      const char* v = next();
      if (v == nullptr || !parse_int(v, value)) return usage();
      options.mesh_fanout_limit = value;
    } else if (arg == "--no-warnings") {
      options.warnings = false;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      std::fprintf(stderr, "javaflow_lint: unknown option '%s'\n",
                   arg.c_str());
      return usage();
    }
  }

  std::vector<sim::MachineConfig> configs;
  try {
    if (config_names.empty()) {
      configs = sim::table15_configs();
    } else {
      for (const std::string& name : config_names) {
        configs.push_back(sim::config_by_name(name));
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "javaflow_lint: %s\n", e.what());
    return 2;
  }

  bytecode::Program program;
  if (!file.empty()) {
    std::ifstream in(file);
    if (!in) {
      std::fprintf(stderr, "javaflow_lint: cannot open %s\n", file.c_str());
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    try {
      program = bytecode::parse_program(buf.str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "javaflow_lint: %s: %s\n", file.c_str(), e.what());
      return 2;
    }
  } else {
    workloads::CorpusOptions corpus_options;
    if (kernels_only) corpus_options.total_methods = 0;
    else corpus_options.total_methods = methods;
    program = workloads::make_corpus(corpus_options).program;
  }

  const analysis::LintReport report =
      analysis::lint_corpus(program, configs, options, threads);

  if (json) {
    std::cout << analysis::to_json(report) << '\n';
  } else if (quiet) {
    std::printf("%zu methods, %zu placements: %d errors, %d warnings\n",
                report.methods_linted, report.placements_linted,
                report.errors, report.warnings);
  } else {
    std::cout << analysis::to_text(report);
  }
  return report.clean() ? 0 : 1;
}
