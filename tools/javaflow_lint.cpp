// javaflow_lint — static verification of the corpus' dataflow graphs,
// placements and token ordering (rule catalogue in docs/LINT.md).
//
//   javaflow_lint                          lint the full 1605-method corpus
//                                          on every Table 15 configuration
//   javaflow_lint --config Compact2        one configuration only
//   javaflow_lint --json                   machine-readable findings
//   javaflow_lint --file corpus.jfasm      lint a program image instead
//   javaflow_lint --bounds --model-check   add the static bound analyzer
//                                          and token-flow model checker
//                                          (docs/ANALYSIS.md)
//   javaflow_lint --bounds-sweep 32        cross-validate the bounds
//                                          against a stride-32 engine
//                                          sweep and report tightness
//
// Exits 0 when no error-severity finding is raised, 1 otherwise (warnings
// never fail the run), 2 on usage errors.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/bounds.hpp"
#include "analysis/figure_of_merit.hpp"
#include "analysis/lint.hpp"
#include "analysis/model_check.hpp"
#include "bytecode/textio.hpp"
#include "fabric/dataflow_graph.hpp"
#include "fabric/fabric.hpp"
#include "fabric/loader.hpp"
#include "sim/config.hpp"
#include "workloads/corpus.hpp"

using namespace javaflow;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: javaflow_lint [options]\n"
      "  --config NAME     lint placements on one Table 15 configuration\n"
      "                    (repeatable; default: all six)\n"
      "  --file PATH       lint a .jfasm program image instead of the\n"
      "                    built-in corpus\n"
      "  --kernels-only    restrict the corpus to the hand-written kernels\n"
      "  --methods N       corpus size (default 1605, Table 16)\n"
      "  --threads N       worker threads (0 = auto, default; 1 = serial)\n"
      "  --buffer-cap N    per-node operand buffer capacity (JF-E005)\n"
      "  --fanout-cap N    consumer-address array limit (JF-E006)\n"
      "  --no-warnings     suppress warning-severity rules\n"
      "  --bounds          run the static timing/resource bound analyzer\n"
      "                    (JF-E008 / JF-W103, docs/ANALYSIS.md)\n"
      "  --model-check     prove token-flow deadlock-freedom per method\n"
      "                    (JF-E009 on a deadlock witness)\n"
      "  --bounds-sweep N  execute a stride-N sweep with bound\n"
      "                    cross-validation (JF-E010) and report\n"
      "                    predicted/actual tightness per configuration\n"
      "  --json            emit the report as JSON on stdout\n"
      "  --quiet           summary only (text mode)\n");
  return 2;
}

bool parse_int(const char* s, int& out) {
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (end == s || *end != '\0') return false;
  out = static_cast<int>(v);
  return true;
}

// Predicted/actual tick-ratio distribution for one configuration: how
// tight the static lower bound is against what the engine measured.
// Ratios live in (0, 1] when the bound is sound; deciles histogrammed.
struct TightnessRow {
  std::string config;
  std::size_t cells = 0;
  double ratio_sum = 0.0;
  std::size_t histogram[10] = {};

  void add(double ratio) {
    ++cells;
    ratio_sum += ratio;
    int bin = static_cast<int>(ratio * 10.0);
    bin = std::clamp(bin, 0, 9);
    ++histogram[bin];
  }
};

// Tightness over the sweep's executed cells. Bounds are recomputed here
// (once per method x config — the sweep does not export its internal
// MethodBounds); cached RunMetrics served by the result cache are rated
// exactly like fresh executions, which is what makes verify-mode replays
// re-check old records against the current analyzer.
std::vector<TightnessRow> measure_tightness(
    const analysis::Sweep& sweep, const bytecode::Program& program) {
  std::map<std::string, const bytecode::Method*> by_name;
  for (const bytecode::Method& m : program.methods) by_name[m.name] = &m;

  std::vector<TightnessRow> rows(sweep.configs.size());
  for (std::size_t ci = 0; ci < sweep.configs.size(); ++ci) {
    rows[ci].config = sweep.configs[ci].name;
  }

  // (method name, config) -> static lower bound, computed lazily.
  std::map<std::pair<std::string, std::size_t>, std::int64_t> lb_cache;
  std::vector<fabric::Fabric> fabrics;
  fabrics.reserve(sweep.configs.size());
  for (const sim::MachineConfig& cfg : sweep.configs) {
    fabrics.emplace_back(cfg.fabric_options());
  }

  for (const analysis::SweepSample& s : sweep.samples) {
    const sim::RunMetrics& mt = s.metrics;
    if (!mt.fits || !mt.completed || mt.timed_out || mt.exception ||
        mt.ticks <= 0) {
      continue;
    }
    const auto key = std::make_pair(s.method, s.config_index);
    auto it = lb_cache.find(key);
    if (it == lb_cache.end()) {
      std::int64_t lb = analysis::kNoBound;
      const auto mi = by_name.find(s.method);
      if (mi != by_name.end()) {
        const bytecode::Method& m = *mi->second;
        const fabric::DataflowGraph graph =
            fabric::build_dataflow_graph(m, program.pool);
        const fabric::Placement placement =
            fabric::load_method(fabrics[s.config_index], m);
        const analysis::MethodBounds bounds = analysis::compute_bounds(
            m, graph, fabrics[s.config_index], placement,
            sweep.configs[s.config_index]);
        if (bounds.valid) lb = bounds.lower_bound_ticks;
      }
      it = lb_cache.emplace(key, lb).first;
    }
    if (it->second <= 0 || it->second >= analysis::kNoBound) continue;
    rows[s.config_index].add(static_cast<double>(it->second) /
                             static_cast<double>(mt.ticks));
  }
  return rows;
}

std::string tightness_text(const std::vector<TightnessRow>& rows) {
  std::string out = "bound tightness (static lower bound / measured ticks):\n";
  char buf[256];
  for (const TightnessRow& r : rows) {
    const double mean =
        r.cells > 0 ? r.ratio_sum / static_cast<double>(r.cells) : 0.0;
    std::snprintf(buf, sizeof buf, "  %-10s %6zu cells, mean %.3f  [",
                  r.config.c_str(), r.cells, mean);
    out += buf;
    for (int b = 0; b < 10; ++b) {
      std::snprintf(buf, sizeof buf, "%s%zu", b > 0 ? " " : "",
                    r.histogram[b]);
      out += buf;
    }
    out += "]\n";
  }
  return out;
}

std::string tightness_json(const std::vector<TightnessRow>& rows) {
  std::string out = "\"tightness\":[";
  char buf[256];
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const TightnessRow& r = rows[i];
    const double mean =
        r.cells > 0 ? r.ratio_sum / static_cast<double>(r.cells) : 0.0;
    std::snprintf(buf, sizeof buf,
                  "%s{\"config\":\"%s\",\"cells\":%zu,\"mean\":%.6f,"
                  "\"histogram\":[",
                  i > 0 ? "," : "", r.config.c_str(), r.cells, mean);
    out += buf;
    for (int b = 0; b < 10; ++b) {
      std::snprintf(buf, sizeof buf, "%s%zu", b > 0 ? "," : "",
                    r.histogram[b]);
      out += buf;
    }
    out += "]}";
  }
  out += "]";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> config_names;
  std::string file;
  bool kernels_only = false;
  bool json = false;
  bool quiet = false;
  bool bounds = false;
  bool model_check = false;
  int bounds_sweep_stride = 0;  // 0 = no cross-validation sweep
  int methods = 1605;
  int threads = 0;
  analysis::LintOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    int value = 0;
    if (arg == "--config") {
      const char* v = next();
      if (v == nullptr) return usage();
      config_names.emplace_back(v);
    } else if (arg == "--file") {
      const char* v = next();
      if (v == nullptr) return usage();
      file = v;
    } else if (arg == "--kernels-only") {
      kernels_only = true;
    } else if (arg == "--methods") {
      const char* v = next();
      if (v == nullptr || !parse_int(v, methods)) return usage();
    } else if (arg == "--threads") {
      const char* v = next();
      if (v == nullptr || !parse_int(v, threads)) return usage();
    } else if (arg == "--buffer-cap") {
      const char* v = next();
      if (v == nullptr || !parse_int(v, value)) return usage();
      options.node_buffer_capacity = value;
    } else if (arg == "--fanout-cap") {
      const char* v = next();
      if (v == nullptr || !parse_int(v, value)) return usage();
      options.mesh_fanout_limit = value;
    } else if (arg == "--no-warnings") {
      options.warnings = false;
    } else if (arg == "--bounds") {
      bounds = true;
    } else if (arg == "--model-check") {
      model_check = true;
    } else if (arg == "--bounds-sweep") {
      const char* v = next();
      if (v == nullptr || !parse_int(v, bounds_sweep_stride) ||
          bounds_sweep_stride < 1) {
        return usage();
      }
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      std::fprintf(stderr, "javaflow_lint: unknown option '%s'\n",
                   arg.c_str());
      return usage();
    }
  }

  std::vector<sim::MachineConfig> configs;
  try {
    if (config_names.empty()) {
      configs = sim::table15_configs();
    } else {
      for (const std::string& name : config_names) {
        configs.push_back(sim::config_by_name(name));
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "javaflow_lint: %s\n", e.what());
    return 2;
  }

  bytecode::Program program;
  if (!file.empty()) {
    std::ifstream in(file);
    if (!in) {
      std::fprintf(stderr, "javaflow_lint: cannot open %s\n", file.c_str());
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    try {
      program = bytecode::parse_program(buf.str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "javaflow_lint: %s: %s\n", file.c_str(), e.what());
      return 2;
    }
  } else {
    workloads::CorpusOptions corpus_options;
    if (kernels_only) corpus_options.total_methods = 0;
    else corpus_options.total_methods = methods;
    program = workloads::make_corpus(corpus_options).program;
  }

  analysis::LintReport report =
      analysis::lint_corpus(program, configs, options, threads);

  // The analyzer passes fold their findings into the same report; the
  // methods/placements tallies are zeroed before merging so the summary
  // keeps counting each method once.
  if (bounds) {
    analysis::LintReport b =
        analysis::bounds_corpus(program, configs, options, threads);
    b.methods_linted = 0;
    b.placements_linted = 0;
    report.merge(std::move(b));
  }
  if (model_check) {
    analysis::LintReport mc =
        analysis::model_check_corpus(program, {}, threads);
    mc.methods_linted = 0;
    mc.placements_linted = 0;
    report.merge(std::move(mc));
  }

  std::vector<TightnessRow> tightness;
  if (bounds_sweep_stride > 0) {
    std::vector<const bytecode::Method*> sweep_methods;
    sweep_methods.reserve(program.methods.size());
    for (const bytecode::Method& m : program.methods) {
      sweep_methods.push_back(&m);
    }
    analysis::SweepOptions sweep_options;
    sweep_options.configs = configs;
    sweep_options.stride = bounds_sweep_stride;
    sweep_options.threads = threads;
    sweep_options.check_bounds = true;
    sweep_options.lint_options = options;
    const analysis::Sweep sweep = analysis::run_sweep(
        sweep_methods, program.pool, {}, sweep_options);
    analysis::LintReport sr;
    sr.findings = sweep.lint_findings;
    sr.errors = sweep.lint_errors;
    sr.warnings = sweep.lint_warnings;
    report.merge(std::move(sr));
    tightness = measure_tightness(sweep, program);
  }

  if (json) {
    std::string out = analysis::to_json(report, configs);
    if (!tightness.empty()) {
      const std::size_t brace = out.rfind('}');
      if (brace != std::string::npos) {
        out.insert(brace, "," + tightness_json(tightness));
      }
    }
    std::cout << out << '\n';
  } else if (quiet) {
    std::cout << analysis::to_summary(report) << '\n';
  } else {
    std::cout << analysis::to_text(report);
    if (!tightness.empty()) std::cout << tightness_text(tightness);
  }
  return report.clean() ? 0 : 1;
}
