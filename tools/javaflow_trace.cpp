// javaflow_trace — per-run event tracing CLI (docs/OBSERVABILITY.md).
//
// Runs one corpus method on one Table 15 configuration under one branch
// scenario with the cycle-accurate EventTracer attached, and writes a
// Chrome trace-event / Perfetto-loadable JSON timeline (one track per
// fabric node, one per network) plus the run's MetricsRegistry.
//
// Usage:
//   javaflow_trace <method> [--config <name>] [--scenario bp1|bp2]
//                  [--out <file>] [--metrics <file>] [--top <n>]
//                  [--list [substr]]
//
// Defaults: --config Compact2, --scenario bp1, --out - (stdout).
// --top N prints the N hottest fabric nodes, mesh links, and opcodes
// (from the run's MetricsRegistry) to stderr, keeping stdout pure JSON.
// The method name must match a corpus method exactly; near-misses are
// suggested. Exit codes: 0 ok, 1 bad usage / unknown method, 2 the
// method does not fit or did not complete on the chosen configuration.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "fabric/dataflow_graph.hpp"
#include "obs/event_tracer.hpp"
#include "obs/metrics.hpp"
#include "sim/engine.hpp"
#include "workloads/corpus.hpp"

namespace {

using javaflow::bytecode::Method;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <method> [--config <name>] [--scenario bp1|bp2]\n"
               "       [--out <file>] [--metrics <file>] [--top <n>]\n"
               "       %s --list [substring]\n",
               argv0, argv0);
  return 1;
}

const Method* find_method(const javaflow::workloads::Corpus& corpus,
                          const std::string& name) {
  for (const Method& m : corpus.program.methods) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

void suggest(const javaflow::workloads::Corpus& corpus,
             const std::string& name) {
  int shown = 0;
  for (const Method& m : corpus.program.methods) {
    if (m.name.find(name) == std::string::npos) continue;
    if (shown == 0) std::fprintf(stderr, "did you mean:\n");
    std::fprintf(stderr, "  %s\n", m.name.c_str());
    if (++shown == 10) break;
  }
}

std::string node_label(const Method& m, std::size_t i) {
  return std::to_string(i) + " " +
         std::string(javaflow::bytecode::op_name(m.code[i].op));
}

// --top N: hottest fabric nodes / mesh links / opcodes by count, ties
// broken by key so the listing is deterministic.
void print_top(const javaflow::obs::MetricsRegistry& metrics,
               std::size_t top_n) {
  using Entry = std::pair<std::uint64_t, std::string>;
  auto print = [&](const char* title, std::vector<Entry> entries) {
    std::stable_sort(entries.begin(), entries.end(),
                     [](const Entry& a, const Entry& b) {
                       return a.first != b.first ? a.first > b.first
                                                 : a.second < b.second;
                     });
    if (entries.size() > top_n) entries.resize(top_n);
    std::fprintf(stderr, "top %s:\n", title);
    for (const Entry& e : entries) {
      std::fprintf(stderr, "  %10llu  %s\n",
                   static_cast<unsigned long long>(e.first),
                   e.second.c_str());
    }
  };

  std::vector<Entry> nodes;
  for (std::size_t slot = 0; slot < metrics.firings_by_node.size(); ++slot) {
    if (metrics.firings_by_node[slot] == 0) continue;
    nodes.emplace_back(metrics.firings_by_node[slot],
                       "slot " + std::to_string(slot));
  }
  print("nodes (firings)", std::move(nodes));

  std::vector<Entry> links;
  for (const auto& [key, load] : metrics.mesh_link_load) {
    links.emplace_back(
        load, "slot " + std::to_string(key.first) + " " +
                  std::string(javaflow::obs::link_dir_name(
                      static_cast<javaflow::obs::LinkDir>(key.second))));
  }
  print("mesh links (traversals)", std::move(links));

  std::vector<Entry> opcodes;
  for (std::size_t op = 0; op < metrics.firings_by_opcode.size(); ++op) {
    if (metrics.firings_by_opcode[op] == 0) continue;
    opcodes.emplace_back(
        metrics.firings_by_opcode[op],
        std::string(javaflow::bytecode::op_name(
            static_cast<javaflow::bytecode::Op>(op))));
  }
  print("opcodes (firings)", std::move(opcodes));
}

}  // namespace

int main(int argc, char** argv) {
  std::string method_name, config_name = "Compact2", scenario_name = "bp1";
  std::string out_path = "-", metrics_path;
  long top_n = 0;
  bool list = false;
  std::string list_filter;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--list") {
      list = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') list_filter = argv[++i];
    } else if (arg == "--config") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      config_name = v;
    } else if (arg == "--scenario") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      scenario_name = v;
    } else if (arg == "--out" || arg == "-o") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      out_path = v;
    } else if (arg == "--metrics") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      metrics_path = v;
    } else if (arg == "--top") {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      top_n = std::strtol(v, nullptr, 10);
      if (top_n <= 0) {
        std::fprintf(stderr, "--top expects a positive count\n");
        return 1;
      }
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return usage(argv[0]);
    } else if (method_name.empty()) {
      method_name = arg;
    } else {
      return usage(argv[0]);
    }
  }

  const javaflow::workloads::Corpus corpus =
      javaflow::workloads::make_corpus({});

  if (list) {
    for (const Method& m : corpus.program.methods) {
      if (!list_filter.empty() &&
          m.name.find(list_filter) == std::string::npos) {
        continue;
      }
      std::printf("%s (%zu insts, %s)\n", m.name.c_str(), m.code.size(),
                  m.benchmark.c_str());
    }
    return 0;
  }
  if (method_name.empty()) return usage(argv[0]);

  const Method* m = find_method(corpus, method_name);
  if (m == nullptr) {
    std::fprintf(stderr, "unknown method: %s\n", method_name.c_str());
    suggest(corpus, method_name);
    return 1;
  }

  javaflow::sim::BranchPredictor::Scenario scenario;
  if (scenario_name == "bp1" || scenario_name == "BP1") {
    scenario = javaflow::sim::BranchPredictor::Scenario::BP1;
  } else if (scenario_name == "bp2" || scenario_name == "BP2") {
    scenario = javaflow::sim::BranchPredictor::Scenario::BP2;
  } else {
    std::fprintf(stderr, "unknown scenario: %s (expected bp1 or bp2)\n",
                 scenario_name.c_str());
    return 1;
  }

  javaflow::sim::MachineConfig config;
  try {
    config = javaflow::sim::config_by_name(config_name);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }

  javaflow::obs::EventTracer tracer;
  javaflow::obs::MetricsRegistry metrics;
  javaflow::sim::EngineOptions options;
  options.tracer = &tracer;
  options.metrics = &metrics;
  javaflow::sim::Engine engine(config, options);

  const javaflow::fabric::DataflowGraph graph =
      javaflow::fabric::build_dataflow_graph(*m, corpus.program.pool);
  javaflow::sim::BranchPredictor predictor(scenario);
  const javaflow::sim::RunMetrics run = engine.run(*m, graph, predictor);

  if (!run.fits) {
    std::fprintf(stderr, "%s does not fit on %s (%d instructions)\n",
                 m->name.c_str(), config_name.c_str(), run.static_size);
    return 2;
  }

  javaflow::obs::TraceMeta meta;
  meta.method = m->name;
  meta.config = config.name;
  meta.scenario = scenario == javaflow::sim::BranchPredictor::Scenario::BP1
                      ? "BP-1"
                      : "BP-2";
  meta.serial_per_mesh = config.serial_per_mesh;
  for (std::size_t i = 0; i < m->code.size(); ++i) {
    meta.node_labels.push_back(node_label(*m, i));
  }

  std::ofstream file;
  std::ostream* os = &std::cout;
  if (out_path != "-") {
    file.open(out_path);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
      return 1;
    }
    os = &file;
  }
  javaflow::obs::write_chrome_trace(*os, tracer, meta);
  os->flush();

  if (top_n > 0) print_top(metrics, static_cast<std::size_t>(top_n));

  if (!metrics_path.empty()) {
    std::ofstream mf(metrics_path);
    if (!mf) {
      std::fprintf(stderr, "cannot open %s\n", metrics_path.c_str());
      return 1;
    }
    metrics.write_json(mf);
    mf << "\n";
  }

  std::fprintf(stderr,
               "%s on %s (%s): %s, %lld ticks, %lld firings, %zu events%s\n",
               m->name.c_str(), config_name.c_str(), meta.scenario.c_str(),
               run.completed ? "completed" : "DID NOT COMPLETE",
               static_cast<long long>(run.ticks),
               static_cast<long long>(run.instructions_fired),
               tracer.events().size(),
               out_path != "-" ? (", wrote " + out_path).c_str() : "");
  return run.completed ? 0 : 2;
}
