// javaflow_cache — maintenance CLI for the persistent sweep result cache
// (docs/PERF.md "Result cache").
//
//   javaflow_cache stats                    record/cell/byte counts, staleness
//   javaflow_cache prune                    delete stale + corrupt records
//   javaflow_cache invalidate --method SUB  delete records whose method name
//                                           contains SUB (no --method: wipe
//                                           the whole store)
//   javaflow_cache verify [--stride K]      re-execute the corpus sweep in
//                                           verify mode and compare every
//                                           cached cell bit-for-bit
//
// All subcommands honour --dir PATH (default: the same resolution the
// sweep uses — JAVAFLOW_CACHE_DIR, then $XDG_CACHE_HOME/javaflow, then
// ~/.cache/javaflow). Exits 0 on success, 1 when verify finds mismatches,
// 2 on usage errors.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "analysis/figure_of_merit.hpp"
#include "cache/key.hpp"
#include "cache/store.hpp"
#include "workloads/corpus.hpp"

using namespace javaflow;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: javaflow_cache <stats|prune|invalidate|verify> [options]\n"
      "  --dir PATH        cache directory (default: JAVAFLOW_CACHE_DIR,\n"
      "                    then $XDG_CACHE_HOME/javaflow, then\n"
      "                    ~/.cache/javaflow)\n"
      "  --method SUB      invalidate only: delete records whose method\n"
      "                    name contains SUB (omit to wipe the store)\n"
      "  --stride K        verify only: keep every K-th corpus method\n"
      "                    (default 1 = the full corpus)\n"
      "  --threads N       verify only: sweep workers (0 = auto; default\n"
      "                    1 = serial)\n");
  return 2;
}

bool parse_int(const char* s, int& out) {
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (end == s || *end != '\0') return false;
  out = static_cast<int>(v);
  return true;
}

int run_verify(const std::string& dir, int stride, int threads) {
  workloads::Corpus corpus = workloads::make_corpus({});
  std::vector<const bytecode::Method*> methods;
  methods.reserve(corpus.program.methods.size());
  for (const bytecode::Method& m : corpus.program.methods) {
    methods.push_back(&m);
  }
  std::vector<std::string> hot;
  for (std::size_t i = 0; i < corpus.kernel_methods; ++i) {
    hot.push_back(corpus.program.methods[i].name);
  }

  analysis::SweepOptions options;
  options.stride = stride;
  options.threads = threads;
  options.cache = cache::CacheMode::Verify;
  options.cache_dir = dir;
  const analysis::Sweep sweep = analysis::run_sweep(
      methods, corpus.program.pool, hot, options);

  std::printf(
      "verify: %zu cells (%zu cached, %zu uncached), %zu mismatching, "
      "%zu record(s) repaired\n",
      sweep.samples.size(), sweep.cache.hit_cells, sweep.cache.miss_cells,
      sweep.cache.verify_mismatch_cells, sweep.cache.stored_records);
  if (sweep.cache.verify_mismatch_cells != 0) {
    std::fprintf(stderr,
                 "javaflow_cache: verify FAILED — %zu cell(s) differed "
                 "from fresh execution (now repaired; rerun to confirm)\n",
                 sweep.cache.verify_mismatch_cells);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  std::string dir;
  std::string method;
  bool have_method = false;
  int stride = 1;
  int threads = 1;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--dir") {
      const char* v = next();
      if (v == nullptr) return usage();
      dir = v;
    } else if (arg == "--method") {
      const char* v = next();
      if (v == nullptr) return usage();
      method = v;
      have_method = true;
    } else if (arg == "--stride") {
      const char* v = next();
      if (v == nullptr || !parse_int(v, stride) || stride < 1)
        return usage();
    } else if (arg == "--threads") {
      const char* v = next();
      if (v == nullptr || !parse_int(v, threads) || threads < 0)
        return usage();
    } else {
      std::fprintf(stderr, "javaflow_cache: unknown option '%s'\n",
                   arg.c_str());
      return usage();
    }
  }

  const std::string resolved = cache::resolve_cache_dir(dir);

  if (cmd == "stats") {
    const cache::CacheStore store(resolved);
    const cache::CacheStore::Stats s = store.stats(cache::record_fingerprint());
    std::printf("dir:             %s\n", resolved.c_str());
    std::printf("fingerprint:     %u\n", cache::record_fingerprint());
    std::printf("record files:    %ju\n", s.files);
    std::printf("bytes:           %ju\n", s.bytes);
    std::printf("cells:           %ju\n", s.cells);
    std::printf("stale records:   %ju (other engine fingerprints)\n",
                s.stale_files);
    std::printf("corrupt records: %ju\n", s.corrupt_files);
    return 0;
  }
  if (cmd == "prune") {
    const cache::CacheStore store(resolved);
    const std::uintmax_t removed = store.prune(cache::record_fingerprint());
    std::printf("pruned %ju stale/corrupt record file(s) from %s\n",
                removed, resolved.c_str());
    return 0;
  }
  if (cmd == "invalidate") {
    const cache::CacheStore store(resolved);
    const std::uintmax_t removed = store.invalidate(method);
    if (have_method) {
      std::printf("invalidated %ju record(s) matching \"%s\" in %s\n",
                  removed, method.c_str(), resolved.c_str());
    } else {
      std::printf("invalidated all %ju record(s) in %s\n", removed,
                  resolved.c_str());
    }
    return 0;
  }
  if (cmd == "verify") {
    return run_verify(resolved, stride, threads);
  }

  std::fprintf(stderr, "javaflow_cache: unknown command '%s'\n",
               cmd.c_str());
  return usage();
}
