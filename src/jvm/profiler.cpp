#include "jvm/profiler.hpp"

#include <algorithm>

namespace javaflow::jvm {

using bytecode::Group;
using bytecode::Op;

void Profiler::record_invocation(const std::string& method,
                                 const std::string& benchmark) {
  MethodStats& s = methods_[method];
  if (s.benchmark.empty()) s.benchmark = benchmark;
  ++s.invocations;
}

void Profiler::record_op(const std::string& method, Op op) {
  MethodStats& s = methods_[method];
  ++s.op_counts[static_cast<std::uint8_t>(op)];
  ++s.total_ops;
}

std::uint64_t Profiler::total_ops() const noexcept {
  std::uint64_t total = 0;
  for (const auto& [name, s] : methods_) total += s.total_ops;
  return total;
}

namespace {
bool is_storage_group(Group g) {
  return g == Group::MemConstant || g == Group::MemRead ||
         g == Group::MemWrite;
}
}  // namespace

std::uint64_t Profiler::storage_base_ops() const noexcept {
  std::uint64_t total = 0;
  for (const auto& [name, s] : methods_) {
    for (int b = 0; b < 256; ++b) {
      if (s.op_counts[static_cast<std::size_t>(b)] == 0) continue;
      if (!bytecode::is_valid_opcode(static_cast<std::uint8_t>(b))) continue;
      const Op op = static_cast<Op>(b);
      if (is_storage_group(bytecode::op_info(op).group) &&
          bytecode::has_quick_form(op)) {
        total += s.op_counts[static_cast<std::size_t>(b)];
      }
    }
  }
  return total;
}

std::uint64_t Profiler::storage_quick_ops() const noexcept {
  std::uint64_t total = 0;
  for (const auto& [name, s] : methods_) {
    for (int b = 0; b < 256; ++b) {
      if (s.op_counts[static_cast<std::size_t>(b)] == 0) continue;
      if (!bytecode::is_valid_opcode(static_cast<std::uint8_t>(b))) continue;
      const Op op = static_cast<Op>(b);
      if (bytecode::is_quick(op)) {
        total += s.op_counts[static_cast<std::size_t>(b)];
      }
    }
  }
  return total;
}

std::vector<std::pair<std::string, const Profiler::MethodStats*>>
Profiler::by_hotness() const {
  std::vector<std::pair<std::string, const MethodStats*>> out;
  out.reserve(methods_.size());
  for (const auto& [name, s] : methods_) out.emplace_back(name, &s);
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second->total_ops != b.second->total_ops) {
      return a.second->total_ops > b.second->total_ops;
    }
    return a.first < b.first;
  });
  return out;
}

std::vector<std::pair<std::string, const Profiler::MethodStats*>>
Profiler::hottest_covering(double fraction) const {
  auto sorted = by_hotness();
  const std::uint64_t total = total_ops();
  const auto want = static_cast<std::uint64_t>(
      fraction * static_cast<double>(total));
  std::uint64_t seen = 0;
  std::vector<std::pair<std::string, const MethodStats*>> out;
  for (const auto& entry : sorted) {
    if (seen >= want) break;
    out.push_back(entry);
    seen += entry.second->total_ops;
  }
  return out;
}

}  // namespace javaflow::jvm
