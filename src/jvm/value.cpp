#include "jvm/value.hpp"

#include <sstream>

namespace javaflow::jvm {

Value Value::make_default(ValueType t) {
  switch (t) {
    case ValueType::Int: return make_int(0);
    case ValueType::Long: return make_long(0);
    case ValueType::Float: return make_float(0.0);
    case ValueType::Double: return make_double(0.0);
    case ValueType::Ref: return make_ref(kNull);
    case ValueType::Void: return Value{ValueType::Void, 0, 0.0, kNull};
  }
  return make_int(0);
}

std::string to_string(const Value& v) {
  std::ostringstream os;
  switch (v.type) {
    case ValueType::Int: os << "int:" << v.as_int(); break;
    case ValueType::Long: os << "long:" << v.as_long(); break;
    case ValueType::Float: os << "float:" << v.d; break;
    case ValueType::Double: os << "double:" << v.d; break;
    case ValueType::Ref: os << "ref:" << v.ref; break;
    case ValueType::Void: os << "void"; break;
  }
  return os.str();
}

}  // namespace javaflow::jvm
