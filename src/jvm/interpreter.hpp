// Reference stack interpreter for the ByteCode subset.
//
// Serves two purposes in the reproduction:
//  1. It is the measurement substrate that replaces the paper's
//     instrumented JAMVM (§5.2): running the workload suite under the
//     profiler yields the dynamic instruction mixes of Tables 1-5.
//  2. It is the semantic oracle the fabric is tested against (the same
//     method must compute the same answer on both).
//
// Like the JVMs the paper describes (§3.6), storage instructions are
// rewritten to their resolved `_Quick` forms on first execution; the
// rewrite happens in a per-interpreter code cache so the Program image
// (and therefore all static analyses) keeps the architected base forms.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "bytecode/method.hpp"
#include "jvm/heap.hpp"
#include "jvm/profiler.hpp"
#include "jvm/value.hpp"

namespace javaflow::jvm {

class Interpreter {
 public:
  struct Options {
    std::uint64_t max_steps = 2'000'000'000;  // runaway guard
    int max_call_depth = 512;
  };

  // Host-native method: receives args (locals order) and returns a value.
  using Intrinsic =
      std::function<Value(Interpreter&, const std::vector<Value>&)>;

  explicit Interpreter(bytecode::Program& program,
                       Profiler* profiler = nullptr);
  Interpreter(bytecode::Program& program, Profiler* profiler,
              Options options);

  // Invoke a method by qualified name. Args are the initial local
  // registers 0..n-1 (including `this` for instance methods, §3.6).
  Value invoke(const std::string& qualified_name, std::vector<Value> args);
  Value invoke(const bytecode::Method& m, std::vector<Value> args);

  Heap& heap() noexcept { return heap_; }
  const Heap& heap() const noexcept { return heap_; }
  bytecode::Program& program() noexcept { return program_; }

  // Registers a native method (e.g. "java.lang.Math.sqrt(D)D"). Standard
  // Math/System intrinsics are pre-registered.
  void register_intrinsic(const std::string& qualified_name, Intrinsic fn);

  // Control-flow observation hook: called after each branch / switch
  // instruction with the linear pc and the pc actually taken. Used by
  // the trace-driven execution mode (an enhancement beyond the paper's
  // BP-1/BP-2 methodology).
  using BranchHook = std::function<void(const bytecode::Method&,
                                        std::int32_t pc,
                                        std::int32_t next_pc)>;
  void set_branch_hook(BranchHook hook) { branch_hook_ = std::move(hook); }

  std::uint64_t steps() const noexcept { return steps_; }

 private:
  Value run(const bytecode::Method& m, std::vector<Value> locals, int depth);
  std::vector<bytecode::Instruction>& code_for(const bytecode::Method& m);
  void register_default_intrinsics();

  bytecode::Program& program_;
  Profiler* profiler_ = nullptr;
  Options options_;
  Heap heap_;
  std::uint64_t steps_ = 0;
  std::map<const bytecode::Method*, std::vector<bytecode::Instruction>>
      code_cache_;
  std::map<std::string, Intrinsic> intrinsics_;
  BranchHook branch_hook_;
};

}  // namespace javaflow::jvm
