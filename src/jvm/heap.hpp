// Managed heap for the reference interpreter.
//
// Implements the paper's Java memory organization (Figure 10): a Method
// Area holding per-class static slots, and a Heap holding object instances
// and arrays. Garbage collection is out of the paper's scope (§2.3) and
// out of ours; the heap is an arena released wholesale.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "jvm/value.hpp"

namespace javaflow::jvm {

// Raised for the runtime conditions the paper routes to the GPP's
// exception machinery (§6.3 "Exceptions"): null dereference, array bounds,
// arithmetic faults, user athrow.
class JvmException : public std::runtime_error {
 public:
  explicit JvmException(const std::string& what) : std::runtime_error(what) {}
};

class Heap {
 public:
  // ---- objects ----
  // Allocates an instance with default-initialized fields per the class
  // layout. The class must exist in the program image.
  Ref new_object(const bytecode::ClassDef& cls);
  Value get_field(Ref obj, std::int32_t slot) const;
  void put_field(Ref obj, std::int32_t slot, const Value& v);
  const std::string& class_of(Ref obj) const;

  // ---- arrays ----
  Ref new_array(ValueType element, std::int32_t length);
  // Rectangular multi-dimensional array (multianewarray).
  Ref new_multi_array(ValueType element, const std::vector<std::int32_t>& dims);
  std::int32_t array_length(Ref arr) const;
  Value array_get(Ref arr, std::int32_t index) const;
  void array_set(Ref arr, std::int32_t index, const Value& v);
  ValueType array_element_type(Ref arr) const;

  // ---- strings (char arrays, enough for the db/jack kernels) ----
  Ref new_string(const std::string& chars);
  std::string read_string(Ref arr) const;

  // ---- statics (Method Area) ----
  // Lazily creates the class's static slot vector on first touch.
  Value get_static(const bytecode::ClassDef& cls, std::int32_t slot);
  void put_static(const bytecode::ClassDef& cls, std::int32_t slot,
                  const Value& v);

  bool is_array(Ref r) const;
  bool is_object(Ref r) const;
  std::size_t object_count() const noexcept { return cells_.size(); }

 private:
  struct Cell {
    bool array = false;
    std::string class_name;       // objects
    ValueType element = ValueType::Int;  // arrays
    std::vector<Value> slots;     // fields or elements
  };
  Cell& cell(Ref r);
  const Cell& cell(Ref r) const;

  std::vector<Cell> cells_;  // handle r refers to cells_[r-1]
  std::map<std::string, std::vector<Value>> statics_;
};

}  // namespace javaflow::jvm
