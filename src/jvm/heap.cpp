#include "jvm/heap.hpp"

namespace javaflow::jvm {

Heap::Cell& Heap::cell(Ref r) {
  if (r <= 0 || static_cast<std::size_t>(r) > cells_.size()) {
    throw JvmException("NullPointerException");
  }
  return cells_[static_cast<std::size_t>(r) - 1];
}

const Heap::Cell& Heap::cell(Ref r) const {
  if (r <= 0 || static_cast<std::size_t>(r) > cells_.size()) {
    throw JvmException("NullPointerException");
  }
  return cells_[static_cast<std::size_t>(r) - 1];
}

Ref Heap::new_object(const bytecode::ClassDef& cls) {
  Cell c;
  c.array = false;
  c.class_name = cls.name;
  c.slots.reserve(cls.instance_fields.size());
  for (const auto& [name, type] : cls.instance_fields) {
    (void)name;
    c.slots.push_back(Value::make_default(type));
  }
  cells_.push_back(std::move(c));
  return static_cast<Ref>(cells_.size());
}

Value Heap::get_field(Ref obj, std::int32_t slot) const {
  const Cell& c = cell(obj);
  if (slot < 0 || static_cast<std::size_t>(slot) >= c.slots.size()) {
    throw JvmException("field slot out of range");
  }
  return c.slots[static_cast<std::size_t>(slot)];
}

void Heap::put_field(Ref obj, std::int32_t slot, const Value& v) {
  Cell& c = cell(obj);
  if (slot < 0 || static_cast<std::size_t>(slot) >= c.slots.size()) {
    throw JvmException("field slot out of range");
  }
  c.slots[static_cast<std::size_t>(slot)] = v;
}

const std::string& Heap::class_of(Ref obj) const { return cell(obj).class_name; }

Ref Heap::new_array(ValueType element, std::int32_t length) {
  if (length < 0) throw JvmException("NegativeArraySizeException");
  Cell c;
  c.array = true;
  c.element = element;
  c.slots.assign(static_cast<std::size_t>(length),
                 Value::make_default(element));
  cells_.push_back(std::move(c));
  return static_cast<Ref>(cells_.size());
}

Ref Heap::new_multi_array(ValueType element,
                          const std::vector<std::int32_t>& dims) {
  if (dims.empty()) throw JvmException("multianewarray with no dimensions");
  if (dims.size() == 1) return new_array(element, dims[0]);
  const Ref outer = new_array(ValueType::Ref, dims[0]);
  const std::vector<std::int32_t> rest(dims.begin() + 1, dims.end());
  for (std::int32_t k = 0; k < dims[0]; ++k) {
    array_set(outer, k, Value::make_ref(new_multi_array(element, rest)));
  }
  return outer;
}

std::int32_t Heap::array_length(Ref arr) const {
  const Cell& c = cell(arr);
  if (!c.array) throw JvmException("arraylength on non-array");
  return static_cast<std::int32_t>(c.slots.size());
}

Value Heap::array_get(Ref arr, std::int32_t index) const {
  const Cell& c = cell(arr);
  if (!c.array) throw JvmException("array read on non-array");
  if (index < 0 || static_cast<std::size_t>(index) >= c.slots.size()) {
    throw JvmException("ArrayIndexOutOfBoundsException");
  }
  return c.slots[static_cast<std::size_t>(index)];
}

void Heap::array_set(Ref arr, std::int32_t index, const Value& v) {
  Cell& c = cell(arr);
  if (!c.array) throw JvmException("array write on non-array");
  if (index < 0 || static_cast<std::size_t>(index) >= c.slots.size()) {
    throw JvmException("ArrayIndexOutOfBoundsException");
  }
  c.slots[static_cast<std::size_t>(index)] = v;
}

ValueType Heap::array_element_type(Ref arr) const {
  const Cell& c = cell(arr);
  if (!c.array) throw JvmException("element type of non-array");
  return c.element;
}

Ref Heap::new_string(const std::string& chars) {
  const Ref arr =
      new_array(ValueType::Int, static_cast<std::int32_t>(chars.size()));
  for (std::size_t k = 0; k < chars.size(); ++k) {
    array_set(arr, static_cast<std::int32_t>(k),
              Value::make_int(static_cast<unsigned char>(chars[k])));
  }
  return arr;
}

std::string Heap::read_string(Ref arr) const {
  const std::int32_t n = array_length(arr);
  std::string out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::int32_t k = 0; k < n; ++k) {
    out.push_back(static_cast<char>(array_get(arr, k).as_int()));
  }
  return out;
}

Value Heap::get_static(const bytecode::ClassDef& cls, std::int32_t slot) {
  std::vector<Value>& slots = statics_[cls.name];
  if (slots.empty() && !cls.static_fields.empty()) {
    for (const auto& [name, type] : cls.static_fields) {
      (void)name;
      slots.push_back(Value::make_default(type));
    }
  }
  if (slot < 0 || static_cast<std::size_t>(slot) >= slots.size()) {
    throw JvmException("static slot out of range");
  }
  return slots[static_cast<std::size_t>(slot)];
}

void Heap::put_static(const bytecode::ClassDef& cls, std::int32_t slot,
                      const Value& v) {
  std::vector<Value>& slots = statics_[cls.name];
  if (slots.empty() && !cls.static_fields.empty()) {
    for (const auto& [name, type] : cls.static_fields) {
      (void)name;
      slots.push_back(Value::make_default(type));
    }
  }
  if (slot < 0 || static_cast<std::size_t>(slot) >= slots.size()) {
    throw JvmException("static slot out of range");
  }
  slots[static_cast<std::size_t>(slot)] = v;
}

bool Heap::is_array(Ref r) const {
  return r > 0 && static_cast<std::size_t>(r) <= cells_.size() &&
         cells_[static_cast<std::size_t>(r) - 1].array;
}

bool Heap::is_object(Ref r) const {
  return r > 0 && static_cast<std::size_t>(r) <= cells_.size() &&
         !cells_[static_cast<std::size_t>(r) - 1].array;
}

}  // namespace javaflow::jvm
