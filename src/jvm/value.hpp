// Runtime value model for the reference interpreter.
//
// One `Value` per stack slot / local register, regardless of width —
// mirroring the per-value pop/push accounting of the paper's Appendix A
// (and the DataFlow fabric, where a 64-bit payload is simply a wider
// serial/mesh payload, §6.1).
#pragma once

#include <cstdint>
#include <string>

#include "bytecode/method.hpp"

namespace javaflow::jvm {

using bytecode::ValueType;

// Heap handle; 0 is the null reference.
using Ref = std::int32_t;
inline constexpr Ref kNull = 0;

struct Value {
  ValueType type = ValueType::Int;
  std::int64_t i = 0;  // Int (low 32 significant) / Long payload
  double d = 0.0;      // Float / Double payload
  Ref ref = kNull;     // Ref payload

  static Value make_int(std::int32_t v) {
    return Value{ValueType::Int, v, 0.0, kNull};
  }
  static Value make_long(std::int64_t v) {
    return Value{ValueType::Long, v, 0.0, kNull};
  }
  static Value make_float(double v) {
    return Value{ValueType::Float, 0, static_cast<float>(v), kNull};
  }
  static Value make_double(double v) {
    return Value{ValueType::Double, 0, v, kNull};
  }
  static Value make_ref(Ref r) { return Value{ValueType::Ref, 0, 0.0, r}; }
  static Value make_default(ValueType t);

  std::int32_t as_int() const { return static_cast<std::int32_t>(i); }
  std::int64_t as_long() const { return i; }
  double as_fp() const { return d; }
  Ref as_ref() const { return ref; }

  // Exact structural equality (used by tests).
  friend bool operator==(const Value& a, const Value& b) {
    if (a.type != b.type) return false;
    switch (a.type) {
      case ValueType::Int:
      case ValueType::Long:
        return a.i == b.i;
      case ValueType::Float:
      case ValueType::Double:
        return a.d == b.d;
      case ValueType::Ref:
        return a.ref == b.ref;
      case ValueType::Void:
        return true;
    }
    return false;
  }
};

std::string to_string(const Value& v);

}  // namespace javaflow::jvm
