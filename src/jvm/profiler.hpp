// Dynamic-execution profiler.
//
// Plays the role of the paper's instrumented JAMVM (§5.2): a 256-element
// counter array per executed method signature, plus invocation counts and
// base-vs-`_Quick` storage counters (Table 5).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "bytecode/opcode.hpp"

namespace javaflow::jvm {

class Profiler {
 public:
  struct MethodStats {
    std::string benchmark;
    std::uint64_t invocations = 0;
    std::uint64_t total_ops = 0;
    std::array<std::uint64_t, 256> op_counts{};
  };

  void record_invocation(const std::string& method,
                         const std::string& benchmark);
  void record_op(const std::string& method, bytecode::Op op);

  // Stable per-method handle so hot interpreter loops can bump counters
  // without a map lookup per instruction.
  MethodStats& stats(const std::string& method, const std::string& benchmark) {
    MethodStats& s = methods_[method];
    if (s.benchmark.empty()) s.benchmark = benchmark;
    return s;
  }
  static void record_op(MethodStats& s, bytecode::Op op) noexcept {
    ++s.op_counts[static_cast<std::uint8_t>(op)];
    ++s.total_ops;
  }

  const std::map<std::string, MethodStats>& methods() const noexcept {
    return methods_;
  }

  // Total ByteCode operations across all methods.
  std::uint64_t total_ops() const noexcept;

  // Storage instructions executed in base (unresolved) form vs `_Quick`
  // form, across all methods (Table 5 inputs).
  std::uint64_t storage_base_ops() const noexcept;
  std::uint64_t storage_quick_ops() const noexcept;

  // Methods sorted by descending total_ops.
  std::vector<std::pair<std::string, const MethodStats*>> by_hotness() const;

  // The smallest set of hottest methods covering `fraction` of total ops
  // (the paper's "90 % methods").
  std::vector<std::pair<std::string, const MethodStats*>> hottest_covering(
      double fraction) const;

  void clear() { methods_.clear(); }

 private:
  std::map<std::string, MethodStats> methods_;
};

}  // namespace javaflow::jvm
