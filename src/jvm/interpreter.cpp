#include "jvm/interpreter.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace javaflow::jvm {

using bytecode::CpEntry;
using bytecode::Group;
using bytecode::Instruction;
using bytecode::Method;
using bytecode::Op;
using bytecode::Program;
using bytecode::SwitchTable;
using bytecode::ValueType;

namespace {

std::int32_t wrap32(std::int64_t v) { return static_cast<std::int32_t>(v); }

std::int32_t idiv_checked(std::int32_t a, std::int32_t b) {
  if (b == 0) throw JvmException("ArithmeticException: / by zero");
  if (a == std::numeric_limits<std::int32_t>::min() && b == -1) return a;
  return a / b;
}

std::int32_t irem_checked(std::int32_t a, std::int32_t b) {
  if (b == 0) throw JvmException("ArithmeticException: % by zero");
  if (a == std::numeric_limits<std::int32_t>::min() && b == -1) return 0;
  return a % b;
}

std::int64_t ldiv_checked(std::int64_t a, std::int64_t b) {
  if (b == 0) throw JvmException("ArithmeticException: / by zero");
  if (a == std::numeric_limits<std::int64_t>::min() && b == -1) return a;
  return a / b;
}

std::int64_t lrem_checked(std::int64_t a, std::int64_t b) {
  if (b == 0) throw JvmException("ArithmeticException: % by zero");
  if (a == std::numeric_limits<std::int64_t>::min() && b == -1) return 0;
  return a % b;
}

// JVM f2i/d2i saturating conversion semantics.
std::int32_t fp2i(double d) {
  if (std::isnan(d)) return 0;
  if (d >= 2147483647.0) return std::numeric_limits<std::int32_t>::max();
  if (d <= -2147483648.0) return std::numeric_limits<std::int32_t>::min();
  return static_cast<std::int32_t>(d);
}

std::int64_t fp2l(double d) {
  if (std::isnan(d)) return 0;
  if (d >= 9223372036854775807.0) {
    return std::numeric_limits<std::int64_t>::max();
  }
  if (d <= -9223372036854775808.0) {
    return std::numeric_limits<std::int64_t>::min();
  }
  return static_cast<std::int64_t>(d);
}

}  // namespace

Interpreter::Interpreter(Program& program, Profiler* profiler)
    : Interpreter(program, profiler, Options{}) {}

Interpreter::Interpreter(Program& program, Profiler* profiler,
                         Options options)
    : program_(program), profiler_(profiler), options_(options) {
  register_default_intrinsics();
}

void Interpreter::register_intrinsic(const std::string& qualified_name,
                                     Intrinsic fn) {
  intrinsics_[qualified_name] = std::move(fn);
}

void Interpreter::register_default_intrinsics() {
  auto fp1 = [](double (*f)(double)) {
    return [f](Interpreter&, const std::vector<Value>& a) {
      return Value::make_double(f(a.at(0).as_fp()));
    };
  };
  register_intrinsic("java.lang.Math.sqrt(D)D", fp1(std::sqrt));
  register_intrinsic("java.lang.Math.log(D)D", fp1(std::log));
  register_intrinsic("java.lang.Math.exp(D)D", fp1(std::exp));
  register_intrinsic("java.lang.Math.sin(D)D", fp1(std::sin));
  register_intrinsic("java.lang.Math.cos(D)D", fp1(std::cos));
  register_intrinsic("java.lang.Math.floor(D)D", fp1(std::floor));
  register_intrinsic("java.lang.Math.abs(D)D", fp1(std::fabs));
  register_intrinsic(
      "java.lang.Math.pow(DD)D",
      [](Interpreter&, const std::vector<Value>& a) {
        return Value::make_double(std::pow(a.at(0).as_fp(), a.at(1).as_fp()));
      });
  register_intrinsic(
      "java.lang.Math.min(II)I",
      [](Interpreter&, const std::vector<Value>& a) {
        return Value::make_int(std::min(a.at(0).as_int(), a.at(1).as_int()));
      });
  register_intrinsic(
      "java.lang.Math.max(II)I",
      [](Interpreter&, const std::vector<Value>& a) {
        return Value::make_int(std::max(a.at(0).as_int(), a.at(1).as_int()));
      });
  register_intrinsic(
      "java.lang.System.arraycopy(AIAII)V",
      [](Interpreter& vm, const std::vector<Value>& a) {
        const Ref src = a.at(0).as_ref();
        const std::int32_t src_pos = a.at(1).as_int();
        const Ref dst = a.at(2).as_ref();
        const std::int32_t dst_pos = a.at(3).as_int();
        const std::int32_t len = a.at(4).as_int();
        for (std::int32_t k = 0; k < len; ++k) {
          vm.heap().array_set(dst, dst_pos + k,
                              vm.heap().array_get(src, src_pos + k));
        }
        return Value::make_default(ValueType::Void);
      });
}

std::vector<Instruction>& Interpreter::code_for(const Method& m) {
  auto it = code_cache_.find(&m);
  if (it == code_cache_.end()) {
    it = code_cache_.emplace(&m, m.code).first;
  }
  return it->second;
}

Value Interpreter::invoke(const std::string& qualified_name,
                          std::vector<Value> args) {
  const Method* m = program_.find(qualified_name);
  if (m == nullptr) {
    throw std::runtime_error("invoke: unknown method " + qualified_name);
  }
  return invoke(*m, std::move(args));
}

Value Interpreter::invoke(const Method& m, std::vector<Value> args) {
  return run(m, std::move(args), 0);
}

Value Interpreter::run(const Method& m, std::vector<Value> locals,
                       int depth) {
  if (depth > options_.max_call_depth) {
    throw JvmException("StackOverflowError");
  }
  locals.resize(m.max_locals, Value::make_int(0));

  std::vector<Instruction>& code = code_for(m);
  std::vector<Value> stack;
  stack.reserve(m.max_stack);

  Profiler::MethodStats* prof = nullptr;
  if (profiler_ != nullptr) {
    prof = &profiler_->stats(m.name, m.benchmark);
    ++prof->invocations;
  }

  auto push = [&stack](Value v) { stack.push_back(v); };
  auto pop = [&stack]() {
    Value v = stack.back();
    stack.pop_back();
    return v;
  };

  std::size_t pc = 0;
  while (true) {
    if (++steps_ > options_.max_steps) {
      throw std::runtime_error("interpreter step budget exhausted in " +
                               m.name);
    }
    Instruction& inst = code[pc];
    if (prof != nullptr) Profiler::record_op(*prof, inst.op);
    std::size_t next = pc + 1;

    switch (inst.op) {
      case Op::nop:
        break;

      // ---- constants ----
      case Op::aconst_null: push(Value::make_ref(kNull)); break;
      case Op::iconst_m1: push(Value::make_int(-1)); break;
      case Op::iconst_0: push(Value::make_int(0)); break;
      case Op::iconst_1: push(Value::make_int(1)); break;
      case Op::iconst_2: push(Value::make_int(2)); break;
      case Op::iconst_3: push(Value::make_int(3)); break;
      case Op::iconst_4: push(Value::make_int(4)); break;
      case Op::iconst_5: push(Value::make_int(5)); break;
      case Op::lconst_0: push(Value::make_long(0)); break;
      case Op::lconst_1: push(Value::make_long(1)); break;
      case Op::fconst_0: push(Value::make_float(0.0)); break;
      case Op::fconst_1: push(Value::make_float(1.0)); break;
      case Op::fconst_2: push(Value::make_float(2.0)); break;
      case Op::dconst_0: push(Value::make_double(0.0)); break;
      case Op::dconst_1: push(Value::make_double(1.0)); break;
      case Op::bipush:
      case Op::sipush:
        push(Value::make_int(inst.operand));
        break;

      // ---- constant pool loads (with _Quick rewriting) ----
      case Op::ldc:
      case Op::ldc_w:
      case Op::ldc2_w:
        inst.op = bytecode::quick_form(inst.op);
        [[fallthrough]];
      case Op::ldc_quick:
      case Op::ldc_w_quick:
      case Op::ldc2_w_quick: {
        const CpEntry& e = program_.pool.at(inst.operand);
        switch (e.kind) {
          case CpEntry::Kind::Int: push(Value::make_int(wrap32(e.i))); break;
          case CpEntry::Kind::Long: push(Value::make_long(e.i)); break;
          case CpEntry::Kind::Float: push(Value::make_float(e.d)); break;
          case CpEntry::Kind::Double: push(Value::make_double(e.d)); break;
          case CpEntry::Kind::Str:
            push(Value::make_ref(heap_.new_string(e.s)));
            break;
          default:
            throw std::runtime_error("ldc of non-constant pool entry");
        }
        break;
      }

      // ---- locals ----
      case Op::iload: case Op::lload: case Op::fload: case Op::dload:
      case Op::aload:
        push(locals[static_cast<std::size_t>(inst.operand)]);
        break;
      case Op::iload_0: case Op::lload_0: case Op::fload_0: case Op::dload_0:
      case Op::aload_0:
        push(locals[0]);
        break;
      case Op::iload_1: case Op::lload_1: case Op::fload_1: case Op::dload_1:
      case Op::aload_1:
        push(locals[1]);
        break;
      case Op::iload_2: case Op::lload_2: case Op::fload_2: case Op::dload_2:
      case Op::aload_2:
        push(locals[2]);
        break;
      case Op::iload_3: case Op::lload_3: case Op::fload_3: case Op::dload_3:
      case Op::aload_3:
        push(locals[3]);
        break;
      case Op::istore: case Op::lstore: case Op::fstore: case Op::dstore:
      case Op::astore:
        locals[static_cast<std::size_t>(inst.operand)] = pop();
        break;
      case Op::istore_0: case Op::lstore_0: case Op::fstore_0:
      case Op::dstore_0: case Op::astore_0:
        locals[0] = pop();
        break;
      case Op::istore_1: case Op::lstore_1: case Op::fstore_1:
      case Op::dstore_1: case Op::astore_1:
        locals[1] = pop();
        break;
      case Op::istore_2: case Op::lstore_2: case Op::fstore_2:
      case Op::dstore_2: case Op::astore_2:
        locals[2] = pop();
        break;
      case Op::istore_3: case Op::lstore_3: case Op::fstore_3:
      case Op::dstore_3: case Op::astore_3:
        locals[3] = pop();
        break;
      case Op::iinc: {
        Value& v = locals[static_cast<std::size_t>(inst.operand)];
        v = Value::make_int(wrap32(static_cast<std::int64_t>(v.as_int()) +
                                   inst.operand2));
        break;
      }

      // ---- array reads ----
      case Op::iaload: case Op::laload: case Op::faload: case Op::daload:
      case Op::aaload: case Op::baload: case Op::caload: case Op::saload: {
        const std::int32_t idx = pop().as_int();
        const Ref arr = pop().as_ref();
        push(heap_.array_get(arr, idx));
        break;
      }

      // ---- array writes ----
      case Op::iastore: case Op::lastore: case Op::fastore: case Op::dastore:
      case Op::aastore: {
        const Value v = pop();
        const std::int32_t idx = pop().as_int();
        const Ref arr = pop().as_ref();
        heap_.array_set(arr, idx, v);
        break;
      }
      case Op::bastore: {
        const Value v = pop();
        const std::int32_t idx = pop().as_int();
        const Ref arr = pop().as_ref();
        heap_.array_set(
            arr, idx,
            Value::make_int(static_cast<std::int8_t>(v.as_int())));
        break;
      }
      case Op::castore: {
        const Value v = pop();
        const std::int32_t idx = pop().as_int();
        const Ref arr = pop().as_ref();
        heap_.array_set(
            arr, idx,
            Value::make_int(static_cast<std::uint16_t>(v.as_int())));
        break;
      }
      case Op::sastore: {
        const Value v = pop();
        const std::int32_t idx = pop().as_int();
        const Ref arr = pop().as_ref();
        heap_.array_set(
            arr, idx,
            Value::make_int(static_cast<std::int16_t>(v.as_int())));
        break;
      }

      // ---- stack moves ----
      case Op::pop: (void)pop(); break;
      case Op::pop2: (void)pop(); (void)pop(); break;
      case Op::dup: {
        const Value x = stack.back();
        push(x);
        break;
      }
      case Op::dup_x1: {
        const Value x = pop();
        const Value y = pop();
        push(x); push(y); push(x);
        break;
      }
      case Op::dup_x2: {
        const Value x = pop();
        const Value y = pop();
        const Value z = pop();
        push(x); push(z); push(y); push(x);
        break;
      }
      case Op::dup2: {
        const Value x = pop();
        const Value y = pop();
        push(y); push(x); push(y); push(x);
        break;
      }
      case Op::dup2_x1: {
        const Value x = pop();
        const Value y = pop();
        const Value z = pop();
        push(y); push(x); push(z); push(y); push(x);
        break;
      }
      case Op::dup2_x2: {
        const Value x = pop();
        const Value y = pop();
        const Value z = pop();
        const Value w = pop();
        push(y); push(x); push(w); push(z); push(y); push(x);
        break;
      }
      case Op::swap: {
        const Value x = pop();
        const Value y = pop();
        push(x); push(y);
        break;
      }

      // ---- integer arithmetic ----
#define JF_IBIN(opname, expr)                                           \
  case Op::opname: {                                                    \
    const std::int32_t b = pop().as_int();                              \
    const std::int32_t a = pop().as_int();                              \
    (void)a; (void)b;                                                   \
    push(Value::make_int(expr));                                        \
    break;                                                              \
  }
      JF_IBIN(iadd, wrap32(std::int64_t{a} + b))
      JF_IBIN(isub, wrap32(std::int64_t{a} - b))
      JF_IBIN(imul, wrap32(std::int64_t{a} * b))
      JF_IBIN(idiv, idiv_checked(a, b))
      JF_IBIN(irem, irem_checked(a, b))
      JF_IBIN(iand, a & b)
      JF_IBIN(ior, a | b)
      JF_IBIN(ixor, a ^ b)
      JF_IBIN(ishl, wrap32(static_cast<std::int64_t>(
                        static_cast<std::uint32_t>(a) << (b & 31))))
      JF_IBIN(ishr, a >> (b & 31))
      JF_IBIN(iushr, static_cast<std::int32_t>(
                         static_cast<std::uint32_t>(a) >> (b & 31)))
#undef JF_IBIN
      case Op::ineg:
        push(Value::make_int(wrap32(-std::int64_t{pop().as_int()})));
        break;

      // ---- long arithmetic ----
#define JF_LBIN(opname, expr)                                           \
  case Op::opname: {                                                    \
    const std::int64_t b = pop().as_long();                             \
    const std::int64_t a = pop().as_long();                             \
    (void)a; (void)b;                                                   \
    push(Value::make_long(expr));                                       \
    break;                                                              \
  }
      JF_LBIN(ladd, static_cast<std::int64_t>(
                        static_cast<std::uint64_t>(a) +
                        static_cast<std::uint64_t>(b)))
      JF_LBIN(lsub, static_cast<std::int64_t>(
                        static_cast<std::uint64_t>(a) -
                        static_cast<std::uint64_t>(b)))
      JF_LBIN(lmul, static_cast<std::int64_t>(
                        static_cast<std::uint64_t>(a) *
                        static_cast<std::uint64_t>(b)))
      JF_LBIN(ldiv_, ldiv_checked(a, b))
      JF_LBIN(lrem, lrem_checked(a, b))
      JF_LBIN(land, a & b)
      JF_LBIN(lor, a | b)
      JF_LBIN(lxor, a ^ b)
#undef JF_LBIN
      case Op::lneg:
        push(Value::make_long(static_cast<std::int64_t>(
            -static_cast<std::uint64_t>(pop().as_long()))));
        break;
      case Op::lshl: {
        const std::int32_t s = pop().as_int();
        const std::int64_t a = pop().as_long();
        push(Value::make_long(static_cast<std::int64_t>(
            static_cast<std::uint64_t>(a) << (s & 63))));
        break;
      }
      case Op::lshr: {
        const std::int32_t s = pop().as_int();
        const std::int64_t a = pop().as_long();
        push(Value::make_long(a >> (s & 63)));
        break;
      }
      case Op::lushr: {
        const std::int32_t s = pop().as_int();
        const std::int64_t a = pop().as_long();
        push(Value::make_long(static_cast<std::int64_t>(
            static_cast<std::uint64_t>(a) >> (s & 63))));
        break;
      }

      // ---- float arithmetic (float precision) ----
#define JF_FBIN(opname, oper)                                           \
  case Op::opname: {                                                    \
    const float b = static_cast<float>(pop().as_fp());                  \
    const float a = static_cast<float>(pop().as_fp());                  \
    push(Value::make_float(a oper b));                                  \
    break;                                                              \
  }
      JF_FBIN(fadd, +)
      JF_FBIN(fsub, -)
      JF_FBIN(fmul, *)
      JF_FBIN(fdiv, /)
#undef JF_FBIN
      case Op::frem: {
        const float b = static_cast<float>(pop().as_fp());
        const float a = static_cast<float>(pop().as_fp());
        push(Value::make_float(std::fmod(a, b)));
        break;
      }
      case Op::fneg:
        push(Value::make_float(-static_cast<float>(pop().as_fp())));
        break;

      // ---- double arithmetic ----
#define JF_DBIN(opname, oper)                                           \
  case Op::opname: {                                                    \
    const double b = pop().as_fp();                                     \
    const double a = pop().as_fp();                                     \
    push(Value::make_double(a oper b));                                 \
    break;                                                              \
  }
      JF_DBIN(dadd, +)
      JF_DBIN(dsub, -)
      JF_DBIN(dmul, *)
      JF_DBIN(ddiv, /)
#undef JF_DBIN
      case Op::drem: {
        const double b = pop().as_fp();
        const double a = pop().as_fp();
        push(Value::make_double(std::fmod(a, b)));
        break;
      }
      case Op::dneg:
        push(Value::make_double(-pop().as_fp()));
        break;

      // ---- comparisons ----
      case Op::lcmp: {
        const std::int64_t b = pop().as_long();
        const std::int64_t a = pop().as_long();
        push(Value::make_int(a < b ? -1 : (a > b ? 1 : 0)));
        break;
      }
      case Op::fcmpl:
      case Op::fcmpg:
      case Op::dcmpl:
      case Op::dcmpg: {
        const double b = pop().as_fp();
        const double a = pop().as_fp();
        std::int32_t r;
        if (std::isnan(a) || std::isnan(b)) {
          r = (inst.op == Op::fcmpg || inst.op == Op::dcmpg) ? 1 : -1;
        } else {
          r = a < b ? -1 : (a > b ? 1 : 0);
        }
        push(Value::make_int(r));
        break;
      }

      // ---- conversions ----
      case Op::i2l: push(Value::make_long(pop().as_int())); break;
      case Op::i2f: push(Value::make_float(pop().as_int())); break;
      case Op::i2d: push(Value::make_double(pop().as_int())); break;
      case Op::l2i: push(Value::make_int(wrap32(pop().as_long()))); break;
      case Op::l2f:
        push(Value::make_float(static_cast<double>(pop().as_long())));
        break;
      case Op::l2d:
        push(Value::make_double(static_cast<double>(pop().as_long())));
        break;
      case Op::f2i: push(Value::make_int(fp2i(pop().as_fp()))); break;
      case Op::f2l: push(Value::make_long(fp2l(pop().as_fp()))); break;
      case Op::f2d: push(Value::make_double(pop().as_fp())); break;
      case Op::d2i: push(Value::make_int(fp2i(pop().as_fp()))); break;
      case Op::d2l: push(Value::make_long(fp2l(pop().as_fp()))); break;
      case Op::d2f: push(Value::make_float(pop().as_fp())); break;
      case Op::i2b:
        push(Value::make_int(static_cast<std::int8_t>(pop().as_int())));
        break;
      case Op::i2c:
        push(Value::make_int(static_cast<std::uint16_t>(pop().as_int())));
        break;
      case Op::i2s:
        push(Value::make_int(static_cast<std::int16_t>(pop().as_int())));
        break;

      // ---- branches ----
#define JF_IF1(opname, cond)                                            \
  case Op::opname: {                                                    \
    const std::int32_t v = pop().as_int();                              \
    (void)v;                                                            \
    if (cond) next = static_cast<std::size_t>(inst.target);             \
    break;                                                              \
  }
      JF_IF1(ifeq, v == 0)
      JF_IF1(ifne, v != 0)
      JF_IF1(iflt, v < 0)
      JF_IF1(ifge, v >= 0)
      JF_IF1(ifgt, v > 0)
      JF_IF1(ifle, v <= 0)
#undef JF_IF1
#define JF_IF2(opname, cond)                                            \
  case Op::opname: {                                                    \
    const std::int32_t b = pop().as_int();                              \
    const std::int32_t a = pop().as_int();                              \
    (void)a; (void)b;                                                   \
    if (cond) next = static_cast<std::size_t>(inst.target);             \
    break;                                                              \
  }
      JF_IF2(if_icmpeq, a == b)
      JF_IF2(if_icmpne, a != b)
      JF_IF2(if_icmplt, a < b)
      JF_IF2(if_icmpge, a >= b)
      JF_IF2(if_icmpgt, a > b)
      JF_IF2(if_icmple, a <= b)
#undef JF_IF2
      case Op::if_acmpeq: {
        const Ref b = pop().as_ref();
        const Ref a = pop().as_ref();
        if (a == b) next = static_cast<std::size_t>(inst.target);
        break;
      }
      case Op::if_acmpne: {
        const Ref b = pop().as_ref();
        const Ref a = pop().as_ref();
        if (a != b) next = static_cast<std::size_t>(inst.target);
        break;
      }
      case Op::ifnull:
        if (pop().as_ref() == kNull) {
          next = static_cast<std::size_t>(inst.target);
        }
        break;
      case Op::ifnonnull:
        if (pop().as_ref() != kNull) {
          next = static_cast<std::size_t>(inst.target);
        }
        break;
      case Op::goto_:
      case Op::goto_w:
        next = static_cast<std::size_t>(inst.target);
        break;

      // ---- switches ----
      case Op::tableswitch: {
        const SwitchTable& t =
            m.switches[static_cast<std::size_t>(inst.operand)];
        const std::int32_t key = pop().as_int();
        next = static_cast<std::size_t>(t.default_target);
        if (!t.keys.empty() && key >= t.keys.front() &&
            key <= t.keys.back()) {
          next = static_cast<std::size_t>(
              t.targets[static_cast<std::size_t>(key - t.keys.front())]);
        }
        break;
      }
      case Op::lookupswitch: {
        const SwitchTable& t =
            m.switches[static_cast<std::size_t>(inst.operand)];
        const std::int32_t key = pop().as_int();
        next = static_cast<std::size_t>(t.default_target);
        for (std::size_t k = 0; k < t.keys.size(); ++k) {
          if (t.keys[k] == key) {
            next = static_cast<std::size_t>(t.targets[k]);
            break;
          }
        }
        break;
      }

      // ---- returns ----
      case Op::ireturn: case Op::lreturn: case Op::freturn:
      case Op::dreturn: case Op::areturn:
        return pop();
      case Op::return_:
        return Value::make_default(ValueType::Void);
      case Op::athrow:
        throw JvmException("athrow from " + m.name);

      // ---- fields (with _Quick rewriting) ----
      case Op::getstatic:
      case Op::putstatic:
      case Op::getfield:
      case Op::putfield: {
        CpEntry& e = program_.pool.at_mutable(inst.operand);
        const bytecode::ClassDef* cls =
            program_.find_class(e.field.class_name);
        if (cls == nullptr) {
          throw std::runtime_error("unresolved class " + e.field.class_name);
        }
        const auto slot = e.field.is_static
                              ? cls->static_slot(e.field.field_name)
                              : cls->instance_slot(e.field.field_name);
        if (!slot) {
          throw std::runtime_error("unresolved field " + e.field.field_name);
        }
        e.field.resolved_slot = *slot;
        inst.op = bytecode::quick_form(inst.op);
        // Re-execute this pc as the quick form without advancing, exactly
        // like an interpreter re-dispatching the patched opcode. The base
        // execution was already profiled (Table 5's "Storage Base" count).
        next = pc;
        break;
      }
      case Op::getstatic_quick: {
        const CpEntry& e = program_.pool.at(inst.operand);
        push(heap_.get_static(*program_.find_class(e.field.class_name),
                              e.field.resolved_slot));
        break;
      }
      case Op::putstatic_quick: {
        const CpEntry& e = program_.pool.at(inst.operand);
        heap_.put_static(*program_.find_class(e.field.class_name),
                         e.field.resolved_slot, pop());
        break;
      }
      case Op::getfield_quick: {
        const CpEntry& e = program_.pool.at(inst.operand);
        const Ref obj = pop().as_ref();
        push(heap_.get_field(obj, e.field.resolved_slot));
        break;
      }
      case Op::putfield_quick: {
        const CpEntry& e = program_.pool.at(inst.operand);
        const Value v = pop();
        const Ref obj = pop().as_ref();
        heap_.put_field(obj, e.field.resolved_slot, v);
        break;
      }

      // ---- calls ----
      case Op::invokevirtual:
      case Op::invokespecial:
      case Op::invokestatic:
      case Op::invokeinterface: {
        const CpEntry& e = program_.pool.at(inst.operand);
        std::vector<Value> args(inst.pop);
        for (int k = inst.pop - 1; k >= 0; --k) {
          args[static_cast<std::size_t>(k)] = pop();
        }
        const Method* callee = program_.find(e.method.qualified_name);
        Value result;
        if (callee != nullptr) {
          result = run(*callee, std::move(args), depth + 1);
        } else {
          auto it = intrinsics_.find(e.method.qualified_name);
          if (it == intrinsics_.end()) {
            throw std::runtime_error("unresolved method " +
                                     e.method.qualified_name);
          }
          result = it->second(*this, args);
        }
        if (e.method.return_type != ValueType::Void) push(result);
        break;
      }

      // ---- objects / arrays / services ----
      case Op::new_: {
        const CpEntry& e = program_.pool.at(inst.operand);
        const bytecode::ClassDef* cls = program_.find_class(e.cls.class_name);
        if (cls == nullptr) {
          throw std::runtime_error("new of unknown class " +
                                   e.cls.class_name);
        }
        push(Value::make_ref(heap_.new_object(*cls)));
        break;
      }
      case Op::newarray: {
        const std::int32_t len = pop().as_int();
        push(Value::make_ref(heap_.new_array(
            static_cast<ValueType>(inst.operand), len)));
        break;
      }
      case Op::anewarray: {
        const std::int32_t len = pop().as_int();
        push(Value::make_ref(heap_.new_array(ValueType::Ref, len)));
        break;
      }
      case Op::multianewarray: {
        std::vector<std::int32_t> dims(static_cast<std::size_t>(inst.pop));
        for (int k = inst.pop - 1; k >= 0; --k) {
          dims[static_cast<std::size_t>(k)] = pop().as_int();
        }
        push(Value::make_ref(heap_.new_multi_array(ValueType::Double, dims)));
        break;
      }
      case Op::arraylength:
        push(Value::make_int(heap_.array_length(pop().as_ref())));
        break;
      case Op::checkcast:
        break;  // type system is honorary here; verifier guards structure
      case Op::instanceof_:
        push(Value::make_int(pop().as_ref() != kNull ? 1 : 0));
        break;
      case Op::monitorenter:
      case Op::monitorexit:
        (void)pop();  // single-threaded reference implementation
        break;

      case Op::jsr:
      case Op::jsr_w:
      case Op::ret:
        throw std::runtime_error("jsr/ret rejected by verifier; unreachable");
    }
    if (branch_hook_ &&
        (inst.is_branch() || inst.op == Op::tableswitch ||
         inst.op == Op::lookupswitch)) {
      branch_hook_(m, static_cast<std::int32_t>(pc),
                   static_cast<std::int32_t>(next));
    }
    pc = next;
  }
}

}  // namespace javaflow::jvm
