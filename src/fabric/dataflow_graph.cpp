#include "fabric/dataflow_graph.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <tuple>
#include <set>
#include <stdexcept>

namespace javaflow::fabric {
namespace {

using bytecode::Instruction;
using bytecode::Method;
using bytecode::Op;

// Abstract stack: each slot holds the set of possible producers.
using Slot = std::set<std::int32_t>;
using Stack = std::vector<Slot>;

std::vector<std::int32_t> successors(const Method& m, std::size_t at) {
  const Instruction& inst = m.code[at];
  std::vector<std::int32_t> out;
  const bytecode::Group g = inst.group();
  if (g == bytecode::Group::Return) return out;
  if (inst.op == Op::tableswitch || inst.op == Op::lookupswitch) {
    const bytecode::SwitchTable& t =
        m.switches[static_cast<std::size_t>(inst.operand)];
    out = t.targets;
    out.push_back(t.default_target);
    return out;
  }
  if (inst.is_branch()) {
    out.push_back(inst.target);
    if (inst.op != Op::goto_ && inst.op != Op::goto_w) {
      out.push_back(static_cast<std::int32_t>(at) + 1);
    }
    return out;
  }
  out.push_back(static_cast<std::int32_t>(at) + 1);
  return out;
}

}  // namespace

std::vector<Edge> DataflowGraph::producers_of(std::int32_t consumer,
                                              std::uint8_t side) const {
  std::vector<Edge> out;
  for (const Edge& e : edges) {
    if (e.consumer == consumer && e.side == side) out.push_back(e);
  }
  return out;
}

std::size_t DataflowGraph::producer_count(std::int32_t consumer,
                                          std::uint8_t side) const {
  std::size_t n = 0;
  for (const Edge& e : edges) {
    if (e.consumer == consumer && e.side == side) ++n;
  }
  return n;
}

std::size_t DataflowGraph::max_fan_out() const {
  std::size_t best = 0;
  for (const auto& out : consumers_of) best = std::max(best, out.size());
  return best;
}

DataflowGraph build_dataflow_graph(const bytecode::Method& m,
                                   const bytecode::ConstantPool& pool) {
  (void)pool;
  const std::size_t n = m.code.size();
  std::vector<Stack> entry(n);
  std::vector<bool> reachable(n, false);
  std::deque<std::int32_t> worklist;

  reachable[0] = true;
  worklist.push_back(0);

  // Edge accumulation: consumer x side -> producer set, so iterations to
  // fixpoint do not duplicate edges.
  std::set<std::tuple<std::int32_t, std::int32_t, std::uint8_t>> edge_set;

  auto merge_into = [&](std::int32_t succ, const Stack& s) {
    if (succ < 0 || static_cast<std::size_t>(succ) >= n) {
      throw std::runtime_error("dataflow graph: successor out of range");
    }
    const auto idx = static_cast<std::size_t>(succ);
    if (!reachable[idx]) {
      reachable[idx] = true;
      entry[idx] = s;
      worklist.push_back(succ);
      return;
    }
    if (entry[idx].size() != s.size()) {
      throw std::runtime_error(
          "dataflow graph: merge depth mismatch (method not verified?)");
    }
    bool grew = false;
    for (std::size_t k = 0; k < s.size(); ++k) {
      for (const std::int32_t p : s[k]) {
        if (entry[idx][k].insert(p).second) grew = true;
      }
    }
    if (grew) worklist.push_back(succ);
  };

  while (!worklist.empty()) {
    const auto at = static_cast<std::size_t>(worklist.front());
    worklist.pop_front();
    Stack s = entry[at];
    const Instruction& inst = m.code[at];

    // Pops: side 1 is the top of stack.
    for (int k = 0; k < inst.pop; ++k) {
      if (s.empty()) {
        throw std::runtime_error("dataflow graph: stack underflow");
      }
      const Slot top = std::move(s.back());
      s.pop_back();
      for (const std::int32_t producer : top) {
        edge_set.emplace(producer, static_cast<std::int32_t>(at),
                         static_cast<std::uint8_t>(k + 1));
      }
    }
    // Pushes: this instruction is the sole producer of its results.
    for (int k = 0; k < inst.push; ++k) {
      s.push_back(Slot{static_cast<std::int32_t>(at)});
    }
    for (const std::int32_t succ : successors(m, at)) {
      merge_into(succ, s);
    }
  }

  DataflowGraph g;
  g.consumers_of.resize(n);
  // Group by (consumer, side) to mark merges.
  std::map<std::pair<std::int32_t, std::uint8_t>, std::vector<std::int32_t>>
      by_consumer_side;
  for (const auto& [producer, consumer, side] : edge_set) {
    by_consumer_side[{consumer, side}].push_back(producer);
  }
  for (auto& [key, producers] : by_consumer_side) {
    const bool merge = producers.size() >= 2;
    if (merge) ++g.merge_count;
    for (const std::int32_t producer : producers) {
      Edge e;
      e.producer = producer;
      e.consumer = key.first;
      e.side = key.second;
      e.merge = merge;
      e.back = producer >= key.first;
      if (e.back) ++g.back_merge_count;
      g.edges.push_back(e);
      g.consumers_of[static_cast<std::size_t>(producer)].push_back(e);
      ++g.total_dflows;
    }
  }
  for (auto& out : g.consumers_of) {
    std::sort(out.begin(), out.end(), [](const Edge& a, const Edge& b) {
      return std::tie(a.consumer, a.side) < std::tie(b.consumer, b.side);
    });
  }
  return g;
}

}  // namespace javaflow::fabric
