#include "fabric/resolver.hpp"

#include <algorithm>
#include <deque>
#include <map>

namespace javaflow::fabric {
namespace {

using bytecode::Instruction;
using bytecode::Method;

JumpStats jump_stats(const Method& m, bool backward) {
  JumpStats s;
  std::int64_t total_len = 0;
  for (std::size_t i = 0; i < m.code.size(); ++i) {
    const Instruction& inst = m.code[i];
    if (!inst.is_branch()) continue;
    const std::int32_t len = inst.target - static_cast<std::int32_t>(i);
    const bool is_back = len < 0;
    if (is_back != backward) continue;
    ++s.count;
    const std::int32_t alen = len < 0 ? -len : len;
    total_len += alen;
    s.max_length = std::max(s.max_length, alen);
  }
  if (s.count > 0) {
    s.avg_length = static_cast<double>(total_len) / s.count;
  }
  return s;
}

}  // namespace

std::vector<Edge> greedy_needs_up_edges(const Method& m) {
  // The literal §6.2 walk: each consumer sends one need per pop up the
  // chain; the nearest node with an open push captures it. (No branch
  // tags — valid for straight-line regions; tests compare against the
  // graph on branch-free methods.)
  std::vector<int> push_remaining(m.code.size());
  for (std::size_t i = 0; i < m.code.size(); ++i) {
    push_remaining[i] = m.code[i].push;
  }
  std::vector<Edge> edges;
  for (std::size_t c = 0; c < m.code.size(); ++c) {
    for (int side = 1; side <= m.code[c].pop; ++side) {
      for (std::int32_t u = static_cast<std::int32_t>(c) - 1; u >= 0; --u) {
        if (push_remaining[static_cast<std::size_t>(u)] > 0) {
          --push_remaining[static_cast<std::size_t>(u)];
          Edge e;
          e.producer = u;
          e.consumer = static_cast<std::int32_t>(c);
          e.side = static_cast<std::uint8_t>(side);
          edges.push_back(e);
          break;
        }
      }
    }
  }
  return edges;
}

ResolutionResult resolve(const Fabric& fabric, const Method& m,
                         const Placement& placement,
                         const bytecode::ConstantPool& pool) {
  ResolutionResult r;
  if (!placement.fits) return r;

  r.graph = build_dataflow_graph(m, pool);
  r.total_dflows = r.graph.total_dflows;
  r.merges = r.graph.merge_count;
  r.back_merges = r.graph.back_merge_count;
  r.forward_jumps = jump_stats(m, /*backward=*/false);
  r.back_jumps = jump_stats(m, /*backward=*/true);

  // Fan-out and arc statistics (Table 10).
  std::int64_t fan_total = 0, fan_nodes = 0, arc_total = 0, arc_edges = 0;
  for (std::size_t prod = 0; prod < r.graph.consumers_of.size(); ++prod) {
    const auto& outs = r.graph.consumers_of[prod];
    if (outs.empty()) continue;
    ++fan_nodes;
    fan_total += static_cast<std::int64_t>(outs.size());
    r.fanout_max =
        std::max(r.fanout_max, static_cast<std::int32_t>(outs.size()));
    for (const Edge& e : outs) {
      const std::int32_t arc =
          e.consumer > e.producer ? e.consumer - e.producer
                                  : e.producer - e.consumer;
      arc_total += arc;
      ++arc_edges;
      r.arc_max = std::max(r.arc_max, arc);
    }
  }
  if (fan_nodes > 0) {
    r.fanout_avg = static_cast<double>(fan_total) /
                   static_cast<double>(fan_nodes);
  }
  if (arc_edges > 0) {
    r.arc_avg = static_cast<double>(arc_total) /
                static_cast<double>(arc_edges);
  }

  const bool collapsed = fabric.collapsed();
  const std::int64_t hop = collapsed ? 0 : 1;
  const auto n = static_cast<std::int32_t>(m.code.size());
  const std::int32_t n_slots = placement.max_slot + 1;

  // ---- Phase A: addresses down (loop circulation + wrapped tokens) ----
  std::int64_t phase_a = hop * (n_slots + 1);
  for (std::size_t i = 0; i < m.code.size(); ++i) {
    const Instruction& inst = m.code[i];
    if (inst.is_branch() && inst.target < static_cast<std::int32_t>(i)) {
      // Back target: the address token wraps at the bottom instruction.
      const std::int64_t arrival =
          hop * (n_slots +
                 placement.slot_of[static_cast<std::size_t>(inst.target)] +
                 1);
      phase_a = std::max(phase_a, arrival);
    }
  }
  r.phase_a_cycles = phase_a;

  // ---- Phase B: needs up, tick-accurate with own-before-relay ----
  struct Need {
    std::int32_t producer;  // capture point (path-exact, = Branch-ID tags)
    std::int32_t consumer;
    std::uint8_t side;
  };
  // Per method node: own needs (sent first) and relayed needs.
  std::vector<std::deque<Need>> own(static_cast<std::size_t>(n));
  std::vector<std::deque<Need>> relay(static_cast<std::size_t>(n));
  // In-flight messages keyed by arrival tick.
  std::multimap<std::int64_t, std::pair<std::int32_t, Need>> in_flight;

  std::int64_t outstanding = 0;
  for (const Edge& e : r.graph.edges) {
    if (e.back) continue;  // none in valid Java (asserted by Table 7)
    own[static_cast<std::size_t>(e.consumer)].push_back(
        Need{e.producer, e.consumer, e.side});
    ++outstanding;
    ++r.need_messages;
  }
  // Order each node's own needs by side (side 1 emitted first).
  for (auto& q : own) {
    std::stable_sort(q.begin(), q.end(),
                     [](const Need& a, const Need& b) {
                       return a.side < b.side;
                     });
  }

  // Injection times: the CMD_SEND_NEEDS_UP wave passes node i at
  // hop * (slot + 1) ticks.
  std::vector<std::int64_t> inject_at(static_cast<std::size_t>(n));
  for (std::int32_t i = 0; i < n; ++i) {
    inject_at[static_cast<std::size_t>(i)] =
        hop * (placement.slot_of[static_cast<std::size_t>(i)] + 1);
  }

  std::int64_t tick = 0;
  std::int64_t last_tick = 0;
  auto gap = [&](std::int32_t from_node) -> std::int64_t {
    // Reverse-network hops from method node `from_node` to node-1.
    if (from_node <= 0) return hop;
    return hop *
           (placement.slot_of[static_cast<std::size_t>(from_node)] -
            placement.slot_of[static_cast<std::size_t>(from_node) - 1]);
  };

  const std::int64_t max_ticks =
      collapsed ? 4 * std::int64_t{n} + 64
                : 64 * std::int64_t{n_slots} + 1024;
  while (outstanding > 0 && tick <= max_ticks) {
    // Deliveries at this tick.
    auto [lo, hi] = in_flight.equal_range(tick);
    for (auto it = lo; it != hi; ++it) {
      const auto& [node, need] = it->second;
      if (node == need.producer) {
        --outstanding;
        last_tick = tick;
        ++r.need_hops;
      } else {
        relay[static_cast<std::size_t>(node)].push_back(need);
        ++r.need_hops;
      }
    }
    in_flight.erase(lo, hi);
    // Each node dispatches at most one message per serial tick; its own
    // needs go before anything relayed from below (§6.2).
    for (std::int32_t i = 0; i < n; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      const std::int32_t depth = static_cast<std::int32_t>(
          own[idx].size() + relay[idx].size());
      r.max_queue_up = std::max(r.max_queue_up, depth);
      if (tick < inject_at[idx]) continue;  // wave not yet arrived
      Need need{};
      if (!own[idx].empty()) {
        need = own[idx].front();
        own[idx].pop_front();
      } else if (!relay[idx].empty()) {
        need = relay[idx].front();
        relay[idx].pop_front();
      } else {
        continue;
      }
      const std::int32_t dest = i - 1;
      if (dest < 0) {
        // Reached the Anchor unmatched — validation error (§6.2); count
        // it resolved to keep the simulation terminating.
        --outstanding;
        continue;
      }
      const std::int64_t arrive = tick + std::max<std::int64_t>(gap(i), 1);
      in_flight.emplace(arrive, std::make_pair(dest, need));
    }
    ++tick;
  }
  r.phase_b_cycles = std::max(
      last_tick, *std::max_element(inject_at.begin(), inject_at.end()));
  r.total_cycles = r.phase_a_cycles + r.phase_b_cycles;
  r.ok = outstanding == 0;
  return r;
}

}  // namespace javaflow::fabric
