// DataFlow address resolution (paper §6.2, Figures 21-22).
//
// After loading, two serial-network passes convert the procedural method
// into producer/consumer DataFlow addressing:
//   Phase A — CMD_SEND_ADDRESSES_DOWN: every control-transfer instruction
//     announces its linear address to its target, so targets learn their
//     non-sequential sources. The pass completes when the trailing
//     TAIL_TOKEN returns to the Anchor (the chain wraps at the bottom
//     instruction, §6.1).
//   Phase B — CMD_SEND_NEEDS_UP: every instruction emits one need message
//     per pop per control-flow source; needs travel the reverse network,
//     each node forwarding relayed needs only after emitting its own
//     (which is what creates the per-node queues of Table 11), until an
//     upstream producer with an open push captures them.
//
// The simulation here reproduces the message movement, cycle counts and
// queue depths of that protocol. Capture decisions are resolved with the
// path-exact dataflow graph (the in-protocol equivalent is the Branch-ID
// tagging of §6.2); tests verify that for branch-free regions a plain
// greedy open-push matching reaches the same edges.
#pragma once

#include <cstdint>
#include <vector>

#include "fabric/dataflow_graph.hpp"
#include "fabric/fabric.hpp"
#include "fabric/loader.hpp"

namespace javaflow::fabric {

struct JumpStats {
  std::int32_t count = 0;
  double avg_length = 0.0;  // linear-address distance of the jump
  std::int32_t max_length = 0;
};

struct ResolutionResult {
  bool ok = false;

  DataflowGraph graph;  // authoritative producer/consumer edges

  // Protocol metrics
  std::int64_t phase_a_cycles = 0;  // addresses-down circulation
  std::int64_t phase_b_cycles = 0;  // needs-up until all captured
  std::int64_t total_cycles = 0;    // Table 7 "Total Cycles"
  std::int32_t max_queue_up = 0;    // Table 11 "Max Q Up"
  std::int64_t need_messages = 0;   // needs emitted in phase B
  std::int64_t need_hops = 0;       // total reverse-network hops

  // Structural metrics (Tables 7, 10, 12-14)
  std::int32_t total_dflows = 0;
  std::int32_t merges = 0;
  std::int32_t back_merges = 0;
  JumpStats forward_jumps;
  JumpStats back_jumps;
  double fanout_avg = 0.0;   // over producers with >= 1 consumer
  std::int32_t fanout_max = 0;
  double arc_avg = 0.0;      // |consumer - producer| linear distance
  std::int32_t arc_max = 0;
};

// Runs both resolution passes for a placed method.
ResolutionResult resolve(const Fabric& fabric, const bytecode::Method& m,
                         const Placement& placement,
                         const bytecode::ConstantPool& pool);

// The plain greedy open-push matcher (no branch tags): follows the §6.2
// description literally. Exposed for tests — it must agree with the
// dataflow graph on methods without DataFlow merges.
std::vector<Edge> greedy_needs_up_edges(const bytecode::Method& m);

}  // namespace javaflow::fabric
