// Method loading: the self-organizing, greedy placement of a method's
// instructions into the DataFlow Fabric (paper §6.2 "Loading a Method",
// Figure 20).
//
// Instructions stream down the serial chain as CMD_LOAD_INSTRUCTION
// messages; the first free, type-matching node accepts each one and
// forwards the rest. No central allocator exists — the placement below is
// exactly the greedy fixed point that process reaches.
#pragma once

#include <cstdint>
#include <vector>

#include "bytecode/method.hpp"
#include "fabric/fabric.hpp"

namespace javaflow::fabric {

struct Placement {
  bool fits = false;
  std::vector<std::int32_t> slot_of;  // linear address -> chain slot
  std::int32_t max_slot = -1;         // highest chain slot consumed
  // Serial cycles for the pipelined load stream: the Anchor injects one
  // instruction per serial clock and the last one must reach max_slot.
  std::int64_t load_cycles = 0;

  // Table 19's metric: nodes traversed per instruction.
  double nodes_per_instruction(std::size_t insts) const {
    return insts == 0 ? 0.0
                      : static_cast<double>(max_slot + 1) /
                            static_cast<double>(insts);
  }

  // Read-only introspection for analysis passes: whether `linear` was
  // assigned a chain slot, and that slot (-1 when unassigned or out of
  // range — never throws, so lint rules can report instead of crash).
  bool placed(std::int32_t linear) const noexcept {
    return slot(linear) >= 0;
  }
  std::int32_t slot(std::int32_t linear) const noexcept {
    if (linear < 0 ||
        static_cast<std::size_t>(linear) >= slot_of.size()) {
      return -1;
    }
    return slot_of[static_cast<std::size_t>(linear)];
  }
};

// Greedy load starting at chain slot `first_slot` (the slot after the
// method's Anchor Node).
Placement load_method(const Fabric& fabric, const bytecode::Method& m,
                      std::int32_t first_slot = 0);

// Greedy load that also skips slots already holding other methods'
// instructions — the multi-method residency case (§6.2 "Management and
// Cleanup": busy nodes simply pass the load stream along). `occupied`
// may be shorter than the fabric; missing entries count as free.
Placement load_method(const Fabric& fabric, const bytecode::Method& m,
                      const std::vector<bool>& occupied,
                      std::int32_t first_slot);

}  // namespace javaflow::fabric
