// Instruction Node runtime state (paper §4.2, Figure 13).
//
// One Instruction Data Unit per node, as in the paper's simulations
// ("the simulations in Chapter 7 utilize a single Instruction Data Unit
// in each Instruction Node"). The engine drives these state machines;
// the firing rules per instruction group are in §6.3.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "bytecode/method.hpp"
#include "fabric/dataflow_graph.hpp"
#include "net/message.hpp"

namespace javaflow::fabric {

// Figure 13 status values.
enum class NodeStatus : std::uint8_t {
  Ready,          // STATUS_READY — awaiting tokens
  WaitingService, // storage read / GPP service outstanding
  Fired,          // executed this pass (until loop reset)
};

struct InstructionNodeState {
  // ---- static after load + resolution ----
  bytecode::Instruction inst;
  std::int32_t linear = -1;          // serial address
  std::int32_t slot = -1;            // fabric chain slot (x, y, p)
  std::vector<Edge> consumers;       // resolved target DataFlow addresses
  std::vector<std::int32_t> source_linears;  // control-flow sources

  // ---- dynamic per execution pass ----
  NodeStatus status = NodeStatus::Ready;
  bool head_received = false;
  bool memory_token_held = false;    // ordered storage holds MEMORY_TOKEN
  bool fired = false;
  bool executing = false;
  std::int32_t pops_received = 0;    // 'PopsReceived' counter
  bool kill_next_register_token = false;  // LocalWrite fired before the
                                          // stale REGISTER_TOKEN arrived
  // Tokens buffered at control-transfer nodes (and TAIL everywhere).
  std::deque<net::SerialMessage> buffered;
  // Forward routing decision after a control node fires: tokens arriving
  // later follow it until the TAIL passes.
  bool pass_through = false;
  std::int32_t route_to = net::kToNext;

  bool is_control() const {
    return bytecode::is_control_transfer(inst.group());
  }

  // Reset for the next loop iteration (HEAD_TOKEN passing up the reverse
  // network resets every node it passes, §6.3 Control Flow).
  void reset_for_iteration() {
    status = NodeStatus::Ready;
    head_received = false;
    memory_token_held = false;
    fired = false;
    executing = false;
    pops_received = 0;
    kill_next_register_token = false;
    pass_through = false;
    route_to = net::kToNext;
    buffered.clear();
  }
};

}  // namespace javaflow::fabric
