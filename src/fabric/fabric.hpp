// The DataFlow Fabric: a 2-D grid of Instruction Nodes threaded by the
// serial chain (paper §4.1-4.2, Figure 12).
//
// A fabric is characterized by its layout (Table 15 configurations):
//   Compact       — homogeneous nodes, every chain slot accepts any
//                   instruction
//   Sparse        — every other chain slot is a blank (router-only) node
//   Heterogeneous — repeating 10-slot row pattern of 6 arithmetic,
//                   1 floating-point, 2 storage, 1 control node, sized
//                   from the static mix analysis (Figure 26 / Table 6)
//   Collapsed     — the Baseline measurement fiction: same nodes, but all
//                   serial transfers are free and all mesh distances 1
#pragma once

#include <cstdint>
#include <optional>

#include "bytecode/opcode.hpp"
#include "net/mesh_network.hpp"
#include "net/ring_network.hpp"
#include "net/serial_network.hpp"

namespace javaflow::fabric {

enum class LayoutKind : std::uint8_t {
  Collapsed,
  Compact,
  Sparse,
  Heterogeneous,
};

std::string_view layout_name(LayoutKind k) noexcept;

struct FabricOptions {
  LayoutKind layout = LayoutKind::Compact;
  std::int32_t width = 10;           // mesh row width (§7.2)
  std::int32_t capacity = 10000;     // Instruction Node budget (§2.1:
                                     // "1,000 to 10,000 cores")
  net::RingLatencies ring_latencies; // service-time assumptions
};

class Fabric {
 public:
  explicit Fabric(FabricOptions options);

  const FabricOptions& options() const noexcept { return options_; }
  bool collapsed() const noexcept {
    return options_.layout == LayoutKind::Collapsed;
  }

  // What a chain slot can host. Blank slots host nothing (Sparse layout).
  // Homogeneous slots (Compact/Collapsed) host anything.
  bool slot_accepts(std::int32_t slot, bytecode::NodeType type) const;
  bytecode::NodeType slot_type(std::int32_t slot) const;

  const net::SerialNetwork& serial() const noexcept { return serial_; }
  net::SerialNetwork& serial() noexcept { return serial_; }
  const net::MeshNetwork& mesh() const noexcept { return mesh_; }
  net::MeshNetwork& mesh() noexcept { return mesh_; }
  const net::RingNetwork& ring() const noexcept { return ring_; }
  net::RingNetwork& ring() noexcept { return ring_; }

  // Serial transit in ticks between two chain slots (1 tick per hop;
  // free when collapsed). The anchor sits at virtual slot -1.
  std::int64_t serial_ticks(std::int32_t from_slot,
                            std::int32_t to_slot) const {
    return serial_.transit_ticks(from_slot < 0 ? 0 : from_slot,
                                 to_slot < 0 ? 0 : to_slot, collapsed()) +
           ((from_slot < 0 || to_slot < 0) && !collapsed() ? 1 : 0);
  }

  // Mesh transit in mesh cycles between two chain slots.
  std::int64_t mesh_cycles(std::int32_t from_slot,
                           std::int32_t to_slot) const {
    return mesh_.transit_mesh_cycles(from_slot, to_slot, collapsed());
  }

 private:
  FabricOptions options_;
  net::SerialNetwork serial_;
  net::MeshNetwork mesh_;
  net::RingNetwork ring_;
};

}  // namespace javaflow::fabric
