#include "fabric/folding.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <stdexcept>

namespace javaflow::fabric {
namespace {

using bytecode::Group;
using bytecode::Instruction;
using bytecode::Method;
using bytecode::Op;

using Slot = std::set<std::int32_t>;
using Stack = std::vector<Slot>;

std::vector<bool> branch_targets(const Method& m) {
  std::vector<bool> marked(m.code.size(), false);
  for (const Instruction& inst : m.code) {
    if (inst.is_branch()) {
      marked[static_cast<std::size_t>(inst.target)] = true;
    }
    if (inst.op == Op::tableswitch || inst.op == Op::lookupswitch) {
      const bytecode::SwitchTable& t =
          m.switches[static_cast<std::size_t>(inst.operand)];
      for (const std::int32_t target : t.targets) {
        marked[static_cast<std::size_t>(target)] = true;
      }
      marked[static_cast<std::size_t>(t.default_target)] = true;
    }
  }
  return marked;
}

bool is_mover(const Instruction& inst) {
  return inst.group() == Group::ArithMove && inst.pop > 0;
}

std::vector<bool> elidable_set(const Method& m) {
  const std::vector<bool> targets = branch_targets(m);
  std::vector<bool> elidable(m.code.size(), false);
  for (std::size_t i = 0; i < m.code.size(); ++i) {
    elidable[i] = is_mover(m.code[i]) && !targets[i];
  }
  return elidable;
}

// Applies a mover's stack permutation to producer sets: each pushed slot
// copies the popped slot bound to the same signature letter.
void apply_mover(const Instruction& inst, Stack& s) {
  const std::string_view sig = bytecode::op_info(inst.op).sig;
  const auto sep = sig.find('>');
  const std::string_view pops = sig.substr(0, sep);
  const std::string_view pushes = sig.substr(sep + 1);
  if (s.size() < pops.size()) {
    throw std::runtime_error("folding: stack underflow at mover");
  }
  // Popped sets, bottom-first, matching the pops string left-to-right.
  std::vector<Slot> in(pops.size());
  for (std::size_t k = 0; k < pops.size(); ++k) {
    in[k] = s[s.size() - pops.size() + k];
  }
  s.resize(s.size() - pops.size());
  for (const char c : pushes) {
    const std::size_t idx = pops.find(c);
    if (idx == std::string_view::npos) {
      throw std::runtime_error("folding: unmapped push letter");
    }
    s.push_back(in[idx]);
  }
}

std::vector<std::int32_t> successors(const Method& m, std::size_t at) {
  const Instruction& inst = m.code[at];
  std::vector<std::int32_t> out;
  if (inst.group() == Group::Return) return out;
  if (inst.op == Op::tableswitch || inst.op == Op::lookupswitch) {
    const bytecode::SwitchTable& t =
        m.switches[static_cast<std::size_t>(inst.operand)];
    out = t.targets;
    out.push_back(t.default_target);
    return out;
  }
  if (inst.is_branch()) {
    out.push_back(inst.target);
    if (inst.op != Op::goto_ && inst.op != Op::goto_w) {
      out.push_back(static_cast<std::int32_t>(at) + 1);
    }
    return out;
  }
  out.push_back(static_cast<std::int32_t>(at) + 1);
  return out;
}

// Dataflow graph with the elidable movers handled transparently.
DataflowGraph build_transparent_graph(const Method& m,
                                      const std::vector<bool>& elidable) {
  const std::size_t n = m.code.size();
  std::vector<Stack> entry(n);
  std::vector<bool> reachable(n, false);
  std::deque<std::int32_t> worklist;
  reachable[0] = true;
  worklist.push_back(0);
  std::set<std::tuple<std::int32_t, std::int32_t, std::uint8_t>> edge_set;

  auto merge_into = [&](std::int32_t succ, const Stack& s) {
    const auto idx = static_cast<std::size_t>(succ);
    if (!reachable[idx]) {
      reachable[idx] = true;
      entry[idx] = s;
      worklist.push_back(succ);
      return;
    }
    bool grew = false;
    for (std::size_t k = 0; k < s.size(); ++k) {
      for (const std::int32_t p : s[k]) {
        if (entry[idx][k].insert(p).second) grew = true;
      }
    }
    if (grew) worklist.push_back(succ);
  };

  while (!worklist.empty()) {
    const auto at = static_cast<std::size_t>(worklist.front());
    worklist.pop_front();
    Stack s = entry[at];
    const Instruction& inst = m.code[at];
    if (elidable[at]) {
      apply_mover(inst, s);  // transparent: no edges, just permutation
    } else {
      for (int k = 0; k < inst.pop; ++k) {
        const Slot top = std::move(s.back());
        s.pop_back();
        for (const std::int32_t producer : top) {
          edge_set.emplace(producer, static_cast<std::int32_t>(at),
                           static_cast<std::uint8_t>(k + 1));
        }
      }
      for (int k = 0; k < inst.push; ++k) {
        s.push_back(Slot{static_cast<std::int32_t>(at)});
      }
    }
    for (const std::int32_t succ : successors(m, at)) {
      merge_into(succ, s);
    }
  }

  DataflowGraph g;
  g.consumers_of.resize(n);
  std::map<std::pair<std::int32_t, std::uint8_t>, std::vector<std::int32_t>>
      by_consumer_side;
  for (const auto& [producer, consumer, side] : edge_set) {
    by_consumer_side[{consumer, side}].push_back(producer);
  }
  for (auto& [key, producers] : by_consumer_side) {
    const bool merge = producers.size() >= 2;
    if (merge) ++g.merge_count;
    for (const std::int32_t producer : producers) {
      Edge e;
      e.producer = producer;
      e.consumer = key.first;
      e.side = key.second;
      e.merge = merge;
      e.back = producer >= key.first;
      if (e.back) ++g.back_merge_count;
      g.edges.push_back(e);
      g.consumers_of[static_cast<std::size_t>(producer)].push_back(e);
      ++g.total_dflows;
    }
  }
  return g;
}

}  // namespace

std::int32_t foldable_count(const Method& m) {
  const auto elidable = elidable_set(m);
  return static_cast<std::int32_t>(
      std::count(elidable.begin(), elidable.end(), true));
}

FoldedMethod fold_moves(const Method& m,
                        const bytecode::ConstantPool& pool) {
  (void)pool;
  FoldedMethod out;
  const std::vector<bool> elidable = elidable_set(m);
  const DataflowGraph rewired = build_transparent_graph(m, elidable);
  if (rewired.back_merge_count != 0) {
    return out;  // pathological input; caller falls back to unfolded
  }

  // Index remap: elided instructions disappear; everything else shifts.
  out.old_to_new.assign(m.code.size(), -1);
  std::int32_t next = 0;
  for (std::size_t i = 0; i < m.code.size(); ++i) {
    if (!elidable[i]) {
      out.old_to_new[i] = next++;
    } else {
      ++out.elided;
    }
  }

  // Folded code image with remapped control flow. (Branch targets are
  // never elided, so every target remaps cleanly.)
  out.method = m;
  out.method.name = m.name + "$folded";
  out.method.code.clear();
  for (std::size_t i = 0; i < m.code.size(); ++i) {
    if (elidable[i]) continue;
    Instruction inst = m.code[i];
    if (inst.is_branch()) {
      inst.target = out.old_to_new[static_cast<std::size_t>(inst.target)];
    }
    out.method.code.push_back(inst);
  }
  for (bytecode::SwitchTable& t : out.method.switches) {
    for (std::int32_t& target : t.targets) {
      target = out.old_to_new[static_cast<std::size_t>(target)];
    }
    t.default_target =
        out.old_to_new[static_cast<std::size_t>(t.default_target)];
  }

  // Graph remap.
  out.graph.consumers_of.resize(out.method.code.size());
  for (const Edge& e : rewired.edges) {
    Edge ne = e;
    ne.producer = out.old_to_new[static_cast<std::size_t>(e.producer)];
    ne.consumer = out.old_to_new[static_cast<std::size_t>(e.consumer)];
    if (ne.producer < 0 || ne.consumer < 0) {
      return out;  // should not happen: elided nodes have no edges
    }
    out.graph.edges.push_back(ne);
    out.graph.consumers_of[static_cast<std::size_t>(ne.producer)]
        .push_back(ne);
    ++out.graph.total_dflows;
  }
  out.graph.merge_count = rewired.merge_count;
  out.graph.back_merge_count = rewired.back_merge_count;
  out.ok = true;
  return out;
}

}  // namespace javaflow::fabric
