#include "fabric/loader.hpp"

namespace javaflow::fabric {
namespace {

Placement load_impl(const Fabric& fabric, const bytecode::Method& m,
                    const std::vector<bool>* occupied,
                    std::int32_t first_slot) {
  Placement p;
  p.slot_of.assign(m.code.size(), -1);
  std::int32_t cursor = first_slot;
  const std::int32_t capacity = fabric.options().capacity;
  const auto is_occupied = [occupied](std::int32_t slot) {
    return occupied != nullptr &&
           static_cast<std::size_t>(slot) < occupied->size() &&
           (*occupied)[static_cast<std::size_t>(slot)];
  };

  for (std::size_t i = 0; i < m.code.size(); ++i) {
    const bytecode::NodeType want =
        bytecode::node_type_for(m.code[i].group());
    while (cursor < capacity &&
           (!fabric.slot_accepts(cursor, want) || is_occupied(cursor))) {
      ++cursor;
    }
    if (cursor >= capacity) {
      p.fits = false;
      return p;  // method does not fit the fabric (Filter rationale §7.3)
    }
    p.slot_of[i] = cursor;
    p.max_slot = cursor;
    ++cursor;  // greedy: the accepting node marks itself busy
  }
  p.fits = true;
  // Pipelined streaming: one instruction injected per serial clock, the
  // final instruction then rides to its slot.
  p.load_cycles = static_cast<std::int64_t>(m.code.size()) +
                  (p.max_slot - first_slot + 1);
  return p;
}

}  // namespace

Placement load_method(const Fabric& fabric, const bytecode::Method& m,
                      std::int32_t first_slot) {
  return load_impl(fabric, m, nullptr, first_slot);
}

Placement load_method(const Fabric& fabric, const bytecode::Method& m,
                      const std::vector<bool>& occupied,
                      std::int32_t first_slot) {
  return load_impl(fabric, m, &occupied, first_slot);
}

}  // namespace javaflow::fabric
