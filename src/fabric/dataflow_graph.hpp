// DataFlow graph of a method: the producer/consumer edges the fabric's
// address-resolution protocol establishes (paper §6.2).
//
// Built by abstract interpretation of the operand stack over the CFG,
// tracking the *set* of producing instructions per stack slot. This is
// the path-exact answer the serial protocol's branch-ID-tagged needs-up
// messages compute in a distributed way (Figures 21-22); the Resolver
// cross-checks its protocol simulation against this graph, and the
// execution engine uses these edges as each node's consumer array.
//
// Side numbering: side 1 is the top-of-stack operand (the last value the
// instruction pops), side `pop` the deepest — matching Figure 22 where
// the nearest producers feed side 1.
#pragma once

#include <cstdint>
#include <vector>

#include "bytecode/method.hpp"

namespace javaflow::fabric {

struct Edge {
  std::int32_t producer = -1;  // linear address of the producing instruction
  std::int32_t consumer = -1;  // linear address of the consuming instruction
  std::uint8_t side = 1;       // consumer operand slot (1 = top of stack)
  bool merge = false;          // consumer side has >= 2 producers
  bool back = false;           // producer lies below the consumer (loop)
};

struct DataflowGraph {
  std::vector<Edge> edges;
  // Per producer linear address: outgoing edges (the node's resolved
  // consumer address array, §4.2 "targetDataFlowAddresses").
  std::vector<std::vector<Edge>> consumers_of;
  // Per consumer linear address and side (side-1 indexed): producers.
  // Encoded in `edges`; use producers_of(consumer, side) to query.

  std::int32_t merge_count = 0;       // consumer sides with >= 2 producers
  std::int32_t back_merge_count = 0;  // should be 0 for valid Java (§5.4)
  std::int32_t total_dflows = 0;      // resolved producer->consumer links

  std::vector<Edge> producers_of(std::int32_t consumer,
                                 std::uint8_t side) const;

  // Number of resolved producers feeding one consumer operand side —
  // producers_of(...).size() without materializing the edges.
  std::size_t producer_count(std::int32_t consumer, std::uint8_t side) const;

  // Fan-out of a producer: number of consumer links it must send on fire.
  std::size_t fan_out(std::int32_t producer) const {
    return consumers_of[static_cast<std::size_t>(producer)].size();
  }

  // Largest consumer array any producer carries (§4.2
  // "targetDataFlowAddresses" sizing).
  std::size_t max_fan_out() const;
};

// Builds the graph. The method must verify (callers pass methods produced
// by the Assembler); throws std::runtime_error otherwise.
DataflowGraph build_dataflow_graph(const bytecode::Method& m,
                                   const bytecode::ConstantPool& pool);

}  // namespace javaflow::fabric
