#include "fabric/instruction_node.hpp"
