// Instruction folding (paper §6.4 "Enhancements").
//
// "Since many of the JVM ByteCode instructions simply move data in the
// stack ..., there is the opportunity to eliminate instructions by having
// a node declare itself void. ... Nodes that perform only data transfers
// would send messages up to their producer nodes to change the producer
// node targets to the targets of the redundant nodes. The redundant nodes
// could then be returned to the unoccupied state."
//
// This module performs that rewiring offline: pure stack-move
// instructions (dup/swap/pop family) become *transparent* — their
// producers deliver straight to their consumers — and are removed from
// the loaded image. Constants are kept (they produce data), and movers
// that are branch targets are kept (control flow needs a landing node).
// The Chapter 7 results deliberately exclude folding ("The analysis
// reported in Chapter 7 does not account for this folding enhancement"),
// so the reproduction exposes it as an ablation (bench/ablation_folding).
#pragma once

#include <cstdint>
#include <vector>

#include "bytecode/method.hpp"
#include "fabric/dataflow_graph.hpp"

namespace javaflow::fabric {

struct FoldedMethod {
  bool ok = false;
  bytecode::Method method;  // movers removed, branch targets remapped
  DataflowGraph graph;      // edges rewired producer -> final consumer
  std::int32_t elided = 0;  // instructions returned to the free pool
  // old linear index -> new linear index; -1 for elided instructions.
  std::vector<std::int32_t> old_to_new;
};

// Folds `m`. The result's method/graph pair feeds the execution engine
// directly (the folded image is a machine-level artifact, not verifiable
// ByteCode — exactly like the paper's post-load rewiring).
FoldedMethod fold_moves(const bytecode::Method& m,
                        const bytecode::ConstantPool& pool);

// Number of instructions fold_moves would elide, without building the
// folded image (used by analysis tables).
std::int32_t foldable_count(const bytecode::Method& m);

}  // namespace javaflow::fabric
