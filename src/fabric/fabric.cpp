#include "fabric/fabric.hpp"

namespace javaflow::fabric {

using bytecode::NodeType;

std::string_view layout_name(LayoutKind k) noexcept {
  switch (k) {
    case LayoutKind::Collapsed: return "Collapsed";
    case LayoutKind::Compact: return "Compact";
    case LayoutKind::Sparse: return "Sparse";
    case LayoutKind::Heterogeneous: return "Heterogeneous";
  }
  return "?";
}

Fabric::Fabric(FabricOptions options)
    : options_(options),
      serial_(options.capacity),
      mesh_(options.width),
      ring_(options.ring_latencies) {}

NodeType Fabric::slot_type(std::int32_t slot) const {
  switch (options_.layout) {
    case LayoutKind::Collapsed:
    case LayoutKind::Compact:
      return NodeType::Arithmetic;  // homogeneous: accepts everything
    case LayoutKind::Sparse:
      return (slot % 2) != 0 ? NodeType::Blank : NodeType::Arithmetic;
    case LayoutKind::Heterogeneous: {
      // Figure 26 row pattern: 6 arithmetic, 1 floating point, 2 storage,
      // 1 control per 10-slot row, in contiguous segments as the figure
      // draws them (segment grouping is what pushes the measured
      // instructions-to-nodes ratio toward the paper's ~3.1, Table 20).
      static constexpr NodeType kPattern[10] = {
          NodeType::Arithmetic, NodeType::Arithmetic,
          NodeType::Arithmetic, NodeType::Arithmetic,
          NodeType::Arithmetic, NodeType::Arithmetic,
          NodeType::FloatingPoint,
          NodeType::Storage,     NodeType::Storage,
          NodeType::Control,
      };
      return kPattern[slot % 10];
    }
  }
  return NodeType::Arithmetic;
}

bool Fabric::slot_accepts(std::int32_t slot, NodeType type) const {
  switch (options_.layout) {
    case LayoutKind::Collapsed:
    case LayoutKind::Compact:
      return true;  // homogeneous nodes process all instructions
    case LayoutKind::Sparse:
      return (slot % 2) == 0;  // blanks are router-only
    case LayoutKind::Heterogeneous:
      return slot_type(slot) == type;
  }
  return true;
}

}  // namespace javaflow::fabric
