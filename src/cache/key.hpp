// Cache-key derivation for the content-addressed sweep result cache
// (docs/PERF.md "Result cache").
//
// A sweep cell — one (method, MachineConfig, scenario) simulation — is
// keyed by a 128-bit digest of everything its RunMetrics can depend on:
//
//   * the canonical method body bytes (code, switch tables, signature —
//     NOT the name or benchmark tag, which are reporting metadata);
//   * a digest of the whole ConstantPool (graph construction and ring
//     traffic read pool entries, including interpreter-resolved slots);
//   * the canonical MachineConfig text (sim::MachineConfig::canonical_text);
//   * the branch scenario and the resolved event scheduler;
//   * the engine-options fields that alter results (tick budget,
//     exception injection);
//   * kEngineFingerprint, bumped by hand whenever simulation semantics
//     change (event ordering, Table 17 costs, network timing, …).
//
// Records are grouped one file per method: the file is addressed by
// (method body, pool) only, so every config/scenario/scheduler variant
// of a method shares one record and a warm full-corpus sweep pays one
// file read per method instead of twelve.
#pragma once

#include <cstdint>

#include "bytecode/method.hpp"
#include "cache/hash.hpp"
#include "obs/critpath.hpp"
#include "sim/branch_predictor.hpp"
#include "sim/config.hpp"
#include "sim/engine.hpp"
#include "sim/multi_engine.hpp"

namespace javaflow::cache {

// Bump whenever a change anywhere in the simulator can alter RunMetrics
// for an unchanged (method, pool, config, scenario, scheduler) tuple:
// engine event semantics, Table 17 execution costs, network transit
// rules, placement policy, dataflow-graph construction. Every record
// carries the fingerprint it was produced under; a mismatch is a miss
// (and `javaflow_cache prune` deletes the stale files).
inline constexpr std::uint32_t kEngineFingerprint = 1;

// Analyzer version (docs/ANALYSIS.md): bump whenever the static bound /
// model-check semantics change (cost model, fixpoint rules, state
// abstraction). Folded into the record fingerprint so cached metrics
// produced under older analyzer semantics can never mask a bounds
// regression when a verify-mode replay re-checks them.
inline constexpr std::uint32_t kAnalysisFingerprint = 1;

// The fingerprint stamped on (and demanded of) record files: an FNV-1a
// fold over every version constant whose semantics cached metrics can
// depend on — plan lowering (cached metrics flow through the
// plan-driven engine path and the plan-based bound analyzer), the
// single-method engine, the multi-tenant execution core
// (sim::kMultiEngineFingerprint: it shares the event record and handler
// shapes with the single engine, so a semantic drift there must
// invalidate single-method sweep records too), the analyzer, and the
// critical-path attribution format. Bumping any constant invalidates
// every existing record.
inline constexpr std::uint32_t record_fingerprint() noexcept {
  std::uint32_t h = 2166136261u;  // FNV-1a 32 offset basis
  for (const std::uint32_t v :
       {sim::kPlanFingerprint, kEngineFingerprint,
        sim::kMultiEngineFingerprint, kAnalysisFingerprint,
        obs::kAttributionFingerprint}) {
    for (int i = 0; i < 4; ++i) {
      h ^= (v >> (8 * i)) & 0xffu;
      h *= 16777619u;
    }
  }
  return h;
}

// Digest of the simulation-relevant method body. Two methods with equal
// body digests produce identical RunMetrics in every cell (the engine
// reads the name only as a workspace-cache tag), which is what corpus
// dedup relies on.
Hash128 hash_method_body(const bytecode::Method& m);

// Digest of the full constant pool (all entries, all payload fields).
// Conservative: any pool change invalidates every method's records.
Hash128 hash_pool(const bytecode::ConstantPool& pool);

// Digest of a machine configuration via its canonical text.
Hash128 hash_config(const sim::MachineConfig& config);

// Digest of the EngineOptions fields that can change results, plus the
// *resolved* scheduler (callers resolve Auto before keying).
Hash128 hash_engine_options(const sim::EngineOptions& options,
                            sim::SchedulerKind resolved_scheduler);

// Address of a method's record file: (body, pool) only — see above.
Hash128 record_key(const Hash128& method_body, const Hash128& pool);

// Full per-cell key: everything listed in the header comment.
Hash128 cell_key(const Hash128& method_body, const Hash128& pool,
                 const Hash128& config, const Hash128& engine_options,
                 sim::BranchPredictor::Scenario scenario,
                 std::uint32_t engine_fingerprint = kEngineFingerprint);

}  // namespace javaflow::cache
