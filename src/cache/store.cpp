#include "cache/store.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "cache/key.hpp"

namespace javaflow::cache {

namespace fs = std::filesystem;

std::string_view cache_mode_name(CacheMode m) noexcept {
  switch (m) {
    case CacheMode::Auto: return "auto";
    case CacheMode::Off: return "off";
    case CacheMode::Read: return "read";
    case CacheMode::ReadWrite: return "readwrite";
    case CacheMode::Verify: return "verify";
  }
  return "?";
}

std::optional<CacheMode> cache_mode_from_name(
    std::string_view name) noexcept {
  if (name == "auto") return CacheMode::Auto;
  if (name == "off") return CacheMode::Off;
  if (name == "read") return CacheMode::Read;
  if (name == "readwrite") return CacheMode::ReadWrite;
  if (name == "verify") return CacheMode::Verify;
  return std::nullopt;
}

CacheMode resolve_cache_mode(CacheMode requested) noexcept {
  if (requested != CacheMode::Auto) return requested;
  const char* env = std::getenv("JAVAFLOW_CACHE");
  if (env == nullptr || *env == '\0') return CacheMode::Off;
  const std::optional<CacheMode> m = cache_mode_from_name(env);
  if (!m.has_value() || *m == CacheMode::Auto) {
    if (!m.has_value()) {
      std::fprintf(stderr,
                   "warning: ignoring JAVAFLOW_CACHE=\"%s\" (expected "
                   "\"off\", \"read\", \"readwrite\", or \"verify\"); "
                   "using off\n",
                   env);
    }
    return CacheMode::Off;
  }
  return *m;
}

std::string resolve_cache_dir(const std::string& requested) {
  if (!requested.empty()) return requested;
  if (const char* env = std::getenv("JAVAFLOW_CACHE_DIR");
      env != nullptr && *env != '\0') {
    return env;
  }
  if (const char* xdg = std::getenv("XDG_CACHE_HOME");
      xdg != nullptr && *xdg != '\0') {
    return std::string(xdg) + "/javaflow";
  }
  if (const char* home = std::getenv("HOME");
      home != nullptr && *home != '\0') {
    return std::string(home) + "/.cache/javaflow";
  }
  return ".javaflow-cache";
}

std::string CacheStore::path_for(const Hash128& key) const {
  const std::string hex = to_hex(key);
  std::string path = dir_;
  path += "/v1/";
  path += hex.substr(0, 2);
  path += '/';
  path += hex;
  path += ".jfc";
  return path;
}

bool CacheStore::load(const Hash128& key, std::uint32_t fingerprint,
                      MethodRecord& out) const {
  std::ifstream in(path_for(key), std::ios::binary);
  if (!in.is_open()) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) return false;
  return deserialize_record(buf.view(), fingerprint, out);
}

bool CacheStore::save(const Hash128& key, const MethodRecord& record) const {
  const std::string path = path_for(key);
  std::error_code ec;
  fs::create_directories(fs::path(path).parent_path(), ec);
  if (ec) return false;

  // Unique temp name per thread so parallel lanes storing different
  // records in the same shard never collide; rename is atomic within
  // the directory, so readers see either the old or the new record.
  std::ostringstream tmp_name;
  tmp_name << path << ".tmp." << std::this_thread::get_id();
  const std::string tmp = tmp_name.str();
  {
    std::ofstream outf(tmp, std::ios::binary | std::ios::trunc);
    if (!outf.is_open()) return false;
    const std::string bytes = serialize_record(record);
    outf.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!outf.good()) {
      outf.close();
      fs::remove(tmp, ec);
      return false;
    }
  }
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return false;
  }
  return true;
}

bool CacheStore::remove(const Hash128& key) const {
  std::error_code ec;
  return fs::remove(path_for(key), ec) && !ec;
}

void CacheStore::walk(
    std::uint32_t fingerprint,
    const std::function<void(const WalkEntry&)>& visit) const {
  std::error_code ec;
  const fs::path root = fs::path(dir_) / "v1";
  if (!fs::is_directory(root, ec)) return;
  std::vector<std::string> paths;
  for (fs::recursive_directory_iterator it(root, ec), end;
       !ec && it != end; it.increment(ec)) {
    if (it->is_regular_file(ec) && it->path().extension() == ".jfc") {
      paths.push_back(it->path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  for (const std::string& path : paths) {
    WalkEntry entry;
    entry.path = path;
    entry.bytes = fs::file_size(path, ec);
    if (ec) entry.bytes = 0;
    std::ifstream in(path, std::ios::binary);
    if (in.is_open()) {
      std::ostringstream buf;
      buf << in.rdbuf();
      if (!in.bad() &&
          deserialize_record_any_fingerprint(buf.view(), entry.record)) {
        entry.valid = true;
        entry.current = entry.record.fingerprint == fingerprint;
      }
    }
    visit(entry);
  }
}

CacheStore::Stats CacheStore::stats(std::uint32_t fingerprint) const {
  Stats s;
  walk(fingerprint, [&s](const WalkEntry& e) {
    ++s.files;
    s.bytes += e.bytes;
    if (!e.valid) {
      ++s.corrupt_files;
    } else if (!e.current) {
      ++s.stale_files;
    } else {
      s.cells += e.record.cells.size();
    }
  });
  return s;
}

std::uintmax_t CacheStore::prune(std::uint32_t fingerprint) const {
  std::uintmax_t removed = 0;
  walk(fingerprint, [&removed](const WalkEntry& e) {
    if (e.valid && e.current) return;
    std::error_code ec;
    if (fs::remove(e.path, ec) && !ec) ++removed;
  });
  return removed;
}

std::uintmax_t CacheStore::invalidate(
    const std::string& method_substr) const {
  std::uintmax_t removed = 0;
  walk(record_fingerprint(), [&](const WalkEntry& e) {
    const bool match =
        method_substr.empty() ||
        (e.valid &&
         e.record.method_name.find(method_substr) != std::string::npos);
    if (!match) return;
    std::error_code ec;
    if (fs::remove(e.path, ec) && !ec) ++removed;
  });
  return removed;
}

}  // namespace javaflow::cache
