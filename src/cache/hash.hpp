// Streaming FNV-1a hashing for the content-addressed result cache
// (docs/PERF.md "Result cache").
//
// Two independent 64-bit FNV-1a streams over the same byte sequence give
// a 128-bit digest: cheap, dependency-free, and stable across runs,
// hosts, and compilers — exactly what a persistent cache key needs.
// This is an integrity/addressing hash, not a cryptographic one; cache
// directories are private per user and a collision needs ~2^64 distinct
// keys before it becomes likely.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace javaflow::cache {

// 128-bit digest. Ordered so digests can key std::map and name files.
struct Hash128 {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  bool operator==(const Hash128&) const = default;
  auto operator<=>(const Hash128&) const = default;
};

// Lower-case 32-hex-digit spelling (file names, CLI output).
std::string to_hex(const Hash128& h);

class Hasher {
 public:
  static constexpr std::uint64_t kOffsetBasis = 1469598103934665603ULL;
  static constexpr std::uint64_t kPrime = 1099511628211ULL;
  // Second stream: same prime, different basis, so the two lanes walk
  // independent orbits over identical input bytes.
  static constexpr std::uint64_t kOffsetBasis2 =
      kOffsetBasis ^ 0x9e3779b97f4a7c15ULL;

  void bytes(const void* data, std::size_t n) noexcept {
    const auto* b = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      a_ = (a_ ^ b[i]) * kPrime;
      b_ = (b_ ^ b[i]) * kPrime;
    }
  }

  void u8(std::uint8_t v) noexcept { bytes(&v, 1); }
  void u32(std::uint32_t v) noexcept { fixed(v); }
  void u64(std::uint64_t v) noexcept { fixed(v); }
  void i32(std::int32_t v) noexcept { fixed(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) noexcept { fixed(static_cast<std::uint64_t>(v)); }
  void f64(double v) noexcept { fixed(std::bit_cast<std::uint64_t>(v)); }
  void boolean(bool v) noexcept { u8(v ? 1 : 0); }
  // Length-prefixed so "ab" + "c" never collides with "a" + "bc".
  void str(std::string_view s) noexcept {
    u64(s.size());
    bytes(s.data(), s.size());
  }

  Hash128 digest() const noexcept { return {a_, b_}; }

 private:
  // Fixed-width little-endian encoding, independent of host endianness.
  template <typename T>
  void fixed(T v) noexcept {
    unsigned char buf[sizeof(T)];
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf[i] = static_cast<unsigned char>(v >> (8 * i));
    }
    bytes(buf, sizeof(T));
  }

  std::uint64_t a_ = kOffsetBasis;
  std::uint64_t b_ = kOffsetBasis2;
};

// One-shot convenience over a byte string.
inline Hash128 hash_bytes(std::string_view s) noexcept {
  Hasher h;
  h.bytes(s.data(), s.size());
  return h.digest();
}

}  // namespace javaflow::cache
