// Versioned binary record format for the sweep result cache
// (docs/PERF.md "Result cache").
//
// One record file holds every cached cell of one method (same body, same
// pool): each cell entry carries its full 128-bit cell key plus the
// simulation outputs. The file is self-validating — magic, format
// version, engine fingerprint, and a trailing FNV-64 checksum over
// everything before it — and the deserializer treats ANY anomaly
// (truncation, zero length, bad magic, stale fingerprint, checksum or
// bounds failure) as "no record": a cache read can degrade to a miss but
// never to a crash or a wrong result.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "cache/hash.hpp"
#include "sim/engine.hpp"

namespace javaflow::cache {

// Current on-disk format version. Bump on any layout change; old files
// then deserialize to "no record" and are rewritten on the next store.
inline constexpr std::uint32_t kRecordFormatVersion = 1;

// One cached sweep cell: the full cell key (cache/key.hpp) and every
// output `run_sweep` would otherwise have to recompute for the sample.
struct CellRecord {
  Hash128 key;
  std::int32_t static_insts = 0;
  std::int32_t back_jumps = 0;
  sim::RunMetrics metrics;

  bool operator==(const CellRecord&) const = default;
};

struct MethodRecord {
  std::uint32_t fingerprint = 0;  // cache/key.hpp record_fingerprint()
  std::string method_name;        // informational (CLI stats/invalidate)
  std::vector<CellRecord> cells;

  bool operator==(const MethodRecord&) const = default;
};

// Serializes to the canonical byte layout. Byte-stable: equal records
// always produce identical bytes (asserted by tests/test_cache.cpp).
std::string serialize_record(const MethodRecord& record);

// Parses `bytes`; returns false (leaving `out` unspecified) on any
// anomaly, including a fingerprint different from `expected_fingerprint`.
bool deserialize_record(std::string_view bytes,
                        std::uint32_t expected_fingerprint,
                        MethodRecord& out);

// Like above but ignores the fingerprint check (maintenance walks that
// want to *count* stale records). Still validates everything else.
bool deserialize_record_any_fingerprint(std::string_view bytes,
                                        MethodRecord& out);

}  // namespace javaflow::cache
