#include "cache/key.hpp"

namespace javaflow::cache {

namespace {

// Canonical-encoding version tags. Bump a tag when the corresponding
// serialization below changes shape, so old digests can never alias new
// ones even by accident.
constexpr std::uint32_t kMethodEncoding = 1;
constexpr std::uint32_t kPoolEncoding = 1;
constexpr std::uint32_t kEngineOptionsEncoding = 1;

void append_instruction(Hasher& h, const bytecode::Instruction& inst) {
  h.u8(static_cast<std::uint8_t>(inst.op));
  h.i32(inst.operand);
  h.i32(inst.operand2);
  h.i32(inst.target);
  h.u8(inst.pop);
  h.u8(inst.push);
}

}  // namespace

std::string to_hex(const Hash128& h) {
  static const char* digits = "0123456789abcdef";
  std::string out(32, '0');
  for (int i = 0; i < 16; ++i) {
    const std::uint64_t word = i < 8 ? h.hi : h.lo;
    const int shift = 8 * (7 - (i % 8));
    const auto byte = static_cast<unsigned>((word >> shift) & 0xff);
    out[2 * static_cast<std::size_t>(i)] = digits[byte >> 4];
    out[2 * static_cast<std::size_t>(i) + 1] = digits[byte & 0xf];
  }
  return out;
}

Hash128 hash_method_body(const bytecode::Method& m) {
  Hasher h;
  h.u32(kMethodEncoding);
  h.u32(m.max_locals);
  h.u32(m.max_stack);
  h.u8(m.num_args);
  h.u8(static_cast<std::uint8_t>(m.return_type));
  h.boolean(m.is_static);
  h.u64(m.arg_types.size());
  for (const bytecode::ValueType t : m.arg_types) {
    h.u8(static_cast<std::uint8_t>(t));
  }
  h.u64(m.code.size());
  for (const bytecode::Instruction& inst : m.code) {
    append_instruction(h, inst);
  }
  h.u64(m.switches.size());
  for (const bytecode::SwitchTable& sw : m.switches) {
    h.u64(sw.keys.size());
    for (const std::int32_t k : sw.keys) h.i32(k);
    h.u64(sw.targets.size());
    for (const std::int32_t t : sw.targets) h.i32(t);
    h.i32(sw.default_target);
  }
  return h.digest();
}

Hash128 hash_pool(const bytecode::ConstantPool& pool) {
  Hasher h;
  h.u32(kPoolEncoding);
  h.u64(pool.size());
  for (std::size_t i = 0; i < pool.size(); ++i) {
    const bytecode::CpEntry& e = pool.at(static_cast<std::int32_t>(i));
    // Every payload field is hashed regardless of kind: unused payloads
    // are default-initialized, so the encoding stays unambiguous without
    // per-kind branching.
    h.u8(static_cast<std::uint8_t>(e.kind));
    h.i64(e.i);
    h.f64(e.d);
    h.str(e.s);
    h.str(e.field.class_name);
    h.str(e.field.field_name);
    h.u8(static_cast<std::uint8_t>(e.field.type));
    h.boolean(e.field.is_static);
    h.i32(e.field.resolved_slot);
    h.str(e.method.qualified_name);
    h.u8(e.method.arg_values);
    h.u8(static_cast<std::uint8_t>(e.method.return_type));
    h.str(e.cls.class_name);
    h.i32(e.cls.dims);
  }
  return h.digest();
}

Hash128 hash_config(const sim::MachineConfig& config) {
  return hash_bytes(config.canonical_text());
}

Hash128 hash_engine_options(const sim::EngineOptions& options,
                            sim::SchedulerKind resolved_scheduler) {
  Hasher h;
  h.u32(kEngineOptionsEncoding);
  h.i64(options.max_ticks);
  h.i32(options.inject_exception_at);
  h.i32(options.inject_exception_fire);
  h.str(sim::scheduler_name(resolved_scheduler));
  return h.digest();
}

Hash128 record_key(const Hash128& method_body, const Hash128& pool) {
  Hasher h;
  h.u64(method_body.hi);
  h.u64(method_body.lo);
  h.u64(pool.hi);
  h.u64(pool.lo);
  return h.digest();
}

Hash128 cell_key(const Hash128& method_body, const Hash128& pool,
                 const Hash128& config, const Hash128& engine_options,
                 sim::BranchPredictor::Scenario scenario,
                 std::uint32_t engine_fingerprint) {
  Hasher h;
  h.u32(engine_fingerprint);
  h.u64(method_body.hi);
  h.u64(method_body.lo);
  h.u64(pool.hi);
  h.u64(pool.lo);
  h.u64(config.hi);
  h.u64(config.lo);
  h.u64(engine_options.hi);
  h.u64(engine_options.lo);
  h.u8(static_cast<std::uint8_t>(scenario));
  return h.digest();
}

}  // namespace javaflow::cache
