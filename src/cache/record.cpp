#include "cache/record.hpp"

#include <cstring>

namespace javaflow::cache {

namespace {

constexpr std::uint32_t kMagic = 0x3143464a;  // "JFC1", little-endian

// All integers are encoded little-endian at fixed width, independent of
// the host, so a cache directory survives a toolchain change (it still
// will not survive kRecordFormatVersion or fingerprint bumps — by
// design).
class Writer {
 public:
  explicit Writer(std::string& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) { fixed(v); }
  void u64(std::uint64_t v) { fixed(v); }
  void i32(std::int32_t v) { fixed(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { fixed(static_cast<std::uint64_t>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    out_.append(s);
  }

 private:
  template <typename T>
  void fixed(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }

  std::string& out_;
};

// Bounds-checked cursor: every read can fail, and the first failure
// poisons the reader so callers can check once at the end of a section.
class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  bool ok() const { return ok_; }
  std::size_t pos() const { return pos_; }

  std::uint8_t u8() { return static_cast<std::uint8_t>(fixed<1>()); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(fixed<4>()); }
  std::uint64_t u64() { return fixed<8>(); }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  bool boolean() { return u8() != 0; }
  std::string str() {
    const std::uint32_t n = u32();
    if (!ok_ || bytes_.size() - pos_ < n) {
      ok_ = false;
      return {};
    }
    std::string out(bytes_.substr(pos_, n));
    pos_ += n;
    return out;
  }

 private:
  template <std::size_t N>
  std::uint64_t fixed() {
    if (!ok_ || bytes_.size() - pos_ < N) {
      ok_ = false;
      return 0;
    }
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < N; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(bytes_[pos_ + i]))
           << (8 * i);
    }
    pos_ += N;
    return v;
  }

  std::string_view bytes_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// RunMetrics is serialized field by field. If you add a field to
// RunMetrics, extend BOTH functions below and bump kRecordFormatVersion
// — tests/test_cache.cpp's round-trip test catches a mismatch between
// the two, and the version bump invalidates old files.
void write_metrics(Writer& w, const sim::RunMetrics& m) {
  w.boolean(m.fits);
  w.boolean(m.completed);
  w.boolean(m.timed_out);
  w.boolean(m.exception);
  w.i64(m.ticks);
  w.i64(m.mesh_cycles);
  w.i64(m.instructions_fired);
  w.i32(m.distinct_fired);
  w.i32(m.static_size);
  w.i32(m.max_slot);
  w.i64(m.mesh_messages);
  w.i64(m.serial_messages);
  w.i64(m.ticks_exec_1plus);
  w.i64(m.ticks_exec_2plus);
}

sim::RunMetrics read_metrics(Reader& r) {
  sim::RunMetrics m;
  m.fits = r.boolean();
  m.completed = r.boolean();
  m.timed_out = r.boolean();
  m.exception = r.boolean();
  m.ticks = r.i64();
  m.mesh_cycles = r.i64();
  m.instructions_fired = r.i64();
  m.distinct_fired = r.i32();
  m.static_size = r.i32();
  m.max_slot = r.i32();
  m.mesh_messages = r.i64();
  m.serial_messages = r.i64();
  m.ticks_exec_1plus = r.i64();
  m.ticks_exec_2plus = r.i64();
  return m;
}

std::uint64_t checksum(std::string_view bytes) {
  Hasher h;
  h.bytes(bytes.data(), bytes.size());
  return h.digest().hi;
}

bool deserialize_impl(std::string_view bytes, bool check_fingerprint,
                      std::uint32_t expected_fingerprint,
                      MethodRecord& out) {
  // Trailer first: an 8-byte checksum over everything before it. Any
  // flipped/missing byte anywhere in the file fails here.
  if (bytes.size() < 8) return false;
  const std::string_view body = bytes.substr(0, bytes.size() - 8);
  Reader trailer(bytes.substr(bytes.size() - 8));
  if (trailer.u64() != checksum(body)) return false;

  Reader r(body);
  if (r.u32() != kMagic) return false;
  if (r.u32() != kRecordFormatVersion) return false;
  MethodRecord rec;
  rec.fingerprint = r.u32();
  if (!r.ok()) return false;
  if (check_fingerprint && rec.fingerprint != expected_fingerprint) {
    return false;
  }
  rec.method_name = r.str();
  const std::uint32_t count = r.u32();
  if (!r.ok()) return false;
  // A cell entry is at least 16 (key) + 8 + metrics bytes; reject counts
  // the remaining bytes cannot possibly hold before reserving.
  if (count > body.size() / 24) return false;
  rec.cells.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    CellRecord cell;
    cell.key.hi = r.u64();
    cell.key.lo = r.u64();
    cell.static_insts = r.i32();
    cell.back_jumps = r.i32();
    cell.metrics = read_metrics(r);
    if (!r.ok()) return false;
    rec.cells.push_back(cell);
  }
  // Trailing garbage between the last cell and the checksum is an
  // anomaly too.
  if (r.pos() != body.size()) return false;
  out = std::move(rec);
  return true;
}

}  // namespace

std::string serialize_record(const MethodRecord& record) {
  std::string out;
  Writer w(out);
  w.u32(kMagic);
  w.u32(kRecordFormatVersion);
  w.u32(record.fingerprint);
  w.str(record.method_name);
  w.u32(static_cast<std::uint32_t>(record.cells.size()));
  for (const CellRecord& cell : record.cells) {
    w.u64(cell.key.hi);
    w.u64(cell.key.lo);
    w.i32(cell.static_insts);
    w.i32(cell.back_jumps);
    write_metrics(w, cell.metrics);
  }
  w.u64(checksum(out));
  return out;
}

bool deserialize_record(std::string_view bytes,
                        std::uint32_t expected_fingerprint,
                        MethodRecord& out) {
  return deserialize_impl(bytes, /*check_fingerprint=*/true,
                          expected_fingerprint, out);
}

bool deserialize_record_any_fingerprint(std::string_view bytes,
                                        MethodRecord& out) {
  return deserialize_impl(bytes, /*check_fingerprint=*/false, 0, out);
}

}  // namespace javaflow::cache
