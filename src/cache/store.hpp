// Persistent filesystem store for the sweep result cache
// (docs/PERF.md "Result cache").
//
// Layout: <dir>/v1/<first-2-hex>/<32-hex>.jfc — one record file per
// (method body, pool) digest, sharded over 256 subdirectories. Writes go
// through a temp file + rename, so readers never observe a half-written
// record; a torn or corrupted file deserializes to "no record" (a miss).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "cache/record.hpp"

namespace javaflow::cache {

// How a sweep uses the cache (SweepOptions::cache / JAVAFLOW_CACHE):
//   Auto       — resolve via JAVAFLOW_CACHE; unset means Off.
//   Off        — no cache at all (the pre-cache behaviour, the default).
//   Read       — consume hits, never write.
//   ReadWrite  — consume hits, store misses.
//   Verify     — re-execute every cell and assert cached records match
//                bit-exactly; mismatches are counted, reported, and
//                repaired in place. Results always come from the fresh
//                execution.
enum class CacheMode : std::uint8_t { Auto, Off, Read, ReadWrite, Verify };

std::string_view cache_mode_name(CacheMode m) noexcept;

// Parses "off" / "read" / "readwrite" / "verify" (also "auto").
std::optional<CacheMode> cache_mode_from_name(std::string_view name) noexcept;

// Auto -> JAVAFLOW_CACHE (stderr warning on unknown values, falling back
// to Off); anything else passes through.
CacheMode resolve_cache_mode(CacheMode requested) noexcept;

// Directory resolution: `requested` if non-empty, else JAVAFLOW_CACHE_DIR,
// else $XDG_CACHE_HOME/javaflow, else $HOME/.cache/javaflow, else
// ./.javaflow-cache as a last resort.
std::string resolve_cache_dir(const std::string& requested);

class CacheStore {
 public:
  explicit CacheStore(std::string dir) : dir_(std::move(dir)) {}

  const std::string& dir() const noexcept { return dir_; }

  // Absolute path of the record file for `key`.
  std::string path_for(const Hash128& key) const;

  // Loads and validates the record for `key`. False on missing file,
  // unreadable file, or any record anomaly (including a fingerprint
  // other than `fingerprint`) — all of which are plain misses.
  bool load(const Hash128& key, std::uint32_t fingerprint,
            MethodRecord& out) const;

  // Atomically writes the record for `key` (temp file + rename),
  // creating directories as needed. False on any filesystem error —
  // a cache store failure must never fail the sweep.
  bool save(const Hash128& key, const MethodRecord& record) const;

  // Removes the record for `key` if present.
  bool remove(const Hash128& key) const;

  // ---- maintenance walks (tools/javaflow_cache) ----

  struct WalkEntry {
    std::string path;
    std::uintmax_t bytes = 0;
    bool valid = false;    // parsed and checksummed OK
    bool current = false;  // valid && fingerprint == the walk's
    MethodRecord record;   // populated when valid
  };

  // Visits every *.jfc file under the store in sorted path order.
  void walk(std::uint32_t fingerprint,
            const std::function<void(const WalkEntry&)>& visit) const;

  struct Stats {
    std::uintmax_t files = 0;
    std::uintmax_t bytes = 0;
    std::uintmax_t cells = 0;        // across current records
    std::uintmax_t stale_files = 0;  // valid, wrong fingerprint
    std::uintmax_t corrupt_files = 0;
  };
  Stats stats(std::uint32_t fingerprint) const;

  // Deletes stale-fingerprint and corrupt files; returns removed count.
  std::uintmax_t prune(std::uint32_t fingerprint) const;

  // Deletes records whose stored method name contains `method_substr`
  // (empty = every record, plus corrupt files); returns removed count.
  std::uintmax_t invalidate(const std::string& method_substr) const;

 private:
  std::string dir_;
};

}  // namespace javaflow::cache
