// DataFlow / ControlFlow structural analysis over a method population
// (paper §5.4 Table 7 and §7.2 Tables 9-14).
//
// Runs the class-loader simulation — greedy load plus the two-pass serial
// address resolution — for every method and aggregates the structural
// metrics the paper reports.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "analysis/stats.hpp"
#include "bytecode/method.hpp"
#include "fabric/resolver.hpp"

namespace javaflow::analysis {

// Per-method record (one row of the data behind Tables 9-14).
struct MethodDataflowRecord {
  std::string method;
  std::string benchmark;
  std::int32_t static_insts = 0;
  std::int32_t max_locals = 0;
  std::int32_t max_stack = 0;
  std::int32_t forward_jumps = 0;
  std::int32_t back_jumps = 0;
  double forward_len_avg = 0.0;
  std::int32_t forward_len_max = 0;
  double back_len_avg = 0.0;
  std::int32_t back_len_max = 0;
  std::int32_t total_dflows = 0;
  std::int32_t merges = 0;
  std::int32_t back_merges = 0;
  std::int64_t resolution_cycles = 0;
  std::int32_t max_queue_up = 0;
  double fanout_avg = 0.0;
  std::int32_t fanout_max = 0;
  double arc_avg = 0.0;
  std::int32_t arc_max = 0;
};

// Analyze `methods` on a Compact fabric (the paper's loader simulation).
std::vector<MethodDataflowRecord> analyze_dataflow(
    const std::vector<const bytecode::Method*>& methods,
    const bytecode::ConstantPool& pool);

// ---- Table 7: per-benchmark aggregation ----
struct BenchmarkDataflowRow {
  std::string benchmark;
  std::int64_t forward = 0;
  std::int64_t back = 0;
  std::int64_t total_insts = 0;
  std::int64_t total_cycles = 0;
  std::int64_t total_dflows = 0;
  std::int64_t total_merges = 0;
  std::int64_t total_back_merges = 0;  // must be 0 (paper's key result)
};
std::vector<BenchmarkDataflowRow> benchmark_dataflow_rows(
    const std::vector<MethodDataflowRecord>& records);

// ---- Tables 9-14 style summaries over a filtered population ----
struct DataflowSummaries {
  Summary static_insts;   // Table 9
  Summary local_regs;
  Summary stack;
  Summary fanout_avg;     // Table 10
  Summary fanout_max;
  Summary arc_avg;
  Summary arc_max;
  Summary max_queue_up;   // Table 11
  Summary merges;         // Table 12
  Summary forward_jumps;  // Table 13
  Summary forward_len_avg;
  Summary forward_len_max;
  Summary back_jumps;     // Table 14
  Summary back_len_avg;
  Summary back_len_max;
  std::int64_t back_merges_total = 0;
};
DataflowSummaries summarize_dataflow(
    const std::vector<MethodDataflowRecord>& records);

}  // namespace javaflow::analysis
