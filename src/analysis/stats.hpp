// Descriptive statistics used by every results table.
#pragma once

#include <cstdint>
#include <vector>

namespace javaflow::analysis {

struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  double std_dev = 0.0;
  double median = 0.0;
  double max = 0.0;
  double min = 0.0;
};

Summary summarize(std::vector<double> values);

// Pearson correlation coefficient; 0 when either series is constant.
double correlation(const std::vector<double>& x,
                   const std::vector<double>& y);

}  // namespace javaflow::analysis
