#include "analysis/dataflow_analysis.hpp"

#include "fabric/loader.hpp"

namespace javaflow::analysis {

std::vector<MethodDataflowRecord> analyze_dataflow(
    const std::vector<const bytecode::Method*>& methods,
    const bytecode::ConstantPool& pool) {
  fabric::FabricOptions options;
  options.layout = fabric::LayoutKind::Compact;
  fabric::Fabric fabric(options);

  std::vector<MethodDataflowRecord> records;
  records.reserve(methods.size());
  for (const bytecode::Method* m : methods) {
    const fabric::Placement placement = fabric::load_method(fabric, *m);
    if (!placement.fits) continue;
    const fabric::ResolutionResult r =
        fabric::resolve(fabric, *m, placement, pool);
    if (!r.ok) continue;
    MethodDataflowRecord rec;
    rec.method = m->name;
    rec.benchmark = m->benchmark;
    rec.static_insts = static_cast<std::int32_t>(m->code.size());
    rec.max_locals = m->max_locals;
    rec.max_stack = m->max_stack;
    rec.forward_jumps = r.forward_jumps.count;
    rec.back_jumps = r.back_jumps.count;
    rec.forward_len_avg = r.forward_jumps.avg_length;
    rec.forward_len_max = r.forward_jumps.max_length;
    rec.back_len_avg = r.back_jumps.avg_length;
    rec.back_len_max = r.back_jumps.max_length;
    rec.total_dflows = r.total_dflows;
    rec.merges = r.merges;
    rec.back_merges = r.back_merges;
    rec.resolution_cycles = r.total_cycles;
    rec.max_queue_up = r.max_queue_up;
    rec.fanout_avg = r.fanout_avg;
    rec.fanout_max = r.fanout_max;
    rec.arc_avg = r.arc_avg;
    rec.arc_max = r.arc_max;
    records.push_back(std::move(rec));
  }
  return records;
}

std::vector<BenchmarkDataflowRow> benchmark_dataflow_rows(
    const std::vector<MethodDataflowRecord>& records) {
  std::map<std::string, BenchmarkDataflowRow> rows;
  for (const MethodDataflowRecord& rec : records) {
    BenchmarkDataflowRow& row = rows[rec.benchmark];
    row.benchmark = rec.benchmark;
    row.forward += rec.forward_jumps;
    row.back += rec.back_jumps;
    row.total_insts += rec.static_insts;
    row.total_cycles += rec.resolution_cycles;
    row.total_dflows += rec.total_dflows;
    row.total_merges += rec.merges;
    row.total_back_merges += rec.back_merges;
  }
  std::vector<BenchmarkDataflowRow> out;
  BenchmarkDataflowRow total;
  total.benchmark = "Sum";
  for (auto& [bm, row] : rows) {
    total.forward += row.forward;
    total.back += row.back;
    total.total_insts += row.total_insts;
    total.total_cycles += row.total_cycles;
    total.total_dflows += row.total_dflows;
    total.total_merges += row.total_merges;
    total.total_back_merges += row.total_back_merges;
    out.push_back(std::move(row));
  }
  out.push_back(std::move(total));
  return out;
}

DataflowSummaries summarize_dataflow(
    const std::vector<MethodDataflowRecord>& records) {
  DataflowSummaries s;
  std::vector<double> insts, regs, stack, fo_avg, fo_max, arc_avg, arc_max,
      queue, merges, fj, fj_avg, fj_max, bj, bj_avg, bj_max;
  for (const MethodDataflowRecord& r : records) {
    insts.push_back(r.static_insts);
    regs.push_back(r.max_locals);
    stack.push_back(r.max_stack);
    fo_avg.push_back(r.fanout_avg);
    fo_max.push_back(r.fanout_max);
    arc_avg.push_back(r.arc_avg);
    arc_max.push_back(r.arc_max);
    queue.push_back(r.max_queue_up);
    merges.push_back(r.merges);
    fj.push_back(r.forward_jumps);
    fj_avg.push_back(r.forward_len_avg);
    fj_max.push_back(r.forward_len_max);
    bj.push_back(r.back_jumps);
    bj_avg.push_back(r.back_len_avg);
    bj_max.push_back(r.back_len_max);
    s.back_merges_total += r.back_merges;
  }
  s.static_insts = summarize(std::move(insts));
  s.local_regs = summarize(std::move(regs));
  s.stack = summarize(std::move(stack));
  s.fanout_avg = summarize(std::move(fo_avg));
  s.fanout_max = summarize(std::move(fo_max));
  s.arc_avg = summarize(std::move(arc_avg));
  s.arc_max = summarize(std::move(arc_max));
  s.max_queue_up = summarize(std::move(queue));
  s.merges = summarize(std::move(merges));
  s.forward_jumps = summarize(std::move(fj));
  s.forward_len_avg = summarize(std::move(fj_avg));
  s.forward_len_max = summarize(std::move(fj_max));
  s.back_jumps = summarize(std::move(bj));
  s.back_len_avg = summarize(std::move(bj_avg));
  s.back_len_max = summarize(std::move(bj_max));
  return s;
}

}  // namespace javaflow::analysis
