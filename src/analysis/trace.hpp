// Trace-driven execution (extension beyond the paper).
//
// The dissertation ran every method under the synthetic BP-1/BP-2 branch
// scenarios because "trace data was not gathered" (§5.2). Since this
// reproduction owns the reference interpreter, it can gather real
// outcomes: a TraceCollector hooks the interpreter's control-flow events
// and replays them through a Trace-mode BranchPredictor, letting the
// machine execute the *actual* paths of a workload. The
// bench/ablation_trace harness quantifies how much the synthetic
// scenarios distort the Chapter 7 picture.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "jvm/interpreter.hpp"
#include "sim/branch_predictor.hpp"

namespace javaflow::analysis {

class TraceCollector {
 public:
  // Installs the hook; outcomes accumulate until the collector is
  // destroyed or detach() is called.
  explicit TraceCollector(jvm::Interpreter& vm);
  ~TraceCollector();
  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  void detach();

  // Number of recorded control-flow events for a method.
  std::size_t events_for(const std::string& method) const;

  // Builds a Trace-mode predictor that replays the recorded outcomes of
  // `m` (branch taken/not-taken and switch arm choices, in order).
  sim::BranchPredictor predictor_for(const bytecode::Method& m) const;

 private:
  struct Event {
    std::int32_t pc = 0;
    std::int32_t next = 0;
  };
  jvm::Interpreter* vm_;
  std::map<std::string, std::vector<Event>> events_;
};

}  // namespace javaflow::analysis
