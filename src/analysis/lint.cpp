#include "analysis/lint.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>
#include <tuple>
#include <utility>

#include "util/thread_pool.hpp"

namespace javaflow::analysis {
namespace {

using bytecode::Instruction;
using bytecode::Method;
using bytecode::Op;
using bytecode::OpInfo;
using bytecode::ValueType;
using fabric::DataflowGraph;
using fabric::Edge;
using bytecode::is_typed_sig_char;
using bytecode::type_from_sig_char;

std::string_view node_type_name(bytecode::NodeType t) noexcept {
  switch (t) {
    case bytecode::NodeType::Arithmetic: return "arithmetic";
    case bytecode::NodeType::FloatingPoint: return "floating-point";
    case bytecode::NodeType::Storage: return "storage";
    case bytecode::NodeType::Control: return "control";
    case bytecode::NodeType::Blank: return "blank";
    case bytecode::NodeType::Anchor: return "anchor";
  }
  return "?";
}

// True when `linear` is in range and the verifier reached it. An empty
// entry_depth (unverified input) conservatively counts everything as
// reachable so the structural rules still fire.
bool reachable(const bytecode::VerifyResult& vr, std::int32_t linear) {
  if (linear < 0) return false;
  const auto idx = static_cast<std::size_t>(linear);
  if (idx >= vr.entry_depth.size()) return true;
  return vr.entry_depth[idx] >= 0;
}

// The serial-token loop intervals: every backward control transfer
// [target, branch] re-arms the nodes it spans each iteration (§6.3
// "Control Flow" — the HEAD_TOKEN passing up the reverse network resets
// every node it passes). A dataflow back edge is executable only inside
// such an interval.
std::vector<std::pair<std::int32_t, std::int32_t>> token_loop_intervals(
    const Method& m) {
  std::vector<std::pair<std::int32_t, std::int32_t>> loops;
  for (std::size_t j = 0; j < m.code.size(); ++j) {
    const Instruction& inst = m.code[j];
    const auto at = static_cast<std::int32_t>(j);
    if (inst.is_branch() && inst.target >= 0 && inst.target < at) {
      loops.emplace_back(inst.target, at);
    }
    if ((inst.op == Op::tableswitch || inst.op == Op::lookupswitch) &&
        inst.operand >= 0 &&
        static_cast<std::size_t>(inst.operand) < m.switches.size()) {
      const bytecode::SwitchTable& t =
          m.switches[static_cast<std::size_t>(inst.operand)];
      for (const std::int32_t target : t.targets) {
        if (target >= 0 && target < at) loops.emplace_back(target, at);
      }
      if (t.default_target >= 0 && t.default_target < at) {
        loops.emplace_back(t.default_target, at);
      }
    }
  }
  return loops;
}

void json_escape(std::ostream& os, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

}  // namespace

std::string_view lint_severity_name(LintSeverity s) noexcept {
  return s == LintSeverity::Error ? "error" : "warning";
}

std::string_view lint_rule_id(LintRule r) noexcept {
  switch (r) {
    case LintRule::DanglingEdge: return "JF-E001";
    case LintRule::InconsistentEdge: return "JF-E002";
    case LintRule::OperandMismatch: return "JF-E003";
    case LintRule::UntokenizedCycle: return "JF-E004";
    case LintRule::CapacityOverflow: return "JF-E005";
    case LintRule::FanoutOverflow: return "JF-E006";
    case LintRule::UnplacedNode: return "JF-E007";
    case LintRule::BackEdge: return "JF-W101";
    case LintRule::UnreachableCode: return "JF-W102";
    case LintRule::BufferBoundOverflow: return "JF-E008";
    case LintRule::TokenDeadlock: return "JF-E009";
    case LintRule::BoundViolation: return "JF-E010";
    case LintRule::BoundUnproven: return "JF-W103";
  }
  return "JF-????";
}

std::string_view lint_rule_name(LintRule r) noexcept {
  switch (r) {
    case LintRule::DanglingEdge: return "dangling-edge";
    case LintRule::InconsistentEdge: return "inconsistent-edge";
    case LintRule::OperandMismatch: return "operand-mismatch";
    case LintRule::UntokenizedCycle: return "untokenized-cycle";
    case LintRule::CapacityOverflow: return "capacity-overflow";
    case LintRule::FanoutOverflow: return "fanout-overflow";
    case LintRule::UnplacedNode: return "unplaced-node";
    case LintRule::BackEdge: return "back-edge";
    case LintRule::UnreachableCode: return "unreachable-code";
    case LintRule::BufferBoundOverflow: return "bound-overflow";
    case LintRule::TokenDeadlock: return "token-deadlock";
    case LintRule::BoundViolation: return "bound-violation";
    case LintRule::BoundUnproven: return "bound-unproven";
  }
  return "?";
}

LintSeverity lint_rule_severity(LintRule r) noexcept {
  switch (r) {
    case LintRule::BackEdge:
    case LintRule::UnreachableCode:
    case LintRule::BoundUnproven:
      return LintSeverity::Warning;
    default:
      return LintSeverity::Error;
  }
}

bool LintReport::has(LintRule r) const {
  return std::any_of(findings.begin(), findings.end(),
                     [r](const LintFinding& f) { return f.rule == r; });
}

void LintReport::add(LintRule rule, std::string method, std::int32_t pc,
                     std::int32_t slot, std::string message) {
  LintFinding f;
  f.rule = rule;
  f.severity = lint_rule_severity(rule);
  f.method = std::move(method);
  f.pc = pc;
  f.slot = slot;
  f.message = std::move(message);
  if (f.severity == LintSeverity::Error) {
    ++errors;
  } else {
    ++warnings;
  }
  findings.push_back(std::move(f));
}

void LintReport::merge(LintReport&& other) {
  errors += other.errors;
  warnings += other.warnings;
  methods_linted += other.methods_linted;
  placements_linted += other.placements_linted;
  findings.insert(findings.end(),
                  std::make_move_iterator(other.findings.begin()),
                  std::make_move_iterator(other.findings.end()));
}

void lint_graph(const Method& m, const bytecode::ConstantPool& pool,
                const bytecode::VerifyResult& vr, const DataflowGraph& graph,
                const LintOptions& options, LintReport& out) {
  const auto n = static_cast<std::int32_t>(m.code.size());
  ++out.methods_linted;

  // ---- JF-E003: instruction operand counts and typing (§3.6) ----
  if (!vr.ok) {
    out.add(LintRule::OperandMismatch, m.name, -1, -1,
            "method fails ByteCode verification: " + vr.error);
  }
  for (std::int32_t i = 0; i < n; ++i) {
    const Instruction& inst = m.code[static_cast<std::size_t>(i)];
    const OpInfo& info = op_info(inst.op);
    if (!info.valid) {
      out.add(LintRule::OperandMismatch, m.name, i, -1,
              "instruction uses an unassigned opcode byte");
      continue;
    }
    if (info.pop == bytecode::kVarCount) {
      // Calls and multianewarray resolve pop/push per site (§6.2
      // "Loading"); check against the constant-pool signature.
      if (inst.group() == bytecode::Group::Call) {
        if (inst.operand < 0 ||
            static_cast<std::size_t>(inst.operand) >= pool.size() ||
            pool.at(inst.operand).kind !=
                bytecode::CpEntry::Kind::Method) {
          out.add(LintRule::OperandMismatch, m.name, i, -1,
                  "call site does not reference a method pool entry");
        } else {
          const bytecode::MethodRef& ref = pool.at(inst.operand).method;
          if (inst.pop != ref.arg_values) {
            std::ostringstream os;
            os << "call pops " << int(inst.pop) << " but signature takes "
               << int(ref.arg_values) << " values";
            out.add(LintRule::OperandMismatch, m.name, i, -1, os.str());
          }
          const std::uint8_t want_push =
              ref.return_type == ValueType::Void ? 0 : 1;
          if (inst.push != want_push) {
            out.add(LintRule::OperandMismatch, m.name, i, -1,
                    "call push count disagrees with return type");
          }
        }
      } else if (inst.op == Op::multianewarray &&
                 (inst.pop < 1 || inst.push != 1)) {
        out.add(LintRule::OperandMismatch, m.name, i, -1,
                "multianewarray must pop >=1 dimensions and push 1 ref");
      }
    } else {
      if (inst.pop != info.pop || inst.push != info.push) {
        std::ostringstream os;
        os << "pop/push " << int(inst.pop) << "/" << int(inst.push)
           << " disagree with opcode signature " << int(info.pop) << "/"
           << int(info.push);
        out.add(LintRule::OperandMismatch, m.name, i, -1, os.str());
      }
    }
    const auto idx = static_cast<std::size_t>(i);
    if (idx < vr.entry_depth.size() && vr.entry_depth[idx] >= 0) {
      if (vr.entry_depth[idx] < inst.pop) {
        out.add(LintRule::OperandMismatch, m.name, i, -1,
                "entry stack shallower than the instruction's pops");
      } else if (options.check_types && vr.ok &&
                 info.pop != bytecode::kVarCount &&
                 idx < vr.entry_stack.size() &&
                 vr.entry_stack[idx].size() ==
                     static_cast<std::size_t>(vr.entry_depth[idx])) {
        const std::string_view pops =
            info.sig.substr(0, info.sig.find('>'));
        const auto& stack = vr.entry_stack[idx];
        for (std::uint8_t s = 1;
             s <= inst.pop && pops.size() == inst.pop; ++s) {
          const char want = pops[pops.size() - s];
          if (!is_typed_sig_char(want)) continue;
          const ValueType actual = stack[stack.size() - s];
          if (actual != type_from_sig_char(want)) {
            std::ostringstream os;
            os << "operand side " << int(s) << " is "
               << bytecode::value_type_name(actual)
               << " but the signature expects " << want;
            out.add(LintRule::OperandMismatch, m.name, i, -1, os.str());
          }
        }
      }
    } else if (options.warnings && idx < vr.entry_depth.size()) {
      // ---- JF-W102: dead instruction occupying a fabric slot ----
      out.add(LintRule::UnreachableCode, m.name, i, -1,
              "instruction is unreachable from the method entry");
    }
  }

  // ---- edge structure ----
  if (graph.consumers_of.size() != static_cast<std::size_t>(n)) {
    std::ostringstream os;
    os << "consumer index covers " << graph.consumers_of.size()
       << " producers for a " << n << "-instruction method";
    out.add(LintRule::InconsistentEdge, m.name, -1, -1, os.str());
  }

  using Key = std::tuple<std::int32_t, std::int32_t, std::uint8_t>;
  std::map<Key, int> edge_multiplicity;
  std::map<std::pair<std::int32_t, std::uint8_t>, int> producers_per_side;
  for (const Edge& e : graph.edges) {
    // ---- JF-E001: edges must reference real operands ----
    if (e.producer < 0 || e.producer >= n || e.consumer < 0 ||
        e.consumer >= n) {
      std::ostringstream os;
      os << "edge " << e.producer << " -> " << e.consumer
         << " references an address outside the method";
      out.add(LintRule::DanglingEdge, m.name,
              e.consumer >= 0 && e.consumer < n ? e.consumer : -1, -1,
              os.str());
      continue;
    }
    const Instruction& consumer = m.code[static_cast<std::size_t>(e.consumer)];
    if (consumer.pop == 0) {
      std::ostringstream os;
      os << "edge from " << e.producer << " feeds "
         << bytecode::op_name(consumer.op) << " which pops nothing";
      out.add(LintRule::DanglingEdge, m.name, e.consumer, -1, os.str());
    } else if (e.side < 1 || e.side > consumer.pop) {
      std::ostringstream os;
      os << "edge from " << e.producer << " targets operand side "
         << int(e.side) << " of a " << int(consumer.pop) << "-pop consumer";
      out.add(LintRule::DanglingEdge, m.name, e.consumer, -1, os.str());
    }
    const Instruction& producer = m.code[static_cast<std::size_t>(e.producer)];
    if (producer.push == 0) {
      std::ostringstream os;
      os << "edge claims " << bytecode::op_name(producer.op) << " @ "
         << e.producer << " produces a value but it pushes nothing";
      out.add(LintRule::DanglingEdge, m.name, e.producer, -1, os.str());
    }
    if (e.back != (e.producer >= e.consumer)) {
      out.add(LintRule::InconsistentEdge, m.name, e.consumer, -1,
              "back flag disagrees with producer/consumer ordering");
    }
    ++edge_multiplicity[{e.producer, e.consumer, e.side}];
    ++producers_per_side[{e.consumer, e.side}];
  }

  // ---- JF-E002: duplicates and consumer-array consistency (§4.2) ----
  for (const auto& [key, count] : edge_multiplicity) {
    if (count < 2) continue;
    const auto& [p, c, side] = key;
    std::ostringstream os;
    os << "edge " << p << " -> " << c << " side " << int(side)
       << " appears " << count << " times";
    out.add(LintRule::InconsistentEdge, m.name, c, -1, os.str());
  }
  for (const Edge& e : graph.edges) {
    if (e.producer < 0 || e.producer >= n || e.consumer < 0 ||
        e.consumer >= n) {
      continue;
    }
    const auto it = producers_per_side.find({e.consumer, e.side});
    const bool merge = it != producers_per_side.end() && it->second >= 2;
    if (e.merge != merge) {
      out.add(LintRule::InconsistentEdge, m.name, e.consumer, -1,
              "merge flag disagrees with the producer count of its side");
    }
  }
  {
    std::map<Key, int> indexed;
    const std::size_t covered =
        std::min(graph.consumers_of.size(), static_cast<std::size_t>(n));
    for (std::size_t p = 0; p < covered; ++p) {
      for (const Edge& e : graph.consumers_of[p]) {
        if (e.producer != static_cast<std::int32_t>(p)) {
          out.add(LintRule::InconsistentEdge, m.name,
                  static_cast<std::int32_t>(p), -1,
                  "consumer array entry names a different producer");
        }
        ++indexed[{e.producer, e.consumer, e.side}];
      }
    }
    if (indexed != edge_multiplicity) {
      out.add(LintRule::InconsistentEdge, m.name, -1, -1,
              "per-producer consumer arrays disagree with the edge list");
    }
  }

  // ---- JF-E001: every pop of every reachable instruction resolves ----
  for (std::int32_t i = 0; i < n; ++i) {
    const Instruction& inst = m.code[static_cast<std::size_t>(i)];
    if (inst.pop == 0 || !reachable(vr, i)) continue;
    for (std::uint8_t s = 1; s <= inst.pop; ++s) {
      const auto it = producers_per_side.find({i, s});
      if (it == producers_per_side.end() || it->second == 0) {
        std::ostringstream os;
        os << "operand side " << int(s)
           << " has no resolved producer (the node can never fire)";
        out.add(LintRule::DanglingEdge, m.name, i, -1, os.str());
      }
    }
  }

  // ---- JF-E004 / JF-W101: dataflow cycles vs the token bundle (§6.3,
  // §5.4). A back edge is executable only when a serial-token loop spans
  // it; even then valid Java never produces one (Table 7). ----
  const auto loops = token_loop_intervals(m);
  for (const auto& [key, count] : edge_multiplicity) {
    const auto& [p, c, side] = key;
    if (p < c) continue;
    const bool covered =
        std::any_of(loops.begin(), loops.end(), [p = p, c = c](const auto& l) {
          return l.first <= c && l.second >= p;
        });
    if (!covered) {
      std::ostringstream os;
      os << "back edge " << p << " -> " << c << " side " << int(side)
         << " is not re-armed by any token loop: the consumer deadlocks";
      out.add(LintRule::UntokenizedCycle, m.name, c, -1, os.str());
    } else if (options.warnings) {
      std::ostringstream os;
      os << "back edge " << p << " -> " << c
         << " (valid Java compiles loop-carried values to registers)";
      out.add(LintRule::BackEdge, m.name, c, -1, os.str());
    }
  }

  // ---- JF-E005: per-node buffering (§2.1) ----
  if (m.max_stack > options.node_buffer_capacity) {
    std::ostringstream os;
    os << "max_stack " << m.max_stack << " exceeds the per-node operand "
       << "buffer capacity " << options.node_buffer_capacity;
    out.add(LintRule::CapacityOverflow, m.name, -1, -1, os.str());
  }
  for (const auto& [key, count] : producers_per_side) {
    if (count <= options.node_buffer_capacity) continue;
    std::ostringstream os;
    os << "operand side " << int(key.second) << " merges " << count
       << " producers, more than one node buffers";
    out.add(LintRule::CapacityOverflow, m.name, key.first, -1, os.str());
  }

  // ---- JF-E006: consumer-address array bounds (§4.2) ----
  const std::size_t covered =
      std::min(graph.consumers_of.size(), static_cast<std::size_t>(n));
  for (std::size_t p = 0; p < covered; ++p) {
    const std::size_t fan = graph.consumers_of[p].size();
    if (fan <= static_cast<std::size_t>(options.mesh_fanout_limit)) continue;
    std::ostringstream os;
    os << "fan-out " << fan << " exceeds the consumer-address array limit "
       << options.mesh_fanout_limit;
    out.add(LintRule::FanoutOverflow, m.name, static_cast<std::int32_t>(p),
            -1, os.str());
  }
}

void lint_placement(const Method& m, const fabric::Fabric& fabric,
                    const fabric::Placement& placement,
                    const bytecode::VerifyResult& vr,
                    const LintOptions& options, LintReport& out) {
  (void)options;
  ++out.placements_linted;
  const auto n = static_cast<std::int32_t>(m.code.size());
  if (!placement.fits) {
    std::ostringstream os;
    os << "method does not fit the fabric (capacity "
       << fabric.options().capacity << " slots, layout "
       << fabric::layout_name(fabric.options().layout) << ")";
    out.add(LintRule::UnplacedNode, m.name, -1, -1, os.str());
    return;  // slot assignments are partial past the budget miss
  }
  if (placement.slot_of.size() != static_cast<std::size_t>(n)) {
    std::ostringstream os;
    os << "placement covers " << placement.slot_of.size() << " of " << n
       << " instructions";
    out.add(LintRule::UnplacedNode, m.name, -1, -1, os.str());
  }
  std::map<std::int32_t, std::int32_t> first_at_slot;
  for (std::int32_t i = 0; i < n; ++i) {
    const std::int32_t slot = placement.slot(i);
    if (slot < 0) {
      if (reachable(vr, i)) {
        out.add(LintRule::UnplacedNode, m.name, i, -1,
                "reachable instruction holds no fabric slot");
      }
      continue;
    }
    if (slot >= fabric.options().capacity) {
      std::ostringstream os;
      os << "slot " << slot << " lies beyond the node budget "
         << fabric.options().capacity;
      out.add(LintRule::UnplacedNode, m.name, i, slot, os.str());
      continue;
    }
    const bytecode::NodeType want =
        bytecode::node_type_for(m.code[static_cast<std::size_t>(i)].group());
    if (!fabric.slot_accepts(slot, want)) {
      std::ostringstream os;
      os << "slot hosts a " << node_type_name(fabric.slot_type(slot))
         << " node but the instruction needs " << node_type_name(want);
      out.add(LintRule::UnplacedNode, m.name, i, slot, os.str());
    }
    const auto [it, inserted] = first_at_slot.emplace(slot, i);
    if (!inserted) {
      std::ostringstream os;
      os << "slot already holds instruction @" << it->second;
      out.add(LintRule::UnplacedNode, m.name, i, slot, os.str());
    }
  }
}

LintReport lint_method(const Method& m, const bytecode::ConstantPool& pool,
                       const sim::MachineConfig& config,
                       const LintOptions& options) {
  LintReport report;
  const bytecode::VerifyResult vr = bytecode::verify(m, pool);
  if (!vr.ok) {
    ++report.methods_linted;
    report.add(LintRule::OperandMismatch, m.name, -1, -1,
               "method fails ByteCode verification: " + vr.error);
    return report;
  }
  const DataflowGraph graph = fabric::build_dataflow_graph(m, pool);
  lint_graph(m, pool, vr, graph, options, report);
  const fabric::Fabric fabric(config.fabric_options());
  const fabric::Placement placement = fabric::load_method(fabric, m);
  lint_placement(m, fabric, placement, vr, options, report);
  return report;
}

LintReport lint_corpus(const bytecode::Program& program,
                       const std::vector<sim::MachineConfig>& configs,
                       const LintOptions& options, int threads) {
  // The fabrics are immutable during loading, so one set serves every
  // worker lane.
  std::vector<fabric::Fabric> fabrics;
  fabrics.reserve(configs.size());
  for (const sim::MachineConfig& config : configs) {
    fabrics.emplace_back(config.fabric_options());
  }

  const std::size_t n = program.methods.size();
  std::vector<LintReport> per_method(n);
  auto lint_one = [&](std::size_t mi) {
    const Method& m = program.methods[mi];
    LintReport& report = per_method[mi];
    const bytecode::VerifyResult vr = bytecode::verify(m, program.pool);
    if (!vr.ok) {
      ++report.methods_linted;
      report.add(LintRule::OperandMismatch, m.name, -1, -1,
                 "method fails ByteCode verification: " + vr.error);
      return;
    }
    const DataflowGraph graph = fabric::build_dataflow_graph(m, program.pool);
    lint_graph(m, program.pool, vr, graph, options, report);
    for (const fabric::Fabric& f : fabrics) {
      lint_placement(m, f, fabric::load_method(f, m), vr, options, report);
    }
  };

  const unsigned workers = util::ThreadPool::resolve(threads);
  if (workers <= 1 || n <= 1) {
    for (std::size_t mi = 0; mi < n; ++mi) lint_one(mi);
  } else {
    util::ThreadPool pool(workers);
    pool.parallel_for(n, [&](std::size_t mi, unsigned) { lint_one(mi); });
  }

  LintReport report;
  for (LintReport& r : per_method) report.merge(std::move(r));
  return report;
}

namespace {

// Every rule in stable id order, for per-rule summary counts.
constexpr LintRule kAllRules[] = {
    LintRule::DanglingEdge,      LintRule::InconsistentEdge,
    LintRule::OperandMismatch,   LintRule::UntokenizedCycle,
    LintRule::CapacityOverflow,  LintRule::FanoutOverflow,
    LintRule::UnplacedNode,      LintRule::BufferBoundOverflow,
    LintRule::TokenDeadlock,     LintRule::BoundViolation,
    LintRule::BackEdge,          LintRule::UnreachableCode,
    LintRule::BoundUnproven,
};

std::vector<std::pair<LintRule, std::size_t>> rule_counts(
    const LintReport& report) {
  std::vector<std::pair<LintRule, std::size_t>> counts;
  for (LintRule r : kAllRules) {
    const auto n = static_cast<std::size_t>(
        std::count_if(report.findings.begin(), report.findings.end(),
                      [r](const LintFinding& f) { return f.rule == r; }));
    if (n > 0) counts.emplace_back(r, n);
  }
  return counts;
}

}  // namespace

std::string to_summary(const LintReport& report) {
  std::ostringstream os;
  os << report.methods_linted << " methods, " << report.placements_linted
     << " placements: " << report.errors << " errors, " << report.warnings
     << " warnings";
  const auto counts = rule_counts(report);
  if (!counts.empty()) {
    os << " [";
    bool first = true;
    for (const auto& [rule, n] : counts) {
      if (!first) os << ", ";
      first = false;
      os << lint_rule_id(rule) << " x" << n;
    }
    os << ']';
  }
  return os.str();
}

std::string to_text(const LintReport& report) {
  std::ostringstream os;
  for (const LintFinding& f : report.findings) {
    os << lint_severity_name(f.severity) << ' ' << lint_rule_id(f.rule)
       << " [" << lint_rule_name(f.rule) << "] " << f.method;
    if (f.pc >= 0) os << " @" << f.pc;
    if (f.slot >= 0) os << " slot " << f.slot;
    os << ": " << f.message << '\n';
  }
  os << to_summary(report) << '\n';
  return os.str();
}

std::string to_json(const LintReport& report) {
  std::ostringstream os;
  os << "{\"methods\":" << report.methods_linted
     << ",\"placements\":" << report.placements_linted
     << ",\"errors\":" << report.errors
     << ",\"warnings\":" << report.warnings << ",\"findings\":[";
  bool first = true;
  for (const LintFinding& f : report.findings) {
    if (!first) os << ',';
    first = false;
    os << "{\"rule\":\"" << lint_rule_id(f.rule) << "\",\"name\":\""
       << lint_rule_name(f.rule) << "\",\"severity\":\""
       << lint_severity_name(f.severity) << "\",\"method\":\"";
    json_escape(os, f.method);
    os << "\",\"pc\":" << f.pc << ",\"slot\":" << f.slot
       << ",\"message\":\"";
    json_escape(os, f.message);
    os << "\"}";
  }
  os << "]}";
  return os.str();
}

std::string to_json(const LintReport& report,
                    const std::vector<sim::MachineConfig>& configs) {
  std::string base = to_json(report);
  // Splice the self-describing fields in front of the closing brace.
  std::ostringstream os;
  os << base.substr(0, base.size() - 1) << ",\"configs\":[";
  bool first = true;
  for (const sim::MachineConfig& c : configs) {
    if (!first) os << ',';
    first = false;
    os << '"';
    json_escape(os, c.canonical_text());
    os << '"';
  }
  os << "],\"rules\":{";
  first = true;
  for (const auto& [rule, n] : rule_counts(report)) {
    if (!first) os << ',';
    first = false;
    os << '"' << lint_rule_id(rule) << "\":" << n;
  }
  os << "}}";
  return os.str();
}

}  // namespace javaflow::analysis
