#include "analysis/bounds.hpp"

#include <algorithm>
#include <sstream>

#include "bytecode/verifier.hpp"
#include "util/thread_pool.hpp"

namespace javaflow::analysis {
namespace {

using bytecode::Group;
using bytecode::Instruction;
using bytecode::Method;
using bytecode::Op;

bool is_switch(Op op) {
  return op == Op::tableswitch || op == Op::lookupswitch;
}

std::int64_t sat_add(std::int64_t a, std::int64_t b) {
  if (a >= kNoBound || b >= kNoBound) return kNoBound;
  const std::int64_t s = a + b;
  return s >= kNoBound ? kNoBound : s;
}

// The branch arms of a buffering node: every linear address the bundle
// can be redirected to when it fires. Return/athrow terminate — no arms.
void branch_arms(const Method& m, std::int32_t v,
                 std::vector<std::int32_t>& out) {
  out.clear();
  const Instruction& inst = m.code[static_cast<std::size_t>(v)];
  if (is_switch(inst.op)) {
    const auto& table = m.switches[static_cast<std::size_t>(inst.operand)];
    out.insert(out.end(), table.targets.begin(), table.targets.end());
    out.push_back(table.default_target);
  } else if (inst.group() == Group::ControlFlow) {
    out.push_back(inst.target);
    if (inst.op != Op::goto_ && inst.op != Op::goto_w) {
      out.push_back(v + 1);  // conditional fall-through
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
}

}  // namespace

std::int32_t MethodBounds::token_hi_at_phys(std::int32_t phys) const noexcept {
  std::int32_t hi = 0;
  for (const TokenBufferBound& b : token_buffers) {
    if (b.phys == phys) hi = std::max(hi, b.hi);
  }
  return hi;
}

MethodBounds compute_bounds(const bytecode::Method& m,
                            const sim::ExecPlan& plan) {
  MethodBounds out;
  const auto n = static_cast<std::size_t>(plan.node_count());
  if (!plan.fits() || n == 0) return out;

  // Every cost the fixpoint weights with is pre-lowered in the plan:
  // exec_cost_ticks is Table 17 in ticks, produce_extra_ticks the ring
  // service surcharge, PlanOperand::delivery_ticks the per-edge mesh
  // transit, serial_ticks_between the engine's serial hop model (floor
  // one hop, free when collapsed). Back edges were dropped at lowering,
  // mirroring the "back edges never deliver" rule below.
  const std::uint8_t* group = plan.group();
  const std::uint8_t* flags = plan.flags();
  const std::int32_t* pop_need = plan.pop_need();
  const std::int32_t* exec_cost = plan.exec_cost_ticks();
  const std::int32_t* extra = plan.produce_extra_ticks();
  const std::int32_t* oper_begin = plan.operand_begin();
  const sim::PlanOperand* opers = plan.operands();
  const std::int32_t* phys = plan.phys();
  const auto kind_of = [](std::uint8_t g) { return static_cast<Group>(g); };

  out.nodes.assign(n, NodeTiming{});

  // ---- timing: min-plus fixpoint -----------------------------------------
  //
  // head(v) under-approximates the earliest tick HEAD can reach v:
  //   * the anchor injects it (extra 0) — head(entry) = hop * (phys+1);
  //   * non-buffering nodes forward HEAD the tick it arrives;
  //   * a buffering node releases it no earlier than its own execution
  //     completes (forward flush resolves at exec-done; a backward flush
  //     happens even later, when TAIL catches up), so every arm t gets
  //     head(t) >= done(v) + serial transit.
  // fire(v) additionally waits for every operand side: the value of the
  // *cheapest* forward producer plus its mesh transit (back edges never
  // deliver — Engine::send_mesh skips them — so a side fed only by back
  // edges can never be satisfied and the node never fires: kNoBound).
  // done(v) pays the Table 17 execution cost.
  //
  // Backward arms make the relaxation graph cyclic; iterating to a
  // fixpoint terminates because tick values only ever decrease, are
  // bounded below by 0, and the relaxation is monotone over a finite
  // set of integer-valued unknowns (docs/ANALYSIS.md "Termination").
  out.nodes[0].head = plan.serial_ticks_between(-1, 0);

  std::vector<std::int32_t> arms;
  bool changed = true;
  std::size_t rounds = 0;
  while (changed && rounds < n + 2) {
    changed = false;
    ++rounds;
    for (std::size_t v = 0; v < n; ++v) {
      NodeTiming& t = out.nodes[v];
      if (t.head >= kNoBound) continue;

      std::int64_t fire = t.head;
      for (std::int32_t side = 1; side <= pop_need[v]; ++side) {
        std::int64_t best = kNoBound;
        for (std::int32_t oi = oper_begin[v]; oi < oper_begin[v + 1];
             ++oi) {
          const sim::PlanOperand& o = opers[oi];
          if (o.side != side) continue;
          const auto p = static_cast<std::size_t>(o.producer);
          const std::int64_t ready =
              sat_add(sat_add(out.nodes[p].done, extra[p]),
                      o.delivery_ticks);
          best = std::min(best, ready);
        }
        fire = std::max(fire, best);
      }
      const std::int64_t done = sat_add(fire, exec_cost[v]);
      if (fire < t.fire || done < t.done) {
        t.fire = std::min(t.fire, fire);
        t.done = std::min(t.done, done);
        changed = true;
      }

      // Propagate HEAD.
      auto relax_head = [&](std::int32_t to, std::int64_t tick) {
        if (to < 0 || static_cast<std::size_t>(to) >= n) return;
        NodeTiming& dst = out.nodes[static_cast<std::size_t>(to)];
        if (tick < dst.head) {
          dst.head = tick;
          changed = true;
        }
      };
      if ((flags[v] & sim::kPlanBuffers) == 0) {
        relax_head(
            static_cast<std::int32_t>(v) + 1,
            sat_add(t.head,
                    v + 1 < n
                        ? plan.serial_ticks_between(
                              static_cast<std::int32_t>(v),
                              static_cast<std::int32_t>(v) + 1)
                        : 0));
      } else if (t.done < kNoBound) {
        branch_arms(m, static_cast<std::int32_t>(v), arms);
        for (std::int32_t to : arms) {
          if (to < 0 || static_cast<std::size_t>(to) >= n) continue;
          relax_head(to,
                     sat_add(t.done,
                             plan.serial_ticks_between(
                                 static_cast<std::int32_t>(v), to)));
        }
      }
    }
  }

  for (std::size_t v = 0; v < n; ++v) {
    if (kind_of(group[v]) == Group::Return) {
      out.lower_bound_ticks =
          std::min(out.lower_bound_ticks, out.nodes[v].done);
    }
  }

  // ---- resources ---------------------------------------------------------
  // Forward in-degree per consumer is the node's operand CSR span;
  // forward out-degree is the plan's fan-out lane (both views already
  // exclude back edges).
  out.operand_hi.assign(n, 0);
  out.forward_fanout.assign(n, 0);
  const std::int32_t* fanout = plan.forward_fanout();
  for (std::size_t v = 0; v < n; ++v) {
    out.operand_hi[v] = oper_begin[v + 1] - oper_begin[v];
    out.forward_fanout[v] = fanout[v];
    out.max_forward_fanout = std::max(out.max_forward_fanout, fanout[v]);
  }

  // Token-bundle buffering at control nodes. The bundle carries HEAD +
  // MEMORY + TAIL (3) plus max_locals register tokens; each LocalWrite
  // can additionally put one transient duplicate register token in
  // flight (fresh value emitted while the stale token is still
  // traveling to its kill site — docs/ANALYSIS.md "Token conservation").
  std::int32_t writers = 0;
  for (std::size_t v = 0; v < n; ++v) {
    if (kind_of(group[v]) == Group::LocalWrite) ++writers;
  }
  const std::int32_t bundle_hi = 3 + plan.max_locals() + writers;
  for (std::size_t v = 0; v < n; ++v) {
    if ((flags[v] & sim::kPlanBuffers) == 0) continue;
    TokenBufferBound b;
    b.node = static_cast<std::int32_t>(v);
    b.phys = phys[v];
    if (out.nodes[v].head < kNoBound) {
      // HEAD is provably buffered while the node holds; a firing Return
      // has provably buffered TAIL as well (fire_ready demands it).
      b.lo = kind_of(group[v]) == Group::Return &&
                     out.nodes[v].fire < kNoBound
                 ? 2
                 : 1;
    }
    b.hi = bundle_hi;
    out.token_buffers.push_back(b);
  }

  out.valid = true;
  return out;
}

MethodBounds compute_bounds(const bytecode::Method& m,
                            const fabric::DataflowGraph& graph,
                            const fabric::Fabric& fabric,
                            const fabric::Placement& placement,
                            const sim::MachineConfig& config) {
  (void)fabric;  // geometry is re-derived from `config` at lowering
  sim::ExecPlanBuilder builder;
  const sim::ExecPlan plan = builder.build(m, graph, &placement, config);
  return compute_bounds(m, plan);
}

void lint_bounds(const bytecode::Method& m, const sim::MachineConfig& config,
                 const MethodBounds& bounds, const LintOptions& options,
                 LintReport& out) {
  if (!bounds.valid) return;
  const std::size_t n = m.code.size();
  for (std::size_t v = 0; v < n; ++v) {
    if (bounds.nodes[v].head >= kNoBound) continue;  // unreachable
    const std::int32_t need = m.code[v].pop;
    const std::int32_t hi = bounds.operand_hi[v];
    if (need > options.node_buffer_capacity) {
      std::ostringstream os;
      os << "node provably buffers " << need
         << " operands at firing; capacity is "
         << options.node_buffer_capacity << " (" << config.name << ')';
      out.add(LintRule::BufferBoundOverflow, m.name,
              static_cast<std::int32_t>(v), -1, os.str());
    } else if (options.warnings && hi > options.node_buffer_capacity) {
      std::ostringstream os;
      os << "up to " << hi
         << " operand values may arrive before firing; capacity "
         << options.node_buffer_capacity
         << " — overflow possible but not proven (" << config.name << ')';
      out.add(LintRule::BoundUnproven, m.name, static_cast<std::int32_t>(v),
              -1, os.str());
    }
  }
}

void check_metrics_against_bounds(const std::string& method_name,
                                  std::string_view config_name,
                                  std::string_view scenario_name,
                                  const sim::RunMetrics& metrics,
                                  const obs::MetricsRegistry* registry,
                                  const MethodBounds& bounds,
                                  LintReport& out) {
  if (!bounds.valid || !metrics.fits || !metrics.completed ||
      metrics.timed_out || metrics.exception) {
    return;
  }
  auto tag = [&](std::ostringstream& os) {
    os << " [" << config_name << '/' << scenario_name << ']';
  };
  if (bounds.lower_bound_ticks >= kNoBound) {
    std::ostringstream os;
    os << "engine completed in " << metrics.ticks
       << " ticks but the analyzer proves no Return is reachable";
    tag(os);
    out.add(LintRule::BoundViolation, method_name, -1, -1, os.str());
  } else if (metrics.ticks < bounds.lower_bound_ticks) {
    std::ostringstream os;
    os << "measured " << metrics.ticks
       << " ticks beats the static critical-path lower bound "
       << bounds.lower_bound_ticks;
    tag(os);
    out.add(LintRule::BoundViolation, method_name, -1, -1, os.str());
  }
  if (registry == nullptr) return;
  const auto& hwm = registry->buffer_hwm_by_node;
  for (std::size_t p = 0; p < hwm.size(); ++p) {
    if (hwm[p] == 0) continue;
    const std::int32_t limit =
        bounds.token_hi_at_phys(static_cast<std::int32_t>(p));
    if (static_cast<std::int64_t>(hwm[p]) > limit) {
      std::ostringstream os;
      os << "buffer high-water mark " << hwm[p] << " at physical node " << p
         << " exceeds the static token-buffer bound " << limit;
      tag(os);
      out.add(LintRule::BoundViolation, method_name, -1,
              static_cast<std::int32_t>(p), os.str());
    }
  }
}

LintReport bounds_corpus(const bytecode::Program& program,
                         const std::vector<sim::MachineConfig>& configs,
                         const LintOptions& options, int threads) {
  const std::size_t n = program.methods.size();
  std::vector<LintReport> per_method(n);

  auto work = [&](std::size_t mi) {
    const bytecode::Method& m = program.methods[mi];
    LintReport& rep = per_method[mi];
    const bytecode::VerifyResult vr = bytecode::verify(m, program.pool);
    if (!vr.ok) return;  // lint_corpus reports these as JF-E003
    const fabric::DataflowGraph graph =
        fabric::build_dataflow_graph(m, program.pool);
    for (const sim::MachineConfig& config : configs) {
      const fabric::Fabric fab(config.fabric_options());
      const fabric::Placement placement = fabric::load_method(fab, m);
      if (!placement.fits) continue;  // lint_placement reports JF-E007
      const MethodBounds bounds =
          compute_bounds(m, graph, fab, placement, config);
      lint_bounds(m, config, bounds, options, rep);
      ++rep.placements_linted;
    }
    ++rep.methods_linted;
  };

  const unsigned workers = util::ThreadPool::resolve(threads);
  if (workers <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) work(i);
  } else {
    util::ThreadPool pool(workers);
    pool.parallel_for(n, [&](std::size_t mi, unsigned) { work(mi); });
  }

  LintReport report;
  for (LintReport& r : per_method) report.merge(std::move(r));
  return report;
}

}  // namespace javaflow::analysis
