// Abstract token-flow model checker (docs/ANALYSIS.md).
//
// Exhaustively explores the abstract states of the serial token bundle
// over a method's dataflow graph to prove deadlock-freedom and
// token-ordering safety where JF-E004's syntactic back-edge rule is
// merely conservative. The abstraction is
//
//     (holder, fired-set, visited-set)
//
// where `holder` is the control node currently buffering the bundle
// (§6.3: exactly one such node holds it between control transfers),
// `fired-set` the instructions that have fired in the current epoch
// pattern, and `visited-set` the instructions the bundle has traversed.
// Token positions are *derived* from these sets and the chain order —
// e.g. register token r is available below node w only once every
// unfired r-toucher above has fired — so the state space stays finite
// and small. Within one epoch firing is monotone (a firing can enable
// but never disable another — the Kahn-network argument), which makes
// maximal-progress closure exact for stuck-state detection.
//
// Branch and switch arms are explored nondeterministically (the engine's
// predictors do take every arm across the BP1/BP2 scenarios), so a
// `Proved` verdict covers every resolvable control path.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/lint.hpp"
#include "bytecode/method.hpp"
#include "fabric/dataflow_graph.hpp"

namespace javaflow::analysis {

enum class ModelVerdict : std::uint8_t {
  Proved,        // every reachable abstract state completes
  Deadlock,      // a reachable stuck state exists (JF-E009)
  Inconclusive,  // state budget exhausted (JF-W103)
};

std::string_view model_verdict_name(ModelVerdict v) noexcept;

struct ModelCheckOptions {
  // Abstract-state exploration budget; exceeding it yields Inconclusive,
  // never a wrong verdict. The 1605-method corpus peaks far below this.
  std::size_t max_states = 1u << 16;
};

struct ModelCheckResult {
  ModelVerdict verdict = ModelVerdict::Inconclusive;
  std::size_t states_explored = 0;
  // First stuck state found (Deadlock only): the holder control node and
  // a compact arm-decision trace from the entry ("@6->0(back)" etc.).
  std::int32_t deadlock_node = -1;
  std::string witness;
};

// Checks one method. `graph` must be the dataflow graph of `m`; the
// result is placement-independent (token ordering is a chain property).
ModelCheckResult model_check(const bytecode::Method& m,
                             const fabric::DataflowGraph& graph,
                             const ModelCheckOptions& options = {});

// JF-E009 on Deadlock (with witness), JF-W103 on Inconclusive.
void lint_model_check(const bytecode::Method& m, const ModelCheckResult& r,
                      const LintOptions& options, LintReport& out);

// Model-checks every method of `program`; deterministic for every thread
// count (SweepOptions semantics). Unverifiable methods are skipped.
LintReport model_check_corpus(const bytecode::Program& program,
                              const ModelCheckOptions& options = {},
                              int threads = 1);

}  // namespace javaflow::analysis
