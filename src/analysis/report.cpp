#include "analysis/report.hpp"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <sstream>

namespace javaflow::analysis {

Table& Table::columns(std::vector<std::string> names) {
  columns_ = std::move(names);
  return *this;
}

Table& Table::row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::num(double v, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << v;
  return os.str();
}

std::string Table::pct(double fraction, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << fraction * 100.0
     << "%";
  return os.str();
}

std::string Table::big(std::uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  os << "\n== " << title_ << " ==\n";
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : "";
      os << "  " << std::left << std::setw(static_cast<int>(widths[c]))
         << cell;
    }
    os << "\n";
  };
  print_row(columns_);
  std::string rule;
  for (const std::size_t w : widths) rule += "  " + std::string(w, '-');
  os << rule << "\n";
  for (const auto& row : rows_) print_row(row);
}

namespace {

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}

}  // namespace

void Table::write_csv(std::ostream& os) const {
  auto line = [&os](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ",";
      os << csv_escape(cells[c]);
    }
    os << "\n";
  };
  line(columns_);
  for (const auto& row : rows_) line(row);
}

void print_header(const std::string& text, std::ostream& os) {
  os << "\n" << std::string(72, '=') << "\n" << text << "\n"
     << std::string(72, '=') << "\n";
}

}  // namespace javaflow::analysis
