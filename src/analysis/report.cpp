#include "analysis/report.hpp"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <sstream>

namespace javaflow::analysis {

Table& Table::columns(std::vector<std::string> names) {
  columns_ = std::move(names);
  return *this;
}

Table& Table::row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::num(double v, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << v;
  return os.str();
}

std::string Table::pct(double fraction, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << fraction * 100.0
     << "%";
  return os.str();
}

std::string Table::big(std::uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  os << "\n== " << title_ << " ==\n";
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : "";
      os << "  " << std::left << std::setw(static_cast<int>(widths[c]))
         << cell;
    }
    os << "\n";
  };
  print_row(columns_);
  std::string rule;
  for (const std::size_t w : widths) rule += "  " + std::string(w, '-');
  os << rule << "\n";
  for (const auto& row : rows_) print_row(row);
}

namespace {

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}

}  // namespace

void Table::write_csv(std::ostream& os) const {
  auto line = [&os](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ",";
      os << csv_escape(cells[c]);
    }
    os << "\n";
  };
  line(columns_);
  for (const auto& row : rows_) line(row);
}

void print_header(const std::string& text, std::ostream& os) {
  os << "\n" << std::string(72, '=') << "\n" << text << "\n"
     << std::string(72, '=') << "\n";
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

void write_profile_lane(std::ostream& os, const SweepProfile::Lane& lane) {
  os << "{\"verify_s\":" << lane.verify_s
     << ",\"resolve_s\":" << lane.resolve_s
     << ",\"place_s\":" << lane.place_s
     << ",\"plan_s\":" << lane.plan_s
     << ",\"execute_s\":" << lane.execute_s
     << ",\"cache_s\":" << lane.cache_s
     << ",\"methods\":" << lane.methods << ",\"cells\":" << lane.cells
     << ",\"cache_hit_cells\":" << lane.cache_hit_cells
     << ",\"cache_miss_cells\":" << lane.cache_miss_cells
     << ",\"dedup_cells\":" << lane.dedup_cells << "}";
}

}  // namespace

void write_sweep_json(std::ostream& os, const Sweep& sweep, int indent) {
  const std::string in0(static_cast<std::size_t>(indent), ' ');
  const std::string in1 = in0 + "  ";
  const std::string in2 = in1 + "  ";

  const std::vector<FomRow> fom = fom_rows(sweep, Filter::All);
  const std::vector<NetworkRow> net = network_rows(sweep);

  os << "{\n";
  if (!sweep.scheduler.empty()) {
    os << in1 << "\"scheduler\": \"" << json_escape(sweep.scheduler)
       << "\",\n";
  }
  os << in1 << "\"configs\": [\n";
  for (std::size_t ci = 0; ci < sweep.configs.size(); ++ci) {
    const FomRow& f = fom[ci];
    const NetworkRow& n = net[ci];
    os << in2 << "{\"name\": \"" << json_escape(n.config) << "\""
       << ", \"samples\": " << n.samples
       << ", \"ipc_mean\": " << f.ipc_mean
       << ", \"fm_mean\": " << f.fm_mean
       << ", \"mesh_messages\": " << n.total_mesh_messages
       << ", \"serial_messages\": " << n.total_serial_messages
       << ", \"mean_mesh_messages\": " << n.mean_mesh_messages
       << ", \"mean_serial_messages\": " << n.mean_serial_messages
       << ", \"mean_ticks_exec_1plus\": " << n.mean_ticks_exec_1plus
       << ", \"mean_ticks_exec_2plus\": " << n.mean_ticks_exec_2plus
       << "}" << (ci + 1 < sweep.configs.size() ? "," : "") << "\n";
  }
  os << in1 << "],\n";

  // Result-cache outcome (docs/PERF.md "Result cache"). The counters are
  // cell-granular and thread-count-invariant; the dir is omitted because
  // it is host-local noise for cross-run comparison.
  os << in1 << "\"cache\": {"
     << "\"mode\": \"" << json_escape(sweep.cache.mode) << "\""
     << ", \"hit_cells\": " << sweep.cache.hit_cells
     << ", \"miss_cells\": " << sweep.cache.miss_cells
     << ", \"dedup_cells\": " << sweep.cache.dedup_cells
     << ", \"stored_records\": " << sweep.cache.stored_records
     << ", \"verify_mismatch_cells\": " << sweep.cache.verify_mismatch_cells
     << "},\n";

  // Critical-path attribution (docs/OBSERVABILITY.md "Attribution"),
  // present only when the sweep ran with SweepOptions::attribution: per
  // config, the summed category vector over attributed usable cells.
  if (!sweep.attribution.empty()) {
    const std::vector<AttributionRow> attr = attribution_rows(sweep);
    os << in1 << "\"attribution\": [\n";
    for (std::size_t ci = 0; ci < attr.size(); ++ci) {
      const AttributionRow& a = attr[ci];
      os << in2 << "{\"name\": \"" << json_escape(a.config) << "\""
         << ", \"samples\": " << a.samples
         << ", \"total_ticks\": " << a.total_ticks;
      for (std::size_t c = 0; c < obs::kNumPathCategories; ++c) {
        os << ", \""
           << obs::path_category_name(static_cast<obs::PathCategory>(c))
           << "\": " << a.category_ticks[c];
      }
      os << "}" << (ci + 1 < attr.size() ? "," : "") << "\n";
    }
    os << in1 << "],\n";
  }

  const SweepProfile::Lane total = sweep.profile.total();
  os << in1 << "\"profile\": {\n"
     << in2 << "\"wall_s\": " << sweep.profile.wall_s << ",\n"
     << in2 << "\"total\": ";
  write_profile_lane(os, total);
  os << ",\n" << in2 << "\"lanes\": [";
  for (std::size_t li = 0; li < sweep.profile.lanes.size(); ++li) {
    if (li != 0) os << ",";
    write_profile_lane(os, sweep.profile.lanes[li]);
  }
  os << "]\n" << in1 << "}\n" << in0 << "}";
}

}  // namespace javaflow::analysis
