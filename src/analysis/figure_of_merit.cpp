#include "analysis/figure_of_merit.hpp"

#include <algorithm>
#include <unordered_set>

#include "fabric/dataflow_graph.hpp"
#include "fabric/resolver.hpp"
#include "util/thread_pool.hpp"

namespace javaflow::analysis {

std::string_view filter_name(Filter f) noexcept {
  switch (f) {
    case Filter::All: return "Filter All";
    case Filter::Filter1: return "Filter 1";
    case Filter::Filter2: return "Filter 2";
  }
  return "?";
}

bool filter_accepts(Filter f, std::size_t static_insts,
                    bool is_hot) noexcept {
  switch (f) {
    case Filter::All:
      return true;
    case Filter::Filter1:
      return static_insts > 10 && static_insts < 1000;
    case Filter::Filter2:
      return is_hot && static_insts > 10 && static_insts < 1000;
  }
  return true;
}

Sweep run_sweep(const std::vector<const bytecode::Method*>& methods,
                const bytecode::ConstantPool& pool,
                const std::vector<std::string>& hot_methods,
                const SweepOptions& options) {
  Sweep sweep;
  sweep.configs = options.configs.empty() ? sim::table15_configs()
                                          : options.configs;
  const std::unordered_set<std::string> hot(hot_methods.begin(),
                                            hot_methods.end());

  const int stride = std::max(options.stride, 1);
  std::vector<std::size_t> picks;
  picks.reserve(methods.size() / static_cast<std::size_t>(stride) + 1);
  for (std::size_t mi = 0; mi < methods.size();
       mi += static_cast<std::size_t>(stride)) {
    picks.push_back(mi);
  }

  // Each selected method owns a fixed block of config-major cells, so
  // the sample sequence is identical however the methods are scheduled.
  const std::size_t n_scenarios = options.scenarios.size();
  const std::size_t cells_per_method = sweep.configs.size() * n_scenarios;
  sweep.samples.resize(picks.size() * cells_per_method);

  // Lint debug mode: per-method reports fill pre-sized slots so the
  // flattened finding order matches the serial sweep for any thread
  // count. The lint fabrics are immutable during loading and shared.
  std::vector<LintReport> lint_reports(options.lint ? picks.size() : 0);
  std::vector<fabric::Fabric> lint_fabrics;
  if (options.lint) {
    lint_fabrics.reserve(sweep.configs.size());
    for (const sim::MachineConfig& cfg : sweep.configs) {
      lint_fabrics.emplace_back(cfg.fabric_options());
    }
  }

  auto make_engines = [&] {
    std::vector<sim::Engine> engines;
    engines.reserve(sweep.configs.size());
    for (const sim::MachineConfig& cfg : sweep.configs) {
      engines.emplace_back(cfg, options.engine);
    }
    return engines;
  };

  // One task per method: the dataflow graph and static counts are built
  // once, then every config × scenario cell runs on this lane's engines
  // (whose workspaces amortize per-run allocations across the sweep).
  auto run_method = [&](std::size_t pi, std::vector<sim::Engine>& engines) {
    const bytecode::Method& m = *methods[picks[pi]];
    const fabric::DataflowGraph graph =
        fabric::build_dataflow_graph(m, pool);
    std::int32_t back_jumps = 0;
    for (std::size_t i = 0; i < m.code.size(); ++i) {
      if (m.code[i].is_branch() &&
          m.code[i].target < static_cast<std::int32_t>(i)) {
        ++back_jumps;
      }
    }
    const bool is_hot = hot.contains(m.name);
    if (options.lint) {
      const bytecode::VerifyResult vr = bytecode::verify(m, pool);
      lint_graph(m, pool, vr, graph, options.lint_options,
                 lint_reports[pi]);
      for (const fabric::Fabric& f : lint_fabrics) {
        lint_placement(m, f, fabric::load_method(f, m), vr,
                       options.lint_options, lint_reports[pi]);
      }
    }
    SweepSample* out = sweep.samples.data() + pi * cells_per_method;
    for (std::size_t ci = 0; ci < sweep.configs.size(); ++ci) {
      for (std::size_t si = 0; si < n_scenarios; ++si) {
        sim::BranchPredictor predictor(options.scenarios[si]);
        SweepSample& sample = out[ci * n_scenarios + si];
        sample.method = m.name;
        sample.benchmark = m.benchmark;
        sample.config_index = ci;
        sample.scenario = options.scenarios[si];
        sample.static_insts = static_cast<std::int32_t>(m.code.size());
        sample.back_jumps = back_jumps;
        sample.is_hot = is_hot;
        sample.metrics = engines[ci].run(m, graph, predictor);
      }
    }
  };

  const unsigned threads = util::ThreadPool::resolve(options.threads);
  if (threads <= 1 || picks.size() <= 1) {
    std::vector<sim::Engine> engines = make_engines();
    for (std::size_t pi = 0; pi < picks.size(); ++pi) {
      run_method(pi, engines);
    }
  } else {
    util::ThreadPool workers(threads);
    // Per-lane engine sets: lanes never share an Engine (each holds a
    // mutable scratch workspace), and engines persist across the lane's
    // methods so allocation reuse still pays off.
    std::vector<std::vector<sim::Engine>> lane_engines(workers.size());
    workers.parallel_for(picks.size(), [&](std::size_t pi, unsigned lane) {
      if (lane_engines[lane].empty()) lane_engines[lane] = make_engines();
      run_method(pi, lane_engines[lane]);
    });
  }
  for (LintReport& r : lint_reports) {
    sweep.lint_errors += r.errors;
    sweep.lint_warnings += r.warnings;
    sweep.lint_findings.insert(sweep.lint_findings.end(),
                               std::make_move_iterator(r.findings.begin()),
                               std::make_move_iterator(r.findings.end()));
  }
  return sweep;
}

namespace {

bool usable(const SweepSample& s) {
  return s.metrics.fits && s.metrics.completed && !s.metrics.timed_out;
}

// Key identifying a (method, scenario) pair for Baseline normalization.
using RunKey = std::pair<std::string, int>;

std::map<RunKey, double> baseline_ipc(const Sweep& sweep) {
  std::map<RunKey, double> base;
  for (const SweepSample& s : sweep.samples) {
    if (s.config_index != 0 || !usable(s)) continue;
    base[{s.method, static_cast<int>(s.scenario)}] = s.metrics.ipc();
  }
  return base;
}

}  // namespace

std::vector<IpcRow> ipc_rows(const Sweep& sweep, Filter filter) {
  std::vector<std::vector<double>> per_config(sweep.configs.size());
  for (const SweepSample& s : sweep.samples) {
    if (!usable(s) ||
        !filter_accepts(filter, static_cast<std::size_t>(s.static_insts),
                        s.is_hot)) {
      continue;
    }
    per_config[s.config_index].push_back(s.metrics.ipc());
  }
  std::vector<IpcRow> rows;
  for (std::size_t ci = 0; ci < sweep.configs.size(); ++ci) {
    rows.push_back({sweep.configs[ci].name,
                    summarize(std::move(per_config[ci]))});
  }
  return rows;
}

std::vector<FomRow> fom_rows(const Sweep& sweep, Filter filter) {
  const auto base = baseline_ipc(sweep);
  std::vector<std::vector<double>> fm(sweep.configs.size());
  std::vector<std::vector<double>> ipc(sweep.configs.size());
  for (const SweepSample& s : sweep.samples) {
    if (!usable(s) ||
        !filter_accepts(filter, static_cast<std::size_t>(s.static_insts),
                        s.is_hot)) {
      continue;
    }
    ipc[s.config_index].push_back(s.metrics.ipc());
    const auto it = base.find({s.method, static_cast<int>(s.scenario)});
    if (it == base.end() || it->second <= 0.0) continue;
    fm[s.config_index].push_back(s.metrics.ipc() / it->second);
  }
  std::vector<FomRow> rows;
  for (std::size_t ci = 0; ci < sweep.configs.size(); ++ci) {
    const Summary si = summarize(ipc[ci]);
    const Summary sf = summarize(fm[ci]);
    FomRow row;
    row.config = sweep.configs[ci].name;
    row.ipc_mean = si.mean;
    row.ipc_median = si.median;
    row.fm_mean = sf.mean;
    row.fm_std = sf.std_dev;
    row.samples = sf.n;
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<CorrelationRow> hetero_fom_correlations(const Sweep& sweep) {
  const auto base = baseline_ipc(sweep);
  // Hetero is the last Table 15 configuration.
  const std::size_t hetero = sweep.configs.size() - 1;
  std::vector<double> fm, total_i, executed_i, max_node, back_jumps;
  for (const SweepSample& s : sweep.samples) {
    if (s.config_index != hetero || !usable(s)) continue;
    const auto it = base.find({s.method, static_cast<int>(s.scenario)});
    if (it == base.end() || it->second <= 0.0) continue;
    fm.push_back(s.metrics.ipc() / it->second);
    total_i.push_back(s.static_insts);
    executed_i.push_back(static_cast<double>(s.metrics.distinct_fired));
    max_node.push_back(static_cast<double>(s.metrics.max_slot));
    back_jumps.push_back(s.back_jumps);
  }
  return {
      {"Total I", correlation(fm, total_i)},
      {"Executed I", correlation(fm, executed_i)},
      {"Max Node", correlation(fm, max_node)},
      {"Back Jumps", correlation(fm, back_jumps)},
  };
}

std::vector<CoverageRow> coverage_rows(const Sweep& sweep) {
  std::map<int, std::vector<double>> per_scenario;
  for (const SweepSample& s : sweep.samples) {
    if (!usable(s)) continue;
    per_scenario[static_cast<int>(s.scenario)].push_back(
        s.metrics.coverage());
  }
  std::vector<CoverageRow> rows;
  for (const auto& [scenario, values] : per_scenario) {
    CoverageRow row;
    row.scenario = scenario == 0 ? "BP-1" : (scenario == 1 ? "BP-2" : "Trace");
    row.mean_coverage = summarize(values).mean;
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<NodeRatioRow> node_ratio_rows(const Sweep& sweep,
                                          Filter filter) {
  std::vector<std::vector<double>> per_config(sweep.configs.size());
  for (const SweepSample& s : sweep.samples) {
    if (!s.metrics.fits ||
        !filter_accepts(filter, static_cast<std::size_t>(s.static_insts),
                        s.is_hot)) {
      continue;
    }
    if (s.scenario != sim::BranchPredictor::Scenario::BP1) continue;
    per_config[s.config_index].push_back(
        s.metrics.nodes_per_instruction());
  }
  std::vector<NodeRatioRow> rows;
  for (std::size_t ci = 0; ci < sweep.configs.size(); ++ci) {
    rows.push_back({sweep.configs[ci].name,
                    summarize(std::move(per_config[ci]))});
  }
  return rows;
}

std::vector<ParallelismRow> parallelism_rows(const Sweep& sweep) {
  std::vector<std::vector<double>> per_config(sweep.configs.size());
  for (const SweepSample& s : sweep.samples) {
    if (!usable(s)) continue;
    per_config[s.config_index].push_back(s.metrics.parallel_2plus());
  }
  std::vector<ParallelismRow> rows;
  for (std::size_t ci = 0; ci < sweep.configs.size(); ++ci) {
    rows.push_back({sweep.configs[ci].name,
                    summarize(std::move(per_config[ci])).mean});
  }
  return rows;
}

std::vector<MethodFomRow> per_method_fom(
    const Sweep& sweep, const std::vector<std::string>& methods) {
  const auto base = baseline_ipc(sweep);
  std::vector<MethodFomRow> rows;
  for (const std::string& name : methods) {
    MethodFomRow row;
    row.method = name;
    row.fm.assign(sweep.configs.size(), 0.0);
    std::vector<int> counts(sweep.configs.size(), 0);
    for (const SweepSample& s : sweep.samples) {
      if (s.method != name || !usable(s)) continue;
      row.benchmark = s.benchmark;
      row.total_insts = s.static_insts;
      if (sweep.configs[s.config_index].layout ==
          fabric::LayoutKind::Heterogeneous) {
        row.hetero_nodes = s.metrics.max_slot + 1;
      }
      const auto it = base.find({s.method, static_cast<int>(s.scenario)});
      if (it == base.end() || it->second <= 0.0) continue;
      row.fm[s.config_index] += s.metrics.ipc() / it->second;
      ++counts[s.config_index];
    }
    for (std::size_t ci = 0; ci < row.fm.size(); ++ci) {
      if (counts[ci] > 0) row.fm[ci] /= counts[ci];
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace javaflow::analysis
