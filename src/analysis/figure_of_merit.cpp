#include "analysis/figure_of_merit.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <unordered_set>

#include <map>

#include "analysis/bounds.hpp"
#include "cache/key.hpp"
#include "fabric/dataflow_graph.hpp"
#include "fabric/resolver.hpp"
#include "util/thread_pool.hpp"

namespace javaflow::analysis {

namespace {

std::string_view sweep_scenario_name(sim::BranchPredictor::Scenario s) {
  switch (s) {
    case sim::BranchPredictor::Scenario::BP1: return "BP1";
    case sim::BranchPredictor::Scenario::BP2: return "BP2";
    case sim::BranchPredictor::Scenario::Trace: return "Trace";
  }
  return "?";
}

}  // namespace

SweepProfile::Lane SweepProfile::total() const {
  Lane t;
  for (const Lane& l : lanes) {
    t.verify_s += l.verify_s;
    t.resolve_s += l.resolve_s;
    t.place_s += l.place_s;
    t.plan_s += l.plan_s;
    t.execute_s += l.execute_s;
    t.cache_s += l.cache_s;
    t.methods += l.methods;
    t.cells += l.cells;
    t.cache_hit_cells += l.cache_hit_cells;
    t.cache_miss_cells += l.cache_miss_cells;
    t.dedup_cells += l.dedup_cells;
  }
  return t;
}

std::string_view filter_name(Filter f) noexcept {
  switch (f) {
    case Filter::All: return "Filter All";
    case Filter::Filter1: return "Filter 1";
    case Filter::Filter2: return "Filter 2";
  }
  return "?";
}

bool filter_accepts(Filter f, std::size_t static_insts,
                    bool is_hot) noexcept {
  switch (f) {
    case Filter::All:
      return true;
    case Filter::Filter1:
      return static_insts > 10 && static_insts < 1000;
    case Filter::Filter2:
      return is_hot && static_insts > 10 && static_insts < 1000;
  }
  return true;
}

Sweep run_sweep(const std::vector<const bytecode::Method*>& methods,
                const bytecode::ConstantPool& pool,
                const std::vector<std::string>& hot_methods,
                const SweepOptions& options) {
  Sweep sweep;
  sweep.configs = options.configs.empty() ? sim::table15_configs()
                                          : options.configs;
  const sim::SchedulerKind resolved_scheduler =
      sim::resolve_scheduler(options.engine.scheduler);
  sweep.scheduler = std::string(sim::scheduler_name(resolved_scheduler));
  const std::unordered_set<std::string> hot(hot_methods.begin(),
                                            hot_methods.end());

  // Method selection: the substring filter (fast local iteration on one
  // method) applies before the stride, so filter + stride 1 sweeps
  // exactly the matching methods and an empty filter reproduces the
  // historical every-k-th-method picks bit for bit.
  const int stride = std::max(options.stride, 1);
  std::vector<std::size_t> picks;
  picks.reserve(methods.size() / static_cast<std::size_t>(stride) + 1);
  std::size_t eligible = 0;
  for (std::size_t mi = 0; mi < methods.size(); ++mi) {
    if (!options.method_filter.empty() &&
        methods[mi]->name.find(options.method_filter) ==
            std::string::npos) {
      continue;
    }
    if (eligible % static_cast<std::size_t>(stride) == 0) {
      picks.push_back(mi);
    }
    ++eligible;
  }

  // Each selected method owns a fixed block of config-major cells, so
  // the sample sequence is identical however the methods are scheduled.
  const std::size_t n_scenarios = options.scenarios.size();
  const std::size_t cells_per_method = sweep.configs.size() * n_scenarios;
  sweep.samples.resize(picks.size() * cells_per_method);
  if (options.attribution) {
    sweep.attribution.resize(sweep.samples.size());
  }

  // Lint / bounds debug modes: per-method reports fill pre-sized slots
  // so the flattened finding order matches the serial sweep for any
  // thread count.
  std::vector<LintReport> lint_reports(
      options.lint || options.check_bounds ? picks.size() : 0);

  // ---- result cache + corpus dedup setup (docs/PERF.md) ----

  // Telemetry hooks fire during execution only, so serving cached cells
  // would silently under-count the registries/tracer: force the cache
  // off for instrumented sweeps.
  const bool instrumented = options.collect_metrics ||
                            options.attribution ||
                            options.engine.metrics != nullptr ||
                            options.engine.tracer != nullptr ||
                            options.engine.flight != nullptr ||
                            options.engine.trace;
  cache::CacheMode mode = cache::resolve_cache_mode(options.cache);
  if (instrumented && mode != cache::CacheMode::Off) {
    std::fprintf(stderr,
                 "javaflow-cache: telemetry enabled, disabling the result "
                 "cache for this sweep\n");
    mode = cache::CacheMode::Off;
  }
  std::optional<cache::CacheStore> store;
  if (mode != cache::CacheMode::Off) {
    store.emplace(cache::resolve_cache_dir(options.cache_dir));
    sweep.cache.dir = store->dir();
  }
  sweep.cache.mode = std::string(cache::cache_mode_name(mode));

  // Lint / bounds debug modes report findings per picked method, so
  // dedup (which skips duplicate picks entirely) would drop duplicates'
  // findings — both force it off.
  const bool dedup =
      options.dedup && !options.lint && !options.check_bounds;

  // Body digests drive both the cache keys and dedup grouping. Hashing
  // the whole corpus is a few milliseconds — noise next to a single cell.
  const bool keyed = store.has_value() || dedup;
  std::vector<cache::Hash128> body_hash(keyed ? picks.size() : 0);
  for (std::size_t pi = 0; pi < body_hash.size(); ++pi) {
    body_hash[pi] = cache::hash_method_body(*methods[picks[pi]]);
  }
  cache::Hash128 pool_hash;
  cache::Hash128 engine_hash;
  std::vector<cache::Hash128> config_hash;
  if (store.has_value()) {
    pool_hash = cache::hash_pool(pool);
    engine_hash =
        cache::hash_engine_options(options.engine, resolved_scheduler);
    config_hash.reserve(sweep.configs.size());
    for (const sim::MachineConfig& cfg : sweep.configs) {
      config_hash.push_back(cache::hash_config(cfg));
    }
  }

  // Corpus dedup: the first pick with a given body digest is the
  // leader and is the only one simulated; duplicates copy its cells in
  // a serial post-pass below. `work` preserves pick order, so sample
  // indexing stays deterministic for every thread count.
  std::vector<std::size_t> leader_of(picks.size());
  std::vector<std::size_t> work;
  work.reserve(picks.size());
  if (dedup) {
    std::map<cache::Hash128, std::size_t> first_with_body;
    for (std::size_t pi = 0; pi < picks.size(); ++pi) {
      const auto [it, inserted] =
          first_with_body.try_emplace(body_hash[pi], pi);
      leader_of[pi] = it->second;
      if (inserted) work.push_back(pi);
    }
  } else {
    for (std::size_t pi = 0; pi < picks.size(); ++pi) {
      leader_of[pi] = pi;
      work.push_back(pi);
    }
  }

  // Pre-lowered execution plans (docs/PERF.md "Execution plans"): when
  // the resolved plan mode is On, the precompute phase lowers each
  // deduplicated method into one read-only ExecPlan per configuration,
  // shared by every worker lane and both scenarios in the execute phase.
  const bool use_plans =
      sim::resolve_plan_mode(options.engine.plan) == sim::PlanMode::On;

  // Everything a worker lane owns privately: engines (whose workspaces
  // amortize per-run allocations across the lane's methods), fabrics for
  // the placement phase, a telemetry registry, cache scratch buffers,
  // and phase timers. Nothing here is touched by another thread while
  // the sweep runs.
  struct LaneState {
    std::vector<sim::Engine> engines;
    std::vector<fabric::Fabric> fabrics;
    obs::MetricsRegistry metrics;
    // check_bounds scratch: the lane's engines write each run's counters
    // here so the per-run buffer high-water marks can be checked against
    // the static bound; reset before every run. When collect_metrics is
    // also on, each run's counters are merged into `metrics` afterwards
    // (the merge is commutative, so the aggregate is unchanged).
    obs::MetricsRegistry bounds_reg;
    // Attribution scratch: each engine run resets and refills it; the
    // cell's category vector is extracted right after the run.
    obs::FlightRecorder flight;
    SweepProfile::Lane prof;
    // Plan-lowering scratch (route/edge staging grows monotonically) and
    // the lane's name interner: each method's cells share one heap
    // string per name instead of twelve copies.
    sim::ExecPlanBuilder plan_builder;
    util::Interner intern;
    std::size_t stored_records = 0;
    std::size_t verify_mismatch_cells = 0;
  };

  // Per-work-item precompute handed from the prepare phase to the
  // execute phase. Built by whichever lane draws the item in phase A,
  // read (possibly by a DIFFERENT lane) in phase B — the thread-pool
  // barrier between the phases orders the hand-off, and phase B treats
  // everything here as read-only except the cache record upsert.
  struct Precomp {
    bool have_record = false;
    std::size_t cached_cells = 0;
    bool full_hit = false;  // every cell served from cache (not verify)
    std::vector<const cache::CellRecord*> cell_hits;
    cache::MethodRecord record;
    fabric::DataflowGraph graph;
    std::vector<fabric::Placement> placements;
    std::vector<sim::ExecPlan> plans;  // one per config when plans are on
  };

  auto make_lane = [&] {
    auto lane = std::make_unique<LaneState>();
    lane->fabrics.reserve(sweep.configs.size());
    lane->engines.reserve(sweep.configs.size());
    sim::EngineOptions engine_options = options.engine;
    if (options.collect_metrics) engine_options.metrics = &lane->metrics;
    if (options.check_bounds) engine_options.metrics = &lane->bounds_reg;
    if (options.attribution) engine_options.flight = &lane->flight;
    for (const sim::MachineConfig& cfg : sweep.configs) {
      lane->fabrics.emplace_back(cfg.fabric_options());
      lane->engines.emplace_back(cfg, engine_options);
    }
    return lane;
  };

  using Clock = std::chrono::steady_clock;
  const auto sweep_t0 = Clock::now();

  // Opt-in progress heartbeat: at most ~one stderr line a second (plus a
  // final one), claimed by whichever lane crosses the interval first.
  // With dedup, the denominator is the deduplicated work list; with the
  // cache on, the line also carries live hit/miss/dedup cell counts. The
  // ETA comes from the completed-cell rate across all lanes (cells, not
  // methods, because a full cache hit finishes a method's cells orders
  // of magnitude faster than the compute path), and every line is
  // flushed so CI log buffering can't hold progress back.
  std::atomic<std::size_t> methods_done{0};
  std::atomic<std::size_t> cells_done{0};
  std::atomic<std::int64_t> last_beat_ms{0};
  std::atomic<std::size_t> hb_hit_cells{0};
  std::atomic<std::size_t> hb_miss_cells{0};
  const std::size_t cells_planned = work.size() * cells_per_method;
  const std::size_t dedup_cells_planned =
      (picks.size() - work.size()) * cells_per_method;
  auto heartbeat = [&] {
    if (!options.heartbeat) return;
    const std::size_t done = methods_done.fetch_add(1) + 1;
    const std::size_t cells =
        cells_done.fetch_add(cells_per_method) + cells_per_method;
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - sweep_t0).count();
    const auto now_ms = static_cast<std::int64_t>(elapsed * 1000.0);
    std::int64_t last = last_beat_ms.load(std::memory_order_relaxed);
    if (now_ms - last < 1000 && done != work.size()) return;
    if (!last_beat_ms.compare_exchange_strong(last, now_ms)) return;
    const double cell_rate =
        elapsed > 0.0 ? static_cast<double>(cells) / elapsed : 0.0;
    const double eta =
        cell_rate > 0.0
            ? static_cast<double>(cells_planned - cells) / cell_rate
            : 0.0;
    if (mode != cache::CacheMode::Off) {
      std::fprintf(stderr,
                   "sweep: %zu/%zu methods (%.0f cells/s, ETA %.0f s, "
                   "cache %zu hit / %zu miss / %zu dedup cells)\n",
                   done, work.size(), cell_rate, eta,
                   hb_hit_cells.load(std::memory_order_relaxed),
                   hb_miss_cells.load(std::memory_order_relaxed),
                   dedup_cells_planned);
    } else {
      std::fprintf(stderr,
                   "sweep: %zu/%zu methods (%.0f cells/s, ETA %.0f s)\n",
                   done, work.size(), cell_rate, eta);
    }
    std::fflush(stderr);
  };

  // Phase A, one task per (deduplicated) method: probe the cache, and
  // for anything not fully served, build the dataflow graph, the
  // per-config placements, and (plan mode On) the per-config execution
  // plans. A full cache hit builds the static structures only when a
  // static-check mode (lint / bounds) needs them — never the plans, so
  // the warm-cache fast path stays plan-free.
  const bool profile = options.profile;
  std::vector<std::unique_ptr<Precomp>> pre(work.size());
  auto prepare_method = [&](std::size_t wi, LaneState& lane) {
    auto t = profile ? Clock::now() : Clock::time_point{};
    auto lap = [&](double& acc) {
      if (!profile) return;
      const auto now = Clock::now();
      acc += std::chrono::duration<double>(now - t).count();
      t = now;
    };

    const std::size_t pi = work[wi];
    const bytecode::Method& m = *methods[picks[pi]];
    pre[wi] = std::make_unique<Precomp>();
    Precomp& p = *pre[wi];

    // ---- cache probe ----
    if (store.has_value()) {
      p.cell_hits.assign(cells_per_method, nullptr);
      p.have_record =
          store->load(cache::record_key(body_hash[pi], pool_hash),
                      cache::record_fingerprint(), p.record);
      if (p.have_record) {
        for (std::size_t ci = 0; ci < sweep.configs.size(); ++ci) {
          for (std::size_t si = 0; si < n_scenarios; ++si) {
            const cache::Hash128 key = cache::cell_key(
                body_hash[pi], pool_hash, config_hash[ci], engine_hash,
                options.scenarios[si]);
            for (const cache::CellRecord& cell : p.record.cells) {
              if (cell.key == key) {
                p.cell_hits[ci * n_scenarios + si] = &cell;
                ++p.cached_cells;
                break;
              }
            }
          }
        }
      }
      p.full_hit = p.cached_cells == cells_per_method &&
                   mode != cache::CacheMode::Verify;
      lap(lane.prof.cache_s);
    }

    const bool need_static =
        !p.full_hit || options.lint || options.check_bounds;
    if (!need_static) return;
    p.graph = fabric::build_dataflow_graph(m, pool);
    lap(lane.prof.resolve_s);
    p.placements.reserve(sweep.configs.size());
    for (const fabric::Fabric& f : lane.fabrics) {
      p.placements.push_back(fabric::load_method(f, m));
    }
    lap(lane.prof.place_s);
    if (use_plans && !p.full_hit) {
      p.plans.reserve(sweep.configs.size());
      for (std::size_t ci = 0; ci < sweep.configs.size(); ++ci) {
        p.plans.push_back(lane.plan_builder.build(
            m, p.graph, &p.placements[ci], sweep.configs[ci]));
      }
      lap(lane.prof.plan_s);
    }
  };

  // Phase B, one task per (deduplicated) method: serve full cache hits
  // from the record, or run every config × scenario cell on this lane's
  // engines — from the shared pre-lowered plan when one was built, via
  // the legacy graph + placement walk otherwise. The item's precompute
  // block is freed as soon as its cells are done.
  auto run_method = [&](std::size_t wi, LaneState& lane) {
    auto t = profile ? Clock::now() : Clock::time_point{};
    auto lap = [&](double& acc) {
      if (!profile) return;
      const auto now = Clock::now();
      acc += std::chrono::duration<double>(now - t).count();
      t = now;
    };

    const std::size_t pi = work[wi];
    const bytecode::Method& m = *methods[picks[pi]];
    const bool is_hot = hot.contains(m.name);
    const util::InternedString& mname = lane.intern.get(m.name);
    const util::InternedString& bname = lane.intern.get(m.benchmark);
    SweepSample* out = sweep.samples.data() + pi * cells_per_method;
    Precomp& p = *pre[wi];

    // Full hit outside verify mode: serve every cell from the record.
    // (Lint and bounds debug modes still check the phase-A graph +
    // placements — they are static checks — but execution stays
    // skipped; bounds can then only assert the ticks direction, since
    // no registry ran.)
    if (p.full_hit) {
      if (options.lint) {
        const bytecode::VerifyResult vr = bytecode::verify(m, pool);
        lint_graph(m, pool, vr, p.graph, options.lint_options,
                   lint_reports[pi]);
        for (std::size_t ci = 0; ci < lane.fabrics.size(); ++ci) {
          lint_placement(m, lane.fabrics[ci], p.placements[ci], vr,
                         options.lint_options, lint_reports[pi]);
        }
      }
      if (options.check_bounds) {
        for (std::size_t ci = 0; ci < sweep.configs.size(); ++ci) {
          const MethodBounds bounds =
              compute_bounds(m, p.graph, lane.fabrics[ci],
                             p.placements[ci], sweep.configs[ci]);
          for (std::size_t si = 0; si < n_scenarios; ++si) {
            check_metrics_against_bounds(
                m.name, sweep.configs[ci].name,
                sweep_scenario_name(options.scenarios[si]),
                p.cell_hits[ci * n_scenarios + si]->metrics,
                nullptr, bounds, lint_reports[pi]);
          }
        }
      }
      lap(lane.prof.verify_s);
      for (std::size_t ci = 0; ci < sweep.configs.size(); ++ci) {
        for (std::size_t si = 0; si < n_scenarios; ++si) {
          const cache::CellRecord& cell =
              *p.cell_hits[ci * n_scenarios + si];
          SweepSample& sample = out[ci * n_scenarios + si];
          sample.method = mname;
          sample.benchmark = bname;
          sample.config_index = ci;
          sample.scenario = options.scenarios[si];
          sample.static_insts = cell.static_insts;
          sample.back_jumps = cell.back_jumps;
          sample.is_hot = is_hot;
          sample.metrics = cell.metrics;
        }
      }
      lap(lane.prof.cache_s);
      lane.prof.cache_hit_cells += cells_per_method;
      hb_hit_cells.fetch_add(cells_per_method, std::memory_order_relaxed);
      ++lane.prof.methods;
      lane.prof.cells += cells_per_method;
      pre[wi].reset();
      heartbeat();
      return;
    }

    // ---- compute path ----
    std::int32_t back_jumps = 0;
    for (std::size_t i = 0; i < m.code.size(); ++i) {
      if (m.code[i].is_branch() &&
          m.code[i].target < static_cast<std::int32_t>(i)) {
        ++back_jumps;
      }
    }
    if (options.lint) {
      const bytecode::VerifyResult vr = bytecode::verify(m, pool);
      lint_graph(m, pool, vr, p.graph, options.lint_options,
                 lint_reports[pi]);
      for (std::size_t ci = 0; ci < lane.fabrics.size(); ++ci) {
        lint_placement(m, lane.fabrics[ci], p.placements[ci], vr,
                       options.lint_options, lint_reports[pi]);
      }
    }
    std::vector<MethodBounds> bounds;
    if (options.check_bounds) {
      bounds.reserve(sweep.configs.size());
      for (std::size_t ci = 0; ci < sweep.configs.size(); ++ci) {
        // The analyzer reads the same lowered image the engine runs
        // when plans are on; otherwise it lowers one on the spot.
        bounds.push_back(
            p.plans.empty()
                ? compute_bounds(m, p.graph, lane.fabrics[ci],
                                 p.placements[ci], sweep.configs[ci])
                : compute_bounds(m, p.plans[ci]));
      }
    }
    lap(lane.prof.verify_s);

    for (std::size_t ci = 0; ci < sweep.configs.size(); ++ci) {
      for (std::size_t si = 0; si < n_scenarios; ++si) {
        sim::BranchPredictor predictor(options.scenarios[si]);
        SweepSample& sample = out[ci * n_scenarios + si];
        sample.method = mname;
        sample.benchmark = bname;
        sample.config_index = ci;
        sample.scenario = options.scenarios[si];
        sample.static_insts = static_cast<std::int32_t>(m.code.size());
        sample.back_jumps = back_jumps;
        sample.is_hot = is_hot;
        if (options.check_bounds) lane.bounds_reg = obs::MetricsRegistry{};
        sample.metrics =
            p.plans.empty()
                ? lane.engines[ci].run(m, p.graph, p.placements[ci],
                                       predictor)
                : lane.engines[ci].run(m, p.plans[ci], predictor);
        if (options.attribution) {
          obs::AttributeOptions ao;
          ao.mesh_width = sweep.configs[ci].width;
          ao.collapsed = sweep.configs[ci].collapsed();
          ao.detail = false;  // the sweep keeps only the category vector
          const obs::Attribution attr = obs::attribute(lane.flight, ao);
          CellAttribution& cell =
              sweep.attribution[pi * cells_per_method +
                                ci * n_scenarios + si];
          // The key invariant: attributed categories sum exactly to the
          // run's ticks. A completed run that fails it is recorded as
          // unattributed (zeros), never as a silently wrong vector.
          if (attr.valid && attr.ticks == sample.metrics.ticks) {
            cell.valid = true;
            cell.category_ticks = attr.category_ticks;
          }
        }
        if (options.check_bounds) {
          check_metrics_against_bounds(
              m.name, sweep.configs[ci].name,
              sweep_scenario_name(options.scenarios[si]), sample.metrics,
              &lane.bounds_reg, bounds[ci], lint_reports[pi]);
          if (options.collect_metrics) lane.metrics.merge(lane.bounds_reg);
        }
      }
    }
    lap(lane.prof.execute_s);

    // ---- verify / store ----
    if (store.has_value()) {
      bool verify_clean = true;
      if (mode == cache::CacheMode::Verify) {
        for (std::size_t idx = 0; idx < cells_per_method; ++idx) {
          const cache::CellRecord* cell = p.cell_hits[idx];
          if (cell == nullptr) continue;
          const SweepSample& fresh = out[idx];
          if (cell->metrics != fresh.metrics ||
              cell->static_insts != fresh.static_insts ||
              cell->back_jumps != fresh.back_jumps) {
            ++lane.verify_mismatch_cells;
            verify_clean = false;
            std::fprintf(
                stderr,
                "javaflow-cache: VERIFY MISMATCH %s [%s, scenario %d] — "
                "cached record differs from fresh execution; repairing\n",
                m.name.c_str(),
                sweep.configs[idx / n_scenarios].name.c_str(),
                static_cast<int>(options.scenarios[idx % n_scenarios]));
          }
        }
        lane.prof.cache_hit_cells += p.cached_cells;
        lane.prof.cache_miss_cells += cells_per_method - p.cached_cells;
        hb_hit_cells.fetch_add(p.cached_cells, std::memory_order_relaxed);
        hb_miss_cells.fetch_add(cells_per_method - p.cached_cells,
                                std::memory_order_relaxed);
      } else {
        lane.prof.cache_miss_cells += cells_per_method;
        hb_miss_cells.fetch_add(cells_per_method,
                                std::memory_order_relaxed);
      }

      // Verify on an intact, fully cached method has nothing to write;
      // skipping the save keeps repeated verify runs read-only.
      const bool verify_dirty =
          mode == cache::CacheMode::Verify &&
          (!verify_clean || p.cached_cells != cells_per_method);
      if (mode == cache::CacheMode::ReadWrite || verify_dirty) {
        // Upsert this sweep's cells into the record, preserving cells
        // other sweep contexts (configs, schedulers, tick budgets) put
        // there. Verify mode repairs mismatching entries by the same
        // path, since fresh values overwrite matching keys.
        cache::MethodRecord next;
        next.fingerprint = cache::record_fingerprint();
        next.method_name = m.name;
        if (p.have_record) next.cells = p.record.cells;
        for (std::size_t ci = 0; ci < sweep.configs.size(); ++ci) {
          for (std::size_t si = 0; si < n_scenarios; ++si) {
            const SweepSample& fresh = out[ci * n_scenarios + si];
            cache::CellRecord cell;
            cell.key = cache::cell_key(body_hash[pi], pool_hash,
                                       config_hash[ci], engine_hash,
                                       options.scenarios[si]);
            cell.static_insts = fresh.static_insts;
            cell.back_jumps = fresh.back_jumps;
            cell.metrics = fresh.metrics;
            bool replaced = false;
            for (cache::CellRecord& existing : next.cells) {
              if (existing.key == cell.key) {
                existing = cell;
                replaced = true;
                break;
              }
            }
            if (!replaced) next.cells.push_back(cell);
          }
        }
        if (store->save(cache::record_key(body_hash[pi], pool_hash),
                        next)) {
          ++lane.stored_records;
        }
      }
      lap(lane.prof.cache_s);
    }
    ++lane.prof.methods;
    lane.prof.cells += cells_per_method;
    pre[wi].reset();
    heartbeat();
  };

  const unsigned threads = util::ThreadPool::resolve_clamped(
      options.threads, options.allow_oversubscribe);
  std::vector<std::unique_ptr<LaneState>> lanes;
  if (threads <= 1 || work.size() <= 1) {
    lanes.push_back(make_lane());
    for (std::size_t wi = 0; wi < work.size(); ++wi) {
      prepare_method(wi, *lanes[0]);
    }
    for (std::size_t wi = 0; wi < work.size(); ++wi) {
      run_method(wi, *lanes[0]);
    }
  } else {
    util::ThreadPool workers(threads);
    // Per-lane state: lanes never share an Engine (each holds a mutable
    // scratch workspace), and engines persist across the lane's methods
    // so allocation reuse still pays off. The pool barrier between the
    // two parallel_for calls publishes every phase-A Precomp (plans
    // included) before any phase-B lane reads one — an item may land on
    // a different lane in each phase, and phase B only ever reads the
    // shared plans.
    lanes.resize(workers.size());
    workers.parallel_for(work.size(), [&](std::size_t wi, unsigned lane) {
      if (lanes[lane] == nullptr) lanes[lane] = make_lane();
      prepare_method(wi, *lanes[lane]);
    });
    workers.parallel_for(work.size(), [&](std::size_t wi, unsigned lane) {
      if (lanes[lane] == nullptr) lanes[lane] = make_lane();
      run_method(wi, *lanes[lane]);
    });
  }

  for (const std::unique_ptr<LaneState>& lane : lanes) {
    if (lane == nullptr) {
      sweep.profile.lanes.emplace_back();
      continue;
    }
    sweep.profile.lanes.push_back(lane->prof);
    sweep.cache.stored_records += lane->stored_records;
    sweep.cache.verify_mismatch_cells += lane->verify_mismatch_cells;
    if (options.collect_metrics) sweep.metrics.merge(lane->metrics);
  }

  // Dedup fill: duplicates copy their leader's cells and re-stamp the
  // name-dependent sample fields. Serial, in pick order — the output is
  // byte-identical to simulating every duplicate.
  util::Interner dedup_intern;
  for (std::size_t pi = 0; pi < picks.size(); ++pi) {
    if (leader_of[pi] == pi) continue;
    const bytecode::Method& m = *methods[picks[pi]];
    const bool is_hot = hot.contains(m.name);
    const std::size_t src = leader_of[pi] * cells_per_method;
    const std::size_t dst = pi * cells_per_method;
    const util::InternedString& mname = dedup_intern.get(m.name);
    const util::InternedString& bname = dedup_intern.get(m.benchmark);
    for (std::size_t c = 0; c < cells_per_method; ++c) {
      SweepSample& sample = sweep.samples[dst + c];
      sample = sweep.samples[src + c];
      sample.method = mname;
      sample.benchmark = bname;
      sample.is_hot = is_hot;
      // Attribution is name-independent, so a duplicate's vector is its
      // leader's vector, exactly.
      if (options.attribution) {
        sweep.attribution[dst + c] = sweep.attribution[src + c];
      }
    }
    sweep.profile.lanes[0].dedup_cells += cells_per_method;
    sweep.profile.lanes[0].cells += cells_per_method;
  }

  const SweepProfile::Lane lane_total = sweep.profile.total();
  sweep.cache.hit_cells = lane_total.cache_hit_cells;
  sweep.cache.miss_cells = lane_total.cache_miss_cells;
  sweep.cache.dedup_cells = lane_total.dedup_cells;

  sweep.profile.wall_s =
      std::chrono::duration<double>(Clock::now() - sweep_t0).count();

  for (LintReport& r : lint_reports) {
    sweep.lint_errors += r.errors;
    sweep.lint_warnings += r.warnings;
    sweep.lint_findings.insert(sweep.lint_findings.end(),
                               std::make_move_iterator(r.findings.begin()),
                               std::make_move_iterator(r.findings.end()));
  }
  return sweep;
}

namespace {

bool usable(const SweepSample& s) {
  return s.metrics.fits && s.metrics.completed && !s.metrics.timed_out;
}

// Key identifying a (method, scenario) pair for Baseline normalization.
using RunKey = std::pair<std::string, int>;

std::map<RunKey, double> baseline_ipc(const Sweep& sweep) {
  std::map<RunKey, double> base;
  for (const SweepSample& s : sweep.samples) {
    if (s.config_index != 0 || !usable(s)) continue;
    base[{s.method, static_cast<int>(s.scenario)}] = s.metrics.ipc();
  }
  return base;
}

}  // namespace

std::vector<IpcRow> ipc_rows(const Sweep& sweep, Filter filter) {
  std::vector<std::vector<double>> per_config(sweep.configs.size());
  for (const SweepSample& s : sweep.samples) {
    if (!usable(s) ||
        !filter_accepts(filter, static_cast<std::size_t>(s.static_insts),
                        s.is_hot)) {
      continue;
    }
    per_config[s.config_index].push_back(s.metrics.ipc());
  }
  std::vector<IpcRow> rows;
  for (std::size_t ci = 0; ci < sweep.configs.size(); ++ci) {
    rows.push_back({sweep.configs[ci].name,
                    summarize(std::move(per_config[ci]))});
  }
  return rows;
}

std::vector<FomRow> fom_rows(const Sweep& sweep, Filter filter) {
  const auto base = baseline_ipc(sweep);
  std::vector<std::vector<double>> fm(sweep.configs.size());
  std::vector<std::vector<double>> ipc(sweep.configs.size());
  for (const SweepSample& s : sweep.samples) {
    if (!usable(s) ||
        !filter_accepts(filter, static_cast<std::size_t>(s.static_insts),
                        s.is_hot)) {
      continue;
    }
    ipc[s.config_index].push_back(s.metrics.ipc());
    const auto it = base.find({s.method, static_cast<int>(s.scenario)});
    if (it == base.end() || it->second <= 0.0) continue;
    fm[s.config_index].push_back(s.metrics.ipc() / it->second);
  }
  std::vector<FomRow> rows;
  for (std::size_t ci = 0; ci < sweep.configs.size(); ++ci) {
    const Summary si = summarize(ipc[ci]);
    const Summary sf = summarize(fm[ci]);
    FomRow row;
    row.config = sweep.configs[ci].name;
    row.ipc_mean = si.mean;
    row.ipc_median = si.median;
    row.fm_mean = sf.mean;
    row.fm_std = sf.std_dev;
    row.samples = sf.n;
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<CorrelationRow> hetero_fom_correlations(const Sweep& sweep) {
  const auto base = baseline_ipc(sweep);
  // Hetero is the last Table 15 configuration.
  const std::size_t hetero = sweep.configs.size() - 1;
  std::vector<double> fm, total_i, executed_i, max_node, back_jumps;
  for (const SweepSample& s : sweep.samples) {
    if (s.config_index != hetero || !usable(s)) continue;
    const auto it = base.find({s.method, static_cast<int>(s.scenario)});
    if (it == base.end() || it->second <= 0.0) continue;
    fm.push_back(s.metrics.ipc() / it->second);
    total_i.push_back(s.static_insts);
    executed_i.push_back(static_cast<double>(s.metrics.distinct_fired));
    max_node.push_back(static_cast<double>(s.metrics.max_slot));
    back_jumps.push_back(s.back_jumps);
  }
  return {
      {"Total I", correlation(fm, total_i)},
      {"Executed I", correlation(fm, executed_i)},
      {"Max Node", correlation(fm, max_node)},
      {"Back Jumps", correlation(fm, back_jumps)},
  };
}

std::vector<CoverageRow> coverage_rows(const Sweep& sweep) {
  std::map<int, std::vector<double>> per_scenario;
  for (const SweepSample& s : sweep.samples) {
    if (!usable(s)) continue;
    per_scenario[static_cast<int>(s.scenario)].push_back(
        s.metrics.coverage());
  }
  std::vector<CoverageRow> rows;
  for (const auto& [scenario, values] : per_scenario) {
    CoverageRow row;
    row.scenario = scenario == 0 ? "BP-1" : (scenario == 1 ? "BP-2" : "Trace");
    row.mean_coverage = summarize(values).mean;
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<NodeRatioRow> node_ratio_rows(const Sweep& sweep,
                                          Filter filter) {
  std::vector<std::vector<double>> per_config(sweep.configs.size());
  for (const SweepSample& s : sweep.samples) {
    if (!s.metrics.fits ||
        !filter_accepts(filter, static_cast<std::size_t>(s.static_insts),
                        s.is_hot)) {
      continue;
    }
    if (s.scenario != sim::BranchPredictor::Scenario::BP1) continue;
    per_config[s.config_index].push_back(
        s.metrics.nodes_per_instruction());
  }
  std::vector<NodeRatioRow> rows;
  for (std::size_t ci = 0; ci < sweep.configs.size(); ++ci) {
    rows.push_back({sweep.configs[ci].name,
                    summarize(std::move(per_config[ci]))});
  }
  return rows;
}

std::vector<ParallelismRow> parallelism_rows(const Sweep& sweep) {
  std::vector<std::vector<double>> per_config(sweep.configs.size());
  for (const SweepSample& s : sweep.samples) {
    if (!usable(s)) continue;
    per_config[s.config_index].push_back(s.metrics.parallel_2plus());
  }
  std::vector<ParallelismRow> rows;
  for (std::size_t ci = 0; ci < sweep.configs.size(); ++ci) {
    rows.push_back({sweep.configs[ci].name,
                    summarize(std::move(per_config[ci])).mean});
  }
  return rows;
}

std::vector<NetworkRow> network_rows(const Sweep& sweep) {
  std::vector<NetworkRow> rows(sweep.configs.size());
  for (std::size_t ci = 0; ci < sweep.configs.size(); ++ci) {
    rows[ci].config = sweep.configs[ci].name;
  }
  std::vector<double> exec1(sweep.configs.size(), 0.0);
  std::vector<double> exec2(sweep.configs.size(), 0.0);
  for (const SweepSample& s : sweep.samples) {
    if (!usable(s)) continue;
    NetworkRow& row = rows[s.config_index];
    ++row.samples;
    row.total_mesh_messages +=
        static_cast<std::uint64_t>(s.metrics.mesh_messages);
    row.total_serial_messages +=
        static_cast<std::uint64_t>(s.metrics.serial_messages);
    exec1[s.config_index] +=
        static_cast<double>(s.metrics.ticks_exec_1plus);
    exec2[s.config_index] +=
        static_cast<double>(s.metrics.ticks_exec_2plus);
  }
  for (std::size_t ci = 0; ci < rows.size(); ++ci) {
    NetworkRow& row = rows[ci];
    if (row.samples == 0) continue;
    const auto n = static_cast<double>(row.samples);
    row.mean_mesh_messages =
        static_cast<double>(row.total_mesh_messages) / n;
    row.mean_serial_messages =
        static_cast<double>(row.total_serial_messages) / n;
    row.mean_ticks_exec_1plus = exec1[ci] / n;
    row.mean_ticks_exec_2plus = exec2[ci] / n;
  }
  return rows;
}

std::vector<AttributionRow> attribution_rows(const Sweep& sweep) {
  std::vector<AttributionRow> rows(sweep.configs.size());
  for (std::size_t ci = 0; ci < sweep.configs.size(); ++ci) {
    rows[ci].config = sweep.configs[ci].name;
  }
  if (sweep.attribution.size() != sweep.samples.size()) return rows;
  for (std::size_t i = 0; i < sweep.samples.size(); ++i) {
    const SweepSample& s = sweep.samples[i];
    const CellAttribution& cell = sweep.attribution[i];
    if (!usable(s) || !cell.valid) continue;
    AttributionRow& row = rows[s.config_index];
    ++row.samples;
    row.total_ticks += s.metrics.ticks;
    for (std::size_t c = 0; c < obs::kNumPathCategories; ++c) {
      row.category_ticks[c] += cell.category_ticks[c];
    }
  }
  return rows;
}

std::vector<MethodFomRow> per_method_fom(
    const Sweep& sweep, const std::vector<std::string>& methods) {
  const auto base = baseline_ipc(sweep);
  std::vector<MethodFomRow> rows;
  for (const std::string& name : methods) {
    MethodFomRow row;
    row.method = name;
    row.fm.assign(sweep.configs.size(), 0.0);
    std::vector<int> counts(sweep.configs.size(), 0);
    for (const SweepSample& s : sweep.samples) {
      if (s.method != name || !usable(s)) continue;
      row.benchmark = s.benchmark;
      row.total_insts = s.static_insts;
      if (sweep.configs[s.config_index].layout ==
          fabric::LayoutKind::Heterogeneous) {
        row.hetero_nodes = s.metrics.max_slot + 1;
      }
      const auto it = base.find({s.method, static_cast<int>(s.scenario)});
      if (it == base.end() || it->second <= 0.0) continue;
      row.fm[s.config_index] += s.metrics.ipc() / it->second;
      ++counts[s.config_index];
    }
    for (std::size_t ci = 0; ci < row.fm.size(); ++ci) {
      if (counts[ci] > 0) row.fm[ci] /= counts[ci];
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace javaflow::analysis
