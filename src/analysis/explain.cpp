#include "analysis/explain.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <ostream>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "analysis/bounds.hpp"
#include "bytecode/opcode.hpp"
#include "fabric/dataflow_graph.hpp"
#include "fabric/fabric.hpp"
#include "fabric/loader.hpp"

namespace javaflow::analysis {

namespace {

std::string_view scenario_display_name(
    sim::BranchPredictor::Scenario s) noexcept {
  switch (s) {
    case sim::BranchPredictor::Scenario::BP1:
      return "BP-1";
    case sim::BranchPredictor::Scenario::BP2:
      return "BP-2";
    case sim::BranchPredictor::Scenario::Trace:
      return "Trace";
  }
  return "?";
}

}  // namespace

Explanation explain_method(const bytecode::Method& m,
                           const bytecode::ConstantPool& pool,
                           const sim::MachineConfig& config,
                           sim::BranchPredictor::Scenario scenario) {
  Explanation ex;
  ex.method = m.name;
  ex.config = config.name;
  ex.scenario = std::string(scenario_display_name(scenario));

  const fabric::DataflowGraph graph = fabric::build_dataflow_graph(m, pool);
  const fabric::Fabric fab(config.fabric_options());
  const fabric::Placement placement = fabric::load_method(fab, m);
  // One lowered image feeds everything below: the engine run, the mesh
  // link decomposition of the attribution, and the static lower bound
  // (docs/PERF.md "Execution plans"). JAVAFLOW_PLAN=off drops the run
  // and the link decomposition back to the legacy graph/mesh walks for
  // triage; the outputs are bit-identical either way.
  const bool use_plan =
      sim::resolve_plan_mode(sim::PlanMode::Auto) == sim::PlanMode::On;
  sim::ExecPlanBuilder plan_builder;
  const sim::ExecPlan plan =
      plan_builder.build(m, graph, &placement, config);

  obs::FlightRecorder flight;
  sim::EngineOptions engine_options;
  engine_options.flight = &flight;
  sim::Engine engine(config, engine_options);
  sim::BranchPredictor predictor(scenario);
  ex.metrics = use_plan ? engine.run(m, plan, predictor)
                        : engine.run(m, graph, placement, predictor);

  if (!ex.metrics.fits) {
    ex.error = "method does not fit on " + config.name;
    return ex;
  }
  if (ex.metrics.timed_out) {
    ex.error = "method timed out (tick budget exceeded)";
    return ex;
  }
  if (!ex.metrics.completed) {
    ex.error = "method did not complete";
    return ex;
  }

  obs::AttributeOptions ao;
  ao.mesh_width = config.width;
  ao.collapsed = config.collapsed();
  ao.detail = true;
  if (use_plan) ao.plan = &plan;
  ex.attribution = obs::attribute(flight, ao);
  if (!ex.attribution.valid) {
    ex.error = "attribution chain did not validate";
    return ex;
  }
  if (ex.attribution.ticks != ex.metrics.ticks) {
    ex.error = "attributed ticks disagree with RunMetrics.ticks";
    return ex;
  }

  const MethodBounds bounds = compute_bounds(m, plan);
  if (bounds.valid && bounds.lower_bound_ticks < kNoBound) {
    ex.lower_bound_ticks = bounds.lower_bound_ticks;
  }
  ex.ok = true;
  return ex;
}

void write_explanation_text(std::ostream& os, const Explanation& ex,
                            const std::vector<std::string>& labels,
                            std::size_t max_steps) {
  char buf[256];
  os << ex.method << " on " << ex.config << " (" << ex.scenario << ")";
  if (!ex.ok) {
    os << ": " << ex.error << "\n";
    return;
  }
  std::snprintf(buf, sizeof buf,
                ": completed, %" PRId64 " ticks, %" PRId64 " firings\n",
                ex.metrics.ticks, ex.metrics.instructions_fired);
  os << buf;

  if (ex.lower_bound_ticks >= 0) {
    const std::int64_t slack = ex.metrics.ticks - ex.lower_bound_ticks;
    std::snprintf(buf, sizeof buf,
                  "static lower bound: %" PRId64 " ticks (slack %" PRId64
                  ", %.1f%% above bound)\n",
                  ex.lower_bound_ticks, slack,
                  ex.lower_bound_ticks > 0
                      ? 100.0 * static_cast<double>(slack) /
                            static_cast<double>(ex.lower_bound_ticks)
                      : 0.0);
    os << buf;
  } else {
    os << "static lower bound: (none proven)\n";
  }

  os << "attribution (categories sum to ticks):\n";
  for (std::size_t c = 0; c < obs::kNumPathCategories; ++c) {
    const std::int64_t v = ex.attribution.category_ticks[c];
    std::snprintf(
        buf, sizeof buf, "  %-14s %10" PRId64 "  %5.1f%%\n",
        std::string(obs::path_category_name(
                        static_cast<obs::PathCategory>(c)))
            .c_str(),
        v,
        ex.metrics.ticks > 0 ? 100.0 * static_cast<double>(v) /
                                   static_cast<double>(ex.metrics.ticks)
                             : 0.0);
    os << buf;
  }

  auto node_name = [&](std::int32_t node) -> std::string {
    if (node < 0) return "(gpp)";
    const auto u = static_cast<std::size_t>(node);
    if (u < labels.size()) return labels[u];
    return std::to_string(node);
  };

  const std::vector<obs::PathStep>& steps = ex.attribution.steps;
  os << "critical path (" << steps.size() << " hops, injection first";
  if (max_steps != 0 && steps.size() > max_steps) {
    os << ", showing slowest " << max_steps;
  }
  os << "):\n";
  // Pick the slowest hops but keep execution order: collect indices of
  // the `max_steps` largest segments, then print them ascending.
  std::vector<std::size_t> order(steps.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  if (max_steps != 0 && steps.size() > max_steps) {
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return steps[a].ticks() > steps[b].ticks();
                     });
    order.resize(max_steps);
    std::sort(order.begin(), order.end());
  }
  for (const std::size_t i : order) {
    const obs::PathStep& s = steps[i];
    std::snprintf(buf, sizeof buf, "  [%8" PRId64 " .. %8" PRId64
                  "] %6" PRId64 "  %-14s ",
                  s.from_tick, s.to_tick, s.ticks(),
                  std::string(obs::path_category_name(s.category)).c_str());
    os << buf << node_name(s.node);
    if (s.category == obs::PathCategory::Execution) {
      os << " ("
         << bytecode::op_name(static_cast<bytecode::Op>(s.opcode)) << ")";
    }
    if (s.from_phys >= 0 && s.to_phys >= 0) {
      os << " phys " << s.from_phys << "->" << s.to_phys;
    }
    os << "\n";
  }

  if (!ex.attribution.node_ticks.empty()) {
    // Top nodes by on-path ticks (slack concentrators).
    std::vector<std::pair<std::int64_t, std::int32_t>> top;
    for (const auto& [node, ticks] : ex.attribution.node_ticks) {
      top.emplace_back(ticks, node);
    }
    std::sort(top.begin(), top.end(), [](const auto& a, const auto& b) {
      return a.first != b.first ? a.first > b.first : a.second < b.second;
    });
    if (top.size() > 8) top.resize(8);
    os << "hottest on-path nodes:\n";
    for (const auto& [ticks, node] : top) {
      std::snprintf(buf, sizeof buf, "  %10" PRId64 "  ", ticks);
      os << buf << node_name(node) << "\n";
    }
  }
}

obs::Snapshot build_snapshot(const workloads::Corpus& corpus,
                             const SnapshotBuildOptions& options) {
  std::vector<const bytecode::Method*> methods;
  for (const bytecode::Method& m : corpus.program.methods) {
    methods.push_back(&m);
  }
  std::vector<std::string> hot;
  for (std::size_t i = 0;
       i < corpus.kernel_methods && i < corpus.program.methods.size();
       ++i) {
    hot.push_back(corpus.program.methods[i].name);
  }

  SweepOptions sweep_options;
  sweep_options.configs = options.configs;
  sweep_options.scenarios = options.scenarios;
  sweep_options.stride = options.stride;
  sweep_options.threads = options.threads;
  sweep_options.allow_oversubscribe = options.allow_oversubscribe;
  sweep_options.heartbeat = options.heartbeat;
  sweep_options.attribution = true;
  sweep_options.cache = cache::CacheMode::Off;  // instrumented mode
  const Sweep sweep =
      run_sweep(methods, corpus.program.pool, hot, sweep_options);

  obs::Snapshot snap;
  snap.scheduler = sweep.scheduler;
  snap.stride = options.stride;
  for (const sim::MachineConfig& cfg : sweep.configs) {
    snap.config_names.push_back(cfg.name);
    snap.config_texts.push_back(cfg.canonical_text());
  }

  // Static lower bounds, computed once per (method body, config) — the
  // bound is name-independent, exactly like the attribution, so dedup
  // duplicates share their leader's value via the method-name map below.
  std::unordered_map<std::string, const bytecode::Method*> by_name;
  for (const bytecode::Method& m : corpus.program.methods) {
    by_name.emplace(m.name, &m);
  }
  std::vector<fabric::Fabric> fabrics;
  fabrics.reserve(sweep.configs.size());
  for (const sim::MachineConfig& cfg : sweep.configs) {
    fabrics.emplace_back(cfg.fabric_options());
  }
  // (method name, config) -> lower bound; filled lazily per sample.
  std::map<std::pair<std::string, std::size_t>, std::int64_t> bound_memo;

  snap.cells.reserve(sweep.samples.size());
  for (std::size_t i = 0; i < sweep.samples.size(); ++i) {
    const SweepSample& s = sweep.samples[i];
    obs::SnapshotCell cell;
    cell.method = s.method;
    cell.config_index = static_cast<std::int32_t>(s.config_index);
    cell.scenario = static_cast<std::uint8_t>(s.scenario);
    cell.fits = s.metrics.fits;
    cell.completed = s.metrics.completed;
    cell.timed_out = s.metrics.timed_out;
    cell.exception = s.metrics.exception;
    cell.ticks = s.metrics.ticks;
    if (i < sweep.attribution.size() && sweep.attribution[i].valid) {
      cell.attributed = true;
      cell.category_ticks = sweep.attribution[i].category_ticks;
    }
    if (cell.fits && cell.completed && !cell.timed_out) {
      const std::pair<std::string, std::size_t> key(s.method,
                                                    s.config_index);
      auto it = bound_memo.find(key);
      if (it == bound_memo.end()) {
        std::int64_t bound = -1;
        const auto mit = by_name.find(s.method);
        if (mit != by_name.end()) {
          const bytecode::Method& m = *mit->second;
          const fabric::DataflowGraph graph =
              fabric::build_dataflow_graph(m, corpus.program.pool);
          const fabric::Placement placement =
              fabric::load_method(fabrics[s.config_index], m);
          const MethodBounds bounds =
              compute_bounds(m, graph, fabrics[s.config_index], placement,
                             sweep.configs[s.config_index]);
          if (bounds.valid && bounds.lower_bound_ticks < kNoBound) {
            bound = bounds.lower_bound_ticks;
          }
        }
        it = bound_memo.emplace(key, bound).first;
      }
      cell.lower_bound = it->second;
    }
    snap.cells.push_back(std::move(cell));
  }
  return snap;
}

}  // namespace javaflow::analysis
