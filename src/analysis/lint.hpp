// Fabric lint — static verification of resolved dataflow graphs,
// placements and token ordering.
//
// The ByteCode verifier enforces the paper's §3.6 structural restrictions
// on the *input* program; nothing before this pass checked the *outputs*
// of address resolution and loading — the producer/consumer edges, fabric
// slot assignments and serial-token legality the execution engine simply
// assumes. Each rule below is a machine invariant with a paper citation
// (see docs/LINT.md for the full catalogue):
//
//   JF-E001 dangling-edge       §6.2  every need is captured by exactly
//                                     the resolved producers; no edge may
//                                     reference a nonexistent operand
//   JF-E002 inconsistent-edge   §4.2  the per-producer consumer arrays
//                                     must agree with the edge list
//   JF-E003 operand-mismatch    §3.6  pop/push counts and operand types
//                                     match the opcode signature
//   JF-E004 untokenized-cycle   §6.3  a dataflow cycle is only legal when
//                                     the serial token bundle re-arms it
//   JF-E005 capacity-overflow   §2.1  per-node buffering bounds max_stack
//   JF-E006 fanout-overflow     §4.2  consumer-address arrays are finite
//   JF-E007 unplaced-node       §6.2  every reachable instruction holds a
//                                     type-compatible fabric slot
//   JF-W101 back-edge           §5.4  valid Java yields no back merges
//   JF-W102 unreachable-code    §3.6  dead instructions waste fabric slots
//
// PR 7 adds the bound/model-check rules (see docs/ANALYSIS.md):
//
//   JF-E008 bound-overflow      §2.1  a node provably needs more operand
//                                     buffering than one node provides
//   JF-E009 token-deadlock      §6.3  the abstract token-flow model
//                                     checker found a reachable stuck state
//   JF-E010 bound-violation     §6.1  measured engine metrics contradict a
//                                     proven static bound (cross-check)
//   JF-W103 bound-unproven      §2.1  static upper bound exceeds capacity
//                                     (possible overflow, not proven)
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "bytecode/method.hpp"
#include "bytecode/verifier.hpp"
#include "fabric/dataflow_graph.hpp"
#include "fabric/fabric.hpp"
#include "fabric/loader.hpp"
#include "sim/config.hpp"

namespace javaflow::analysis {

enum class LintSeverity : std::uint8_t { Warning, Error };
std::string_view lint_severity_name(LintSeverity s) noexcept;

enum class LintRule : std::uint8_t {
  DanglingEdge,      // JF-E001
  InconsistentEdge,  // JF-E002
  OperandMismatch,   // JF-E003
  UntokenizedCycle,  // JF-E004
  CapacityOverflow,  // JF-E005
  FanoutOverflow,    // JF-E006
  UnplacedNode,        // JF-E007
  BackEdge,            // JF-W101
  UnreachableCode,     // JF-W102
  BufferBoundOverflow, // JF-E008
  TokenDeadlock,       // JF-E009
  BoundViolation,      // JF-E010
  BoundUnproven,       // JF-W103
};

std::string_view lint_rule_id(LintRule r) noexcept;    // "JF-E001"
std::string_view lint_rule_name(LintRule r) noexcept;  // "dangling-edge"
LintSeverity lint_rule_severity(LintRule r) noexcept;

// One structured diagnostic. `pc` is the linear instruction address the
// finding anchors to (-1 = method-level); `slot` the fabric chain slot
// for placement findings (-1 = not placement-related).
struct LintFinding {
  LintRule rule = LintRule::DanglingEdge;
  LintSeverity severity = LintSeverity::Error;
  std::string method;
  std::int32_t pc = -1;
  std::int32_t slot = -1;
  std::string message;

  bool operator==(const LintFinding&) const = default;
};

struct LintOptions {
  // Per-node operand buffering (§2.1): the machine decides whether a
  // method fits the fabric by comparing max_stack against what one node
  // can buffer — control nodes hold the whole serial token bundle (§6.3),
  // which grows with the operand population in flight. The 1605-method
  // corpus peaks at max_stack 8.
  std::int32_t node_buffer_capacity = 16;
  // Consumer-address array size per node (§4.2 targetDataFlowAddresses).
  // Table 10 measures corpus fan-out at <= 4 without optimization.
  std::int32_t mesh_fanout_limit = 16;
  // JF-E003 operand typing from VerifyResult::entry_stack.
  bool check_types = true;
  // Emit the warning-severity rules (JF-W101/JF-W102).
  bool warnings = true;
};

struct LintReport {
  std::vector<LintFinding> findings;
  std::int32_t errors = 0;
  std::int32_t warnings = 0;
  std::size_t methods_linted = 0;
  std::size_t placements_linted = 0;

  bool clean() const noexcept { return errors == 0; }
  bool has(LintRule r) const;
  void add(LintRule rule, std::string method, std::int32_t pc,
           std::int32_t slot, std::string message);
  void merge(LintReport&& other);
};

// ---- pass entry points ---------------------------------------------------
//
// The layered entry points mirror how artifacts become available: graph
// rules need only (method, verify result, graph); placement rules add a
// fabric + placement. `lint_method` composes the whole pipeline and
// `lint_corpus` fans it out over every method of a program.

// Graph-level rules: JF-E001..JF-E006, JF-W101, JF-W102. `vr` must be the
// verify result for `m` (lint reuses its entry_depth/entry_stack for
// reachability and operand typing).
void lint_graph(const bytecode::Method& m, const bytecode::ConstantPool& pool,
                const bytecode::VerifyResult& vr,
                const fabric::DataflowGraph& graph, const LintOptions& options,
                LintReport& out);

// Placement-level rules: JF-E007 (budget misses, unassigned or duplicated
// slots, node-type incompatibilities).
void lint_placement(const bytecode::Method& m, const fabric::Fabric& fabric,
                    const fabric::Placement& placement,
                    const bytecode::VerifyResult& vr,
                    const LintOptions& options, LintReport& out);

// Verifies `m`, builds its dataflow graph, loads it onto a fabric built
// from `config`, and runs every rule. A verification failure is itself
// reported as a JF-E003 finding (the machine must never load such code).
LintReport lint_method(const bytecode::Method& m,
                       const bytecode::ConstantPool& pool,
                       const sim::MachineConfig& config,
                       const LintOptions& options = {});

// Lints every method of `program`: graph rules once per method, placement
// rules once per (method, config). `threads` follows SweepOptions
// semantics (1 = inline, 0 = hardware concurrency, n = exactly n); the
// report's finding order is deterministic for every thread count.
LintReport lint_corpus(const bytecode::Program& program,
                       const std::vector<sim::MachineConfig>& configs,
                       const LintOptions& options = {}, int threads = 1);

// ---- rendering -----------------------------------------------------------

// One finding per line: "error JF-E001 [dangling-edge] Method @pc: ...".
std::string to_text(const LintReport& report);
// The trailing line of to_text: totals plus per-rule finding counts in
// rule-id order ("... 2 errors, 1 warning [JF-E001 x2, JF-W102 x1]").
std::string to_summary(const LintReport& report);
// Machine-readable: {"errors":N,"warnings":N,"findings":[{...},...]}.
std::string to_json(const LintReport& report);
// Same, plus a "configs" array of MachineConfig::canonical_text() strings
// and a "rules" per-rule count object, so reports are self-describing.
std::string to_json(const LintReport& report,
                    const std::vector<sim::MachineConfig>& configs);

}  // namespace javaflow::analysis
