#include "analysis/trace.hpp"

namespace javaflow::analysis {

TraceCollector::TraceCollector(jvm::Interpreter& vm) : vm_(&vm) {
  vm.set_branch_hook([this](const bytecode::Method& m, std::int32_t pc,
                            std::int32_t next) {
    events_[m.name].push_back(Event{pc, next});
  });
}

TraceCollector::~TraceCollector() { detach(); }

void TraceCollector::detach() {
  if (vm_ != nullptr) {
    vm_->set_branch_hook(nullptr);
    vm_ = nullptr;
  }
}

std::size_t TraceCollector::events_for(const std::string& method) const {
  auto it = events_.find(method);
  return it == events_.end() ? 0 : it->second.size();
}

sim::BranchPredictor TraceCollector::predictor_for(
    const bytecode::Method& m) const {
  sim::BranchPredictor predictor(sim::BranchPredictor::Scenario::Trace);
  auto it = events_.find(m.name);
  if (it == events_.end()) return predictor;
  for (const Event& e : it->second) {
    const bytecode::Instruction& inst =
        m.code[static_cast<std::size_t>(e.pc)];
    if (inst.op == bytecode::Op::tableswitch ||
        inst.op == bytecode::Op::lookupswitch) {
      const bytecode::SwitchTable& t =
          m.switches[static_cast<std::size_t>(inst.operand)];
      std::int32_t arm = static_cast<std::int32_t>(t.targets.size());
      for (std::size_t k = 0; k < t.targets.size(); ++k) {
        if (t.targets[k] == e.next) {
          arm = static_cast<std::int32_t>(k);
          break;
        }
      }
      predictor.feed_switch_trace(e.pc, arm);
      continue;
    }
    if (inst.op == bytecode::Op::goto_ || inst.op == bytecode::Op::goto_w) {
      continue;  // unconditional: nothing to predict
    }
    predictor.feed_trace(e.pc, e.next == inst.target);
  }
  return predictor;
}

}  // namespace javaflow::analysis
