// Plain-text table rendering for the bench harnesses: each bench prints
// the paper's rows next to the reproduction's measurements.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "analysis/figure_of_merit.hpp"

namespace javaflow::analysis {

class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  Table& columns(std::vector<std::string> names);
  Table& row(std::vector<std::string> cells);

  // Convenience cell formatters.
  static std::string num(double v, int decimals = 2);
  static std::string pct(double fraction, int decimals = 0);  // 0.47 -> 47%
  static std::string big(std::uint64_t v);  // thousands separators

  void print(std::ostream& os = std::cout) const;

  // Machine-readable export of the same rows (RFC-4180-style quoting),
  // so downstream plotting does not have to scrape the aligned text.
  void write_csv(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

// Section header used between tables in a bench binary's output.
void print_header(const std::string& text, std::ostream& os = std::cout);

// Machine-readable sweep report: per-config aggregates — IPC / FoM plus
// the network-traffic and execution-overlap fields RunMetrics measures
// but the tables never printed (mesh_messages, serial_messages,
// ticks_exec_1plus/2plus) — and the per-phase / per-lane wall-clock
// profile. Emitted as one JSON object; `indent` shifts every line right
// so the report can be embedded in an enclosing document (BENCH_sweep).
void write_sweep_json(std::ostream& os, const Sweep& sweep, int indent = 0);

}  // namespace javaflow::analysis
