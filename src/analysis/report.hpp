// Plain-text table rendering for the bench harnesses: each bench prints
// the paper's rows next to the reproduction's measurements.
#pragma once

#include <iostream>
#include <string>
#include <vector>

namespace javaflow::analysis {

class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  Table& columns(std::vector<std::string> names);
  Table& row(std::vector<std::string> cells);

  // Convenience cell formatters.
  static std::string num(double v, int decimals = 2);
  static std::string pct(double fraction, int decimals = 0);  // 0.47 -> 47%
  static std::string big(std::uint64_t v);  // thousands separators

  void print(std::ostream& os = std::cout) const;

  // Machine-readable export of the same rows (RFC-4180-style quoting),
  // so downstream plotting does not have to scrape the aligned text.
  void write_csv(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

// Section header used between tables in a bench binary's output.
void print_header(const std::string& text, std::ostream& os = std::cout);

}  // namespace javaflow::analysis
