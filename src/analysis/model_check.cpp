#include "analysis/model_check.hpp"

#include <algorithm>
#include <cstring>
#include <sstream>
#include <unordered_set>

#include "bytecode/verifier.hpp"
#include "util/thread_pool.hpp"

namespace javaflow::analysis {
namespace {

using bytecode::Group;
using bytecode::Instruction;
using bytecode::Method;
using bytecode::Op;
using fabric::Edge;

bool is_switch(Op op) {
  return op == Op::tableswitch || op == Op::lookupswitch;
}

bool buffers_tokens(const Instruction& inst) {
  const Group g = inst.group();
  return g == Group::ControlFlow || g == Group::Return || is_switch(inst.op);
}

// Fixed-width bitset over linear addresses.
struct Bits {
  std::vector<std::uint64_t> w;
  explicit Bits(std::size_t n) : w((n + 63) / 64, 0) {}
  bool test(std::size_t i) const { return (w[i / 64] >> (i % 64)) & 1u; }
  void set(std::size_t i) { w[i / 64] |= std::uint64_t{1} << (i % 64); }
  void clear(std::size_t i) { w[i / 64] &= ~(std::uint64_t{1} << (i % 64)); }
  bool operator==(const Bits&) const = default;
};

struct State {
  std::int32_t holder = -1;
  Bits fired;
  Bits visited;
  std::string trace;  // arm decisions taken to reach this state
};

// Static per-method facts the exploration consults.
struct Model {
  const Method& m;
  std::size_t n;
  // Per consumer and side (side-1 indexed): forward producers.
  std::vector<std::vector<std::vector<std::int32_t>>> forward;
  // Per consumer: back-edge producers (token-ordering dependencies —
  // the mesh never delivers these values before the producer's prior
  // firing, so the consumer's wait is satisfiable only afterwards).
  std::vector<std::vector<std::int32_t>> back_deps;
  std::vector<std::int32_t> reg;  // local register touched, -1 otherwise
  // reach_top[h]: the lowest linear address the bundle can ever occupy
  // again once it holds at `h` — the fixpoint of chasing backward
  // control-transfer arms whose source is still reachable. Nodes below
  // it are frozen: never re-visited, never flushed.
  std::vector<std::int32_t> reach_top;
  // Fixed slot numbering for the operand sides, used by the canonical
  // state key: side_at[c] .. side_at[c] + pop(c) - 1 are node c's sides.
  std::vector<std::int32_t> side_at;
  std::int32_t total_sides = 0;

  Model(const Method& method, const fabric::DataflowGraph& graph)
      : m(method), n(method.code.size()) {
    forward.resize(n);
    back_deps.resize(n);
    reg.resize(n);
    side_at.resize(n);
    for (std::size_t v = 0; v < n; ++v) {
      forward[v].resize(m.code[v].pop);
      reg[v] = bytecode::local_register(m.code[v]);
      side_at[v] = total_sides;
      total_sides += m.code[v].pop;
    }
    for (const Edge& e : graph.edges) {
      const auto c = static_cast<std::size_t>(e.consumer);
      if (c >= n) continue;
      if (e.back) {
        back_deps[c].push_back(e.producer);
      } else if (e.side >= 1 && e.side <= m.code[c].pop) {
        forward[c][e.side - 1].push_back(e.producer);
      }
    }

    // Backward control-transfer arms (branch targets, switch arms, and
    // the implicit goto replay) feed the reach_top fixpoint.
    std::vector<std::pair<std::int32_t, std::int32_t>> back_arms;
    for (std::size_t v = 0; v < n; ++v) {
      const Instruction& inst = m.code[v];
      const auto src = static_cast<std::int32_t>(v);
      if (is_switch(inst.op)) {
        const auto& table = m.switches[static_cast<std::size_t>(inst.operand)];
        for (const std::int32_t t : table.targets) {
          if (t <= src) back_arms.emplace_back(src, t);
        }
        if (table.default_target <= src) {
          back_arms.emplace_back(src, table.default_target);
        }
      } else if (inst.group() == Group::ControlFlow && inst.target <= src) {
        back_arms.emplace_back(src, inst.target);
      }
    }
    reach_top.resize(n);
    for (std::size_t h = 0; h < n; ++h) {
      std::int32_t r = static_cast<std::int32_t>(h);
      bool changed = true;
      while (changed) {
        changed = false;
        for (const auto& [src, tgt] : back_arms) {
          if (src >= r && tgt < r) {
            r = tgt;
            changed = true;
          }
        }
      }
      reach_top[h] = r;
    }
  }

  // Serial-token availability, derived from chain order (§6.3): a token
  // reaches `v` once every unfired node above it that holds this token
  // kind has fired.
  bool reg_available(std::int32_t v, std::int32_t r, const State& s) const {
    for (std::int32_t w = 0; w < v; ++w) {
      const auto u = static_cast<std::size_t>(w);
      if (!s.visited.test(u) || s.fired.test(u)) continue;
      if (reg[u] == r) return false;  // unfired reader/writer holds it
    }
    return true;
  }
  bool memory_available(std::int32_t v, const State& s) const {
    for (std::int32_t w = 0; w < v; ++w) {
      const auto u = static_cast<std::size_t>(w);
      if (!s.visited.test(u) || s.fired.test(u)) continue;
      const Group g = m.code[u].group();
      if (g == Group::MemRead || g == Group::MemWrite) return false;
    }
    return true;
  }
  // TAIL reaches the holder only after every other visited node fired
  // (any unfired non-buffering node holds TAIL until it fires).
  bool tail_available(const State& s) const {
    for (std::size_t u = 0; u < n; ++u) {
      if (s.visited.test(u) && !s.fired.test(u) &&
          static_cast<std::int32_t>(u) != s.holder) {
        return false;
      }
    }
    return true;
  }

  // Firing conditions shared by every node class: operand sides served
  // by fired forward producers, token-ordering back-dependencies served
  // by their producers' prior firing.
  bool operands_ready(std::int32_t v, const State& s) const {
    const auto u = static_cast<std::size_t>(v);
    for (const auto& side : forward[u]) {
      bool ok = false;
      for (std::int32_t p : side) {
        if (s.fired.test(static_cast<std::size_t>(p))) {
          ok = true;
          break;
        }
      }
      if (!ok) return false;
    }
    for (std::int32_t p : back_deps[u]) {
      if (!s.fired.test(static_cast<std::size_t>(p))) return false;
    }
    return true;
  }

  bool can_fire(std::int32_t v, const State& s) const {
    if (!operands_ready(v, s)) return false;
    const Group g = m.code[static_cast<std::size_t>(v)].group();
    if (g == Group::LocalRead || g == Group::LocalInc) {
      return reg_available(v, reg[static_cast<std::size_t>(v)], s);
    }
    if (g == Group::MemRead || g == Group::MemWrite) {
      return memory_available(v, s);
    }
    return true;  // LocalWrite absorbs without waiting; others need none
  }
};

// Maximal-progress closure: fire every non-holder node that can. Exact
// for stuck-state detection — within an epoch firing is monotone, so
// the order of closure steps cannot hide a deadlock.
void closure(const Model& md, State& s) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t u = 0; u < md.n; ++u) {
      if (!s.visited.test(u) || s.fired.test(u)) continue;
      const auto v = static_cast<std::int32_t>(u);
      if (v == s.holder) continue;
      if (md.can_fire(v, s)) {
        s.fired.set(u);
        changed = true;
      }
    }
  }
}

// Walks the bundle down the chain from `from`, marking visited nodes,
// until a buffering node takes hold. Returns false if the bundle runs
// off the chain (cannot happen for verified methods).
bool advance(const Model& md, State& s, std::int32_t from) {
  for (std::int32_t v = from; static_cast<std::size_t>(v) < md.n; ++v) {
    s.visited.set(static_cast<std::size_t>(v));
    if (buffers_tokens(md.m.code[static_cast<std::size_t>(v)])) {
      s.holder = v;
      return true;
    }
  }
  return false;
}

// Canonical state key. Below reach_top[holder] the bundle never returns,
// so for those frozen nodes the future can observe only (a) whether the
// node is stuck (visited but unable to fire yet — it still blocks TAIL
// and token availability, and may fire later off a back-dependency), and
// (b) which not-yet-settled operand sides its firings have already
// served. Projecting the dead done-vs-unvisited distinction onto those
// observables merges the exponentially many branch-arm histories of
// loop-free regions into one abstract state; states with equal keys are
// bisimilar, so memoizing on the key is exact.
std::string encode(const Model& md, const State& s) {
  const std::int32_t top = md.reach_top[static_cast<std::size_t>(s.holder)];
  Bits live_visited(md.n);
  Bits live_fired(md.n);
  Bits served(static_cast<std::size_t>(md.total_sides) + md.n);
  for (std::size_t u = 0; u < md.n; ++u) {
    const bool frozen = static_cast<std::int32_t>(u) < top;
    const bool fired = s.fired.test(u);
    if (s.visited.test(u) && (!frozen || !fired)) live_visited.set(u);
    if (fired && !frozen) live_fired.set(u);
    // Frozen-producer serving state, per operand side; one extra bit per
    // node for the all-frozen-back-dependencies-fired conjunction.
    // Settled consumers (fired and frozen) can never pop again, and
    // unvisited frozen consumers can never be visited (every reachable
    // arm target stays at or above reach_top), hence never fire either.
    // Both get their bits forced to zero rather than leaking dead
    // branch-arm history; only frozen *stuck* nodes — which may still
    // fire off a back-dependency — keep their serving state.
    if (frozen && (fired || !s.visited.test(u))) continue;
    const auto& sides = md.forward[u];
    for (std::size_t k = 0; k < sides.size(); ++k) {
      for (const std::int32_t p : sides[k]) {
        if (p < top && s.fired.test(static_cast<std::size_t>(p))) {
          served.set(static_cast<std::size_t>(md.side_at[u]) + k);
          break;
        }
      }
    }
    bool all_frozen_deps = true;
    for (const std::int32_t p : md.back_deps[u]) {
      if (p < top && !s.fired.test(static_cast<std::size_t>(p))) {
        all_frozen_deps = false;
        break;
      }
    }
    if (all_frozen_deps) {
      served.set(static_cast<std::size_t>(md.total_sides) + u);
    }
  }
  std::string key;
  key.reserve(4 + 8 * (live_fired.w.size() + live_visited.w.size() +
                       served.w.size()));
  key.append(reinterpret_cast<const char*>(&s.holder), sizeof(s.holder));
  key.append(reinterpret_cast<const char*>(live_fired.w.data()),
             live_fired.w.size() * 8);
  key.append(reinterpret_cast<const char*>(live_visited.w.data()),
             live_visited.w.size() * 8);
  key.append(reinterpret_cast<const char*>(served.w.data()),
             served.w.size() * 8);
  return key;
}

void note_arm(State& s, std::int32_t from, std::int32_t to, bool backward) {
  if (s.trace.size() > 160) return;  // witness stays readable
  std::ostringstream os;
  os << ' ' << from << "->" << to;
  if (backward) os << "(back)";
  s.trace += os.str();
}

ModelCheckResult explore(const Model& md, const ModelCheckOptions& options) {
  ModelCheckResult result;
  const std::size_t n = md.n;

  State init{-1, Bits(n), Bits(n), {}};
  if (n == 0 || !advance(md, init, 0)) {
    result.verdict = ModelVerdict::Deadlock;
    result.witness = "token bundle runs off the chain";
    return result;
  }
  closure(md, init);

  std::unordered_set<std::string> seen;
  std::vector<State> stack;
  seen.insert(encode(md, init));
  stack.push_back(std::move(init));

  auto stuck = [&](const State& s, const char* why) {
    result.verdict = ModelVerdict::Deadlock;
    result.deadlock_node = s.holder;
    result.witness = why + (s.trace.empty() ? "" : " via" + s.trace);
  };

  std::vector<std::int32_t> arms;
  while (!stack.empty()) {
    if (result.states_explored >= options.max_states) {
      result.verdict = ModelVerdict::Inconclusive;
      return result;
    }
    State s = std::move(stack.back());
    stack.pop_back();
    ++result.states_explored;

    const auto hu = static_cast<std::size_t>(s.holder);
    const Instruction& inst = md.m.code[hu];
    const Group g = inst.group();

    if (!md.operands_ready(s.holder, s)) {
      stuck(s, "holder starves: an operand side can never be served");
      return result;
    }

    if (g == Group::Return) {
      if (!md.tail_available(s)) {
        stuck(s, "Return waits for TAIL held by a node that cannot fire");
        return result;
      }
      continue;  // Done — this path completes
    }

    // Backward goto fires only once TAIL arrives (Engine::fire_ready).
    const bool unconditional = inst.op == Op::goto_ || inst.op == Op::goto_w;
    if (unconditional && inst.target <= s.holder && !md.tail_available(s)) {
      stuck(s, "backward goto waits for TAIL held by a stuck node");
      return result;
    }

    arms.clear();
    if (is_switch(inst.op)) {
      const auto& table =
          md.m.switches[static_cast<std::size_t>(inst.operand)];
      arms.insert(arms.end(), table.targets.begin(), table.targets.end());
      arms.push_back(table.default_target);
    } else {
      arms.push_back(inst.target);
      if (!unconditional) arms.push_back(s.holder + 1);
    }
    std::sort(arms.begin(), arms.end());
    arms.erase(std::unique(arms.begin(), arms.end()), arms.end());

    for (std::int32_t t : arms) {
      if (t < 0 || static_cast<std::size_t>(t) >= n) continue;
      State next = s;
      next.fired.set(hu);
      const bool backward = t <= s.holder;
      note_arm(next, s.holder, t, backward);
      if (backward) {
        // The flush waits for TAIL; every other visited node must be
        // able to fire first, else the loop can never replay.
        closure(md, next);
        bool ok = true;
        for (std::size_t u = 0; u < n; ++u) {
          if (next.visited.test(u) && !next.fired.test(u)) {
            ok = false;
            break;
          }
        }
        if (!ok) {
          next.holder = s.holder;
          stuck(next, "backward flush waits for TAIL held by a stuck node");
          return result;
        }
        // flush_up resets [t .. holder]: state and epoch cleared, the
        // bundle replays from the target.
        for (std::int32_t u = t; u <= s.holder; ++u) {
          next.fired.clear(static_cast<std::size_t>(u));
          next.visited.clear(static_cast<std::size_t>(u));
        }
      }
      if (!advance(md, next, t)) {
        next.holder = -1;
        result.verdict = ModelVerdict::Deadlock;
        result.witness =
            "token bundle runs off the chain" +
            (next.trace.empty() ? "" : " via" + next.trace);
        return result;
      }
      closure(md, next);
      if (seen.insert(encode(md, next)).second) {
        stack.push_back(std::move(next));
      }
    }
  }

  result.verdict = ModelVerdict::Proved;
  return result;
}

}  // namespace

std::string_view model_verdict_name(ModelVerdict v) noexcept {
  switch (v) {
    case ModelVerdict::Proved: return "proved";
    case ModelVerdict::Deadlock: return "deadlock";
    case ModelVerdict::Inconclusive: return "inconclusive";
  }
  return "?";
}

ModelCheckResult model_check(const bytecode::Method& m,
                             const fabric::DataflowGraph& graph,
                             const ModelCheckOptions& options) {
  const Model md(m, graph);
  return explore(md, options);
}

void lint_model_check(const bytecode::Method& m, const ModelCheckResult& r,
                      const LintOptions& options, LintReport& out) {
  switch (r.verdict) {
    case ModelVerdict::Proved:
      break;
    case ModelVerdict::Deadlock:
      out.add(LintRule::TokenDeadlock, m.name, r.deadlock_node, -1,
              "abstract token-flow model reaches a stuck state: " +
                  r.witness);
      break;
    case ModelVerdict::Inconclusive:
      if (options.warnings) {
        std::ostringstream os;
        os << "model checker exhausted " << r.states_explored
           << " abstract states without a deadlock-freedom proof";
        out.add(LintRule::BoundUnproven, m.name, -1, -1, os.str());
      }
      break;
  }
}

LintReport model_check_corpus(const bytecode::Program& program,
                              const ModelCheckOptions& options, int threads) {
  const std::size_t n = program.methods.size();
  std::vector<LintReport> per_method(n);

  auto work = [&](std::size_t mi) {
    const bytecode::Method& m = program.methods[mi];
    LintReport& rep = per_method[mi];
    const bytecode::VerifyResult vr = bytecode::verify(m, program.pool);
    if (!vr.ok) return;  // lint_corpus reports these as JF-E003
    const fabric::DataflowGraph graph =
        fabric::build_dataflow_graph(m, program.pool);
    lint_model_check(m, model_check(m, graph, options), LintOptions{}, rep);
    ++rep.methods_linted;
  };

  const unsigned workers = util::ThreadPool::resolve(threads);
  if (workers <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) work(i);
  } else {
    util::ThreadPool pool(workers);
    pool.parallel_for(n, [&](std::size_t mi, unsigned) { work(mi); });
  }

  LintReport report;
  for (LintReport& r : per_method) report.merge(std::move(r));
  return report;
}

}  // namespace javaflow::analysis
