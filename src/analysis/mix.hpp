// Benchmark mix analyses (paper Chapter 5).
//
// Dynamic analyses consume a Profiler filled by running the workload
// suite under the reference interpreter (the paper's instrumented-JAMVM
// methodology, §5.2); static analyses consume the Program image itself
// (the paper's BCEL/ASM/JAVAP pipeline, §5.3).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "bytecode/method.hpp"
#include "jvm/profiler.hpp"

namespace javaflow::analysis {

// ---- Table 1: method utilization ----
struct MethodUtilizationRow {
  std::string benchmark;
  std::uint64_t total_ops = 0;
  std::size_t methods_used = 0;
  std::size_t methods_for_90pct = 0;
};
std::vector<MethodUtilizationRow> method_utilization(
    const jvm::Profiler& profiler);

// ---- Table 2: dynamic instruction mix of the 90 % methods ----
struct DynamicMixRow {
  std::string benchmark;
  // Fractions by DynamicMixCategory, summing to 1 over executed ops.
  std::array<double, 8> fractions{};
  std::uint64_t total_ops = 0;
};
std::vector<DynamicMixRow> dynamic_mix_of_hot_methods(
    const jvm::Profiler& profiler, double coverage_fraction = 0.9);

// ---- Tables 3-4: top-N methods per benchmark ----
struct TopMethod {
  std::string method;
  std::uint64_t ops = 0;
  double share = 0.0;  // of the benchmark's total ops
};
struct TopMethodsRow {
  std::string benchmark;
  std::uint64_t total_ops = 0;
  std::vector<TopMethod> top;  // descending
  double top_share = 0.0;      // sum of shares of the listed methods
};
std::vector<TopMethodsRow> top_methods(const jvm::Profiler& profiler,
                                       std::size_t n = 4);

// ---- Table 5: impact of _Quick instructions ----
struct QuickImpact {
  std::uint64_t total_ops = 0;
  std::uint64_t storage_base = 0;
  std::uint64_t storage_quick = 0;
  double quick_percentage = 0.0;
};
QuickImpact quick_impact(const jvm::Profiler& profiler);

// ---- Table 6: static mix analysis ----
struct StaticMixRow {
  std::string benchmark;
  double arith = 0.0;
  double fp = 0.0;
  double control = 0.0;
  double storage = 0.0;
  std::uint64_t total_insts = 0;
};
// Per-benchmark rows over the given methods (typically a corpus filtered
// to kernels, matching the paper's "90 % methods" scope), plus a "Total"
// row appended last.
std::vector<StaticMixRow> static_mix(
    const std::vector<const bytecode::Method*>& methods);

}  // namespace javaflow::analysis
