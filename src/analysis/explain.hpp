// "Where do the ticks go" front end (docs/OBSERVABILITY.md).
//
// Two entry points over obs::critpath + obs::snapshot:
//
//   * explain_method — run one (method, config, scenario) cell with the
//     flight recorder attached and return the realized critical path in
//     detail mode, together with the static lower bound from
//     analysis::compute_bounds so the renderer can show per-category
//     attribution and the slack over the provable minimum.
//
//   * build_snapshot — run an attribution sweep over a corpus slice and
//     package every cell (ticks, category vector, lower bound, outcome
//     flags) into an obs::Snapshot for .jfs serialization and diffing.
//
// Both are deterministic: identical inputs produce identical outputs
// (build_snapshot for every thread count — tests/test_critpath.cpp).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "analysis/figure_of_merit.hpp"
#include "obs/critpath.hpp"
#include "obs/snapshot.hpp"
#include "sim/config.hpp"
#include "sim/engine.hpp"
#include "workloads/corpus.hpp"

namespace javaflow::analysis {

struct Explanation {
  bool ok = false;        // fits, completed, and attribution validated
  std::string error;      // human-readable reason when !ok
  std::string method;
  std::string config;
  std::string scenario;
  sim::RunMetrics metrics;
  obs::Attribution attribution;         // detail mode (steps + aggregates)
  std::int64_t lower_bound_ticks = -1;  // static bound; -1 = none proven
};

// Runs one cell with the flight recorder and static bound analyzer.
// Never throws; failures (does not fit, timeout, broken attribution)
// come back as ok=false with `error` set.
Explanation explain_method(const bytecode::Method& m,
                           const bytecode::ConstantPool& pool,
                           const sim::MachineConfig& config,
                           sim::BranchPredictor::Scenario scenario);

// Deterministic text rendering: outcome line, bound + slack, the
// category table, and the critical path capped at `max_steps` hops
// (0 = all). `labels` maps linear addresses to display names (empty =
// numeric addresses only).
void write_explanation_text(std::ostream& os, const Explanation& ex,
                            const std::vector<std::string>& labels,
                            std::size_t max_steps = 40);

struct SnapshotBuildOptions {
  std::vector<sim::MachineConfig> configs;  // empty = table15_configs()
  std::vector<sim::BranchPredictor::Scenario> scenarios = {
      sim::BranchPredictor::Scenario::BP1,
      sim::BranchPredictor::Scenario::BP2};
  int stride = 1;
  int threads = 1;  // SweepOptions semantics (0 = hardware concurrency)
  bool allow_oversubscribe = false;
  bool heartbeat = false;
};

// Runs an attribution sweep (cache forced off — instrumented mode) plus
// per-(method, config) static bounds, and returns the packaged snapshot
// in deterministic sweep order.
obs::Snapshot build_snapshot(const workloads::Corpus& corpus,
                             const SnapshotBuildOptions& options);

}  // namespace javaflow::analysis
