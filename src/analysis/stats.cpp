#include "analysis/stats.hpp"

#include <algorithm>
#include <cmath>

namespace javaflow::analysis {

Summary summarize(std::vector<double> values) {
  Summary s;
  s.n = values.size();
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  s.min = values.front();
  s.max = values.back();
  s.median = values[values.size() / 2];
  double total = 0.0;
  for (const double v : values) total += v;
  s.mean = total / static_cast<double>(values.size());
  double var = 0.0;
  for (const double v : values) var += (v - s.mean) * (v - s.mean);
  s.std_dev = values.size() > 1
                  ? std::sqrt(var / static_cast<double>(values.size() - 1))
                  : 0.0;
  return s;
}

double correlation(const std::vector<double>& x,
                   const std::vector<double>& y) {
  const std::size_t n = std::min(x.size(), y.size());
  if (n < 2) return 0.0;
  double mx = 0.0, my = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
    syy += (y[i] - my) * (y[i] - my);
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace javaflow::analysis
