// The Chapter 7 performance sweep: every method × every configuration ×
// both branch scenarios, normalized to the Baseline Figure of Merit.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "analysis/lint.hpp"
#include "analysis/stats.hpp"
#include "bytecode/method.hpp"
#include "cache/store.hpp"
#include "obs/critpath.hpp"
#include "obs/metrics.hpp"
#include "sim/config.hpp"
#include "sim/engine.hpp"
#include "util/intern.hpp"

namespace javaflow::analysis {

// Method population filters (paper Table 16).
enum class Filter : std::uint8_t {
  All,      // every method
  Filter1,  // 10 < static instructions < 1000
  Filter2,  // the hottest (dynamically weighted) methods within Filter1
};
std::string_view filter_name(Filter f) noexcept;
bool filter_accepts(Filter f, std::size_t static_insts, bool is_hot) noexcept;

// One execution sample: a (method, config, scenario) cell of the sweep.
// The name fields are interned handles: every cell of a method shares
// one heap string per name instead of copying it twelve times per
// method (util/intern.hpp); they convert implicitly to const
// std::string& wherever a plain string is expected.
struct SweepSample {
  util::InternedString method;
  util::InternedString benchmark;
  std::size_t config_index = 0;    // into the sweep's config list
  sim::BranchPredictor::Scenario scenario =
      sim::BranchPredictor::Scenario::BP1;
  std::int32_t static_insts = 0;
  std::int32_t back_jumps = 0;
  bool is_hot = false;             // in the dynamic top-90 % set
  sim::RunMetrics metrics;

  // Field-wise equality, used to assert that parallel and serial sweeps
  // produce identical sample sequences.
  bool operator==(const SweepSample&) const = default;
};

// Critical-path attribution for one sweep cell (SweepOptions::
// attribution): the per-category tick totals from obs::attribute().
// `valid` requires a completed run whose attributed categories sum
// exactly to the cell's RunMetrics.ticks; invalid cells keep zeros.
// Name-independent, so dedup copies are exact.
struct CellAttribution {
  bool valid = false;
  std::array<std::int64_t, obs::kNumPathCategories> category_ticks{};

  std::int64_t total() const {
    std::int64_t s = 0;
    for (const std::int64_t v : category_ticks) s += v;
    return s;
  }
  bool operator==(const CellAttribution&) const = default;
};

// Per-phase wall-clock profile of a sweep, aggregated per worker lane
// (docs/OBSERVABILITY.md). Phase timings are wall time and therefore NOT
// part of the determinism guarantee — only `methods`/`cells` are stable.
struct SweepProfile {
  struct Lane {
    double verify_s = 0.0;   // back-jump scan, hot lookup, optional lint
    double resolve_s = 0.0;  // dataflow-graph construction
    double place_s = 0.0;    // per-config fabric placement
    double plan_s = 0.0;     // execution-plan lowering (one per config)
    double execute_s = 0.0;  // engine runs (all config x scenario cells)
    double cache_s = 0.0;    // result-cache probe/fill/store time
    std::size_t methods = 0;
    std::size_t cells = 0;
    // Result-cache counters (docs/PERF.md "Result cache"). Cell-granular
    // and, summed over lanes, identical for every thread count:
    //   cache_hit_cells  — served from a cached record, execution skipped
    //                      (verify mode: record present and compared);
    //   cache_miss_cells — executed because no usable record existed;
    //   dedup_cells      — copied from a byte-identical method's cells
    //                      within this sweep (always on lane 0: the
    //                      dedup fill is a serial post-pass).
    std::size_t cache_hit_cells = 0;
    std::size_t cache_miss_cells = 0;
    std::size_t dedup_cells = 0;
  };
  std::vector<Lane> lanes;  // index = worker lane; serial sweeps use [0]
  double wall_s = 0.0;      // whole-sweep wall clock

  Lane total() const;  // field-wise sum over lanes
};

struct SweepOptions {
  std::vector<sim::MachineConfig> configs;  // default: table15_configs()
  std::vector<sim::BranchPredictor::Scenario> scenarios = {
      sim::BranchPredictor::Scenario::BP1,
      sim::BranchPredictor::Scenario::BP2};
  sim::EngineOptions engine;
  // Optional subsampling for quick runs: keep every k-th method (1 = all).
  int stride = 1;
  // Per-phase wall-clock profiling (Sweep::profile). Cheap (a handful of
  // steady_clock reads per method), so it defaults on.
  bool profile = true;
  // Opt-in stderr heartbeat: roughly once a second, prints completed
  // methods, methods/s, and the ETA. Progress only — never affects
  // samples. Env knob: JAVAFLOW_SWEEP_HEARTBEAT=1 (bench_common.hpp).
  bool heartbeat = false;
  // Telemetry: aggregate an obs::MetricsRegistry over every cell into
  // Sweep::metrics. Lane-local registries are merged commutatively, so
  // the aggregate is identical for every thread count. Overrides any
  // `engine.metrics` pointer while the sweep runs.
  bool collect_metrics = false;
  // Critical-path attribution (docs/OBSERVABILITY.md "Attribution"):
  // attach a lane-local obs::FlightRecorder to every engine and fill
  // Sweep::attribution with per-cell category tick vectors. Attribution
  // is an instrumented mode — like the registries, it forces the result
  // cache off (cached cells record no dependency edges). Deterministic
  // and thread-count-invariant like the samples.
  bool attribution = false;
  // Worker threads for the sweep: 1 (default) runs in-line on the
  // calling thread; 0 uses one worker per hardware thread; n >= 2 uses
  // exactly n workers. The sweep shards per method and writes samples at
  // precomputed indices, so the output is identical for every setting.
  // Requests beyond std::thread::hardware_concurrency() are clamped with
  // a stderr warning unless allow_oversubscribe is set — timings from an
  // oversubscribed sweep misreport the machine.
  int threads = 1;
  bool allow_oversubscribe = false;
  // Debug mode: statically lint every method's dataflow graph (and its
  // placement on each swept configuration) before executing it. Findings
  // land in Sweep::lint_findings in method order — identical for every
  // thread count, like the samples.
  bool lint = false;
  LintOptions lint_options;
  // Cross-validation mode (docs/ANALYSIS.md): statically compute timing
  // and resource bounds for every method × config and assert them
  // against what actually happens — `static lower bound <= ticks` and
  // `buffer HWM <= static token bound` on every executed cell, the ticks
  // bound alone on cache-served cells (no registry runs there).
  // Violations land in Sweep::lint_findings as JF-E010, deterministic
  // and thread-count-invariant like the lint findings.
  bool check_bounds = false;
  // Persistent content-addressed result cache (docs/PERF.md "Result
  // cache"). Auto resolves JAVAFLOW_CACHE (unset = Off, the pre-cache
  // behaviour). Hits skip verify/resolve/place/execute for the whole
  // method and fill its samples from the cached record; the output stays
  // deterministically indexed and thread-count-invariant either way.
  // Telemetry runs (collect_metrics, engine.metrics/tracer/trace) force
  // the cache off for the sweep — cached cells fire no hooks, so served
  // results would under-count the registries.
  cache::CacheMode cache = cache::CacheMode::Auto;
  // Cache directory; empty resolves JAVAFLOW_CACHE_DIR, then
  // $XDG_CACHE_HOME/javaflow, then ~/.cache/javaflow.
  std::string cache_dir;
  // In-memory corpus dedup: byte-identical method bodies within one
  // sweep simulate once per (config, scenario) and share results (the
  // engine reads the method name only as a workspace-cache tag, so the
  // shared metrics are exact, not approximate). Name-dependent sample
  // fields (method, benchmark, is_hot) are still filled per method.
  bool dedup = true;
  // Substring filter over qualified method names ("" = all). Applied
  // before the stride, so `method_filter` + stride 1 sweeps exactly the
  // matching methods. Env knob: JAVAFLOW_BENCH_FILTER (bench_common.hpp).
  std::string method_filter;
};

struct Sweep {
  std::vector<sim::MachineConfig> configs;
  // Resolved event-scheduler name ("heap" / "calendar") the engines ran
  // with — recorded so BENCH_sweep.json and reports state which kernel
  // produced the numbers. Never affects the samples (the schedulers are
  // bit-identical; see tests/test_scheduler.cpp).
  std::string scheduler;
  std::vector<SweepSample> samples;
  // Parallel to `samples` when SweepOptions::attribution is set (empty
  // otherwise): critical-path category ticks per cell.
  std::vector<CellAttribution> attribution;
  // Populated when SweepOptions::lint and/or check_bounds is set.
  std::vector<LintFinding> lint_findings;
  std::int32_t lint_errors = 0;
  std::int32_t lint_warnings = 0;
  // Per-phase wall-clock profile (SweepOptions::profile, default on).
  SweepProfile profile;
  // Aggregated telemetry (SweepOptions::collect_metrics, default off);
  // identical for every thread count.
  obs::MetricsRegistry metrics;
  // Result-cache outcome for this sweep (docs/PERF.md "Result cache").
  // Counters are cell-granular and thread-count-invariant.
  struct CacheStats {
    std::string mode;  // resolved mode the sweep actually ran with
    std::string dir;   // resolved directory ("" when mode == "off")
    std::size_t hit_cells = 0;
    std::size_t miss_cells = 0;
    std::size_t dedup_cells = 0;
    std::size_t stored_records = 0;
    // Verify mode only: cells whose cached record differed from a fresh
    // execution. Always 0 for a healthy cache; mismatching records are
    // repaired in place and warned about on stderr.
    std::size_t verify_mismatch_cells = 0;
  };
  CacheStats cache;
};

// Runs the full sweep. `hot_methods` marks Filter 2 membership (by
// qualified name). Methods that do not fit or time out are recorded with
// their flags so tables can report exclusions.
Sweep run_sweep(const std::vector<const bytecode::Method*>& methods,
                const bytecode::ConstantPool& pool,
                const std::vector<std::string>& hot_methods,
                const SweepOptions& options);

// ---- aggregations ----

// Raw IPC rows (Tables 21 / 24 / 25, left half).
struct IpcRow {
  std::string config;
  Summary ipc;
};
std::vector<IpcRow> ipc_rows(const Sweep& sweep, Filter filter);

// Figure-of-Merit rows (Tables 22 / 24 / 25): per-method IPC normalized
// to that method's Baseline IPC under the same scenario, then averaged.
struct FomRow {
  std::string config;
  double ipc_mean = 0.0;
  double ipc_median = 0.0;
  double fm_mean = 0.0;
  double fm_std = 0.0;
  std::size_t samples = 0;
};
std::vector<FomRow> fom_rows(const Sweep& sweep, Filter filter);

// Table 23: correlation of the Heterogeneous FoM with method factors.
struct CorrelationRow {
  std::string factor;
  double correlation = 0.0;
};
std::vector<CorrelationRow> hetero_fom_correlations(const Sweep& sweep);

// Table 18: execution coverage per scenario.
struct CoverageRow {
  std::string scenario;
  double mean_coverage = 0.0;
};
std::vector<CoverageRow> coverage_rows(const Sweep& sweep);

// Table 19/20: instructions-to-max-node ratios per configuration.
struct NodeRatioRow {
  std::string config;
  Summary ratio;
};
std::vector<NodeRatioRow> node_ratio_rows(const Sweep& sweep, Filter filter);

// Table 26: parallelism per configuration.
struct ParallelismRow {
  std::string config;
  double mean_fraction_2plus = 0.0;
};
std::vector<ParallelismRow> parallelism_rows(const Sweep& sweep);

// Per-config aggregation of the network-traffic and execution-overlap
// RunMetrics fields (mesh_messages, serial_messages, ticks_exec_1plus/
// 2plus) that the tables never surfaced. Means are over usable samples
// (fits, completed, not timed out).
struct NetworkRow {
  std::string config;
  std::size_t samples = 0;
  std::uint64_t total_mesh_messages = 0;
  std::uint64_t total_serial_messages = 0;
  double mean_mesh_messages = 0.0;
  double mean_serial_messages = 0.0;
  double mean_ticks_exec_1plus = 0.0;
  double mean_ticks_exec_2plus = 0.0;
};
std::vector<NetworkRow> network_rows(const Sweep& sweep);

// Per-config critical-path attribution totals (sweeps run with
// SweepOptions::attribution): summed category ticks over attributed
// usable cells. The per-row invariant total(category_ticks) ==
// total_ticks holds by construction of obs::attribute().
struct AttributionRow {
  std::string config;
  std::size_t samples = 0;  // attributed usable cells
  std::int64_t total_ticks = 0;
  std::array<std::int64_t, obs::kNumPathCategories> category_ticks{};
};
std::vector<AttributionRow> attribution_rows(const Sweep& sweep);

// Tables 27/28: per-method Figure of Merit across configurations for a
// named method list (the top-4 SPEC methods).
struct MethodFomRow {
  std::string method;
  std::string benchmark;
  std::int32_t total_insts = 0;
  std::int32_t hetero_nodes = 0;  // "Sparser N": max node in Hetero2
  std::vector<double> fm;         // one per config, Baseline first
};
std::vector<MethodFomRow> per_method_fom(
    const Sweep& sweep, const std::vector<std::string>& methods);

}  // namespace javaflow::analysis
