#include "analysis/mix.hpp"

#include <algorithm>

namespace javaflow::analysis {
namespace {

using jvm::Profiler;

// Benchmark -> (method, stats) in descending hotness.
std::map<std::string,
         std::vector<std::pair<std::string, const Profiler::MethodStats*>>>
group_by_benchmark(const Profiler& profiler) {
  std::map<std::string,
           std::vector<std::pair<std::string, const Profiler::MethodStats*>>>
      grouped;
  for (const auto& [name, stats] : profiler.methods()) {
    grouped[stats.benchmark].emplace_back(name, &stats);
  }
  for (auto& [bm, methods] : grouped) {
    std::sort(methods.begin(), methods.end(),
              [](const auto& a, const auto& b) {
                if (a.second->total_ops != b.second->total_ops) {
                  return a.second->total_ops > b.second->total_ops;
                }
                return a.first < b.first;
              });
  }
  return grouped;
}

}  // namespace

std::vector<MethodUtilizationRow> method_utilization(
    const Profiler& profiler) {
  std::vector<MethodUtilizationRow> rows;
  for (const auto& [bm, methods] : group_by_benchmark(profiler)) {
    MethodUtilizationRow row;
    row.benchmark = bm;
    row.methods_used = methods.size();
    for (const auto& [name, stats] : methods) {
      row.total_ops += stats->total_ops;
    }
    const auto want =
        static_cast<std::uint64_t>(0.9 * static_cast<double>(row.total_ops));
    std::uint64_t seen = 0;
    for (const auto& [name, stats] : methods) {
      if (seen >= want) break;
      ++row.methods_for_90pct;
      seen += stats->total_ops;
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<DynamicMixRow> dynamic_mix_of_hot_methods(
    const Profiler& profiler, double coverage_fraction) {
  std::vector<DynamicMixRow> rows;
  for (const auto& [bm, methods] : group_by_benchmark(profiler)) {
    std::uint64_t bm_total = 0;
    for (const auto& [name, stats] : methods) bm_total += stats->total_ops;
    const auto want = static_cast<std::uint64_t>(
        coverage_fraction * static_cast<double>(bm_total));

    DynamicMixRow row;
    row.benchmark = bm;
    std::array<std::uint64_t, 8> counts{};
    std::uint64_t seen = 0;
    for (const auto& [name, stats] : methods) {
      if (seen >= want) break;
      seen += stats->total_ops;
      for (int b = 0; b < 256; ++b) {
        const std::uint64_t c =
            stats->op_counts[static_cast<std::size_t>(b)];
        if (c == 0 || !bytecode::is_valid_opcode(static_cast<std::uint8_t>(b))) {
          continue;
        }
        const auto cat = bytecode::dynamic_mix_category(
            bytecode::op_info(static_cast<bytecode::Op>(b)).group);
        counts[static_cast<std::size_t>(cat)] += c;
        row.total_ops += c;
      }
    }
    if (row.total_ops > 0) {
      for (std::size_t k = 0; k < counts.size(); ++k) {
        row.fractions[k] = static_cast<double>(counts[k]) /
                           static_cast<double>(row.total_ops);
      }
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<TopMethodsRow> top_methods(const Profiler& profiler,
                                       std::size_t n) {
  std::vector<TopMethodsRow> rows;
  for (const auto& [bm, methods] : group_by_benchmark(profiler)) {
    TopMethodsRow row;
    row.benchmark = bm;
    for (const auto& [name, stats] : methods) {
      row.total_ops += stats->total_ops;
    }
    for (std::size_t k = 0; k < methods.size() && k < n; ++k) {
      TopMethod t;
      t.method = methods[k].first;
      t.ops = methods[k].second->total_ops;
      t.share = row.total_ops > 0 ? static_cast<double>(t.ops) /
                                        static_cast<double>(row.total_ops)
                                  : 0.0;
      row.top_share += t.share;
      row.top.push_back(std::move(t));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

QuickImpact quick_impact(const Profiler& profiler) {
  QuickImpact q;
  q.total_ops = profiler.total_ops();
  q.storage_base = profiler.storage_base_ops();
  q.storage_quick = profiler.storage_quick_ops();
  const std::uint64_t total_storage = q.storage_base + q.storage_quick;
  if (total_storage > 0) {
    q.quick_percentage = static_cast<double>(q.storage_quick) /
                         static_cast<double>(total_storage);
  }
  return q;
}

std::vector<StaticMixRow> static_mix(
    const std::vector<const bytecode::Method*>& methods) {
  std::map<std::string, std::array<std::uint64_t, 4>> counts;
  std::array<std::uint64_t, 4> totals{};
  for (const bytecode::Method* m : methods) {
    auto& row = counts[m->benchmark];
    for (const bytecode::Instruction& inst : m->code) {
      const auto cat = static_cast<std::size_t>(
          bytecode::static_mix_category(inst.group()));
      ++row[cat];
      ++totals[cat];
    }
  }
  std::vector<StaticMixRow> rows;
  auto to_row = [](const std::string& bm,
                   const std::array<std::uint64_t, 4>& c) {
    StaticMixRow r;
    r.benchmark = bm;
    r.total_insts = c[0] + c[1] + c[2] + c[3];
    if (r.total_insts > 0) {
      const auto total = static_cast<double>(r.total_insts);
      r.arith = static_cast<double>(c[0]) / total;
      r.fp = static_cast<double>(c[1]) / total;
      r.control = static_cast<double>(c[2]) / total;
      r.storage = static_cast<double>(c[3]) / total;
    }
    return r;
  };
  for (const auto& [bm, c] : counts) rows.push_back(to_row(bm, c));
  rows.push_back(to_row("Total", totals));
  return rows;
}

}  // namespace javaflow::analysis
