// Static timing / resource bound analyzer (docs/ANALYSIS.md).
//
// For a placed method on a concrete MachineConfig this pass computes:
//
//   * a critical-path LOWER bound on execution ticks — a min-plus
//     fixpoint over the serial chain, the branch arms and the forward
//     dataflow edges, weighted with the engine's own cost model
//     (Table 17 execution costs, serial hop latency, mesh X-Y transit
//     from the concrete placement, ring service times). Soundness
//     invariant: for every cell the engine completes,
//     `lower_bound_ticks <= RunMetrics::ticks`.
//
//   * per-node earliest-fire ticks (the same fixpoint's intermediate
//     solution), useful for schedule visualization and tightness data.
//
//   * provable per-node resource intervals: operand-buffer occupancy
//     [pop, forward in-edges], forward mesh fan-out, and — for the
//     control nodes that buffer the serial token bundle (§6.3) — an
//     upper bound on buffered tokens that must dominate the measured
//     `obs::MetricsRegistry` buffer high-water marks.
//
// The bound rules JF-E008 (definite overflow) / JF-W103 (possible,
// unproven) replace JF-E005's method-level max_stack heuristic with
// per-node intervals; JF-E010 fires when measured engine metrics
// contradict a proven bound (the cross-validation layer used by
// `SweepOptions::check_bounds` and cache verify replays).
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/lint.hpp"
#include "bytecode/method.hpp"
#include "fabric/dataflow_graph.hpp"
#include "fabric/fabric.hpp"
#include "fabric/loader.hpp"
#include "obs/metrics.hpp"
#include "sim/config.hpp"
#include "sim/engine.hpp"

namespace javaflow::analysis {

// "Unreachable / never fires" sentinel for tick values. Large enough to
// dominate every real tick count, small enough that saturating adds in
// the fixpoint can never overflow.
inline constexpr std::int64_t kNoBound =
    std::numeric_limits<std::int64_t>::max() / 4;

// Earliest-possible ticks for one linear instruction address. kNoBound
// means the analyzer proved the event can never happen (e.g. an operand
// side fed only by back edges, which the mesh never delivers).
struct NodeTiming {
  std::int64_t head = kNoBound;  // HEAD token arrival
  std::int64_t fire = kNoBound;  // firing (all operands + tokens present)
  std::int64_t done = kNoBound;  // execution complete (Table 17 cost paid)
};

// Token-bundle buffering interval for one control node (§6.3: control
// nodes hold the whole serial bundle while unfired).
struct TokenBufferBound {
  std::int32_t node = -1;  // linear address of the buffering node
  std::int32_t phys = -1;  // physical fabric node (HWM index)
  std::int32_t lo = 0;     // tokens provably present when it fires
  std::int32_t hi = 0;     // tokens provably never exceeded
};

struct MethodBounds {
  bool valid = false;  // placement fits and the fixpoint converged

  // Timing (per linear address; lower_bound is min over Return dones).
  std::vector<NodeTiming> nodes;
  std::int64_t lower_bound_ticks = kNoBound;

  // Resources.
  std::vector<std::int32_t> operand_hi;       // forward in-edges per node
  std::vector<std::int32_t> forward_fanout;   // forward out-edges per node
  std::vector<TokenBufferBound> token_buffers;
  std::int32_t max_forward_fanout = 0;

  // Max token-buffer `hi` over control nodes mapped to physical node
  // `phys`; 0 when no control node lives there (then the engine never
  // records a high-water mark for it).
  std::int32_t token_hi_at_phys(std::int32_t phys) const noexcept;
};

// Computes all bounds for one (method, config) pair from the method's
// pre-lowered execution plan (docs/PERF.md "Execution plans"). The plan
// already embeds the placement, the forward-edge producer lists, and
// every engine cost the fixpoint weights with (Table 17 execution
// ticks, ring service surcharges, per-edge mesh delivery ticks, serial
// hop latency), so this is the primary implementation: the analyzer and
// the engine read the same lowered image. `m` is still consulted for
// the switch tables (branch arms) only. Never executes anything.
MethodBounds compute_bounds(const bytecode::Method& m,
                            const sim::ExecPlan& plan);

// Convenience wrapper for callers holding the un-lowered pieces: lowers
// (graph, placement, config) to a plan and delegates. `graph` must be
// the dataflow graph of `m` and `placement` a load of it onto `fabric`
// built from `config`.
MethodBounds compute_bounds(const bytecode::Method& m,
                            const fabric::DataflowGraph& graph,
                            const fabric::Fabric& fabric,
                            const fabric::Placement& placement,
                            const sim::MachineConfig& config);

// Static resource rules over a computed bound: JF-E008 when a node
// provably needs more operand buffering than `options.node_buffer_capacity`
// provides, JF-W103 when the occupancy upper bound exceeds it without a
// matching lower-bound proof.
void lint_bounds(const bytecode::Method& m, const sim::MachineConfig& config,
                 const MethodBounds& bounds, const LintOptions& options,
                 LintReport& out);

// Cross-validation (JF-E010): measured engine results must respect the
// static bounds. `registry` carries the per-physical-node buffer
// high-water marks of exactly this run, or null when only cached
// RunMetrics are available (then only the ticks bound is checked).
// No-op for cells the engine did not complete normally.
void check_metrics_against_bounds(const std::string& method_name,
                                  std::string_view config_name,
                                  std::string_view scenario_name,
                                  const sim::RunMetrics& metrics,
                                  const obs::MetricsRegistry* registry,
                                  const MethodBounds& bounds,
                                  LintReport& out);

// Runs compute_bounds + lint_bounds for every method of `program` on
// every config. `threads` follows SweepOptions semantics (1 = inline,
// 0 = hardware concurrency); finding order is deterministic for every
// thread count. Methods that fail verification are skipped (lint_corpus
// already reports those as JF-E003).
LintReport bounds_corpus(const bytecode::Program& program,
                         const std::vector<sim::MachineConfig>& configs,
                         const LintOptions& options = {}, int threads = 1);

}  // namespace javaflow::analysis
