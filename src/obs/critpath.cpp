#include "obs/critpath.hpp"

#include <algorithm>

#include "net/mesh_network.hpp"
#include "obs/metrics.hpp"
#include "sim/plan.hpp"

namespace javaflow::obs {

std::string_view path_category_name(PathCategory c) noexcept {
  switch (c) {
    case PathCategory::SerialTransit: return "serial_transit";
    case PathCategory::MeshTransit: return "mesh_transit";
    case PathCategory::OperandWait: return "operand_wait";
    case PathCategory::FireStall: return "fire_stall";
    case PathCategory::Execution: return "execution";
    case PathCategory::TailHold: return "tail_hold";
    case PathCategory::RingService: return "ring_service";
  }
  return "?";
}

namespace {

// Spread a MeshTransit segment's ticks over the physical links of its
// X-Y route (same serpentine routing the engine's metrics use). Integer
// division with the remainder on the final link keeps the per-link sum
// exactly equal to the segment — no fractional ticks to lose.
void attribute_links(const net::MeshNetwork& mesh, const PathStep& step,
                     Attribution& out) {
  std::int32_t hops = 0;
  mesh.for_each_route_link(step.from_phys, step.to_phys,
                           [&](std::int32_t, std::int32_t, std::int32_t) {
                             ++hops;
                           });
  if (hops == 0) return;  // self-delivery: no link traversed
  const std::int64_t per = step.ticks() / hops;
  std::int64_t spent = 0;
  std::int32_t seen = 0;
  mesh.for_each_route_link(
      step.from_phys, step.to_phys,
      [&](std::int32_t src, std::int32_t dx, std::int32_t dy) {
        const LinkDir dir = dx > 0   ? LinkDir::East
                            : dx < 0 ? LinkDir::West
                            : dy > 0 ? LinkDir::North
                                     : LinkDir::South;
        ++seen;
        const std::int64_t share =
            seen == hops ? step.ticks() - spent : per;
        spent += share;
        out.link_ticks[{src, static_cast<std::uint8_t>(dir)}] += share;
      });
}

// Same spreading, but over a plan's precomputed route span: the links
// (and their order) are exactly what for_each_route_link would walk, so
// the two decompositions agree tick-for-tick (tests/test_plan.cpp).
void attribute_links_plan(const sim::ExecPlan& plan, const PathStep& step,
                          Attribution& out) {
  const sim::ExecPlan::RouteSpan r =
      plan.find_route(step.from_phys, step.to_phys);
  if (r.count == 0) return;  // self-delivery: no link traversed
  const std::int64_t per = step.ticks() / r.count;
  std::int64_t spent = 0;
  for (std::int32_t i = 0; i < r.count; ++i) {
    const std::int64_t share =
        i + 1 == r.count ? step.ticks() - spent : per;
    spent += share;
    out.link_ticks[{r.links[i].src_phys, r.links[i].dir}] += share;
  }
}

}  // namespace

Attribution attribute(const FlightRecorder& fr,
                      const AttributeOptions& opts) {
  Attribution out;
  const std::vector<DepEdge>& edges = fr.edges();
  std::int32_t cur = fr.terminal();
  if (cur < 0 || static_cast<std::size_t>(cur) >= edges.size()) return out;

  out.ticks = edges[static_cast<std::size_t>(cur)].to_tick;

  // Walk terminal -> root. The cycle guard can't trip on recorder output
  // (parents always precede children), but a bounded walk turns a
  // hypothetical recording bug into an invalid attribution instead of a
  // hang.
  std::size_t walked = 0;
  const std::size_t limit = edges.size() + 1;
  std::int64_t expect_end = out.ticks;
  std::int64_t sum = 0;
  bool rooted = false;
  while (cur >= 0) {
    if (++walked > limit) return out;  // broken chain
    const DepEdge& e = edges[static_cast<std::size_t>(cur)];
    // Contiguity: this segment must end exactly where the one after it
    // (already visited) began.
    if (e.to_tick != expect_end || e.from_tick > e.to_tick) return out;
    const std::int64_t span = e.to_tick - e.from_tick;
    sum += span;
    out.category_ticks[static_cast<std::size_t>(e.category)] += span;
    if (opts.detail) {
      out.steps.push_back({e.from_tick, e.to_tick, e.node, e.from_phys,
                           e.to_phys, e.category, e.opcode});
      if (e.node >= 0) out.node_ticks[e.node] += span;
      if (e.category == PathCategory::Execution) {
        out.opcode_ticks[e.opcode] += span;
      }
    }
    expect_end = e.from_tick;
    if (e.parent < 0) {
      rooted = e.from_tick == 0;
      break;
    }
    cur = e.parent;
  }
  if (!rooted || sum != out.ticks) return out;

  if (opts.detail) {
    // Recorded back-to-front; present injection-first.
    std::reverse(out.steps.begin(), out.steps.end());
    if (opts.plan != nullptr) {
      if (!opts.plan->collapsed()) {
        for (const PathStep& s : out.steps) {
          if (s.category == PathCategory::MeshTransit && s.from_phys >= 0 &&
              s.to_phys >= 0) {
            attribute_links_plan(*opts.plan, s, out);
          }
        }
      }
    } else if (opts.mesh_width > 0 && !opts.collapsed) {
      const net::MeshNetwork mesh(opts.mesh_width);
      for (const PathStep& s : out.steps) {
        if (s.category == PathCategory::MeshTransit && s.from_phys >= 0 &&
            s.to_phys >= 0) {
          attribute_links(mesh, s, out);
        }
      }
    }
  }
  out.valid = true;
  return out;
}

}  // namespace javaflow::obs
