// Cycle-accurate event tracing for the simulator (observability layer).
//
// An EventTracer attached via EngineOptions::tracer records every engine
// event as it is *handled* (so only events that really happened appear):
// serial token deliveries (§6.1 Figure 17), mesh operand arrivals (§6.1
// Figure 18), firing start / completion (Table 17 costs), and memory /
// GPP ring service start / completion (Figure 25). Timestamps are the
// engine's serial ticks, so a trace is bit-identical across repeated
// runs of the same method × configuration × scenario.
//
// write_chrome_trace() exports the Chrome trace-event JSON format
// (loadable in Perfetto / chrome://tracing): one track per fabric node
// (pid 0, tid = physical chain slot; firings as complete "X" slices,
// token/operand arrivals as instants) and one track per network (pid 1:
// serial, mesh, ring), plus flow events (producer→consumer arrows) for
// every mesh operand whose producer is known, so Perfetto draws the
// realized dataflow edges. Ticks map to microseconds 1:1.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace javaflow::obs {

enum class TraceEventKind : std::uint8_t {
  TokenDeliver,     // serial message handled at a node; aux = net::Command
  OperandArrive,    // mesh operand handled at a node; aux = consumer side,
                    // dur = producer linear address (-1 unknown) — feeds
                    // the exporter's producer→consumer flow arrows
  FireStart,        // execution began; dur = execution ticks
  FireComplete,     // execution finished
  ServiceStart,     // ring request dispatched; aux = net::RingService,
                    // dur = service ticks (posted writes never "complete")
  ServiceComplete,  // blocking ring reply arrived; aux = net::RingService
};
std::string_view trace_event_kind_name(TraceEventKind k) noexcept;

struct TraceEvent {
  std::int64_t tick = 0;
  TraceEventKind kind = TraceEventKind::TokenDeliver;
  std::int32_t node = -1;  // linear instruction address
  std::int32_t slot = -1;  // physical chain slot (fabric node track)
  std::uint8_t aux = 0;    // kind-dependent payload (see above)
  std::int64_t dur = 0;    // FireStart / ServiceStart durations, in ticks

  bool operator==(const TraceEvent&) const = default;
};

class EventTracer {
 public:
  void record(const TraceEvent& e) { events_.push_back(e); }
  const std::vector<TraceEvent>& events() const noexcept { return events_; }
  void clear() { events_.clear(); }

 private:
  std::vector<TraceEvent> events_;
};

// Static context the exporter needs to label tracks.
struct TraceMeta {
  std::string method;
  std::string config;
  std::string scenario;
  int serial_per_mesh = 1;
  // Per linear instruction: a display label ("12 iadd"), method-sized.
  std::vector<std::string> node_labels;
};

// Writes a self-contained Chrome trace-event JSON object. Deterministic:
// events are emitted in (tick, recording order), and no wall-clock or
// address-dependent data is included.
void write_chrome_trace(std::ostream& os, const EventTracer& tracer,
                        const TraceMeta& meta);

}  // namespace javaflow::obs
