#include "obs/event_tracer.hpp"

#include <algorithm>
#include <map>
#include <ostream>
#include <set>
#include <utility>

#include "net/message.hpp"

namespace javaflow::obs {

namespace {

constexpr int kFabricPid = 0;
constexpr int kNetworkPid = 1;
constexpr int kSerialTid = 0;
constexpr int kMeshTid = 1;
constexpr int kRingTid = 2;

void write_escaped(std::ostream& os, std::string_view s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
}

class EventWriter {
 public:
  explicit EventWriter(std::ostream& os) : os_(os) {}

  std::ostream& begin(const char* ph, std::string_view name, int pid,
                      std::int64_t tid) {
    if (!first_) os_ << ",\n";
    first_ = false;
    os_ << "    {\"ph\":\"" << ph << "\",\"name\":\"";
    write_escaped(os_, name);
    os_ << "\",\"pid\":" << pid << ",\"tid\":" << tid;
    return os_;
  }

  void meta(const char* kind, int pid, std::int64_t tid,
            std::string_view value) {
    begin("M", kind, pid, tid) << ",\"args\":{\"name\":\"";
    write_escaped(os_, value);
    os_ << "\"}}";
  }

  void instant(std::string_view name, int pid, std::int64_t tid,
               std::int64_t ts, std::string_view args_json) {
    begin("i", name, pid, tid)
        << ",\"ts\":" << ts << ",\"s\":\"t\",\"args\":" << args_json << '}';
  }

  void slice(std::string_view name, int pid, std::int64_t tid,
             std::int64_t ts, std::int64_t dur, std::string_view args_json) {
    begin("X", name, pid, tid) << ",\"ts\":" << ts
                               << ",\"dur\":" << std::max<std::int64_t>(dur, 1)
                               << ",\"args\":" << args_json << '}';
  }

  // Chrome flow-event pair: an arrow from (pid 0, producer slot) to
  // (pid 0, consumer slot). "bp":"e" binds the finish to the enclosing
  // slice/instant at that timestamp, which is what Perfetto draws.
  void flow(std::int64_t id, int pid, std::int64_t src_tid,
            std::int64_t src_ts, std::int64_t dst_tid, std::int64_t dst_ts) {
    begin("s", "operand", pid, src_tid)
        << ",\"cat\":\"dataflow\",\"id\":" << id << ",\"ts\":" << src_ts
        << '}';
    begin("f", "operand", pid, dst_tid)
        << ",\"cat\":\"dataflow\",\"id\":" << id << ",\"ts\":" << dst_ts
        << ",\"bp\":\"e\"}";
  }

 private:
  std::ostream& os_;
  bool first_ = true;
};

std::string node_args(const TraceEvent& e) {
  return "{\"node\":" + std::to_string(e.node) +
         ",\"slot\":" + std::to_string(e.slot) + "}";
}

std::string_view label_of(const TraceMeta& meta, std::int32_t node,
                          std::string_view fallback) {
  if (node >= 0 && static_cast<std::size_t>(node) < meta.node_labels.size()) {
    return meta.node_labels[static_cast<std::size_t>(node)];
  }
  return fallback;
}

}  // namespace

std::string_view trace_event_kind_name(TraceEventKind k) noexcept {
  switch (k) {
    case TraceEventKind::TokenDeliver: return "token_deliver";
    case TraceEventKind::OperandArrive: return "operand_arrive";
    case TraceEventKind::FireStart: return "fire_start";
    case TraceEventKind::FireComplete: return "fire_complete";
    case TraceEventKind::ServiceStart: return "service_start";
    case TraceEventKind::ServiceComplete: return "service_complete";
  }
  return "?";
}

void write_chrome_trace(std::ostream& os, const EventTracer& tracer,
                        const TraceMeta& meta) {
  // Stable sort by tick: simultaneous events keep their deterministic
  // engine handling order.
  std::vector<TraceEvent> events = tracer.events();
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.tick < b.tick;
                   });

  os << "{\n  \"displayTimeUnit\": \"ms\",\n  \"otherData\": {"
     << "\"method\": \"";
  write_escaped(os, meta.method);
  os << "\", \"config\": \"";
  write_escaped(os, meta.config);
  os << "\", \"scenario\": \"";
  write_escaped(os, meta.scenario);
  os << "\", \"serial_per_mesh\": " << meta.serial_per_mesh
     << ", \"time_unit\": \"serial ticks (1 tick = 1us in the viewer)\"},\n"
     << "  \"traceEvents\": [\n";

  EventWriter w(os);
  w.meta("process_name", kFabricPid, 0,
         "fabric: " + meta.method + " on " + meta.config);
  w.meta("process_name", kNetworkPid, 0, "networks");
  w.meta("thread_name", kNetworkPid, kSerialTid, "serial chain");
  w.meta("thread_name", kNetworkPid, kMeshTid, "mesh (DataFlow)");
  w.meta("thread_name", kNetworkPid, kRingTid, "memory/GPP ring");

  // One named track per fabric node that appears in the trace.
  std::set<std::pair<std::int64_t, std::int32_t>> slots;  // (slot, node)
  for (const TraceEvent& e : events) {
    if (e.slot >= 0) slots.insert({e.slot, e.node});
  }
  for (const auto& [slot, node] : slots) {
    std::string label = "slot " + std::to_string(slot);
    const std::string_view inst = label_of(meta, node, "");
    if (!inst.empty()) label += ": " + std::string(inst);
    w.meta("thread_name", kFabricPid, slot, label);
  }

  // Producer bookkeeping for mesh flow arrows: the arrow starts at the
  // producer's most recent completed firing (the tick the operand left),
  // which sorts before the arrival because mesh transit takes >= 1 tick.
  std::map<std::int32_t, std::pair<std::int64_t, std::int64_t>>
      last_complete;  // node -> (tick, slot)
  std::int64_t flow_id = 0;

  for (const TraceEvent& e : events) {
    const std::string args = node_args(e);
    if (e.kind == TraceEventKind::FireComplete && e.node >= 0) {
      last_complete[e.node] = {e.tick, e.slot};
    }
    switch (e.kind) {
      case TraceEventKind::TokenDeliver: {
        const auto cmd =
            net::command_name(static_cast<net::Command>(e.aux));
        w.instant(cmd, kFabricPid, e.slot, e.tick, args);
        w.instant(cmd, kNetworkPid, kSerialTid, e.tick, args);
        break;
      }
      case TraceEventKind::OperandArrive: {
        const std::string name =
            "operand side " + std::to_string(static_cast<int>(e.aux));
        w.instant(name, kFabricPid, e.slot, e.tick, args);
        w.instant(name, kNetworkPid, kMeshTid, e.tick, args);
        if (e.dur >= 0) {
          const auto it =
              last_complete.find(static_cast<std::int32_t>(e.dur));
          if (it != last_complete.end() && it->second.first <= e.tick) {
            w.flow(flow_id++, kFabricPid, it->second.second,
                   it->second.first, e.slot, e.tick);
          }
        }
        break;
      }
      case TraceEventKind::FireStart:
        w.slice(label_of(meta, e.node, "fire"), kFabricPid, e.slot, e.tick,
                e.dur, args);
        break;
      case TraceEventKind::FireComplete:
        // Encoded by the FireStart "X" slice's duration.
        break;
      case TraceEventKind::ServiceStart: {
        const auto svc =
            net::ring_service_name(static_cast<net::RingService>(e.aux));
        w.slice("svc: " + std::string(svc), kFabricPid, e.slot, e.tick,
                e.dur, args);
        w.instant(svc, kNetworkPid, kRingTid, e.tick, args);
        break;
      }
      case TraceEventKind::ServiceComplete: {
        const auto svc =
            net::ring_service_name(static_cast<net::RingService>(e.aux));
        w.instant("done: " + std::string(svc), kNetworkPid, kRingTid, e.tick,
                  args);
        break;
      }
    }
  }
  os << "\n  ]\n}\n";
}

}  // namespace javaflow::obs
