// Critical-path attribution: where did the ticks go? (observability)
//
// The Chapter 7 evaluation explains performance in terms of the machine
// model's delay sources — serial-chain transit (§6.1 Figure 17), mesh
// hops (§6.1 Figure 18), operand waiting and TAIL holds (§6.3), Table 17
// execution costs, and ring service times (Figure 25) — but RunMetrics
// and MetricsRegistry only *count* those events. This module answers the
// causal question: for the one dependency chain that actually determined
// the run's length, how many ticks did each delay source contribute?
//
// A FlightRecorder is a compact in-memory capture mode (far cheaper than
// a Chrome-JSON trace) that records one dependency edge per scheduled
// event: the half-open tick interval from the moment the parent event
// dispatched to the moment this event fired, tagged with a PathCategory.
// Tokens that sit *held* at a node (operand wait, TAIL hold, firing
// stall) get synthetic hold edges spliced between their arrival and
// their release, so waiting time surfaces as its own category instead of
// hiding inside the next transit hop.
//
// attribute() walks parent links from the terminal event (the Return
// completion, or the GPP service that retired an exception) back to the
// bundle injection at tick 0. Because every edge starts exactly where
// its parent ended, the categories on that path sum *exactly* to the
// run's `ticks` — the invariant every caller asserts, per cell, across
// all configurations (tests/test_critpath.cpp).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string_view>
#include <utility>
#include <vector>

namespace javaflow::sim {
class ExecPlan;
}  // namespace javaflow::sim

namespace javaflow::obs {

// The seven delay sources a tick on the critical path can belong to.
// Order is the serialized order in snapshots — append-only; any
// semantic change must bump kAttributionFingerprint.
enum class PathCategory : std::uint8_t {
  SerialTransit = 0,  // ordered-network hops + bundle spacing (§6.1)
  MeshTransit,        // X-Y routed operand transfers (§6.1 Figure 18)
  OperandWait,        // register/memory token held until firing (§6.3)
  FireStall,          // ready-to-fire wait on a busy execution unit
  Execution,          // Table 17 group execution cost
  TailHold,           // TAIL waiting for instructions above it (§6.3)
  RingService,        // memory / constant / GPP ring round trips (Fig 25)
};
inline constexpr std::size_t kNumPathCategories = 7;
std::string_view path_category_name(PathCategory c) noexcept;

// Version stamp over the category enum *and* the edge-recording rules.
// Folded into cache::record_fingerprint() and embedded in snapshot
// files, so both cached sweep records and .jfs snapshots invalidate when
// attribution semantics change. Bump on any change to PathCategory
// values, hold-edge splicing, or parent selection.
inline constexpr std::uint32_t kAttributionFingerprint = 1;

// One dependency edge: this event's delay segment [from_tick, to_tick]
// and the edge that caused it. `parent < 0` marks a root (bundle
// injection at tick 0). `from_phys`/`to_phys` are physical chain slots,
// set for mesh edges only (-1 otherwise); `opcode` is set for Execution
// edges only.
struct DepEdge {
  std::int64_t from_tick = 0;
  std::int64_t to_tick = 0;
  std::int32_t parent = -1;
  std::int32_t node = -1;
  std::int32_t from_phys = -1;
  std::int32_t to_phys = -1;
  PathCategory category = PathCategory::SerialTransit;
  std::uint8_t opcode = 0;
};

// Per-run dependency-edge capture. The engine resets it at the start of
// each run, records one edge per scheduled event (keyed by the event's
// seq, which is dense from 0) plus synthetic hold edges, and marks the
// terminal edge at completion. Storage is reused across runs, so a warm
// recorder costs no allocations on the sweep inner loop.
class FlightRecorder {
 public:
  void reset() {
    edges_.clear();
    seq2edge_.clear();
    terminal_ = -1;
  }

  // Record the edge behind a scheduled event. Seq values arrive densely
  // from 0 within a run; the map is a plain vector.
  std::int32_t record_event(std::int64_t seq, const DepEdge& e) {
    const std::int32_t id = record(e);
    const auto u = static_cast<std::size_t>(seq);
    if (u >= seq2edge_.size()) seq2edge_.resize(u + 1, -1);
    seq2edge_[u] = id;
    return id;
  }

  // Record a synthetic edge (hold splice, exception retirement) that has
  // no event of its own.
  std::int32_t record(const DepEdge& e) {
    edges_.push_back(e);
    return static_cast<std::int32_t>(edges_.size() - 1);
  }

  std::int32_t edge_of_seq(std::int64_t seq) const {
    const auto u = static_cast<std::size_t>(seq);
    return u < seq2edge_.size() ? seq2edge_[u] : -1;
  }

  void set_terminal(std::int32_t edge) { terminal_ = edge; }
  std::int32_t terminal() const { return terminal_; }
  const std::vector<DepEdge>& edges() const { return edges_; }

 private:
  std::vector<DepEdge> edges_;
  std::vector<std::int32_t> seq2edge_;
  std::int32_t terminal_ = -1;
};

// One hop of the realized critical path, in execution order (injection
// first, terminal last). Adjacent steps are contiguous:
// steps[i].to_tick == steps[i+1].from_tick.
struct PathStep {
  std::int64_t from_tick = 0;
  std::int64_t to_tick = 0;
  std::int32_t node = -1;
  std::int32_t from_phys = -1;
  std::int32_t to_phys = -1;
  PathCategory category = PathCategory::SerialTransit;
  std::uint8_t opcode = 0;

  std::int64_t ticks() const { return to_tick - from_tick; }
  bool operator==(const PathStep&) const = default;
};

struct AttributeOptions {
  // Mesh width of the configuration (> 0 enables per-physical-link
  // decomposition of MeshTransit segments via X-Y routing). Collapsed
  // (Baseline) meshes have no meaningful route; leave width at 0 or set
  // `collapsed` and link attribution is skipped.
  std::int32_t mesh_width = 0;
  bool collapsed = false;
  // Collect the full step list and per-node/opcode/link aggregates.
  // Sweep-scale callers that only need the category vector turn this
  // off.
  bool detail = true;
  // Pre-lowered execution plan of the run being attributed (docs/PERF.md
  // "Execution plans"). When set, MeshTransit link decomposition replays
  // the plan's precomputed X-Y route spans instead of re-walking a
  // net::MeshNetwork — same links, same order, no routing work. The
  // plan's own collapsed flag gates the decomposition, so mesh_width /
  // collapsed above are ignored.
  const sim::ExecPlan* plan = nullptr;
};

// The answer: per-category tick totals over the realized critical path,
// plus (in detail mode) the path itself and per-node / per-opcode /
// per-physical-link slack aggregates. `valid` requires a terminal edge
// whose parent chain reaches tick 0 and whose segments sum exactly to
// `ticks`; callers additionally assert ticks == RunMetrics.ticks.
struct Attribution {
  bool valid = false;
  std::int64_t ticks = 0;
  std::array<std::int64_t, kNumPathCategories> category_ticks{};
  std::vector<PathStep> steps;
  // Linear instruction address -> on-path ticks attributed while that
  // node was the segment's destination/owner.
  std::map<std::int32_t, std::int64_t> node_ticks;
  // Opcode -> on-path Execution ticks.
  std::map<std::uint8_t, std::int64_t> opcode_ticks;
  // (source physical slot, LinkDir as uint8) -> on-path MeshTransit
  // ticks carried over that link — same key shape as
  // MetricsRegistry::mesh_link_load.
  std::map<std::pair<std::int32_t, std::uint8_t>, std::int64_t> link_ticks;

  std::int64_t total() const {
    std::int64_t s = 0;
    for (const std::int64_t v : category_ticks) s += v;
    return s;
  }
  bool operator==(const Attribution&) const = default;
};

// Reconstruct and attribute the realized critical path of the last
// recorded run. Returns valid=false when the run did not complete (no
// terminal), the chain is broken, or the segments fail to sum — callers
// treat that as "no attribution", never as zeros.
Attribution attribute(const FlightRecorder& fr,
                      const AttributeOptions& opts = {});

}  // namespace javaflow::obs
