// Run-snapshot files (.jfs): versioned, checksummed capture of one
// attribution sweep — per-config per-method ticks, critical-path
// category vectors, static lower bounds, and scheduler/stride metadata.
//
// A snapshot is the diffable unit of "where do the ticks go": commit a
// reference file, regenerate after a change, and `javaflow_explain
// --diff A.jfs B.jfs` reports exactly which cells drifted and which
// delay category absorbed the difference. The binary format follows
// cache/record.cpp: fixed-width little-endian integers, a magic +
// format-version header, the attribution fingerprint, and a trailing
// FNV-64 checksum (cache/hash.hpp) over everything before it — any
// flipped byte anywhere fails the load. Snapshots contain only
// deterministic simulation outputs (no wall-clock, host, or thread
// metadata), so serial and parallel sweeps of the same corpus produce
// byte-identical files (tests/test_critpath.cpp asserts this).
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "obs/critpath.hpp"

namespace javaflow::obs {

// Bump on any change to the serialized layout below.
inline constexpr std::uint32_t kSnapshotFormatVersion = 1;

// One sweep cell: (method, config, scenario) -> ticks + attribution.
struct SnapshotCell {
  std::string method;
  std::int32_t config_index = -1;
  std::uint8_t scenario = 0;  // sim::BranchPredictor::Scenario value
  bool fits = false;
  bool completed = false;
  bool timed_out = false;
  bool exception = false;
  bool attributed = false;  // category_ticks hold a valid attribution
  std::int64_t ticks = 0;
  std::int64_t lower_bound = -1;  // static bound; -1 = none available
  std::array<std::int64_t, kNumPathCategories> category_ticks{};

  bool operator==(const SnapshotCell&) const = default;
};

struct Snapshot {
  std::uint32_t attribution_fingerprint = kAttributionFingerprint;
  std::string scheduler;
  std::int32_t stride = 1;
  std::vector<std::string> config_names;
  std::vector<std::string> config_texts;  // MachineConfig::canonical_text
  std::vector<SnapshotCell> cells;        // deterministic sweep order

  bool operator==(const Snapshot&) const = default;
};

// Scenario spelling shared with the CLI tools. obs cannot see
// sim::BranchPredictor (sim layers on top of obs), so the mapping lives
// here next to the byte it decodes.
std::string_view snapshot_scenario_name(std::uint8_t scenario) noexcept;

std::string serialize_snapshot(const Snapshot& snap);
// Structural + checksum validation; returns false (out untouched) on
// any anomaly. A fingerprint mismatch still loads — diff_snapshots
// reports it as incomparable so tools can explain *why* instead of
// failing opaquely.
bool deserialize_snapshot(std::string_view bytes, Snapshot& out);

// The trailing integrity checksum of a serialized snapshot — the
// identity bench_gate.py records next to cells/s in BENCH_history.json.
// Returns 0 for anything shorter than a trailer.
std::uint64_t snapshot_digest(std::string_view serialized);

bool save_snapshot(const Snapshot& snap, const std::string& path);
bool load_snapshot(const std::string& path, Snapshot& out);

// ---- snapshot diff ----

struct SnapshotDiff {
  // False when the two files disagree on attribution fingerprint (the
  // category vectors mean different things — deltas would be lies).
  bool comparable = true;
  bool identical = false;
  // Metadata-level differences (scheduler, stride, config set). Any
  // entry here clears `identical`.
  std::vector<std::string> notes;

  struct CellDelta {
    std::string method;
    std::string config;
    std::uint8_t scenario = 0;
    bool only_in_a = false;
    bool only_in_b = false;
    bool flags_changed = false;
    std::int64_t ticks_a = 0;
    std::int64_t ticks_b = 0;
    std::int64_t lower_a = -1;
    std::int64_t lower_b = -1;
    // Per-category B-minus-A drift (zeros for one-sided cells).
    std::array<std::int64_t, kNumPathCategories> delta{};
  };
  // Sorted by |tick drift| descending, then (config, scenario, method)
  // — deterministic for identical inputs.
  std::vector<CellDelta> changed;

  std::size_t cells_a = 0;
  std::size_t cells_b = 0;
  std::size_t matched = 0;
  std::int64_t net_tick_drift = 0;  // sum of B-A ticks over matched cells
  std::array<std::int64_t, kNumPathCategories> net_category_drift{};
};

SnapshotDiff diff_snapshots(const Snapshot& a, const Snapshot& b);

// Deterministic renderings. Text caps the per-cell listing at
// `max_rows` (the totals always cover everything); JSON is complete.
void write_diff_text(std::ostream& os, const SnapshotDiff& d,
                     std::size_t max_rows = 20);
void write_diff_json(std::ostream& os, const SnapshotDiff& d);

}  // namespace javaflow::obs
