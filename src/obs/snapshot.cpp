#include "obs/snapshot.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>
#include <tuple>
#include <utility>

// Header-only digest helpers; no link dependency on the cache library
// (which layers above obs).
#include "cache/hash.hpp"

namespace javaflow::obs {
namespace {

constexpr std::uint32_t kMagic = 0x3153464a;  // "JFS1", little-endian

// Same fixed-width little-endian encode/decode idiom as
// cache/record.cpp, so a snapshot directory survives toolchain and host
// changes exactly like the result cache does.
class Writer {
 public:
  explicit Writer(std::string& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) { fixed(v); }
  void u64(std::uint64_t v) { fixed(v); }
  void i32(std::int32_t v) { fixed(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { fixed(static_cast<std::uint64_t>(v)); }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    out_.append(s);
  }

 private:
  template <typename T>
  void fixed(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }

  std::string& out_;
};

class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  bool ok() const { return ok_; }
  std::size_t pos() const { return pos_; }

  std::uint8_t u8() { return static_cast<std::uint8_t>(fixed<1>()); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(fixed<4>()); }
  std::uint64_t u64() { return fixed<8>(); }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  std::string str() {
    const std::uint32_t n = u32();
    if (!ok_ || bytes_.size() - pos_ < n) {
      ok_ = false;
      return {};
    }
    std::string out(bytes_.substr(pos_, n));
    pos_ += n;
    return out;
  }

 private:
  template <std::size_t N>
  std::uint64_t fixed() {
    if (!ok_ || bytes_.size() - pos_ < N) {
      ok_ = false;
      return 0;
    }
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < N; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(bytes_[pos_ + i]))
           << (8 * i);
    }
    pos_ += N;
    return v;
  }

  std::string_view bytes_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

std::uint64_t checksum(std::string_view bytes) {
  cache::Hasher h;
  h.bytes(bytes.data(), bytes.size());
  return h.digest().hi;
}

std::uint8_t cell_flags(const SnapshotCell& c) {
  return static_cast<std::uint8_t>(
      (c.fits ? 1u : 0u) | (c.completed ? 2u : 0u) |
      (c.timed_out ? 4u : 0u) | (c.exception ? 8u : 0u) |
      (c.attributed ? 16u : 0u));
}

// Minimal JSON string escaper (obs cannot reach analysis/report's).
void json_escape(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char ch : s) {
    switch (ch) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(ch));
          os << buf;
        } else {
          os << ch;
        }
    }
  }
  os << '"';
}

}  // namespace

std::string_view snapshot_scenario_name(std::uint8_t scenario) noexcept {
  switch (scenario) {
    case 0: return "bp1";
    case 1: return "bp2";
    case 2: return "trace";
  }
  return "?";
}

std::string serialize_snapshot(const Snapshot& snap) {
  std::string out;
  Writer w(out);
  w.u32(kMagic);
  w.u32(kSnapshotFormatVersion);
  w.u32(snap.attribution_fingerprint);
  w.u32(static_cast<std::uint32_t>(kNumPathCategories));
  w.str(snap.scheduler);
  w.i32(snap.stride);
  w.u32(static_cast<std::uint32_t>(snap.config_names.size()));
  for (std::size_t i = 0; i < snap.config_names.size(); ++i) {
    w.str(snap.config_names[i]);
    w.str(i < snap.config_texts.size() ? snap.config_texts[i]
                                       : std::string());
  }
  w.u32(static_cast<std::uint32_t>(snap.cells.size()));
  for (const SnapshotCell& c : snap.cells) {
    w.str(c.method);
    w.i32(c.config_index);
    w.u8(c.scenario);
    w.u8(cell_flags(c));
    w.i64(c.ticks);
    w.i64(c.lower_bound);
    for (const std::int64_t v : c.category_ticks) w.i64(v);
  }
  w.u64(checksum(out));
  return out;
}

bool deserialize_snapshot(std::string_view bytes, Snapshot& out) {
  // Trailer first: any flipped or missing byte anywhere fails here.
  if (bytes.size() < 8) return false;
  const std::string_view body = bytes.substr(0, bytes.size() - 8);
  Reader trailer(bytes.substr(bytes.size() - 8));
  if (trailer.u64() != checksum(body)) return false;

  Reader r(body);
  if (r.u32() != kMagic) return false;
  if (r.u32() != kSnapshotFormatVersion) return false;
  Snapshot snap;
  snap.attribution_fingerprint = r.u32();
  if (r.u32() != kNumPathCategories) return false;
  snap.scheduler = r.str();
  snap.stride = r.i32();
  const std::uint32_t nconfigs = r.u32();
  if (!r.ok() || nconfigs > body.size() / 8) return false;
  snap.config_names.reserve(nconfigs);
  snap.config_texts.reserve(nconfigs);
  for (std::uint32_t i = 0; i < nconfigs; ++i) {
    snap.config_names.push_back(r.str());
    snap.config_texts.push_back(r.str());
  }
  const std::uint32_t ncells = r.u32();
  if (!r.ok()) return false;
  // A cell is at least 4 (name length) + 4 + 1 + 1 + 16 + 7*8 bytes;
  // reject counts the remaining bytes cannot hold before reserving.
  if (ncells > body.size() / 32) return false;
  snap.cells.reserve(ncells);
  for (std::uint32_t i = 0; i < ncells; ++i) {
    SnapshotCell c;
    c.method = r.str();
    c.config_index = r.i32();
    const std::uint8_t scenario = r.u8();
    const std::uint8_t flags = r.u8();
    c.scenario = scenario;
    c.fits = (flags & 1u) != 0;
    c.completed = (flags & 2u) != 0;
    c.timed_out = (flags & 4u) != 0;
    c.exception = (flags & 8u) != 0;
    c.attributed = (flags & 16u) != 0;
    c.ticks = r.i64();
    c.lower_bound = r.i64();
    for (std::int64_t& v : c.category_ticks) v = r.i64();
    if (!r.ok()) return false;
    if (c.config_index < 0 ||
        static_cast<std::uint32_t>(c.config_index) >= nconfigs) {
      return false;
    }
    snap.cells.push_back(std::move(c));
  }
  if (r.pos() != body.size()) return false;  // trailing garbage
  out = std::move(snap);
  return true;
}

std::uint64_t snapshot_digest(std::string_view serialized) {
  if (serialized.size() < 8) return 0;
  Reader trailer(serialized.substr(serialized.size() - 8));
  return trailer.u64();
}

bool save_snapshot(const Snapshot& snap, const std::string& path) {
  const std::string bytes = serialize_snapshot(snap);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(out);
}

bool load_snapshot(const std::string& path, Snapshot& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  return deserialize_snapshot(buf.str(), out);
}

SnapshotDiff diff_snapshots(const Snapshot& a, const Snapshot& b) {
  SnapshotDiff d;
  d.cells_a = a.cells.size();
  d.cells_b = b.cells.size();
  if (a.attribution_fingerprint != b.attribution_fingerprint) {
    d.comparable = false;
    d.notes.push_back("attribution fingerprint differs (" +
                      std::to_string(a.attribution_fingerprint) + " vs " +
                      std::to_string(b.attribution_fingerprint) + ")");
  }
  if (a.scheduler != b.scheduler) {
    d.notes.push_back("scheduler differs (" + a.scheduler + " vs " +
                      b.scheduler + ")");
  }
  if (a.stride != b.stride) {
    d.notes.push_back("stride differs (" + std::to_string(a.stride) +
                      " vs " + std::to_string(b.stride) + ")");
  }
  if (a.config_names != b.config_names) {
    d.notes.push_back("config set differs");
  } else if (a.config_texts != b.config_texts) {
    d.notes.push_back("config parameters differ for a shared name");
  }

  auto key_of = [](const Snapshot& s, const SnapshotCell& c) {
    const std::string cfg =
        c.config_index >= 0 && static_cast<std::size_t>(c.config_index) <
                                   s.config_names.size()
            ? s.config_names[static_cast<std::size_t>(c.config_index)]
            : std::string("?");
    return std::tuple<std::string, std::uint8_t, std::string>(
        cfg, c.scenario, c.method);
  };

  std::map<std::tuple<std::string, std::uint8_t, std::string>,
           const SnapshotCell*>
      in_b;
  for (const SnapshotCell& c : b.cells) in_b[key_of(b, c)] = &c;

  std::map<std::tuple<std::string, std::uint8_t, std::string>, bool>
      seen_in_a;
  for (const SnapshotCell& ca : a.cells) {
    const auto key = key_of(a, ca);
    seen_in_a[key] = true;
    const auto it = in_b.find(key);
    if (it == in_b.end()) {
      SnapshotDiff::CellDelta cd;
      cd.method = ca.method;
      cd.config = std::get<0>(key);
      cd.scenario = ca.scenario;
      cd.only_in_a = true;
      cd.ticks_a = ca.ticks;
      cd.lower_a = ca.lower_bound;
      d.changed.push_back(std::move(cd));
      continue;
    }
    const SnapshotCell& cb = *it->second;
    ++d.matched;
    const bool flags_changed =
        ca.fits != cb.fits || ca.completed != cb.completed ||
        ca.timed_out != cb.timed_out || ca.exception != cb.exception ||
        ca.attributed != cb.attributed;
    bool categories_changed = false;
    SnapshotDiff::CellDelta cd;
    if (d.comparable) {
      for (std::size_t k = 0; k < kNumPathCategories; ++k) {
        cd.delta[k] = cb.category_ticks[k] - ca.category_ticks[k];
        if (cd.delta[k] != 0) categories_changed = true;
        d.net_category_drift[k] += cd.delta[k];
      }
    }
    d.net_tick_drift += cb.ticks - ca.ticks;
    if (ca.ticks == cb.ticks && ca.lower_bound == cb.lower_bound &&
        !flags_changed && !categories_changed) {
      continue;
    }
    cd.method = ca.method;
    cd.config = std::get<0>(key);
    cd.scenario = ca.scenario;
    cd.flags_changed = flags_changed;
    cd.ticks_a = ca.ticks;
    cd.ticks_b = cb.ticks;
    cd.lower_a = ca.lower_bound;
    cd.lower_b = cb.lower_bound;
    d.changed.push_back(std::move(cd));
  }
  for (const SnapshotCell& cb : b.cells) {
    const auto key = key_of(b, cb);
    if (seen_in_a.find(key) != seen_in_a.end()) continue;
    SnapshotDiff::CellDelta cd;
    cd.method = cb.method;
    cd.config = std::get<0>(key);
    cd.scenario = cb.scenario;
    cd.only_in_b = true;
    cd.ticks_b = cb.ticks;
    cd.lower_b = cb.lower_bound;
    d.changed.push_back(std::move(cd));
  }

  std::sort(d.changed.begin(), d.changed.end(),
            [](const SnapshotDiff::CellDelta& x,
               const SnapshotDiff::CellDelta& y) {
              const std::int64_t dx = std::abs(x.ticks_b - x.ticks_a);
              const std::int64_t dy = std::abs(y.ticks_b - y.ticks_a);
              if (dx != dy) return dx > dy;
              return std::tie(x.config, x.scenario, x.method) <
                     std::tie(y.config, y.scenario, y.method);
            });

  d.identical = d.comparable && d.notes.empty() && d.changed.empty() &&
                d.cells_a == d.cells_b;
  return d;
}

void write_diff_text(std::ostream& os, const SnapshotDiff& d,
                     std::size_t max_rows) {
  os << "snapshot diff: " << d.cells_a << " vs " << d.cells_b
     << " cells, " << d.matched << " matched\n";
  for (const std::string& n : d.notes) os << "  note: " << n << "\n";
  if (!d.comparable) {
    os << "  NOT COMPARABLE: category vectors use different attribution "
          "semantics\n";
    return;
  }
  if (d.identical) {
    os << "  identical\n";
    return;
  }
  os << "  net tick drift (B-A): " << d.net_tick_drift << "\n";
  for (std::size_t k = 0; k < kNumPathCategories; ++k) {
    if (d.net_category_drift[k] == 0) continue;
    os << "    " << path_category_name(static_cast<PathCategory>(k))
       << ": " << d.net_category_drift[k] << "\n";
  }
  os << "  changed cells: " << d.changed.size() << "\n";
  std::size_t shown = 0;
  for (const SnapshotDiff::CellDelta& c : d.changed) {
    if (shown >= max_rows) {
      os << "    ... and " << d.changed.size() - shown << " more\n";
      break;
    }
    ++shown;
    os << "    " << c.config << "/"
       << snapshot_scenario_name(c.scenario) << " " << c.method << ": ";
    if (c.only_in_a) {
      os << "only in A (ticks " << c.ticks_a << ")\n";
      continue;
    }
    if (c.only_in_b) {
      os << "only in B (ticks " << c.ticks_b << ")\n";
      continue;
    }
    os << c.ticks_a << " -> " << c.ticks_b;
    if (c.flags_changed) os << " [flags]";
    if (c.lower_a != c.lower_b) {
      os << " [bound " << c.lower_a << " -> " << c.lower_b << "]";
    }
    bool first = true;
    for (std::size_t k = 0; k < kNumPathCategories; ++k) {
      if (c.delta[k] == 0) continue;
      os << (first ? " (" : ", ")
         << path_category_name(static_cast<PathCategory>(k))
         << (c.delta[k] > 0 ? " +" : " ") << c.delta[k];
      first = false;
    }
    if (!first) os << ")";
    os << "\n";
  }
}

void write_diff_json(std::ostream& os, const SnapshotDiff& d) {
  os << "{\n  \"comparable\": " << (d.comparable ? "true" : "false")
     << ",\n  \"identical\": " << (d.identical ? "true" : "false")
     << ",\n  \"cells_a\": " << d.cells_a
     << ",\n  \"cells_b\": " << d.cells_b
     << ",\n  \"matched\": " << d.matched
     << ",\n  \"net_tick_drift\": " << d.net_tick_drift
     << ",\n  \"net_category_drift\": {";
  for (std::size_t k = 0; k < kNumPathCategories; ++k) {
    if (k != 0) os << ", ";
    json_escape(os, path_category_name(static_cast<PathCategory>(k)));
    os << ": " << d.net_category_drift[k];
  }
  os << "},\n  \"notes\": [";
  for (std::size_t i = 0; i < d.notes.size(); ++i) {
    if (i != 0) os << ", ";
    json_escape(os, d.notes[i]);
  }
  os << "],\n  \"changed\": [";
  for (std::size_t i = 0; i < d.changed.size(); ++i) {
    const SnapshotDiff::CellDelta& c = d.changed[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"method\": ";
    json_escape(os, c.method);
    os << ", \"config\": ";
    json_escape(os, c.config);
    os << ", \"scenario\": ";
    json_escape(os, snapshot_scenario_name(c.scenario));
    os << ", \"only_in_a\": " << (c.only_in_a ? "true" : "false")
       << ", \"only_in_b\": " << (c.only_in_b ? "true" : "false")
       << ", \"flags_changed\": " << (c.flags_changed ? "true" : "false")
       << ", \"ticks_a\": " << c.ticks_a << ", \"ticks_b\": " << c.ticks_b
       << ", \"lower_a\": " << c.lower_a << ", \"lower_b\": " << c.lower_b
       << ", \"delta\": {";
    for (std::size_t k = 0; k < kNumPathCategories; ++k) {
      if (k != 0) os << ", ";
      json_escape(os, path_category_name(static_cast<PathCategory>(k)));
      os << ": " << c.delta[k];
    }
    os << "}}";
  }
  os << (d.changed.empty() ? "]" : "\n  ]") << "\n}\n";
}

}  // namespace javaflow::obs
