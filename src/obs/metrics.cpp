#include "obs/metrics.hpp"

#include <algorithm>
#include <ostream>

namespace javaflow::obs {

namespace {

std::size_t bucket_of(std::uint64_t v) noexcept {
  if (v == 0) return 0;
  std::size_t b = 1;
  while (b + 1 < Histogram::kBuckets && (v >> b) != 0) ++b;
  return b;
}

void indent_to(std::ostream& os, int n) {
  for (int i = 0; i < n; ++i) os << ' ';
}

template <typename Array>
void write_u64_array(std::ostream& os, const Array& a) {
  os << '[';
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (i != 0) os << ',';
    os << static_cast<std::uint64_t>(a[i]);
  }
  os << ']';
}

void write_histogram(std::ostream& os, const Histogram& h) {
  os << "{\"count\":" << h.count << ",\"sum\":" << h.sum
     << ",\"max\":" << h.max << ",\"mean\":" << h.mean() << ",\"buckets\":";
  write_u64_array(os, h.buckets);
  os << '}';
}

}  // namespace

void Histogram::record(std::int64_t value) noexcept {
  const std::uint64_t v = value < 0 ? 0 : static_cast<std::uint64_t>(value);
  ++buckets[bucket_of(v)];
  ++count;
  sum += v;
  max = std::max(max, v);
}

void Histogram::merge(const Histogram& other) noexcept {
  for (std::size_t i = 0; i < kBuckets; ++i) buckets[i] += other.buckets[i];
  count += other.count;
  sum += other.sum;
  max = std::max(max, other.max);
}

std::string_view link_dir_name(LinkDir d) noexcept {
  switch (d) {
    case LinkDir::East: return "east";
    case LinkDir::West: return "west";
    case LinkDir::North: return "north";
    case LinkDir::South: return "south";
  }
  return "?";
}

void MetricsRegistry::node_firing(std::int32_t phys_slot,
                                  std::uint8_t opcode) noexcept {
  if (phys_slot < 0) return;
  const auto i = static_cast<std::size_t>(phys_slot);
  if (i >= firings_by_node.size()) firings_by_node.resize(i + 1, 0);
  ++firings_by_node[i];
  ++firings_by_opcode[opcode];
}

void MetricsRegistry::buffer_high_water(std::int32_t phys_slot,
                                        std::size_t depth) {
  if (phys_slot < 0) return;
  const auto i = static_cast<std::size_t>(phys_slot);
  if (i >= buffer_hwm_by_node.size()) buffer_hwm_by_node.resize(i + 1, 0);
  buffer_hwm_by_node[i] =
      std::max(buffer_hwm_by_node[i], static_cast<std::uint32_t>(depth));
}

void MetricsRegistry::mesh_link(std::int32_t src_phys_slot, LinkDir dir) {
  ++mesh_dir_hops[static_cast<std::size_t>(dir)];
  ++mesh_link_load[{src_phys_slot, static_cast<std::uint8_t>(dir)}];
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  serial_messages += other.serial_messages;
  serial_hop_ticks += other.serial_hop_ticks;
  for (std::size_t i = 0; i < kNumCommands; ++i) {
    serial_commands[i] += other.serial_commands[i];
  }
  mesh_messages += other.mesh_messages;
  mesh_transit_cycles += other.mesh_transit_cycles;
  for (std::size_t i = 0; i < kNumLinkDirs; ++i) {
    mesh_dir_hops[i] += other.mesh_dir_hops[i];
  }
  for (const auto& [link, n] : other.mesh_link_load) {
    mesh_link_load[link] += n;
  }
  if (firings_by_node.size() < other.firings_by_node.size()) {
    firings_by_node.resize(other.firings_by_node.size(), 0);
  }
  for (std::size_t i = 0; i < other.firings_by_node.size(); ++i) {
    firings_by_node[i] += other.firings_by_node[i];
  }
  if (buffer_hwm_by_node.size() < other.buffer_hwm_by_node.size()) {
    buffer_hwm_by_node.resize(other.buffer_hwm_by_node.size(), 0);
  }
  for (std::size_t i = 0; i < other.buffer_hwm_by_node.size(); ++i) {
    buffer_hwm_by_node[i] =
        std::max(buffer_hwm_by_node[i], other.buffer_hwm_by_node[i]);
  }
  for (std::size_t i = 0; i < kNumOpcodes; ++i) {
    firings_by_opcode[i] += other.firings_by_opcode[i];
  }
  for (std::size_t i = 0; i < kNumGroups; ++i) {
    exec_ticks_by_group[i].merge(other.exec_ticks_by_group[i]);
  }
  fire_stall_ticks.merge(other.fire_stall_ticks);
  tail_hold_ticks.merge(other.tail_hold_ticks);
  for (std::size_t i = 0; i < kNumRingServices; ++i) {
    ring_requests[i] += other.ring_requests[i];
    ring_latency_ticks[i].merge(other.ring_latency_ticks[i]);
  }
  runs += other.runs;
}

void MetricsRegistry::write_json(std::ostream& os, int indent) const {
  const int in1 = indent + 2;
  os << "{\n";
  indent_to(os, in1);
  os << "\"runs\": " << runs << ",\n";
  indent_to(os, in1);
  os << "\"serial\": {\"messages\":" << serial_messages
     << ",\"hop_ticks\":" << serial_hop_ticks << ",\"commands\":";
  write_u64_array(os, serial_commands);
  os << "},\n";
  indent_to(os, in1);
  os << "\"mesh\": {\"messages\":" << mesh_messages
     << ",\"transit_cycles\":" << mesh_transit_cycles << ",\"dir_hops\":{";
  for (std::size_t i = 0; i < kNumLinkDirs; ++i) {
    if (i != 0) os << ',';
    os << '"' << link_dir_name(static_cast<LinkDir>(i)) << "\":"
       << mesh_dir_hops[i];
  }
  os << "},\"links\":[";
  bool first = true;
  for (const auto& [link, n] : mesh_link_load) {
    if (!first) os << ',';
    first = false;
    os << "{\"slot\":" << link.first << ",\"dir\":\""
       << link_dir_name(static_cast<LinkDir>(link.second))
       << "\",\"messages\":" << n << '}';
  }
  os << "]},\n";
  indent_to(os, in1);
  os << "\"nodes\": {\"firings\":";
  write_u64_array(os, firings_by_node);
  os << ",\"buffer_high_water\":";
  write_u64_array(os, buffer_hwm_by_node);
  os << "},\n";
  indent_to(os, in1);
  os << "\"firings_by_opcode\": ";
  write_u64_array(os, firings_by_opcode);
  os << ",\n";
  indent_to(os, in1);
  os << "\"exec_ticks_by_group\": [";
  for (std::size_t i = 0; i < kNumGroups; ++i) {
    if (i != 0) os << ',';
    write_histogram(os, exec_ticks_by_group[i]);
  }
  os << "],\n";
  indent_to(os, in1);
  os << "\"fire_stall_ticks\": ";
  write_histogram(os, fire_stall_ticks);
  os << ",\n";
  indent_to(os, in1);
  os << "\"tail_hold_ticks\": ";
  write_histogram(os, tail_hold_ticks);
  os << ",\n";
  indent_to(os, in1);
  os << "\"ring\": {\"requests\":";
  write_u64_array(os, ring_requests);
  os << ",\"latency_ticks\":[";
  for (std::size_t i = 0; i < kNumRingServices; ++i) {
    if (i != 0) os << ',';
    write_histogram(os, ring_latency_ticks[i]);
  }
  os << "]}\n";
  indent_to(os, indent);
  os << "}";
}

}  // namespace javaflow::obs
