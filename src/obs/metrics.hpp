// Telemetry metrics for the simulator (observability layer).
//
// The Chapter 7 evaluation reports only end-of-run aggregates (IPC, FoM,
// Table 26 parallelism), which says a configuration is slow but not
// *where* the ticks went. A MetricsRegistry breaks a run down along the
// axes the paper's machine model exposes:
//   * mesh operand traffic per link-direction and per physical link
//     (§6.1 Figure 18 — X-Y routed Manhattan transfers),
//   * serial-chain token messages, hop ticks, and per-command counts
//     (§6.1 Figure 17 — the ordered forward/reverse networks),
//   * per-node firing counts and operand-buffer high-water marks
//     (§4.2 Figure 13 — Instruction Node resources),
//   * memory / GPP ring request counts and service-latency histograms
//     (§6.1 Figure 19, Figure 25 service times),
//   * per-group execution-cost histograms (Table 17) and firing-stall
//     histograms (ticks from HEAD arrival to firing start).
//
// A registry is attached to an Engine via EngineOptions::metrics; a null
// pointer (the default) makes every hook a single branch, so the
// instrumented engine is a guaranteed no-op when telemetry is off
// (verified by bench/sweep_speed staying within noise of the pre-layer
// baseline). Counters accumulate across runs; merge() folds lane-local
// registries into a sweep-level aggregate. All mutating operations are
// commutative (add / max / bucket-add), so a parallel sweep's merged
// registry is identical to the serial sweep's for any thread count.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string_view>
#include <utility>
#include <vector>

#include "net/message.hpp"

namespace javaflow::obs {

// Power-of-two-bucket histogram for tick / cycle distributions. Bucket 0
// counts zeros; bucket i >= 1 counts values in [2^(i-1), 2^i). The top
// bucket absorbs everything past 2^(kBuckets-2) ticks, far beyond the
// engine's 4M-tick budget.
struct Histogram {
  static constexpr std::size_t kBuckets = 26;

  std::array<std::uint64_t, kBuckets> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;

  void record(std::int64_t value) noexcept;
  void merge(const Histogram& other) noexcept;
  double mean() const noexcept {
    return count > 0 ? static_cast<double>(sum) / static_cast<double>(count)
                     : 0.0;
  }

  bool operator==(const Histogram&) const = default;
};

// Mesh link directions under X-Y routing (x first, then y). East is +x,
// North is +y in the serpentine grid of net::MeshNetwork.
enum class LinkDir : std::uint8_t { East, West, North, South };
inline constexpr std::size_t kNumLinkDirs = 4;
std::string_view link_dir_name(LinkDir d) noexcept;

struct MetricsRegistry {
  static constexpr std::size_t kNumCommands = 16;  // >= net::Command values
  static constexpr std::size_t kNumGroups = 16;    // >= bytecode::Group values
  static constexpr std::size_t kNumRingServices = 4;
  static constexpr std::size_t kNumOpcodes = 256;

  // ---- serial (ordered) network ----
  std::uint64_t serial_messages = 0;
  std::uint64_t serial_hop_ticks = 0;  // transit ticks summed over messages
  std::array<std::uint64_t, kNumCommands> serial_commands{};

  // ---- mesh (DataFlow) network ----
  std::uint64_t mesh_messages = 0;
  std::uint64_t mesh_transit_cycles = 0;  // mesh cycles summed over messages
  std::array<std::uint64_t, kNumLinkDirs> mesh_dir_hops{};
  // Per-link utilization: (source physical slot, LinkDir) -> traversals.
  // Ordered map so iteration (and JSON export) is deterministic.
  std::map<std::pair<std::int32_t, std::uint8_t>, std::uint64_t> mesh_link_load;

  // ---- per-node (physical chain slot) ----
  std::vector<std::uint64_t> firings_by_node;     // execution starts
  std::vector<std::uint32_t> buffer_hwm_by_node;  // operand-buffer high water

  // ---- execution ----
  std::array<std::uint64_t, kNumOpcodes> firings_by_opcode{};
  std::array<Histogram, kNumGroups> exec_ticks_by_group;
  // Ticks from HEAD-token arrival at a node to its firing start: the
  // operand-wait stall the aggregate IPC hides.
  Histogram fire_stall_ticks;
  // Ticks a TAIL token is held at an unfired node (§6.3: the TAIL waits
  // for every instruction above it to fire).
  Histogram tail_hold_ticks;

  // ---- memory / GPP ring ----
  std::array<std::uint64_t, kNumRingServices> ring_requests{};
  std::array<Histogram, kNumRingServices> ring_latency_ticks;

  std::uint64_t runs = 0;  // engine runs that reported into this registry

  // ---- recording helpers (engine-side) ----
  void node_firing(std::int32_t phys_slot, std::uint8_t opcode) noexcept;
  void buffer_high_water(std::int32_t phys_slot, std::size_t depth);
  void mesh_link(std::int32_t src_phys_slot, LinkDir dir);

  // Commutative fold of another registry into this one.
  void merge(const MetricsRegistry& other);

  // Deterministic JSON export (stable key order, no floats beyond means).
  void write_json(std::ostream& os, int indent = 0) const;

  bool operator==(const MetricsRegistry&) const = default;
};

}  // namespace javaflow::obs
