// Multi-method fabric management (paper §6.2 "Management and Cleanup",
// §4.3 atomic-execution limits, and the Chapter 8 superposition claim).
//
// The GPP "has to have some idea about how many methods are deployed and
// how they are being utilized": this manager owns one physical fabric's
// slot occupancy, loads methods greedily around existing residents
// (busy nodes pass the CMD_LOAD_INSTRUCTION stream along), enforces the
// one-thread-per-method rule through Anchor busy state, and frees slots
// again on CMD_UNLOAD_INSTRUCTION.
//
// Every resident carries a pre-lowered sim::ExecPlan. Methods placed at
// a row-aligned uniform shift of their canonical (fresh-fabric) layout
// share one canonical plan — the resident stores only its phys_delta —
// while irregular placements (packed around other residents) get a
// dedicated lowering. The serving frontend (serve::FabricServer) leases
// residents via begin_execute()/end_execute() and feeds their
// (plan, phys_delta) pairs to a shared sim::MultiEngine; plain
// execute() keeps the one-shot single-method path on the manager's
// persistent engine (workspace reuse + the plan cache here).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "bytecode/method.hpp"
#include "fabric/loader.hpp"
#include "fabric/resolver.hpp"
#include "sim/branch_predictor.hpp"
#include "sim/config.hpp"
#include "sim/engine.hpp"
#include "sim/plan.hpp"

namespace javaflow {

class FabricManager {
 public:
  using MethodId = std::int32_t;

  struct Resident {
    MethodId id = -1;
    const bytecode::Method* method = nullptr;
    std::int32_t anchor_slot = -1;  // first slot of the method's region
    fabric::Placement placement;
    fabric::ResolutionResult resolution;
    bool busy = false;  // a thread is executing (Anchor busy, §4.3)
    // Pre-lowered plan: either the method's shared canonical plan (with
    // phys_delta rebasing its physical indices) or a dedicated lowering
    // of this exact placement (phys_delta 0).
    const sim::ExecPlan* plan = nullptr;
    std::int32_t phys_delta = 0;
    bool plan_shared = false;
    std::unique_ptr<sim::ExecPlan> dedicated_plan;
  };

  explicit FabricManager(sim::MachineConfig config,
                         sim::EngineOptions engine_options = {});

  // Loads + resolves a method around the existing residents, preferring
  // `first_slot` (falling back to a scan from 0 when the hint does not
  // fit). Returns nullopt if it cannot be placed within the node budget.
  std::optional<MethodId> load(const bytecode::Method& m,
                               const bytecode::ConstantPool& pool,
                               std::int32_t first_slot = 0);

  // CMD_UNLOAD_INSTRUCTION: frees every slot the method held. Fails (and
  // changes nothing) while the method is executing.
  bool unload(MethodId id);

  // Executes a resident method under the atomic-execution rule: a busy
  // Anchor rejects re-entry (§4.3 — "each individual method may have
  // only one thread active at a time").
  std::optional<sim::RunMetrics> execute(
      MethodId id, sim::BranchPredictor::Scenario scenario);

  // Leases a resident for external execution (the serving frontend's
  // MultiEngine): marks the Anchor busy and hands back the resident, or
  // null when the method is unknown or already executing. The lease must
  // be returned with end_execute() before unload/execute can succeed.
  const Resident* begin_execute(MethodId id);
  void end_execute(MethodId id);

  // Garbage-collection support (§6.4): quiesce the method's execution
  // (QUIESE_TOKEN down its chain), then force every storage node to
  // re-resolve its Constant Pool pointers (RESETADDRESS_TOKEN). Returns
  // the serial cycles the two passes consume, or nullopt if the method
  // is unknown or currently executing.
  std::optional<std::int64_t> quiesce_and_rebind(MethodId id);

  // Slot span (max_slot + 1) of the method's canonical fresh-fabric
  // layout — what an aligned-anchor scan must find free — or nullopt
  // when the method cannot fit even on an empty fabric.
  std::optional<std::int32_t> canonical_span(const bytecode::Method& m,
                                             const bytecode::ConstantPool& pool);

  const Resident* find(MethodId id) const;
  std::size_t resident_count() const noexcept { return residents_.size(); }
  // Instruction Nodes currently holding instructions.
  std::int32_t occupied_slots() const noexcept { return occupied_count_; }
  std::int32_t capacity() const noexcept { return config_.capacity; }
  const std::vector<bool>& occupied_map() const noexcept { return occupied_; }
  const sim::MachineConfig& config() const noexcept { return config_; }
  // Plan-cache telemetry: residents that shared a canonical plan vs.
  // placements that forced a dedicated lowering.
  std::int64_t plans_shared() const noexcept { return plans_shared_; }
  std::int64_t plans_lowered() const noexcept { return plans_lowered_; }

 private:
  // Canonical fresh-fabric lowering of one method, shared by every
  // row-aligned residency. Keyed by method identity (pointer + size +
  // name, like the engine workspace caches) and kept across unloads so
  // a method cycled through the fabric never re-lowers.
  struct Canon {
    std::size_t code_size = 0;
    std::string name;
    std::unique_ptr<sim::ExecPlan> plan;
  };

  Canon& ensure_canon(const bytecode::Method& m,
                      const bytecode::ConstantPool& pool);

  sim::MachineConfig config_;
  sim::Engine engine_;
  fabric::Fabric fabric_;
  std::vector<bool> occupied_;
  std::int32_t occupied_count_ = 0;
  MethodId next_id_ = 1;
  std::map<MethodId, Resident> residents_;
  sim::PlanMode plan_mode_ = sim::PlanMode::On;
  std::map<const bytecode::Method*, Canon> canon_;
  sim::ExecPlanBuilder plan_builder_;
  std::int64_t plans_shared_ = 0;
  std::int64_t plans_lowered_ = 0;
};

}  // namespace javaflow
