// Multi-method fabric management (paper §6.2 "Management and Cleanup",
// §4.3 atomic-execution limits, and the Chapter 8 superposition claim).
//
// The GPP "has to have some idea about how many methods are deployed and
// how they are being utilized": this manager owns one physical fabric's
// slot occupancy, loads methods greedily around existing residents
// (busy nodes pass the CMD_LOAD_INSTRUCTION stream along), enforces the
// one-thread-per-method rule through Anchor busy state, and frees slots
// again on CMD_UNLOAD_INSTRUCTION.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "bytecode/method.hpp"
#include "fabric/loader.hpp"
#include "fabric/resolver.hpp"
#include "sim/branch_predictor.hpp"
#include "sim/config.hpp"
#include "sim/engine.hpp"

namespace javaflow {

class FabricManager {
 public:
  using MethodId = std::int32_t;

  struct Resident {
    MethodId id = -1;
    const bytecode::Method* method = nullptr;
    std::int32_t anchor_slot = -1;  // first slot of the method's region
    fabric::Placement placement;
    fabric::ResolutionResult resolution;
    bool busy = false;  // a thread is executing (Anchor busy, §4.3)
  };

  explicit FabricManager(sim::MachineConfig config,
                         sim::EngineOptions engine_options = {});

  // Loads + resolves a method around the existing residents. Returns
  // nullopt if it cannot be placed within the node budget.
  std::optional<MethodId> load(const bytecode::Method& m,
                               const bytecode::ConstantPool& pool);

  // CMD_UNLOAD_INSTRUCTION: frees every slot the method held. Fails (and
  // changes nothing) while the method is executing.
  bool unload(MethodId id);

  // Executes a resident method under the atomic-execution rule: a busy
  // Anchor rejects re-entry (§4.3 — "each individual method may have
  // only one thread active at a time").
  std::optional<sim::RunMetrics> execute(
      MethodId id, sim::BranchPredictor::Scenario scenario);

  // Garbage-collection support (§6.4): quiesce the method's execution
  // (QUIESE_TOKEN down its chain), then force every storage node to
  // re-resolve its Constant Pool pointers (RESETADDRESS_TOKEN). Returns
  // the serial cycles the two passes consume, or nullopt if the method
  // is unknown or currently executing.
  std::optional<std::int64_t> quiesce_and_rebind(MethodId id);

  const Resident* find(MethodId id) const;
  std::size_t resident_count() const noexcept { return residents_.size(); }
  // Instruction Nodes currently holding instructions.
  std::int32_t occupied_slots() const noexcept { return occupied_count_; }
  std::int32_t capacity() const noexcept { return config_.capacity; }

 private:
  sim::MachineConfig config_;
  sim::Engine engine_;
  fabric::Fabric fabric_;
  std::vector<bool> occupied_;
  std::int32_t occupied_count_ = 0;
  MethodId next_id_ = 1;
  std::map<MethodId, Resident> residents_;
};

}  // namespace javaflow
