// JavaFlow public API — the façade a downstream user programs against.
//
// A `JavaFlowMachine` is one machine configuration (Table 15). Methods go
// through the paper's lifecycle explicitly:
//
//   JavaFlowMachine machine(sim::config_by_name("Hetero2"));
//   auto deployed = machine.deploy(method, program.pool);   // load+resolve
//   auto metrics  = machine.execute(deployed, BP1);         // token bundle
//
// `deploy` performs the greedy fabric load (Figure 20) and the two-pass
// serial address resolution (§6.2); `execute` launches the HEAD / MEMORY /
// REGISTER... / TAIL bundle (Figure 23) and runs to the Return. All
// intermediate artifacts (placement, dataflow graph, resolution metrics)
// are exposed for analysis.
#pragma once

#include <memory>
#include <stdexcept>
#include <string>

#include "bytecode/assembler.hpp"
#include "bytecode/method.hpp"
#include "fabric/loader.hpp"
#include "fabric/resolver.hpp"
#include "sim/branch_predictor.hpp"
#include "sim/config.hpp"
#include "sim/engine.hpp"

namespace javaflow {

// A method loaded into the fabric with resolved DataFlow addresses.
struct DeployedMethod {
  const bytecode::Method* method = nullptr;
  fabric::Placement placement;
  fabric::ResolutionResult resolution;

  bool ok() const noexcept { return placement.fits && resolution.ok; }
};

class JavaFlowMachine {
 public:
  explicit JavaFlowMachine(sim::MachineConfig config,
                           sim::EngineOptions engine_options = {})
      : config_(std::move(config)),
        engine_(config_, engine_options) {}

  const sim::MachineConfig& config() const noexcept { return config_; }

  // Load + resolve (paper §6.2). Does not throw on capacity misses —
  // check DeployedMethod::ok(); the paper's filters exclude such methods.
  DeployedMethod deploy(const bytecode::Method& m,
                        const bytecode::ConstantPool& pool) {
    DeployedMethod d;
    d.method = &m;
    fabric::Fabric fabric(config_.fabric_options());
    d.placement = fabric::load_method(fabric, m);
    if (!d.placement.fits) return d;
    d.resolution = fabric::resolve(fabric, m, d.placement, pool);
    return d;
  }

  // Execute a deployed method under a branch scenario.
  sim::RunMetrics execute(const DeployedMethod& d,
                          sim::BranchPredictor::Scenario scenario) {
    if (!d.ok()) {
      throw std::runtime_error("execute: method is not deployed");
    }
    sim::BranchPredictor predictor(scenario);
    return engine_.run(*d.method, d.resolution.graph, predictor);
  }
  sim::RunMetrics execute(const DeployedMethod& d,
                          sim::BranchPredictor& predictor) {
    if (!d.ok()) {
      throw std::runtime_error("execute: method is not deployed");
    }
    return engine_.run(*d.method, d.resolution.graph, predictor);
  }

 private:
  sim::MachineConfig config_;
  sim::Engine engine_;
};

}  // namespace javaflow
