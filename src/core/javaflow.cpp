#include "core/javaflow.hpp"
