#include "core/fabric_manager.hpp"

namespace javaflow {

FabricManager::FabricManager(sim::MachineConfig config,
                             sim::EngineOptions engine_options)
    : config_(std::move(config)),
      engine_(config_, engine_options),
      fabric_(config_.fabric_options()),
      occupied_(static_cast<std::size_t>(config_.capacity), false) {}

std::optional<FabricManager::MethodId> FabricManager::load(
    const bytecode::Method& m, const bytecode::ConstantPool& pool) {
  fabric::Placement placement =
      fabric::load_method(fabric_, m, occupied_, /*first_slot=*/0);
  if (!placement.fits) return std::nullopt;
  fabric::ResolutionResult resolution =
      fabric::resolve(fabric_, m, placement, pool);
  if (!resolution.ok) return std::nullopt;

  Resident r;
  r.id = next_id_++;
  r.method = &m;
  r.anchor_slot = placement.slot_of.empty() ? -1 : placement.slot_of[0];
  for (const std::int32_t slot : placement.slot_of) {
    occupied_[static_cast<std::size_t>(slot)] = true;
  }
  occupied_count_ += static_cast<std::int32_t>(placement.slot_of.size());
  r.placement = std::move(placement);
  r.resolution = std::move(resolution);
  const MethodId id = r.id;
  residents_.emplace(id, std::move(r));
  return id;
}

bool FabricManager::unload(MethodId id) {
  auto it = residents_.find(id);
  if (it == residents_.end() || it->second.busy) return false;
  for (const std::int32_t slot : it->second.placement.slot_of) {
    occupied_[static_cast<std::size_t>(slot)] = false;
  }
  occupied_count_ -=
      static_cast<std::int32_t>(it->second.placement.slot_of.size());
  residents_.erase(it);
  return true;
}

std::optional<sim::RunMetrics> FabricManager::execute(
    MethodId id, sim::BranchPredictor::Scenario scenario) {
  auto it = residents_.find(id);
  if (it == residents_.end() || it->second.busy) {
    return std::nullopt;  // unknown method or Anchor busy (§4.3)
  }
  it->second.busy = true;
  sim::BranchPredictor predictor(scenario);
  sim::RunMetrics metrics = engine_.run(
      *it->second.method, it->second.resolution.graph,
      it->second.placement, predictor);
  it->second.busy = false;
  return metrics;
}

std::optional<std::int64_t> FabricManager::quiesce_and_rebind(MethodId id) {
  auto it = residents_.find(id);
  if (it == residents_.end() || it->second.busy) return std::nullopt;
  const Resident& r = it->second;
  // Two full serial passes over the method's span: the QUIESE_TOKEN stops
  // execution, then the RESETADDRESS_TOKEN walks every node; storage
  // nodes re-fetch their Heap/Method-Area pointers through the ring.
  const std::int64_t span =
      r.placement.max_slot - r.anchor_slot + 1;
  std::int64_t storage_nodes = 0;
  for (std::size_t i = 0; i < r.method->code.size(); ++i) {
    const bytecode::Group g = r.method->code[i].group();
    if (g == bytecode::Group::MemRead || g == bytecode::Group::MemWrite ||
        g == bytecode::Group::MemConstant) {
      ++storage_nodes;
      fabric_.ring().record_request(net::RingService::ConstantRead);
    }
  }
  // Pointer refreshes overlap the serial walk (each storage node issues
  // its ring request as the token passes); the total cost is the two
  // token circulations plus the last node's outstanding ring trip.
  const std::int64_t tail_trip =
      storage_nodes > 0 ? fabric_.ring().service_mesh_cycles(
                              net::RingService::ConstantRead)
                        : 0;
  return 2 * span + tail_trip;
}

const FabricManager::Resident* FabricManager::find(MethodId id) const {
  auto it = residents_.find(id);
  return it == residents_.end() ? nullptr : &it->second;
}

}  // namespace javaflow
