#include "core/fabric_manager.hpp"

#include <algorithm>

#include "fabric/dataflow_graph.hpp"

namespace javaflow {

FabricManager::FabricManager(sim::MachineConfig config,
                             sim::EngineOptions engine_options)
    : config_(std::move(config)),
      engine_(config_, engine_options),
      fabric_(config_.fabric_options()),
      occupied_(static_cast<std::size_t>(config_.capacity), false),
      plan_mode_(sim::resolve_plan_mode(engine_options.plan)) {}

FabricManager::Canon& FabricManager::ensure_canon(
    const bytecode::Method& m, const bytecode::ConstantPool& pool) {
  Canon& c = canon_[&m];
  if (c.plan != nullptr && c.code_size == m.code.size() && c.name == m.name) {
    return c;
  }
  // First sighting (or a recycled allocation holding a different
  // method): lower the fresh-fabric canonical layout once.
  const fabric::DataflowGraph graph =
      fabric::build_dataflow_graph(m, pool);
  c.plan = std::make_unique<sim::ExecPlan>();
  plan_builder_.build_into(*c.plan, m, graph, nullptr, config_);
  c.code_size = m.code.size();
  c.name = m.name;
  return c;
}

std::optional<std::int32_t> FabricManager::canonical_span(
    const bytecode::Method& m, const bytecode::ConstantPool& pool) {
  const Canon& c = ensure_canon(m, pool);
  if (!c.plan->fits()) return std::nullopt;
  return c.plan->max_slot() + 1;
}

std::optional<FabricManager::MethodId> FabricManager::load(
    const bytecode::Method& m, const bytecode::ConstantPool& pool,
    std::int32_t first_slot) {
  fabric::Placement placement =
      fabric::load_method(fabric_, m, occupied_, first_slot);
  if (!placement.fits && first_slot != 0) {
    placement = fabric::load_method(fabric_, m, occupied_, /*first_slot=*/0);
  }
  if (!placement.fits) return std::nullopt;
  fabric::ResolutionResult resolution =
      fabric::resolve(fabric_, m, placement, pool);
  if (!resolution.ok) return std::nullopt;

  Resident r;
  r.id = next_id_++;
  r.method = &m;
  r.anchor_slot = placement.slot_of.empty() ? -1 : placement.slot_of[0];
  for (const std::int32_t slot : placement.slot_of) {
    occupied_[static_cast<std::size_t>(slot)] = true;
  }
  occupied_count_ += static_cast<std::int32_t>(placement.slot_of.size());

  // Plan selection: a placement that is the canonical layout shifted by
  // a whole number of fabric rows shares the canonical plan (row shifts
  // preserve the full timing model — docs/SERVING.md); anything
  // irregular gets its own lowering of this exact placement.
  const Canon& canon = ensure_canon(m, pool);
  const std::int32_t idus = std::max(config_.idus_per_node, 1);
  bool share = canon.plan->fits() &&
               canon.plan->node_count() ==
                   static_cast<std::int32_t>(placement.slot_of.size()) &&
               !placement.slot_of.empty();
  std::int32_t delta = 0;
  if (share) {
    delta = placement.slot_of[0] - canon.plan->slot()[0];
    share = delta >= 0 && delta % idus == 0 &&
            (delta / idus) % std::max(config_.width, 1) == 0;
  }
  if (share) {
    const std::int32_t* canon_slot = canon.plan->slot();
    for (std::size_t i = 0; i < placement.slot_of.size(); ++i) {
      if (placement.slot_of[i] !=
          canon_slot[i] + delta) {
        share = false;
        break;
      }
    }
  }
  if (share) {
    r.plan = canon.plan.get();
    r.phys_delta = delta / idus;
    r.plan_shared = true;
    ++plans_shared_;
  } else {
    r.dedicated_plan = std::make_unique<sim::ExecPlan>();
    plan_builder_.build_into(*r.dedicated_plan, m, resolution.graph,
                             &placement, config_);
    r.plan = r.dedicated_plan.get();
    r.phys_delta = 0;
    ++plans_lowered_;
  }

  r.placement = std::move(placement);
  r.resolution = std::move(resolution);
  const MethodId id = r.id;
  residents_.emplace(id, std::move(r));
  return id;
}

bool FabricManager::unload(MethodId id) {
  auto it = residents_.find(id);
  if (it == residents_.end() || it->second.busy) return false;
  for (const std::int32_t slot : it->second.placement.slot_of) {
    occupied_[static_cast<std::size_t>(slot)] = false;
  }
  occupied_count_ -=
      static_cast<std::int32_t>(it->second.placement.slot_of.size());
  residents_.erase(it);
  return true;
}

std::optional<sim::RunMetrics> FabricManager::execute(
    MethodId id, sim::BranchPredictor::Scenario scenario) {
  auto it = residents_.find(id);
  if (it == residents_.end() || it->second.busy) {
    return std::nullopt;  // unknown method or Anchor busy (§4.3)
  }
  Resident& r = it->second;
  r.busy = true;
  sim::BranchPredictor predictor(scenario);
  sim::RunMetrics metrics;
  if (plan_mode_ == sim::PlanMode::On && r.plan != nullptr &&
      r.plan->fits()) {
    // Plan path on the persistent engine: a shared canonical plan runs
    // in its own frame, so only max_slot needs rebasing to the actual
    // placement (row-shift invariance covers every other field).
    metrics = engine_.run(*r.method, *r.plan, predictor);
    metrics.max_slot = r.placement.max_slot;
  } else {
    metrics = engine_.run(*r.method, r.resolution.graph, r.placement,
                          predictor);
  }
  r.busy = false;
  return metrics;
}

const FabricManager::Resident* FabricManager::begin_execute(MethodId id) {
  auto it = residents_.find(id);
  if (it == residents_.end() || it->second.busy) return nullptr;
  it->second.busy = true;
  return &it->second;
}

void FabricManager::end_execute(MethodId id) {
  auto it = residents_.find(id);
  if (it != residents_.end()) it->second.busy = false;
}

std::optional<std::int64_t> FabricManager::quiesce_and_rebind(MethodId id) {
  auto it = residents_.find(id);
  if (it == residents_.end() || it->second.busy) return std::nullopt;
  const Resident& r = it->second;
  // Two full serial passes over the method's span: the QUIESE_TOKEN stops
  // execution, then the RESETADDRESS_TOKEN walks every node; storage
  // nodes re-fetch their Heap/Method-Area pointers through the ring.
  const std::int64_t span =
      r.placement.max_slot - r.anchor_slot + 1;
  std::int64_t storage_nodes = 0;
  for (std::size_t i = 0; i < r.method->code.size(); ++i) {
    const bytecode::Group g = r.method->code[i].group();
    if (g == bytecode::Group::MemRead || g == bytecode::Group::MemWrite ||
        g == bytecode::Group::MemConstant) {
      ++storage_nodes;
      fabric_.ring().record_request(net::RingService::ConstantRead);
    }
  }
  // Pointer refreshes overlap the serial walk (each storage node issues
  // its ring request as the token passes); the total cost is the two
  // token circulations plus the last node's outstanding ring trip.
  const std::int64_t tail_trip =
      storage_nodes > 0 ? fabric_.ring().service_mesh_cycles(
                              net::RingService::ConstantRead)
                        : 0;
  return 2 * span + tail_trip;
}

const FabricManager::Resident* FabricManager::find(MethodId id) const {
  auto it = residents_.find(id);
  return it == residents_.end() ? nullptr : &it->second;
}

}  // namespace javaflow
