// Shared seeded-RNG utilities: every reproducible random stream in the
// tree derives from one explicit 64-bit seed through this header.
//
// Two engines live here:
//
//   * SplitMix64 — the canonical splitmix64 mixer (Steele, Lea &
//     Flood, "Fast splittable pseudorandom number generators"). Its
//     output is a pure function of the seed and the draw index — no
//     distribution objects, no libstdc++ internals — so streams are
//     bit-identical across compilers, standard libraries, and thread
//     counts. All NEW consumers (the serving request stream, future
//     samplers) use this engine.
//
//   * RandomSource<std::mt19937_64> — the corpus generator's historical
//     engine behind the same helper vocabulary. The generator's
//     mt19937_64 streams are load-bearing: bench/reference_stride32.jfs
//     and the corpus distribution tests pin the exact methods the
//     historical draws produce, so the generator keeps its engine and
//     only the helper methods (below / chance / uniform01 / pick) moved
//     here. Do not switch the generator to SplitMix64 without
//     regenerating every golden artifact.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace javaflow::util {

// One splitmix64 step: advances `state` by the golden-gamma increment
// and returns the mixed output.
constexpr std::uint64_t splitmix64_next(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Deterministic splittable generator. Satisfies
// std::uniform_random_bit_generator, but the helpers below avoid
// std::*_distribution on purpose — their draw sequences are
// implementation-defined, and serving reports must be bit-identical
// everywhere.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr SplitMix64(std::uint64_t seed) noexcept
      : state_(seed) {}

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  constexpr result_type operator()() noexcept {
    return splitmix64_next(state_);
  }

  // Decorrelated substream: mixes the stream tag through the generator
  // so `fork(a)` and `fork(b)` never overlap for a != b (each fork's
  // seed is one full splitmix64 mix away from any parent draw).
  constexpr SplitMix64 fork(std::uint64_t stream) const noexcept {
    std::uint64_t s = state_ + 0xbf58476d1ce4e5b9ULL * (stream + 1);
    return SplitMix64(splitmix64_next(s));
  }

  // Uniform integer in [0, n) by 64x64 fixed-point scaling (Lemire,
  // without the rejection step — the bias is < 2^-32 for any n the
  // simulator draws, and determinism beats exactness here).
  constexpr std::uint64_t below(std::uint64_t n) noexcept {
    const std::uint64_t x = (*this)();
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(x) * n) >> 64);
  }

  // Uniform double in [0, 1): top 53 bits of one draw.
  constexpr double uniform01() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  constexpr bool chance(double p) noexcept { return uniform01() < p; }

 private:
  std::uint64_t state_;
};

// The seeded-draw vocabulary shared by the corpus generator
// (Engine = std::mt19937_64 — golden streams, see the header comment)
// and anything else that carries its own engine type.
template <class Engine>
class RandomSource {
 public:
  explicit RandomSource(std::uint64_t seed) : rng_(seed) {}

  Engine& engine() noexcept { return rng_; }

  // Modulo draw, exactly the corpus generator's historical `rnd()`
  // expression (uint32 truncation of n included).
  int below(int n) {
    return static_cast<int>(rng_() % static_cast<std::uint32_t>(n));
  }

  double uniform01() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(rng_);
  }

  bool chance(double p) { return uniform01() < p; }

  int pick(const std::vector<int>& v) {
    return v[static_cast<std::size_t>(below(static_cast<int>(v.size())))];
  }

 private:
  Engine rng_;
};

}  // namespace javaflow::util
