// A small fixed-size worker pool for embarrassingly parallel sweeps.
//
// The pool is deliberately work-stealing-free: `parallel_for` hands out
// indices from a single atomic counter, so each worker ("lane") drains
// the next unclaimed index. Lanes are stable identifiers in
// [0, size()), which lets callers keep per-lane scratch state (engines,
// arenas) alive across items without locking.
//
// Tasks must not throw: an exception escaping a worker terminates the
// process (there is no cross-thread exception channel). The simulator's
// hot paths are noexcept in practice; keep it that way.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace javaflow::util {

class ThreadPool {
 public:
  // threads == 0 picks one worker per hardware thread.
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  // Enqueues one task. Returns immediately.
  void submit(std::function<void()> task);

  // Blocks until the queue is empty and every worker is idle.
  void wait_idle();

  // Runs body(index, lane) for every index in [0, n), distributing
  // indices dynamically over min(size(), n) lanes, and blocks until all
  // are done. With n <= 1 or size() <= 1 the body runs inline on the
  // calling thread (lane 0) — no handoff, no synchronization.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t index,
                                             unsigned lane)>& body);

  // max(1, std::thread::hardware_concurrency()).
  static unsigned hardware_threads() noexcept;

  // Maps a user-facing thread request to a worker count: values >= 1
  // are taken literally, anything else (0 = "auto") resolves to
  // hardware_threads().
  static unsigned resolve(int requested) noexcept;

  // resolve(), then clamp to hardware_threads() with a one-line stderr
  // warning when the request exceeds it. Oversubscribing the sweep never
  // changes its output (it is deterministic by construction) but it
  // misreports the machine — the PR 3 BENCH_sweep.json recorded a 0.97x
  // "speedup" from 4 workers on a 1-hardware-thread host. Callers that
  // genuinely want oversubscription (determinism tests on small hosts)
  // pass allow_oversubscribe = true.
  static unsigned resolve_clamped(int requested,
                                  bool allow_oversubscribe = false) noexcept;

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  mutable std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t active_ = 0;
  bool stop_ = false;
};

}  // namespace javaflow::util
