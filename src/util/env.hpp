// Hardened environment-variable parsing for the bench/sweep knobs.
//
// The previous `atoi` parsing silently turned garbage like
// `JAVAFLOW_THREADS=abc` into 0 (= "one worker per hardware thread"),
// which is exactly the wrong failure mode for a reproducibility knob.
// These helpers accept only a complete decimal integer within bounds and
// otherwise warn once on stderr and fall back to the documented default.
#pragma once

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string_view>

namespace javaflow::util {

// Strict decimal parse: the whole string must be one integer (optional
// leading +/-, no trailing text, no overflow). nullopt otherwise.
inline std::optional<long> parse_long(const char* text) noexcept {
  if (text == nullptr || *text == '\0') return std::nullopt;
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(text, &end, 10);
  if (errno != 0 || end == text || *end != '\0') return std::nullopt;
  return v;
}

// Reads an integer environment variable. Unset -> fallback, silently.
// Set but malformed or below min_ok -> fallback, with a stderr warning
// naming the variable and the accepted range.
inline long env_int(const char* name, long fallback, long min_ok) noexcept {
  const char* text = std::getenv(name);
  if (text == nullptr) return fallback;
  const std::optional<long> v = parse_long(text);
  if (!v.has_value() || *v < min_ok) {
    std::fprintf(stderr,
                 "warning: ignoring %s=\"%s\" (expected an integer >= %ld); "
                 "using %ld\n",
                 name, text, min_ok, fallback);
    return fallback;
  }
  return *v;
}

// True for a set-and-truthy flag variable ("1", "true", "yes", "on").
inline bool env_flag(const char* name) noexcept {
  const char* text = std::getenv(name);
  if (text == nullptr) return false;
  const std::string_view v(text);
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

// Reads a free-form string variable. Unset (or set empty) -> fallback.
// No validation beyond non-emptiness: callers that accept only an
// enumerated set (e.g. JAVAFLOW_CACHE) parse and warn themselves.
inline std::string_view env_string(const char* name,
                                   std::string_view fallback) noexcept {
  const char* text = std::getenv(name);
  if (text == nullptr || *text == '\0') return fallback;
  return text;
}

}  // namespace javaflow::util
