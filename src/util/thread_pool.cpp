#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>

namespace javaflow::util {

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned n = threads == 0 ? hardware_threads() : threads;
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::parallel_for(
    std::size_t n,
    const std::function<void(std::size_t, unsigned)>& body) {
  if (n == 0) return;
  const unsigned lanes =
      static_cast<unsigned>(std::min<std::size_t>(size(), n));
  if (lanes <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(i, 0);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::mutex done_mu;
  std::condition_variable done_cv;
  unsigned done = 0;
  for (unsigned lane = 0; lane < lanes; ++lane) {
    submit([&, lane] {
      for (std::size_t i;
           (i = next.fetch_add(1, std::memory_order_relaxed)) < n;) {
        body(i, lane);
      }
      {
        // Notify while holding the lock: done_cv and done_mu live on the
        // caller's stack, and the waiter destroys them as soon as it
        // observes done == lanes. Signaling after unlock would race that
        // destruction.
        std::lock_guard<std::mutex> lock(done_mu);
        ++done;
        done_cv.notify_one();
      }
    });
  }
  std::unique_lock<std::mutex> lock(done_mu);
  done_cv.wait(lock, [&] { return done == lanes; });
}

unsigned ThreadPool::hardware_threads() noexcept {
  return std::max(1u, std::thread::hardware_concurrency());
}

unsigned ThreadPool::resolve(int requested) noexcept {
  return requested >= 1 ? static_cast<unsigned>(requested)
                        : hardware_threads();
}

unsigned ThreadPool::resolve_clamped(int requested,
                                     bool allow_oversubscribe) noexcept {
  const unsigned n = resolve(requested);
  const unsigned hw = hardware_threads();
  if (allow_oversubscribe || n <= hw) return n;
  std::fprintf(stderr,
               "warning: clamping %u requested worker threads to the %u "
               "hardware thread(s) on this host\n",
               n, hw);
  return hw;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace javaflow::util
