// Interned strings for hot result paths (docs/PERF.md "Execution
// plans", satellite work). A sweep stamps every sample with its method
// and benchmark names; at stride 1 that is tens of thousands of
// std::string copies of the same few hundred distinct names, almost all
// past the small-string capacity. An InternedString is a shared handle
// to one immutable std::string, so stamping a sample is a refcount
// bump, and equal handles short-circuit comparisons by pointer.
#pragma once

#include <cstddef>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <unordered_map>

namespace javaflow::util {

// Value-semantic handle to an immutable shared string. Implicitly
// convertible to `const std::string&`, so existing consumers (map keys,
// string assignment, json escaping) keep working unchanged; explicit
// comparison operators cover the sites where template argument
// deduction would not consider the conversion.
class InternedString {
 public:
  InternedString() = default;
  // Implicit on purpose: `sample.method = m.name` still compiles (it
  // allocates, like the plain-string field used to). Hot paths intern
  // through an Interner instead.
  InternedString(std::string s)
      : ptr_(std::make_shared<const std::string>(std::move(s))) {}
  InternedString(const char* s) : InternedString(std::string(s)) {}

  const std::string& str() const noexcept {
    return ptr_ != nullptr ? *ptr_ : empty_string();
  }
  operator const std::string&() const noexcept { return str(); }
  const char* c_str() const noexcept { return str().c_str(); }
  bool empty() const noexcept { return str().empty(); }
  std::size_t size() const noexcept { return str().size(); }
  std::size_t find(std::string_view needle, std::size_t pos = 0) const {
    return str().find(needle, pos);
  }

  friend bool operator==(const InternedString& a, const InternedString& b) {
    return a.ptr_ == b.ptr_ || a.str() == b.str();
  }
  friend bool operator==(const InternedString& a, const std::string& b) {
    return a.str() == b;
  }
  friend bool operator==(const std::string& a, const InternedString& b) {
    return a == b.str();
  }
  friend bool operator==(const InternedString& a, const char* b) {
    return a.str() == b;
  }
  friend bool operator==(const char* a, const InternedString& b) {
    return a == b.str();
  }
  friend bool operator<(const InternedString& a, const InternedString& b) {
    return a.ptr_ != b.ptr_ && a.str() < b.str();
  }
  friend std::ostream& operator<<(std::ostream& os,
                                  const InternedString& s) {
    return os << s.str();
  }

 private:
  static const std::string& empty_string() noexcept {
    static const std::string kEmpty;
    return kEmpty;
  }
  std::shared_ptr<const std::string> ptr_;
};

// Deduplicating factory. NOT thread-safe — give each worker lane its
// own (a sweep method runs wholly on one lane, so per-lane interners
// never see the same name twice anyway).
class Interner {
 public:
  const InternedString& get(const std::string& s) {
    const auto it = map_.find(s);
    if (it != map_.end()) return it->second;
    return map_.emplace(s, InternedString(s)).first->second;
  }

 private:
  std::unordered_map<std::string, InternedString> map_;
};

}  // namespace javaflow::util
