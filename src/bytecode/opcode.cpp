#include "bytecode/opcode.hpp"

#include <array>

namespace javaflow::bytecode {
namespace {

constexpr std::array<OpInfo, 256> build_table() {
  std::array<OpInfo, 256> t{};
#define JAVAFLOW_FILL(name_, byte_, group_, pop_, push_, operand_, sig_)   \
  t[byte_] = OpInfo{#name_,          Group::group_,                       \
                    pop_,            push_,                               \
                    OperandKind::operand_, sig_,                          \
                    true};
  JAVAFLOW_OPCODE_TABLE(JAVAFLOW_FILL)
#undef JAVAFLOW_FILL
  return t;
}

constexpr std::array<OpInfo, 256> kTable = build_table();

}  // namespace

const OpInfo& op_info(Op op) noexcept {
  return kTable[static_cast<std::uint8_t>(op)];
}

std::string_view value_type_name(ValueType t) noexcept {
  switch (t) {
    case ValueType::Int: return "int";
    case ValueType::Long: return "long";
    case ValueType::Float: return "float";
    case ValueType::Double: return "double";
    case ValueType::Ref: return "ref";
    case ValueType::Void: return "void";
  }
  return "?";
}

ValueType type_from_sig_char(char c) noexcept {
  switch (c) {
    case 'I': return ValueType::Int;
    case 'J': return ValueType::Long;
    case 'F': return ValueType::Float;
    case 'D': return ValueType::Double;
    case 'A': return ValueType::Ref;
    default: return ValueType::Void;
  }
}

bool is_typed_sig_char(char c) noexcept {
  return c == 'I' || c == 'J' || c == 'F' || c == 'D' || c == 'A';
}

bool is_generic_sig_char(char c) noexcept {
  return c == 'X' || c == 'Y' || c == 'Z' || c == 'W';
}

bool is_valid_opcode(std::uint8_t byte) noexcept { return kTable[byte].valid; }

std::string_view op_name(Op op) noexcept { return op_info(op).name; }

NodeType node_type_for(Group g) noexcept {
  switch (g) {
    case Group::FpConversion:
    case Group::FpArith:
      return NodeType::FloatingPoint;
    case Group::MemConstant:
    case Group::MemRead:
    case Group::MemWrite:
    case Group::Special:  // GPP-serviced; hosted on ring-connected nodes
      return NodeType::Storage;
    case Group::ControlFlow:
    case Group::Call:
    case Group::Return:
      return NodeType::Control;
    case Group::ArithInteger:
    case Group::ArithMove:
    case Group::LocalRead:
    case Group::LocalWrite:
    case Group::LocalInc:
      return NodeType::Arithmetic;
  }
  return NodeType::Arithmetic;
}

int execution_mesh_cycles(Group g) noexcept {
  switch (g) {
    case Group::ArithMove:
      return 1;  // Move
    case Group::FpArith:
      return 10;  // Floating point arithmetic
    case Group::FpConversion:
      return 5;  // Integer-Float conversion
    default:
      return 2;  // Special, Logical, Register, Memory (Table 17)
  }
}

StaticMixCategory static_mix_category(Group g) noexcept {
  switch (g) {
    case Group::FpConversion:
    case Group::FpArith:
      return StaticMixCategory::Float;
    case Group::ControlFlow:
    case Group::Call:
    case Group::Return:
      return StaticMixCategory::Control;
    case Group::MemConstant:
    case Group::MemRead:
    case Group::MemWrite:
    case Group::Special:
      return StaticMixCategory::Storage;
    default:
      return StaticMixCategory::Arith;
  }
}

DynamicMixCategory dynamic_mix_category(Group g) noexcept {
  switch (g) {
    case Group::ArithInteger:
      return DynamicMixCategory::ArithFixed;
    case Group::FpArith:
    case Group::FpConversion:
      return DynamicMixCategory::ArithFloat;
    case Group::ArithMove:
    case Group::LocalRead:
    case Group::LocalWrite:
    case Group::LocalInc:
      return DynamicMixCategory::LocalsStack;
    case Group::MemConstant:
      return DynamicMixCategory::ConstantsStg;
    case Group::MemRead:
    case Group::MemWrite:
      return DynamicMixCategory::FieldsArrayStg;
    case Group::ControlFlow:
      return DynamicMixCategory::Control;
    case Group::Call:
    case Group::Return:
      return DynamicMixCategory::CallsRets;
    case Group::Special:
      return DynamicMixCategory::ObjectSpecial;
  }
  return DynamicMixCategory::ObjectSpecial;
}

std::string_view dynamic_mix_category_name(DynamicMixCategory c) noexcept {
  switch (c) {
    case DynamicMixCategory::ArithFixed:
      return "Arith-Fixed";
    case DynamicMixCategory::ArithFloat:
      return "Arith-Float";
    case DynamicMixCategory::LocalsStack:
      return "Locals+Stack";
    case DynamicMixCategory::ConstantsStg:
      return "Constants-Stg";
    case DynamicMixCategory::FieldsArrayStg:
      return "Array+Field-Stg";
    case DynamicMixCategory::Control:
      return "Control";
    case DynamicMixCategory::CallsRets:
      return "Calls+Rets";
    case DynamicMixCategory::ObjectSpecial:
      return "Object+Special";
  }
  return "?";
}

bool is_control_transfer(Group g) noexcept {
  return g == Group::ControlFlow || g == Group::Call || g == Group::Return;
}

bool has_quick_form(Op op) noexcept {
  switch (op) {
    case Op::ldc:
    case Op::ldc_w:
    case Op::ldc2_w:
    case Op::getfield:
    case Op::putfield:
    case Op::getstatic:
    case Op::putstatic:
      return true;
    default:
      return false;
  }
}

Op quick_form(Op op) noexcept {
  switch (op) {
    case Op::ldc:
      return Op::ldc_quick;
    case Op::ldc_w:
      return Op::ldc_w_quick;
    case Op::ldc2_w:
      return Op::ldc2_w_quick;
    case Op::getfield:
      return Op::getfield_quick;
    case Op::putfield:
      return Op::putfield_quick;
    case Op::getstatic:
      return Op::getstatic_quick;
    case Op::putstatic:
      return Op::putstatic_quick;
    default:
      return op;
  }
}

bool is_quick(Op op) noexcept {
  switch (op) {
    case Op::ldc_quick:
    case Op::ldc_w_quick:
    case Op::ldc2_w_quick:
    case Op::getfield_quick:
    case Op::putfield_quick:
    case Op::getstatic_quick:
    case Op::putstatic_quick:
      return true;
    default:
      return false;
  }
}

}  // namespace javaflow::bytecode
