// JavaFlow ByteCode instruction set (paper Appendix A).
//
// Every ByteCode instruction architected in the JVM spec that the paper
// enumerates is described here, together with the metadata the JavaFlow
// machine needs at load time:
//   * the instruction group (Appendix A table captions),
//   * the pop/push counts ("the number of stack elements removed and
//     replaced for each instruction") counted per *value*, exactly as the
//     paper's appendix counts them,
//   * the node type of the heterogeneous DataFlow fabric that can host the
//     instruction (Figure 26),
//   * the execution cost in mesh cycles (Table 17),
//   * a type signature used by the verifier and the reference interpreter.
//
// The `_quick` opcodes are the interpreter-internal resolved forms of the
// storage instructions (paper §3.6 / Table 5); they are not part of the
// architected set and are produced only by runtime rewriting.
#pragma once

#include <cstdint>
#include <string_view>

namespace javaflow::bytecode {

// Instruction groups, one per Appendix A table.
enum class Group : std::uint8_t {
  FpConversion,  // Table 29
  ArithInteger,  // Table 30
  ArithMove,     // Table 31 (constants, dup/pop/swap family)
  FpArith,       // Table 32 (incl. lcmp/ldiv as the paper groups them)
  ControlFlow,   // Table 33 (goto + conditional jumps)
  Call,          // Table 34
  Return,        // Table 35 (incl. athrow)
  MemConstant,   // Table 36 (ldc family; unordered constant-pool access)
  MemRead,       // Table 37
  MemWrite,      // Table 38
  LocalRead,     // Table 39 (loads)
  LocalWrite,    // Table 40 (stores)
  LocalInc,      // iinc (paper describes it as its own register op, §6.3)
  Special,       // Table 41 (GPP-serviced operations)
};

// Heterogeneous fabric node classes (Figure 26). `Blank` nodes appear only
// in the Sparse configuration; `Anchor` nodes head each method's chain.
enum class NodeType : std::uint8_t {
  Arithmetic,
  FloatingPoint,
  Storage,
  Control,
  Blank,
  Anchor,
};

// Operand kinds carried by an instruction. The repo keeps methods in the
// linear-address form the fabric uses (one instruction per linear slot), so
// operands are typed fields rather than encoded bytes.
enum class OperandKind : std::uint8_t {
  None,
  Imm,        // bipush / sipush / newarray element type
  Local,      // local register index (iinc also carries an increment)
  Cp,         // constant-pool index (ldc family, field refs, method refs,
              // new/anewarray/checkcast/instanceof class refs)
  Branch,     // branch target, expressed as a linear instruction index
  Switch,     // index into the owning method's switch-table side array
};

// Sentinel for signature-dependent pop/push counts (invokes,
// multianewarray) — the real counts are resolved when a method is
// assembled and stored on the Instruction itself.
inline constexpr std::uint8_t kVarCount = 255;

// Java value types (Figure 8 / Figure 15). A value occupies one stack slot
// regardless of width (see DESIGN.md, "Value-based stack"). Defined here,
// next to the signature alphabet below, because the `sig` strings in the
// opcode table are spelled in exactly these types.
enum class ValueType : std::uint8_t { Int, Long, Float, Double, Ref, Void };

std::string_view value_type_name(ValueType t) noexcept;

// ---- signature-character helpers ----
//
// Single source of truth for decoding the verifier transfer signatures
// in the opcode table below (the verifier, the fabric lint pass and the
// bounds analyzer all consume these; they used to carry private copies).

// I/J/F/D/A -> the concrete value type; anything else -> Void.
ValueType type_from_sig_char(char c) noexcept;
// True for the concretely typed signature characters I J F D A.
bool is_typed_sig_char(char c) noexcept;
// True for the positional generic slots X Y Z W (dup/pop/swap family).
bool is_generic_sig_char(char c) noexcept;

// X-macro master table: OP(name, byte, Group, pop, push, OperandKind, sig)
//
// `sig` is a verifier transfer signature "<pops)>(pushes>" using
//   I=int  J=long  F=float  D=double  A=reference
//   X,Y,Z,W = generic slots matched positionally (dup/pop/swap family)
//   ?      = resolved from the constant pool / call signature at verify time
// Pops are listed bottom-to-top of stack (leftmost is deepest), matching
// the Appendix A "Stack Before" columns.
#define JAVAFLOW_OPCODE_TABLE(OP)                                             \
  /* ---- Table 41: special (also nop) ---- */                                \
  OP(nop, 0x00, Special, 0, 0, None, ">")                                     \
  /* ---- Table 31: arithmetic/move constants ---- */                         \
  OP(aconst_null, 0x01, ArithMove, 0, 1, None, ">A")                          \
  OP(iconst_m1, 0x02, ArithMove, 0, 1, None, ">I")                            \
  OP(iconst_0, 0x03, ArithMove, 0, 1, None, ">I")                             \
  OP(iconst_1, 0x04, ArithMove, 0, 1, None, ">I")                             \
  OP(iconst_2, 0x05, ArithMove, 0, 1, None, ">I")                             \
  OP(iconst_3, 0x06, ArithMove, 0, 1, None, ">I")                             \
  OP(iconst_4, 0x07, ArithMove, 0, 1, None, ">I")                             \
  OP(iconst_5, 0x08, ArithMove, 0, 1, None, ">I")                             \
  OP(lconst_0, 0x09, ArithMove, 0, 1, None, ">J")                             \
  OP(lconst_1, 0x0a, ArithMove, 0, 1, None, ">J")                             \
  OP(fconst_0, 0x0b, ArithMove, 0, 1, None, ">F")                             \
  OP(fconst_1, 0x0c, ArithMove, 0, 1, None, ">F")                             \
  OP(fconst_2, 0x0d, ArithMove, 0, 1, None, ">F")                             \
  OP(dconst_0, 0x0e, ArithMove, 0, 1, None, ">D")                             \
  OP(dconst_1, 0x0f, ArithMove, 0, 1, None, ">D")                             \
  OP(bipush, 0x10, ArithMove, 0, 1, Imm, ">I")                                \
  OP(sipush, 0x11, ArithMove, 0, 1, Imm, ">I")                                \
  /* ---- Table 36: memory constants ---- */                                  \
  OP(ldc, 0x12, MemConstant, 0, 1, Cp, ">?")                                  \
  OP(ldc_w, 0x13, MemConstant, 0, 1, Cp, ">?")                                \
  OP(ldc2_w, 0x14, MemConstant, 0, 1, Cp, ">?")                               \
  /* ---- Table 39: local reads ---- */                                       \
  OP(iload, 0x15, LocalRead, 0, 1, Local, ">I")                               \
  OP(lload, 0x16, LocalRead, 0, 1, Local, ">J")                               \
  OP(fload, 0x17, LocalRead, 0, 1, Local, ">F")                               \
  OP(dload, 0x18, LocalRead, 0, 1, Local, ">D")                               \
  OP(aload, 0x19, LocalRead, 0, 1, Local, ">A")                               \
  OP(iload_0, 0x1a, LocalRead, 0, 1, None, ">I")                              \
  OP(iload_1, 0x1b, LocalRead, 0, 1, None, ">I")                              \
  OP(iload_2, 0x1c, LocalRead, 0, 1, None, ">I")                              \
  OP(iload_3, 0x1d, LocalRead, 0, 1, None, ">I")                              \
  OP(lload_0, 0x1e, LocalRead, 0, 1, None, ">J")                              \
  OP(lload_1, 0x1f, LocalRead, 0, 1, None, ">J")                              \
  OP(lload_2, 0x20, LocalRead, 0, 1, None, ">J")                              \
  OP(lload_3, 0x21, LocalRead, 0, 1, None, ">J")                              \
  OP(fload_0, 0x22, LocalRead, 0, 1, None, ">F")                              \
  OP(fload_1, 0x23, LocalRead, 0, 1, None, ">F")                              \
  OP(fload_2, 0x24, LocalRead, 0, 1, None, ">F")                              \
  OP(fload_3, 0x25, LocalRead, 0, 1, None, ">F")                              \
  OP(dload_0, 0x26, LocalRead, 0, 1, None, ">D")                              \
  OP(dload_1, 0x27, LocalRead, 0, 1, None, ">D")                              \
  OP(dload_2, 0x28, LocalRead, 0, 1, None, ">D")                              \
  OP(dload_3, 0x29, LocalRead, 0, 1, None, ">D")                              \
  OP(aload_0, 0x2a, LocalRead, 0, 1, None, ">A")                              \
  OP(aload_1, 0x2b, LocalRead, 0, 1, None, ">A")                              \
  OP(aload_2, 0x2c, LocalRead, 0, 1, None, ">A")                              \
  OP(aload_3, 0x2d, LocalRead, 0, 1, None, ">A")                              \
  /* ---- Table 37: memory reads (arrays) ---- */                             \
  OP(iaload, 0x2e, MemRead, 2, 1, None, "AI>I")                               \
  OP(laload, 0x2f, MemRead, 2, 1, None, "AI>J")                               \
  OP(faload, 0x30, MemRead, 2, 1, None, "AI>F")                               \
  OP(daload, 0x31, MemRead, 2, 1, None, "AI>D")                               \
  OP(aaload, 0x32, MemRead, 2, 1, None, "AI>A")                               \
  OP(baload, 0x33, MemRead, 2, 1, None, "AI>I")                               \
  OP(caload, 0x34, MemRead, 2, 1, None, "AI>I")                               \
  OP(saload, 0x35, MemRead, 2, 1, None, "AI>I")                               \
  /* ---- Table 40: local writes ---- */                                      \
  OP(istore, 0x36, LocalWrite, 1, 0, Local, "I>")                             \
  OP(lstore, 0x37, LocalWrite, 1, 0, Local, "J>")                             \
  OP(fstore, 0x38, LocalWrite, 1, 0, Local, "F>")                             \
  OP(dstore, 0x39, LocalWrite, 1, 0, Local, "D>")                             \
  OP(astore, 0x3a, LocalWrite, 1, 0, Local, "A>")                             \
  OP(istore_0, 0x3b, LocalWrite, 1, 0, None, "I>")                            \
  OP(istore_1, 0x3c, LocalWrite, 1, 0, None, "I>")                            \
  OP(istore_2, 0x3d, LocalWrite, 1, 0, None, "I>")                            \
  OP(istore_3, 0x3e, LocalWrite, 1, 0, None, "I>")                            \
  OP(lstore_0, 0x3f, LocalWrite, 1, 0, None, "J>")                            \
  OP(lstore_1, 0x40, LocalWrite, 1, 0, None, "J>")                            \
  OP(lstore_2, 0x41, LocalWrite, 1, 0, None, "J>")                            \
  OP(lstore_3, 0x42, LocalWrite, 1, 0, None, "J>")                            \
  OP(fstore_0, 0x43, LocalWrite, 1, 0, None, "F>")                            \
  OP(fstore_1, 0x44, LocalWrite, 1, 0, None, "F>")                            \
  OP(fstore_2, 0x45, LocalWrite, 1, 0, None, "F>")                            \
  OP(fstore_3, 0x46, LocalWrite, 1, 0, None, "F>")                            \
  OP(dstore_0, 0x47, LocalWrite, 1, 0, None, "D>")                            \
  OP(dstore_1, 0x48, LocalWrite, 1, 0, None, "D>")                            \
  OP(dstore_2, 0x49, LocalWrite, 1, 0, None, "D>")                            \
  OP(dstore_3, 0x4a, LocalWrite, 1, 0, None, "D>")                            \
  OP(astore_0, 0x4b, LocalWrite, 1, 0, None, "A>")                            \
  OP(astore_1, 0x4c, LocalWrite, 1, 0, None, "A>")                            \
  OP(astore_2, 0x4d, LocalWrite, 1, 0, None, "A>")                            \
  OP(astore_3, 0x4e, LocalWrite, 1, 0, None, "A>")                            \
  /* ---- Table 38: memory writes (arrays) ---- */                            \
  OP(iastore, 0x4f, MemWrite, 3, 0, None, "AII>")                             \
  OP(lastore, 0x50, MemWrite, 3, 0, None, "AIJ>")                             \
  OP(fastore, 0x51, MemWrite, 3, 0, None, "AIF>")                             \
  OP(dastore, 0x52, MemWrite, 3, 0, None, "AID>")                             \
  OP(aastore, 0x53, MemWrite, 3, 0, None, "AIA>")                             \
  OP(bastore, 0x54, MemWrite, 3, 0, None, "AII>")                             \
  OP(castore, 0x55, MemWrite, 3, 0, None, "AII>")                             \
  OP(sastore, 0x56, MemWrite, 3, 0, None, "AII>")                             \
  /* ---- Table 31 (cont.): stack moves ----                                  \
   * Counts are per *value* (the machine's stack slots are values); dup2      \
   * and friends therefore act on two values. */                              \
  OP(pop, 0x57, ArithMove, 1, 0, None, "X>")                                  \
  OP(pop2, 0x58, ArithMove, 2, 0, None, "YX>")                                \
  OP(dup, 0x59, ArithMove, 1, 2, None, "X>XX")                                \
  OP(dup_x1, 0x5a, ArithMove, 2, 3, None, "YX>XYX")                           \
  OP(dup_x2, 0x5b, ArithMove, 3, 4, None, "ZYX>XZYX")                         \
  OP(dup2, 0x5c, ArithMove, 2, 4, None, "YX>YXYX")                            \
  OP(dup2_x1, 0x5d, ArithMove, 3, 5, None, "ZYX>YXZYX")                       \
  OP(dup2_x2, 0x5e, ArithMove, 4, 6, None, "WZYX>YXWZYX")                     \
  OP(swap, 0x5f, ArithMove, 2, 2, None, "YX>XY")                              \
  /* ---- Table 30: integer arithmetic (+ float add/sub groups below) ---- */ \
  OP(iadd, 0x60, ArithInteger, 2, 1, None, "II>I")                            \
  OP(ladd, 0x61, ArithInteger, 2, 1, None, "JJ>J")                            \
  OP(fadd, 0x62, FpArith, 2, 1, None, "FF>F")                                 \
  OP(dadd, 0x63, FpArith, 2, 1, None, "DD>D")                                 \
  OP(isub, 0x64, ArithInteger, 2, 1, None, "II>I")                            \
  OP(lsub, 0x65, ArithInteger, 2, 1, None, "JJ>J")                            \
  OP(fsub, 0x66, FpArith, 2, 1, None, "FF>F")                                 \
  OP(dsub, 0x67, FpArith, 2, 1, None, "DD>D")                                 \
  OP(imul, 0x68, ArithInteger, 2, 1, None, "II>I")                            \
  OP(lmul, 0x69, ArithInteger, 2, 1, None, "JJ>J")                            \
  OP(fmul, 0x6a, FpArith, 2, 1, None, "FF>F")                                 \
  OP(dmul, 0x6b, FpArith, 2, 1, None, "DD>D")                                 \
  OP(idiv, 0x6c, ArithInteger, 2, 1, None, "II>I")                            \
  OP(ldiv_, 0x6d, FpArith, 2, 1, None, "JJ>J")                                \
  OP(fdiv, 0x6e, FpArith, 2, 1, None, "FF>F")                                 \
  OP(ddiv, 0x6f, FpArith, 2, 1, None, "DD>D")                                 \
  OP(irem, 0x70, ArithInteger, 2, 1, None, "II>I")                            \
  OP(lrem, 0x71, ArithInteger, 2, 1, None, "JJ>J")                            \
  OP(frem, 0x72, FpArith, 2, 1, None, "FF>F")                                 \
  OP(drem, 0x73, FpArith, 2, 1, None, "DD>D")                                 \
  OP(ineg, 0x74, ArithInteger, 1, 1, None, "I>I")                             \
  OP(lneg, 0x75, ArithInteger, 1, 1, None, "J>J")                             \
  OP(fneg, 0x76, FpArith, 1, 1, None, "F>F")                                  \
  OP(dneg, 0x77, FpArith, 1, 1, None, "D>D")                                  \
  OP(ishl, 0x78, ArithInteger, 2, 1, None, "II>I")                            \
  OP(lshl, 0x79, ArithInteger, 2, 1, None, "JI>J")                            \
  OP(ishr, 0x7a, ArithInteger, 2, 1, None, "II>I")                            \
  OP(lshr, 0x7b, ArithInteger, 2, 1, None, "JI>J")                            \
  OP(iushr, 0x7c, ArithInteger, 2, 1, None, "II>I")                           \
  OP(lushr, 0x7d, ArithInteger, 2, 1, None, "JI>J")                           \
  OP(iand, 0x7e, ArithInteger, 2, 1, None, "II>I")                            \
  OP(land, 0x7f, ArithInteger, 2, 1, None, "JJ>J")                            \
  OP(ior, 0x80, ArithInteger, 2, 1, None, "II>I")                             \
  OP(lor, 0x81, ArithInteger, 2, 1, None, "JJ>J")                             \
  OP(ixor, 0x82, ArithInteger, 2, 1, None, "II>I")                            \
  OP(lxor, 0x83, ArithInteger, 2, 1, None, "JJ>J")                            \
  /* ---- Table 39 (cont.): local increment ---- */                           \
  OP(iinc, 0x84, LocalInc, 0, 0, Local, ">")                                  \
  /* ---- Table 29: conversions ---- */                                       \
  OP(i2l, 0x85, FpConversion, 1, 1, None, "I>J")                              \
  OP(i2f, 0x86, FpConversion, 1, 1, None, "I>F")                              \
  OP(i2d, 0x87, FpConversion, 1, 1, None, "I>D")                              \
  OP(l2i, 0x88, FpConversion, 1, 1, None, "J>I")                              \
  OP(l2f, 0x89, FpConversion, 1, 1, None, "J>F")                              \
  OP(l2d, 0x8a, FpConversion, 1, 1, None, "J>D")                              \
  OP(f2i, 0x8b, FpConversion, 1, 1, None, "F>I")                              \
  OP(f2l, 0x8c, FpConversion, 1, 1, None, "F>J")                              \
  OP(f2d, 0x8d, FpConversion, 1, 1, None, "F>D")                              \
  OP(d2i, 0x8e, FpConversion, 1, 1, None, "D>I")                              \
  OP(d2l, 0x8f, FpConversion, 1, 1, None, "D>J")                              \
  OP(d2f, 0x90, FpConversion, 1, 1, None, "D>F")                              \
  OP(i2b, 0x91, FpConversion, 1, 1, None, "I>I")                              \
  OP(i2c, 0x92, FpConversion, 1, 1, None, "I>I")                              \
  OP(i2s, 0x93, FpConversion, 1, 1, None, "I>I")                              \
  /* ---- Table 32 (cont.): comparisons ---- */                               \
  OP(lcmp, 0x94, FpArith, 2, 1, None, "JJ>I")                                 \
  OP(fcmpl, 0x95, FpArith, 2, 1, None, "FF>I")                                \
  OP(fcmpg, 0x96, FpArith, 2, 1, None, "FF>I")                                \
  OP(dcmpl, 0x97, FpArith, 2, 1, None, "DD>I")                                \
  OP(dcmpg, 0x98, FpArith, 2, 1, None, "DD>I")                                \
  /* ---- Table 33: control flow ---- */                                      \
  OP(ifeq, 0x99, ControlFlow, 1, 0, Branch, "I>")                             \
  OP(ifne, 0x9a, ControlFlow, 1, 0, Branch, "I>")                             \
  OP(iflt, 0x9b, ControlFlow, 1, 0, Branch, "I>")                             \
  OP(ifge, 0x9c, ControlFlow, 1, 0, Branch, "I>")                             \
  OP(ifgt, 0x9d, ControlFlow, 1, 0, Branch, "I>")                             \
  OP(ifle, 0x9e, ControlFlow, 1, 0, Branch, "I>")                             \
  OP(if_icmpeq, 0x9f, ControlFlow, 2, 0, Branch, "II>")                       \
  OP(if_icmpne, 0xa0, ControlFlow, 2, 0, Branch, "II>")                       \
  OP(if_icmplt, 0xa1, ControlFlow, 2, 0, Branch, "II>")                       \
  OP(if_icmpge, 0xa2, ControlFlow, 2, 0, Branch, "II>")                       \
  OP(if_icmpgt, 0xa3, ControlFlow, 2, 0, Branch, "II>")                       \
  OP(if_icmple, 0xa4, ControlFlow, 2, 0, Branch, "II>")                       \
  OP(if_acmpeq, 0xa5, ControlFlow, 2, 0, Branch, "AA>")                       \
  OP(if_acmpne, 0xa6, ControlFlow, 2, 0, Branch, "AA>")                       \
  OP(goto_, 0xa7, ControlFlow, 0, 0, Branch, ">")                             \
  /* ---- Table 41 (cont.): jsr/ret (Finally support, §6.3 Special) ---- */   \
  OP(jsr, 0xa8, Special, 0, 1, Branch, ">A")                                  \
  OP(ret, 0xa9, Special, 0, 0, Local, ">")                                    \
  OP(tableswitch, 0xaa, Special, 1, 0, Switch, "I>")                          \
  OP(lookupswitch, 0xab, Special, 1, 0, Switch, "I>")                         \
  /* ---- Table 35: returns ---- */                                           \
  OP(ireturn, 0xac, Return, 1, 0, None, "I>")                                 \
  OP(lreturn, 0xad, Return, 1, 0, None, "J>")                                 \
  OP(freturn, 0xae, Return, 1, 0, None, "F>")                                 \
  OP(dreturn, 0xaf, Return, 1, 0, None, "D>")                                 \
  OP(areturn, 0xb0, Return, 1, 0, None, "A>")                                 \
  OP(return_, 0xb1, Return, 0, 0, None, ">")                                  \
  /* ---- Tables 37/38 (cont.): field access ---- */                          \
  OP(getstatic, 0xb2, MemRead, 0, 1, Cp, ">?")                                \
  OP(putstatic, 0xb3, MemWrite, 1, 0, Cp, "?>")                               \
  OP(getfield, 0xb4, MemRead, 1, 1, Cp, "A>?")                                \
  OP(putfield, 0xb5, MemWrite, 2, 0, Cp, "A?>")                               \
  /* ---- Table 34: calls (pop/push resolved per call signature) ---- */      \
  OP(invokevirtual, 0xb6, Call, 255, 255, Cp, "?>?")                          \
  OP(invokespecial, 0xb7, Call, 255, 255, Cp, "?>?")                          \
  OP(invokestatic, 0xb8, Call, 255, 255, Cp, "?>?")                           \
  OP(invokeinterface, 0xb9, Call, 255, 255, Cp, "?>?")                        \
  /* ---- Table 41 (cont.): object/array services ---- */                     \
  OP(new_, 0xbb, Special, 0, 1, Cp, ">A")                                     \
  OP(newarray, 0xbc, Special, 1, 1, Imm, "I>A")                               \
  OP(anewarray, 0xbd, Special, 1, 1, Cp, "I>A")                               \
  OP(arraylength, 0xbe, Special, 1, 1, None, "A>I")                           \
  OP(athrow, 0xbf, Return, 1, 0, None, "A>")                                  \
  OP(checkcast, 0xc0, Special, 1, 1, Cp, "A>A")                               \
  OP(instanceof_, 0xc1, Special, 1, 1, Cp, "A>I")                             \
  OP(monitorenter, 0xc2, Special, 1, 0, None, "A>")                           \
  OP(monitorexit, 0xc3, Special, 1, 0, None, "A>")                            \
  OP(multianewarray, 0xc5, Special, 255, 1, Cp, "?>A")                        \
  OP(ifnull, 0xc6, ControlFlow, 1, 0, Branch, "A>")                           \
  OP(ifnonnull, 0xc7, ControlFlow, 1, 0, Branch, "A>")                        \
  OP(goto_w, 0xc8, ControlFlow, 0, 0, Branch, ">")                            \
  OP(jsr_w, 0xc9, Special, 0, 1, Branch, ">A")                                \
  /* ---- Interpreter-internal resolved ("_Quick") storage forms (§3.6,      \
   * Table 5). Identical machine behaviour; counted separately by the        \
   * profiler. ---- */                                                        \
  OP(ldc_quick, 0xcb, MemConstant, 0, 1, Cp, ">?")                            \
  OP(ldc_w_quick, 0xcc, MemConstant, 0, 1, Cp, ">?")                          \
  OP(ldc2_w_quick, 0xcd, MemConstant, 0, 1, Cp, ">?")                         \
  OP(getfield_quick, 0xce, MemRead, 1, 1, Cp, "A>?")                          \
  OP(putfield_quick, 0xcf, MemWrite, 2, 0, Cp, "A?>")                         \
  OP(getstatic_quick, 0xd0, MemRead, 0, 1, Cp, ">?")                          \
  OP(putstatic_quick, 0xd1, MemWrite, 1, 0, Cp, "?>")

enum class Op : std::uint8_t {
#define JAVAFLOW_ENUM(name, byte, group, pop, push, operand, sig) name = byte,
  JAVAFLOW_OPCODE_TABLE(JAVAFLOW_ENUM)
#undef JAVAFLOW_ENUM
};

// Static metadata for one opcode.
struct OpInfo {
  std::string_view name;
  Group group = Group::Special;
  std::uint8_t pop = 0;    // kVarCount => signature-dependent
  std::uint8_t push = 0;   // kVarCount => signature-dependent
  OperandKind operand = OperandKind::None;
  std::string_view sig;    // verifier transfer signature
  bool valid = false;      // false for unassigned opcode bytes
};

// Metadata lookup. O(1); every Op value defined above is `valid`.
const OpInfo& op_info(Op op) noexcept;

// True if `byte` names an architected (or quick) opcode in the table.
bool is_valid_opcode(std::uint8_t byte) noexcept;

std::string_view op_name(Op op) noexcept;

// The fabric node class that can host this instruction group (Figure 26).
NodeType node_type_for(Group g) noexcept;

// Execution cost in mesh cycles (Table 17):
//   Move 1; floating-point arithmetic 10; integer-float conversion 5;
//   special, logical, register, memory (and control/calls/returns) 2.
int execution_mesh_cycles(Group g) noexcept;

// Paper static-mix category (Table 6 columns).
enum class StaticMixCategory : std::uint8_t { Arith, Float, Control, Storage };
StaticMixCategory static_mix_category(Group g) noexcept;

// Paper dynamic-mix category (Table 2 columns).
enum class DynamicMixCategory : std::uint8_t {
  ArithFixed,     // integer arithmetic/logic
  ArithFloat,     // fp arithmetic + conversions
  LocalsStack,    // locals, iinc, constants-to-stack, dup/pop/swap moves
  ConstantsStg,   // ldc family (unordered constant storage)
  FieldsArrayStg, // ordered field/array storage
  Control,        // jumps/goto
  CallsRets,      // invokes + returns
  ObjectSpecial,  // GPP-serviced specials
};
DynamicMixCategory dynamic_mix_category(Group g) noexcept;
std::string_view dynamic_mix_category_name(DynamicMixCategory c) noexcept;

// True for groups whose instructions change control flow when they fire
// (jumps, calls, returns) — these nodes buffer serial tokens (§6.3).
bool is_control_transfer(Group g) noexcept;

// True if the quick-rewriting pass applies (base storage forms, Table 5).
bool has_quick_form(Op op) noexcept;
// The resolved counterpart of a base storage opcode (op must satisfy
// has_quick_form).
Op quick_form(Op op) noexcept;
// True if `op` is one of the interpreter-internal `_quick` forms.
bool is_quick(Op op) noexcept;

}  // namespace javaflow::bytecode
