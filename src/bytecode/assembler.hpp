// Label-based ByteCode assembler.
//
// Plays the role JAVAP/Jasmine played for the paper's analysis pipeline:
// it is how the workload kernels and the random method generator produce
// methods in linear-address form. `build()` runs the verifier (computing
// max_stack and enforcing the JVM merge-shape restriction of Figure 9) and
// resolves call-site pop/push counts from the constant pool.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bytecode/method.hpp"

namespace javaflow::bytecode {

class Assembler {
 public:
  // `program` receives constant-pool entries as they are interned; the
  // finished Method is returned by build() (and may be appended to the
  // program by the caller).
  Assembler(Program& program, std::string qualified_name,
            std::string benchmark);

  // ---- signature ----
  Assembler& args(std::vector<ValueType> types);
  Assembler& returns(ValueType t);
  Assembler& instance();  // non-static: local 0 = this (paper §3.6)
  Assembler& locals(std::uint16_t max);  // optional; grown automatically

  // ---- labels ----
  struct Label {
    std::int32_t id = -1;
  };
  Label new_label();
  Assembler& bind(Label l);

  // ---- generic emitters ----
  Assembler& emit(Op op);
  Assembler& emit_imm(Op op, std::int32_t imm);
  Assembler& emit_local(Op op, std::int32_t local);
  Assembler& emit_cp(Op op, std::int32_t cp_index);
  Assembler& emit_branch(Op op, Label target);

  // ---- constants (auto-selects iconst_N / bipush / sipush / ldc) ----
  Assembler& iconst(std::int32_t v);
  Assembler& lconst(std::int64_t v);
  Assembler& fconst(double v);
  Assembler& dconst(double v);
  Assembler& sconst(const std::string& v);  // ldc of a string constant

  // ---- locals (auto-selects the _N short forms) ----
  Assembler& iload(int n);
  Assembler& lload(int n);
  Assembler& fload(int n);
  Assembler& dload(int n);
  Assembler& aload(int n);
  Assembler& istore(int n);
  Assembler& lstore(int n);
  Assembler& fstore(int n);
  Assembler& dstore(int n);
  Assembler& astore(int n);
  Assembler& iinc(int n, std::int32_t delta);

  // ---- arithmetic / stack (no-operand ops, named for call-site clarity)
  Assembler& op(Op o) { return emit(o); }

  // ---- fields ----
  // Interns the FieldRef; `type` is the field's value type.
  Assembler& getfield(const std::string& cls, const std::string& field,
                      ValueType type);
  Assembler& putfield(const std::string& cls, const std::string& field,
                      ValueType type);
  Assembler& getstatic(const std::string& cls, const std::string& field,
                       ValueType type);
  Assembler& putstatic(const std::string& cls, const std::string& field,
                       ValueType type);

  // ---- calls ----
  // `arg_values` counts values popped including the receiver for instance
  // calls; matches the paper's per-site pop resolution (§6.2 "Loading").
  Assembler& invokestatic(const std::string& qualified, int arg_values,
                          ValueType ret);
  Assembler& invokevirtual(const std::string& qualified, int arg_values,
                           ValueType ret);
  Assembler& invokespecial(const std::string& qualified, int arg_values,
                           ValueType ret);
  Assembler& invokeinterface(const std::string& qualified, int arg_values,
                             ValueType ret);

  // ---- objects / arrays ----
  Assembler& new_object(const std::string& cls);
  Assembler& newarray(ValueType element);  // primitive arrays
  Assembler& anewarray(const std::string& cls);
  Assembler& multianewarray(const std::string& cls, int dims);

  // ---- branches ----
  Assembler& goto_(Label l) { return emit_branch(Op::goto_, l); }
  Assembler& ifeq(Label l) { return emit_branch(Op::ifeq, l); }
  Assembler& ifne(Label l) { return emit_branch(Op::ifne, l); }
  Assembler& iflt(Label l) { return emit_branch(Op::iflt, l); }
  Assembler& ifge(Label l) { return emit_branch(Op::ifge, l); }
  Assembler& ifgt(Label l) { return emit_branch(Op::ifgt, l); }
  Assembler& ifle(Label l) { return emit_branch(Op::ifle, l); }
  Assembler& if_icmpeq(Label l) { return emit_branch(Op::if_icmpeq, l); }
  Assembler& if_icmpne(Label l) { return emit_branch(Op::if_icmpne, l); }
  Assembler& if_icmplt(Label l) { return emit_branch(Op::if_icmplt, l); }
  Assembler& if_icmpge(Label l) { return emit_branch(Op::if_icmpge, l); }
  Assembler& if_icmpgt(Label l) { return emit_branch(Op::if_icmpgt, l); }
  Assembler& if_icmple(Label l) { return emit_branch(Op::if_icmple, l); }
  Assembler& if_acmpeq(Label l) { return emit_branch(Op::if_acmpeq, l); }
  Assembler& if_acmpne(Label l) { return emit_branch(Op::if_acmpne, l); }
  Assembler& ifnull(Label l) { return emit_branch(Op::ifnull, l); }
  Assembler& ifnonnull(Label l) { return emit_branch(Op::ifnonnull, l); }

  // ---- switches ----
  Assembler& tableswitch(std::int32_t low, const std::vector<Label>& targets,
                         Label default_target);
  Assembler& lookupswitch(const std::vector<std::pair<std::int32_t, Label>>&
                              cases,
                          Label default_target);

  // ---- finish ----
  // Patches labels, resolves call pop/push, runs the verifier; throws
  // std::runtime_error with a diagnostic if the method is malformed.
  Method build();

  // Current linear position (next instruction index).
  std::int32_t position() const noexcept {
    return static_cast<std::int32_t>(method_.code.size());
  }

 private:
  Assembler& push_inst(Instruction inst);
  std::int32_t method_cp(const std::string& qualified, int argc,
                         ValueType ret);

  Program& program_;
  Method method_;
  std::vector<std::int32_t> label_pos_;  // label id -> linear index (-1 open)
  // (instruction index, label id) fixups for branch targets
  std::vector<std::pair<std::int32_t, std::int32_t>> fixups_;
  // (switch table index, case index(-1=default), label id)
  std::vector<std::tuple<std::int32_t, std::int32_t, std::int32_t>>
      switch_fixups_;
};

}  // namespace javaflow::bytecode
