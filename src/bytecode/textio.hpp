// Textual interchange for programs — the reproduction's analogue of the
// Jasmine assembler format the paper's analysis pipeline used ("The
// Jasmine language ... is a way to learn and manipulate Java ByteCode
// statements without the complexity of the class file format", §5.3).
//
// A program serializes to a line-oriented ".jfasm" document:
//
//   .class scimark.utils.Random
//   .field m ref
//   .static count int
//   .end
//
//   .method scimark.utils.Random.nextDouble()D
//   .benchmark scimark.monte_carlo
//   .instance
//   .args ref
//   .returns double
//       0: aload_0
//       1: getfield scimark.utils.Random.m ref
//       7: ifge 9
//      12: ldc2_w double 4.656612875245797e-10
//   .end
//
// Branch operands are linear-address targets; constant-pool entries are
// written inline and re-interned on parse. write/parse round-trip exactly
// (a property the test suite checks over the whole kernel corpus).
#pragma once

#include <iosfwd>
#include <string>

#include "bytecode/method.hpp"

namespace javaflow::bytecode {

// ---- writing ----
void write_program(const Program& program, std::ostream& os);
std::string write_program(const Program& program);
void write_method(const Method& m, const ConstantPool& pool,
                  std::ostream& os);

// ---- parsing ----
// Throws std::runtime_error with a line-numbered message on malformed
// input. Parsed methods are re-verified.
Program parse_program(const std::string& text);
Program parse_program(std::istream& is);

}  // namespace javaflow::bytecode
