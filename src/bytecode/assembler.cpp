#include "bytecode/assembler.hpp"

#include <limits>
#include <stdexcept>

#include "bytecode/verifier.hpp"

namespace javaflow::bytecode {

namespace {

Op local_short_form(Op base, int n) {
  // The _0.._3 short forms are contiguous with a fixed layout per base op.
  auto idx = [&](Op zero) {
    return static_cast<Op>(static_cast<int>(zero) + n);
  };
  switch (base) {
    case Op::iload: return idx(Op::iload_0);
    case Op::lload: return idx(Op::lload_0);
    case Op::fload: return idx(Op::fload_0);
    case Op::dload: return idx(Op::dload_0);
    case Op::aload: return idx(Op::aload_0);
    case Op::istore: return idx(Op::istore_0);
    case Op::lstore: return idx(Op::lstore_0);
    case Op::fstore: return idx(Op::fstore_0);
    case Op::dstore: return idx(Op::dstore_0);
    case Op::astore: return idx(Op::astore_0);
    default: return base;
  }
}

}  // namespace

Assembler::Assembler(Program& program, std::string qualified_name,
                     std::string benchmark)
    : program_(program) {
  method_.name = std::move(qualified_name);
  method_.benchmark = std::move(benchmark);
}

Assembler& Assembler::args(std::vector<ValueType> types) {
  method_.arg_types = std::move(types);
  method_.num_args = static_cast<std::uint8_t>(method_.arg_types.size());
  return *this;
}

Assembler& Assembler::returns(ValueType t) {
  method_.return_type = t;
  return *this;
}

Assembler& Assembler::instance() {
  method_.is_static = false;
  return *this;
}

Assembler& Assembler::locals(std::uint16_t max) {
  if (max > method_.max_locals) method_.max_locals = max;
  return *this;
}

Assembler::Label Assembler::new_label() {
  label_pos_.push_back(-1);
  return Label{static_cast<std::int32_t>(label_pos_.size() - 1)};
}

Assembler& Assembler::bind(Label l) {
  if (l.id < 0 || static_cast<std::size_t>(l.id) >= label_pos_.size()) {
    throw std::runtime_error("bind: unknown label");
  }
  if (label_pos_[static_cast<std::size_t>(l.id)] != -1) {
    throw std::runtime_error("bind: label bound twice");
  }
  label_pos_[static_cast<std::size_t>(l.id)] = position();
  return *this;
}

Assembler& Assembler::push_inst(Instruction inst) {
  const OpInfo& info = op_info(inst.op);
  if (info.pop != kVarCount) inst.pop = info.pop;
  if (info.push != kVarCount) inst.push = info.push;
  method_.code.push_back(inst);
  return *this;
}

Assembler& Assembler::emit(Op op) { return push_inst(Instruction{.op = op}); }

Assembler& Assembler::emit_imm(Op op, std::int32_t imm) {
  return push_inst(Instruction{.op = op, .operand = imm});
}

Assembler& Assembler::emit_local(Op op, std::int32_t local) {
  locals(static_cast<std::uint16_t>(local + 1));
  return push_inst(Instruction{.op = op, .operand = local});
}

Assembler& Assembler::emit_cp(Op op, std::int32_t cp_index) {
  return push_inst(Instruction{.op = op, .operand = cp_index});
}

Assembler& Assembler::emit_branch(Op op, Label target) {
  fixups_.emplace_back(position(), target.id);
  return push_inst(Instruction{.op = op, .target = -1});
}

Assembler& Assembler::iconst(std::int32_t v) {
  if (v >= -1 && v <= 5) {
    return emit(static_cast<Op>(static_cast<int>(Op::iconst_0) + v));
  }
  if (v >= std::numeric_limits<std::int8_t>::min() &&
      v <= std::numeric_limits<std::int8_t>::max()) {
    return emit_imm(Op::bipush, v);
  }
  if (v >= std::numeric_limits<std::int16_t>::min() &&
      v <= std::numeric_limits<std::int16_t>::max()) {
    return emit_imm(Op::sipush, v);
  }
  return emit_cp(Op::ldc, program_.pool.add_int(v));
}

Assembler& Assembler::lconst(std::int64_t v) {
  if (v == 0) return emit(Op::lconst_0);
  if (v == 1) return emit(Op::lconst_1);
  return emit_cp(Op::ldc2_w, program_.pool.add_long(v));
}

Assembler& Assembler::fconst(double v) {
  if (v == 0.0) return emit(Op::fconst_0);
  if (v == 1.0) return emit(Op::fconst_1);
  if (v == 2.0) return emit(Op::fconst_2);
  return emit_cp(Op::ldc, program_.pool.add_float(v));
}

Assembler& Assembler::dconst(double v) {
  if (v == 0.0) return emit(Op::dconst_0);
  if (v == 1.0) return emit(Op::dconst_1);
  return emit_cp(Op::ldc2_w, program_.pool.add_double(v));
}

Assembler& Assembler::sconst(const std::string& v) {
  return emit_cp(Op::ldc, program_.pool.add_string(v));
}

Assembler& Assembler::iload(int n) {
  locals(static_cast<std::uint16_t>(n + 1));
  if (n <= 3) return emit(local_short_form(Op::iload, n));
  return emit_local(Op::iload, n);
}
Assembler& Assembler::lload(int n) {
  locals(static_cast<std::uint16_t>(n + 1));
  if (n <= 3) return emit(local_short_form(Op::lload, n));
  return emit_local(Op::lload, n);
}
Assembler& Assembler::fload(int n) {
  locals(static_cast<std::uint16_t>(n + 1));
  if (n <= 3) return emit(local_short_form(Op::fload, n));
  return emit_local(Op::fload, n);
}
Assembler& Assembler::dload(int n) {
  locals(static_cast<std::uint16_t>(n + 1));
  if (n <= 3) return emit(local_short_form(Op::dload, n));
  return emit_local(Op::dload, n);
}
Assembler& Assembler::aload(int n) {
  locals(static_cast<std::uint16_t>(n + 1));
  if (n <= 3) return emit(local_short_form(Op::aload, n));
  return emit_local(Op::aload, n);
}
Assembler& Assembler::istore(int n) {
  locals(static_cast<std::uint16_t>(n + 1));
  if (n <= 3) return emit(local_short_form(Op::istore, n));
  return emit_local(Op::istore, n);
}
Assembler& Assembler::lstore(int n) {
  locals(static_cast<std::uint16_t>(n + 1));
  if (n <= 3) return emit(local_short_form(Op::lstore, n));
  return emit_local(Op::lstore, n);
}
Assembler& Assembler::fstore(int n) {
  locals(static_cast<std::uint16_t>(n + 1));
  if (n <= 3) return emit(local_short_form(Op::fstore, n));
  return emit_local(Op::fstore, n);
}
Assembler& Assembler::dstore(int n) {
  locals(static_cast<std::uint16_t>(n + 1));
  if (n <= 3) return emit(local_short_form(Op::dstore, n));
  return emit_local(Op::dstore, n);
}
Assembler& Assembler::astore(int n) {
  locals(static_cast<std::uint16_t>(n + 1));
  if (n <= 3) return emit(local_short_form(Op::astore, n));
  return emit_local(Op::astore, n);
}

Assembler& Assembler::iinc(int n, std::int32_t delta) {
  locals(static_cast<std::uint16_t>(n + 1));
  return push_inst(Instruction{.op = Op::iinc, .operand = n,
                               .operand2 = delta});
}

Assembler& Assembler::getfield(const std::string& cls,
                               const std::string& field, ValueType type) {
  return emit_cp(Op::getfield, program_.pool.add_field(FieldRef{
                                   cls, field, type, /*is_static=*/false}));
}
Assembler& Assembler::putfield(const std::string& cls,
                               const std::string& field, ValueType type) {
  return emit_cp(Op::putfield, program_.pool.add_field(FieldRef{
                                   cls, field, type, /*is_static=*/false}));
}
Assembler& Assembler::getstatic(const std::string& cls,
                                const std::string& field, ValueType type) {
  return emit_cp(Op::getstatic, program_.pool.add_field(FieldRef{
                                    cls, field, type, /*is_static=*/true}));
}
Assembler& Assembler::putstatic(const std::string& cls,
                                const std::string& field, ValueType type) {
  return emit_cp(Op::putstatic, program_.pool.add_field(FieldRef{
                                    cls, field, type, /*is_static=*/true}));
}

std::int32_t Assembler::method_cp(const std::string& qualified, int argc,
                                  ValueType ret) {
  return program_.pool.add_method(
      MethodRef{qualified, static_cast<std::uint8_t>(argc), ret});
}

Assembler& Assembler::invokestatic(const std::string& q, int argc,
                                   ValueType ret) {
  Instruction i{.op = Op::invokestatic, .operand = method_cp(q, argc, ret)};
  i.pop = static_cast<std::uint8_t>(argc);
  i.push = ret == ValueType::Void ? 0 : 1;
  return push_inst(i);
}
Assembler& Assembler::invokevirtual(const std::string& q, int argc,
                                    ValueType ret) {
  Instruction i{.op = Op::invokevirtual, .operand = method_cp(q, argc, ret)};
  i.pop = static_cast<std::uint8_t>(argc);
  i.push = ret == ValueType::Void ? 0 : 1;
  return push_inst(i);
}
Assembler& Assembler::invokespecial(const std::string& q, int argc,
                                    ValueType ret) {
  Instruction i{.op = Op::invokespecial, .operand = method_cp(q, argc, ret)};
  i.pop = static_cast<std::uint8_t>(argc);
  i.push = ret == ValueType::Void ? 0 : 1;
  return push_inst(i);
}
Assembler& Assembler::invokeinterface(const std::string& q, int argc,
                                      ValueType ret) {
  Instruction i{.op = Op::invokeinterface, .operand = method_cp(q, argc, ret),
                .operand2 = argc};
  i.pop = static_cast<std::uint8_t>(argc);
  i.push = ret == ValueType::Void ? 0 : 1;
  return push_inst(i);
}

Assembler& Assembler::new_object(const std::string& cls) {
  return emit_cp(Op::new_, program_.pool.add_class(ClassRef{cls, 1}));
}

Assembler& Assembler::newarray(ValueType element) {
  return emit_imm(Op::newarray, static_cast<std::int32_t>(element));
}

Assembler& Assembler::anewarray(const std::string& cls) {
  return emit_cp(Op::anewarray, program_.pool.add_class(ClassRef{cls, 1}));
}

Assembler& Assembler::multianewarray(const std::string& cls, int dims) {
  Instruction i{.op = Op::multianewarray,
                .operand = program_.pool.add_class(ClassRef{cls, dims}),
                .operand2 = dims};
  i.pop = static_cast<std::uint8_t>(dims);
  i.push = 1;
  return push_inst(i);
}

Assembler& Assembler::tableswitch(std::int32_t low,
                                  const std::vector<Label>& targets,
                                  Label default_target) {
  SwitchTable table;
  for (std::size_t k = 0; k < targets.size(); ++k) {
    table.keys.push_back(low + static_cast<std::int32_t>(k));
    table.targets.push_back(-1);
    switch_fixups_.emplace_back(
        static_cast<std::int32_t>(method_.switches.size()),
        static_cast<std::int32_t>(k), targets[k].id);
  }
  switch_fixups_.emplace_back(
      static_cast<std::int32_t>(method_.switches.size()), -1,
      default_target.id);
  method_.switches.push_back(std::move(table));
  return emit_imm(Op::tableswitch,
                  static_cast<std::int32_t>(method_.switches.size() - 1));
}

Assembler& Assembler::lookupswitch(
    const std::vector<std::pair<std::int32_t, Label>>& cases,
    Label default_target) {
  SwitchTable table;
  for (std::size_t k = 0; k < cases.size(); ++k) {
    table.keys.push_back(cases[k].first);
    table.targets.push_back(-1);
    switch_fixups_.emplace_back(
        static_cast<std::int32_t>(method_.switches.size()),
        static_cast<std::int32_t>(k), cases[k].second.id);
  }
  switch_fixups_.emplace_back(
      static_cast<std::int32_t>(method_.switches.size()), -1,
      default_target.id);
  method_.switches.push_back(std::move(table));
  return emit_imm(Op::lookupswitch,
                  static_cast<std::int32_t>(method_.switches.size() - 1));
}

Method Assembler::build() {
  // Arguments occupy locals [0, num_args); `this` for instance methods is
  // counted in arg_types by the kernels that need it.
  if (method_.max_locals < method_.num_args) {
    method_.max_locals = method_.num_args;
  }
  for (const auto& [pos, label] : fixups_) {
    const std::int32_t at = label_pos_[static_cast<std::size_t>(label)];
    if (at < 0) {
      throw std::runtime_error(method_.name + ": unbound label in branch");
    }
    method_.code[static_cast<std::size_t>(pos)].target = at;
  }
  for (const auto& [tbl, case_idx, label] : switch_fixups_) {
    const std::int32_t at = label_pos_[static_cast<std::size_t>(label)];
    if (at < 0) {
      throw std::runtime_error(method_.name + ": unbound label in switch");
    }
    SwitchTable& table = method_.switches[static_cast<std::size_t>(tbl)];
    if (case_idx < 0) {
      table.default_target = at;
    } else {
      table.targets[static_cast<std::size_t>(case_idx)] = at;
    }
  }
  VerifyResult vr = verify(method_, program_.pool);
  if (!vr.ok) {
    throw std::runtime_error(method_.name + ": verification failed: " +
                             vr.error);
  }
  method_.max_stack = vr.max_stack;
  return std::move(method_);
}

}  // namespace javaflow::bytecode
