// In-memory representation of Java methods in the linear-address form the
// JavaFlow machine consumes (§4.2): one instruction per linear slot,
// branch targets expressed as linear instruction indices.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "bytecode/opcode.hpp"

namespace javaflow::bytecode {

// ValueType lives in bytecode/opcode.hpp next to the signature alphabet
// it encodes (re-exported here via the include above).

// One ByteCode instruction in linear-address form.
struct Instruction {
  Op op = Op::nop;
  std::int32_t operand = 0;   // immediate / local index / cp index / imm
  std::int32_t operand2 = 0;  // iinc increment; invokeinterface count
  std::int32_t target = -1;   // linear index of the taken path (branches)
  std::uint8_t pop = 0;       // resolved pop count (calls differ per site)
  std::uint8_t push = 0;      // resolved push count

  Group group() const noexcept { return op_info(op).group; }
  bool is_branch() const noexcept {
    return op_info(op).operand == OperandKind::Branch;
  }
};

// The local register a LocalRead/LocalWrite/LocalInc instruction touches
// (decodes the _0.._3 short forms); -1 for other groups.
std::int32_t local_register(const Instruction& inst) noexcept;

// tableswitch / lookupswitch side table (keys + targets + default).
struct SwitchTable {
  std::vector<std::int32_t> keys;     // matched values (lookupswitch) or
                                      // low..high (tableswitch, dense)
  std::vector<std::int32_t> targets;  // linear indices, parallel to keys
  std::int32_t default_target = -1;
};

// ---- Constant pool -------------------------------------------------------

// A field reference before resolution ("symbolic"); resolution assigns the
// concrete slot index (the paper's `_Quick` rewriting caches this).
struct FieldRef {
  std::string class_name;
  std::string field_name;
  ValueType type = ValueType::Int;
  bool is_static = false;
  // Filled by resolution (interpreter) — slot within the class statics or
  // the instance layout.
  std::int32_t resolved_slot = -1;
};

struct MethodRef {
  std::string qualified_name;  // "Class.method(sig)" — unique in a Program
  std::uint8_t arg_values = 0; // values popped (incl. receiver if instance)
  ValueType return_type = ValueType::Void;
};

struct ClassRef {
  std::string class_name;
  std::int32_t dims = 1;  // for multianewarray
};

// One constant-pool entry (paper Figure 10: constants, field and method
// definitions/references all live in the pool).
struct CpEntry {
  enum class Kind : std::uint8_t {
    Int, Long, Float, Double, Str, Field, Method, Class
  };
  Kind kind = Kind::Int;
  std::int64_t i = 0;      // Int/Long payload
  double d = 0.0;          // Float/Double payload
  std::string s;           // Str payload
  FieldRef field;          // Field payload
  MethodRef method;        // Method payload
  ClassRef cls;            // Class payload
};

class ConstantPool {
 public:
  std::int32_t add_int(std::int64_t v);
  std::int32_t add_long(std::int64_t v);
  std::int32_t add_float(double v);
  std::int32_t add_double(double v);
  std::int32_t add_string(std::string v);
  std::int32_t add_field(FieldRef f);
  std::int32_t add_method(MethodRef m);
  std::int32_t add_class(ClassRef c);

  const CpEntry& at(std::int32_t idx) const;
  CpEntry& at_mutable(std::int32_t idx);
  std::size_t size() const noexcept { return entries_.size(); }

  // The stack type a load of this entry produces (ldc family / getfield).
  ValueType load_type(std::int32_t idx) const;

 private:
  std::int32_t push_entry(CpEntry e);
  std::vector<CpEntry> entries_;
};

// ---- Method / class / program -------------------------------------------

struct Method {
  std::string name;        // qualified: "Class.method(sig)"
  std::string benchmark;   // owning benchmark tag (e.g. "scimark.fft.large")
  std::uint16_t max_locals = 0;
  std::uint16_t max_stack = 0;  // computed by the verifier
  std::uint8_t num_args = 0;    // argument values (copied into locals 0..n)
  ValueType return_type = ValueType::Void;
  bool is_static = true;        // non-static methods receive `this` in r0
  std::vector<ValueType> arg_types;  // size == num_args
  std::vector<Instruction> code;
  std::vector<SwitchTable> switches;

  std::size_t size() const noexcept { return code.size(); }
};

// Class definition: instance field layout and static slots.
struct ClassDef {
  std::string name;
  std::vector<std::pair<std::string, ValueType>> instance_fields;
  std::vector<std::pair<std::string, ValueType>> static_fields;

  std::optional<std::int32_t> instance_slot(const std::string& f) const;
  std::optional<std::int32_t> static_slot(const std::string& f) const;
};

// A complete loadable program image: pool + classes + methods.
struct Program {
  ConstantPool pool;
  std::map<std::string, ClassDef> classes;
  std::vector<Method> methods;

  const Method* find(const std::string& qualified_name) const;
  Method* find_mutable(const std::string& qualified_name);
  const ClassDef* find_class(const std::string& name) const;
};

}  // namespace javaflow::bytecode
