#include "bytecode/textio.hpp"

#include <cctype>
#include <cstdio>
#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "bytecode/verifier.hpp"

namespace javaflow::bytecode {
namespace {

// ---- shared helpers --------------------------------------------------------

const std::map<std::string_view, Op>& op_by_name() {
  static const std::map<std::string_view, Op> table = [] {
    std::map<std::string_view, Op> t;
    for (int b = 0; b < 256; ++b) {
      if (is_valid_opcode(static_cast<std::uint8_t>(b))) {
        const Op op = static_cast<Op>(b);
        t.emplace(op_name(op), op);
      }
    }
    return t;
  }();
  return table;
}

ValueType parse_value_type(const std::string& s, int line) {
  for (const ValueType t : {ValueType::Int, ValueType::Long,
                            ValueType::Float, ValueType::Double,
                            ValueType::Ref, ValueType::Void}) {
    if (s == value_type_name(t)) return t;
  }
  throw std::runtime_error("line " + std::to_string(line) +
                           ": unknown value type '" + s + "'");
}

std::string fp_to_string(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (std::isprint(static_cast<unsigned char>(c)) != 0) {
          out.push_back(c);
        } else {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\x%02x",
                        static_cast<unsigned char>(c));
          out += buf;
        }
    }
  }
  return out;
}

std::string unescape(const std::string& s, int line) {
  std::string out;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\') {
      out.push_back(s[i]);
      continue;
    }
    if (++i >= s.size()) {
      throw std::runtime_error("line " + std::to_string(line) +
                               ": dangling escape");
    }
    switch (s[i]) {
      case '\\': out.push_back('\\'); break;
      case '"': out.push_back('"'); break;
      case 'n': out.push_back('\n'); break;
      case 't': out.push_back('\t'); break;
      case 'x': {
        if (i + 2 >= s.size()) {
          throw std::runtime_error("line " + std::to_string(line) +
                                   ": bad \\x escape");
        }
        out.push_back(static_cast<char>(
            std::stoi(s.substr(i + 1, 2), nullptr, 16)));
        i += 2;
        break;
      }
      default:
        throw std::runtime_error("line " + std::to_string(line) +
                                 ": unknown escape");
    }
  }
  return out;
}

std::vector<std::string> split_ws(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream is(line);
  std::string tok;
  while (is >> tok) out.push_back(tok);
  return out;
}

std::string join_ints(const std::vector<std::int32_t>& v) {
  std::string out;
  for (std::size_t k = 0; k < v.size(); ++k) {
    if (k) out += ",";
    out += std::to_string(v[k]);
  }
  return out;
}

std::vector<std::int32_t> parse_ints(const std::string& s, int line) {
  std::vector<std::int32_t> out;
  std::string cur;
  for (const char c : s + ",") {
    if (c == ',') {
      if (!cur.empty()) {
        try {
          out.push_back(std::stoi(cur));
        } catch (...) {
          throw std::runtime_error("line " + std::to_string(line) +
                                   ": bad integer list");
        }
        cur.clear();
      }
    } else {
      cur.push_back(c);
    }
  }
  return out;
}

// ---- writing ---------------------------------------------------------------

void write_cp_operand(const Method& m, const Instruction& inst,
                      const ConstantPool& pool, std::ostream& os) {
  const CpEntry& e = pool.at(inst.operand);
  switch (e.kind) {
    case CpEntry::Kind::Int:
      os << " int " << e.i;
      break;
    case CpEntry::Kind::Long:
      os << " long " << e.i;
      break;
    case CpEntry::Kind::Float:
      os << " float " << fp_to_string(e.d);
      break;
    case CpEntry::Kind::Double:
      os << " double " << fp_to_string(e.d);
      break;
    case CpEntry::Kind::Str:
      os << " str \"" << escape(e.s) << "\"";
      break;
    case CpEntry::Kind::Field:
      os << " " << e.field.class_name << "." << e.field.field_name << " "
         << value_type_name(e.field.type);
      break;
    case CpEntry::Kind::Method:
      os << " " << e.method.qualified_name << " "
         << int(e.method.arg_values) << " "
         << value_type_name(e.method.return_type);
      break;
    case CpEntry::Kind::Class:
      os << " " << e.cls.class_name;
      if (inst.op == Op::multianewarray) os << " " << e.cls.dims;
      break;
  }
  (void)m;
}

}  // namespace

void write_method(const Method& m, const ConstantPool& pool,
                  std::ostream& os) {
  os << ".method " << m.name << "\n";
  if (!m.benchmark.empty()) os << ".benchmark " << m.benchmark << "\n";
  if (!m.is_static) os << ".instance\n";
  os << ".args";
  for (const ValueType t : m.arg_types) os << " " << value_type_name(t);
  os << "\n.returns " << value_type_name(m.return_type) << "\n";
  os << ".locals " << m.max_locals << "\n";
  for (std::size_t i = 0; i < m.code.size(); ++i) {
    const Instruction& inst = m.code[i];
    const OpInfo& info = op_info(inst.op);
    os << "  " << i << ": " << info.name;
    switch (info.operand) {
      case OperandKind::None:
        break;
      case OperandKind::Imm:
        os << " " << inst.operand;
        break;
      case OperandKind::Local:
        os << " " << inst.operand;
        if (inst.op == Op::iinc) os << " " << inst.operand2;
        break;
      case OperandKind::Branch:
        os << " " << inst.target;
        break;
      case OperandKind::Switch: {
        const SwitchTable& t =
            m.switches[static_cast<std::size_t>(inst.operand)];
        os << " keys=" << join_ints(t.keys)
           << " targets=" << join_ints(t.targets)
           << " default=" << t.default_target;
        break;
      }
      case OperandKind::Cp:
        write_cp_operand(m, inst, pool, os);
        break;
    }
    os << "\n";
  }
  os << ".end\n";
}

void write_program(const Program& program, std::ostream& os) {
  os << "# javaflow .jfasm program image\n";
  for (const auto& [name, cls] : program.classes) {
    os << "\n.class " << name << "\n";
    for (const auto& [field, type] : cls.instance_fields) {
      os << ".field " << field << " " << value_type_name(type) << "\n";
    }
    for (const auto& [field, type] : cls.static_fields) {
      os << ".static " << field << " " << value_type_name(type) << "\n";
    }
    os << ".end\n";
  }
  for (const Method& m : program.methods) {
    os << "\n";
    write_method(m, program.pool, os);
  }
}

std::string write_program(const Program& program) {
  std::ostringstream os;
  write_program(program, os);
  return os.str();
}

// ---- parsing ---------------------------------------------------------------

namespace {

struct Parser {
  Program program;
  std::istream& is;
  int line_no = 0;

  explicit Parser(std::istream& in) : is(in) {}

  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("line " + std::to_string(line_no) + ": " + why);
  }

  bool next_line(std::string& out) {
    while (std::getline(is, out)) {
      ++line_no;
      const auto first = out.find_first_not_of(" \t\r");
      if (first == std::string::npos) continue;
      if (out[first] == '#' || out[first] == ';') continue;
      return true;
    }
    return false;
  }

  void run() {
    std::string line;
    while (next_line(line)) {
      const auto toks = split_ws(line);
      if (toks[0] == ".class") {
        if (toks.size() != 2) fail(".class wants a name");
        parse_class(toks[1]);
      } else if (toks[0] == ".method") {
        if (toks.size() != 2) fail(".method wants a name");
        parse_method(toks[1]);
      } else {
        fail("expected .class or .method, got '" + toks[0] + "'");
      }
    }
  }

  void parse_class(const std::string& name) {
    ClassDef cls;
    cls.name = name;
    std::string line;
    while (next_line(line)) {
      const auto toks = split_ws(line);
      if (toks[0] == ".end") {
        program.classes[name] = std::move(cls);
        return;
      }
      if (toks.size() != 3 ||
          (toks[0] != ".field" && toks[0] != ".static")) {
        fail("expected .field/.static name type");
      }
      const ValueType t = parse_value_type(toks[2], line_no);
      if (toks[0] == ".field") {
        cls.instance_fields.emplace_back(toks[1], t);
      } else {
        cls.static_fields.emplace_back(toks[1], t);
      }
    }
    fail("unterminated .class block");
  }

  void parse_method(const std::string& name) {
    Method m;
    m.name = name;
    std::string line;
    while (next_line(line)) {
      const auto toks = split_ws(line);
      if (toks[0] == ".end") {
        finish_method(std::move(m));
        return;
      }
      if (toks[0] == ".benchmark") {
        if (toks.size() != 2) fail(".benchmark wants a tag");
        m.benchmark = toks[1];
      } else if (toks[0] == ".instance") {
        m.is_static = false;
      } else if (toks[0] == ".args") {
        m.arg_types.clear();
        for (std::size_t k = 1; k < toks.size(); ++k) {
          m.arg_types.push_back(parse_value_type(toks[k], line_no));
        }
        m.num_args = static_cast<std::uint8_t>(m.arg_types.size());
      } else if (toks[0] == ".returns") {
        if (toks.size() != 2) fail(".returns wants a type");
        m.return_type = parse_value_type(toks[1], line_no);
      } else if (toks[0] == ".locals") {
        if (toks.size() != 2) fail(".locals wants a count");
        m.max_locals = static_cast<std::uint16_t>(std::stoi(toks[1]));
      } else {
        parse_instruction(m, toks);
      }
    }
    fail("unterminated .method block");
  }

  void parse_instruction(Method& m, const std::vector<std::string>& toks) {
    // "<idx>: <op> [operands...]"
    if (toks.size() < 2 || toks[0].back() != ':') {
      fail("expected '<index>: <op>'");
    }
    const auto idx = std::stol(toks[0].substr(0, toks[0].size() - 1));
    if (idx != static_cast<long>(m.code.size())) {
      fail("instruction index out of order");
    }
    const auto it = op_by_name().find(toks[1]);
    if (it == op_by_name().end()) fail("unknown opcode '" + toks[1] + "'");
    Instruction inst;
    inst.op = it->second;
    const OpInfo& info = op_info(inst.op);
    if (info.pop != kVarCount) inst.pop = info.pop;
    if (info.push != kVarCount) inst.push = info.push;

    auto want = [&](std::size_t n) {
      if (toks.size() != n) {
        fail(std::string(info.name) + " wants " + std::to_string(n - 2) +
             " operand(s)");
      }
    };
    switch (info.operand) {
      case OperandKind::None:
        want(2);
        break;
      case OperandKind::Imm:
        want(3);
        inst.operand = std::stoi(toks[2]);
        break;
      case OperandKind::Local:
        if (inst.op == Op::iinc) {
          want(4);
          inst.operand = std::stoi(toks[2]);
          inst.operand2 = std::stoi(toks[3]);
        } else {
          want(3);
          inst.operand = std::stoi(toks[2]);
        }
        break;
      case OperandKind::Branch:
        want(3);
        inst.target = std::stoi(toks[2]);
        break;
      case OperandKind::Switch: {
        want(5);
        SwitchTable table;
        auto strip = [&](const std::string& tok, const char* key) {
          const std::string prefix = std::string(key) + "=";
          if (tok.rfind(prefix, 0) != 0) {
            fail("switch operand must start with " + prefix);
          }
          return tok.substr(prefix.size());
        };
        table.keys = parse_ints(strip(toks[2], "keys"), line_no);
        table.targets = parse_ints(strip(toks[3], "targets"), line_no);
        table.default_target = std::stoi(strip(toks[4], "default"));
        if (table.keys.size() != table.targets.size()) {
          fail("switch keys/targets size mismatch");
        }
        inst.operand = static_cast<std::int32_t>(m.switches.size());
        m.switches.push_back(std::move(table));
        break;
      }
      case OperandKind::Cp:
        parse_cp_operand(m, inst, toks);
        break;
    }
    m.code.push_back(inst);
  }

  void parse_cp_operand(Method& m, Instruction& inst,
                        const std::vector<std::string>& toks) {
    (void)m;
    const Group g = inst.group();
    if (g == Group::MemConstant) {
      if (toks.size() < 4) fail("constant wants '<kind> <value>'");
      const std::string& kind = toks[2];
      if (kind == "int") {
        inst.operand = program.pool.add_int(std::stoll(toks[3]));
      } else if (kind == "long") {
        inst.operand = program.pool.add_long(std::stoll(toks[3]));
      } else if (kind == "float") {
        inst.operand = program.pool.add_float(std::stod(toks[3]));
      } else if (kind == "double") {
        inst.operand = program.pool.add_double(std::stod(toks[3]));
      } else if (kind == "str") {
        // Re-join the remaining tokens and strip the quotes.
        std::string raw = toks[3];
        for (std::size_t k = 4; k < toks.size(); ++k) raw += " " + toks[k];
        if (raw.size() < 2 || raw.front() != '"' || raw.back() != '"') {
          fail("string constant must be quoted");
        }
        inst.operand = program.pool.add_string(
            unescape(raw.substr(1, raw.size() - 2), line_no));
      } else {
        fail("unknown constant kind '" + kind + "'");
      }
      return;
    }
    if (g == Group::MemRead || g == Group::MemWrite) {
      // "<Cls.field> <type>" — split at the last '.'.
      if (toks.size() != 4) fail("field access wants 'Cls.field type'");
      const std::string& qual = toks[2];
      const auto dot = qual.rfind('.');
      if (dot == std::string::npos) fail("field wants 'Cls.field'");
      FieldRef ref;
      ref.class_name = qual.substr(0, dot);
      ref.field_name = qual.substr(dot + 1);
      ref.type = parse_value_type(toks[3], line_no);
      ref.is_static =
          inst.op == Op::getstatic || inst.op == Op::putstatic ||
          inst.op == Op::getstatic_quick || inst.op == Op::putstatic_quick;
      inst.operand = program.pool.add_field(std::move(ref));
      return;
    }
    if (g == Group::Call) {
      if (toks.size() != 5) fail("call wants 'name argc ret'");
      MethodRef ref;
      ref.qualified_name = toks[2];
      ref.arg_values = static_cast<std::uint8_t>(std::stoi(toks[3]));
      ref.return_type = parse_value_type(toks[4], line_no);
      inst.pop = ref.arg_values;
      inst.push = ref.return_type == ValueType::Void ? 0 : 1;
      inst.operand = program.pool.add_method(std::move(ref));
      return;
    }
    // Class operands: new/anewarray/checkcast/instanceof/multianewarray.
    if (inst.op == Op::multianewarray) {
      if (toks.size() != 4) fail("multianewarray wants 'Cls dims'");
      const int dims = std::stoi(toks[3]);
      inst.operand = program.pool.add_class(ClassRef{toks[2], dims});
      inst.operand2 = dims;
      inst.pop = static_cast<std::uint8_t>(dims);
      inst.push = 1;
      return;
    }
    if (toks.size() != 3) fail("class operand wants a name");
    inst.operand = program.pool.add_class(ClassRef{toks[2], 1});
  }

  void finish_method(Method m) {
    if (m.max_locals < m.num_args) m.max_locals = m.num_args;
    const VerifyResult vr = verify(m, program.pool);
    if (!vr.ok) {
      fail("method " + m.name + " failed verification: " + vr.error);
    }
    m.max_stack = vr.max_stack;
    program.methods.push_back(std::move(m));
  }
};

}  // namespace

Program parse_program(std::istream& is) {
  Parser p(is);
  p.run();
  return std::move(p.program);
}

Program parse_program(const std::string& text) {
  std::istringstream is(text);
  return parse_program(is);
}

}  // namespace javaflow::bytecode
