#include "bytecode/verifier.hpp"

#include <algorithm>
#include <deque>
#include <sstream>

namespace javaflow::bytecode {
namespace {

using Stack = std::vector<ValueType>;

// type_from_sig_char / is_generic_sig_char come from bytecode/opcode.hpp —
// the single source of truth for the signature alphabet.

struct Verifier {
  const Method& m;
  const ConstantPool& pool;
  VerifyResult result;

  std::vector<Stack> entry;      // entry stack per instruction
  std::vector<bool> reachable;

  explicit Verifier(const Method& method, const ConstantPool& cp)
      : m(method), pool(cp) {
    entry.resize(m.code.size());
    reachable.assign(m.code.size(), false);
  }

  [[nodiscard]] bool fail(std::size_t at, const std::string& why) {
    std::ostringstream os;
    os << "@" << at << " " << op_name(m.code[at].op) << ": " << why;
    result.error = os.str();
    return false;
  }

  // Applies one instruction to `s`; returns false (with error set) on a
  // structural violation. `at` is the linear index, for diagnostics.
  bool transfer(std::size_t at, Stack& s) {
    const Instruction& inst = m.code[at];
    const OpInfo& info = op_info(inst.op);

    // --- special-cased opcodes whose types come from the pool/site ---
    switch (inst.op) {
      case Op::ldc:
      case Op::ldc_w:
      case Op::ldc2_w:
      case Op::ldc_quick:
      case Op::ldc_w_quick:
      case Op::ldc2_w_quick:
        s.push_back(pool.load_type(inst.operand));
        return true;
      case Op::getstatic:
      case Op::getstatic_quick:
        s.push_back(pool.at(inst.operand).field.type);
        return true;
      case Op::getfield:
      case Op::getfield_quick: {
        if (s.empty()) return fail(at, "stack underflow");
        if (s.back() != ValueType::Ref) return fail(at, "expected ref");
        s.pop_back();
        s.push_back(pool.at(inst.operand).field.type);
        return true;
      }
      case Op::putstatic:
      case Op::putstatic_quick: {
        if (s.empty()) return fail(at, "stack underflow");
        if (s.back() != pool.at(inst.operand).field.type) {
          return fail(at, "field type mismatch");
        }
        s.pop_back();
        return true;
      }
      case Op::putfield:
      case Op::putfield_quick: {
        if (s.size() < 2) return fail(at, "stack underflow");
        if (s.back() != pool.at(inst.operand).field.type) {
          return fail(at, "field type mismatch");
        }
        s.pop_back();
        if (s.back() != ValueType::Ref) return fail(at, "expected ref");
        s.pop_back();
        return true;
      }
      case Op::invokevirtual:
      case Op::invokespecial:
      case Op::invokestatic:
      case Op::invokeinterface: {
        if (s.size() < inst.pop) return fail(at, "stack underflow at call");
        s.resize(s.size() - inst.pop);
        const MethodRef& ref = pool.at(inst.operand).method;
        if (ref.return_type != ValueType::Void) {
          s.push_back(ref.return_type);
        }
        return true;
      }
      case Op::multianewarray: {
        if (s.size() < inst.pop) return fail(at, "stack underflow");
        for (int k = 0; k < inst.pop; ++k) {
          if (s.back() != ValueType::Int) {
            return fail(at, "array dimension must be int");
          }
          s.pop_back();
        }
        s.push_back(ValueType::Ref);
        return true;
      }
      case Op::jsr:
      case Op::jsr_w:
      case Op::ret:
        // Not deployed to the fabric and excluded from the corpus (§6.3,
        // "Special Instructions"); the verifier rejects them so they can
        // never reach the machine by accident.
        return fail(at, "jsr/ret are not supported in fabric methods");
      default:
        break;
    }

    // --- generic signature-driven path ---
    const std::string_view sig = info.sig;
    const std::size_t sep = sig.find('>');
    const std::string_view pops = sig.substr(0, sep);
    const std::string_view pushes = sig.substr(sep + 1);

    // Bind generic letters against the current stack: the last pop char is
    // the top of stack.
    ValueType bound[4] = {ValueType::Void, ValueType::Void, ValueType::Void,
                          ValueType::Void};
    auto bind_index = [](char c) { return c - 'W'; };  // W,X,Y,Z -> 0..3

    if (s.size() < pops.size()) return fail(at, "stack underflow");
    for (std::size_t k = 0; k < pops.size(); ++k) {
      const char c = pops[pops.size() - 1 - k];  // from top downward
      const ValueType have = s[s.size() - 1 - k];
      if (is_generic_sig_char(c)) {
        ValueType& slot = bound[bind_index(c)];
        if (slot == ValueType::Void) {
          slot = have;
        } else if (slot != have) {
          return fail(at, "inconsistent generic operand types");
        }
      } else {
        if (have != type_from_sig_char(c)) {
          std::ostringstream os;
          os << "operand type mismatch: expected " << c << " got "
             << value_type_name(have);
          return fail(at, os.str());
        }
      }
    }
    s.resize(s.size() - pops.size());
    for (const char c : pushes) {
      s.push_back(is_generic_sig_char(c) ? bound[bind_index(c)]
                                         : type_from_sig_char(c));
    }
    return true;
  }

  // Local-variable type tracking is deliberately coarse (depth-correct,
  // type-checked at load sites only when every path agrees); the machine's
  // correctness depends on the *stack* discipline, which is fully checked.
  bool check_locals(std::size_t at, const Stack& s) {
    const Instruction& inst = m.code[at];
    const Group g = inst.group();
    if (g == Group::LocalRead || g == Group::LocalWrite ||
        g == Group::LocalInc) {
      const std::int32_t idx = local_index(inst);
      if (idx < 0 || idx >= m.max_locals) {
        return fail(at, "local index out of range");
      }
    }
    if (g == Group::LocalWrite && s.empty()) {
      return fail(at, "store with empty stack");
    }
    return true;
  }

  static std::int32_t local_index(const Instruction& inst) {
    switch (inst.op) {
      case Op::iload_0: case Op::lload_0: case Op::fload_0:
      case Op::dload_0: case Op::aload_0: case Op::istore_0:
      case Op::lstore_0: case Op::fstore_0: case Op::dstore_0:
      case Op::astore_0:
        return 0;
      case Op::iload_1: case Op::lload_1: case Op::fload_1:
      case Op::dload_1: case Op::aload_1: case Op::istore_1:
      case Op::lstore_1: case Op::fstore_1: case Op::dstore_1:
      case Op::astore_1:
        return 1;
      case Op::iload_2: case Op::lload_2: case Op::fload_2:
      case Op::dload_2: case Op::aload_2: case Op::istore_2:
      case Op::lstore_2: case Op::fstore_2: case Op::dstore_2:
      case Op::astore_2:
        return 2;
      case Op::iload_3: case Op::lload_3: case Op::fload_3:
      case Op::dload_3: case Op::aload_3: case Op::istore_3:
      case Op::lstore_3: case Op::fstore_3: case Op::dstore_3:
      case Op::astore_3:
        return 3;
      default:
        return inst.operand;
    }
  }

  // Successor linear indices of instruction `at` (empty for terminators).
  std::vector<std::int32_t> successors(std::size_t at) const {
    const Instruction& inst = m.code[at];
    std::vector<std::int32_t> out;
    const Group g = inst.group();
    if (g == Group::Return) return out;  // incl. athrow
    if (inst.op == Op::tableswitch || inst.op == Op::lookupswitch) {
      const SwitchTable& table =
          m.switches[static_cast<std::size_t>(inst.operand)];
      out = table.targets;
      out.push_back(table.default_target);
      return out;
    }
    if (inst.is_branch()) {
      out.push_back(inst.target);
      if (inst.op != Op::goto_ && inst.op != Op::goto_w) {
        out.push_back(static_cast<std::int32_t>(at) + 1);
      }
      return out;
    }
    out.push_back(static_cast<std::int32_t>(at) + 1);
    return out;
  }

  bool merge_into(std::int32_t succ, const Stack& s, std::size_t from) {
    if (succ < 0 || static_cast<std::size_t>(succ) >= m.code.size()) {
      return fail(from, "branch/fall-through outside method");
    }
    const auto idx = static_cast<std::size_t>(succ);
    if (!reachable[idx]) {
      reachable[idx] = true;
      entry[idx] = s;
      worklist.push_back(succ);
      return true;
    }
    if (entry[idx] != s) {
      // Figure 9: merge points must agree on the full stack shape.
      std::ostringstream os;
      os << "stack shape mismatch at merge target " << succ << " (depth "
         << entry[idx].size() << " vs " << s.size() << ")";
      result.error = os.str();
      return false;
    }
    return true;
  }

  std::deque<std::int32_t> worklist;

  bool run() {
    if (m.code.empty()) {
      result.error = "empty method";
      return false;
    }
    reachable[0] = true;
    entry[0] = {};
    worklist.push_back(0);
    std::size_t max_depth = 0;

    while (!worklist.empty()) {
      const auto at = static_cast<std::size_t>(worklist.front());
      worklist.pop_front();
      Stack s = entry[at];
      if (!check_locals(at, s)) return false;
      if (!transfer(at, s)) return false;
      max_depth = std::max(max_depth, s.size());
      for (const std::int32_t succ : successors(at)) {
        if (!merge_into(succ, s, at)) return false;
      }
      // Return-type check.
      const Instruction& inst = m.code[at];
      if (inst.group() == Group::Return && inst.op != Op::athrow) {
        const ValueType want = m.return_type;
        const bool has_val = inst.op != Op::return_;
        if (has_val != (want != ValueType::Void)) {
          return fail(at, "return arity disagrees with method signature");
        }
      }
    }

    result.max_stack = static_cast<std::uint16_t>(max_depth);
    result.entry_depth.resize(m.code.size(), -1);
    result.entry_stack.resize(m.code.size());
    for (std::size_t i = 0; i < m.code.size(); ++i) {
      if (reachable[i]) {
        result.entry_depth[i] = static_cast<std::int32_t>(entry[i].size());
        result.entry_stack[i] = entry[i];
      }
    }
    return true;
  }
};

}  // namespace

VerifyResult verify(const Method& m, const ConstantPool& pool) {
  Verifier v(m, pool);
  v.result.ok = v.run();
  return std::move(v.result);
}

}  // namespace javaflow::bytecode
