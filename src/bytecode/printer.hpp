// JAVAP-style disassembly of methods (used by the Appendix C / Figure 28
// reproduction and for diagnostics).
#pragma once

#include <string>

#include "bytecode/method.hpp"

namespace javaflow::bytecode {

// One instruction, e.g. "  12: if_icmplt     -> 4".
std::string format_instruction(const Method& m, std::size_t index,
                               const ConstantPool& pool);

// Whole method listing with header (name, args, locals, stack).
std::string disassemble(const Method& m, const ConstantPool& pool);

}  // namespace javaflow::bytecode
