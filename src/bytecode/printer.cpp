#include "bytecode/printer.hpp"

#include <iomanip>
#include <sstream>

namespace javaflow::bytecode {

std::string format_instruction(const Method& m, std::size_t index,
                               const ConstantPool& pool) {
  const Instruction& inst = m.code[index];
  const OpInfo& info = op_info(inst.op);
  std::ostringstream os;
  os << std::setw(4) << index << ": " << std::left << std::setw(16)
     << info.name << std::right;
  switch (info.operand) {
    case OperandKind::None:
      break;
    case OperandKind::Imm:
      os << " " << inst.operand;
      break;
    case OperandKind::Local:
      os << " r" << inst.operand;
      if (inst.op == Op::iinc) os << ", " << inst.operand2;
      break;
    case OperandKind::Branch:
      os << " -> " << inst.target;
      break;
    case OperandKind::Switch: {
      const SwitchTable& t =
          m.switches[static_cast<std::size_t>(inst.operand)];
      os << " {";
      for (std::size_t k = 0; k < t.keys.size(); ++k) {
        if (k) os << ", ";
        os << t.keys[k] << "->" << t.targets[k];
      }
      os << ", default->" << t.default_target << "}";
      break;
    }
    case OperandKind::Cp: {
      const CpEntry& e = pool.at(inst.operand);
      os << " #" << inst.operand << " ";
      switch (e.kind) {
        case CpEntry::Kind::Int: os << "<int " << e.i << ">"; break;
        case CpEntry::Kind::Long: os << "<long " << e.i << ">"; break;
        case CpEntry::Kind::Float: os << "<float " << e.d << ">"; break;
        case CpEntry::Kind::Double: os << "<double " << e.d << ">"; break;
        case CpEntry::Kind::Str: os << "<str \"" << e.s << "\">"; break;
        case CpEntry::Kind::Field:
          os << "<field " << e.field.class_name << "." << e.field.field_name
             << ">";
          break;
        case CpEntry::Kind::Method:
          os << "<method " << e.method.qualified_name << ">";
          break;
        case CpEntry::Kind::Class:
          os << "<class " << e.cls.class_name << ">";
          break;
      }
      break;
    }
  }
  return os.str();
}

std::string disassemble(const Method& m, const ConstantPool& pool) {
  std::ostringstream os;
  os << "method " << m.name << "  (args=" << int(m.num_args)
     << ", locals=" << m.max_locals << ", stack=" << m.max_stack
     << ", insts=" << m.code.size() << ")\n";
  for (std::size_t i = 0; i < m.code.size(); ++i) {
    os << format_instruction(m, i, pool) << "\n";
  }
  return os.str();
}

}  // namespace javaflow::bytecode
