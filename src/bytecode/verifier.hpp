// ByteCode verifier.
//
// Enforces the JVM structural restrictions the JavaFlow machine relies on
// (paper §3.6): every instruction must see the same stack configuration
// (depth AND types) from every entry point (Figure 9 shows the invalid
// case), the stack never underflows, typed operations see matching operand
// types, and execution cannot fall off the end of the method. It also
// computes max_stack, which the machine uses to decide whether a method
// fits the fabric's per-node buffering (§2.1).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bytecode/method.hpp"

namespace javaflow::bytecode {

struct VerifyResult {
  bool ok = false;
  std::string error;
  std::uint16_t max_stack = 0;
  // Stack depth on entry to each instruction; -1 for unreachable code.
  std::vector<std::int32_t> entry_depth;
  // Stack types on entry to each instruction (bottom..top); empty for
  // unreachable code. Consumed by the dataflow-graph builder.
  std::vector<std::vector<ValueType>> entry_stack;
};

// Verify `m` against `pool`. Never throws; failures are reported in-band.
VerifyResult verify(const Method& m, const ConstantPool& pool);

}  // namespace javaflow::bytecode
