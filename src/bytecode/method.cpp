#include "bytecode/method.hpp"

#include <stdexcept>

namespace javaflow::bytecode {

std::int32_t local_register(const Instruction& inst) noexcept {
  const Group g = inst.group();
  if (g != Group::LocalRead && g != Group::LocalWrite &&
      g != Group::LocalInc) {
    return -1;
  }
  switch (inst.op) {
    case Op::iload_0: case Op::lload_0: case Op::fload_0:
    case Op::dload_0: case Op::aload_0: case Op::istore_0:
    case Op::lstore_0: case Op::fstore_0: case Op::dstore_0:
    case Op::astore_0:
      return 0;
    case Op::iload_1: case Op::lload_1: case Op::fload_1:
    case Op::dload_1: case Op::aload_1: case Op::istore_1:
    case Op::lstore_1: case Op::fstore_1: case Op::dstore_1:
    case Op::astore_1:
      return 1;
    case Op::iload_2: case Op::lload_2: case Op::fload_2:
    case Op::dload_2: case Op::aload_2: case Op::istore_2:
    case Op::lstore_2: case Op::fstore_2: case Op::dstore_2:
    case Op::astore_2:
      return 2;
    case Op::iload_3: case Op::lload_3: case Op::fload_3:
    case Op::dload_3: case Op::aload_3: case Op::istore_3:
    case Op::lstore_3: case Op::fstore_3: case Op::dstore_3:
    case Op::astore_3:
      return 3;
    default:
      return inst.operand;
  }
}

std::int32_t ConstantPool::push_entry(CpEntry e) {
  entries_.push_back(std::move(e));
  return static_cast<std::int32_t>(entries_.size() - 1);
}

std::int32_t ConstantPool::add_int(std::int64_t v) {
  CpEntry e;
  e.kind = CpEntry::Kind::Int;
  e.i = v;
  return push_entry(std::move(e));
}

std::int32_t ConstantPool::add_long(std::int64_t v) {
  CpEntry e;
  e.kind = CpEntry::Kind::Long;
  e.i = v;
  return push_entry(std::move(e));
}

std::int32_t ConstantPool::add_float(double v) {
  CpEntry e;
  e.kind = CpEntry::Kind::Float;
  e.d = v;
  return push_entry(std::move(e));
}

std::int32_t ConstantPool::add_double(double v) {
  CpEntry e;
  e.kind = CpEntry::Kind::Double;
  e.d = v;
  return push_entry(std::move(e));
}

std::int32_t ConstantPool::add_string(std::string v) {
  CpEntry e;
  e.kind = CpEntry::Kind::Str;
  e.s = std::move(v);
  return push_entry(std::move(e));
}

std::int32_t ConstantPool::add_field(FieldRef f) {
  CpEntry e;
  e.kind = CpEntry::Kind::Field;
  e.field = std::move(f);
  return push_entry(std::move(e));
}

std::int32_t ConstantPool::add_method(MethodRef m) {
  CpEntry e;
  e.kind = CpEntry::Kind::Method;
  e.method = std::move(m);
  return push_entry(std::move(e));
}

std::int32_t ConstantPool::add_class(ClassRef c) {
  CpEntry e;
  e.kind = CpEntry::Kind::Class;
  e.cls = std::move(c);
  return push_entry(std::move(e));
}

const CpEntry& ConstantPool::at(std::int32_t idx) const {
  if (idx < 0 || static_cast<std::size_t>(idx) >= entries_.size()) {
    throw std::out_of_range("constant pool index out of range");
  }
  return entries_[static_cast<std::size_t>(idx)];
}

CpEntry& ConstantPool::at_mutable(std::int32_t idx) {
  return const_cast<CpEntry&>(at(idx));
}

ValueType ConstantPool::load_type(std::int32_t idx) const {
  const CpEntry& e = at(idx);
  switch (e.kind) {
    case CpEntry::Kind::Int: return ValueType::Int;
    case CpEntry::Kind::Long: return ValueType::Long;
    case CpEntry::Kind::Float: return ValueType::Float;
    case CpEntry::Kind::Double: return ValueType::Double;
    case CpEntry::Kind::Str: return ValueType::Ref;
    case CpEntry::Kind::Field: return e.field.type;
    case CpEntry::Kind::Class: return ValueType::Ref;
    case CpEntry::Kind::Method: return e.method.return_type;
  }
  return ValueType::Int;
}

std::optional<std::int32_t> ClassDef::instance_slot(
    const std::string& f) const {
  for (std::size_t i = 0; i < instance_fields.size(); ++i) {
    if (instance_fields[i].first == f) {
      return static_cast<std::int32_t>(i);
    }
  }
  return std::nullopt;
}

std::optional<std::int32_t> ClassDef::static_slot(const std::string& f) const {
  for (std::size_t i = 0; i < static_fields.size(); ++i) {
    if (static_fields[i].first == f) {
      return static_cast<std::int32_t>(i);
    }
  }
  return std::nullopt;
}

const Method* Program::find(const std::string& qualified_name) const {
  for (const Method& m : methods) {
    if (m.name == qualified_name) return &m;
  }
  return nullptr;
}

Method* Program::find_mutable(const std::string& qualified_name) {
  return const_cast<Method*>(find(qualified_name));
}

const ClassDef* Program::find_class(const std::string& name) const {
  auto it = classes.find(name);
  return it == classes.end() ? nullptr : &it->second;
}

}  // namespace javaflow::bytecode
