// Branch outcome generators for method execution (paper §7.3 "Method
// Execution").
//
// The paper did not gather trace data, so each method runs twice under
// synthetic branch behaviour:
//   * forward jumps: 50 % taken, alternating per site — BP1 starts with
//     the first execution taken, BP2 with the first not taken;
//   * back jumps: 90 % taken — nine taken executions, then a fall-through.
//
// A third, trace-driven mode (an enhancement beyond the paper) replays
// outcomes recorded by the reference interpreter.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "bytecode/method.hpp"

namespace javaflow::sim {

// Classifies each conditional jump of `m`: Backward for latches,
// LoopExit for forward jumps that exit an enclosing head-test loop
// (a backward branch below the site targets at-or-above it and the
// site's target lies beyond that latch), Forward otherwise.
std::vector<std::uint8_t> classify_branches(const bytecode::Method& m);

// How a conditional jump participates in looping. `Backward` jumps are
// loop latches (JAVAC's bottom-test form); `LoopExit` marks *forward*
// jumps that leave a loop whose latch is an unconditional backward goto
// (the head-test form) — the paper's 90 %-looping rule is about loop trip
// counts, so both forms get ten iterations per visit.
enum class BranchKind : std::uint8_t { Forward, Backward, LoopExit };

class BranchPredictor {
 public:
  enum class Scenario : std::uint8_t { BP1, BP2, Trace };

  explicit BranchPredictor(Scenario scenario) : scenario_(scenario) {}

  // Outcome for the conditional jump at linear address `site`.
  bool decide(std::int32_t site, BranchKind kind) {
    if (scenario_ == Scenario::Trace) {
      auto it = trace_.find(site);
      if (it != trace_.end() && !it->second.empty()) {
        const bool taken = it->second.front();
        it->second.pop_front();
        return taken;
      }
      // Trace exhausted: leave the loop so execution terminates.
      return kind == BranchKind::LoopExit;
    }
    if (kind == BranchKind::Backward) {
      const int count = back_count_[site]++;
      return (count % 10) < 9;  // 9 taken, 10th falls through
    }
    if (kind == BranchKind::LoopExit) {
      const int count = back_count_[site]++;
      return (count % 10) == 9;  // stay in the loop 9 times, exit 10th
    }
    const int count = fwd_count_[site]++;
    const bool first_taken = scenario_ == Scenario::BP1;
    return (count % 2 == 0) == first_taken;
  }

  // Case selection for tableswitch/lookupswitch at `site` among
  // `num_targets` arms (incl. default, index num_targets-1): round-robin,
  // the switch-dispatch analogue of the alternating forward predictor.
  std::int32_t decide_switch(std::int32_t site, std::int32_t num_targets) {
    if (scenario_ == Scenario::Trace) {
      auto it = switch_trace_.find(site);
      if (it != switch_trace_.end() && !it->second.empty()) {
        const std::int32_t arm = it->second.front();
        it->second.pop_front();
        return arm < num_targets ? arm : num_targets - 1;
      }
      return num_targets - 1;  // exhausted: take the default arm
    }
    return switch_count_[site]++ % num_targets;
  }

  // Trace mode: append a recorded outcome for a site.
  void feed_trace(std::int32_t site, bool taken) {
    trace_[site].push_back(taken);
  }
  void feed_switch_trace(std::int32_t site, std::int32_t arm) {
    switch_trace_[site].push_back(arm);
  }

  Scenario scenario() const noexcept { return scenario_; }
  void reset() {
    fwd_count_.clear();
    back_count_.clear();
    switch_count_.clear();
  }

 private:
  Scenario scenario_;
  std::map<std::int32_t, int> fwd_count_;
  std::map<std::int32_t, int> back_count_;
  std::map<std::int32_t, int> switch_count_;
  std::map<std::int32_t, std::deque<bool>> trace_;
  std::map<std::int32_t, std::deque<std::int32_t>> switch_trace_;
};

}  // namespace javaflow::sim
