// Multi-tenant execution core: one fabric, N resident methods executing
// concurrently (paper §6.2 "Management and Cleanup" and the Chapter 8
// superposition claim).
//
// Where sim::Engine simulates exactly one method per run, a MultiEngine
// admits any number of independently-anchored residencies into a single
// (tick, seq) event calendar. Every token bundle carries the dense
// ResidentId of its owner in the 32-byte event record, node lanes are
// offset per-residency into one shared struct-of-arrays image, and the
// physical fabric's transport is genuinely shared: serial-chain links,
// mesh links, and the four memory/GPP ring channels are occupancy-
// tracked, so co-resident flows contend for them (a token never waits
// on its own residency's traffic — single-method timing is exactly the
// uncontended case).
//
// Plans stay shareable between residencies of one method: a residency
// is (plan, phys_delta) where the delta is a whole-row physical shift
// (multiples of idus_per_node * mesh_width slots). Row shifts preserve
// serial hop counts and — because the serpentine layout mirrors x on
// odd rows for *both* endpoints of any route — Manhattan mesh
// distances, so one pre-lowered ExecPlan prices every aligned residency
// (docs/SERVING.md has the full argument). Unaligned placements get a
// dedicated plan with phys_delta 0.
//
// Determinism: admission order, start ticks, and the per-residency
// branch scenario fully determine the event sequence. The calendar is
// single-threaded; repeated runs with the same admissions are
// bit-identical, independent of JAVAFLOW_THREADS.
//
// Single-resident parity (tests/test_serve.cpp): one residency at
// phys_delta 0 reproduces Engine::run's RunMetrics field for field —
// the event loop, handlers, and timing model are the same code shapes
// over the same shared detail::Event record (sim/engine_internal.hpp).
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bytecode/method.hpp"
#include "sim/branch_predictor.hpp"
#include "sim/config.hpp"
#include "sim/engine.hpp"
#include "sim/plan.hpp"

namespace javaflow::obs {
struct MetricsRegistry;
class EventTracer;
}  // namespace javaflow::obs

namespace javaflow::sim {

// Bump whenever multi-tenant execution semantics change in a way that
// can alter results (event interleaving rules, contention model,
// admission timing). Folded into cache::record_fingerprint() because
// the single-method engine shares its event record and handler shapes
// with this core — a refactor here that drifts result-bearing
// semantics must invalidate cached single-method sweep records too.
inline constexpr std::uint32_t kMultiEngineFingerprint = 1;

// Dense per-fabric residency index (not FabricManager::MethodId — a
// method re-admitted after idling gets a fresh ResidentId per run).
using ResidentId = std::int32_t;

// Per-residency result. `metrics` is bit-identical to a plain
// Engine::run of the same (method, plan, scenario) when the residency
// never contends (in particular whenever it runs alone).
struct ResidentOutcome {
  ResidentId resident = -1;
  std::string name;
  RunMetrics metrics;
  std::int64_t admitted_tick = 0;
  std::int64_t completed_tick = -1;  // -1 if timed out / never finished
  // Ticks this residency's tokens spent queued behind *other*
  // residencies' traffic, by shared resource.
  std::int64_t serial_wait_ticks = 0;
  std::int64_t mesh_wait_ticks = 0;
  std::int64_t ring_wait_ticks = 0;
};

// Fabric-level aggregate over one MultiEngine lifetime.
struct MultiRunMetrics {
  std::vector<ResidentOutcome> residents;
  std::int64_t fabric_ticks = 0;  // tick of the last processed event
  // Tick spans with >=1 / >=2 instructions executing anywhere on the
  // fabric (the multi-tenant analogue of RunMetrics' Table 26 pair).
  std::int64_t ticks_exec_1plus = 0;
  std::int64_t ticks_exec_2plus = 0;
  // Tick spans with >=1 / >=2 *distinct residencies* executing at once
  // — ticks_res_2plus > 0 is the superposition witness (Chapter 8).
  std::int64_t ticks_res_1plus = 0;
  std::int64_t ticks_res_2plus = 0;
  // Cross-residency contention totals (sums of the per-resident waits).
  std::int64_t serial_wait_ticks = 0;
  std::int64_t mesh_wait_ticks = 0;
  std::int64_t ring_wait_ticks = 0;
};

struct MultiEngineOptions {
  // Absolute fabric-tick budget: the first event past it times every
  // live residency out (default: effectively unbounded — the serving
  // frontend bounds work by request count instead).
  std::int64_t max_ticks = std::int64_t{1} << 60;
  // Fabric-level telemetry: accumulates across all residencies.
  // Per-residency registries are passed to admit() instead.
  obs::MetricsRegistry* metrics = nullptr;
  obs::EventTracer* tracer = nullptr;
};

class MultiEngine {
 public:
  // `until` sentinel for advance(): run until the calendar drains.
  static constexpr std::int64_t kNoLimit =
      std::numeric_limits<std::int64_t>::max() / 4;
  // Event::res is 16 bits (sim/engine_internal.hpp).
  static constexpr std::int32_t kMaxResidents = 65535;

  explicit MultiEngine(MachineConfig config, MultiEngineOptions options = {});
  MultiEngine(MultiEngine&&) noexcept;
  MultiEngine& operator=(MultiEngine&&) noexcept;
  ~MultiEngine();

  // Injects a residency's token bundle at max(start_tick, now()). The
  // plan must fit and stay alive (read-only) for the engine's lifetime;
  // `phys_delta` rebases every physical-node index in the plan (0 for a
  // dedicated plan, rows*width/idus-aligned for a shared canonical
  // plan). Returns -1 when the residency cap is exhausted.
  ResidentId admit(const bytecode::Method& m, const ExecPlan& plan,
                   std::int32_t phys_delta,
                   BranchPredictor::Scenario scenario,
                   std::int64_t start_tick,
                   obs::MetricsRegistry* resident_metrics = nullptr);

  // Processes events in (tick, seq) order while tick < until. Returns
  // as soon as one residency completes (drain remaining completions by
  // calling again), or nullopt once the clock reaches `until` / the
  // calendar drains. Resumable: admissions may be interleaved between
  // calls at the paused tick.
  std::optional<ResidentId> advance(std::int64_t until = kNoLimit);

  bool idle() const noexcept;         // no undrained events
  std::int64_t now() const noexcept;  // current fabric tick
  std::size_t resident_count() const noexcept;  // total ever admitted
  std::size_t running_count() const noexcept;   // not yet finished

  // Valid once the residency completed or timed out; null before.
  const ResidentOutcome* outcome(ResidentId r) const noexcept;

  // Finalizes any still-running residencies (neither completed nor
  // timed out) and returns the fabric aggregate. Terminal.
  MultiRunMetrics finish();

  const MachineConfig& config() const noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace javaflow::sim
