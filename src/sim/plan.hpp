// Pre-lowered execution plans (docs/PERF.md "Execution plans").
//
// An ExecPlan compiles everything the engine's hot loop used to chase
// pointers for — the method's dataflow graph, its chain placement, and
// the MachineConfig timing model — into one immutable, arena-backed
// image lowered once per (method, config):
//
//   * CSR consumer edge lists with the per-edge mesh delivery cost in
//     ticks (`serial_per_mesh × Manhattan`) and the X-Y route link span
//     already walked out, so telemetry replays links without touching
//     net::MeshNetwork;
//   * a CSR operand (producer) view of the same edges for the static
//     bound analyzer;
//   * dense per-node dispatch lanes: opcode, group, classification
//     flags (token buffering, ordered storage, backward goto, switch),
//     branch targets, Table 17 execution costs and ring service
//     surcharges in ticks, operand/fan-out capacities;
//   * the static branch classifications (sim::classify_branches), so a
//     plan-driven run never re-derives them.
//
// A plan is read-only after build: the parallel sweep builds each plan
// once in its precompute phase and shares it across worker lanes and
// both branch scenarios. The plan-driven engine path is bit-identical
// to the legacy graph walk in RunMetrics, traces, and attribution
// (tests/test_plan.cpp), so JAVAFLOW_PLAN=off exists for regression
// triage, not semantics.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "bytecode/method.hpp"
#include "fabric/dataflow_graph.hpp"
#include "fabric/loader.hpp"
#include "obs/metrics.hpp"
#include "sim/config.hpp"

namespace javaflow::sim {

// Bump whenever plan lowering changes in a way that can alter results
// produced through the plan path (edge costs, dispatch codes, branch
// classification). Folded into cache::record_fingerprint() so cached
// sweep records produced under older lowering semantics invalidate.
inline constexpr std::uint32_t kPlanFingerprint = 1;

// Whether Engine::run lowers methods to ExecPlans and takes the
// plan-driven fast path (docs/PERF.md "Execution plans"). Both settings
// produce bit-identical RunMetrics, traces, and attribution.
//   Auto — resolve via JAVAFLOW_PLAN ("on"/"off"), default On.
//   On   — lower and run plan-driven.
//   Off  — the legacy per-run graph/placement walk.
enum class PlanMode : std::uint8_t { Auto, On, Off };

std::string_view plan_mode_name(PlanMode m) noexcept;

// Parses "on" / "off" (also accepts "auto"); nullopt otherwise.
std::optional<PlanMode> plan_mode_from_name(std::string_view name) noexcept;

// Maps a requested mode to a concrete one: On/Off pass through; Auto
// reads JAVAFLOW_PLAN (stderr warning for unknown values) and falls
// back to On when unset. Engines resolve once at construction.
PlanMode resolve_plan_mode(PlanMode requested) noexcept;

// One forward dataflow arc, producer-major (CSR order follows the
// graph's consumers_of lists with back edges dropped, so the engine's
// mesh send order is unchanged).
struct PlanEdge {
  std::int32_t consumer = -1;
  std::int32_t to_phys = -1;
  std::int32_t delivery_ticks = 0;  // serial_per_mesh * mesh_cycles
  std::int32_t mesh_cycles = 0;     // Manhattan distance, min 1
  std::int32_t route_begin = 0;     // span into route_links()
  std::int16_t route_count = 0;
  std::uint8_t side = 0;
};

// The same arcs consumer-major, for the bound analyzer's per-side
// producer minimization.
struct PlanOperand {
  std::int32_t producer = -1;
  std::int32_t delivery_ticks = 0;
  std::uint8_t side = 0;
};

// One mesh link traversal of a precomputed X-Y route (x first, then y —
// the net::MeshNetwork::for_each_route_link order). `dir` is the
// obs::LinkDir value, so telemetry and attribution consume it directly.
struct PlanRouteLink {
  std::int32_t src_phys = -1;
  std::uint8_t dir = 0;
};

// Per-node classification flags (the engine's prepare_node() results).
inline constexpr std::uint8_t kPlanBuffers = 0x1;       // buffers_tokens
inline constexpr std::uint8_t kPlanOrdered = 0x2;       // ordered storage
inline constexpr std::uint8_t kPlanBackwardGoto = 0x4;  // goto, target<linear
inline constexpr std::uint8_t kPlanSwitch = 0x8;        // table/lookupswitch
inline constexpr std::uint8_t kPlanGoto = 0x10;         // goto/goto_w

class ExecPlanBuilder;

// Immutable lowered image of (method × placement × MachineConfig). All
// lanes live in one contiguous arena; accessors hand out raw spans.
// Safe for concurrent read-only use from any number of threads.
class ExecPlan {
 public:
  ExecPlan() = default;
  ExecPlan(ExecPlan&&) noexcept = default;
  ExecPlan& operator=(ExecPlan&&) noexcept = default;
  ExecPlan(const ExecPlan&) = delete;
  ExecPlan& operator=(const ExecPlan&) = delete;

  bool fits() const noexcept { return fits_; }
  std::int32_t node_count() const noexcept { return node_count_; }
  std::int32_t max_slot() const noexcept { return max_slot_; }
  std::int32_t max_phys() const noexcept { return max_phys_; }
  std::int64_t serial_per_mesh() const noexcept { return k_; }
  std::int64_t hop_ticks() const noexcept { return hop_; }
  std::int32_t idus_per_node() const noexcept { return idus_; }
  std::int32_t mesh_width() const noexcept { return width_; }
  bool collapsed() const noexcept { return collapsed_; }
  std::int32_t max_locals() const noexcept { return max_locals_; }

  // Ring service round trips in ticks, indexed by net::RingService.
  std::int64_t service_ticks(net::RingService s) const noexcept {
    return service_ticks_[static_cast<std::size_t>(s)];
  }

  // ---- per-node lanes (length node_count) ----
  const std::uint8_t* group() const noexcept { return group_; }
  const std::uint8_t* op() const noexcept { return op_; }
  const std::uint8_t* flags() const noexcept { return flags_; }
  const std::uint8_t* branch_kinds() const noexcept { return branch_kinds_; }
  const std::int32_t* pop_need() const noexcept { return pop_need_; }
  const std::int32_t* local_reg() const noexcept { return local_reg_; }
  const std::int32_t* slot() const noexcept { return slot_; }
  const std::int32_t* phys() const noexcept { return phys_; }
  const std::int32_t* target() const noexcept { return target_; }
  const std::int32_t* operand() const noexcept { return operand_; }
  const std::int32_t* exec_cost_ticks() const noexcept { return exec_cost_; }
  // Post-execution ring surcharge before results flow (bound analyzer):
  // memory_read for MemRead, gpp_service for Call/Special; 0 otherwise.
  const std::int32_t* produce_extra_ticks() const noexcept {
    return produce_extra_;
  }
  // Static capacities: widest operand side and forward fan-out.
  const std::int32_t* operand_hi() const noexcept { return operand_hi_; }
  const std::int32_t* forward_fanout() const noexcept {
    return forward_fanout_;
  }

  // ---- CSR consumer edges (producer-major) ----
  const std::int32_t* edge_begin() const noexcept { return edge_begin_; }
  const PlanEdge* edges() const noexcept { return edges_; }

  // ---- CSR operand edges (consumer-major) ----
  const std::int32_t* operand_begin() const noexcept { return oper_begin_; }
  const PlanOperand* operands() const noexcept { return opers_; }

  // ---- precomputed X-Y routes ----
  const PlanRouteLink* route_links() const noexcept { return route_links_; }

  // Serial-chain transit in ticks from one node's physical slot to
  // another's, mirroring the engine exactly: the bundle anchor sits at
  // virtual node -1, one hop below physical slot 0.
  std::int64_t serial_ticks_between(std::int32_t from_node,
                                    std::int32_t to_node) const noexcept {
    const std::int32_t a = from_node < 0 ? -1 : phys_[from_node];
    const std::int32_t b = phys_[to_node];
    const std::int64_t hops = a < 0 ? b + 1 : (a < b ? b - a : a - b);
    return hop_ * std::max<std::int64_t>(hops, 1);
  }

  // The route link span of the deduplicated (from_phys, to_phys) pair,
  // or an empty span for untraveled pairs. Inline (header-only) so
  // obs::critpath — which must not link javaflow_sim — can decompose
  // MeshTransit steps from a plan without re-walking the mesh.
  struct RouteSpan {
    const PlanRouteLink* links = nullptr;
    std::int32_t count = 0;
  };
  RouteSpan find_route(std::int32_t from_phys,
                       std::int32_t to_phys) const noexcept {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(from_phys))
         << 32) |
        static_cast<std::uint32_t>(to_phys);
    const RoutePair* first = route_pairs_;
    const RoutePair* last = route_pairs_ + route_pair_count_;
    const RoutePair* it = std::lower_bound(
        first, last, key,
        [](const RoutePair& p, std::uint64_t k) { return p.key < k; });
    if (it == last || it->key != key) return RouteSpan{};
    return RouteSpan{route_links_ + it->begin, it->count};
  }

 private:
  friend class ExecPlanBuilder;

  struct RoutePair {
    std::uint64_t key = 0;  // (from_phys << 32) | to_phys
    std::int32_t begin = 0;
    std::int32_t count = 0;
  };

  // One contiguous arena backing every lane; capacity is monotonic when
  // a plan object is rebuilt in place (the builder reuses it like the
  // engine workspace reuses its event buffers).
  std::vector<std::byte> arena_;

  bool fits_ = false;
  bool collapsed_ = false;
  std::int32_t node_count_ = 0;
  std::int32_t max_slot_ = -1;
  std::int32_t max_phys_ = -1;
  std::int64_t k_ = 1;
  std::int64_t hop_ = 1;
  std::int32_t idus_ = 1;
  std::int32_t width_ = 10;
  std::int32_t max_locals_ = 0;
  std::int64_t service_ticks_[4] = {0, 0, 0, 0};
  std::int32_t route_pair_count_ = 0;

  const std::uint8_t* group_ = nullptr;
  const std::uint8_t* op_ = nullptr;
  const std::uint8_t* flags_ = nullptr;
  const std::uint8_t* branch_kinds_ = nullptr;
  const std::int32_t* pop_need_ = nullptr;
  const std::int32_t* local_reg_ = nullptr;
  const std::int32_t* slot_ = nullptr;
  const std::int32_t* phys_ = nullptr;
  const std::int32_t* target_ = nullptr;
  const std::int32_t* operand_ = nullptr;
  const std::int32_t* exec_cost_ = nullptr;
  const std::int32_t* produce_extra_ = nullptr;
  const std::int32_t* operand_hi_ = nullptr;
  const std::int32_t* forward_fanout_ = nullptr;
  const std::int32_t* edge_begin_ = nullptr;
  const PlanEdge* edges_ = nullptr;
  const std::int32_t* oper_begin_ = nullptr;
  const PlanOperand* opers_ = nullptr;
  const PlanRouteLink* route_links_ = nullptr;
  const RoutePair* route_pairs_ = nullptr;
};

// Lowers (method, graph, placement, config) into an ExecPlan. Scratch
// buffers grow monotonically over the builder's lifetime, so a reused
// builder (one per sweep lane, one per engine workspace) stops paying
// allocation costs after the first few methods.
class ExecPlanBuilder {
 public:
  // `placement` may be null: the builder then places the method itself
  // (fabric::load_method on a fresh fabric, exactly what the engine's
  // no-placement overload does).
  void build_into(ExecPlan& out, const bytecode::Method& m,
                  const fabric::DataflowGraph& graph,
                  const fabric::Placement* placement,
                  const MachineConfig& config);

  ExecPlan build(const bytecode::Method& m,
                 const fabric::DataflowGraph& graph,
                 const fabric::Placement* placement,
                 const MachineConfig& config) {
    ExecPlan plan;
    build_into(plan, m, graph, placement, config);
    return plan;
  }

 private:
  // Route-dedup scratch: unique (from_phys, to_phys) pairs in first-use
  // order plus their link spans, rebuilt per method, capacity kept.
  std::vector<ExecPlan::RoutePair> pairs_;
  std::vector<PlanRouteLink> links_;
  std::vector<PlanEdge> edges_;
  std::vector<std::int32_t> edge_begin_;
  std::vector<PlanOperand> opers_;
  std::vector<std::int32_t> oper_begin_;
  std::vector<std::int32_t> oper_fill_;
};

}  // namespace javaflow::sim
