// Shared internals of the event-driven execution core: the token/event
// records, per-node cold state, and calendar-queue constants used by
// both the single-method Engine (sim/engine.cpp) and the multi-tenant
// MultiEngine (sim/multi_engine.cpp). Not installed API — everything
// here may change shape between commits; include only from sim/*.cpp.
#pragma once

#include <cstdint>
#include <tuple>
#include <vector>

#include "bytecode/opcode.hpp"
#include "net/message.hpp"

namespace javaflow::sim::detail {

inline bool is_switch(bytecode::Op op) {
  return op == bytecode::Op::tableswitch || op == bytecode::Op::lookupswitch;
}

// The slice of a net::SerialMessage the engine actually routes: every
// other field stays at its default through the whole simulation, so
// events and held tokens carry just {cmd, reg} instead of the full
// Figure 16 record.
struct Token {
  net::Command cmd = net::Command::HeadToken;
  std::int32_t reg = -1;
};

// Firing-state bitmask (struct-of-arrays `state` lane). A node is
// fire-ready only in the exact state kHeadReceived — any other set bit
// (already fired, executing, waiting on a ring service, or holding the
// loop bundle for a fired backward transfer) blocks it, so the hot
// readiness test is a single byte compare.
inline constexpr std::uint8_t kHeadReceived = 0x1;
inline constexpr std::uint8_t kFired = 0x2;
inline constexpr std::uint8_t kExecuting = 0x4;
inline constexpr std::uint8_t kInService = 0x8;
// Back transfer fired, bundle held until the TAIL arrives (§6.3). Only
// ever set together with kFired, so the kHeadReceived readiness compare
// is unaffected.
inline constexpr std::uint8_t kWaitTailFlush = 0x10;

// Cold per-node runtime state (wraps the Figure 13 resources). All
// static classification lives in read-only lanes — fed by the ExecPlan
// on the plan path, by prepare_node() on the legacy path — so this
// struct carries only mutable per-iteration token state.
struct NodeRt {
  bool reg_held = false;        // LocalRead/LocalInc captured its token
  Token held_reg{};
  bool write_absorbed = false;  // LocalWrite consumed the stale token
  bool kill_next_register = false;
  bool memory_held = false;     // ordered storage holds MEMORY_TOKEN
  Token held_memory{};
  bool tail_held = false;       // non-control node holding the TAIL
  Token held_tail{};
  bool tail_present = false;    // control node has TAIL in its buffer
  std::int32_t decided_target = -1;

  std::vector<Token> buffered;  // control-node token buffer

  // Flight-recorder bookkeeping (null recorder leaves all of it idle):
  // the dependency edge that delivered each currently-held token, so its
  // eventual release can splice a hold edge (operand wait / TAIL hold)
  // between arrival and release. `buffered_edges` parallels `buffered`.
  std::int32_t held_reg_edge = -1;
  std::int32_t held_memory_edge = -1;
  std::int32_t held_tail_edge = -1;
  std::vector<std::int32_t> buffered_edges;

  // `buffered` keeps its capacity across iterations and runs, so a
  // reused workspace stops paying for operand-buffer growth after the
  // first run.
  void reset_cold() {
    reg_held = false;
    write_absorbed = false;
    kill_next_register = false;
    memory_held = false;
    tail_held = false;
    tail_present = false;
    decided_target = -1;
    buffered.clear();
    held_reg_edge = -1;
    held_memory_edge = -1;
    held_tail_edge = -1;
    buffered_edges.clear();
  }
};

enum class EvKind : std::uint8_t { Serial, Mesh, ExecDone, ServiceDone };

// 32-byte event record. `aux` is the serial register number (Serial) or
// the consumer's iteration epoch (Mesh); the old full-SerialMessage
// payload is gone because the engine only ever read {cmd, reg}. `prod`
// is the producing node of a Mesh operand — it rides in what used to be
// padding and feeds the tracer's producer->consumer flow events.
//
// `res` is the dense ResidentId of the token's owning method residency:
// always 0 in single-method runs, threaded through every handler by the
// multi-tenant MultiEngine so co-resident bundles interleave in one
// (tick, seq) calendar. Packing the EvKind (2 bits) with the mesh side
// (6 bits — the widest operand side is an invoke's argument count, well
// under 64) frees the 16 bits the id needs without growing the record
// past two cache quads.
struct Event {
  std::int64_t tick = 0;
  std::int64_t seq = 0;
  std::int32_t node = -1;
  std::int32_t aux = 0;
  std::int32_t prod = -1;            // Mesh only
  std::uint16_t res = 0;             // owning residency (0 = single run)
  std::uint8_t kind_side = 0;        // EvKind | (mesh side << 2)
  net::Command cmd = net::Command::HeadToken;  // Serial only

  EvKind kind() const noexcept {
    return static_cast<EvKind>(kind_side & 0x3u);
  }
  std::uint8_t side() const noexcept {
    return static_cast<std::uint8_t>(kind_side >> 2);
  }
  void set(EvKind k, std::uint8_t side = 0) noexcept {
    kind_side = static_cast<std::uint8_t>(static_cast<std::uint8_t>(k) |
                                          (side << 2));
  }
};
static_assert(sizeof(Event) == 32, "Event should stay two cache quads");

// Min-heap comparator over (tick, seq). (tick, seq) is a strict total
// order — seq is unique — so the pop order is deterministic regardless
// of the heap's internal layout. The calendar queue reproduces exactly
// this order (docs/PERF.md "Engine kernel" has the argument).
struct EventAfter {
  bool operator()(const Event& a, const Event& b) const {
    return std::tie(a.tick, a.seq) > std::tie(b.tick, b.seq);
  }
};

// Largest per-group execution cost in mesh cycles (Table 17: FpArith).
inline constexpr std::int64_t kMaxExecMeshCycles = 10;
// Calendar-ring ceiling: beyond this, long delays spill to the overflow
// heap rather than growing the bucket array without bound.
inline constexpr std::int64_t kMaxBuckets = 4096;

}  // namespace javaflow::sim::detail
