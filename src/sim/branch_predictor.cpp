#include "sim/branch_predictor.hpp"

namespace javaflow::sim {

std::vector<std::uint8_t> classify_branches(const bytecode::Method& m) {
  const auto n = static_cast<std::int32_t>(m.code.size());
  std::vector<std::uint8_t> kinds(
      static_cast<std::size_t>(n),
      static_cast<std::uint8_t>(BranchKind::Forward));
  for (std::int32_t i = 0; i < n; ++i) {
    const bytecode::Instruction& inst = m.code[static_cast<std::size_t>(i)];
    if (!inst.is_branch()) continue;
    if (inst.target < i) {
      kinds[static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(BranchKind::Backward);
      continue;
    }
    // Forward jump: is it the exit test of a head-test loop? Look for a
    // backward branch below it whose target is at-or-above this site and
    // whose own position is before this site's target (i.e. the site
    // jumps out past the loop latch).
    for (std::int32_t j = i + 1; j < n; ++j) {
      const bytecode::Instruction& latch =
          m.code[static_cast<std::size_t>(j)];
      if (!latch.is_branch() || latch.target > i) continue;
      if (inst.target > j) {
        kinds[static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(BranchKind::LoopExit);
      }
      break;  // nearest enclosing latch decides
    }
  }
  return kinds;
}

}  // namespace javaflow::sim
