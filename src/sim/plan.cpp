#include "sim/plan.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <unordered_map>

#include "bytecode/opcode.hpp"
#include "fabric/fabric.hpp"
#include "net/mesh_network.hpp"
#include "sim/branch_predictor.hpp"

namespace javaflow::sim {

std::string_view plan_mode_name(PlanMode m) noexcept {
  switch (m) {
    case PlanMode::Auto: return "auto";
    case PlanMode::On: return "on";
    case PlanMode::Off: return "off";
  }
  return "auto";
}

std::optional<PlanMode> plan_mode_from_name(std::string_view name) noexcept {
  if (name == "on") return PlanMode::On;
  if (name == "off") return PlanMode::Off;
  if (name == "auto") return PlanMode::Auto;
  return std::nullopt;
}

PlanMode resolve_plan_mode(PlanMode requested) noexcept {
  if (requested != PlanMode::Auto) return requested;
  const char* text = std::getenv("JAVAFLOW_PLAN");
  if (text == nullptr || *text == '\0') return PlanMode::On;
  const std::optional<PlanMode> parsed = plan_mode_from_name(text);
  if (!parsed.has_value()) {
    std::fprintf(stderr,
                 "warning: ignoring JAVAFLOW_PLAN=\"%s\" "
                 "(expected \"on\" or \"off\"); using on\n",
                 text);
    return PlanMode::On;
  }
  return *parsed == PlanMode::Auto ? PlanMode::On : *parsed;
}

namespace {

std::size_t align_up(std::size_t offset, std::size_t alignment) {
  return (offset + alignment - 1) & ~(alignment - 1);
}

bool plan_is_switch(bytecode::Op op) {
  return op == bytecode::Op::tableswitch || op == bytecode::Op::lookupswitch;
}

}  // namespace

void ExecPlanBuilder::build_into(ExecPlan& out, const bytecode::Method& m,
                                 const fabric::DataflowGraph& graph,
                                 const fabric::Placement* placement,
                                 const MachineConfig& config) {
  const std::size_t nn = m.code.size();
  out.collapsed_ = config.collapsed();
  out.k_ = config.serial_per_mesh;
  out.hop_ = out.collapsed_ ? 0 : 1;
  out.idus_ = std::max(config.idus_per_node, 1);
  out.width_ = std::max(config.width, 1);
  out.max_locals_ = m.max_locals;
  out.node_count_ = static_cast<std::int32_t>(nn);
  out.service_ticks_[static_cast<std::size_t>(net::RingService::MemoryRead)] =
      out.k_ * config.ring.memory_read;
  out.service_ticks_[static_cast<std::size_t>(net::RingService::MemoryWrite)] =
      out.k_ * config.ring.memory_write;
  out.service_ticks_[static_cast<std::size_t>(
      net::RingService::ConstantRead)] = out.k_ * config.ring.constant_read;
  out.service_ticks_[static_cast<std::size_t>(net::RingService::GppService)] =
      out.k_ * config.ring.gpp_service;

  fabric::Placement local;
  const fabric::Placement* pl = placement;
  if (pl == nullptr) {
    fabric::Fabric fabric(config.fabric_options());
    local = fabric::load_method(fabric, m);
    pl = &local;
  }
  out.fits_ = pl->fits;
  out.max_slot_ = pl->max_slot;
  if (!pl->fits) {
    // An unfit method never executes: keep the scalars (the engine
    // reports fits=false from them) and drop every lane.
    out.max_phys_ = -1;
    out.route_pair_count_ = 0;
    out.arena_.clear();
    out.group_ = out.op_ = out.flags_ = out.branch_kinds_ = nullptr;
    out.pop_need_ = out.local_reg_ = out.slot_ = out.phys_ = nullptr;
    out.target_ = out.operand_ = out.exec_cost_ = out.produce_extra_ =
        nullptr;
    out.operand_hi_ = out.forward_fanout_ = nullptr;
    out.edge_begin_ = out.oper_begin_ = nullptr;
    out.edges_ = nullptr;
    out.opers_ = nullptr;
    out.route_links_ = nullptr;
    out.route_pairs_ = nullptr;
    return;
  }
  out.max_phys_ = pl->max_slot / out.idus_;

  // ---- lower the edges (producer-major, back edges dropped) ----
  const net::MeshNetwork mesh(out.width_);
  edges_.clear();
  edge_begin_.clear();
  edge_begin_.reserve(nn + 1);
  links_.clear();
  pairs_.clear();
  std::unordered_map<std::uint64_t, std::int32_t> pair_index;
  pair_index.reserve(64);
  for (std::size_t i = 0; i < nn; ++i) {
    edge_begin_.push_back(static_cast<std::int32_t>(edges_.size()));
    const std::int32_t from_phys = pl->slot_of[i] / out.idus_;
    for (const fabric::Edge& e : graph.consumers_of[i]) {
      if (e.back) continue;  // absent in valid Java (Table 7)
      PlanEdge pe;
      pe.consumer = e.consumer;
      pe.side = e.side;
      pe.to_phys =
          pl->slot_of[static_cast<std::size_t>(e.consumer)] / out.idus_;
      pe.mesh_cycles = static_cast<std::int32_t>(
          mesh.transit_mesh_cycles(from_phys, pe.to_phys, out.collapsed_));
      pe.delivery_ticks =
          static_cast<std::int32_t>(out.k_ * pe.mesh_cycles);
      const std::uint64_t key =
          (static_cast<std::uint64_t>(static_cast<std::uint32_t>(from_phys))
           << 32) |
          static_cast<std::uint32_t>(pe.to_phys);
      auto [it, inserted] =
          pair_index.emplace(key, static_cast<std::int32_t>(pairs_.size()));
      if (inserted) {
        ExecPlan::RoutePair pair;
        pair.key = key;
        pair.begin = static_cast<std::int32_t>(links_.size());
        // Route links follow the telemetry's actual walk even on the
        // collapsed Baseline (cost 1, real serpentine coordinates).
        mesh.for_each_route_link(
            from_phys, pe.to_phys,
            [&](std::int32_t src, std::int32_t dx, std::int32_t dy) {
              const obs::LinkDir dir = dx > 0   ? obs::LinkDir::East
                                       : dx < 0 ? obs::LinkDir::West
                                       : dy > 0 ? obs::LinkDir::North
                                                : obs::LinkDir::South;
              links_.push_back(
                  PlanRouteLink{src, static_cast<std::uint8_t>(dir)});
            });
        pair.count =
            static_cast<std::int32_t>(links_.size()) - pair.begin;
        pairs_.push_back(pair);
      }
      const ExecPlan::RoutePair& pair =
          pairs_[static_cast<std::size_t>(it->second)];
      pe.route_begin = pair.begin;
      pe.route_count = static_cast<std::int16_t>(pair.count);
      edges_.push_back(pe);
    }
  }
  edge_begin_.push_back(static_cast<std::int32_t>(edges_.size()));
  const std::size_t ne = edges_.size();
  const std::size_t nl = links_.size();

  // Consumer-major operand view of the same arcs (bound analyzer).
  oper_begin_.assign(nn + 1, 0);
  for (const PlanEdge& pe : edges_) {
    ++oper_begin_[static_cast<std::size_t>(pe.consumer) + 1];
  }
  for (std::size_t i = 0; i < nn; ++i) oper_begin_[i + 1] += oper_begin_[i];
  opers_.resize(ne);
  oper_fill_.assign(nn, 0);
  for (std::size_t i = 0; i < nn; ++i) {
    for (std::int32_t ei = edge_begin_[i]; ei < edge_begin_[i + 1]; ++ei) {
      const PlanEdge& pe = edges_[static_cast<std::size_t>(ei)];
      const auto c = static_cast<std::size_t>(pe.consumer);
      PlanOperand po;
      po.producer = static_cast<std::int32_t>(i);
      po.delivery_ticks = pe.delivery_ticks;
      po.side = pe.side;
      opers_[static_cast<std::size_t>(oper_begin_[c] + oper_fill_[c])] = po;
      ++oper_fill_[c];
    }
  }

  // Binary-searchable route table, sorted by (from_phys, to_phys).
  std::sort(pairs_.begin(), pairs_.end(),
            [](const ExecPlan::RoutePair& a, const ExecPlan::RoutePair& b) {
              return a.key < b.key;
            });
  const std::size_t np = pairs_.size();

  const std::vector<std::uint8_t> kinds = classify_branches(m);

  // ---- lay out the arena ----
  constexpr std::size_t kI32Lanes = 10;  // per-node int32 lanes below
  std::size_t off = 0;
  const std::size_t off_pairs = off;
  off += np * sizeof(ExecPlan::RoutePair);
  off = align_up(off, alignof(std::int32_t));
  const std::size_t off_i32 = off;
  off += kI32Lanes * nn * sizeof(std::int32_t);
  const std::size_t off_edge_begin = off;
  off += (nn + 1) * sizeof(std::int32_t);
  const std::size_t off_oper_begin = off;
  off += (nn + 1) * sizeof(std::int32_t);
  off = align_up(off, alignof(PlanEdge));
  const std::size_t off_edges = off;
  off += ne * sizeof(PlanEdge);
  off = align_up(off, alignof(PlanOperand));
  const std::size_t off_opers = off;
  off += ne * sizeof(PlanOperand);
  off = align_up(off, alignof(PlanRouteLink));
  const std::size_t off_links = off;
  off += nl * sizeof(PlanRouteLink);
  const std::size_t off_u8 = off;
  off += 4 * nn;  // group, op, flags, branch_kind

  out.arena_.resize(off);
  std::byte* base = out.arena_.data();

  auto* pairs = reinterpret_cast<ExecPlan::RoutePair*>(base + off_pairs);
  if (np != 0) {
    std::memcpy(pairs, pairs_.data(), np * sizeof(ExecPlan::RoutePair));
  }
  auto* i32 = reinterpret_cast<std::int32_t*>(base + off_i32);
  std::int32_t* pop_need = i32 + 0 * nn;
  std::int32_t* local_reg = i32 + 1 * nn;
  std::int32_t* slot = i32 + 2 * nn;
  std::int32_t* phys = i32 + 3 * nn;
  std::int32_t* target = i32 + 4 * nn;
  std::int32_t* operand = i32 + 5 * nn;
  std::int32_t* exec_cost = i32 + 6 * nn;
  std::int32_t* produce_extra = i32 + 7 * nn;
  std::int32_t* operand_hi = i32 + 8 * nn;
  std::int32_t* forward_fanout = i32 + 9 * nn;
  auto* edge_begin =
      reinterpret_cast<std::int32_t*>(base + off_edge_begin);
  std::memcpy(edge_begin, edge_begin_.data(),
              (nn + 1) * sizeof(std::int32_t));
  auto* oper_begin =
      reinterpret_cast<std::int32_t*>(base + off_oper_begin);
  std::memcpy(oper_begin, oper_begin_.data(),
              (nn + 1) * sizeof(std::int32_t));
  auto* edges = reinterpret_cast<PlanEdge*>(base + off_edges);
  auto* opers = reinterpret_cast<PlanOperand*>(base + off_opers);
  if (ne != 0) {
    std::memcpy(edges, edges_.data(), ne * sizeof(PlanEdge));
    std::memcpy(opers, opers_.data(), ne * sizeof(PlanOperand));
  }
  auto* links = reinterpret_cast<PlanRouteLink*>(base + off_links);
  if (nl != 0) {
    std::memcpy(links, links_.data(), nl * sizeof(PlanRouteLink));
  }
  auto* u8 = reinterpret_cast<std::uint8_t*>(base + off_u8);
  std::uint8_t* group = u8 + 0 * nn;
  std::uint8_t* op = u8 + 1 * nn;
  std::uint8_t* flags = u8 + 2 * nn;
  std::uint8_t* branch_kind = u8 + 3 * nn;

  // ---- per-node dispatch lanes ----
  std::memset(operand_hi, 0, nn * sizeof(std::int32_t));
  std::memset(forward_fanout, 0, nn * sizeof(std::int32_t));
  for (std::size_t i = 0; i < nn; ++i) {
    const bytecode::Instruction& inst = m.code[i];
    const bytecode::Group g = inst.group();
    group[i] = static_cast<std::uint8_t>(g);
    op[i] = static_cast<std::uint8_t>(inst.op);
    const bool sw = plan_is_switch(inst.op);
    const bool is_goto =
        inst.op == bytecode::Op::goto_ || inst.op == bytecode::Op::goto_w;
    std::uint8_t f = 0;
    if (g == bytecode::Group::ControlFlow || g == bytecode::Group::Return ||
        sw) {
      f |= kPlanBuffers;
    }
    if (g == bytecode::Group::MemRead || g == bytecode::Group::MemWrite) {
      f |= kPlanOrdered;
    }
    if (is_goto) f |= kPlanGoto;
    if (is_goto && inst.target < static_cast<std::int32_t>(i)) {
      f |= kPlanBackwardGoto;
    }
    if (sw) f |= kPlanSwitch;
    flags[i] = f;
    branch_kind[i] = i < kinds.size() ? kinds[i] : 0;
    pop_need[i] = inst.pop;
    local_reg[i] = bytecode::local_register(inst);
    slot[i] = pl->slot_of[i];
    phys[i] = pl->slot_of[i] / out.idus_;
    target[i] = inst.target;
    operand[i] = inst.operand;
    exec_cost[i] =
        static_cast<std::int32_t>(out.k_ * bytecode::execution_mesh_cycles(g));
    std::int64_t extra = 0;
    if (g == bytecode::Group::MemRead) {
      extra = out.service_ticks(net::RingService::MemoryRead);
    } else if (g == bytecode::Group::Call ||
               (g == bytecode::Group::Special && !sw)) {
      extra = out.service_ticks(net::RingService::GppService);
    }
    produce_extra[i] = static_cast<std::int32_t>(extra);
    for (std::int32_t ei = edge_begin[i]; ei < edge_begin[i + 1]; ++ei) {
      const PlanEdge& pe = edges[ei];
      ++forward_fanout[i];
      const auto c = static_cast<std::size_t>(pe.consumer);
      operand_hi[c] =
          std::max(operand_hi[c], static_cast<std::int32_t>(pe.side));
    }
  }

  out.route_pair_count_ = static_cast<std::int32_t>(np);
  out.group_ = group;
  out.op_ = op;
  out.flags_ = flags;
  out.branch_kinds_ = branch_kind;
  out.pop_need_ = pop_need;
  out.local_reg_ = local_reg;
  out.slot_ = slot;
  out.phys_ = phys;
  out.target_ = target;
  out.operand_ = operand;
  out.exec_cost_ = exec_cost;
  out.produce_extra_ = produce_extra;
  out.operand_hi_ = operand_hi;
  out.forward_fanout_ = forward_fanout;
  out.edge_begin_ = edge_begin;
  out.oper_begin_ = oper_begin;
  out.edges_ = edges;
  out.opers_ = opers;
  out.route_links_ = links;
  out.route_pairs_ = pairs;
}

}  // namespace javaflow::sim
