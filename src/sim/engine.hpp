// Execution engine: simulates a loaded, resolved method running on the
// DataFlow fabric under a machine configuration (paper §6.3 + §7.3).
//
// The time base is serial ticks; one mesh cycle is `serial_per_mesh`
// ticks (Table 15). The engine is event-driven: serial token deliveries,
// mesh operand arrivals, execution completions (Table 17 costs) and
// memory/GPP service completions (Figure 25) are the event kinds. The
// Baseline configuration collapses serial transit to zero ticks and all
// mesh distances to one cycle.
#pragma once

#include <cstdint>
#include <memory>

#include "bytecode/method.hpp"
#include "fabric/dataflow_graph.hpp"
#include "fabric/fabric.hpp"
#include "fabric/loader.hpp"
#include "sim/branch_predictor.hpp"
#include "sim/config.hpp"
#include "sim/plan.hpp"

namespace javaflow::obs {
struct MetricsRegistry;
class EventTracer;
class FlightRecorder;
}  // namespace javaflow::obs

namespace javaflow::sim {

namespace detail {
// Heap allocations (event-queue backing stores for both schedulers, the
// struct-of-arrays hot node state plus the cold per-node runtime state
// including operand buffers, cached branch classifications) that
// persist across an Engine's run() calls so repeated runs reuse
// capacity instead of re-allocating. Defined in engine.cpp.
struct EngineWorkspace;
}  // namespace detail

struct RunMetrics {
  bool fits = false;       // method placed within the node budget
  bool completed = false;  // reached a Return (or aborted via exception)
  bool timed_out = false;  // exceeded the tick budget (excluded, §7.3)
  bool exception = false;  // EXCEPTION_TOKEN raised; GPP terminated the
                           // method (§6.3 "Exceptions")

  std::int64_t ticks = 0;          // serial ticks at completion
  std::int64_t mesh_cycles = 0;    // ticks / serial_per_mesh, rounded up
  std::int64_t instructions_fired = 0;  // firings (re-fires in loops count)
  std::int32_t distinct_fired = 0;
  std::int32_t static_size = 0;
  std::int32_t max_slot = -1;      // highest fabric slot used (Table 19)
  std::int64_t mesh_messages = 0;
  std::int64_t serial_messages = 0;

  // Tick spans with >=1 / >=2 instructions in execution (Table 26).
  std::int64_t ticks_exec_1plus = 0;
  std::int64_t ticks_exec_2plus = 0;

  double ipc() const {
    return mesh_cycles > 0
               ? static_cast<double>(instructions_fired) /
                     static_cast<double>(mesh_cycles)
               : 0.0;
  }
  double coverage() const {
    return static_size > 0 ? static_cast<double>(distinct_fired) /
                                 static_cast<double>(static_size)
                           : 0.0;
  }
  double parallel_2plus() const {
    return ticks > 0 ? static_cast<double>(ticks_exec_2plus) /
                           static_cast<double>(ticks)
                     : 0.0;
  }
  double nodes_per_instruction() const {
    return static_size > 0 ? static_cast<double>(max_slot + 1) /
                                 static_cast<double>(static_size)
                           : 0.0;
  }

  // Field-wise equality, used to assert that parallel and serial sweeps
  // (and repeated runs on a reused engine) produce identical results.
  bool operator==(const RunMetrics&) const = default;
};

struct EngineOptions {
  std::int64_t max_ticks = 4'000'000;
  bool trace = false;  // dump every event to stderr (debugging aid)
  // Event-scheduler implementation (docs/PERF.md "Engine kernel"). Both
  // kinds produce bit-identical results; Auto resolves via
  // JAVAFLOW_SCHEDULER (default: the calendar queue) once at Engine
  // construction. tests/test_scheduler.cpp asserts the equality.
  SchedulerKind scheduler = SchedulerKind::Auto;
  // Pre-lowered execution plans (docs/PERF.md "Execution plans"). On
  // lowers each method to a sim::ExecPlan (cached in the workspace) and
  // runs the plan-driven fast path; Off keeps the legacy per-run
  // graph/placement walk. Bit-identical either way; Auto resolves via
  // JAVAFLOW_PLAN (default On) once at Engine construction.
  // tests/test_plan.cpp asserts the equality.
  PlanMode plan = PlanMode::Auto;
  // Failure injection: the node at this linear address raises an
  // arithmetic exception on its `inject_exception_fire`-th firing
  // (1-based). The node halts, an EXCEPTION_TOKEN travels to the GPP,
  // and the GPP terminates the method (§6.3 "Exceptions").
  std::int32_t inject_exception_at = -1;
  std::int32_t inject_exception_fire = 1;
  // Telemetry (src/obs/, docs/OBSERVABILITY.md). Both default to null,
  // and every instrumentation site is guarded by a single null check, so
  // the disabled engine is a guaranteed no-op on the hot path. Counters
  // accumulate across runs; the caller owns the objects and must keep
  // them alive for the engine's lifetime. Neither is touched by any
  // other thread while a run is in flight (engines are lane-private).
  obs::MetricsRegistry* metrics = nullptr;
  obs::EventTracer* tracer = nullptr;
  // Critical-path flight recorder (src/obs/critpath.hpp): captures one
  // dependency edge per scheduled event so attribute() can reconstruct
  // the realized critical path. Same null-guarded contract as the two
  // pointers above; the recorder is reset by the engine at the start of
  // every run, so its contents always describe the latest run.
  obs::FlightRecorder* flight = nullptr;
};

// An Engine carries only its configuration plus a private scratch
// workspace; all per-run state lives in the workspace and is fully
// re-initialized by each run() call. Distinct Engine instances may run
// concurrently on different threads (the parallel sweep gives each
// worker lane its own engines); a single instance is not re-entrant.
class Engine {
 public:
  explicit Engine(MachineConfig config, EngineOptions options = {});
  Engine(Engine&&) noexcept;
  Engine& operator=(Engine&&) noexcept;
  ~Engine();

  // Runs one method to completion (or timeout). The dataflow graph must
  // have been built for `m` (it is configuration-independent, so callers
  // build it once and reuse it across configurations and predictors).
  RunMetrics run(const bytecode::Method& m,
                 const fabric::DataflowGraph& graph,
                 BranchPredictor& predictor);

  // Run with an externally computed placement — used when several
  // methods are co-resident and the fabric manager owns slot assignment
  // (§6.2 "Management and Cleanup").
  RunMetrics run(const bytecode::Method& m,
                 const fabric::DataflowGraph& graph,
                 const fabric::Placement& placement,
                 BranchPredictor& predictor);

  // Run from a pre-lowered plan (docs/PERF.md "Execution plans"). The
  // plan must have been built for `m` under this engine's MachineConfig;
  // it embeds the graph, placement, and timing model, so neither is
  // consulted. The plan is read-only here — the parallel sweep shares
  // one plan across worker lanes. Always takes the plan path regardless
  // of EngineOptions::plan (the caller already opted in by lowering).
  RunMetrics run(const bytecode::Method& m, const ExecPlan& plan,
                 BranchPredictor& predictor);

  const MachineConfig& config() const noexcept { return config_; }

 private:
  MachineConfig config_;
  EngineOptions options_;
  std::unique_ptr<detail::EngineWorkspace> ws_;
};

}  // namespace javaflow::sim
