#include "sim/config.hpp"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace javaflow::sim {

std::string_view scheduler_name(SchedulerKind k) noexcept {
  switch (k) {
    case SchedulerKind::Auto: return "auto";
    case SchedulerKind::Heap: return "heap";
    case SchedulerKind::Calendar: return "calendar";
  }
  return "?";
}

std::optional<SchedulerKind> scheduler_from_name(
    std::string_view name) noexcept {
  if (name == "heap") return SchedulerKind::Heap;
  if (name == "calendar") return SchedulerKind::Calendar;
  if (name == "auto") return SchedulerKind::Auto;
  return std::nullopt;
}

SchedulerKind resolve_scheduler(SchedulerKind requested) noexcept {
  if (requested != SchedulerKind::Auto) return requested;
  const char* env = std::getenv("JAVAFLOW_SCHEDULER");
  if (env == nullptr || *env == '\0') return SchedulerKind::Calendar;
  const std::optional<SchedulerKind> k = scheduler_from_name(env);
  if (!k.has_value() || *k == SchedulerKind::Auto) {
    if (!k.has_value()) {
      std::fprintf(stderr,
                   "warning: ignoring JAVAFLOW_SCHEDULER=\"%s\" (expected "
                   "\"heap\" or \"calendar\"); using calendar\n",
                   env);
    }
    return SchedulerKind::Calendar;
  }
  return *k;
}

std::string MachineConfig::canonical_text() const {
  // The name is deliberately included: named Table 15 configs are
  // distinct rows in every report, so a renamed-but-identical config
  // re-simulating once is cheaper than ever conflating two rows.
  std::string out = "cfgv1";
  auto field = [&out](const char* key, long long v) {
    out += '|';
    out += key;
    out += '=';
    out += std::to_string(v);
  };
  out += "|name=";
  out += name;
  field("layout", static_cast<long long>(layout));
  field("serial_per_mesh", serial_per_mesh);
  field("width", width);
  field("capacity", capacity);
  field("idus_per_node", idus_per_node);
  field("ring_memory_read", ring.memory_read);
  field("ring_memory_write", ring.memory_write);
  field("ring_constant_read", ring.constant_read);
  field("ring_gpp_service", ring.gpp_service);
  return out;
}

std::vector<MachineConfig> table15_configs() {
  using fabric::LayoutKind;
  auto make = [](const char* name, LayoutKind layout, int serial_per_mesh) {
    MachineConfig cfg;
    cfg.name = name;
    cfg.layout = layout;
    cfg.serial_per_mesh = serial_per_mesh;
    return cfg;
  };
  return {
      make("Baseline", LayoutKind::Collapsed, 1),
      make("Compact10", LayoutKind::Compact, 10),
      make("Compact4", LayoutKind::Compact, 4),
      make("Compact2", LayoutKind::Compact, 2),
      make("Sparse2", LayoutKind::Sparse, 2),
      make("Hetero2", LayoutKind::Heterogeneous, 2),
  };
}

MachineConfig config_by_name(const std::string& name) {
  for (MachineConfig& c : table15_configs()) {
    if (c.name == name) return c;
  }
  throw std::runtime_error("unknown configuration: " + name);
}

}  // namespace javaflow::sim
