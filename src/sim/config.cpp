#include "sim/config.hpp"

#include <stdexcept>

namespace javaflow::sim {

std::vector<MachineConfig> table15_configs() {
  using fabric::LayoutKind;
  auto make = [](const char* name, LayoutKind layout, int serial_per_mesh) {
    MachineConfig cfg;
    cfg.name = name;
    cfg.layout = layout;
    cfg.serial_per_mesh = serial_per_mesh;
    return cfg;
  };
  return {
      make("Baseline", LayoutKind::Collapsed, 1),
      make("Compact10", LayoutKind::Compact, 10),
      make("Compact4", LayoutKind::Compact, 4),
      make("Compact2", LayoutKind::Compact, 2),
      make("Sparse2", LayoutKind::Sparse, 2),
      make("Hetero2", LayoutKind::Heterogeneous, 2),
  };
}

MachineConfig config_by_name(const std::string& name) {
  for (MachineConfig& c : table15_configs()) {
    if (c.name == name) return c;
  }
  throw std::runtime_error("unknown configuration: " + name);
}

}  // namespace javaflow::sim
