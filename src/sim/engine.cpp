#include "sim/engine.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "net/message.hpp"
#include "obs/event_tracer.hpp"
#include "obs/metrics.hpp"

namespace javaflow::sim {
namespace {

using bytecode::Group;
using bytecode::Instruction;
using bytecode::Method;
using bytecode::Op;
using fabric::DataflowGraph;
using fabric::Edge;
using fabric::Fabric;
using fabric::Placement;
using net::Command;
using net::SerialMessage;

bool is_switch(Op op) {
  return op == Op::tableswitch || op == Op::lookupswitch;
}

// Nodes that buffer the whole token bundle until they fire (§6.3 Control
// Flow Operations). Calls are deliberately excluded: they pass all tokens
// except TAIL while executing.
bool buffers_tokens(const Instruction& inst) {
  const Group g = inst.group();
  return g == Group::ControlFlow || g == Group::Return ||
         is_switch(inst.op);
}

bool is_ordered_storage(const Instruction& inst) {
  const Group g = inst.group();
  return g == Group::MemRead || g == Group::MemWrite;
}

// Per-node runtime state (wraps the Figure 13 resources).
struct NodeRt {
  Instruction inst;
  std::int32_t linear = -1;
  std::int32_t slot = -1;
  const std::vector<Edge>* consumers = nullptr;

  // dynamic
  bool head_received = false;
  bool fired = false;
  bool executing = false;
  bool in_service = false;
  std::int32_t pops_received = 0;
  std::int32_t reset_count = 0;  // iteration epoch for mesh messages

  bool reg_held = false;        // LocalRead/LocalInc captured its token
  SerialMessage held_reg{};
  bool write_absorbed = false;  // LocalWrite consumed the stale token
  bool kill_next_register = false;
  bool memory_held = false;     // ordered storage holds MEMORY_TOKEN
  SerialMessage held_memory{};
  bool tail_held = false;       // non-control node holding the TAIL
  SerialMessage held_tail{};
  bool tail_present = false;    // control node has TAIL in its buffer

  std::vector<SerialMessage> buffered;  // control-node token buffer
  bool pass_through = false;    // fired forward transfer: route follows
  std::int32_t route_to = net::kToNext;
  bool waiting_tail_flush = false;  // back transfer fired, awaiting TAIL
  std::int32_t decided_target = -1;

  // Telemetry timestamps (written only when EngineOptions::metrics is
  // set; always reset so stale values cannot leak across iterations).
  std::int64_t head_tick = -1;       // latest HEAD_TOKEN arrival
  std::int64_t tail_hold_tick = -1;  // when this node started holding TAIL

  // Full re-initialization for a fresh run: unlike reset_iteration(),
  // this also rebinds the static fields and zeroes the epoch counter.
  // `buffered` keeps its capacity, so a reused workspace stops paying
  // for operand-buffer growth after the first run.
  void prepare(const Instruction& instruction, std::int32_t linear_addr,
               std::int32_t slot_addr, const std::vector<Edge>* edges) {
    inst = instruction;
    linear = linear_addr;
    slot = slot_addr;
    consumers = edges;
    reset_iteration();
    reset_count = 0;
  }

  void reset_iteration() {
    head_received = false;
    fired = false;
    executing = false;
    in_service = false;
    pops_received = 0;
    ++reset_count;
    reg_held = false;
    write_absorbed = false;
    kill_next_register = false;
    memory_held = false;
    tail_held = false;
    tail_present = false;
    buffered.clear();
    pass_through = false;
    route_to = net::kToNext;
    waiting_tail_flush = false;
    decided_target = -1;
    head_tick = -1;
    tail_hold_tick = -1;
  }
};

enum class EvKind : std::uint8_t { Serial, Mesh, ExecDone, ServiceDone };

struct Event {
  std::int64_t tick = 0;
  std::int64_t seq = 0;
  EvKind kind = EvKind::Serial;
  std::int32_t node = -1;
  SerialMessage msg{};       // Serial
  std::uint8_t side = 0;     // Mesh
  std::int32_t epoch = 0;    // Mesh
  bool operator>(const Event& o) const {
    return std::tie(tick, seq) > std::tie(o.tick, o.seq);
  }
};

// Min-heap comparator over (tick, seq). (tick, seq) is a strict total
// order — seq is unique — so the pop order is deterministic regardless
// of the heap's internal layout.
struct EventAfter {
  bool operator()(const Event& a, const Event& b) const { return a > b; }
};

}  // namespace

struct detail::EngineWorkspace {
  std::vector<NodeRt> nodes;
  std::vector<char> distinct;
  std::vector<Event> events;  // binary-heap backing store
  std::vector<char> node_exec_busy;
  std::vector<std::vector<std::int32_t>> pending_fire;

  // classify_branches() cache: configuration-independent, so it only
  // needs recomputing when the engine is handed a different method.
  // Keyed on address + size + name so a recycled allocation holding a
  // different method cannot alias a stale classification.
  const bytecode::Method* branch_method = nullptr;
  std::size_t branch_code_size = 0;
  std::string branch_name;
  std::vector<std::uint8_t> branch_kinds;
};

namespace {

class Run {
 public:
  Run(const MachineConfig& cfg, const EngineOptions& opt, const Method& m,
      const DataflowGraph& graph, BranchPredictor& predictor,
      const Placement* placement, detail::EngineWorkspace& ws)
      : external_placement_(placement),
        cfg_(cfg),
        opt_(opt),
        m_(m),
        graph_(graph),
        predictor_(predictor),
        fabric_(cfg.fabric_options()),
        k_(cfg.serial_per_mesh),
        hop_(cfg.collapsed() ? 0 : 1),
        idus_(std::max(cfg.idus_per_node, 1)),
        mx_(opt.metrics),
        tr_(opt.tracer),
        branch_kinds_(ws.branch_kinds),
        node_exec_busy_(ws.node_exec_busy),
        pending_fire_(ws.pending_fire),
        nodes_(ws.nodes),
        distinct_(ws.distinct),
        events_(ws.events) {}

  // Physical Instruction Node hosting an IDU chain slot (§4.2).
  std::int32_t phys(std::int32_t slot) const { return slot / idus_; }

  RunMetrics execute() {
    RunMetrics metrics;
    metrics.static_size = static_cast<std::int32_t>(m_.code.size());
    placement_ = external_placement_ != nullptr ? *external_placement_
                                                : fabric::load_method(fabric_, m_);
    if (!placement_.fits) return metrics;
    metrics.fits = true;
    metrics.max_slot = placement_.max_slot;

    node_exec_busy_.assign(
        static_cast<std::size_t>(phys(placement_.max_slot) + 1), 0);
    // Keep the per-physical-node pending lists (and their capacity)
    // across runs; only the entries this method can touch need clearing.
    if (pending_fire_.size() < node_exec_busy_.size()) {
      pending_fire_.resize(node_exec_busy_.size());
    }
    for (std::size_t i = 0; i < node_exec_busy_.size(); ++i) {
      pending_fire_[i].clear();
    }
    nodes_.resize(m_.code.size());
    for (std::size_t i = 0; i < m_.code.size(); ++i) {
      nodes_[i].prepare(m_.code[i], static_cast<std::int32_t>(i),
                        placement_.slot_of[i], &graph_.consumers_of[i]);
    }
    distinct_.assign(m_.code.size(), 0);
    events_.clear();
    // Amortize event-queue growth: outstanding events scale with the
    // token bundle plus in-flight mesh traffic, both O(method size).
    events_.reserve(std::max<std::size_t>(64, 4 * m_.code.size()));

    inject_bundle();

    while (!events_.empty() && !completed_) {
      std::pop_heap(events_.begin(), events_.end(), EventAfter{});
      const Event ev = events_.back();
      events_.pop_back();
      now_ = ev.tick;
      if (opt_.trace) trace_event(ev);
      if (now_ > opt_.max_ticks) {
        metrics.timed_out = true;
        break;
      }
      switch (ev.kind) {
        case EvKind::Serial: on_serial(ev.node, ev.msg); break;
        case EvKind::Mesh: on_mesh(ev.node, ev.side, ev.epoch); break;
        case EvKind::ExecDone: on_exec_done(ev.node); break;
        case EvKind::ServiceDone: on_service_done(ev.node); break;
      }
    }

    flush_exec_accounting();
    metrics.completed = completed_;
    metrics.exception = exception_raised_;
    metrics.ticks = completed_ ? end_tick_ : now_;
    metrics.mesh_cycles =
        std::max<std::int64_t>(1, (metrics.ticks + k_ - 1) / k_);
    metrics.instructions_fired = fired_count_;
    metrics.distinct_fired = static_cast<std::int32_t>(
        std::count(distinct_.begin(), distinct_.end(), 1));
    metrics.mesh_messages = mesh_messages_;
    metrics.serial_messages = serial_messages_;
    metrics.ticks_exec_1plus = acc_1plus_;
    metrics.ticks_exec_2plus = acc_2plus_;
    if (mx_ != nullptr) ++mx_->runs;
    return metrics;
  }

 private:
  void trace_event(const Event& ev) {
    const char* kind = ev.kind == EvKind::Serial ? "serial"
                       : ev.kind == EvKind::Mesh ? "mesh"
                       : ev.kind == EvKind::ExecDone ? "exec" : "svc";
    std::fprintf(stderr, "t=%lld %s node=%d", (long long)ev.tick, kind,
                 ev.node);
    if (ev.kind == EvKind::Serial) {
      std::fprintf(stderr, " cmd=%s reg=%d",
                   std::string(net::command_name(ev.msg.cmd)).c_str(),
                   ev.msg.reg);
    }
    if (ev.kind == EvKind::Mesh) {
      std::fprintf(stderr, " side=%d epoch=%d", ev.side, ev.epoch);
    }
    std::fprintf(stderr, "\n");
  }

  // ---- scheduling helpers ----
  void schedule(Event ev) {
    ev.seq = seq_++;
    events_.push_back(ev);
    std::push_heap(events_.begin(), events_.end(), EventAfter{});
  }

  std::int64_t serial_delay(std::int32_t from_node, std::int32_t to_node) {
    const std::int32_t a =
        from_node < 0
            ? -1
            : phys(nodes_[static_cast<std::size_t>(from_node)].slot);
    const std::int32_t b =
        phys(nodes_[static_cast<std::size_t>(to_node)].slot);
    const std::int64_t hops = a < 0 ? b + 1 : (a < b ? b - a : a - b);
    return hop_ * std::max<std::int64_t>(hops, 1);
  }

  void send_serial(std::int32_t from_node, std::int32_t to_node,
                   SerialMessage msg, std::int64_t extra = 0) {
    if (to_node < 0 ||
        static_cast<std::size_t>(to_node) >= nodes_.size()) {
      return;  // token falls off the chain (e.g. past the bottom)
    }
    ++serial_messages_;
    const std::int64_t delay = serial_delay(from_node, to_node);
    if (mx_ != nullptr) {
      ++mx_->serial_messages;
      mx_->serial_hop_ticks += static_cast<std::uint64_t>(delay);
      ++mx_->serial_commands[static_cast<std::size_t>(msg.cmd)];
    }
    Event ev;
    ev.kind = EvKind::Serial;
    ev.node = to_node;
    ev.msg = msg;
    ev.tick = now_ + delay + extra;
    schedule(ev);
  }

  void send_mesh(std::int32_t producer) {
    NodeRt& p = nodes_[static_cast<std::size_t>(producer)];
    for (const Edge& e : *p.consumers) {
      if (e.back) continue;  // absent in valid Java (Table 7)
      NodeRt& c = nodes_[static_cast<std::size_t>(e.consumer)];
      ++mesh_messages_;
      const std::int32_t from_phys = phys(p.slot);
      const std::int32_t to_phys = phys(c.slot);
      const std::int64_t cycles = fabric_.mesh_cycles(from_phys, to_phys);
      if (mx_ != nullptr) record_mesh_metrics(from_phys, to_phys, cycles);
      Event ev;
      ev.kind = EvKind::Mesh;
      ev.node = e.consumer;
      ev.side = e.side;
      ev.epoch = c.reset_count;
      ev.tick = now_ + k_ * cycles;
      schedule(ev);
    }
  }

  // ---- telemetry (every site is a single null check when disabled) ----
  void record_mesh_metrics(std::int32_t from_phys, std::int32_t to_phys,
                           std::int64_t cycles) {
    ++mx_->mesh_messages;
    mx_->mesh_transit_cycles += static_cast<std::uint64_t>(cycles);
    fabric_.mesh().for_each_route_link(
        from_phys, to_phys,
        [&](std::int32_t src, std::int32_t dx, std::int32_t dy) {
          const obs::LinkDir dir = dx > 0   ? obs::LinkDir::East
                                   : dx < 0 ? obs::LinkDir::West
                                   : dy > 0 ? obs::LinkDir::North
                                            : obs::LinkDir::South;
          mx_->mesh_link(src, dir);
        });
  }

  void note_buffered(const NodeRt& n) {
    if (mx_ != nullptr) {
      mx_->buffer_high_water(phys(n.slot), n.buffered.size());
    }
  }

  void record_service(std::int32_t node, net::RingService svc,
                      std::int64_t ticks) {
    if (mx_ != nullptr) {
      ++mx_->ring_requests[static_cast<std::size_t>(svc)];
      mx_->ring_latency_ticks[static_cast<std::size_t>(svc)].record(ticks);
    }
    if (tr_ != nullptr) {
      tr_->record({now_, obs::TraceEventKind::ServiceStart, node,
                   phys(nodes_[static_cast<std::size_t>(node)].slot),
                   static_cast<std::uint8_t>(svc), ticks});
    }
  }

  // ---- execution-overlap accounting (Table 26) ----
  void exec_delta(int delta) {
    if (active_exec_ >= 1) acc_1plus_ += now_ - last_exec_change_;
    if (active_exec_ >= 2) acc_2plus_ += now_ - last_exec_change_;
    last_exec_change_ = now_;
    active_exec_ += delta;
  }
  void flush_exec_accounting() {
    if (active_exec_ >= 1) acc_1plus_ += now_ - last_exec_change_;
    if (active_exec_ >= 2) acc_2plus_ += now_ - last_exec_change_;
    last_exec_change_ = now_;
  }

  // ---- token bundle ----
  void inject_bundle() {
    std::vector<SerialMessage> bundle;
    bundle.push_back({Command::HeadToken});
    bundle.push_back({Command::MemoryToken});
    for (int r = 0; r < m_.max_locals; ++r) {
      SerialMessage reg{Command::RegisterToken};
      reg.reg = r;
      bundle.push_back(reg);
    }
    bundle.push_back({Command::TailToken});
    for (std::size_t i = 0; i < bundle.size(); ++i) {
      now_ = 0;
      send_serial(-1, 0, bundle[i],
                  hop_ == 0 ? 0 : static_cast<std::int64_t>(i));
    }
    now_ = 0;
  }

  // ---- serial handlers ----
  void forward_token(std::int32_t node, const SerialMessage& msg) {
    NodeRt& n = nodes_[static_cast<std::size_t>(node)];
    const std::int32_t to =
        n.pass_through ? n.route_to : node + 1;
    send_serial(node, to == net::kToNext ? node + 1 : to, msg);
  }

  void on_serial(std::int32_t node, const SerialMessage& msg) {
    NodeRt& n = nodes_[static_cast<std::size_t>(node)];
    if (tr_ != nullptr) {
      tr_->record({now_, obs::TraceEventKind::TokenDeliver, node,
                   phys(n.slot), static_cast<std::uint8_t>(msg.cmd), 0});
    }
    // Control-transfer nodes hold the bundle while unfired AND while a
    // fired backward transfer awaits its TAIL — those tokens are the
    // bundle that will replay around the loop (§6.3).
    const bool hold =
        buffers_tokens(n.inst) && (!n.fired || n.waiting_tail_flush);

    switch (msg.cmd) {
      case Command::HeadToken:
        n.head_received = true;
        if (mx_ != nullptr) n.head_tick = now_;
        if (hold) {
          n.buffered.push_back(msg);
          note_buffered(n);
          try_fire(node);
        } else {
          try_fire(node);
          forward_token(node, msg);  // the HEAD runs ahead (§6.3)
        }
        return;

      case Command::MemoryToken:
        if (hold) {
          n.buffered.push_back(msg);
          note_buffered(n);
          return;
        }
        if (is_ordered_storage(n.inst) && !n.fired) {
          n.memory_held = true;
          n.held_memory = msg;
          try_fire(node);
          return;
        }
        forward_token(node, msg);
        return;

      case Command::RegisterToken: {
        if (hold) {
          n.buffered.push_back(msg);
          note_buffered(n);
          return;
        }
        const Group g = n.inst.group();
        const std::int32_t reg = bytecode::local_register(n.inst);
        if ((g == Group::LocalRead || g == Group::LocalInc) &&
            reg == msg.reg && !n.fired && !n.reg_held) {
          n.reg_held = true;
          n.held_reg = msg;
          try_fire(node);
          return;
        }
        if (g == Group::LocalWrite && reg == msg.reg) {
          if (!n.fired) {
            n.write_absorbed = true;  // the write kills the old value
          } else if (n.kill_next_register) {
            n.kill_next_register = false;  // stale token after firing
          } else {
            forward_token(node, msg);
          }
          return;
        }
        forward_token(node, msg);
        return;
      }

      case Command::TailToken:
        if (buffers_tokens(n.inst)) {
          if (!n.fired) {
            n.buffered.push_back(msg);
            note_buffered(n);
            n.tail_present = true;
            try_fire(node);  // returns / backward gotos need the TAIL
            return;
          }
          if (n.waiting_tail_flush) {
            n.buffered.push_back(msg);
            note_buffered(n);
            flush_up(node);
            return;
          }
          forward_token(node, msg);
          return;
        }
        if (n.fired) {
          forward_token(node, msg);
        } else {
          n.tail_held = true;  // held until this node fires (§6.3)
          n.held_tail = msg;
          if (mx_ != nullptr) n.tail_hold_tick = now_;
        }
        return;

      default:
        forward_token(node, msg);
        return;
    }
  }

  void on_mesh(std::int32_t node, std::uint8_t side, std::int32_t epoch) {
    NodeRt& n = nodes_[static_cast<std::size_t>(node)];
    if (n.reset_count != epoch) return;  // stale (previous iteration)
    if (tr_ != nullptr) {
      tr_->record({now_, obs::TraceEventKind::OperandArrive, node,
                   phys(n.slot), side, 0});
    }
    ++n.pops_received;
    try_fire(node);
  }

  // ---- firing ----
  bool fire_ready(const NodeRt& n) const {
    if (!n.head_received || n.fired || n.executing || n.in_service) {
      return false;
    }
    const Group g = n.inst.group();
    switch (g) {
      case Group::LocalRead:
      case Group::LocalInc:
        return n.reg_held;
      case Group::MemRead:
      case Group::MemWrite:
        return n.pops_received >= n.inst.pop && n.memory_held;
      case Group::Return:
        return n.pops_received >= n.inst.pop && n.tail_present;
      case Group::ControlFlow:
        if ((n.inst.op == Op::goto_ || n.inst.op == Op::goto_w) &&
            n.inst.target < n.linear) {
          return n.tail_present;  // backward GoTo fires on TAIL (§6.3)
        }
        return n.pops_received >= n.inst.pop;
      default:
        return n.pops_received >= n.inst.pop;
    }
  }

  void try_fire(std::int32_t node) {
    NodeRt& n = nodes_[static_cast<std::size_t>(node)];
    if (!fire_ready(n)) return;
    // One Instruction Execution Unit per physical node: with several
    // IDUs packed into a node (§4.2), firings within a node serialize.
    const std::size_t pn = static_cast<std::size_t>(phys(n.slot));
    if (idus_ > 1 && node_exec_busy_[pn]) {
      pending_fire_[pn].push_back(node);
      return;
    }
    node_exec_busy_[pn] = true;
    n.executing = true;
    exec_delta(+1);
    const std::int64_t cost =
        k_ * bytecode::execution_mesh_cycles(n.inst.group());
    if (mx_ != nullptr) {
      mx_->node_firing(static_cast<std::int32_t>(pn),
                       static_cast<std::uint8_t>(n.inst.op));
      mx_->exec_ticks_by_group[static_cast<std::size_t>(n.inst.group())]
          .record(cost);
      if (n.head_tick >= 0) mx_->fire_stall_ticks.record(now_ - n.head_tick);
    }
    if (tr_ != nullptr) {
      tr_->record({now_, obs::TraceEventKind::FireStart, node,
                   static_cast<std::int32_t>(pn),
                   static_cast<std::uint8_t>(n.inst.group()), cost});
    }
    Event ev;
    ev.kind = EvKind::ExecDone;
    ev.node = node;
    ev.tick = now_ + cost;
    schedule(ev);
  }

  void release_execution_unit(std::int32_t node) {
    const std::size_t pn = static_cast<std::size_t>(
        phys(nodes_[static_cast<std::size_t>(node)].slot));
    node_exec_busy_[pn] = false;
    if (idus_ <= 1) return;
    auto& pending = pending_fire_[pn];
    while (!pending.empty()) {
      const std::int32_t next = pending.front();
      pending.erase(pending.begin());
      try_fire(next);
      if (node_exec_busy_[pn]) break;  // someone grabbed the unit
    }
  }

  void mark_fired(std::int32_t node) {
    NodeRt& n = nodes_[static_cast<std::size_t>(node)];
    n.fired = true;
    ++fired_count_;
    distinct_[static_cast<std::size_t>(node)] = true;
  }

  // Releases everything a non-control node owes downstream after firing.
  void post_fire_releases(std::int32_t node) {
    NodeRt& n = nodes_[static_cast<std::size_t>(node)];
    const Group g = n.inst.group();
    if (g == Group::LocalRead || g == Group::LocalInc) {
      if (n.reg_held) {
        n.reg_held = false;
        forward_token(node, n.held_reg);  // register value flows on
      }
    }
    if (g == Group::LocalWrite) {
      SerialMessage reg{Command::RegisterToken};
      reg.reg = bytecode::local_register(n.inst);
      forward_token(node, reg);  // freshly written register value
      if (!n.write_absorbed) n.kill_next_register = true;
    }
    if (n.memory_held) {
      n.memory_held = false;
      forward_token(node, n.held_memory);  // memory order established
    }
    if (n.tail_held) {
      n.tail_held = false;
      if (mx_ != nullptr && n.tail_hold_tick >= 0) {
        mx_->tail_hold_ticks.record(now_ - n.tail_hold_tick);
        n.tail_hold_tick = -1;
      }
      forward_token(node, n.held_tail);
    }
  }

  void on_exec_done(std::int32_t node) {
    NodeRt& n = nodes_[static_cast<std::size_t>(node)];
    n.executing = false;
    exec_delta(-1);
    release_execution_unit(node);
    const Group g = n.inst.group();
    if (tr_ != nullptr) {
      tr_->record({now_, obs::TraceEventKind::FireComplete, node,
                   phys(n.slot), static_cast<std::uint8_t>(g), 0});
    }

    if (node == opt_.inject_exception_at &&
        ++exception_fire_count_ >= opt_.inject_exception_fire &&
        !exception_raised_) {
      // §6.3 Exceptions: the node halts, an EXCEPTION_TOKEN reaches the
      // GPP over the ring, and the GPP terminates the method.
      exception_raised_ = true;
      fabric_.ring().record_request(net::RingService::GppService);
      const std::int64_t svc_ticks =
          k_ * fabric_.ring().service_mesh_cycles(
                   net::RingService::GppService);
      if (mx_ != nullptr || tr_ != nullptr) {
        record_service(node, net::RingService::GppService, svc_ticks);
      }
      completed_ = true;
      end_tick_ = now_ + svc_ticks;
      return;
    }

    if (g == Group::ControlFlow || is_switch(n.inst.op)) {
      resolve_control(node);
      return;
    }
    if (g == Group::Return) {
      mark_fired(node);
      completed_ = true;
      end_tick_ = now_;
      return;
    }
    if (g == Group::Call || (g == Group::Special && !is_switch(n.inst.op))) {
      n.in_service = true;
      fabric_.ring().record_request(net::RingService::GppService);
      const std::int64_t svc_ticks =
          k_ * fabric_.ring().service_mesh_cycles(
                   net::RingService::GppService);
      if (mx_ != nullptr || tr_ != nullptr) {
        record_service(node, net::RingService::GppService, svc_ticks);
      }
      Event ev;
      ev.kind = EvKind::ServiceDone;
      ev.node = node;
      ev.tick = now_ + svc_ticks;
      schedule(ev);
      return;
    }
    if (g == Group::MemRead) {
      n.in_service = true;
      fabric_.ring().record_request(net::RingService::MemoryRead);
      if (n.memory_held) {
        n.memory_held = false;
        forward_token(node, n.held_memory);
      }
      const std::int64_t svc_ticks =
          k_ * fabric_.ring().service_mesh_cycles(
                   net::RingService::MemoryRead);
      if (mx_ != nullptr || tr_ != nullptr) {
        record_service(node, net::RingService::MemoryRead, svc_ticks);
      }
      Event ev;
      ev.kind = EvKind::ServiceDone;
      ev.node = node;
      ev.tick = now_ + svc_ticks;
      schedule(ev);
      return;
    }
    if (g == Group::MemWrite) {
      // Posted write: the node is fired once the request is dispatched.
      fabric_.ring().record_request(net::RingService::MemoryWrite);
      if (mx_ != nullptr || tr_ != nullptr) {
        record_service(node, net::RingService::MemoryWrite,
                       k_ * fabric_.ring().service_mesh_cycles(
                                net::RingService::MemoryWrite));
      }
      mark_fired(node);
      post_fire_releases(node);
      return;
    }
    // Arithmetic / moves / locals / constants: produce and release.
    mark_fired(node);
    send_mesh(node);
    post_fire_releases(node);
  }

  void on_service_done(std::int32_t node) {
    NodeRt& n = nodes_[static_cast<std::size_t>(node)];
    n.in_service = false;
    if (tr_ != nullptr) {
      const net::RingService svc = n.inst.group() == Group::MemRead
                                       ? net::RingService::MemoryRead
                                       : net::RingService::GppService;
      tr_->record({now_, obs::TraceEventKind::ServiceComplete, node,
                   phys(n.slot), static_cast<std::uint8_t>(svc), 0});
    }
    mark_fired(node);
    send_mesh(node);  // read data / call result to consumers
    post_fire_releases(node);
  }

  // Control-transfer decision and token routing (§6.3).
  void resolve_control(std::int32_t node) {
    NodeRt& n = nodes_[static_cast<std::size_t>(node)];
    std::int32_t target;
    if (n.inst.op == Op::goto_ || n.inst.op == Op::goto_w) {
      target = n.inst.target;
    } else if (is_switch(n.inst.op)) {
      const bytecode::SwitchTable& table =
          m_.switches[static_cast<std::size_t>(n.inst.operand)];
      const auto arms =
          static_cast<std::int32_t>(table.targets.size()) + 1;
      const std::int32_t pick = predictor_.decide_switch(n.linear, arms);
      target = pick < static_cast<std::int32_t>(table.targets.size())
                   ? table.targets[static_cast<std::size_t>(pick)]
                   : table.default_target;
    } else {
      const auto kind = static_cast<BranchKind>(
          branch_kinds_[static_cast<std::size_t>(n.linear)]);
      const bool taken = predictor_.decide(n.linear, kind);
      target = taken ? n.inst.target : n.linear + 1;
    }

    mark_fired(node);
    if (target > n.linear) {
      // Forward transfer: flush the buffer toward the target; later
      // tokens follow the same route until the iteration resets.
      n.pass_through = true;
      n.route_to = target;
      std::int64_t idx = 0;
      for (const SerialMessage& tok : n.buffered) {
        send_serial(node, target, tok, hop_ == 0 ? 0 : idx++);
      }
      n.buffered.clear();
      return;
    }
    // Backward transfer: hold everything until the TAIL arrives (§6.3).
    n.waiting_tail_flush = true;
    n.decided_target = target;
    if (n.tail_present) flush_up(node);
  }

  // Back jump with TAIL in hand: replay the bundle to the loop head via
  // the reverse network, resetting every node it passes.
  void flush_up(std::int32_t node) {
    NodeRt& n = nodes_[static_cast<std::size_t>(node)];
    const std::int32_t target = n.decided_target;
    std::vector<SerialMessage> bundle = std::move(n.buffered);
    n.buffered.clear();
    for (std::int32_t i = target; i <= node; ++i) {
      nodes_[static_cast<std::size_t>(i)].reset_iteration();
    }
    std::int64_t idx = 0;
    for (const SerialMessage& tok : bundle) {
      send_serial(node, target, tok, hop_ == 0 ? 0 : idx++);
    }
  }

  const Placement* external_placement_ = nullptr;
  const MachineConfig& cfg_;
  const EngineOptions& opt_;
  const Method& m_;
  const DataflowGraph& graph_;
  BranchPredictor& predictor_;
  Fabric fabric_;
  const std::int64_t k_;
  const std::int64_t hop_;
  const std::int32_t idus_;
  obs::MetricsRegistry* const mx_;  // null = telemetry disabled (no-op)
  obs::EventTracer* const tr_;
  // Workspace-backed storage: all references point into the engine's
  // detail::EngineWorkspace and are re-initialized by execute().
  const std::vector<std::uint8_t>& branch_kinds_;
  std::vector<char>& node_exec_busy_;
  std::vector<std::vector<std::int32_t>>& pending_fire_;

  Placement placement_;
  std::vector<NodeRt>& nodes_;
  std::vector<char>& distinct_;
  std::vector<Event>& events_;  // min-heap ordered by EventAfter
  std::int64_t seq_ = 0;
  std::int64_t now_ = 0;
  bool completed_ = false;
  bool exception_raised_ = false;
  std::int32_t exception_fire_count_ = 0;
  std::int64_t end_tick_ = 0;
  std::int64_t fired_count_ = 0;
  std::int64_t mesh_messages_ = 0;
  std::int64_t serial_messages_ = 0;
  int active_exec_ = 0;
  std::int64_t last_exec_change_ = 0;
  std::int64_t acc_1plus_ = 0;
  std::int64_t acc_2plus_ = 0;
};

// Refreshes the workspace's branch-classification cache for `m`. The
// classification depends only on the bytecode, so back-to-back runs of
// the same method (the sweep's config × scenario inner loops) reuse it.
void refresh_branch_kinds(detail::EngineWorkspace& ws, const Method& m) {
  if (ws.branch_method == &m && ws.branch_code_size == m.code.size() &&
      ws.branch_name == m.name) {
    return;
  }
  ws.branch_kinds = classify_branches(m);
  ws.branch_method = &m;
  ws.branch_code_size = m.code.size();
  ws.branch_name = m.name;
}

}  // namespace

Engine::Engine(MachineConfig config, EngineOptions options)
    : config_(std::move(config)),
      options_(options),
      ws_(std::make_unique<detail::EngineWorkspace>()) {}

Engine::Engine(Engine&&) noexcept = default;
Engine& Engine::operator=(Engine&&) noexcept = default;
Engine::~Engine() = default;

RunMetrics Engine::run(const Method& m, const DataflowGraph& graph,
                       BranchPredictor& predictor) {
  refresh_branch_kinds(*ws_, m);
  Run run(config_, options_, m, graph, predictor, nullptr, *ws_);
  return run.execute();
}

RunMetrics Engine::run(const Method& m, const DataflowGraph& graph,
                       const fabric::Placement& placement,
                       BranchPredictor& predictor) {
  refresh_branch_kinds(*ws_, m);
  Run run(config_, options_, m, graph, predictor, &placement, *ws_);
  return run.execute();
}

}  // namespace javaflow::sim
