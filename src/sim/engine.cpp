#include "sim/engine.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/message.hpp"
#include "obs/critpath.hpp"
#include "obs/event_tracer.hpp"
#include "obs/metrics.hpp"
#include "sim/engine_internal.hpp"

namespace javaflow::sim {
namespace {

using bytecode::Group;
using bytecode::Instruction;
using bytecode::Method;
using bytecode::Op;
using fabric::DataflowGraph;
using fabric::Edge;
using fabric::Fabric;
using fabric::Placement;
using net::Command;

// Token, NodeRt, the firing-state bits, the 32-byte Event record, and
// the calendar constants are shared with the multi-tenant MultiEngine
// (sim/engine_internal.hpp). Single-method runs leave Event::res at 0.
using detail::Event;
using detail::EventAfter;
using detail::EvKind;
using detail::is_switch;
using detail::kExecuting;
using detail::kFired;
using detail::kHeadReceived;
using detail::kInService;
using detail::kMaxBuckets;
using detail::kMaxExecMeshCycles;
using detail::kWaitTailFlush;
using detail::NodeRt;
using detail::Token;

// Sentinel `parent` for schedule(): attach the new dependency edge to
// the event currently being dispatched (flight recorder only).
constexpr std::int32_t kParentCurrent = -2;

}  // namespace

struct detail::EngineWorkspace {
  // Cold per-node state plus the struct-of-arrays hot lanes. The lanes
  // are indexed by linear instruction address, same as `nodes`.
  std::vector<NodeRt> nodes;
  std::vector<std::uint8_t> node_state;   // kHeadReceived|kFired|...
  std::vector<std::int32_t> node_pops;    // mesh operands received
  std::vector<std::int32_t> node_epoch;   // iteration epoch (mesh filter)
  std::vector<std::int32_t> node_fwd;     // serial forward target (i+1
                                          // until a forward branch fires)
  std::vector<std::int64_t> node_head_tick;  // latest HEAD arrival
  std::vector<std::int64_t> node_tail_hold;  // TAIL hold start
  std::vector<char> distinct;
  std::vector<char> node_exec_busy;
  std::vector<std::vector<std::int32_t>> pending_fire;

  // Legacy-path static lanes, filled by prepare_node() per run. On the
  // plan path the Run binds its static-lane pointers straight into the
  // ExecPlan arena instead and these stay untouched.
  std::vector<std::uint8_t> s_group;   // Instruction::group()
  std::vector<std::uint8_t> s_op;      // opcode byte
  std::vector<std::uint8_t> s_flags;   // kPlanBuffers|kPlanOrdered|...
  std::vector<std::int32_t> s_pop;     // operands required to fire
  std::vector<std::int32_t> s_local;   // bytecode::local_register
  std::vector<std::int32_t> s_phys;    // physical node of the slot
  std::vector<std::int32_t> s_target;  // branch target
  std::vector<std::int32_t> s_operand; // switch-table index
  std::vector<std::int32_t> s_exec;    // k * Table 17 cost, in ticks

  // Event-queue backing stores. `heap` backs the binary-heap scheduler;
  // `buckets`/`overflow`/`cal_words` back the calendar queue (one
  // occupancy bit per bucket, so empty-bucket scans are word-parallel
  // and end-of-run cleanup clears only dirty buckets). All grow
  // monotonically over the workspace lifetime so the sweep inner loop
  // stops paying reserve/allocation costs after the first few runs.
  std::vector<Event> heap;
  std::vector<std::vector<Event>> buckets;
  std::vector<std::uint64_t> cal_words;
  std::vector<Event> overflow;
  std::vector<Token> flush_scratch;  // flush_up bundle staging
  // Flight-recorder lanes: arrival edges of flushed tokens (parallels
  // flush_scratch) and the edge that made each node fire-ready while its
  // execution unit was busy (FireStall attribution, idus > 1 only).
  std::vector<std::int32_t> flush_edge_scratch;
  std::vector<std::int32_t> node_ready_edge;

  // classify_branches() cache: configuration-independent, so it only
  // needs recomputing when the engine is handed a different method.
  // Keyed on address + size + name so a recycled allocation holding a
  // different method cannot alias a stale classification.
  const bytecode::Method* branch_method = nullptr;
  std::size_t branch_code_size = 0;
  std::string branch_name;
  std::vector<std::uint8_t> branch_kinds;

  // Lowered-plan cache (EngineOptions::plan == On): the plan for the
  // most recent method, keyed like the branch cache plus a slot-lane
  // equality check when the caller supplies an external placement (the
  // fabric manager re-places co-resident methods, so the same method
  // can legitimately arrive with different slots). The builder's
  // scratch and the plan's arena both grow monotonically across
  // rebuilds.
  const bytecode::Method* plan_method = nullptr;
  std::size_t plan_code_size = 0;
  std::string plan_name;
  bool plan_valid = false;
  bool plan_external = false;
  ExecPlan plan;
  ExecPlanBuilder plan_builder;
};

namespace {

// One engine run. `kInstr` compiles the telemetry hooks in or out: the
// uninstrumented instantiation (no metrics/tracer/flight/trace) folds
// every null-check guard to a constant, so the sweep hot path carries
// zero instrumentation branches. `kCal` selects the scheduler at
// compile time, so the per-event enqueue path has no implementation
// branch either. Static per-node data is read through raw const
// pointers that alias either the ExecPlan arena (plan path) or the
// workspace's legacy lanes (prepare_node path).
template <bool kInstr, bool kCal>
class Run {
 public:
  Run(const MachineConfig& cfg, const EngineOptions& opt, const Method& m,
      const DataflowGraph* graph, BranchPredictor& predictor,
      const Placement* placement, const ExecPlan* plan,
      detail::EngineWorkspace& ws)
      : external_placement_(placement),
        plan_(plan),
        cfg_(cfg),
        opt_(opt),
        m_(m),
        graph_(graph),
        predictor_(predictor),
        k_(cfg.serial_per_mesh),
        hop_(cfg.collapsed() ? 0 : 1),
        idus_(std::max(cfg.idus_per_node, 1)),
        trace_(opt.trace),
        mx_(opt.metrics),
        tr_(opt.tracer),
        fr_(opt.flight),
        ws_(ws),
        node_exec_busy_(ws.node_exec_busy),
        pending_fire_(ws.pending_fire),
        nodes_(ws.nodes),
        state_(ws.node_state),
        pops_(ws.node_pops),
        epoch_(ws.node_epoch),
        fwd_(ws.node_fwd),
        head_tick_(ws.node_head_tick),
        tail_hold_(ws.node_tail_hold),
        distinct_(ws.distinct),
        heap_(ws.heap),
        buckets_(ws.buckets),
        cal_words_(ws.cal_words),
        overflow_(ws.overflow),
        flush_scratch_(ws.flush_scratch),
        flush_edge_scratch_(ws.flush_edge_scratch),
        node_ready_edge_(ws.node_ready_edge) {
    // The legacy walk needs a live Fabric (placement, mesh routing);
    // the plan path reads everything from the lowered arena.
    if (plan_ == nullptr) fabric_.emplace(cfg.fabric_options());
  }

  // Physical Instruction Node hosting an IDU chain slot (§4.2).
  std::int32_t phys_of_slot(std::int32_t slot) const { return slot / idus_; }

  RunMetrics execute() {
    RunMetrics metrics;
    // An unfit or timed-out run leaves the recorder without a terminal
    // edge, which attribute() reports as invalid — never as zeros.
    if (fr() != nullptr) fr()->reset();
    metrics.static_size = static_cast<std::int32_t>(m_.code.size());
    const std::size_t nn = m_.code.size();
    if (plan_ != nullptr) {
      if (!plan_->fits()) return metrics;
      metrics.fits = true;
      metrics.max_slot = plan_->max_slot();
      max_phys_ = plan_->max_phys();
      group_ = plan_->group();
      op_ = plan_->op();
      nflags_ = plan_->flags();
      bkinds_ = plan_->branch_kinds();
      pop_need_ = plan_->pop_need();
      local_reg_ = plan_->local_reg();
      phys_ = plan_->phys();
      target_ = plan_->target();
      operand_ = plan_->operand();
      exec_cost_ = plan_->exec_cost_ticks();
    } else {
      placement_ = external_placement_ != nullptr
                       ? *external_placement_
                       : fabric::load_method(*fabric_, m_);
      if (!placement_.fits) return metrics;
      metrics.fits = true;
      metrics.max_slot = placement_.max_slot;
      max_phys_ = phys_of_slot(placement_.max_slot);
      ws_.s_group.resize(nn);
      ws_.s_op.resize(nn);
      ws_.s_flags.resize(nn);
      ws_.s_pop.resize(nn);
      ws_.s_local.resize(nn);
      ws_.s_phys.resize(nn);
      ws_.s_target.resize(nn);
      ws_.s_operand.resize(nn);
      ws_.s_exec.resize(nn);
      for (std::size_t i = 0; i < nn; ++i) prepare_node(i);
      group_ = ws_.s_group.data();
      op_ = ws_.s_op.data();
      nflags_ = ws_.s_flags.data();
      bkinds_ = ws_.branch_kinds.data();
      pop_need_ = ws_.s_pop.data();
      local_reg_ = ws_.s_local.data();
      phys_ = ws_.s_phys.data();
      target_ = ws_.s_target.data();
      operand_ = ws_.s_operand.data();
      exec_cost_ = ws_.s_exec.data();
    }

    node_exec_busy_.assign(static_cast<std::size_t>(max_phys_ + 1), 0);
    // Keep the per-physical-node pending lists (and their capacity)
    // across runs; only the entries this method can touch need clearing.
    if (pending_fire_.size() < node_exec_busy_.size()) {
      pending_fire_.resize(node_exec_busy_.size());
    }
    for (std::size_t i = 0; i < node_exec_busy_.size(); ++i) {
      pending_fire_[i].clear();
    }
    nodes_.resize(nn);
    for (std::size_t i = 0; i < nn; ++i) nodes_[i].reset_cold();
    state_.assign(nn, 0);
    pops_.assign(nn, 0);
    epoch_.assign(nn, 0);
    fwd_.resize(nn);
    for (std::size_t i = 0; i < nn; ++i) {
      fwd_[i] = static_cast<std::int32_t>(i) + 1;
    }
    if (mx() != nullptr) {
      head_tick_.assign(nn, -1);
      tail_hold_.assign(nn, -1);
    }
    distinct_.assign(nn, 0);
    if (fr() != nullptr) node_ready_edge_.assign(nn, -1);

    if constexpr (kCal) {
      init_calendar();
    } else {
      init_heap();
    }
    inject_bundle();
    if constexpr (kCal) {
      run_calendar(metrics);
    } else {
      run_heap(metrics);
    }

    flush_exec_accounting();
    metrics.completed = completed_;
    metrics.exception = exception_raised_;
    metrics.ticks = completed_ ? end_tick_ : now_;
    metrics.mesh_cycles =
        std::max<std::int64_t>(1, (metrics.ticks + k_ - 1) / k_);
    metrics.instructions_fired = fired_count_;
    metrics.distinct_fired = static_cast<std::int32_t>(
        std::count(distinct_.begin(), distinct_.end(), 1));
    metrics.mesh_messages = mesh_messages_;
    metrics.serial_messages = serial_messages_;
    metrics.ticks_exec_1plus = acc_1plus_;
    metrics.ticks_exec_2plus = acc_2plus_;
    if (mx() != nullptr) ++mx()->runs;
    return metrics;
  }

 private:
  // Telemetry access, compiled out entirely when !kInstr (the pointers
  // fold to null constants and every guarded site dead-code-eliminates).
  obs::MetricsRegistry* mx() const { return kInstr ? mx_ : nullptr; }
  obs::EventTracer* tr() const { return kInstr ? tr_ : nullptr; }
  obs::FlightRecorder* fr() const { return kInstr ? fr_ : nullptr; }
  bool trace_on() const { return kInstr && trace_; }

  bool flag(std::size_t u, std::uint8_t f) const {
    return (nflags_[u] & f) != 0;
  }

  // Legacy-path lowering of one node into the workspace static lanes —
  // exactly what ExecPlanBuilder precomputes once per (method, config).
  void prepare_node(std::size_t i) {
    const Instruction& inst = m_.code[i];
    const Group g = inst.group();
    ws_.s_group[i] = static_cast<std::uint8_t>(g);
    ws_.s_op[i] = static_cast<std::uint8_t>(inst.op);
    const bool sw = is_switch(inst.op);
    const bool is_goto = inst.op == Op::goto_ || inst.op == Op::goto_w;
    std::uint8_t f = 0;
    if (g == Group::ControlFlow || g == Group::Return || sw) {
      f |= kPlanBuffers;
    }
    if (g == Group::MemRead || g == Group::MemWrite) f |= kPlanOrdered;
    if (is_goto) f |= kPlanGoto;
    if (is_goto && inst.target < static_cast<std::int32_t>(i)) {
      f |= kPlanBackwardGoto;
    }
    if (sw) f |= kPlanSwitch;
    ws_.s_flags[i] = f;
    ws_.s_pop[i] = inst.pop;
    ws_.s_local[i] = bytecode::local_register(inst);
    ws_.s_phys[i] = phys_of_slot(placement_.slot_of[i]);
    ws_.s_target[i] = inst.target;
    ws_.s_operand[i] = inst.operand;
    ws_.s_exec[i] = static_cast<std::int32_t>(
        k_ * bytecode::execution_mesh_cycles(g));
  }

  // Iteration reset (loop replay): clears the hot lanes and the cold
  // routing state, and bumps the epoch so in-flight mesh operands from
  // the previous trip are discarded on arrival.
  void reset_node(std::int32_t i) {
    const auto u = static_cast<std::size_t>(i);
    state_[u] = 0;
    pops_[u] = 0;
    ++epoch_[u];
    fwd_[u] = i + 1;
    if (mx() != nullptr) {
      head_tick_[u] = -1;
      tail_hold_[u] = -1;
    }
    nodes_[u].reset_cold();
  }

  // ---- schedulers ----
  //
  // Both hand events out in ascending (tick, seq): the binary heap by
  // comparator, the calendar queue by construction — every bucket in the
  // active window holds exactly one tick with events appended in seq
  // order (overflow spill migrates into the window before any same-tick
  // event can be scheduled directly, and seq grows monotonically with
  // scheduling time). docs/PERF.md sketches the full argument;
  // tests/test_scheduler.cpp asserts bit-identical output.

  void init_heap() {
    heap_.clear();
    // Amortize event-queue growth: outstanding events scale with the
    // token bundle plus in-flight mesh traffic, both O(method size).
    // Monotonic over the workspace lifetime — once a previous run grew
    // the buffer this is a no-op, not a fresh reserve.
    const std::size_t want = std::max<std::size_t>(64, 4 * m_.code.size());
    if (heap_.capacity() < want) heap_.reserve(want);
  }

  void init_calendar() {
    // Size the ring from the largest bounded delay the model can emit:
    // serial chain traversal (+ bundle spacing), a corner-to-corner mesh
    // route, the costliest execution group, and the slowest ring
    // service. Delays beyond the ring (rare: long forward jumps on big
    // methods once the ring is capped) spill to the overflow heap, so
    // the bound is a performance knob, never a correctness one.
    const std::int64_t chain = max_phys_ + 1;
    const std::int64_t width = std::max(cfg_.width, 1);
    const std::int64_t rows = (chain + width - 1) / width;
    std::int64_t h = hop_ * (chain + 1) + m_.max_locals + 3;
    h = std::max(h, k_ * (width + rows));
    h = std::max(h, k_ * kMaxExecMeshCycles);
    const net::RingLatencies& rl = cfg_.ring;
    h = std::max(h, k_ * std::max({rl.memory_read, rl.memory_write,
                                   rl.constant_read, rl.gpp_service}));
    const std::int64_t cap = std::min<std::int64_t>(h + 1, kMaxBuckets);
    std::int64_t b = 64;  // >= one full occupancy word
    while (b < cap) b <<= 1;
    bucket_count_ = b;
    bucket_mask_ = b - 1;
    if (buckets_.size() < static_cast<std::size_t>(b)) {
      buckets_.resize(static_cast<std::size_t>(b));
    }
    const std::size_t nwords = buckets_.size() >> 6;
    if (cal_words_.size() < nwords) cal_words_.resize(nwords, 0);
    // A completed run can leave undrained events behind, but only in
    // buckets whose occupancy bit is still set — clear exactly those
    // instead of sweeping the whole ring.
    for (std::size_t w = 0; w < cal_words_.size(); ++w) {
      std::uint64_t bits = cal_words_[w];
      while (bits != 0) {
        const int bit = std::countr_zero(bits);
        bits &= bits - 1;
        buckets_[(w << 6) | static_cast<std::size_t>(bit)].clear();
      }
      cal_words_[w] = 0;
    }
    overflow_.clear();
    cal_cur_ = 0;
    live_events_ = 0;
  }

  [[gnu::always_inline]] inline void bucket_insert(const Event& ev) {
    const auto bi = static_cast<std::size_t>(ev.tick & bucket_mask_);
    buckets_[bi].push_back(ev);
    cal_words_[bi >> 6] |= std::uint64_t{1} << (bi & 63);
  }

  // Slow enqueue paths, kept out of line so the hot path below stays
  // small enough to inline into every schedule site.
  [[gnu::noinline]] void enqueue_overflow(const Event& ev) {
    overflow_.push_back(ev);
    std::push_heap(overflow_.begin(), overflow_.end(), EventAfter{});
  }
  [[gnu::noinline]] void enqueue_heap(const Event& ev) {
    heap_.push_back(ev);
    std::push_heap(heap_.begin(), heap_.end(), EventAfter{});
  }

  // Every schedule site names the delay category its event represents;
  // with the recorder attached, one dependency edge is captured per
  // event. `parent` -2 means "the event being dispatched right now"
  // (cur_edge_); hold-release sites pass an explicit splice edge
  // instead. Without a recorder the extra arguments are dead and the
  // hook is the usual single null check. Force-inlined: the Event is
  // 32 bytes, so an out-of-line call would shuttle it through the
  // stack twice per event — measurably the hottest cost in the sweep.
  [[gnu::always_inline]] inline void schedule(
      Event ev, obs::PathCategory cat,
      std::int32_t parent = kParentCurrent, std::int32_t from_phys = -1,
      std::int32_t to_phys = -1, std::uint8_t opcode = 0) {
    ev.seq = seq_++;
    if (fr() != nullptr) {
      fr()->record_event(
          ev.seq,
          {now_, ev.tick, parent == kParentCurrent ? cur_edge_ : parent,
           ev.node, from_phys, to_phys, cat, opcode});
    }
    if constexpr (kCal) {
      ++live_events_;
      if (ev.tick < cal_cur_ + bucket_count_) [[likely]] {
        bucket_insert(ev);
      } else {
        enqueue_overflow(ev);
      }
    } else {
      enqueue_heap(ev);
    }
  }

  // Pull every spilled event whose tick entered the active window into
  // its bucket. Called before any draining/scheduling at the current
  // tick, so spilled events always precede later direct insertions and
  // buckets stay seq-sorted.
  void migrate_overflow() {
    while (!overflow_.empty() &&
           overflow_.front().tick < cal_cur_ + bucket_count_) {
      std::pop_heap(overflow_.begin(), overflow_.end(), EventAfter{});
      const Event ev = overflow_.back();
      overflow_.pop_back();
      bucket_insert(ev);
    }
  }

  // Tick of the next non-empty bucket strictly after cal_cur_, found by
  // a word-parallel circular scan of the occupancy bitmap (the window
  // holds at most one tick per bucket, so a set bit maps to exactly one
  // pending tick). INT64_MAX when every bucket is empty.
  std::int64_t next_bucket_tick() const {
    const auto mask = static_cast<std::uint64_t>(bucket_mask_);
    const std::uint64_t start =
        (static_cast<std::uint64_t>(cal_cur_) + 1) & mask;
    const auto nwords = static_cast<std::size_t>(bucket_count_ >> 6);
    const auto w0 = static_cast<std::size_t>(start >> 6);
    std::uint64_t bits = cal_words_[w0] & (~std::uint64_t{0} << (start & 63));
    if (bits != 0) {
      const std::uint64_t j =
          (static_cast<std::uint64_t>(w0) << 6) +
          static_cast<std::uint64_t>(std::countr_zero(bits));
      return cal_cur_ + 1 + static_cast<std::int64_t>((j - start) & mask);
    }
    for (std::size_t s = 1; s <= nwords; ++s) {
      const std::size_t w = (w0 + s) % nwords;
      bits = cal_words_[w];
      if (w == w0) {
        const std::uint64_t low = start & 63;
        bits &= low != 0 ? (std::uint64_t{1} << low) - 1 : std::uint64_t{0};
      }
      if (bits != 0) {
        const std::uint64_t j =
            (static_cast<std::uint64_t>(w) << 6) +
            static_cast<std::uint64_t>(std::countr_zero(bits));
        return cal_cur_ + 1 + static_cast<std::int64_t>((j - start) & mask);
      }
    }
    return std::numeric_limits<std::int64_t>::max();
  }

  void run_heap(RunMetrics& metrics) {
    while (!heap_.empty() && !completed_) {
      std::pop_heap(heap_.begin(), heap_.end(), EventAfter{});
      const Event ev = heap_.back();
      heap_.pop_back();
      now_ = ev.tick;
      if (trace_on()) trace_event(ev);
      if (now_ > opt_.max_ticks) {
        metrics.timed_out = true;
        break;
      }
      if (fr() != nullptr) cur_edge_ = fr()->edge_of_seq(ev.seq);
      dispatch(ev);
    }
  }

  void run_calendar(RunMetrics& metrics) {
    while (live_events_ > 0 && !completed_) {
      migrate_overflow();
      auto bix = static_cast<std::size_t>(cal_cur_ & bucket_mask_);
      std::vector<Event>* bucket = &buckets_[bix];
      while (bucket->empty()) {
        // Jump straight to the next pending tick: the earlier of the
        // next occupied bucket (bitmap scan) and the overflow front —
        // never walk empty buckets one at a time.
        std::int64_t next = next_bucket_tick();
        if (!overflow_.empty() && overflow_.front().tick < next) {
          next = overflow_.front().tick;
        }
        cal_cur_ = next;
        migrate_overflow();
        bix = static_cast<std::size_t>(cal_cur_ & bucket_mask_);
        bucket = &buckets_[bix];
      }
      now_ = cal_cur_;
      if (now_ > opt_.max_ticks) {
        // Match the heap's abort trace: it pops (and prints) exactly the
        // first over-budget event before giving up.
        if (trace_on()) trace_event(bucket->front());
        metrics.timed_out = true;
        break;
      }
      // Batch-drain the whole tick: now_ is set once, and the index scan
      // tolerates the bucket growing underneath us (zero-delay serial
      // forwards in the collapsed Baseline land on the current tick,
      // always with a larger seq — i.e. behind the scan point).
      std::size_t i = 0;
      for (; i < bucket->size() && !completed_; ++i) {
        const Event ev = (*bucket)[i];
        if (trace_on()) trace_event(ev);
        if (fr() != nullptr) cur_edge_ = fr()->edge_of_seq(ev.seq);
        dispatch(ev);
      }
      live_events_ -= static_cast<std::int64_t>(i);
      bucket->clear();
      cal_words_[bix >> 6] &= ~(std::uint64_t{1} << (bix & 63));
      ++cal_cur_;
    }
  }

  void dispatch(const Event& ev) {
    switch (ev.kind()) {
      case EvKind::Serial:
        on_serial(ev.node, Token{ev.cmd, ev.aux});
        break;
      case EvKind::Mesh:
        on_mesh(ev.node, ev.side(), ev.aux, ev.prod);
        break;
      case EvKind::ExecDone: on_exec_done(ev.node); break;
      case EvKind::ServiceDone: on_service_done(ev.node); break;
    }
  }

  void trace_event(const Event& ev) {
    const char* kind = ev.kind() == EvKind::Serial ? "serial"
                       : ev.kind() == EvKind::Mesh ? "mesh"
                       : ev.kind() == EvKind::ExecDone ? "exec" : "svc";
    std::fprintf(stderr, "t=%lld %s node=%d", (long long)ev.tick, kind,
                 ev.node);
    if (ev.kind() == EvKind::Serial) {
      std::fprintf(stderr, " cmd=%s reg=%d",
                   std::string(net::command_name(ev.cmd)).c_str(), ev.aux);
    }
    if (ev.kind() == EvKind::Mesh) {
      std::fprintf(stderr, " side=%d epoch=%d", ev.side(), ev.aux);
    }
    std::fprintf(stderr, "\n");
  }

  // ---- scheduling helpers ----
  std::int64_t serial_delay(std::int32_t from_node, std::int32_t to_node) {
    const std::int32_t a =
        from_node < 0 ? -1 : phys_[static_cast<std::size_t>(from_node)];
    const std::int32_t b = phys_[static_cast<std::size_t>(to_node)];
    const std::int64_t hops = a < 0 ? b + 1 : (a < b ? b - a : a - b);
    return hop_ * std::max<std::int64_t>(hops, 1);
  }

  void send_serial(std::int32_t from_node, std::int32_t to_node,
                   Token tok, std::int64_t extra = 0,
                   std::int32_t parent_edge = kParentCurrent) {
    if (to_node < 0 ||
        static_cast<std::size_t>(to_node) >= nodes_.size()) {
      return;  // token falls off the chain (e.g. past the bottom)
    }
    ++serial_messages_;
    const std::int64_t delay = serial_delay(from_node, to_node);
    if (mx() != nullptr) {
      ++mx()->serial_messages;
      mx()->serial_hop_ticks += static_cast<std::uint64_t>(delay);
      ++mx()->serial_commands[static_cast<std::size_t>(tok.cmd)];
    }
    Event ev;
    ev.set(EvKind::Serial);
    ev.node = to_node;
    ev.cmd = tok.cmd;
    ev.aux = tok.reg;
    ev.tick = now_ + delay + extra;
    schedule(ev, obs::PathCategory::SerialTransit, parent_edge);
  }

  void send_mesh(std::int32_t producer) {
    const auto u = static_cast<std::size_t>(producer);
    const std::int32_t from_phys = phys_[u];
    if (plan_ != nullptr) {
      // Plan fast path: CSR edges with delivery already in ticks; route
      // links replay from the arena in the exact X-Y walk order.
      const std::int32_t* eb = plan_->edge_begin();
      const PlanEdge* e = plan_->edges() + eb[u];
      const PlanEdge* const end = plan_->edges() + eb[u + 1];
      for (; e != end; ++e) {
        ++mesh_messages_;
        if (mx() != nullptr) record_mesh_metrics_plan(*e);
        Event ev;
        ev.set(EvKind::Mesh, e->side);
        ev.node = e->consumer;
        ev.prod = producer;
        ev.aux = epoch_[static_cast<std::size_t>(e->consumer)];
        ev.tick = now_ + e->delivery_ticks;
        schedule(ev, obs::PathCategory::MeshTransit, kParentCurrent,
                 from_phys, e->to_phys);
      }
      return;
    }
    for (const Edge& e : graph_->consumers_of[u]) {
      if (e.back) continue;  // absent in valid Java (Table 7)
      ++mesh_messages_;
      const std::int32_t to_phys =
          phys_[static_cast<std::size_t>(e.consumer)];
      const std::int64_t cycles = fabric_->mesh_cycles(from_phys, to_phys);
      if (mx() != nullptr) record_mesh_metrics(from_phys, to_phys, cycles);
      Event ev;
      ev.set(EvKind::Mesh, e.side);
      ev.node = e.consumer;
      ev.prod = producer;
      ev.aux = epoch_[static_cast<std::size_t>(e.consumer)];
      ev.tick = now_ + k_ * cycles;
      schedule(ev, obs::PathCategory::MeshTransit, kParentCurrent,
               from_phys, to_phys);
    }
  }

  // ---- flight recorder (critical-path attribution) ----
  //
  // A token that sat held at a node between delivery and release gets a
  // synthetic hold edge spliced in: [arrival end, now]. The release's
  // transit edge then parents on the hold edge, so attribute() walks
  // release -> hold -> arrival with no tick gap — waiting time becomes
  // its own category instead of disappearing into the next hop. Callers
  // invoke this only with the recorder attached.
  std::int32_t hold_edge(std::int32_t node, std::int32_t arrival_edge,
                         obs::PathCategory cat) {
    if (arrival_edge < 0) return cur_edge_;  // defensive: unknown arrival
    const std::int64_t arrived =
        fr()->edges()[static_cast<std::size_t>(arrival_edge)].to_tick;
    return fr()->record(
        {arrived, now_, arrival_edge, node, -1, -1, cat, 0});
  }


  // ---- telemetry (every site is a single null check when disabled) ----
  void record_mesh_metrics(std::int32_t from_phys, std::int32_t to_phys,
                           std::int64_t cycles) {
    ++mx()->mesh_messages;
    mx()->mesh_transit_cycles += static_cast<std::uint64_t>(cycles);
    fabric_->mesh().for_each_route_link(
        from_phys, to_phys,
        [&](std::int32_t src, std::int32_t dx, std::int32_t dy) {
          const obs::LinkDir dir = dx > 0   ? obs::LinkDir::East
                                   : dx < 0 ? obs::LinkDir::West
                                   : dy > 0 ? obs::LinkDir::North
                                            : obs::LinkDir::South;
          mx()->mesh_link(src, dir);
        });
  }

  void record_mesh_metrics_plan(const PlanEdge& e) {
    ++mx()->mesh_messages;
    mx()->mesh_transit_cycles += static_cast<std::uint64_t>(e.mesh_cycles);
    const PlanRouteLink* link = plan_->route_links() + e.route_begin;
    for (std::int32_t i = 0; i < e.route_count; ++i, ++link) {
      mx()->mesh_link(link->src_phys, static_cast<obs::LinkDir>(link->dir));
    }
  }

  // Called after every buffered.push_back: keeps the high-water mark
  // and (recorder attached) the parallel arrival-edge list in sync.
  void note_buffered(std::int32_t node, NodeRt& n) {
    if (fr() != nullptr) n.buffered_edges.push_back(cur_edge_);
    if (mx() != nullptr) {
      mx()->buffer_high_water(phys_[static_cast<std::size_t>(node)],
                              n.buffered.size());
    }
  }

  void record_service(std::int32_t node, net::RingService svc,
                      std::int64_t ticks) {
    if (mx() != nullptr) {
      ++mx()->ring_requests[static_cast<std::size_t>(svc)];
      mx()->ring_latency_ticks[static_cast<std::size_t>(svc)].record(ticks);
    }
    if (tr() != nullptr) {
      tr()->record({now_, obs::TraceEventKind::ServiceStart, node,
                    phys_[static_cast<std::size_t>(node)],
                    static_cast<std::uint8_t>(svc), ticks});
    }
  }

  // ---- execution-overlap accounting (Table 26) ----
  void exec_delta(int delta) {
    if (active_exec_ >= 1) acc_1plus_ += now_ - last_exec_change_;
    if (active_exec_ >= 2) acc_2plus_ += now_ - last_exec_change_;
    last_exec_change_ = now_;
    active_exec_ += delta;
  }
  void flush_exec_accounting() {
    if (active_exec_ >= 1) acc_1plus_ += now_ - last_exec_change_;
    if (active_exec_ >= 2) acc_2plus_ += now_ - last_exec_change_;
    last_exec_change_ = now_;
  }

  // ---- token bundle ----
  void inject_bundle() {
    const std::int64_t spacing = hop_ == 0 ? 0 : 1;
    std::int64_t idx = 0;
    now_ = 0;
    send_serial(-1, 0, Token{Command::HeadToken, -1}, spacing * idx++);
    send_serial(-1, 0, Token{Command::MemoryToken, -1}, spacing * idx++);
    for (std::int32_t r = 0; r < m_.max_locals; ++r) {
      send_serial(-1, 0, Token{Command::RegisterToken, r}, spacing * idx++);
    }
    send_serial(-1, 0, Token{Command::TailToken, -1}, spacing * idx++);
  }

  // ---- serial handlers ----
  void forward_token(std::int32_t node, Token tok,
                     std::int32_t parent_edge = kParentCurrent) {
    send_serial(node, fwd_[static_cast<std::size_t>(node)], tok,
                /*extra=*/0, parent_edge);
  }

  void on_serial(std::int32_t node, Token tok) {
    const auto u = static_cast<std::size_t>(node);
    NodeRt& n = nodes_[u];
    if (tr() != nullptr) {
      tr()->record({now_, obs::TraceEventKind::TokenDeliver, node,
                    phys_[u], static_cast<std::uint8_t>(tok.cmd), 0});
    }
    const std::uint8_t st = state_[u];
    const bool buffers = flag(u, kPlanBuffers);
    // Control-transfer nodes hold the bundle while unfired AND while a
    // fired backward transfer awaits its TAIL — those tokens are the
    // bundle that will replay around the loop (§6.3).
    const bool hold =
        buffers && (!(st & kFired) || (st & kWaitTailFlush) != 0);

    switch (tok.cmd) {
      case Command::HeadToken:
        state_[u] |= kHeadReceived;
        if (mx() != nullptr) head_tick_[u] = now_;
        if (hold) {
          n.buffered.push_back(tok);
          note_buffered(node, n);
          try_fire(node);
        } else {
          try_fire(node);
          forward_token(node, tok);  // the HEAD runs ahead (§6.3)
        }
        return;

      case Command::MemoryToken:
        if (hold) {
          n.buffered.push_back(tok);
          note_buffered(node, n);
          return;
        }
        if (flag(u, kPlanOrdered) && !(state_[u] & kFired)) {
          n.memory_held = true;
          n.held_memory = tok;
          if (fr() != nullptr) n.held_memory_edge = cur_edge_;
          try_fire(node);
          return;
        }
        forward_token(node, tok);
        return;

      case Command::RegisterToken: {
        if (hold) {
          n.buffered.push_back(tok);
          note_buffered(node, n);
          return;
        }
        const Group g = static_cast<Group>(group_[u]);
        if ((g == Group::LocalRead || g == Group::LocalInc) &&
            local_reg_[u] == tok.reg && !(state_[u] & kFired) &&
            !n.reg_held) {
          n.reg_held = true;
          n.held_reg = tok;
          if (fr() != nullptr) n.held_reg_edge = cur_edge_;
          try_fire(node);
          return;
        }
        if (g == Group::LocalWrite && local_reg_[u] == tok.reg) {
          if (!(state_[u] & kFired)) {
            n.write_absorbed = true;  // the write kills the old value
          } else if (n.kill_next_register) {
            n.kill_next_register = false;  // stale token after firing
          } else {
            forward_token(node, tok);
          }
          return;
        }
        forward_token(node, tok);
        return;
      }

      case Command::TailToken:
        if (buffers) {
          if (!(state_[u] & kFired)) {
            n.buffered.push_back(tok);
            note_buffered(node, n);
            n.tail_present = true;
            try_fire(node);  // returns / backward gotos need the TAIL
            return;
          }
          if (state_[u] & kWaitTailFlush) {
            n.buffered.push_back(tok);
            note_buffered(node, n);
            flush_up(node);
            return;
          }
          forward_token(node, tok);
          return;
        }
        if (state_[u] & kFired) {
          forward_token(node, tok);
        } else {
          n.tail_held = true;  // held until this node fires (§6.3)
          n.held_tail = tok;
          if (fr() != nullptr) n.held_tail_edge = cur_edge_;
          if (mx() != nullptr) tail_hold_[u] = now_;
        }
        return;

      default:
        forward_token(node, tok);
        return;
    }
  }

  void on_mesh(std::int32_t node, std::uint8_t side, std::int32_t epoch,
               std::int32_t producer) {
    const auto u = static_cast<std::size_t>(node);
    if (epoch_[u] != epoch) return;  // stale (previous iteration)
    if (tr() != nullptr) {
      // `dur` carries the producing node so the Chrome exporter can draw
      // producer->consumer flow arrows (docs/OBSERVABILITY.md).
      tr()->record({now_, obs::TraceEventKind::OperandArrive, node,
                    phys_[u], side, producer});
    }
    ++pops_[u];
    try_fire(node);
  }

  // ---- firing ----
  bool fire_ready(std::int32_t node) const {
    const auto u = static_cast<std::size_t>(node);
    // Exactly "HEAD received and nothing else": fired / executing /
    // in-service all block, so one byte compare covers five flags.
    if (state_[u] != kHeadReceived) return false;
    const NodeRt& n = nodes_[u];
    switch (static_cast<Group>(group_[u])) {
      case Group::LocalRead:
      case Group::LocalInc:
        return n.reg_held;
      case Group::MemRead:
      case Group::MemWrite:
        return pops_[u] >= pop_need_[u] && n.memory_held;
      case Group::Return:
        return pops_[u] >= pop_need_[u] && n.tail_present;
      case Group::ControlFlow:
        if (flag(u, kPlanBackwardGoto)) {
          return n.tail_present;  // backward GoTo fires on TAIL (§6.3)
        }
        return pops_[u] >= pop_need_[u];
      default:
        return pops_[u] >= pop_need_[u];
    }
  }

  void try_fire(std::int32_t node) {
    if (!fire_ready(node)) return;
    const auto u = static_cast<std::size_t>(node);
    // One Instruction Execution Unit per physical node: with several
    // IDUs packed into a node (§4.2), firings within a node serialize.
    const auto pn = static_cast<std::size_t>(phys_[u]);
    if (idus_ > 1 && node_exec_busy_[pn]) {
      // Remember what made the node ready: the gap until it actually
      // fires is FireStall time on the critical path.
      if (fr() != nullptr && node_ready_edge_[u] < 0) {
        node_ready_edge_[u] = cur_edge_;
      }
      pending_fire_[pn].push_back(node);
      return;
    }
    node_exec_busy_[pn] = true;
    state_[u] |= kExecuting;
    exec_delta(+1);
    const std::int64_t cost = exec_cost_[u];
    if (mx() != nullptr) {
      mx()->node_firing(static_cast<std::int32_t>(pn), op_[u]);
      mx()->exec_ticks_by_group[group_[u]].record(cost);
      if (head_tick_[u] >= 0) {
        mx()->fire_stall_ticks.record(now_ - head_tick_[u]);
      }
    }
    if (tr() != nullptr) {
      tr()->record({now_, obs::TraceEventKind::FireStart, node,
                    static_cast<std::int32_t>(pn), group_[u], cost});
    }
    std::int32_t parent = kParentCurrent;
    if (fr() != nullptr && node_ready_edge_[u] >= 0) {
      parent =
          hold_edge(node, node_ready_edge_[u], obs::PathCategory::FireStall);
      node_ready_edge_[u] = -1;
    }
    Event ev;
    ev.set(EvKind::ExecDone);
    ev.node = node;
    ev.tick = now_ + cost;
    schedule(ev, obs::PathCategory::Execution, parent, -1, -1, op_[u]);
  }

  void release_execution_unit(std::int32_t node) {
    const auto pn =
        static_cast<std::size_t>(phys_[static_cast<std::size_t>(node)]);
    node_exec_busy_[pn] = false;
    if (idus_ <= 1) return;
    auto& pending = pending_fire_[pn];
    while (!pending.empty()) {
      const std::int32_t next = pending.front();
      pending.erase(pending.begin());
      try_fire(next);
      if (node_exec_busy_[pn]) break;  // someone grabbed the unit
    }
  }

  void mark_fired(std::int32_t node) {
    const auto u = static_cast<std::size_t>(node);
    state_[u] |= kFired;
    ++fired_count_;
    distinct_[u] = true;
  }

  // Releases everything a non-control node owes downstream after firing.
  void post_fire_releases(std::int32_t node) {
    const auto u = static_cast<std::size_t>(node);
    NodeRt& n = nodes_[u];
    const Group g = static_cast<Group>(group_[u]);
    if (g == Group::LocalRead || g == Group::LocalInc) {
      if (n.reg_held) {
        n.reg_held = false;
        forward_token(node, n.held_reg,  // register value flows on
                      fr() != nullptr
                          ? hold_edge(node, n.held_reg_edge,
                                      obs::PathCategory::OperandWait)
                          : kParentCurrent);
      }
    }
    if (g == Group::LocalWrite) {
      forward_token(node, Token{Command::RegisterToken, local_reg_[u]});
      if (!n.write_absorbed) n.kill_next_register = true;
    }
    if (n.memory_held) {
      n.memory_held = false;
      forward_token(node, n.held_memory,  // memory order established
                    fr() != nullptr
                        ? hold_edge(node, n.held_memory_edge,
                                    obs::PathCategory::OperandWait)
                        : kParentCurrent);
    }
    if (n.tail_held) {
      n.tail_held = false;
      if (mx() != nullptr && tail_hold_[u] >= 0) {
        mx()->tail_hold_ticks.record(now_ - tail_hold_[u]);
        tail_hold_[u] = -1;
      }
      forward_token(node, n.held_tail,
                    fr() != nullptr
                        ? hold_edge(node, n.held_tail_edge,
                                    obs::PathCategory::TailHold)
                        : kParentCurrent);
    }
  }

  void on_exec_done(std::int32_t node) {
    const auto u = static_cast<std::size_t>(node);
    NodeRt& n = nodes_[u];
    state_[u] &= static_cast<std::uint8_t>(~kExecuting);
    exec_delta(-1);
    release_execution_unit(node);
    const Group g = static_cast<Group>(group_[u]);
    if (tr() != nullptr) {
      tr()->record({now_, obs::TraceEventKind::FireComplete, node,
                    phys_[u], static_cast<std::uint8_t>(g), 0});
    }

    if (node == opt_.inject_exception_at &&
        ++exception_fire_count_ >= opt_.inject_exception_fire &&
        !exception_raised_) {
      // §6.3 Exceptions: the node halts, an EXCEPTION_TOKEN reaches the
      // GPP over the ring, and the GPP terminates the method.
      exception_raised_ = true;
      const std::int64_t svc_ticks = k_ * cfg_.ring.gpp_service;
      if (mx() != nullptr || tr() != nullptr) {
        record_service(node, net::RingService::GppService, svc_ticks);
      }
      completed_ = true;
      end_tick_ = now_ + svc_ticks;
      // The exception retirement is the run's terminal edge: the GPP
      // round trip [now_, end_tick_] caps the realized critical path.
      if (fr() != nullptr) {
        fr()->set_terminal(fr()->record({now_, end_tick_, cur_edge_, node,
                                         -1, -1,
                                         obs::PathCategory::RingService,
                                         0}));
      }
      return;
    }

    const bool sw = flag(u, kPlanSwitch);
    if (g == Group::ControlFlow || sw) {
      resolve_control(node);
      return;
    }
    if (g == Group::Return) {
      mark_fired(node);
      completed_ = true;
      end_tick_ = now_;
      // The Return's own execution completion is the terminal edge.
      if (fr() != nullptr) fr()->set_terminal(cur_edge_);
      return;
    }
    if (g == Group::Call || g == Group::Special) {
      state_[u] |= kInService;
      const std::int64_t svc_ticks = k_ * cfg_.ring.gpp_service;
      if (mx() != nullptr || tr() != nullptr) {
        record_service(node, net::RingService::GppService, svc_ticks);
      }
      Event ev;
      ev.set(EvKind::ServiceDone);
      ev.node = node;
      ev.tick = now_ + svc_ticks;
      schedule(ev, obs::PathCategory::RingService);
      return;
    }
    if (g == Group::MemRead) {
      state_[u] |= kInService;
      if (n.memory_held) {
        n.memory_held = false;
        forward_token(node, n.held_memory,
                      fr() != nullptr
                          ? hold_edge(node, n.held_memory_edge,
                                      obs::PathCategory::OperandWait)
                          : kParentCurrent);
      }
      const std::int64_t svc_ticks = k_ * cfg_.ring.memory_read;
      if (mx() != nullptr || tr() != nullptr) {
        record_service(node, net::RingService::MemoryRead, svc_ticks);
      }
      Event ev;
      ev.set(EvKind::ServiceDone);
      ev.node = node;
      ev.tick = now_ + svc_ticks;
      schedule(ev, obs::PathCategory::RingService);
      return;
    }
    if (g == Group::MemWrite) {
      // Posted write: the node is fired once the request is dispatched.
      if (mx() != nullptr || tr() != nullptr) {
        record_service(node, net::RingService::MemoryWrite,
                       k_ * cfg_.ring.memory_write);
      }
      mark_fired(node);
      post_fire_releases(node);
      return;
    }
    // Arithmetic / moves / locals / constants: produce and release.
    mark_fired(node);
    send_mesh(node);
    post_fire_releases(node);
  }

  void on_service_done(std::int32_t node) {
    const auto u = static_cast<std::size_t>(node);
    state_[u] &= static_cast<std::uint8_t>(~kInService);
    if (tr() != nullptr) {
      const net::RingService svc =
          static_cast<Group>(group_[u]) == Group::MemRead
              ? net::RingService::MemoryRead
              : net::RingService::GppService;
      tr()->record({now_, obs::TraceEventKind::ServiceComplete, node,
                    phys_[u], static_cast<std::uint8_t>(svc), 0});
    }
    mark_fired(node);
    send_mesh(node);  // read data / call result to consumers
    post_fire_releases(node);
  }

  // Control-transfer decision and token routing (§6.3).
  void resolve_control(std::int32_t node) {
    const auto u = static_cast<std::size_t>(node);
    NodeRt& n = nodes_[u];
    std::int32_t target;
    if (flag(u, kPlanGoto)) {
      target = target_[u];
    } else if (flag(u, kPlanSwitch)) {
      const bytecode::SwitchTable& table =
          m_.switches[static_cast<std::size_t>(operand_[u])];
      const auto arms =
          static_cast<std::int32_t>(table.targets.size()) + 1;
      const std::int32_t pick = predictor_.decide_switch(node, arms);
      target = pick < static_cast<std::int32_t>(table.targets.size())
                   ? table.targets[static_cast<std::size_t>(pick)]
                   : table.default_target;
    } else {
      const auto kind = static_cast<BranchKind>(bkinds_[u]);
      const bool taken = predictor_.decide(node, kind);
      target = taken ? target_[u] : node + 1;
    }

    mark_fired(node);
    if (target > node) {
      // Forward transfer: flush the buffer toward the target; later
      // tokens follow the same route until the iteration resets.
      fwd_[u] = target;
      std::int64_t idx = 0;
      for (std::size_t bi = 0; bi < n.buffered.size(); ++bi) {
        const Token& tok = n.buffered[bi];
        std::int32_t parent = kParentCurrent;
        if (fr() != nullptr) {
          // Buffered tokens waited from arrival to the branch decision:
          // TAIL hold for the TAIL, operand wait for the rest.
          parent = hold_edge(node,
                             bi < n.buffered_edges.size()
                                 ? n.buffered_edges[bi]
                                 : -1,
                             tok.cmd == Command::TailToken
                                 ? obs::PathCategory::TailHold
                                 : obs::PathCategory::OperandWait);
        }
        send_serial(node, target, tok, hop_ == 0 ? 0 : idx++, parent);
      }
      n.buffered.clear();
      n.buffered_edges.clear();
      return;
    }
    // Backward transfer: hold everything until the TAIL arrives (§6.3).
    state_[u] |= kWaitTailFlush;
    n.decided_target = target;
    if (n.tail_present) flush_up(node);
  }

  // Back jump with TAIL in hand: replay the bundle to the loop head via
  // the reverse network, resetting every node it passes. The bundle is
  // staged in the workspace scratch vector, so neither side of the swap
  // ever re-allocates once warmed up.
  void flush_up(std::int32_t node) {
    NodeRt& n = nodes_[static_cast<std::size_t>(node)];
    const std::int32_t target = n.decided_target;
    flush_scratch_.clear();
    flush_scratch_.swap(n.buffered);
    if (fr() != nullptr) {
      flush_edge_scratch_.clear();
      flush_edge_scratch_.swap(n.buffered_edges);
    }
    for (std::int32_t i = target; i <= node; ++i) {
      reset_node(i);
    }
    std::int64_t idx = 0;
    for (std::size_t bi = 0; bi < flush_scratch_.size(); ++bi) {
      const Token& tok = flush_scratch_[bi];
      std::int32_t parent = kParentCurrent;
      if (fr() != nullptr) {
        parent = hold_edge(node,
                           bi < flush_edge_scratch_.size()
                               ? flush_edge_scratch_[bi]
                               : -1,
                           tok.cmd == Command::TailToken
                               ? obs::PathCategory::TailHold
                               : obs::PathCategory::OperandWait);
      }
      send_serial(node, target, tok, hop_ == 0 ? 0 : idx++, parent);
    }
  }

  const Placement* external_placement_ = nullptr;
  const ExecPlan* plan_ = nullptr;
  const MachineConfig& cfg_;
  const EngineOptions& opt_;
  const Method& m_;
  const DataflowGraph* graph_;  // null on the plan path
  BranchPredictor& predictor_;
  std::optional<Fabric> fabric_;  // legacy path only
  const std::int64_t k_;
  const std::int64_t hop_;
  const std::int32_t idus_;
  const bool trace_;
  obs::MetricsRegistry* const mx_;  // null = telemetry disabled (no-op)
  obs::EventTracer* const tr_;
  obs::FlightRecorder* const fr_;   // null = no dependency-edge capture
  // Workspace-backed storage: all references point into the engine's
  // detail::EngineWorkspace and are re-initialized by execute().
  detail::EngineWorkspace& ws_;
  std::vector<char>& node_exec_busy_;
  std::vector<std::vector<std::int32_t>>& pending_fire_;

  Placement placement_;
  std::vector<NodeRt>& nodes_;
  // Struct-of-arrays hot lanes (same index space as nodes_).
  std::vector<std::uint8_t>& state_;
  std::vector<std::int32_t>& pops_;
  std::vector<std::int32_t>& epoch_;
  std::vector<std::int32_t>& fwd_;
  std::vector<std::int64_t>& head_tick_;
  std::vector<std::int64_t>& tail_hold_;
  std::vector<char>& distinct_;
  // Static per-node lanes: aliases into the ExecPlan arena (plan path)
  // or the workspace's prepare_node() lanes (legacy path). Read-only
  // for the whole run.
  const std::uint8_t* group_ = nullptr;
  const std::uint8_t* op_ = nullptr;
  const std::uint8_t* nflags_ = nullptr;
  const std::uint8_t* bkinds_ = nullptr;
  const std::int32_t* pop_need_ = nullptr;
  const std::int32_t* local_reg_ = nullptr;
  const std::int32_t* phys_ = nullptr;
  const std::int32_t* target_ = nullptr;
  const std::int32_t* operand_ = nullptr;
  const std::int32_t* exec_cost_ = nullptr;
  // Scheduler stores (heap_ for Heap; buckets_/overflow_ for Calendar).
  std::vector<Event>& heap_;
  std::vector<std::vector<Event>>& buckets_;
  std::vector<std::uint64_t>& cal_words_;
  std::vector<Event>& overflow_;
  std::vector<Token>& flush_scratch_;
  std::vector<std::int32_t>& flush_edge_scratch_;
  std::vector<std::int32_t>& node_ready_edge_;
  std::int32_t max_phys_ = -1;
  std::int64_t bucket_count_ = 0;
  std::int64_t bucket_mask_ = 0;
  std::int64_t cal_cur_ = 0;     // calendar's current tick cursor
  std::int64_t live_events_ = 0; // undrained events (buckets + overflow)
  std::int64_t seq_ = 0;
  std::int64_t now_ = 0;
  // Edge id of the event currently being dispatched (flight recorder
  // only) — the default parent for everything the handler schedules.
  std::int32_t cur_edge_ = -1;
  bool completed_ = false;
  bool exception_raised_ = false;
  std::int32_t exception_fire_count_ = 0;
  std::int64_t end_tick_ = 0;
  std::int64_t fired_count_ = 0;
  std::int64_t mesh_messages_ = 0;
  std::int64_t serial_messages_ = 0;
  int active_exec_ = 0;
  std::int64_t last_exec_change_ = 0;
  std::int64_t acc_1plus_ = 0;
  std::int64_t acc_2plus_ = 0;
};

// Refreshes the workspace's branch-classification cache for `m`. The
// classification depends only on the bytecode, so back-to-back runs of
// the same method (the sweep's config × scenario inner loops) reuse it.
// The plan path skips this entirely — classifications ride in the plan.
void refresh_branch_kinds(detail::EngineWorkspace& ws, const Method& m) {
  if (ws.branch_method == &m && ws.branch_code_size == m.code.size() &&
      ws.branch_name == m.name) {
    return;
  }
  ws.branch_kinds = classify_branches(m);
  ws.branch_method = &m;
  ws.branch_code_size = m.code.size();
  ws.branch_name = m.name;
}

// The workspace plan cache: rebuild only when the method key changes or
// an external placement disagrees with the cached plan's slot lane.
const ExecPlan& plan_for(detail::EngineWorkspace& ws, const Method& m,
                         const DataflowGraph& graph,
                         const Placement* placement,
                         const MachineConfig& cfg) {
  if (ws.plan_valid && ws.plan_method == &m &&
      ws.plan_code_size == m.code.size() && ws.plan_name == m.name) {
    if (placement == nullptr) {
      if (!ws.plan_external) return ws.plan;
    } else if (ws.plan.fits() == placement->fits &&
               (!placement->fits ||
                (ws.plan.max_slot() == placement->max_slot &&
                 std::equal(placement->slot_of.begin(),
                            placement->slot_of.end(), ws.plan.slot())))) {
      return ws.plan;
    }
  }
  ws.plan_builder.build_into(ws.plan, m, graph, placement, cfg);
  ws.plan_valid = true;
  ws.plan_external = placement != nullptr;
  ws.plan_method = &m;
  ws.plan_code_size = m.code.size();
  ws.plan_name = m.name;
  return ws.plan;
}

// Instrumentation dispatch: the sweep hot path (no telemetry attached)
// runs the Run<false, kCal> instantiation with every hook compiled out.
RunMetrics execute_run(const MachineConfig& cfg, const EngineOptions& opt,
                       const Method& m, const DataflowGraph* graph,
                       const Placement* placement, const ExecPlan* plan,
                       BranchPredictor& predictor,
                       detail::EngineWorkspace& ws) {
  const bool instrumented = opt.metrics != nullptr || opt.tracer != nullptr ||
                            opt.flight != nullptr || opt.trace;
  const bool calendar = opt.scheduler != SchedulerKind::Heap;
  if (instrumented) {
    if (calendar) {
      return Run<true, true>(cfg, opt, m, graph, predictor, placement, plan,
                             ws)
          .execute();
    }
    return Run<true, false>(cfg, opt, m, graph, predictor, placement, plan,
                            ws)
        .execute();
  }
  if (calendar) {
    return Run<false, true>(cfg, opt, m, graph, predictor, placement, plan,
                            ws)
        .execute();
  }
  return Run<false, false>(cfg, opt, m, graph, predictor, placement, plan,
                           ws)
      .execute();
}

}  // namespace

Engine::Engine(MachineConfig config, EngineOptions options)
    : config_(std::move(config)),
      options_(options),
      ws_(std::make_unique<detail::EngineWorkspace>()) {
  // Resolve Auto (env lookups) once here, never on the per-run hot path.
  options_.scheduler = resolve_scheduler(options_.scheduler);
  options_.plan = resolve_plan_mode(options_.plan);
}

Engine::Engine(Engine&&) noexcept = default;
Engine& Engine::operator=(Engine&&) noexcept = default;
Engine::~Engine() = default;

RunMetrics Engine::run(const Method& m, const DataflowGraph& graph,
                       BranchPredictor& predictor) {
  if (options_.plan == PlanMode::On) {
    const ExecPlan& plan = plan_for(*ws_, m, graph, nullptr, config_);
    return execute_run(config_, options_, m, nullptr, nullptr, &plan,
                       predictor, *ws_);
  }
  refresh_branch_kinds(*ws_, m);
  return execute_run(config_, options_, m, &graph, nullptr, nullptr,
                     predictor, *ws_);
}

RunMetrics Engine::run(const Method& m, const DataflowGraph& graph,
                       const fabric::Placement& placement,
                       BranchPredictor& predictor) {
  if (options_.plan == PlanMode::On) {
    const ExecPlan& plan = plan_for(*ws_, m, graph, &placement, config_);
    return execute_run(config_, options_, m, nullptr, nullptr, &plan,
                       predictor, *ws_);
  }
  refresh_branch_kinds(*ws_, m);
  return execute_run(config_, options_, m, &graph, &placement, nullptr,
                     predictor, *ws_);
}

RunMetrics Engine::run(const Method& m, const ExecPlan& plan,
                       BranchPredictor& predictor) {
  return execute_run(config_, options_, m, nullptr, nullptr, &plan,
                     predictor, *ws_);
}

}  // namespace javaflow::sim
