#include "sim/multi_engine.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <deque>
#include <limits>

#include "net/message.hpp"
#include "obs/event_tracer.hpp"
#include "obs/metrics.hpp"
#include "sim/engine_internal.hpp"

namespace javaflow::sim {
namespace {

using bytecode::Group;
using detail::Event;
using detail::EventAfter;
using detail::EvKind;
using detail::kExecuting;
using detail::kFired;
using detail::kHeadReceived;
using detail::kInService;
using detail::kWaitTailFlush;
using detail::NodeRt;
using detail::Token;
using net::Command;

// Fixed calendar ring: the serving workload spans arbitrary wall ticks,
// so the ring is sized once at the workspace ceiling instead of per
// method; long gaps spill to the overflow heap exactly as in the
// single-method engine.
constexpr std::int64_t kRing = detail::kMaxBuckets;

// `from_node` sentinel for send_serial: the owning residency's anchor
// (one physical hop below the residency's first row).
constexpr std::int32_t kFromAnchor = -1;

}  // namespace

// The whole multi-tenant run state. Mirrors the single engine's
// Run<kInstr, kCal=true> (sim/engine.cpp) with three structural
// changes, all driven by the Event::res lane:
//
//   * node lanes are global: residency r owns [r.base, r.base+r.count)
//     and reads its static plan lanes at (g - r.base);
//   * physical indices are rebased: phys_g = plan.phys[local] +
//     r.phys_delta, and the bundle anchor sits at phys_delta - 1 so the
//     plan-frame injection arithmetic (hops = phys + 1) is preserved
//     under any row shift;
//   * transport is occupancy-tracked: serial links, mesh links, and the
//     four ring channels remember (owner, busy_until). A token whose
//     owner already holds the resource never waits — which is exactly
//     the single-method engine's (contention-free) timing — while a
//     cross-residency token queues behind the release and the wait is
//     charged to its residency.
//
// The calendar drains one event at a time (instead of whole ticks) so
// advance() can pause at a request arrival or return mid-tick when a
// residency completes; the (tick, seq) order is identical.
struct MultiEngine::Impl {
  struct ResidentRt {
    const bytecode::Method* method = nullptr;
    const ExecPlan* plan = nullptr;
    BranchPredictor predictor{BranchPredictor::Scenario::BP1};
    obs::MetricsRegistry* mx = nullptr;
    std::string name;
    std::int32_t base = 0;   // first global node lane
    std::int32_t count = 0;  // node lanes owned
    std::int32_t phys_delta = 0;
    std::int32_t slot_delta = 0;
    std::int64_t inject_tick = 0;
    bool done = false;
    bool completed = false;
    bool timed_out = false;
    std::int64_t end_tick = 0;
    // RunMetrics accumulators, mirroring the single engine's fields.
    std::int64_t fired = 0;
    std::int64_t mesh_msgs = 0;
    std::int64_t serial_msgs = 0;
    int active_exec = 0;
    std::int64_t last_change = 0;
    std::int64_t acc1 = 0;
    std::int64_t acc2 = 0;
    // Cross-residency contention charged to this residency.
    std::int64_t serial_wait = 0;
    std::int64_t mesh_wait = 0;
    std::int64_t ring_wait = 0;
  };

  struct Occupancy {
    std::int32_t owner = -1;
    std::int64_t busy_until = 0;
  };

  MachineConfig cfg;
  MultiEngineOptions opt;
  std::int64_t k = 1;
  std::int64_t hop = 1;
  std::int32_t idus = 1;
  bool collapsed = false;

  std::vector<ResidentRt> residents;
  std::vector<ResidentOutcome> outcomes;
  std::deque<ResidentId> completed_queue;
  std::size_t running = 0;

  // ---- global node lanes (index = residency base + local node) ----
  std::vector<NodeRt> nodes;
  std::vector<std::uint8_t> state;
  std::vector<std::int32_t> pops;
  std::vector<std::int32_t> epoch;
  std::vector<std::int32_t> fwd;  // global target (base-rebased)
  std::vector<std::int64_t> head_tick;
  std::vector<std::int64_t> tail_hold;
  std::vector<char> distinct;
  std::vector<std::uint16_t> res_of;
  // Global physical index per node, frozen at admission. Kept as a lane
  // (not derived from the plan) so events of an already-finished
  // residency — whose caller may have dropped the plan — never touch
  // plan memory on the drop path.
  std::vector<std::int32_t> phys_lane;

  // ---- shared fabric occupancy (index = global physical node) ----
  std::vector<char> exec_busy;
  std::vector<std::vector<std::int32_t>> pending_fire;
  // Serial chain: link_down[p] is the hop entering phys p from p-1
  // (forward network); link_up[p] the hop entering p from p+1 (reverse).
  std::vector<Occupancy> link_down;
  std::vector<Occupancy> link_up;
  // Mesh: one occupancy per (phys, obs::LinkDir), walked over the
  // plan's precomputed X-Y route spans.
  std::vector<Occupancy> mesh_link;
  // Ring: one channel per net::RingService.
  std::array<Occupancy, 4> ring{};

  // ---- calendar (persistent across advance() calls) ----
  std::vector<std::vector<Event>> buckets;
  std::vector<std::uint64_t> cal_words;
  std::vector<Event> overflow;
  std::vector<Token> flush_scratch;
  std::int64_t bucket_mask = 0;
  std::int64_t cal_cur = 0;
  std::size_t bucket_pos = 0;  // dispatched prefix of the cal_cur bucket
  std::int64_t live_events = 0;
  std::int64_t seq = 0;
  std::int64_t now = 0;

  // ---- fabric-level accounting ----
  int fab_active = 0;       // executing instructions, all residencies
  int res_exec_count = 0;   // residencies with >=1 executing instruction
  std::int64_t fab_last = 0;
  std::int64_t fab_acc1 = 0;
  std::int64_t fab_acc2 = 0;
  std::int64_t res_acc1 = 0;
  std::int64_t res_acc2 = 0;
  bool finished = false;

  explicit Impl(MachineConfig config, MultiEngineOptions options)
      : cfg(std::move(config)),
        opt(options),
        k(cfg.serial_per_mesh),
        hop(cfg.collapsed() ? 0 : 1),
        idus(std::max(cfg.idus_per_node, 1)),
        collapsed(cfg.collapsed()) {
    buckets.resize(static_cast<std::size_t>(kRing));
    cal_words.resize(static_cast<std::size_t>(kRing >> 6), 0);
    bucket_mask = kRing - 1;
  }

  obs::MetricsRegistry* fab_mx() const { return opt.metrics; }
  obs::EventTracer* tr() const { return opt.tracer; }

  // ---- residency-frame helpers ----
  std::int32_t local(const ResidentRt& r, std::int32_t g) const {
    return g - r.base;
  }
  std::int32_t phys_g(const ResidentRt& r, std::int32_t g) const {
    (void)r;
    return phys_lane[static_cast<std::size_t>(g)];
  }
  bool flag(const ResidentRt& r, std::int32_t g, std::uint8_t f) const {
    return (r.plan->flags()[local(r, g)] & f) != 0;
  }
  Group group_of(const ResidentRt& r, std::int32_t g) const {
    return static_cast<Group>(r.plan->group()[local(r, g)]);
  }

  void ensure_phys(std::int32_t max_phys_global) {
    const auto want = static_cast<std::size_t>(max_phys_global + 2);
    if (exec_busy.size() < want) {
      exec_busy.resize(want, 0);
      pending_fire.resize(want);
      link_down.resize(want);
      link_up.resize(want);
      mesh_link.resize(want * 4);
    }
  }

  // ---- admission ----
  ResidentId admit(const bytecode::Method& m, const ExecPlan& plan,
                   std::int32_t phys_delta,
                   BranchPredictor::Scenario scenario,
                   std::int64_t start_tick, obs::MetricsRegistry* rmx) {
    if (residents.size() >= static_cast<std::size_t>(kMaxResidents) ||
        !plan.fits()) {
      return -1;
    }
    const auto id = static_cast<ResidentId>(residents.size());
    ResidentRt r;
    r.method = &m;
    r.plan = &plan;
    r.predictor = BranchPredictor(scenario);
    r.mx = rmx;
    r.name = m.name;
    r.base = static_cast<std::int32_t>(nodes.size());
    r.count = plan.node_count();
    r.phys_delta = phys_delta;
    r.slot_delta = phys_delta * idus;
    r.inject_tick = std::max(start_tick, cal_cur);
    r.last_change = r.inject_tick;

    const auto nn = static_cast<std::size_t>(r.base + r.count);
    nodes.resize(nn);
    state.resize(nn, 0);
    pops.resize(nn, 0);
    epoch.resize(nn, 0);
    fwd.resize(nn);
    head_tick.resize(nn, -1);
    tail_hold.resize(nn, -1);
    distinct.resize(nn, 0);
    res_of.resize(nn, static_cast<std::uint16_t>(id));
    phys_lane.resize(nn);
    for (std::int32_t i = 0; i < r.count; ++i) {
      fwd[static_cast<std::size_t>(r.base + i)] = r.base + i + 1;
      phys_lane[static_cast<std::size_t>(r.base + i)] =
          plan.phys()[i] + phys_delta;
    }
    ensure_phys(plan.max_phys() + phys_delta);

    residents.push_back(std::move(r));
    outcomes.emplace_back();
    outcomes.back().resident = id;
    outcomes.back().name = m.name;
    outcomes.back().admitted_tick = residents.back().inject_tick;
    ++running;

    inject_bundle(residents.back(), static_cast<std::uint16_t>(id));
    return id;
  }

  void inject_bundle(ResidentRt& r, std::uint16_t res) {
    const std::int64_t spacing = hop == 0 ? 0 : 1;
    std::int64_t idx = 0;
    now = r.inject_tick;
    send_serial(r, res, kFromAnchor, Token{Command::HeadToken, -1}, r.base,
                spacing * idx++);
    send_serial(r, res, kFromAnchor, Token{Command::MemoryToken, -1}, r.base,
                spacing * idx++);
    for (std::int32_t reg = 0; reg < r.method->max_locals; ++reg) {
      send_serial(r, res, kFromAnchor, Token{Command::RegisterToken, reg},
                  r.base, spacing * idx++);
    }
    send_serial(r, res, kFromAnchor, Token{Command::TailToken, -1}, r.base,
                spacing * idx++);
  }

  // ---- calendar ----
  [[gnu::always_inline]] inline void bucket_insert(const Event& ev) {
    const auto bi = static_cast<std::size_t>(ev.tick & bucket_mask);
    buckets[bi].push_back(ev);
    cal_words[bi >> 6] |= std::uint64_t{1} << (bi & 63);
  }

  void schedule(Event ev) {
    ev.seq = seq++;
    ++live_events;
    if (ev.tick < cal_cur + kRing) [[likely]] {
      bucket_insert(ev);
    } else {
      overflow.push_back(ev);
      std::push_heap(overflow.begin(), overflow.end(), EventAfter{});
    }
  }

  void migrate_overflow() {
    while (!overflow.empty() && overflow.front().tick < cal_cur + kRing) {
      std::pop_heap(overflow.begin(), overflow.end(), EventAfter{});
      bucket_insert(overflow.back());
      overflow.pop_back();
    }
  }

  std::int64_t next_bucket_tick() const {
    const auto mask = static_cast<std::uint64_t>(bucket_mask);
    const std::uint64_t start =
        (static_cast<std::uint64_t>(cal_cur) + 1) & mask;
    const auto nwords = static_cast<std::size_t>(kRing >> 6);
    const auto w0 = static_cast<std::size_t>(start >> 6);
    std::uint64_t bits = cal_words[w0] & (~std::uint64_t{0} << (start & 63));
    if (bits != 0) {
      const std::uint64_t j =
          (static_cast<std::uint64_t>(w0) << 6) +
          static_cast<std::uint64_t>(std::countr_zero(bits));
      return cal_cur + 1 + static_cast<std::int64_t>((j - start) & mask);
    }
    for (std::size_t s = 1; s <= nwords; ++s) {
      const std::size_t w = (w0 + s) % nwords;
      bits = cal_words[w];
      if (w == w0) {
        const std::uint64_t low = start & 63;
        bits &= low != 0 ? (std::uint64_t{1} << low) - 1 : std::uint64_t{0};
      }
      if (bits != 0) {
        const std::uint64_t j =
            (static_cast<std::uint64_t>(w) << 6) +
            static_cast<std::uint64_t>(std::countr_zero(bits));
        return cal_cur + 1 + static_cast<std::int64_t>((j - start) & mask);
      }
    }
    return std::numeric_limits<std::int64_t>::max();
  }

  std::optional<ResidentId> advance(std::int64_t until) {
    while (true) {
      if (!completed_queue.empty()) {
        const ResidentId id = completed_queue.front();
        completed_queue.pop_front();
        return id;
      }
      if (live_events == 0) {
        // Fully drained: every scheduled event has been dispatched, so
        // whatever sits in the cursor's bucket is a consumed prefix.
        // Clear it and rewind bucket_pos before the cursor jumps —
        // otherwise an admission at the idle tick inserts its bundle
        // below the stale cursor and the events are never dispatched.
        const auto bix = static_cast<std::size_t>(cal_cur & bucket_mask);
        if (!buckets[bix].empty()) {
          buckets[bix].clear();
          cal_words[bix >> 6] &= ~(std::uint64_t{1} << (bix & 63));
        }
        bucket_pos = 0;
        if (until != kNoLimit && until > cal_cur) cal_cur = until;
        return std::nullopt;
      }
      if (cal_cur >= until) return std::nullopt;
      migrate_overflow();
      auto bix = static_cast<std::size_t>(cal_cur & bucket_mask);
      std::vector<Event>* bucket = &buckets[bix];
      if (bucket_pos >= bucket->size()) {
        // Tick drained: clear the bucket and jump to the next pending
        // tick (occupancy-bitmap scan vs. the overflow front).
        if (!bucket->empty()) {
          bucket->clear();
          cal_words[bix >> 6] &= ~(std::uint64_t{1} << (bix & 63));
        }
        bucket_pos = 0;
        std::int64_t next = next_bucket_tick();
        if (!overflow.empty() && overflow.front().tick < next) {
          next = overflow.front().tick;
        }
        if (next >= until) {
          cal_cur = until;
          return std::nullopt;
        }
        if (next > opt.max_ticks) {
          timeout_all(next);
          continue;
        }
        cal_cur = next;
        migrate_overflow();
        continue;
      }
      const Event ev = (*bucket)[bucket_pos++];
      --live_events;
      now = cal_cur;
      dispatch(ev);
    }
  }

  void dispatch(const Event& ev) {
    ResidentRt& r = residents[ev.res];
    if (r.done) {
      // A finished residency's stale events are dropped — except that a
      // still-in-flight execution completion must free its Instruction
      // Execution Unit (shared with later co-residents) and close the
      // fabric-level overlap span it holds.
      if (ev.kind() == EvKind::ExecDone) {
        state[static_cast<std::size_t>(ev.node)] &=
            static_cast<std::uint8_t>(~kExecuting);
        exec_delta(r, ev.res, -1);
        release_execution_unit(ev.node);
      }
      return;
    }
    switch (ev.kind()) {
      case EvKind::Serial:
        on_serial(r, ev.res, ev.node, Token{ev.cmd, ev.aux});
        break;
      case EvKind::Mesh:
        on_mesh(r, ev.res, ev.node, ev.side(), ev.aux, ev.prod);
        break;
      case EvKind::ExecDone: on_exec_done(r, ev.res, ev.node); break;
      case EvKind::ServiceDone: on_service_done(r, ev.res, ev.node); break;
    }
  }

  // ---- occupancy-tracked transport ----
  //
  // Each resource remembers (owner, busy_until). Same-owner passage is
  // free (single-method parity: a method's own tokens never queue
  // behind each other, exactly as in sim::Engine); a cross-residency
  // token starts when the resource frees and the delay is charged to
  // the waiting residency.
  std::int64_t occupy(Occupancy& o, std::int32_t owner, std::int64_t at,
                      std::int64_t dur, std::int64_t* wait) {
    std::int64_t start = at;
    if (o.owner != owner && o.busy_until > at) {
      start = o.busy_until;
      *wait += start - at;
    }
    o.owner = owner;
    const std::int64_t done = start + dur;
    if (done > o.busy_until) o.busy_until = done;
    return done;
  }

  // Serial-chain arrival tick from physical a to b (global indices;
  // a == phys_delta-1 is the residency's anchor). Collapsed configs
  // have zero serial transit, hence nothing to contend for.
  std::int64_t chain_arrival(ResidentRt& r, std::uint16_t res,
                             std::int32_t a, std::int32_t b) {
    if (hop == 0) return now;
    if (a == b) return now + hop;  // intra-node IDU chain hop
    std::int64_t t = now;
    std::int64_t wait = 0;
    if (a < b) {
      for (std::int32_t p = a + 1; p <= b; ++p) {
        t = occupy(link_down[static_cast<std::size_t>(p)], res, t, hop,
                   &wait);
      }
    } else {
      for (std::int32_t p = a - 1; p >= b; --p) {
        t = occupy(link_up[static_cast<std::size_t>(p)], res, t, hop,
                   &wait);
      }
    }
    r.serial_wait += wait;
    return t;
  }

  // Mesh arrival tick for one plan edge. The precomputed X-Y route is
  // walked link by link at one mesh cycle (k ticks) each; with no
  // contention the sum equals the plan's baked delivery_ticks (route
  // length == Manhattan distance), so single-residency timing is
  // bit-identical. Collapsed configs and self-edges (distance clamped
  // to 1, no links) keep the baked cost.
  std::int64_t mesh_arrival(ResidentRt& r, std::uint16_t res,
                            const PlanEdge& e) {
    if (collapsed || e.route_count == 0) return now + e.delivery_ticks;
    const PlanRouteLink* link = r.plan->route_links() + e.route_begin;
    std::int64_t t = now;
    std::int64_t wait = 0;
    for (std::int32_t i = 0; i < e.route_count; ++i, ++link) {
      const auto li =
          static_cast<std::size_t>(link->src_phys + r.phys_delta) * 4 +
          link->dir;
      t = occupy(mesh_link[li], res, t, k, &wait);
    }
    r.mesh_wait += wait;
    return t;
  }

  // Ring-service completion tick. All four channels are fabric-global —
  // the one genuinely shared resource even between row-aligned
  // residencies. `blocking` distinguishes a waiting requester (MemRead,
  // GPP calls) from a posted MemoryWrite, which reserves the channel
  // but never stalls its node.
  std::int64_t ring_done(ResidentRt& r, std::uint16_t res,
                         net::RingService svc, std::int64_t svc_ticks,
                         bool blocking) {
    Occupancy& o = ring[static_cast<std::size_t>(svc)];
    std::int64_t wait = 0;
    const std::int64_t done = occupy(o, res, now, svc_ticks, &wait);
    if (blocking) r.ring_wait += wait;
    return done;
  }

  // ---- sends ----
  void send_serial(ResidentRt& r, std::uint16_t res, std::int32_t from_g,
                   Token tok, std::int32_t to_g, std::int64_t extra = 0) {
    if (to_g < r.base || to_g >= r.base + r.count) {
      return;  // token falls off the residency's chain span
    }
    ++r.serial_msgs;
    const std::int32_t a =
        from_g == kFromAnchor ? r.phys_delta - 1 : phys_g(r, from_g);
    const std::int32_t b = phys_g(r, to_g);
    const std::int64_t arrive = chain_arrival(r, res, a, b);
    const std::int64_t delay = arrive - now;
    if (fab_mx() != nullptr) note_serial(*fab_mx(), delay, tok.cmd);
    if (r.mx != nullptr) note_serial(*r.mx, delay, tok.cmd);
    Event ev;
    ev.set(EvKind::Serial);
    ev.node = to_g;
    ev.res = res;
    ev.cmd = tok.cmd;
    ev.aux = tok.reg;
    ev.tick = arrive + extra;
    schedule(ev);
  }

  static void note_serial(obs::MetricsRegistry& mx, std::int64_t delay,
                          Command cmd) {
    ++mx.serial_messages;
    mx.serial_hop_ticks += static_cast<std::uint64_t>(delay);
    ++mx.serial_commands[static_cast<std::size_t>(cmd)];
  }

  void forward_token(ResidentRt& r, std::uint16_t res, std::int32_t g,
                     Token tok) {
    send_serial(r, res, g, tok, fwd[static_cast<std::size_t>(g)]);
  }

  void send_mesh(ResidentRt& r, std::uint16_t res, std::int32_t g) {
    const auto lu = static_cast<std::size_t>(local(r, g));
    const std::int32_t* eb = r.plan->edge_begin();
    const PlanEdge* e = r.plan->edges() + eb[lu];
    const PlanEdge* const end = r.plan->edges() + eb[lu + 1];
    for (; e != end; ++e) {
      ++r.mesh_msgs;
      if (fab_mx() != nullptr) note_mesh(*fab_mx(), r, *e);
      if (r.mx != nullptr) note_mesh(*r.mx, r, *e);
      const std::int32_t consumer_g = r.base + e->consumer;
      Event ev;
      ev.set(EvKind::Mesh, e->side);
      ev.node = consumer_g;
      ev.res = res;
      ev.prod = g;
      ev.aux = epoch[static_cast<std::size_t>(consumer_g)];
      ev.tick = mesh_arrival(r, res, *e);
      schedule(ev);
    }
  }

  void note_mesh(obs::MetricsRegistry& mx, const ResidentRt& r,
                 const PlanEdge& e) const {
    ++mx.mesh_messages;
    mx.mesh_transit_cycles += static_cast<std::uint64_t>(e.mesh_cycles);
    const PlanRouteLink* link = r.plan->route_links() + e.route_begin;
    for (std::int32_t i = 0; i < e.route_count; ++i, ++link) {
      mx.mesh_link(link->src_phys + r.phys_delta,
                   static_cast<obs::LinkDir>(link->dir));
    }
  }

  // ---- serial handlers (ported from sim/engine.cpp on_serial) ----
  void on_serial(ResidentRt& r, std::uint16_t res, std::int32_t g,
                 Token tok) {
    const auto u = static_cast<std::size_t>(g);
    NodeRt& n = nodes[u];
    if (tr() != nullptr) {
      tr()->record({now, obs::TraceEventKind::TokenDeliver, g, phys_g(r, g),
                    static_cast<std::uint8_t>(tok.cmd), 0});
    }
    const std::uint8_t st = state[u];
    const bool buffers = flag(r, g, kPlanBuffers);
    const bool hold =
        buffers && (!(st & kFired) || (st & kWaitTailFlush) != 0);

    switch (tok.cmd) {
      case Command::HeadToken:
        state[u] |= kHeadReceived;
        head_tick[u] = now;
        if (hold) {
          n.buffered.push_back(tok);
          note_buffered(r, g, n);
          try_fire(r, res, g);
        } else {
          try_fire(r, res, g);
          forward_token(r, res, g, tok);
        }
        return;

      case Command::MemoryToken:
        if (hold) {
          n.buffered.push_back(tok);
          note_buffered(r, g, n);
          return;
        }
        if (flag(r, g, kPlanOrdered) && !(state[u] & kFired)) {
          n.memory_held = true;
          n.held_memory = tok;
          try_fire(r, res, g);
          return;
        }
        forward_token(r, res, g, tok);
        return;

      case Command::RegisterToken: {
        if (hold) {
          n.buffered.push_back(tok);
          note_buffered(r, g, n);
          return;
        }
        const Group grp = group_of(r, g);
        const std::int32_t lreg = r.plan->local_reg()[local(r, g)];
        if ((grp == Group::LocalRead || grp == Group::LocalInc) &&
            lreg == tok.reg && !(state[u] & kFired) && !n.reg_held) {
          n.reg_held = true;
          n.held_reg = tok;
          try_fire(r, res, g);
          return;
        }
        if (grp == Group::LocalWrite && lreg == tok.reg) {
          if (!(state[u] & kFired)) {
            n.write_absorbed = true;
          } else if (n.kill_next_register) {
            n.kill_next_register = false;
          } else {
            forward_token(r, res, g, tok);
          }
          return;
        }
        forward_token(r, res, g, tok);
        return;
      }

      case Command::TailToken:
        if (buffers) {
          if (!(state[u] & kFired)) {
            n.buffered.push_back(tok);
            note_buffered(r, g, n);
            n.tail_present = true;
            try_fire(r, res, g);
            return;
          }
          if (state[u] & kWaitTailFlush) {
            n.buffered.push_back(tok);
            note_buffered(r, g, n);
            flush_up(r, res, g);
            return;
          }
          forward_token(r, res, g, tok);
          return;
        }
        if (state[u] & kFired) {
          forward_token(r, res, g, tok);
        } else {
          n.tail_held = true;
          n.held_tail = tok;
          tail_hold[u] = now;
        }
        return;

      default:
        forward_token(r, res, g, tok);
        return;
    }
  }

  void note_buffered(const ResidentRt& r, std::int32_t g, const NodeRt& n) {
    if (fab_mx() != nullptr) {
      fab_mx()->buffer_high_water(phys_g(r, g), n.buffered.size());
    }
    if (r.mx != nullptr) {
      r.mx->buffer_high_water(phys_g(r, g), n.buffered.size());
    }
  }

  void on_mesh(ResidentRt& r, std::uint16_t res, std::int32_t g,
               std::uint8_t side, std::int32_t ep, std::int32_t producer) {
    const auto u = static_cast<std::size_t>(g);
    if (epoch[u] != ep) return;  // stale (previous loop iteration)
    if (tr() != nullptr) {
      tr()->record({now, obs::TraceEventKind::OperandArrive, g,
                    phys_g(r, g), side, producer});
    }
    ++pops[u];
    try_fire(r, res, g);
  }

  // ---- firing ----
  bool fire_ready(const ResidentRt& r, std::int32_t g) const {
    const auto u = static_cast<std::size_t>(g);
    if (state[u] != kHeadReceived) return false;
    const NodeRt& n = nodes[u];
    const auto lu = static_cast<std::size_t>(local(r, g));
    const std::int32_t need = r.plan->pop_need()[lu];
    switch (static_cast<Group>(r.plan->group()[lu])) {
      case Group::LocalRead:
      case Group::LocalInc:
        return n.reg_held;
      case Group::MemRead:
      case Group::MemWrite:
        return pops[u] >= need && n.memory_held;
      case Group::Return:
        return pops[u] >= need && n.tail_present;
      case Group::ControlFlow:
        if ((r.plan->flags()[lu] & kPlanBackwardGoto) != 0) {
          return n.tail_present;  // backward GoTo fires on TAIL (§6.3)
        }
        return pops[u] >= need;
      default:
        return pops[u] >= need;
    }
  }

  void try_fire(ResidentRt& r, std::uint16_t res, std::int32_t g) {
    if (!fire_ready(r, g)) return;
    const auto u = static_cast<std::size_t>(g);
    const auto pn = static_cast<std::size_t>(phys_g(r, g));
    if (idus > 1 && exec_busy[pn]) {
      pending_fire[pn].push_back(g);
      return;
    }
    exec_busy[pn] = 1;
    state[u] |= kExecuting;
    exec_delta(r, res, +1);
    const auto lu = static_cast<std::size_t>(local(r, g));
    const std::int64_t cost = r.plan->exec_cost_ticks()[lu];
    const std::uint8_t opb = r.plan->op()[lu];
    const std::uint8_t grpb = r.plan->group()[lu];
    if (fab_mx() != nullptr) {
      note_fire(*fab_mx(), static_cast<std::int32_t>(pn), opb, grpb, cost, u);
    }
    if (r.mx != nullptr) {
      note_fire(*r.mx, static_cast<std::int32_t>(pn), opb, grpb, cost, u);
    }
    if (tr() != nullptr) {
      tr()->record({now, obs::TraceEventKind::FireStart, g,
                    static_cast<std::int32_t>(pn), grpb, cost});
    }
    Event ev;
    ev.set(EvKind::ExecDone);
    ev.node = g;
    ev.res = res;
    ev.tick = now + cost;
    schedule(ev);
  }

  void note_fire(obs::MetricsRegistry& mx, std::int32_t pn, std::uint8_t opb,
                 std::uint8_t grpb, std::int64_t cost, std::size_t u) {
    mx.node_firing(pn, opb);
    mx.exec_ticks_by_group[grpb].record(cost);
    if (head_tick[u] >= 0) mx.fire_stall_ticks.record(now - head_tick[u]);
  }

  void release_execution_unit(std::int32_t g) {
    const ResidentRt& owner = residents[res_of[static_cast<std::size_t>(g)]];
    const auto pn = static_cast<std::size_t>(phys_g(owner, g));
    exec_busy[pn] = 0;
    if (idus <= 1) return;
    auto& pending = pending_fire[pn];
    while (!pending.empty()) {
      const std::int32_t next = pending.front();
      pending.erase(pending.begin());
      const std::uint16_t nres = res_of[static_cast<std::size_t>(next)];
      if (residents[nres].done) continue;  // stale: owner finished
      try_fire(residents[nres], nres, next);
      if (exec_busy[pn]) break;
    }
  }

  void mark_fired(ResidentRt& r, std::int32_t g) {
    state[static_cast<std::size_t>(g)] |= kFired;
    ++r.fired;
    distinct[static_cast<std::size_t>(g)] = 1;
  }

  void post_fire_releases(ResidentRt& r, std::uint16_t res, std::int32_t g) {
    const auto u = static_cast<std::size_t>(g);
    NodeRt& n = nodes[u];
    const Group grp = group_of(r, g);
    if (grp == Group::LocalRead || grp == Group::LocalInc) {
      if (n.reg_held) {
        n.reg_held = false;
        forward_token(r, res, g, n.held_reg);
      }
    }
    if (grp == Group::LocalWrite) {
      forward_token(r, res, g,
                    Token{Command::RegisterToken,
                          r.plan->local_reg()[local(r, g)]});
      if (!n.write_absorbed) n.kill_next_register = true;
    }
    if (n.memory_held) {
      n.memory_held = false;
      forward_token(r, res, g, n.held_memory);
    }
    if (n.tail_held) {
      n.tail_held = false;
      if (tail_hold[u] >= 0) {
        if (fab_mx() != nullptr) {
          fab_mx()->tail_hold_ticks.record(now - tail_hold[u]);
        }
        if (r.mx != nullptr) r.mx->tail_hold_ticks.record(now - tail_hold[u]);
        tail_hold[u] = -1;
      }
      forward_token(r, res, g, n.held_tail);
    }
  }

  void record_service(ResidentRt& r, std::int32_t g, net::RingService svc,
                      std::int64_t ticks) {
    if (fab_mx() != nullptr) {
      ++fab_mx()->ring_requests[static_cast<std::size_t>(svc)];
      fab_mx()->ring_latency_ticks[static_cast<std::size_t>(svc)].record(
          ticks);
    }
    if (r.mx != nullptr) {
      ++r.mx->ring_requests[static_cast<std::size_t>(svc)];
      r.mx->ring_latency_ticks[static_cast<std::size_t>(svc)].record(ticks);
    }
    if (tr() != nullptr) {
      tr()->record({now, obs::TraceEventKind::ServiceStart, g, phys_g(r, g),
                    static_cast<std::uint8_t>(svc), ticks});
    }
  }

  void on_exec_done(ResidentRt& r, std::uint16_t res, std::int32_t g) {
    const auto u = static_cast<std::size_t>(g);
    NodeRt& n = nodes[u];
    state[u] &= static_cast<std::uint8_t>(~kExecuting);
    exec_delta(r, res, -1);
    release_execution_unit(g);
    const Group grp = group_of(r, g);
    if (tr() != nullptr) {
      tr()->record({now, obs::TraceEventKind::FireComplete, g, phys_g(r, g),
                    static_cast<std::uint8_t>(grp), 0});
    }

    const bool sw = flag(r, g, kPlanSwitch);
    if (grp == Group::ControlFlow || sw) {
      resolve_control(r, res, g);
      return;
    }
    if (grp == Group::Return) {
      mark_fired(r, g);
      complete_resident(r, res);
      return;
    }
    if (grp == Group::Call || grp == Group::Special) {
      state[u] |= kInService;
      const std::int64_t svc_ticks = k * cfg.ring.gpp_service;
      record_service(r, g, net::RingService::GppService, svc_ticks);
      Event ev;
      ev.set(EvKind::ServiceDone);
      ev.node = g;
      ev.res = res;
      ev.tick = ring_done(r, res, net::RingService::GppService, svc_ticks,
                          /*blocking=*/true);
      schedule(ev);
      return;
    }
    if (grp == Group::MemRead) {
      state[u] |= kInService;
      if (n.memory_held) {
        n.memory_held = false;
        forward_token(r, res, g, n.held_memory);
      }
      const std::int64_t svc_ticks = k * cfg.ring.memory_read;
      record_service(r, g, net::RingService::MemoryRead, svc_ticks);
      Event ev;
      ev.set(EvKind::ServiceDone);
      ev.node = g;
      ev.res = res;
      ev.tick = ring_done(r, res, net::RingService::MemoryRead, svc_ticks,
                          /*blocking=*/true);
      schedule(ev);
      return;
    }
    if (grp == Group::MemWrite) {
      const std::int64_t svc_ticks = k * cfg.ring.memory_write;
      record_service(r, g, net::RingService::MemoryWrite, svc_ticks);
      // Posted: the channel is reserved but the node never waits.
      ring_done(r, res, net::RingService::MemoryWrite, svc_ticks,
                /*blocking=*/false);
      mark_fired(r, g);
      post_fire_releases(r, res, g);
      return;
    }
    mark_fired(r, g);
    send_mesh(r, res, g);
    post_fire_releases(r, res, g);
  }

  void on_service_done(ResidentRt& r, std::uint16_t res, std::int32_t g) {
    const auto u = static_cast<std::size_t>(g);
    state[u] &= static_cast<std::uint8_t>(~kInService);
    if (tr() != nullptr) {
      const net::RingService svc = group_of(r, g) == Group::MemRead
                                       ? net::RingService::MemoryRead
                                       : net::RingService::GppService;
      tr()->record({now, obs::TraceEventKind::ServiceComplete, g,
                    phys_g(r, g), static_cast<std::uint8_t>(svc), 0});
    }
    mark_fired(r, g);
    send_mesh(r, res, g);
    post_fire_releases(r, res, g);
  }

  void resolve_control(ResidentRt& r, std::uint16_t res, std::int32_t g) {
    const auto u = static_cast<std::size_t>(g);
    NodeRt& n = nodes[u];
    const auto lu = static_cast<std::size_t>(local(r, g));
    std::int32_t target;  // global node index
    if (flag(r, g, kPlanGoto)) {
      target = r.base + r.plan->target()[lu];
    } else if (flag(r, g, kPlanSwitch)) {
      const bytecode::SwitchTable& table =
          r.method->switches[static_cast<std::size_t>(
              r.plan->operand()[lu])];
      const auto arms = static_cast<std::int32_t>(table.targets.size()) + 1;
      // Predictor sites are keyed by the method-local node id, so a
      // shared plan's residencies replay the same decision streams as a
      // single-method run (determinism and N=1 parity both need this).
      const std::int32_t pick =
          r.predictor.decide_switch(local(r, g), arms);
      target = r.base +
               (pick < static_cast<std::int32_t>(table.targets.size())
                    ? table.targets[static_cast<std::size_t>(pick)]
                    : table.default_target);
    } else {
      const auto kind =
          static_cast<BranchKind>(r.plan->branch_kinds()[lu]);
      const bool taken = r.predictor.decide(local(r, g), kind);
      target = taken ? r.base + r.plan->target()[lu] : g + 1;
    }

    mark_fired(r, g);
    if (target > g) {
      fwd[u] = target;
      std::int64_t idx = 0;
      for (std::size_t bi = 0; bi < n.buffered.size(); ++bi) {
        send_serial(r, res, g, n.buffered[bi], target,
                    hop == 0 ? 0 : idx++);
      }
      n.buffered.clear();
      return;
    }
    state[u] |= kWaitTailFlush;
    n.decided_target = target;
    if (n.tail_present) flush_up(r, res, g);
  }

  void reset_node(std::int32_t g) {
    const auto u = static_cast<std::size_t>(g);
    state[u] = 0;
    pops[u] = 0;
    ++epoch[u];
    fwd[u] = g + 1;
    head_tick[u] = -1;
    tail_hold[u] = -1;
    nodes[u].reset_cold();
  }

  void flush_up(ResidentRt& r, std::uint16_t res, std::int32_t g) {
    NodeRt& n = nodes[static_cast<std::size_t>(g)];
    const std::int32_t target = n.decided_target;
    flush_scratch.clear();
    flush_scratch.swap(n.buffered);
    for (std::int32_t i = target; i <= g; ++i) reset_node(i);
    std::int64_t idx = 0;
    for (const Token& tok : flush_scratch) {
      send_serial(r, res, g, tok, target, hop == 0 ? 0 : idx++);
    }
  }

  // ---- overlap accounting ----
  //
  // Per-residency acc1/acc2 mirror the single engine exactly (so a lone
  // residency's RunMetrics match bit for bit); the fabric-level pair
  // and the distinct-residency pair integrate the same spans over the
  // global counters.
  void exec_delta(ResidentRt& r, std::uint16_t res, int delta) {
    (void)res;
    const std::int64_t span = now - fab_last;
    if (span > 0) {
      if (fab_active >= 1) fab_acc1 += span;
      if (fab_active >= 2) fab_acc2 += span;
      if (res_exec_count >= 1) res_acc1 += span;
      if (res_exec_count >= 2) res_acc2 += span;
    }
    fab_last = now;
    if (!r.done) {
      if (r.active_exec >= 1) r.acc1 += now - r.last_change;
      if (r.active_exec >= 2) r.acc2 += now - r.last_change;
      r.last_change = now;
    }
    const int before = r.active_exec;
    r.active_exec += delta;
    fab_active += delta;
    if (before == 0 && r.active_exec > 0) ++res_exec_count;
    if (before > 0 && r.active_exec == 0) --res_exec_count;
  }

  void flush_fabric_accounting() {
    const std::int64_t span = now - fab_last;
    if (span > 0) {
      if (fab_active >= 1) fab_acc1 += span;
      if (fab_active >= 2) fab_acc2 += span;
      if (res_exec_count >= 1) res_acc1 += span;
      if (res_exec_count >= 2) res_acc2 += span;
    }
    fab_last = now;
  }

  // ---- completion ----
  void complete_resident(ResidentRt& r, std::uint16_t res) {
    r.completed = true;
    r.end_tick = now;
    finalize_resident(r, res);
    completed_queue.push_back(static_cast<ResidentId>(res));
  }

  void finalize_resident(ResidentRt& r, std::uint16_t res) {
    // Freeze this residency's overlap accounting at the current tick
    // (matching the single engine's end-of-run flush), then fill the
    // outcome. In-flight executions keep their IEUs busy until their
    // ExecDone events drain; those spans still count at fabric level.
    if (r.active_exec >= 1) r.acc1 += now - r.last_change;
    if (r.active_exec >= 2) r.acc2 += now - r.last_change;
    r.last_change = now;
    r.done = true;
    --running;

    RunMetrics mm;
    mm.fits = true;
    mm.completed = r.completed;
    mm.timed_out = r.timed_out;
    mm.exception = false;
    mm.static_size = static_cast<std::int32_t>(r.method->code.size());
    mm.max_slot = r.plan->max_slot() + r.slot_delta;
    mm.ticks = (r.completed ? r.end_tick : now) - r.inject_tick;
    mm.mesh_cycles = std::max<std::int64_t>(1, (mm.ticks + k - 1) / k);
    mm.instructions_fired = r.fired;
    mm.distinct_fired = static_cast<std::int32_t>(
        std::count(distinct.begin() + r.base,
                   distinct.begin() + r.base + r.count, 1));
    mm.mesh_messages = r.mesh_msgs;
    mm.serial_messages = r.serial_msgs;
    mm.ticks_exec_1plus = r.acc1;
    mm.ticks_exec_2plus = r.acc2;
    if (fab_mx() != nullptr) ++fab_mx()->runs;
    if (r.mx != nullptr) ++r.mx->runs;

    ResidentOutcome& out = outcomes[res];
    out.metrics = mm;
    out.completed_tick = r.completed ? r.end_tick : -1;
    out.serial_wait_ticks = r.serial_wait;
    out.mesh_wait_ticks = r.mesh_wait;
    out.ring_wait_ticks = r.ring_wait;
  }

  void timeout_all(std::int64_t over_tick) {
    now = over_tick;
    cal_cur = over_tick;
    for (std::size_t i = 0; i < residents.size(); ++i) {
      ResidentRt& r = residents[i];
      if (r.done) continue;
      r.timed_out = true;
      finalize_resident(r, static_cast<std::uint16_t>(i));
      completed_queue.push_back(static_cast<ResidentId>(i));
    }
    // Drop every undrained event: all owners are finished.
    for (std::size_t w = 0; w < cal_words.size(); ++w) {
      std::uint64_t bits = cal_words[w];
      while (bits != 0) {
        const int bit = std::countr_zero(bits);
        bits &= bits - 1;
        buckets[(w << 6) | static_cast<std::size_t>(bit)].clear();
      }
      cal_words[w] = 0;
    }
    overflow.clear();
    live_events = 0;
    bucket_pos = 0;
  }

  MultiRunMetrics finish() {
    for (std::size_t i = 0; i < residents.size(); ++i) {
      if (!residents[i].done) {
        finalize_resident(residents[i], static_cast<std::uint16_t>(i));
      }
    }
    flush_fabric_accounting();
    finished = true;
    MultiRunMetrics agg;
    agg.residents = outcomes;
    agg.fabric_ticks = now;
    agg.ticks_exec_1plus = fab_acc1;
    agg.ticks_exec_2plus = fab_acc2;
    agg.ticks_res_1plus = res_acc1;
    agg.ticks_res_2plus = res_acc2;
    for (const ResidentRt& r : residents) {
      agg.serial_wait_ticks += r.serial_wait;
      agg.mesh_wait_ticks += r.mesh_wait;
      agg.ring_wait_ticks += r.ring_wait;
    }
    return agg;
  }
};

MultiEngine::MultiEngine(MachineConfig config, MultiEngineOptions options)
    : impl_(std::make_unique<Impl>(std::move(config), options)) {}
MultiEngine::MultiEngine(MultiEngine&&) noexcept = default;
MultiEngine& MultiEngine::operator=(MultiEngine&&) noexcept = default;
MultiEngine::~MultiEngine() = default;

ResidentId MultiEngine::admit(const bytecode::Method& m, const ExecPlan& plan,
                              std::int32_t phys_delta,
                              BranchPredictor::Scenario scenario,
                              std::int64_t start_tick,
                              obs::MetricsRegistry* resident_metrics) {
  return impl_->admit(m, plan, phys_delta, scenario, start_tick,
                      resident_metrics);
}

std::optional<ResidentId> MultiEngine::advance(std::int64_t until) {
  return impl_->advance(until);
}

bool MultiEngine::idle() const noexcept { return impl_->live_events == 0; }

std::int64_t MultiEngine::now() const noexcept { return impl_->cal_cur; }

std::size_t MultiEngine::resident_count() const noexcept {
  return impl_->residents.size();
}

std::size_t MultiEngine::running_count() const noexcept {
  return impl_->running;
}

const ResidentOutcome* MultiEngine::outcome(ResidentId r) const noexcept {
  if (r < 0 || static_cast<std::size_t>(r) >= impl_->residents.size() ||
      !impl_->residents[static_cast<std::size_t>(r)].done) {
    return nullptr;
  }
  return &impl_->outcomes[static_cast<std::size_t>(r)];
}

MultiRunMetrics MultiEngine::finish() { return impl_->finish(); }

const MachineConfig& MultiEngine::config() const noexcept {
  return impl_->cfg;
}

}  // namespace javaflow::sim
