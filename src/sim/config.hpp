// Machine configurations (paper Table 15) and timing assumptions
// (Table 17 execution cycles, Figure 25 network transit times).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "fabric/fabric.hpp"

namespace javaflow::sim {

// Event-scheduler implementation for the simulation kernel
// (docs/PERF.md "Engine kernel"). Both produce bit-identical RunMetrics
// and traces — the order they hand out events is the same strict
// (tick, seq) total order — so the switch exists for equality testing
// and regression triage, not for semantics.
//   Auto      — resolve via JAVAFLOW_SCHEDULER, default Calendar.
//   Heap      — std::push_heap/pop_heap binary heap (the pre-PR4 kernel).
//   Calendar  — tick-bucketed calendar queue with an overflow spill;
//               O(1) amortized for the model's bounded delays.
enum class SchedulerKind : std::uint8_t { Auto, Heap, Calendar };

std::string_view scheduler_name(SchedulerKind k) noexcept;

// Parses "heap" / "calendar" (also accepts "auto"); nullopt otherwise.
std::optional<SchedulerKind> scheduler_from_name(
    std::string_view name) noexcept;

// Maps a requested kind to a concrete one: Heap/Calendar pass through;
// Auto reads JAVAFLOW_SCHEDULER (warning on stderr for unknown values)
// and falls back to Calendar when unset. Engines resolve once at
// construction, so the env lookup never lands on the per-run hot path.
SchedulerKind resolve_scheduler(SchedulerKind requested) noexcept;

struct MachineConfig {
  std::string name;
  fabric::LayoutKind layout = fabric::LayoutKind::Compact;
  // Serial clocks per mesh clock (Table 15: "up to N serial clocks
  // between each mesh clock"). Larger = relatively faster serial network.
  int serial_per_mesh = 2;
  int width = 10;          // mesh rows are 10 units wide (§7.2)
  int capacity = 10000;    // Instruction Node budget
  // Instruction Data Units per Instruction Node (§4.2). The paper's
  // simulations use 1 ("for simplicity and to stress the DataFlow
  // Fabric"); larger values pack several instructions per physical node,
  // sharing one Instruction Execution Unit (execution serializes within
  // a node) but shrinking network spans. Swept by bench/ablation_idus.
  int idus_per_node = 1;
  net::RingLatencies ring; // service-time assumptions (DESIGN.md)

  bool collapsed() const noexcept {
    return layout == fabric::LayoutKind::Collapsed;
  }
  fabric::FabricOptions fabric_options() const {
    return fabric::FabricOptions{layout, width, capacity, ring};
  }

  // Versioned, stable, field-complete textual form — the input to the
  // result cache's configuration digest (src/cache/key.hpp). Two configs
  // with equal canonical text simulate identically; any field that can
  // change simulation results MUST appear here (and the leading version
  // tag must be bumped when the encoding changes shape).
  std::string canonical_text() const;
};

// The six Table 15 configurations, in paper order:
//   0 Baseline    — collapsed dataflow machine (distance 1, free serial)
//   1 Compact10   — 10-wide mesh, 10 serial clocks per mesh clock
//   2 Compact4    — 10-wide mesh, 4 serial clocks per mesh clock
//   3 Compact2    — 10-wide mesh, 2 serial clocks per mesh clock
//   4 Sparse2     — as Compact2 with a blank node between instructions
//   5 Hetero2     — as Compact2 with the Figure 26 heterogeneous mix
std::vector<MachineConfig> table15_configs();

// Lookup by name ("Baseline", "Compact10", ...); throws on unknown names.
MachineConfig config_by_name(const std::string& name);

}  // namespace javaflow::sim
