#include "serve/request_stream.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace javaflow::serve {

std::vector<Request> make_request_stream(std::int32_t num_methods,
                                         const RequestStreamOptions& options) {
  util::SplitMix64 rng(options.seed);
  const std::int32_t n = std::max(num_methods, 1);
  const std::int32_t hot = std::min(std::max(options.hot_methods, 1), n);
  const std::int64_t gap_span =
      std::max<std::int64_t>(2 * options.mean_gap_ticks - 1, 1);

  std::vector<Request> out;
  out.reserve(static_cast<std::size_t>(std::max(options.num_requests, 0)));
  std::int64_t tick = 0;
  for (std::int32_t i = 0; i < options.num_requests; ++i) {
    // Draw order is part of the stream definition: gap, hot/cold, index,
    // scenario — changing it changes every downstream digest.
    if (i > 0) tick += 1 + static_cast<std::int64_t>(
                            rng.below(static_cast<std::uint64_t>(gap_span)));
    const bool is_hot =
        rng.below(256) < static_cast<std::uint64_t>(options.hot_fraction_256);
    const std::int32_t idx = static_cast<std::int32_t>(
        rng.below(static_cast<std::uint64_t>(is_hot ? hot : n)));
    const auto scenario = rng.below(2) == 0
                              ? sim::BranchPredictor::Scenario::BP1
                              : sim::BranchPredictor::Scenario::BP2;
    Request r;
    r.id = i;
    r.method_index = idx;
    r.arrival_tick = tick;
    r.scenario = scenario;
    out.push_back(r);
  }
  return out;
}

}  // namespace javaflow::serve
