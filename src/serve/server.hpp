// Serving frontend: FabricManager as a multi-tenant request server
// (docs/SERVING.md; paper §6.2 management, §4.3 atomic execution,
// Chapter 8 superposition).
//
// FabricServer::serve() drives a deterministic request stream through
// one FabricManager (slot occupancy, plan sharing, load/unload) and one
// sim::MultiEngine (the shared-fabric event calendar):
//
//   * Admission queueing — arrivals enter a FIFO queue; a request is
//     admitted when its method holds no active thread (§4.3: same-method
//     requests serialize) and the fabric has room. A space-blocked head
//     stops the scan (FIFO fairness for space); busy-method requests
//     are scanned around (the fabric is not idled by one hot method).
//   * Occupancy-aware placement — the loader first scans for a
//     row-aligned free gap of the method's canonical span, which lets
//     the residency share the canonical pre-lowered plan; only
//     irregular packings pay a dedicated lowering.
//   * Idle-LRU eviction — when placement fails, the least-recently-used
//     idle resident is unloaded and placement retried.
//   * Per-request latency accounting — completion tick minus arrival
//     tick, summarized as nearest-rank p50/p95/p99.
//
// Determinism: the stream is a pure function of its seed, the engine
// calendar is single-threaded, and every server decision (scan order,
// eviction ties, percentile ranks) is integer-ordered — repeated runs
// produce bit-identical ServeReports (digest()), independent of
// JAVAFLOW_THREADS.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "bytecode/method.hpp"
#include "serve/request_stream.hpp"
#include "sim/config.hpp"
#include "sim/engine.hpp"

namespace javaflow::serve {

// Per-request terminal record. Exactly one of completed / rejected /
// timed_out is set once the stream drains.
struct RequestOutcome {
  std::int64_t request_id = -1;
  std::int32_t method_index = -1;
  std::int64_t arrival_tick = 0;
  std::int64_t admitted_tick = -1;   // -1 if never admitted
  std::int64_t completed_tick = -1;  // -1 unless completed
  std::int64_t latency_ticks = -1;   // completed - arrival
  bool completed = false;
  bool rejected = false;   // method can never fit on this fabric
  bool timed_out = false;  // fabric tick budget exhausted mid-run
  bool plan_shared = false;
  sim::RunMetrics metrics;  // valid when completed or timed_out
};

struct ServeOptions {
  // Absolute fabric-tick budget for the whole serving run.
  std::int64_t max_fabric_ticks = std::int64_t{1} << 40;
};

struct ServeReport {
  std::string config_name;
  std::uint64_t seed = 0;
  std::int64_t requests = 0;
  std::int64_t completed = 0;
  std::int64_t rejected = 0;
  std::int64_t timed_out = 0;
  std::int64_t fabric_ticks = 0;
  std::int64_t ticks_res_1plus = 0;
  std::int64_t ticks_res_2plus = 0;  // superposition witness
  std::int64_t serial_wait_ticks = 0;
  std::int64_t mesh_wait_ticks = 0;
  std::int64_t ring_wait_ticks = 0;
  std::int64_t loads = 0;
  std::int64_t evictions = 0;
  std::int64_t plans_shared = 0;
  std::int64_t plans_lowered = 0;
  std::int64_t max_queue_depth = 0;
  std::int64_t instructions_fired = 0;
  // Completed-request latency summary (nearest-rank percentiles over the
  // sorted latencies; -1 when nothing completed). The mean is kept as a
  // x1000 integer so the report stays float-free and bit-stable.
  std::int64_t latency_p50 = -1;
  std::int64_t latency_p95 = -1;
  std::int64_t latency_p99 = -1;
  std::int64_t latency_max = -1;
  std::int64_t latency_mean_x1000 = -1;
  std::vector<RequestOutcome> outcomes;

  // FNV-1a 64 over every scalar field and every outcome, in declaration
  // order — two runs are behaviorally identical iff digests match.
  std::uint64_t digest() const;
  // Deterministic JSON (fixed key order, integers only).
  void write_json(std::ostream& os) const;
};

// Runs the request stream against `program`'s methods on a fresh fabric
// of `config`. `methods` restricts the corpus to the given method
// indices (the stream's method_index selects into this list); pass the
// identity list for the whole program.
ServeReport serve(const bytecode::Program& program,
                  const std::vector<std::int32_t>& methods,
                  const sim::MachineConfig& config,
                  const RequestStreamOptions& stream,
                  const ServeOptions& options = {});

}  // namespace javaflow::serve
