// Deterministic seeded request stream for the serving frontend
// (docs/SERVING.md "Request model").
//
// A stream is a pure function of (seed, options, num_methods): arrivals
// are spaced by integer gaps drawn uniformly around `mean_gap_ticks`, a
// configurable fraction of requests hits a small hot set (the first
// `hot_methods` entries — in the corpus those are the hand-written
// kernels), and each request independently draws a branch scenario.
// Every draw comes from one util::SplitMix64 sequence, so the stream is
// bit-identical across platforms and thread counts.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/branch_predictor.hpp"

namespace javaflow::serve {

struct Request {
  std::int64_t id = 0;            // position in the stream (0-based)
  std::int32_t method_index = 0;  // into the serving corpus method list
  std::int64_t arrival_tick = 0;  // fabric tick the request arrives at
  sim::BranchPredictor::Scenario scenario =
      sim::BranchPredictor::Scenario::BP1;
};

struct RequestStreamOptions {
  std::uint64_t seed = 1;
  std::int32_t num_requests = 64;
  // Mean inter-arrival gap in fabric ticks; actual gaps are uniform in
  // [1, 2*mean_gap_ticks - 1] (first request arrives at tick 0).
  std::int64_t mean_gap_ticks = 64;
  // Fraction of requests directed at the hot set, in 1/256ths (integer
  // so the stream definition involves no floating point): 128 = half.
  std::int32_t hot_fraction_256 = 128;
  std::int32_t hot_methods = 4;  // hot set = first min(hot, n) methods
};

// Generates the stream over a corpus of `num_methods` methods, sorted
// by (arrival_tick, id). num_methods must be >= 1.
std::vector<Request> make_request_stream(std::int32_t num_methods,
                                         const RequestStreamOptions& options);

}  // namespace javaflow::serve
