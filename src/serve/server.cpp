#include "serve/server.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <ostream>
#include <set>

#include "core/fabric_manager.hpp"
#include "sim/multi_engine.hpp"

namespace javaflow::serve {

namespace {

// FNV-1a 64, one 64-bit little-endian word at a time.
struct Fnv {
  std::uint64_t h = 1469598103934665603ULL;
  void word(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffU;
      h *= 1099511628211ULL;
    }
  }
  void s64(std::int64_t v) { word(static_cast<std::uint64_t>(v)); }
  void text(const std::string& s) {
    for (const char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ULL;
    }
    word(s.size());
  }
};

// One serving run's mutable state, torn down when serve() returns.
class ServerState {
 public:
  ServerState(const bytecode::Program& program,
              const std::vector<std::int32_t>& methods,
              const sim::MachineConfig& config,
              const std::vector<Request>& requests,
              const ServeOptions& options)
      : program_(program),
        methods_(methods),
        requests_(requests),
        mgr_(config),
        engine_(config, [&] {
          sim::MultiEngineOptions mo;
          mo.max_ticks = options.max_fabric_ticks;
          return mo;
        }()) {
    outcomes_.resize(requests.size());
    for (std::size_t i = 0; i < requests.size(); ++i) {
      outcomes_[i].request_id = requests[i].id;
      outcomes_[i].method_index = requests[i].method_index;
      outcomes_[i].arrival_tick = requests[i].arrival_tick;
    }
  }

  void run() {
    enqueue_due();
    admission_pass();
    while (!queue_.empty() || next_arrival_ < requests_.size() ||
           !running_req_.empty()) {
      const std::int64_t until = next_arrival_ < requests_.size()
                                     ? requests_[next_arrival_].arrival_tick
                                     : sim::MultiEngine::kNoLimit;
      const auto done = engine_.advance(until);
      if (done) {
        handle_completion(*done);
      } else if (next_arrival_ >= requests_.size() && !queue_.empty() &&
                 running_req_.empty()) {
        // Termination guard: the calendar drained with requests still
        // queued and nothing executing. Unreachable when admission is
        // sound (an empty fabric admits any fitting method), but a
        // forced rejection of the head keeps the server total.
        outcomes_[static_cast<std::size_t>(queue_.front())].rejected = true;
        queue_.pop_front();
      }
      enqueue_due();
      admission_pass();
    }
  }

  ServeReport report(const sim::MachineConfig& config, std::uint64_t seed) {
    const sim::MultiRunMetrics agg = engine_.finish();
    ServeReport rep;
    rep.config_name = config.name;
    rep.seed = seed;
    rep.requests = static_cast<std::int64_t>(requests_.size());
    rep.fabric_ticks = agg.fabric_ticks;
    rep.ticks_res_1plus = agg.ticks_res_1plus;
    rep.ticks_res_2plus = agg.ticks_res_2plus;
    rep.serial_wait_ticks = agg.serial_wait_ticks;
    rep.mesh_wait_ticks = agg.mesh_wait_ticks;
    rep.ring_wait_ticks = agg.ring_wait_ticks;
    rep.loads = loads_;
    rep.evictions = evictions_;
    rep.plans_shared = mgr_.plans_shared();
    rep.plans_lowered = mgr_.plans_lowered();
    rep.max_queue_depth = max_queue_depth_;

    std::vector<std::int64_t> lat;
    for (const RequestOutcome& o : outcomes_) {
      rep.completed += o.completed ? 1 : 0;
      rep.rejected += o.rejected ? 1 : 0;
      rep.timed_out += o.timed_out ? 1 : 0;
      rep.instructions_fired += o.metrics.instructions_fired;
      if (o.completed) lat.push_back(o.latency_ticks);
    }
    if (!lat.empty()) {
      std::sort(lat.begin(), lat.end());
      const std::int64_t n = static_cast<std::int64_t>(lat.size());
      const auto rank = [&](std::int64_t q) {
        // Nearest-rank percentile: the ceil(q*n/100)-th smallest.
        const std::int64_t r = (q * n + 99) / 100;
        return lat[static_cast<std::size_t>(std::max<std::int64_t>(r, 1) - 1)];
      };
      rep.latency_p50 = rank(50);
      rep.latency_p95 = rank(95);
      rep.latency_p99 = rank(99);
      rep.latency_max = lat.back();
      std::int64_t sum = 0;
      for (const std::int64_t v : lat) sum += v;
      rep.latency_mean_x1000 = sum * 1000 / n;
    }
    rep.outcomes = std::move(outcomes_);
    return rep;
  }

 private:
  using MethodId = FabricManager::MethodId;

  const bytecode::Method& method_of(std::int32_t method_index) const {
    return program_.methods[static_cast<std::size_t>(
        methods_[static_cast<std::size_t>(method_index)])];
  }

  void enqueue_due() {
    while (next_arrival_ < requests_.size() &&
           requests_[next_arrival_].arrival_tick <= engine_.now()) {
      queue_.push_back(static_cast<std::int64_t>(next_arrival_));
      ++next_arrival_;
    }
    max_queue_depth_ = std::max(max_queue_depth_,
                                static_cast<std::int64_t>(queue_.size()));
  }

  // Row-aligned gap scan first (shares the canonical plan), then the
  // manager's greedy packer, then idle-LRU eviction until one of the
  // two succeeds or nothing evictable remains.
  std::optional<MethodId> place_with_eviction(const bytecode::Method& m,
                                              std::int32_t span) {
    while (true) {
      const sim::MachineConfig& cfg = mgr_.config();
      const std::int64_t align =
          std::int64_t{std::max(cfg.idus_per_node, 1)} * std::max(cfg.width, 1);
      const std::vector<bool>& occ = mgr_.occupied_map();
      for (std::int64_t base = 0; base + span <= cfg.capacity; base += align) {
        bool free_gap = true;
        for (std::int64_t s = base; s < base + span; ++s) {
          if (occ[static_cast<std::size_t>(s)]) {
            free_gap = false;
            break;
          }
        }
        if (!free_gap) continue;
        if (auto id =
                mgr_.load(m, program_.pool, static_cast<std::int32_t>(base))) {
          return id;
        }
        break;
      }
      if (auto id = mgr_.load(m, program_.pool, 0)) return id;

      // Evict the least-recently-used idle resident (ties: smaller id —
      // both orderings are deterministic integers).
      MethodId victim = -1;
      std::int64_t victim_used = 0;
      for (const auto& [mi, mid] : loaded_) {
        const FabricManager::Resident* r = mgr_.find(mid);
        if (r == nullptr || r->busy) continue;
        const std::int64_t used = last_used_[mid];
        if (victim == -1 || used < victim_used ||
            (used == victim_used && mid < victim)) {
          victim = mid;
          victim_used = used;
        }
      }
      if (victim == -1) return std::nullopt;
      evict(victim);
    }
  }

  void evict(MethodId mid) {
    mgr_.unload(mid);
    loaded_.erase(owner_[mid]);
    owner_.erase(mid);
    last_used_.erase(mid);
    ++evictions_;
  }

  void admission_pass() {
    bool progress = true;
    while (progress) {
      progress = false;
      for (auto it = queue_.begin(); it != queue_.end();) {
        const Request& rq = requests_[static_cast<std::size_t>(*it)];
        // §4.3: one thread per method — a busy method's requests wait,
        // but later requests for other methods are scanned around.
        if (executing_.count(rq.method_index) != 0) {
          ++it;
          continue;
        }
        const bytecode::Method& m = method_of(rq.method_index);
        MethodId mid = -1;
        const auto li = loaded_.find(rq.method_index);
        if (li != loaded_.end()) {
          mid = li->second;
        } else {
          const auto span = mgr_.canonical_span(m, program_.pool);
          if (!span) {
            // Exceeds the fabric even when empty: reject outright.
            outcomes_[static_cast<std::size_t>(*it)].rejected = true;
            it = queue_.erase(it);
            progress = true;
            continue;
          }
          const auto placed = place_with_eviction(m, *span);
          if (!placed) return;  // space-blocked: FIFO head-of-line wait
          mid = *placed;
          loaded_[rq.method_index] = mid;
          owner_[mid] = rq.method_index;
          last_used_[mid] = engine_.now();
          ++loads_;
        }
        const FabricManager::Resident* r = mgr_.begin_execute(mid);
        if (r == nullptr) {
          ++it;
          continue;
        }
        const sim::ResidentId rid = engine_.admit(
            *r->method, *r->plan, r->phys_delta, rq.scenario, engine_.now());
        if (rid < 0) {  // residency cap for this fabric lifetime
          mgr_.end_execute(mid);
          ++it;
          continue;
        }
        executing_.insert(rq.method_index);
        running_req_[rid] = *it;
        running_mid_[rid] = mid;
        RequestOutcome& o = outcomes_[static_cast<std::size_t>(*it)];
        o.admitted_tick = engine_.now();
        o.plan_shared = r->plan_shared;
        it = queue_.erase(it);
        progress = true;
      }
    }
  }

  void handle_completion(sim::ResidentId rid) {
    const std::int64_t qi = running_req_[rid];
    const MethodId mid = running_mid_[rid];
    const sim::ResidentOutcome* oc = engine_.outcome(rid);
    RequestOutcome& o = outcomes_[static_cast<std::size_t>(qi)];
    o.metrics = oc->metrics;
    if (oc->metrics.timed_out) {
      o.timed_out = true;
    } else {
      o.completed = true;
      o.completed_tick = oc->completed_tick;
      o.latency_ticks = o.completed_tick - o.arrival_tick;
    }
    mgr_.end_execute(mid);
    executing_.erase(owner_[mid]);
    last_used_[mid] = engine_.now();
    running_req_.erase(rid);
    running_mid_.erase(rid);
  }

  const bytecode::Program& program_;
  const std::vector<std::int32_t>& methods_;
  const std::vector<Request>& requests_;
  FabricManager mgr_;
  sim::MultiEngine engine_;

  std::vector<RequestOutcome> outcomes_;
  std::deque<std::int64_t> queue_;  // indices into requests_
  std::size_t next_arrival_ = 0;
  std::map<std::int32_t, MethodId> loaded_;  // method_index -> resident
  std::map<MethodId, std::int32_t> owner_;   // resident -> method_index
  std::map<MethodId, std::int64_t> last_used_;
  std::set<std::int32_t> executing_;
  std::map<sim::ResidentId, std::int64_t> running_req_;
  std::map<sim::ResidentId, MethodId> running_mid_;
  std::int64_t loads_ = 0;
  std::int64_t evictions_ = 0;
  std::int64_t max_queue_depth_ = 0;
};

}  // namespace

std::uint64_t ServeReport::digest() const {
  Fnv f;
  f.text(config_name);
  f.word(seed);
  f.s64(requests);
  f.s64(completed);
  f.s64(rejected);
  f.s64(timed_out);
  f.s64(fabric_ticks);
  f.s64(ticks_res_1plus);
  f.s64(ticks_res_2plus);
  f.s64(serial_wait_ticks);
  f.s64(mesh_wait_ticks);
  f.s64(ring_wait_ticks);
  f.s64(loads);
  f.s64(evictions);
  f.s64(plans_shared);
  f.s64(plans_lowered);
  f.s64(max_queue_depth);
  f.s64(instructions_fired);
  f.s64(latency_p50);
  f.s64(latency_p95);
  f.s64(latency_p99);
  f.s64(latency_max);
  f.s64(latency_mean_x1000);
  for (const RequestOutcome& o : outcomes) {
    f.s64(o.request_id);
    f.s64(o.method_index);
    f.s64(o.arrival_tick);
    f.s64(o.admitted_tick);
    f.s64(o.completed_tick);
    f.s64(o.latency_ticks);
    f.s64((o.completed ? 1 : 0) | (o.rejected ? 2 : 0) |
          (o.timed_out ? 4 : 0) | (o.plan_shared ? 8 : 0));
    f.s64(o.metrics.ticks);
    f.s64(o.metrics.instructions_fired);
    f.s64(o.metrics.mesh_messages);
    f.s64(o.metrics.serial_messages);
  }
  return f.h;
}

void ServeReport::write_json(std::ostream& os) const {
  os << "{\"config\": \"" << config_name << "\""
     << ", \"seed\": " << seed
     << ", \"requests\": " << requests
     << ", \"completed\": " << completed
     << ", \"rejected\": " << rejected
     << ", \"timed_out\": " << timed_out
     << ", \"fabric_ticks\": " << fabric_ticks
     << ", \"ticks_res_1plus\": " << ticks_res_1plus
     << ", \"ticks_res_2plus\": " << ticks_res_2plus
     << ", \"serial_wait_ticks\": " << serial_wait_ticks
     << ", \"mesh_wait_ticks\": " << mesh_wait_ticks
     << ", \"ring_wait_ticks\": " << ring_wait_ticks
     << ", \"loads\": " << loads
     << ", \"evictions\": " << evictions
     << ", \"plans_shared\": " << plans_shared
     << ", \"plans_lowered\": " << plans_lowered
     << ", \"max_queue_depth\": " << max_queue_depth
     << ", \"instructions_fired\": " << instructions_fired
     << ", \"latency_p50\": " << latency_p50
     << ", \"latency_p95\": " << latency_p95
     << ", \"latency_p99\": " << latency_p99
     << ", \"latency_max\": " << latency_max
     << ", \"latency_mean_x1000\": " << latency_mean_x1000
     << ", \"digest\": " << digest() << "}";
}

ServeReport serve(const bytecode::Program& program,
                  const std::vector<std::int32_t>& methods,
                  const sim::MachineConfig& config,
                  const RequestStreamOptions& stream,
                  const ServeOptions& options) {
  const std::vector<Request> requests = make_request_stream(
      static_cast<std::int32_t>(methods.size()), stream);
  ServerState state(program, methods, config, requests, options);
  state.run();
  return state.report(config, stream.seed);
}

}  // namespace javaflow::serve
