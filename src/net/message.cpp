#include "net/message.hpp"

namespace javaflow::net {

std::string_view command_name(Command c) noexcept {
  switch (c) {
    case Command::LoadInstruction: return "CMD_LOAD_INSTRUCTION";
    case Command::UnloadInstruction: return "CMD_UNLOAD_INSTRUCTION";
    case Command::SendAddressesDown: return "CMD_SEND_ADDRESSES_DOWN";
    case Command::SendNeedsUp: return "CMD_SEND_NEEDS_UP";
    case Command::AddressToken: return "ADDRESS_RESOLUTION_TOKEN";
    case Command::NeedRequest: return "NEED_REQUEST";
    case Command::HeadToken: return "HEAD_TOKEN";
    case Command::MemoryToken: return "MEMORY_TOKEN";
    case Command::RegisterToken: return "REGISTER_TOKEN";
    case Command::TailToken: return "TAIL_TOKEN";
    case Command::ExceptionToken: return "EXCEPTION_TOKEN";
    case Command::QuieseToken: return "QUIESE_TOKEN";
    case Command::ResetAddressToken: return "RESETADDRESS_TOKEN";
    case Command::SubsequentMessage: return "SUBSEQUENT_MESSAGE";
  }
  return "?";
}

std::string_view ring_service_name(RingService s) noexcept {
  switch (s) {
    case RingService::MemoryRead: return "MemoryRead";
    case RingService::MemoryWrite: return "MemoryWrite";
    case RingService::ConstantRead: return "ConstantRead";
    case RingService::GppService: return "GppService";
  }
  return "?";
}

DataType data_type_for(bytecode::ValueType t) noexcept {
  using bytecode::ValueType;
  switch (t) {
    case ValueType::Int: return DataType::Int;
    case ValueType::Long: return DataType::Long;
    case ValueType::Float: return DataType::Float;
    case ValueType::Double: return DataType::Double;
    case ValueType::Ref: return DataType::Ref;
    case ValueType::Void: return DataType::None;
  }
  return DataType::None;
}

}  // namespace javaflow::net
