// On-chip network message model (paper §6.1, Figures 14-16).
//
// Serial messages ride the two ordered networks (forward/down and
// reverse/up); mesh messages carry producer->consumer DataFlow operands;
// ring messages reach the Memory subsystem and the GPP.
#pragma once

#include <cstdint>
#include <string_view>

#include "bytecode/method.hpp"

namespace javaflow::net {

// Figure 14 — network command values. The token commands double as the
// execution-time token kinds (§6.3).
enum class Command : std::uint8_t {
  // Instruction load & address resolution
  LoadInstruction,      // CMD_LOAD_INSTRUCTION
  UnloadInstruction,    // CMD_UNLOAD_INSTRUCTION
  SendAddressesDown,    // CMD_SEND_ADDRESSES_DOWN
  SendNeedsUp,          // CMD_SEND_NEEDS_UP
  AddressToken,         // source linear address announcement
  NeedRequest,          // a pop's request for a producer
  // Execution token bundle
  HeadToken,
  MemoryToken,
  RegisterToken,
  TailToken,
  // Special conditions & management (not exercised by the simulation,
  // §6.1 "Special Conditions and Management")
  ExceptionToken,
  QuieseToken,
  ResetAddressToken,
  SubsequentMessage,    // 64-bit payload continuation
};

std::string_view command_name(Command c) noexcept;

// Figure 15 — strongly-typed payload tag. Run-time validation of these
// tags is what lets the fabric raise type-mismatch exceptions.
enum class DataType : std::uint8_t { None, Int, Long, Float, Double, Ref };

DataType data_type_for(bytecode::ValueType t) noexcept;

// Sentinels for the serial `toLinearAddress` field (Figure 16): most
// messages address "the next instruction" or, during needs-up resolution,
// "the previous instruction".
inline constexpr std::int32_t kToNext = -1;
inline constexpr std::int32_t kToPrevious = -2;

// Figure 16 — serial message. `instance_id` tags the
// Thread-Class-Method-Instance so only the owning method's nodes react.
struct SerialMessage {
  Command cmd = Command::HeadToken;
  std::int32_t to_linear = kToNext;
  std::int32_t from_linear = -1;
  std::int32_t instance_id = 0;
  DataType type = DataType::None;
  std::int32_t reg = -1;       // REGISTER_TOKEN register number
  std::int64_t payload = 0;    // data / mesh address / memory order number
  std::uint8_t side = 0;       // NeedRequest: consumer side
  std::uint8_t branch_id = 0;  // NeedRequest: path tag at merges
};

// Mesh (DataFlow) operand transfer. Producer and consumer are identified
// by their fabric (x, y, p) addresses — flattened to a chain slot index —
// plus the consumer side the operand lands in.
struct MeshMessage {
  std::int32_t from_slot = -1;
  std::int32_t to_slot = -1;
  std::int32_t instance_id = 0;
  std::uint8_t side = 1;
  DataType type = DataType::None;
  std::int64_t data = 0;
};

// Ring transaction kinds (Memory / GPP interface, Figure 19).
enum class RingService : std::uint8_t {
  MemoryRead,
  MemoryWrite,
  ConstantRead,   // unordered Method Area constant access
  GppService,     // calls, object services, exceptions
};

std::string_view ring_service_name(RingService s) noexcept;

struct RingMessage {
  RingService service = RingService::MemoryRead;
  std::int32_t slot = -1;        // requesting fabric slot
  std::int32_t instance_id = 0;
  std::int64_t order_tag = 0;    // MEMORY_TOKEN sequence number
};

}  // namespace javaflow::net
