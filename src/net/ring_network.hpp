// Memory / GPP ring networks (paper §6.1, Figure 19).
//
// Selected (storage/control) Instruction Nodes interface to high-speed
// rings that reach the Memory subsystem and the controlling General
// Purpose Processor. The paper leaves exact latencies as design-dependent
// constants (Figure 25 "service times ... assumed to be constant"); the
// values here are the reproduction's documented assumptions (DESIGN.md)
// and apply uniformly to every configuration, so Figure-of-Merit ratios
// are insensitive to them.
#pragma once

#include <cstdint>

#include "net/message.hpp"

namespace javaflow::net {

struct RingLatencies {
  // Round-trip service times in mesh cycles. The paper calls its own
  // memory assumptions "optimistic" (§7.3 Detailed Assumptions): a fast
  // ring to a near memory; these values are deliberately small so network
  // and node effects — the paper's subject — dominate the comparison.
  std::int64_t memory_read = 4;
  std::int64_t memory_write = 4;   // posted; the node does not stall
  std::int64_t constant_read = 4;  // unordered Method Area access
  std::int64_t gpp_service = 12;   // calls, object services
};

class RingNetwork {
 public:
  explicit RingNetwork(RingLatencies latencies = RingLatencies{})
      : latencies_(latencies) {}

  std::int64_t service_mesh_cycles(RingService s) const noexcept {
    switch (s) {
      case RingService::MemoryRead: return latencies_.memory_read;
      case RingService::MemoryWrite: return latencies_.memory_write;
      case RingService::ConstantRead: return latencies_.constant_read;
      case RingService::GppService: return latencies_.gpp_service;
    }
    return latencies_.memory_read;
  }

  // True if the node must stall in `waitingForService` until the reply
  // returns (reads and GPP services); writes are posted (§6.3 Storage).
  static bool blocking(RingService s) noexcept {
    return s != RingService::MemoryWrite;
  }

  void record_request(RingService s) noexcept {
    ++requests_[static_cast<std::size_t>(s)];
  }
  std::uint64_t requests(RingService s) const noexcept {
    return requests_[static_cast<std::size_t>(s)];
  }

  const RingLatencies& latencies() const noexcept { return latencies_; }

 private:
  RingLatencies latencies_;
  std::uint64_t requests_[4] = {0, 0, 0, 0};
};

}  // namespace javaflow::net
