// The forward/reverse ordered Serial Network (paper §6.1, Figure 17).
//
// Topologically a chain threading every Instruction Node slot in fabric
// order. Messages move one chain slot per serial clock; the only routing
// decision is "next node in the linear sequence" (or previous, on the
// reverse network), which is what lets serial transfers run several times
// faster than mesh transfers (Table 15 configurations).
#pragma once

#include <cstdint>

namespace javaflow::net {

class SerialNetwork {
 public:
  explicit SerialNetwork(std::int32_t num_slots) : num_slots_(num_slots) {}

  std::int32_t num_slots() const noexcept { return num_slots_; }

  // Hop count between two chain slots (either direction: the forward and
  // reverse networks are symmetric).
  std::int64_t hops(std::int32_t from_slot, std::int32_t to_slot) const {
    const std::int64_t d = std::int64_t{to_slot} - from_slot;
    return d >= 0 ? d : -d;
  }

  // Transit time in serial ticks; the Baseline configuration collapses
  // the network (hop cost 0 — "all serial traffic is moved before the
  // next mesh clock", Table 15).
  std::int64_t transit_ticks(std::int32_t from_slot, std::int32_t to_slot,
                             bool collapsed) const {
    return collapsed ? 0 : hops(from_slot, to_slot);
  }

  void record_message(std::int64_t hop_count) noexcept {
    ++messages_;
    total_hops_ += hop_count;
  }
  std::uint64_t messages() const noexcept { return messages_; }
  std::uint64_t total_hops() const noexcept { return total_hops_; }

 private:
  std::int32_t num_slots_;
  std::uint64_t messages_ = 0;
  std::uint64_t total_hops_ = 0;
};

}  // namespace javaflow::net
