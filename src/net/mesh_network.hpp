// The DataFlow mesh network (paper §6.1, Figure 18).
//
// Chain slots map to (x, y) grid coordinates with a serpentine
// (boustrophedon) layout of the configured width, compressing the linear
// method into 2-D so average producer->consumer arcs stay short (the
// "10 wide node structure" design assumption, §7.2). X-Y routing implies
// Manhattan-distance transfer times with no deadlocks; a transfer costs
// one mesh cycle per hop, minimum one cycle.
#pragma once

#include <cstdint>

namespace javaflow::net {

struct Coord {
  std::int32_t x = 0;
  std::int32_t y = 0;
};

class MeshNetwork {
 public:
  explicit MeshNetwork(std::int32_t width) : width_(width) {}

  std::int32_t width() const noexcept { return width_; }

  Coord coord_of(std::int32_t slot) const noexcept {
    const std::int32_t y = slot / width_;
    std::int32_t x = slot % width_;
    if ((y & 1) != 0) x = width_ - 1 - x;  // serpentine rows
    return Coord{x, y};
  }

  // Manhattan distance in mesh hops; a message to the local node still
  // takes one router traversal.
  std::int64_t distance(std::int32_t from_slot, std::int32_t to_slot) const {
    const Coord a = coord_of(from_slot);
    const Coord b = coord_of(to_slot);
    const std::int64_t d =
        std::int64_t{a.x > b.x ? a.x - b.x : b.x - a.x} +
        std::int64_t{a.y > b.y ? a.y - b.y : b.y - a.y};
    return d > 0 ? d : 1;
  }

  // Transfer time in mesh cycles. The Baseline collapses all distances to
  // a single cycle (Table 15: "dataflow distance is 1").
  std::int64_t transit_mesh_cycles(std::int32_t from_slot,
                                   std::int32_t to_slot,
                                   bool collapsed) const {
    return collapsed ? 1 : distance(from_slot, to_slot);
  }

  // Inverse of coord_of: the chain slot sitting at a grid coordinate.
  std::int32_t slot_of(Coord c) const noexcept {
    const std::int32_t x = (c.y & 1) != 0 ? width_ - 1 - c.x : c.x;
    return c.y * width_ + x;
  }

  // Walks the X-Y route (x first, then y) between two slots, invoking
  // fn(link_source_slot, dx, dy) for every link traversed, where exactly
  // one of dx/dy is ±1. Used by the telemetry layer for per-link
  // utilization accounting; routing itself stays latency-only.
  template <typename Fn>
  void for_each_route_link(std::int32_t from_slot, std::int32_t to_slot,
                           Fn&& fn) const {
    Coord cur = coord_of(from_slot);
    const Coord dst = coord_of(to_slot);
    while (cur.x != dst.x) {
      const std::int32_t step = dst.x > cur.x ? 1 : -1;
      fn(slot_of(cur), step, 0);
      cur.x += step;
    }
    while (cur.y != dst.y) {
      const std::int32_t step = dst.y > cur.y ? 1 : -1;
      fn(slot_of(cur), 0, step);
      cur.y += step;
    }
  }

  void record_message(std::int64_t hop_count) noexcept {
    ++messages_;
    total_hops_ += hop_count;
  }
  std::uint64_t messages() const noexcept { return messages_; }
  std::uint64_t total_hops() const noexcept { return total_hops_; }

 private:
  std::int32_t width_;
  std::uint64_t messages_ = 0;
  std::uint64_t total_hops_ = 0;
};

}  // namespace javaflow::net
