// LZW compress/decompress kernels — analogues of the SPEC compress
// benchmark (Unix compress derivative). The same kernel builder is
// instantiated twice under different class prefixes for the SpecJvm2008
// "compress" and SpecJvm98 "_201_compress" analogues, mirroring the two
// closely-related SPEC programs (paper Tables 3-4 list both).
//
// Hot methods reproduced: Compressor.compress, Compressor.output,
// Decompressor.decompress, CRC32.update, Input_Buffer-style getbyte.
#include <stdexcept>
#include <string>

#include "bytecode/assembler.hpp"
#include "workloads/workloads.hpp"

namespace javaflow::workloads {
namespace {

using bytecode::Assembler;
using bytecode::ClassDef;
using bytecode::Op;
using bytecode::Program;
using bytecode::ValueType;
using jvm::Interpreter;
using jvm::Ref;
using jvm::Value;

constexpr int kHashSize = 8192;
constexpr int kHashMask = kHashSize - 1;
constexpr int kMaxCodes = 4096;
constexpr int kCodeBits = 12;

struct Names {
  std::string comp;    // Compressor class
  std::string decomp;  // Decompressor class
  std::string crc;     // CRC32 class
  std::string bm;      // benchmark tag
};

void build_compressor(Program& p, const Names& n) {
  p.classes[n.comp] = ClassDef{
      n.comp,
      {{"inbuf", ValueType::Ref},
       {"inpos", ValueType::Int},
       {"outbuf", ValueType::Ref},
       {"outcnt", ValueType::Int},
       {"bitbuf", ValueType::Int},
       {"bitcnt", ValueType::Int},
       {"htab", ValueType::Ref},
       {"codetab", ValueType::Ref},
       {"free_ent", ValueType::Int}},
      {}};

  {
    // void init(byte[] input): allocate tables, reset state.
    Assembler a(p, n.comp + ".init(A)V", n.bm);
    a.instance().args({ValueType::Ref, ValueType::Ref})
        .returns(ValueType::Void);
    const int kThis = 0, kIn = 1, kK = 2;
    a.aload(kThis).aload(kIn).putfield(n.comp, "inbuf", ValueType::Ref);
    a.aload(kThis).iconst(0).putfield(n.comp, "inpos", ValueType::Int);
    a.aload(kThis);
    a.aload(kIn).op(Op::arraylength).iconst(2).op(Op::imul).iconst(64)
        .op(Op::iadd);
    a.newarray(ValueType::Int);
    a.putfield(n.comp, "outbuf", ValueType::Ref);
    a.aload(kThis).iconst(0).putfield(n.comp, "outcnt", ValueType::Int);
    a.aload(kThis).iconst(0).putfield(n.comp, "bitbuf", ValueType::Int);
    a.aload(kThis).iconst(0).putfield(n.comp, "bitcnt", ValueType::Int);
    a.aload(kThis).iconst(kHashSize).newarray(ValueType::Int)
        .putfield(n.comp, "htab", ValueType::Ref);
    a.aload(kThis).iconst(kHashSize).newarray(ValueType::Int)
        .putfield(n.comp, "codetab", ValueType::Ref);
    a.aload(kThis).iconst(256).putfield(n.comp, "free_ent", ValueType::Int);
    // htab[k] = -1 for all k
    a.iconst(0).istore(kK);
    auto head = a.new_label(), done = a.new_label();
    a.bind(head);
    a.iload(kK).iconst(kHashSize).if_icmpge(done);
    a.aload(kThis).getfield(n.comp, "htab", ValueType::Ref);
    a.iload(kK).iconst(-1).op(Op::iastore);
    a.iinc(kK, 1);
    a.goto_(head);
    a.bind(done);
    a.op(Op::return_);
    p.methods.push_back(a.build());
  }
  {
    // int getbyte(): return inpos < inbuf.length ? inbuf[inpos++]&0xff : -1
    Assembler a(p, n.comp + ".getbyte()I", n.bm);
    a.instance().args({ValueType::Ref}).returns(ValueType::Int);
    const int kThis = 0, kPos = 1;
    a.aload(kThis).getfield(n.comp, "inpos", ValueType::Int).istore(kPos);
    auto have = a.new_label();
    a.iload(kPos);
    a.aload(kThis).getfield(n.comp, "inbuf", ValueType::Ref)
        .op(Op::arraylength);
    a.if_icmplt(have);
    a.iconst(-1).op(Op::ireturn);
    a.bind(have);
    a.aload(kThis).iload(kPos).iconst(1).op(Op::iadd)
        .putfield(n.comp, "inpos", ValueType::Int);
    a.aload(kThis).getfield(n.comp, "inbuf", ValueType::Ref);
    a.iload(kPos).op(Op::iaload);
    a.iconst(255).op(Op::iand);
    a.op(Op::ireturn);
    p.methods.push_back(a.build());
  }
  {
    // void output(int code): pack 12 bits, flush whole bytes.
    Assembler a(p, n.comp + ".output(I)V", n.bm);
    a.instance().args({ValueType::Ref, ValueType::Int})
        .returns(ValueType::Void);
    const int kThis = 0, kCode = 1, kBuf = 2, kCnt = 3;
    // bitbuf |= (code & 0xfff) << bitcnt
    a.aload(kThis);
    a.aload(kThis).getfield(n.comp, "bitbuf", ValueType::Int);
    a.iload(kCode).iconst(kMaxCodes - 1).op(Op::iand);
    a.aload(kThis).getfield(n.comp, "bitcnt", ValueType::Int);
    a.op(Op::ishl).op(Op::ior);
    a.putfield(n.comp, "bitbuf", ValueType::Int);
    // bitcnt += 12
    a.aload(kThis);
    a.aload(kThis).getfield(n.comp, "bitcnt", ValueType::Int);
    a.iconst(kCodeBits).op(Op::iadd);
    a.putfield(n.comp, "bitcnt", ValueType::Int);
    // while (bitcnt >= 8) emit low byte
    auto head = a.new_label(), done = a.new_label();
    a.bind(head);
    a.aload(kThis).getfield(n.comp, "bitcnt", ValueType::Int);
    a.iconst(8).if_icmplt(done);
    a.aload(kThis).getfield(n.comp, "outbuf", ValueType::Ref).astore(kBuf);
    a.aload(kThis).getfield(n.comp, "outcnt", ValueType::Int).istore(kCnt);
    a.aload(kBuf).iload(kCnt);
    a.aload(kThis).getfield(n.comp, "bitbuf", ValueType::Int);
    a.iconst(255).op(Op::iand);
    a.op(Op::iastore);
    a.aload(kThis).iload(kCnt).iconst(1).op(Op::iadd)
        .putfield(n.comp, "outcnt", ValueType::Int);
    a.aload(kThis);
    a.aload(kThis).getfield(n.comp, "bitbuf", ValueType::Int);
    a.iconst(8).op(Op::iushr);
    a.putfield(n.comp, "bitbuf", ValueType::Int);
    a.aload(kThis);
    a.aload(kThis).getfield(n.comp, "bitcnt", ValueType::Int);
    a.iconst(8).op(Op::isub);
    a.putfield(n.comp, "bitcnt", ValueType::Int);
    a.goto_(head);
    a.bind(done);
    a.op(Op::return_);
    p.methods.push_back(a.build());
  }
  {
    // void flush(): pad the final partial byte.
    Assembler a(p, n.comp + ".flush()V", n.bm);
    a.instance().args({ValueType::Ref}).returns(ValueType::Void);
    const int kThis = 0;
    auto empty = a.new_label();
    a.aload(kThis).getfield(n.comp, "bitcnt", ValueType::Int);
    a.ifle(empty);
    a.aload(kThis).getfield(n.comp, "outbuf", ValueType::Ref);
    a.aload(kThis).getfield(n.comp, "outcnt", ValueType::Int);
    a.aload(kThis).getfield(n.comp, "bitbuf", ValueType::Int);
    a.iconst(255).op(Op::iand);
    a.op(Op::iastore);
    a.aload(kThis);
    a.aload(kThis).getfield(n.comp, "outcnt", ValueType::Int);
    a.iconst(1).op(Op::iadd);
    a.putfield(n.comp, "outcnt", ValueType::Int);
    a.aload(kThis).iconst(0).putfield(n.comp, "bitcnt", ValueType::Int);
    a.aload(kThis).iconst(0).putfield(n.comp, "bitbuf", ValueType::Int);
    a.bind(empty);
    a.op(Op::return_);
    p.methods.push_back(a.build());
  }
  {
    // void compress(): LZW with linear-probed hash table.
    Assembler a(p, n.comp + ".compress()V", n.bm);
    a.instance().args({ValueType::Ref}).returns(ValueType::Void);
    const int kThis = 0, kEnt = 1, kC = 2, kFcode = 3, kI = 4, kHtab = 5;
    const int kFree = 6;
    // ent = getbyte(); if (ent == -1) return;
    a.aload(kThis);
    a.invokevirtual(n.comp + ".getbyte()I", 1, ValueType::Int);
    a.istore(kEnt);
    auto nonempty = a.new_label();
    a.iload(kEnt).iconst(-1).if_icmpne(nonempty);
    a.op(Op::return_);
    a.bind(nonempty);
    // while ((c = getbyte()) != -1)
    auto loop = a.new_label(), done = a.new_label();
    a.bind(loop);
    a.aload(kThis);
    a.invokevirtual(n.comp + ".getbyte()I", 1, ValueType::Int);
    a.istore(kC);
    a.iload(kC).iconst(-1).if_icmpeq(done);
    //   fcode = (c << 12) + ent
    a.iload(kC).iconst(kCodeBits).op(Op::ishl).iload(kEnt).op(Op::iadd)
        .istore(kFcode);
    //   i = (fcode * 0x9E3779B9) >>> 19   (Fibonacci hash into 2^13 slots)
    a.iload(kFcode).iconst(static_cast<std::int32_t>(0x9E3779B9));
    a.op(Op::imul).iconst(19).op(Op::iushr).istore(kI);
    a.aload(kThis).getfield(n.comp, "htab", ValueType::Ref).astore(kHtab);
    //   probe:
    auto probe = a.new_label(), miss = a.new_label(), next_sym = a.new_label();
    a.bind(probe);
    a.aload(kHtab).iload(kI).op(Op::iaload).iconst(-1).if_icmpeq(miss);
    auto not_hit = a.new_label();
    a.aload(kHtab).iload(kI).op(Op::iaload).iload(kFcode)
        .if_icmpne(not_hit);
    //     hit: ent = codetab[i]; continue outer loop
    a.aload(kThis).getfield(n.comp, "codetab", ValueType::Ref);
    a.iload(kI).op(Op::iaload).istore(kEnt);
    a.goto_(next_sym);
    a.bind(not_hit);
    a.iload(kI).iconst(1).op(Op::iadd).iconst(kHashMask).op(Op::iand)
        .istore(kI);
    a.goto_(probe);
    a.bind(miss);
    //   output(ent)
    a.aload(kThis).iload(kEnt);
    a.invokevirtual(n.comp + ".output(I)V", 2, ValueType::Void);
    //   if (free_ent < kMaxCodes) { codetab[i]=free_ent++; htab[i]=fcode; }
    a.aload(kThis).getfield(n.comp, "free_ent", ValueType::Int).istore(kFree);
    auto table_full = a.new_label();
    a.iload(kFree).iconst(kMaxCodes).if_icmpge(table_full);
    a.aload(kThis).getfield(n.comp, "codetab", ValueType::Ref);
    a.iload(kI).iload(kFree).op(Op::iastore);
    a.aload(kHtab).iload(kI).iload(kFcode).op(Op::iastore);
    a.aload(kThis).iload(kFree).iconst(1).op(Op::iadd)
        .putfield(n.comp, "free_ent", ValueType::Int);
    a.bind(table_full);
    //   ent = c
    a.iload(kC).istore(kEnt);
    a.bind(next_sym);
    a.goto_(loop);
    a.bind(done);
    // output(ent); flush();
    a.aload(kThis).iload(kEnt);
    a.invokevirtual(n.comp + ".output(I)V", 2, ValueType::Void);
    a.aload(kThis);
    a.invokevirtual(n.comp + ".flush()V", 1, ValueType::Void);
    a.op(Op::return_);
    p.methods.push_back(a.build());
  }
}

void build_decompressor(Program& p, const Names& n) {
  p.classes[n.decomp] = ClassDef{
      n.decomp,
      {{"inbuf", ValueType::Ref},
       {"inpos", ValueType::Int},
       {"incnt", ValueType::Int},
       {"bitbuf", ValueType::Int},
       {"bitcnt", ValueType::Int},
       {"prefix", ValueType::Ref},
       {"suffix", ValueType::Ref},
       {"destack", ValueType::Ref},
       {"outbuf", ValueType::Ref},
       {"outcnt", ValueType::Int},
       {"limit", ValueType::Int},
       {"free_ent", ValueType::Int}},
      {}};

  {
    // void init(int[] compressed, int incnt, int limit)
    Assembler a(p, n.decomp + ".init(AII)V", n.bm);
    a.instance()
        .args({ValueType::Ref, ValueType::Ref, ValueType::Int,
               ValueType::Int})
        .returns(ValueType::Void);
    const int kThis = 0, kIn = 1, kCnt = 2, kLimit = 3;
    a.aload(kThis).aload(kIn).putfield(n.decomp, "inbuf", ValueType::Ref);
    a.aload(kThis).iload(kCnt).putfield(n.decomp, "incnt", ValueType::Int);
    a.aload(kThis).iconst(0).putfield(n.decomp, "inpos", ValueType::Int);
    a.aload(kThis).iconst(0).putfield(n.decomp, "bitbuf", ValueType::Int);
    a.aload(kThis).iconst(0).putfield(n.decomp, "bitcnt", ValueType::Int);
    a.aload(kThis).iconst(kMaxCodes).newarray(ValueType::Int)
        .putfield(n.decomp, "prefix", ValueType::Ref);
    a.aload(kThis).iconst(kMaxCodes).newarray(ValueType::Int)
        .putfield(n.decomp, "suffix", ValueType::Ref);
    a.aload(kThis).iconst(kMaxCodes).newarray(ValueType::Int)
        .putfield(n.decomp, "destack", ValueType::Ref);
    a.aload(kThis).iload(kLimit).newarray(ValueType::Int)
        .putfield(n.decomp, "outbuf", ValueType::Ref);
    a.aload(kThis).iconst(0).putfield(n.decomp, "outcnt", ValueType::Int);
    a.aload(kThis).iload(kLimit).putfield(n.decomp, "limit", ValueType::Int);
    a.aload(kThis).iconst(256).putfield(n.decomp, "free_ent",
                                        ValueType::Int);
    a.op(Op::return_);
    p.methods.push_back(a.build());
  }
  {
    // int getcode(): read 12 bits; -1 when the input is exhausted.
    Assembler a(p, n.decomp + ".getcode()I", n.bm);
    a.instance().args({ValueType::Ref}).returns(ValueType::Int);
    const int kThis = 0, kCode = 1;
    // while (bitcnt < 12) { if (inpos >= incnt) return -1;
    //                       bitbuf |= (inbuf[inpos++]&0xff) << bitcnt;
    //                       bitcnt += 8; }
    auto fill = a.new_label(), ready = a.new_label();
    a.bind(fill);
    a.aload(kThis).getfield(n.decomp, "bitcnt", ValueType::Int);
    a.iconst(kCodeBits).if_icmpge(ready);
    auto have = a.new_label();
    a.aload(kThis).getfield(n.decomp, "inpos", ValueType::Int);
    a.aload(kThis).getfield(n.decomp, "incnt", ValueType::Int);
    a.if_icmplt(have);
    a.iconst(-1).op(Op::ireturn);
    a.bind(have);
    a.aload(kThis);
    a.aload(kThis).getfield(n.decomp, "bitbuf", ValueType::Int);
    a.aload(kThis).getfield(n.decomp, "inbuf", ValueType::Ref);
    a.aload(kThis).getfield(n.decomp, "inpos", ValueType::Int);
    a.op(Op::iaload).iconst(255).op(Op::iand);
    a.aload(kThis).getfield(n.decomp, "bitcnt", ValueType::Int);
    a.op(Op::ishl).op(Op::ior);
    a.putfield(n.decomp, "bitbuf", ValueType::Int);
    a.aload(kThis);
    a.aload(kThis).getfield(n.decomp, "inpos", ValueType::Int);
    a.iconst(1).op(Op::iadd);
    a.putfield(n.decomp, "inpos", ValueType::Int);
    a.aload(kThis);
    a.aload(kThis).getfield(n.decomp, "bitcnt", ValueType::Int);
    a.iconst(8).op(Op::iadd);
    a.putfield(n.decomp, "bitcnt", ValueType::Int);
    a.goto_(fill);
    a.bind(ready);
    // code = bitbuf & 0xfff; bitbuf >>>= 12; bitcnt -= 12; return code;
    a.aload(kThis).getfield(n.decomp, "bitbuf", ValueType::Int);
    a.iconst(kMaxCodes - 1).op(Op::iand).istore(kCode);
    a.aload(kThis);
    a.aload(kThis).getfield(n.decomp, "bitbuf", ValueType::Int);
    a.iconst(kCodeBits).op(Op::iushr);
    a.putfield(n.decomp, "bitbuf", ValueType::Int);
    a.aload(kThis);
    a.aload(kThis).getfield(n.decomp, "bitcnt", ValueType::Int);
    a.iconst(kCodeBits).op(Op::isub);
    a.putfield(n.decomp, "bitcnt", ValueType::Int);
    a.iload(kCode).op(Op::ireturn);
    p.methods.push_back(a.build());
  }
  {
    // void putbyte(int b)
    Assembler a(p, n.decomp + ".putbyte(I)V", n.bm);
    a.instance().args({ValueType::Ref, ValueType::Int})
        .returns(ValueType::Void);
    const int kThis = 0, kB = 1;
    a.aload(kThis).getfield(n.decomp, "outbuf", ValueType::Ref);
    a.aload(kThis).getfield(n.decomp, "outcnt", ValueType::Int);
    a.iload(kB).op(Op::iastore);
    a.aload(kThis);
    a.aload(kThis).getfield(n.decomp, "outcnt", ValueType::Int);
    a.iconst(1).op(Op::iadd);
    a.putfield(n.decomp, "outcnt", ValueType::Int);
    a.op(Op::return_);
    p.methods.push_back(a.build());
  }
  {
    // void decompress(): standard LZW decode with an explicit stack.
    Assembler a(p, n.decomp + ".decompress()V", n.bm);
    a.instance().args({ValueType::Ref}).returns(ValueType::Void);
    const int kThis = 0, kFinchar = 1, kOldcode = 2, kCode = 3, kIncode = 4;
    const int kSp = 5, kStack = 6, kFree = 7;
    // finchar = getcode(); if (finchar == -1) return; putbyte(finchar);
    a.aload(kThis);
    a.invokevirtual(n.decomp + ".getcode()I", 1, ValueType::Int);
    a.istore(kFinchar);
    auto nonempty = a.new_label();
    a.iload(kFinchar).iconst(-1).if_icmpne(nonempty);
    a.op(Op::return_);
    a.bind(nonempty);
    a.aload(kThis).iload(kFinchar);
    a.invokevirtual(n.decomp + ".putbyte(I)V", 2, ValueType::Void);
    a.iload(kFinchar).istore(kOldcode);
    a.aload(kThis).getfield(n.decomp, "destack", ValueType::Ref)
        .astore(kStack);
    // while (outcnt < limit && (code = getcode()) != -1)
    auto loop = a.new_label(), done = a.new_label();
    a.bind(loop);
    a.aload(kThis).getfield(n.decomp, "outcnt", ValueType::Int);
    a.aload(kThis).getfield(n.decomp, "limit", ValueType::Int);
    a.if_icmpge(done);
    a.aload(kThis);
    a.invokevirtual(n.decomp + ".getcode()I", 1, ValueType::Int);
    a.istore(kCode);
    a.iload(kCode).iconst(-1).if_icmpeq(done);
    a.iload(kCode).istore(kIncode);
    a.iconst(0).istore(kSp);
    //   if (code >= free_ent) { stack[sp++] = finchar; code = oldcode; }
    auto known = a.new_label();
    a.iload(kCode);
    a.aload(kThis).getfield(n.decomp, "free_ent", ValueType::Int);
    a.if_icmplt(known);
    a.aload(kStack).iload(kSp).iload(kFinchar).op(Op::iastore);
    a.iinc(kSp, 1);
    a.iload(kOldcode).istore(kCode);
    a.bind(known);
    //   while (code >= 256) { stack[sp++] = suffix[code]; code = prefix[code]; }
    auto expand = a.new_label(), expanded = a.new_label();
    a.bind(expand);
    a.iload(kCode).iconst(256).if_icmplt(expanded);
    a.aload(kStack).iload(kSp);
    a.aload(kThis).getfield(n.decomp, "suffix", ValueType::Ref);
    a.iload(kCode).op(Op::iaload);
    a.op(Op::iastore);
    a.iinc(kSp, 1);
    a.aload(kThis).getfield(n.decomp, "prefix", ValueType::Ref);
    a.iload(kCode).op(Op::iaload).istore(kCode);
    a.goto_(expand);
    a.bind(expanded);
    //   finchar = code; putbyte(finchar);
    a.iload(kCode).istore(kFinchar);
    a.aload(kThis).iload(kFinchar);
    a.invokevirtual(n.decomp + ".putbyte(I)V", 2, ValueType::Void);
    //   while (sp > 0) putbyte(stack[--sp]);
    auto drain = a.new_label(), drained = a.new_label();
    a.bind(drain);
    a.iload(kSp).ifle(drained);
    a.iinc(kSp, -1);
    a.aload(kThis);
    a.aload(kStack).iload(kSp).op(Op::iaload);
    a.invokevirtual(n.decomp + ".putbyte(I)V", 2, ValueType::Void);
    a.goto_(drain);
    a.bind(drained);
    //   if (free_ent < kMaxCodes) { prefix[f]=oldcode; suffix[f]=finchar;
    //                               free_ent++; }
    a.aload(kThis).getfield(n.decomp, "free_ent", ValueType::Int)
        .istore(kFree);
    auto full = a.new_label();
    a.iload(kFree).iconst(kMaxCodes).if_icmpge(full);
    a.aload(kThis).getfield(n.decomp, "prefix", ValueType::Ref);
    a.iload(kFree).iload(kOldcode).op(Op::iastore);
    a.aload(kThis).getfield(n.decomp, "suffix", ValueType::Ref);
    a.iload(kFree).iload(kFinchar).op(Op::iastore);
    a.aload(kThis).iload(kFree).iconst(1).op(Op::iadd)
        .putfield(n.decomp, "free_ent", ValueType::Int);
    a.bind(full);
    //   oldcode = incode;
    a.iload(kIncode).istore(kOldcode);
    a.goto_(loop);
    a.bind(done);
    a.op(Op::return_);
    p.methods.push_back(a.build());
  }
}

void build_crc(Program& p, const Names& n) {
  p.classes[n.crc] = ClassDef{n.crc, {{"crc", ValueType::Int}}, {}};
  // void update(int[] b): bitwise CRC-32 (poly 0xEDB88320).
  Assembler a(p, n.crc + ".update(A)V", n.bm);
  a.instance().args({ValueType::Ref, ValueType::Ref})
      .returns(ValueType::Void);
  const int kThis = 0, kB = 1, kC = 2, kK = 3, kI = 4;
  a.aload(kThis).getfield(n.crc, "crc", ValueType::Int).istore(kC);
  a.iconst(0).istore(kK);
  auto khead = a.new_label(), kdone = a.new_label();
  a.bind(khead);
  a.iload(kK).aload(kB).op(Op::arraylength).if_icmpge(kdone);
  a.iload(kC);
  a.aload(kB).iload(kK).op(Op::iaload).iconst(255).op(Op::iand);
  a.op(Op::ixor).istore(kC);
  a.iconst(0).istore(kI);
  auto ihead = a.new_label(), idone = a.new_label();
  a.bind(ihead);
  a.iload(kI).iconst(8).if_icmpge(idone);
  auto even = a.new_label(), joined = a.new_label();
  a.iload(kC).iconst(1).op(Op::iand).ifeq(even);
  a.iload(kC).iconst(1).op(Op::iushr);
  a.iconst(static_cast<std::int32_t>(0xEDB88320));
  a.op(Op::ixor).istore(kC);
  a.goto_(joined);
  a.bind(even);
  a.iload(kC).iconst(1).op(Op::iushr).istore(kC);
  a.bind(joined);
  a.iinc(kI, 1);
  a.goto_(ihead);
  a.bind(idone);
  a.iinc(kK, 1);
  a.goto_(khead);
  a.bind(kdone);
  a.aload(kThis).iload(kC).putfield(n.crc, "crc", ValueType::Int);
  a.op(Op::return_);
  p.methods.push_back(a.build());
}

// ---- driver ----------------------------------------------------------------

void expect(bool ok, const char* what) {
  if (!ok) {
    throw std::runtime_error(std::string("compress check failed: ") + what);
  }
}

// Compressible pseudo-text: repeating word-like patterns with drift.
std::vector<int> make_input(int size) {
  std::vector<int> data;
  data.reserve(static_cast<std::size_t>(size));
  unsigned s = 12345;
  for (int k = 0; k < size; ++k) {
    s = s * 1103515245u + 12345u;
    const int word = static_cast<int>((s >> 16) % 16);
    data.push_back('a' + (word + k / 97) % 26);
  }
  return data;
}

std::function<void(Interpreter&)> make_driver(Names n, int input_size) {
  return [n, input_size](Interpreter& vm) {
    auto& h = vm.heap();
    const std::vector<int> input = make_input(input_size);
    const Ref in =
        h.new_array(ValueType::Int, static_cast<std::int32_t>(input.size()));
    for (std::size_t k = 0; k < input.size(); ++k) {
      h.array_set(in, static_cast<std::int32_t>(k),
                  Value::make_int(input[k]));
    }
    // CRC of the input.
    const Ref crc = h.new_object(*vm.program().find_class(n.crc));
    vm.invoke(n.crc + ".update(A)V", {Value::make_ref(crc), Value::make_ref(in)});

    // Compress.
    const Ref comp = h.new_object(*vm.program().find_class(n.comp));
    vm.invoke(n.comp + ".init(A)V", {Value::make_ref(comp), Value::make_ref(in)});
    vm.invoke(n.comp + ".compress()V", {Value::make_ref(comp)});
    const auto comp_cls = vm.program().find_class(n.comp);
    const Ref outbuf =
        h.get_field(comp, *comp_cls->instance_slot("outbuf")).as_ref();
    const std::int32_t outcnt =
        h.get_field(comp, *comp_cls->instance_slot("outcnt")).as_int();
    expect(outcnt > 0, "no compressed output");
    expect(outcnt < static_cast<std::int32_t>(input.size()),
           "output should be smaller than compressible input");

    // Decompress and verify a byte-exact round trip.
    const Ref dec = h.new_object(*vm.program().find_class(n.decomp));
    vm.invoke(n.decomp + ".init(AII)V",
              {Value::make_ref(dec), Value::make_ref(outbuf),
               Value::make_int(outcnt),
               Value::make_int(static_cast<std::int32_t>(input.size()))});
    vm.invoke(n.decomp + ".decompress()V", {Value::make_ref(dec)});
    const auto dec_cls = vm.program().find_class(n.decomp);
    const Ref roundtrip =
        h.get_field(dec, *dec_cls->instance_slot("outbuf")).as_ref();
    const std::int32_t got =
        h.get_field(dec, *dec_cls->instance_slot("outcnt")).as_int();
    expect(got == static_cast<std::int32_t>(input.size()),
           "round-trip length");
    for (std::size_t k = 0; k < input.size(); ++k) {
      expect(h.array_get(roundtrip, static_cast<std::int32_t>(k)).as_int() ==
                 input[k],
             "round-trip bytes");
    }
  };
}

Names names_for(const std::string& prefix, const std::string& bm) {
  return Names{prefix + ".Compressor", prefix + ".Decompressor",
               prefix + ".CRC32", bm};
}

}  // namespace

std::vector<Benchmark> make_compress_benchmarks(Program& p) {
  std::vector<Benchmark> out;
  {
    const Names n = names_for("spec.benchmarks.compress", "compress");
    build_compressor(p, n);
    build_decompressor(p, n);
    build_crc(p, n);
    out.push_back({"compress",
                   "SpecJvm2008",
                   {n.comp + ".compress()V", n.crc + ".update(A)V",
                    n.decomp + ".decompress()V", n.comp + ".output(I)V",
                    n.comp + ".getbyte()I", n.decomp + ".getcode()I",
                    n.decomp + ".putbyte(I)V"},
                   make_driver(n, 6144)});
  }
  {
    const Names n =
        names_for("spec.benchmarks._201_compress", "_201_compress");
    build_compressor(p, n);
    build_decompressor(p, n);
    build_crc(p, n);
    out.push_back({"_201_compress",
                   "SpecJvm98",
                   {n.comp + ".compress()V", n.decomp + ".decompress()V",
                    n.comp + ".output(I)V", n.comp + ".getbyte()I"},
                   make_driver(n, 4096)});
  }
  return out;
}

}  // namespace javaflow::workloads
