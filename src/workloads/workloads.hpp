// Workload suite — the reproduction's stand-in for SPEC JVM98/JVM2008.
//
// Each benchmark analogue contributes hand-written ByteCode kernels named
// after the paper's hottest methods (Tables 3-4) plus a driver that runs a
// laptop-scale workload through the reference interpreter. The kernels use
// the JAVAC discipline the paper leans on (§3.6): operand stack for
// intra-block dataflow, local registers for loop-carried and inter-block
// values — which is what guarantees the "no DataFlow back-merge" property
// (Table 7).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "bytecode/method.hpp"
#include "jvm/interpreter.hpp"

namespace javaflow::workloads {

struct Benchmark {
  std::string name;   // e.g. "scimark.fft.large"
  std::string suite;  // "SpecJvm2008" or "SpecJvm98"
  std::vector<std::string> methods;  // qualified kernel names contributed
  // Runs a scaled workload; expected to validate its own results and throw
  // on a wrong answer (the drivers double as end-to-end kernel tests).
  std::function<void(jvm::Interpreter&)> run;
};

// Each factory registers its classes and methods into `program` and
// returns the benchmark descriptors. Factories are independent; a Program
// may hold any subset.
std::vector<Benchmark> make_compress_benchmarks(bytecode::Program& program);
std::vector<Benchmark> make_crypto_benchmarks(bytecode::Program& program);
std::vector<Benchmark> make_scimark_benchmarks(bytecode::Program& program);
std::vector<Benchmark> make_mpegaudio_benchmarks(bytecode::Program& program);
std::vector<Benchmark> make_jvm98_benchmarks(bytecode::Program& program);

// The full suite (all factories above).
struct Suite {
  bytecode::Program program;
  std::vector<Benchmark> benchmarks;
};
Suite make_suite();

}  // namespace javaflow::workloads
