// mpegaudio analogues — the float-DSP benchmark family.
//
// SpecJvm2008 "mpegaudio" (javazoom LayerIII decoder): dequantize_sample,
// inv_mdct, huffman_decoder, hybrid (paper Table 3).
// SpecJvm98 "_222_mpegaudio": the synthesis-filter methods q.l / q.m and
// the buffered reader lb.read (paper Table 4).
//
// The kernels are float/int loop nests with the same operational mix as
// the originals (MACs, windowing butterflies, bit-tree walks); hybrid and
// the synthesis filter are validated against host-side replicas.
#include <cmath>
#include <stdexcept>
#include <vector>

#include "bytecode/assembler.hpp"
#include "workloads/workloads.hpp"

namespace javaflow::workloads {
namespace {

using bytecode::Assembler;
using bytecode::ClassDef;
using bytecode::Op;
using bytecode::Program;
using bytecode::ValueType;
using jvm::Interpreter;
using jvm::Ref;
using jvm::Value;

const std::string kL3 = "javazoom.jl.decoder.LayerIIIDecoder";
const std::string kHuff = "javazoom.jl.decoder.huffcodetab";
const std::string kQ = "spec.benchmarks._222_mpegaudio.q";
const std::string kLb = "spec.benchmarks._222_mpegaudio.lb";

// ---- javazoom LayerIII kernels ---------------------------------------------

void build_layer3(Program& p) {
  {
    // static void dequantize_sample(float[] out, int[] in, float gain):
    //   out[k] = gain * x * cbrt-ish(x) with sign handling — the original
    //   applies a global gain and a x^(4/3) law; we use x*|x|^(1/3)
    //   approximated by two multiplies and a conditional, keeping the
    //   int->float convert + branch mix of the original.
    Assembler a(p, kL3 + ".dequantize_sample(AAF)V", "mpegaudio");
    a.args({ValueType::Ref, ValueType::Ref, ValueType::Float})
        .returns(ValueType::Void);
    const int kOut = 0, kIn = 1, kGain = 2, kK = 3, kXi = 4, kXf = 5;
    a.locals(7);
    a.iconst(0).istore(kK);
    auto head = a.new_label(), done = a.new_label();
    a.bind(head);
    a.iload(kK).aload(kIn).op(Op::arraylength).if_icmpge(done);
    a.aload(kIn).iload(kK).op(Op::iaload).istore(kXi);
    // xf = (float) xi
    a.iload(kXi).op(Op::i2f).fstore(kXf);
    // out[k] = gain * xf * xf * (xi < 0 ? -1 : 1) — keeps a per-sample
    // branch like the original's sign handling.
    auto pos = a.new_label(), join = a.new_label();
    a.iload(kXi).ifge(pos);
    a.aload(kOut).iload(kK);
    a.fload(kGain).fload(kXf).op(Op::fmul).fload(kXf).op(Op::fmul);
    a.op(Op::fneg);
    a.op(Op::fastore);
    a.goto_(join);
    a.bind(pos);
    a.aload(kOut).iload(kK);
    a.fload(kGain).fload(kXf).op(Op::fmul).fload(kXf).op(Op::fmul);
    a.op(Op::fastore);
    a.bind(join);
    a.iinc(kK, 1);
    a.goto_(head);
    a.bind(done);
    a.op(Op::return_);
    p.methods.push_back(a.build());
  }
  {
    // static void inv_mdct(float[] in, float[] out, float[] win):
    //   out[i] = sum_j in[j] * win[(i*j) % win.length] over an 18-point
    //   block — the dense MAC nest of the original IMDCT.
    Assembler a(p, kL3 + ".inv_mdct(AAA)V", "mpegaudio");
    a.args({ValueType::Ref, ValueType::Ref, ValueType::Ref})
        .returns(ValueType::Void);
    const int kIn = 0, kOut = 1, kWin = 2, kI = 3, kJ = 4, kSum = 5, kW = 6;
    a.locals(8);
    a.aload(kWin).op(Op::arraylength).istore(kW);
    a.iconst(0).istore(kI);
    auto ih = a.new_label(), id = a.new_label();
    a.bind(ih);
    a.iload(kI).aload(kOut).op(Op::arraylength).if_icmpge(id);
    a.fconst(0.0).fstore(kSum);
    a.iconst(0).istore(kJ);
    auto jh = a.new_label(), jd = a.new_label();
    a.bind(jh);
    a.iload(kJ).aload(kIn).op(Op::arraylength).if_icmpge(jd);
    a.fload(kSum);
    a.aload(kIn).iload(kJ).op(Op::faload);
    a.aload(kWin);
    a.iload(kI).iload(kJ).op(Op::imul).iload(kW).op(Op::irem);
    a.op(Op::faload);
    a.op(Op::fmul).op(Op::fadd).fstore(kSum);
    a.iinc(kJ, 1);
    a.goto_(jh);
    a.bind(jd);
    a.aload(kOut).iload(kI).fload(kSum).op(Op::fastore);
    a.iinc(kI, 1);
    a.goto_(ih);
    a.bind(id);
    a.op(Op::return_);
    p.methods.push_back(a.build());
  }
  {
    // static void hybrid(float[] prev, float[] cur):
    //   overlap-add butterflies: cur[k] += prev[k]; prev[k] = cur[k]*0.5f
    //   — the block-overlap step between IMDCT outputs.
    Assembler a(p, kL3 + ".hybrid(AA)V", "mpegaudio");
    a.args({ValueType::Ref, ValueType::Ref}).returns(ValueType::Void);
    const int kPrev = 0, kCur = 1, kK = 2;
    a.iconst(0).istore(kK);
    auto head = a.new_label(), done = a.new_label();
    a.bind(head);
    a.iload(kK).aload(kCur).op(Op::arraylength).if_icmpge(done);
    a.aload(kCur).iload(kK);
    a.aload(kCur).iload(kK).op(Op::faload);
    a.aload(kPrev).iload(kK).op(Op::faload);
    a.op(Op::fadd);
    a.op(Op::fastore);
    a.aload(kPrev).iload(kK);
    a.aload(kCur).iload(kK).op(Op::faload);
    a.fconst(0.5).op(Op::fmul);
    a.op(Op::fastore);
    a.iinc(kK, 1);
    a.goto_(head);
    a.bind(done);
    a.op(Op::return_);
    p.methods.push_back(a.build());
  }
  {
    // static int huffman_decoder(int[] tree, int[] bits, int start):
    //   walk a binary tree packed as tree[node*2 + bit]; negative entries
    //   are leaf values. Returns the decoded symbol. Mirrors the
    //   huffcodetab bit-walk of the original.
    Assembler a(p, kHuff + ".huffman_decoder(AAI)I", "mpegaudio");
    a.args({ValueType::Ref, ValueType::Ref, ValueType::Int})
        .returns(ValueType::Int);
    const int kTree = 0, kBits = 1, kPos = 2, kNode = 3, kNext = 4;
    a.iconst(0).istore(kNode);
    auto head = a.new_label();
    a.bind(head);
    // next = tree[node*2 + bits[pos]]
    a.aload(kTree);
    a.iload(kNode).iconst(2).op(Op::imul);
    a.aload(kBits).iload(kPos).op(Op::iaload);
    a.op(Op::iadd);
    a.op(Op::iaload).istore(kNext);
    a.iinc(kPos, 1);
    auto leaf = a.new_label();
    a.iload(kNext).iflt(leaf);
    a.iload(kNext).istore(kNode);
    a.goto_(head);
    a.bind(leaf);
    // return -(next + 1)
    a.iload(kNext).iconst(1).op(Op::iadd).op(Op::ineg).op(Op::ireturn);
    p.methods.push_back(a.build());
  }
}

// ---- SpecJvm98 _222_mpegaudio kernels ---------------------------------------

void build_jvm98_audio(Program& p) {
  {
    // static int l(int[] window, int[] samples, int off): 32-tap dot
    // product with saturation — the synthesis filter inner method "q.l".
    Assembler a(p, kQ + ".l(AAI)I", "_222_mpegaudio");
    a.args({ValueType::Ref, ValueType::Ref, ValueType::Int})
        .returns(ValueType::Int);
    const int kWin = 0, kSamp = 1, kOff = 2, kK = 3;
    const int kAcc = 4;  // long accumulator
    a.locals(6);
    a.lconst(0).lstore(kAcc);
    a.iconst(0).istore(kK);
    auto head = a.new_label(), done = a.new_label();
    a.bind(head);
    a.iload(kK).aload(kWin).op(Op::arraylength).if_icmpge(done);
    a.lload(kAcc);
    a.aload(kWin).iload(kK).op(Op::iaload).op(Op::i2l);
    a.aload(kSamp).iload(kOff).iload(kK).op(Op::iadd).op(Op::iaload)
        .op(Op::i2l);
    a.op(Op::lmul).op(Op::ladd).lstore(kAcc);
    a.iinc(kK, 1);
    a.goto_(head);
    a.bind(done);
    // saturate >> 16 to int16 range
    a.lload(kAcc).iconst(16).op(Op::lshr).lstore(kAcc);
    auto not_hi = a.new_label(), not_lo = a.new_label();
    a.lload(kAcc).lconst(32767).op(Op::lcmp).ifle(not_hi);
    a.iconst(32767).op(Op::ireturn);
    a.bind(not_hi);
    a.lload(kAcc).lconst(-32768).op(Op::lcmp).ifge(not_lo);
    a.iconst(-32768).op(Op::ireturn);
    a.bind(not_lo);
    a.lload(kAcc).op(Op::l2i).op(Op::ireturn);
    p.methods.push_back(a.build());
  }
  {
    // static int m(int[] v, int shift): energy fold — "q.m".
    Assembler a(p, kQ + ".m(AI)I", "_222_mpegaudio");
    a.args({ValueType::Ref, ValueType::Int}).returns(ValueType::Int);
    const int kV = 0, kShift = 1, kK = 2, kAcc = 3;
    a.iconst(0).istore(kAcc);
    a.iconst(0).istore(kK);
    auto head = a.new_label(), done = a.new_label();
    a.bind(head);
    a.iload(kK).aload(kV).op(Op::arraylength).if_icmpge(done);
    a.iload(kAcc);
    a.aload(kV).iload(kK).op(Op::iaload).iload(kShift).op(Op::ishr);
    a.op(Op::ixor);
    a.istore(kAcc);
    a.iinc(kK, 1);
    a.goto_(head);
    a.bind(done);
    a.iload(kAcc).op(Op::ireturn);
    p.methods.push_back(a.build());
  }
  {
    // static int read(int[] dst, int[] src, int srcpos, int len):
    //   bounded buffer copy, returns bytes copied — "lb.read".
    Assembler a(p, kLb + ".read(AAII)I", "_222_mpegaudio");
    a.args({ValueType::Ref, ValueType::Ref, ValueType::Int, ValueType::Int})
        .returns(ValueType::Int);
    const int kDst = 0, kSrc = 1, kPos = 2, kLen = 3, kK = 4, kN = 5;
    // n = min(len, src.length - srcpos, dst.length)
    a.iload(kLen).istore(kN);
    auto c1 = a.new_label();
    a.aload(kSrc).op(Op::arraylength).iload(kPos).op(Op::isub);
    a.iload(kN).if_icmpge(c1);
    a.aload(kSrc).op(Op::arraylength).iload(kPos).op(Op::isub).istore(kN);
    a.bind(c1);
    auto c2 = a.new_label();
    a.aload(kDst).op(Op::arraylength).iload(kN).if_icmpge(c2);
    a.aload(kDst).op(Op::arraylength).istore(kN);
    a.bind(c2);
    a.iconst(0).istore(kK);
    auto head = a.new_label(), done = a.new_label();
    a.bind(head);
    a.iload(kK).iload(kN).if_icmpge(done);
    a.aload(kDst).iload(kK);
    a.aload(kSrc).iload(kPos).iload(kK).op(Op::iadd).op(Op::iaload);
    a.op(Op::iastore);
    a.iinc(kK, 1);
    a.goto_(head);
    a.bind(done);
    a.iload(kN).op(Op::ireturn);
    p.methods.push_back(a.build());
  }
}

// ---- drivers ---------------------------------------------------------------

void expect(bool ok, const char* what) {
  if (!ok) {
    throw std::runtime_error(std::string("mpegaudio check failed: ") + what);
  }
}

void run_mpegaudio(Interpreter& vm) {
  auto& h = vm.heap();
  const int n = 192, w = 36;
  const Ref in_i = h.new_array(ValueType::Int, n);
  const Ref cur = h.new_array(ValueType::Float, n);
  const Ref prev = h.new_array(ValueType::Float, n);
  const Ref win = h.new_array(ValueType::Float, w);
  const Ref mdct_out = h.new_array(ValueType::Float, w);
  const Ref mdct_in = h.new_array(ValueType::Float, w / 2);
  unsigned s = 7;
  for (int k = 0; k < n; ++k) {
    s = s * 1664525u + 1013904223u;
    h.array_set(in_i, k, Value::make_int(static_cast<int>(s % 64) - 32));
  }
  for (int k = 0; k < w; ++k) {
    h.array_set(win, k,
                Value::make_float(std::sin(0.5 * (k + 0.5) * 3.14159 / w)));
  }
  for (int k = 0; k < w / 2; ++k) {
    h.array_set(mdct_in, k, Value::make_float(0.01F * static_cast<float>(k)));
  }
  // Huffman tree: full depth-4 binary tree, leaves hold -(symbol+1).
  const Ref tree = h.new_array(ValueType::Int, 30);
  {
    // nodes 0..6 internal; children of node i are 2i+1, 2i+2 encoded as
    // indices; leaves negative.
    const int enc[30] = {1,  2,  3,  4,  5,  6,  -1, -2, -3, -4,
                         -5, -6, -7, -8, 0,  0,  0,  0,  0,  0,
                         0,  0,  0,  0,  0,  0,  0,  0,  0,  0};
    for (int k = 0; k < 30; ++k) {
      h.array_set(tree, k, Value::make_int(enc[k]));
    }
  }
  const Ref bits = h.new_array(ValueType::Int, 64);
  for (int k = 0; k < 64; ++k) {
    h.array_set(bits, k, Value::make_int((k * 5 + 1) % 2));
  }

  std::vector<float> host_prev(static_cast<std::size_t>(n), 0.0F);
  std::vector<float> host_cur(static_cast<std::size_t>(n));
  for (int frame = 0; frame < 60; ++frame) {
    const float gain = 0.001F * static_cast<float>(frame + 1);
    vm.invoke(kL3 + ".dequantize_sample(AAF)V",
              {Value::make_ref(cur), Value::make_ref(in_i),
               Value::make_float(gain)});
    vm.invoke(kL3 + ".inv_mdct(AAA)V",
              {Value::make_ref(mdct_in), Value::make_ref(mdct_out),
               Value::make_ref(win)});
    vm.invoke(kL3 + ".hybrid(AA)V",
              {Value::make_ref(prev), Value::make_ref(cur)});
    // host replica of dequantize+hybrid for validation
    for (int k = 0; k < n; ++k) {
      const int xi = h.array_get(in_i, k).as_int();
      const auto xf = static_cast<float>(xi);
      float v = gain * xf * xf;
      if (xi < 0) v = -v;
      host_cur[static_cast<std::size_t>(k)] = v;
    }
    for (int k = 0; k < n; ++k) {
      host_cur[static_cast<std::size_t>(k)] +=
          host_prev[static_cast<std::size_t>(k)];
      host_prev[static_cast<std::size_t>(k)] =
          host_cur[static_cast<std::size_t>(k)] * 0.5F;
    }
    for (int k = 0; k < n; ++k) {
      expect(static_cast<float>(h.array_get(cur, k).as_fp()) ==
                 host_cur[static_cast<std::size_t>(k)],
             "hybrid overlap");
    }
    // decode a couple of symbols per frame
    const Value sym = vm.invoke(
        kHuff + ".huffman_decoder(AAI)I",
        {Value::make_ref(tree), Value::make_ref(bits),
         Value::make_int(frame % 32)});
    expect(sym.as_int() >= 0 && sym.as_int() < 8, "huffman symbol range");
  }
  for (int k = 0; k < w; ++k) {
    expect(std::isfinite(h.array_get(mdct_out, k).as_fp()), "mdct finite");
  }
}

void run_jvm98_audio(Interpreter& vm) {
  auto& h = vm.heap();
  const int taps = 32, buf = 1024;
  const Ref window = h.new_array(ValueType::Int, taps);
  const Ref samples = h.new_array(ValueType::Int, buf);
  const Ref dst = h.new_array(ValueType::Int, 256);
  unsigned s = 3;
  std::vector<std::int32_t> hw(taps), hs(buf);
  for (int k = 0; k < taps; ++k) {
    s = s * 1664525u + 1013904223u;
    hw[static_cast<std::size_t>(k)] = static_cast<int>(s % 8192) - 4096;
    h.array_set(window, k, Value::make_int(hw[static_cast<std::size_t>(k)]));
  }
  for (int k = 0; k < buf; ++k) {
    s = s * 1664525u + 1013904223u;
    hs[static_cast<std::size_t>(k)] = static_cast<int>(s % 65536) - 32768;
    h.array_set(samples, k, Value::make_int(hs[static_cast<std::size_t>(k)]));
  }
  for (int off = 0; off + taps <= buf; off += 3) {
    const Value r = vm.invoke(kQ + ".l(AAI)I",
                              {Value::make_ref(window),
                               Value::make_ref(samples),
                               Value::make_int(off)});
    // host replica
    std::int64_t acc = 0;
    for (int k = 0; k < taps; ++k) {
      acc += std::int64_t{hw[static_cast<std::size_t>(k)]} *
             hs[static_cast<std::size_t>(off + k)];
    }
    acc >>= 16;
    if (acc > 32767) acc = 32767;
    if (acc < -32768) acc = -32768;
    expect(r.as_int() == static_cast<std::int32_t>(acc),
           "q.l synthesis filter");
    vm.invoke(kQ + ".m(AI)I",
              {Value::make_ref(window), Value::make_int(off % 8)});
  }
  const Value copied =
      vm.invoke(kLb + ".read(AAII)I",
                {Value::make_ref(dst), Value::make_ref(samples),
                 Value::make_int(100), Value::make_int(256)});
  expect(copied.as_int() == 256, "lb.read count");
  expect(h.array_get(dst, 0).as_int() == hs[100], "lb.read content");
}

}  // namespace

std::vector<Benchmark> make_mpegaudio_benchmarks(Program& p) {
  build_layer3(p);
  build_jvm98_audio(p);
  std::vector<Benchmark> out;
  out.push_back({"mpegaudio",
                 "SpecJvm2008",
                 {kL3 + ".dequantize_sample(AAF)V", kL3 + ".inv_mdct(AAA)V",
                  kHuff + ".huffman_decoder(AAI)I", kL3 + ".hybrid(AA)V"},
                 run_mpegaudio});
  out.push_back({"_222_mpegaudio",
                 "SpecJvm98",
                 {kQ + ".l(AAI)I", kQ + ".m(AI)I", kLb + ".read(AAII)I"},
                 run_jvm98_audio});
  return out;
}

}  // namespace javaflow::workloads
