// SciMark-analogue kernels: the scientific benchmarks whose top methods
// dominate the paper's SpecJvm2008 analysis (Table 3): FFT
// transform_internal/bitreverse, LU factor, MonteCarlo integrate, SOR
// execute, SparseCompRow matmult, and the shared Random.nextDouble that
// appears in every scientific benchmark's top-4 list.
#include <cmath>
#include <stdexcept>

#include "bytecode/assembler.hpp"
#include "workloads/workloads.hpp"

namespace javaflow::workloads {
namespace {

using bytecode::Assembler;
using bytecode::ClassDef;
using bytecode::Op;
using bytecode::Program;
using bytecode::ValueType;
using jvm::Interpreter;
using jvm::Ref;
using jvm::Value;

constexpr std::int32_t kM1 = 0x7fffffff;  // 2^31 - 1 (SciMark Random m1)
constexpr double kDm1 = 1.0 / 2147483647.0;

// ---- scimark.utils.Random -------------------------------------------------
// Lagged-Fibonacci generator over a 17-entry table, exactly the SciMark
// shape: the paper's Appendix C walks through this method (Figures 27-31).
void build_random(Program& p) {
  p.classes["scimark.utils.Random"] = ClassDef{
      "scimark.utils.Random",
      {{"m", ValueType::Ref}, {"i", ValueType::Int}, {"j", ValueType::Int}},
      {}};

  {
    // void initialize(int seed):
    //   m = new int[17];
    //   int jseed = seed;
    //   for (int k = 0; k < 17; k++) {
    //     jseed = (jseed * 9069) & 0x7fffffff;
    //     m[k] = jseed;
    //   }
    //   i = 4; j = 16;
    Assembler a(p, "scimark.utils.Random.initialize(I)V",
                "scimark.monte_carlo");
    a.instance().args({ValueType::Ref, ValueType::Int})
        .returns(ValueType::Void);
    const int kThis = 0, kSeed = 1, kK = 2;
    a.aload(kThis);
    a.iconst(17).newarray(ValueType::Int);
    a.putfield("scimark.utils.Random", "m", ValueType::Ref);
    a.iconst(0).istore(kK);
    auto head = a.new_label(), done = a.new_label();
    a.bind(head);
    a.iload(kK).iconst(17).if_icmpge(done);
    a.iload(kSeed).iconst(9069).op(Op::imul).iconst(kM1).op(Op::iand)
        .istore(kSeed);
    a.aload(kThis).getfield("scimark.utils.Random", "m", ValueType::Ref);
    a.iload(kK).iload(kSeed).op(Op::iastore);
    a.iinc(kK, 1);
    a.goto_(head);
    a.bind(done);
    a.aload(kThis).iconst(4)
        .putfield("scimark.utils.Random", "i", ValueType::Int);
    a.aload(kThis).iconst(16)
        .putfield("scimark.utils.Random", "j", ValueType::Int);
    a.op(Op::return_);
    p.methods.push_back(a.build());
  }

  {
    // double nextDouble():
    //   int k = m[i] - m[j];
    //   if (k < 0) k += m1;
    //   m[j] = k;
    //   if (i == 0) i = 16; else i--;
    //   if (j == 0) j = 16; else j--;
    //   return dm1 * (double)k;
    Assembler a(p, "scimark.utils.Random.nextDouble()D",
                "scimark.monte_carlo");
    a.instance().args({ValueType::Ref}).returns(ValueType::Double);
    const int kThis = 0, kK = 1;
    a.aload(kThis).getfield("scimark.utils.Random", "m", ValueType::Ref);
    a.aload(kThis).getfield("scimark.utils.Random", "i", ValueType::Int);
    a.op(Op::iaload);
    a.aload(kThis).getfield("scimark.utils.Random", "m", ValueType::Ref);
    a.aload(kThis).getfield("scimark.utils.Random", "j", ValueType::Int);
    a.op(Op::iaload);
    a.op(Op::isub).istore(kK);
    auto nonneg = a.new_label();
    a.iload(kK).ifge(nonneg);
    a.iload(kK).iconst(kM1).op(Op::iadd).istore(kK);
    a.bind(nonneg);
    a.aload(kThis).getfield("scimark.utils.Random", "m", ValueType::Ref);
    a.aload(kThis).getfield("scimark.utils.Random", "j", ValueType::Int);
    a.iload(kK).op(Op::iastore);
    auto idec = a.new_label(), iend = a.new_label();
    a.aload(kThis).getfield("scimark.utils.Random", "i", ValueType::Int);
    a.ifne(idec);
    a.aload(kThis).iconst(16)
        .putfield("scimark.utils.Random", "i", ValueType::Int);
    a.goto_(iend);
    a.bind(idec);
    a.aload(kThis);
    a.aload(kThis).getfield("scimark.utils.Random", "i", ValueType::Int);
    a.iconst(1).op(Op::isub);
    a.putfield("scimark.utils.Random", "i", ValueType::Int);
    a.bind(iend);
    auto jdec = a.new_label(), jend = a.new_label();
    a.aload(kThis).getfield("scimark.utils.Random", "j", ValueType::Int);
    a.ifne(jdec);
    a.aload(kThis).iconst(16)
        .putfield("scimark.utils.Random", "j", ValueType::Int);
    a.goto_(jend);
    a.bind(jdec);
    a.aload(kThis);
    a.aload(kThis).getfield("scimark.utils.Random", "j", ValueType::Int);
    a.iconst(1).op(Op::isub);
    a.putfield("scimark.utils.Random", "j", ValueType::Int);
    a.bind(jend);
    a.dconst(kDm1);
    a.iload(kK).op(Op::i2d).op(Op::dmul);
    a.op(Op::dreturn);
    p.methods.push_back(a.build());
  }
}

// ---- scimark.utils.kernel (static helpers) --------------------------------
void build_kernel_utils(Program& p) {
  {
    // static double[] RandomVector(int n, Random r):
    //   double[] x = new double[n];
    //   for (int i = 0; i < n; i++) x[i] = r.nextDouble();
    //   return x;
    Assembler a(p, "scimark.utils.kernel.RandomVector(IA)A",
                "scimark.sparse.large");
    a.args({ValueType::Int, ValueType::Ref}).returns(ValueType::Ref);
    const int kN = 0, kR = 1, kX = 2, kI = 3;
    a.iload(kN).newarray(ValueType::Double).astore(kX);
    a.iconst(0).istore(kI);
    auto head = a.new_label(), done = a.new_label();
    a.bind(head);
    a.iload(kI).iload(kN).if_icmpge(done);
    a.aload(kX).iload(kI);
    a.aload(kR);
    a.invokevirtual("scimark.utils.Random.nextDouble()D", 1,
                    ValueType::Double);
    a.op(Op::dastore);
    a.iinc(kI, 1);
    a.goto_(head);
    a.bind(done);
    a.aload(kX).op(Op::areturn);
    p.methods.push_back(a.build());
  }
  {
    // static void RandomizeMatrix(double[][] A, Random r)
    Assembler a(p, "scimark.utils.kernel.RandomizeMatrix(AA)V",
                "scimark.sor.large");
    a.args({ValueType::Ref, ValueType::Ref}).returns(ValueType::Void);
    const int kA = 0, kR = 1, kI = 2, kJ = 3, kRow = 4;
    a.iconst(0).istore(kI);
    auto ihead = a.new_label(), idone = a.new_label();
    a.bind(ihead);
    a.iload(kI).aload(kA).op(Op::arraylength).if_icmpge(idone);
    a.aload(kA).iload(kI).op(Op::aaload).astore(kRow);
    a.iconst(0).istore(kJ);
    auto jhead = a.new_label(), jdone = a.new_label();
    a.bind(jhead);
    a.iload(kJ).aload(kRow).op(Op::arraylength).if_icmpge(jdone);
    a.aload(kRow).iload(kJ);
    a.aload(kR);
    a.invokevirtual("scimark.utils.Random.nextDouble()D", 1,
                    ValueType::Double);
    a.op(Op::dastore);
    a.iinc(kJ, 1);
    a.goto_(jhead);
    a.bind(jdone);
    a.iinc(kI, 1);
    a.goto_(ihead);
    a.bind(idone);
    a.op(Op::return_);
    p.methods.push_back(a.build());
  }
  {
    // static void CopyMatrix(double[][] B, double[][] A)  (B <- A)
    Assembler a(p, "scimark.utils.kernel.CopyMatrix(AA)V",
                "scimark.lu.large");
    a.args({ValueType::Ref, ValueType::Ref}).returns(ValueType::Void);
    const int kB = 0, kA = 1, kI = 2, kJ = 3, kBrow = 4, kArow = 5;
    a.iconst(0).istore(kI);
    auto ihead = a.new_label(), idone = a.new_label();
    a.bind(ihead);
    a.iload(kI).aload(kA).op(Op::arraylength).if_icmpge(idone);
    a.aload(kB).iload(kI).op(Op::aaload).astore(kBrow);
    a.aload(kA).iload(kI).op(Op::aaload).astore(kArow);
    a.iconst(0).istore(kJ);
    auto jhead = a.new_label(), jdone = a.new_label();
    a.bind(jhead);
    a.iload(kJ).aload(kArow).op(Op::arraylength).if_icmpge(jdone);
    a.aload(kBrow).iload(kJ);
    a.aload(kArow).iload(kJ).op(Op::daload);
    a.op(Op::dastore);
    a.iinc(kJ, 1);
    a.goto_(jhead);
    a.bind(jdone);
    a.iinc(kI, 1);
    a.goto_(ihead);
    a.bind(idone);
    a.op(Op::return_);
    p.methods.push_back(a.build());
  }
  {
    // static void matvec(double[][] A, double[] x, double[] y)  (y = A x)
    Assembler a(p, "scimark.utils.kernel.matvec(AAA)V", "scimark.lu.large");
    a.args({ValueType::Ref, ValueType::Ref, ValueType::Ref})
        .returns(ValueType::Void);
    const int kA = 0, kX = 1, kY = 2, kI = 3, kJ = 4, kRow = 7;
    const int kSum = 5;  // double local
    a.iconst(0).istore(kI);
    auto ihead = a.new_label(), idone = a.new_label();
    a.bind(ihead);
    a.iload(kI).aload(kA).op(Op::arraylength).if_icmpge(idone);
    a.dconst(0.0).dstore(kSum);
    a.aload(kA).iload(kI).op(Op::aaload).astore(kRow);
    a.iconst(0).istore(kJ);
    auto jhead = a.new_label(), jdone = a.new_label();
    a.bind(jhead);
    a.iload(kJ).aload(kRow).op(Op::arraylength).if_icmpge(jdone);
    a.dload(kSum);
    a.aload(kRow).iload(kJ).op(Op::daload);
    a.aload(kX).iload(kJ).op(Op::daload);
    a.op(Op::dmul).op(Op::dadd).dstore(kSum);
    a.iinc(kJ, 1);
    a.goto_(jhead);
    a.bind(jdone);
    a.aload(kY).iload(kI).dload(kSum).op(Op::dastore);
    a.iinc(kI, 1);
    a.goto_(ihead);
    a.bind(idone);
    a.op(Op::return_);
    p.methods.push_back(a.build());
  }
}

// ---- scimark.fft.FFT -------------------------------------------------------
void build_fft(Program& p) {
  {
    // static int log2(int n)
    Assembler a(p, "scimark.fft.FFT.log2(I)I", "scimark.fft.large");
    a.args({ValueType::Int}).returns(ValueType::Int);
    const int kN = 0, kLog = 1, kK = 2;
    a.iconst(0).istore(kLog);
    a.iconst(1).istore(kK);
    auto head = a.new_label(), done = a.new_label();
    a.bind(head);
    a.iload(kK).iload(kN).if_icmpge(done);
    a.iload(kK).iconst(2).op(Op::imul).istore(kK);
    a.iinc(kLog, 1);
    a.goto_(head);
    a.bind(done);
    a.iload(kLog).op(Op::ireturn);
    p.methods.push_back(a.build());
  }
  {
    // static void bitreverse(double[] data):
    //   int n = data.length / 2;
    //   for (int i = 0, j = 0; i < n - 1; i++) {
    //     int ii = 2*i, jj = 2*j, k = n / 2;
    //     if (i < j) { swap data[ii]<->data[jj]; data[ii+1]<->data[jj+1]; }
    //     while (k <= j) { j -= k; k /= 2; }
    //     j += k;
    //   }
    Assembler a(p, "scimark.fft.FFT.bitreverse(A)V", "scimark.fft.large");
    a.args({ValueType::Ref}).returns(ValueType::Void);
    const int kData = 0, kN = 1, kI = 2, kJ = 3, kII = 4, kJJ = 5, kK = 6;
    const int kT = 7;  // double temp
    a.aload(kData).op(Op::arraylength).iconst(2).op(Op::idiv).istore(kN);
    a.iconst(0).istore(kI);
    a.iconst(0).istore(kJ);
    auto head = a.new_label(), done = a.new_label();
    a.bind(head);
    a.iload(kI).iload(kN).iconst(1).op(Op::isub).if_icmpge(done);
    a.iload(kI).iconst(2).op(Op::imul).istore(kII);
    a.iload(kJ).iconst(2).op(Op::imul).istore(kJJ);
    a.iload(kN).iconst(2).op(Op::idiv).istore(kK);
    auto noswap = a.new_label();
    a.iload(kI).iload(kJ).if_icmpge(noswap);
    // swap real parts
    a.aload(kData).iload(kII).op(Op::daload).dstore(kT);
    a.aload(kData).iload(kII);
    a.aload(kData).iload(kJJ).op(Op::daload);
    a.op(Op::dastore);
    a.aload(kData).iload(kJJ).dload(kT).op(Op::dastore);
    // swap imaginary parts
    a.aload(kData).iload(kII).iconst(1).op(Op::iadd).op(Op::daload)
        .dstore(kT);
    a.aload(kData).iload(kII).iconst(1).op(Op::iadd);
    a.aload(kData).iload(kJJ).iconst(1).op(Op::iadd).op(Op::daload);
    a.op(Op::dastore);
    a.aload(kData).iload(kJJ).iconst(1).op(Op::iadd).dload(kT)
        .op(Op::dastore);
    a.bind(noswap);
    auto whead = a.new_label(), wdone = a.new_label();
    a.bind(whead);
    a.iload(kK).iload(kJ).if_icmpgt(wdone);
    a.iload(kJ).iload(kK).op(Op::isub).istore(kJ);
    a.iload(kK).iconst(2).op(Op::idiv).istore(kK);
    a.goto_(whead);
    a.bind(wdone);
    a.iload(kJ).iload(kK).op(Op::iadd).istore(kJ);
    a.iinc(kI, 1);
    a.goto_(head);
    a.bind(done);
    a.op(Op::return_);
    p.methods.push_back(a.build());
  }
  {
    // static void transform_internal(double[] data, int direction) —
    // radix-2 decimation-in-time FFT, the SciMark structure.
    Assembler a(p, "scimark.fft.FFT.transform_internal(AI)V",
                "scimark.fft.large");
    a.args({ValueType::Ref, ValueType::Int}).returns(ValueType::Void);
    const int kData = 0, kDir = 1, kN = 2, kLogn = 3, kBit = 4, kDual = 5;
    const int kB = 6, kA = 7, kI = 8, kJ = 9;
    // double locals
    const int kWr = 10, kWi = 11, kTheta = 12, kS = 13, kS2 = 14;
    const int kWdr = 15, kWdi = 16, kZ1r = 17, kZ1i = 18, kTmp = 19;
    a.locals(20);

    // n = data.length / 2; if (n == 1) return;
    a.aload(kData).op(Op::arraylength).iconst(2).op(Op::idiv).istore(kN);
    auto not_trivial = a.new_label();
    a.iload(kN).iconst(1).if_icmpne(not_trivial);
    a.op(Op::return_);
    a.bind(not_trivial);
    // logn = log2(n); bitreverse(data);
    a.iload(kN);
    a.invokestatic("scimark.fft.FFT.log2(I)I", 1, ValueType::Int);
    a.istore(kLogn);
    a.aload(kData);
    a.invokestatic("scimark.fft.FFT.bitreverse(A)V", 1, ValueType::Void);

    // for (bit = 0, dual = 1; bit < logn; bit++, dual *= 2)
    a.iconst(0).istore(kBit);
    a.iconst(1).istore(kDual);
    auto bit_head = a.new_label(), bit_done = a.new_label();
    a.bind(bit_head);
    a.iload(kBit).iload(kLogn).if_icmpge(bit_done);

    //   w_real = 1; w_imag = 0;
    a.dconst(1.0).dstore(kWr);
    a.dconst(0.0).dstore(kWi);
    //   theta = 2.0 * direction * PI / (2.0 * dual);
    a.dconst(2.0).iload(kDir).op(Op::i2d).op(Op::dmul);
    a.dconst(3.14159265358979323846).op(Op::dmul);
    a.dconst(2.0).iload(kDual).op(Op::i2d).op(Op::dmul).op(Op::ddiv);
    a.dstore(kTheta);
    //   s = sin(theta); t = sin(theta/2); s2 = 2*t*t;
    a.dload(kTheta);
    a.invokestatic("java.lang.Math.sin(D)D", 1, ValueType::Double);
    a.dstore(kS);
    a.dload(kTheta).dconst(2.0).op(Op::ddiv);
    a.invokestatic("java.lang.Math.sin(D)D", 1, ValueType::Double);
    a.dstore(kTmp);
    a.dconst(2.0).dload(kTmp).op(Op::dmul).dload(kTmp).op(Op::dmul)
        .dstore(kS2);

    //   a == 0 butterflies: for (b = 0; b < n; b += 2*dual)
    a.iconst(0).istore(kB);
    auto b0_head = a.new_label(), b0_done = a.new_label();
    a.bind(b0_head);
    a.iload(kB).iload(kN).if_icmpge(b0_done);
    //     i = 2*b; j = 2*(b+dual);
    a.iload(kB).iconst(2).op(Op::imul).istore(kI);
    a.iload(kB).iload(kDual).op(Op::iadd).iconst(2).op(Op::imul).istore(kJ);
    //     wd_real = data[j]; wd_imag = data[j+1];
    a.aload(kData).iload(kJ).op(Op::daload).dstore(kWdr);
    a.aload(kData).iload(kJ).iconst(1).op(Op::iadd).op(Op::daload)
        .dstore(kWdi);
    //     data[j]   = data[i]   - wd_real;
    a.aload(kData).iload(kJ);
    a.aload(kData).iload(kI).op(Op::daload).dload(kWdr).op(Op::dsub);
    a.op(Op::dastore);
    //     data[j+1] = data[i+1] - wd_imag;
    a.aload(kData).iload(kJ).iconst(1).op(Op::iadd);
    a.aload(kData).iload(kI).iconst(1).op(Op::iadd).op(Op::daload);
    a.dload(kWdi).op(Op::dsub);
    a.op(Op::dastore);
    //     data[i]   += wd_real;
    a.aload(kData).iload(kI);
    a.aload(kData).iload(kI).op(Op::daload).dload(kWdr).op(Op::dadd);
    a.op(Op::dastore);
    //     data[i+1] += wd_imag;
    a.aload(kData).iload(kI).iconst(1).op(Op::iadd);
    a.aload(kData).iload(kI).iconst(1).op(Op::iadd).op(Op::daload);
    a.dload(kWdi).op(Op::dadd);
    a.op(Op::dastore);
    //     b += 2*dual
    a.iload(kB).iconst(2).iload(kDual).op(Op::imul).op(Op::iadd).istore(kB);
    a.goto_(b0_head);
    a.bind(b0_done);

    //   for (a = 1; a < dual; a++)
    a.iconst(1).istore(kA);
    auto a_head = a.new_label(), a_done = a.new_label();
    a.bind(a_head);
    a.iload(kA).iload(kDual).if_icmpge(a_done);
    //     { tmp = w_real - s*w_imag - s2*w_real;
    //       w_imag = w_imag + s*w_real - s2*w_imag;
    //       w_real = tmp; }
    a.dload(kWr);
    a.dload(kS).dload(kWi).op(Op::dmul).op(Op::dsub);
    a.dload(kS2).dload(kWr).op(Op::dmul).op(Op::dsub);
    a.dstore(kTmp);
    a.dload(kWi);
    a.dload(kS).dload(kWr).op(Op::dmul).op(Op::dadd);
    a.dload(kS2).dload(kWi).op(Op::dmul).op(Op::dsub);
    a.dstore(kWi);
    a.dload(kTmp).dstore(kWr);
    //     for (b = 0; b < n; b += 2*dual)
    a.iconst(0).istore(kB);
    auto b_head = a.new_label(), b_done = a.new_label();
    a.bind(b_head);
    a.iload(kB).iload(kN).if_icmpge(b_done);
    //       i = 2*(b+a); j = 2*(b+a+dual);
    a.iload(kB).iload(kA).op(Op::iadd).iconst(2).op(Op::imul).istore(kI);
    a.iload(kB).iload(kA).op(Op::iadd).iload(kDual).op(Op::iadd);
    a.iconst(2).op(Op::imul).istore(kJ);
    //       z1_real = data[j]; z1_imag = data[j+1];
    a.aload(kData).iload(kJ).op(Op::daload).dstore(kZ1r);
    a.aload(kData).iload(kJ).iconst(1).op(Op::iadd).op(Op::daload)
        .dstore(kZ1i);
    //       wd_real = w_real*z1_real - w_imag*z1_imag;
    a.dload(kWr).dload(kZ1r).op(Op::dmul);
    a.dload(kWi).dload(kZ1i).op(Op::dmul);
    a.op(Op::dsub).dstore(kWdr);
    //       wd_imag = w_real*z1_imag + w_imag*z1_real;
    a.dload(kWr).dload(kZ1i).op(Op::dmul);
    a.dload(kWi).dload(kZ1r).op(Op::dmul);
    a.op(Op::dadd).dstore(kWdi);
    //       data[j]   = data[i]   - wd_real;
    a.aload(kData).iload(kJ);
    a.aload(kData).iload(kI).op(Op::daload).dload(kWdr).op(Op::dsub);
    a.op(Op::dastore);
    //       data[j+1] = data[i+1] - wd_imag;
    a.aload(kData).iload(kJ).iconst(1).op(Op::iadd);
    a.aload(kData).iload(kI).iconst(1).op(Op::iadd).op(Op::daload);
    a.dload(kWdi).op(Op::dsub);
    a.op(Op::dastore);
    //       data[i]   += wd_real;
    a.aload(kData).iload(kI);
    a.aload(kData).iload(kI).op(Op::daload).dload(kWdr).op(Op::dadd);
    a.op(Op::dastore);
    //       data[i+1] += wd_imag;
    a.aload(kData).iload(kI).iconst(1).op(Op::iadd);
    a.aload(kData).iload(kI).iconst(1).op(Op::iadd).op(Op::daload);
    a.dload(kWdi).op(Op::dadd);
    a.op(Op::dastore);
    //       b += 2*dual
    a.iload(kB).iconst(2).iload(kDual).op(Op::imul).op(Op::iadd).istore(kB);
    a.goto_(b_head);
    a.bind(b_done);
    a.iinc(kA, 1);
    a.goto_(a_head);
    a.bind(a_done);

    //   bit++, dual *= 2
    a.iinc(kBit, 1);
    a.iload(kDual).iconst(2).op(Op::imul).istore(kDual);
    a.goto_(bit_head);
    a.bind(bit_done);
    a.op(Op::return_);
    p.methods.push_back(a.build());
  }
  {
    // static void transform(double[] data)
    Assembler a(p, "scimark.fft.FFT.transform(A)V", "scimark.fft.large");
    a.args({ValueType::Ref}).returns(ValueType::Void);
    a.aload(0).iconst(-1);
    a.invokestatic("scimark.fft.FFT.transform_internal(AI)V", 2,
                   ValueType::Void);
    a.op(Op::return_);
    p.methods.push_back(a.build());
  }
  {
    // static void inverse(double[] data):
    //   transform_internal(data, +1);
    //   int nd = data.length; int n = nd / 2;
    //   double norm = 1.0 / n;
    //   for (int i = 0; i < nd; i++) data[i] *= norm;
    Assembler a(p, "scimark.fft.FFT.inverse(A)V", "scimark.fft.large");
    a.args({ValueType::Ref}).returns(ValueType::Void);
    const int kData = 0, kNd = 1, kI = 2, kNorm = 3;
    a.aload(kData).iconst(1);
    a.invokestatic("scimark.fft.FFT.transform_internal(AI)V", 2,
                   ValueType::Void);
    a.aload(kData).op(Op::arraylength).istore(kNd);
    a.dconst(1.0);
    a.iload(kNd).iconst(2).op(Op::idiv).op(Op::i2d);
    a.op(Op::ddiv).dstore(kNorm);
    a.iconst(0).istore(kI);
    auto head = a.new_label(), done = a.new_label();
    a.bind(head);
    a.iload(kI).iload(kNd).if_icmpge(done);
    a.aload(kData).iload(kI);
    a.aload(kData).iload(kI).op(Op::daload).dload(kNorm).op(Op::dmul);
    a.op(Op::dastore);
    a.iinc(kI, 1);
    a.goto_(head);
    a.bind(done);
    a.op(Op::return_);
    p.methods.push_back(a.build());
  }
}

// ---- scimark.lu.LU ---------------------------------------------------------
void build_lu(Program& p) {
  // static int factor(double[][] A, int[] pivot) — in-place partial-pivot
  // LU, the 99 %-of-cycles method of scimark.lu (Table 3).
  Assembler a(p, "scimark.lu.LU.factor(AA)I", "scimark.lu.large");
  a.args({ValueType::Ref, ValueType::Ref}).returns(ValueType::Int);
  const int kA = 0, kPiv = 1, kM = 2, kJ = 3, kJp = 4, kI = 5, kK = 6;
  const int kT = 7, kAb = 9, kRecp = 11;           // doubles
  const int kRowJ = 13, kRowI = 14, kJJ = 15;
  const int kAiiJ = 16;                            // double
  a.locals(18);

  a.aload(kA).op(Op::arraylength).istore(kM);
  a.iconst(0).istore(kJ);
  auto j_head = a.new_label(), j_done = a.new_label();
  a.bind(j_head);
  a.iload(kJ).iload(kM).if_icmpge(j_done);

  // jp = j; t = |A[j][j]|
  a.iload(kJ).istore(kJp);
  a.aload(kA).iload(kJ).op(Op::aaload).iload(kJ).op(Op::daload);
  a.invokestatic("java.lang.Math.abs(D)D", 1, ValueType::Double);
  a.dstore(kT);
  // pivot search
  a.iload(kJ).iconst(1).op(Op::iadd).istore(kI);
  auto p_head = a.new_label(), p_done = a.new_label();
  a.bind(p_head);
  a.iload(kI).iload(kM).if_icmpge(p_done);
  a.aload(kA).iload(kI).op(Op::aaload).iload(kJ).op(Op::daload);
  a.invokestatic("java.lang.Math.abs(D)D", 1, ValueType::Double);
  a.dstore(kAb);
  auto no_better = a.new_label();
  a.dload(kAb).dload(kT).op(Op::dcmpl).ifle(no_better);
  a.iload(kI).istore(kJp);
  a.dload(kAb).dstore(kT);
  a.bind(no_better);
  a.iinc(kI, 1);
  a.goto_(p_head);
  a.bind(p_done);
  // pivot[j] = jp
  a.aload(kPiv).iload(kJ).iload(kJp).op(Op::iastore);
  // if (A[jp][j] == 0) return 1;
  auto nonzero = a.new_label();
  a.aload(kA).iload(kJp).op(Op::aaload).iload(kJ).op(Op::daload);
  a.dconst(0.0).op(Op::dcmpl).ifne(nonzero);
  a.iconst(1).op(Op::ireturn);
  a.bind(nonzero);
  // if (jp != j) swap rows
  auto no_swap = a.new_label();
  a.iload(kJp).iload(kJ).if_icmpeq(no_swap);
  a.aload(kA).iload(kJ).op(Op::aaload).astore(kRowJ);
  a.aload(kA).iload(kJ);
  a.aload(kA).iload(kJp).op(Op::aaload);
  a.op(Op::aastore);
  a.aload(kA).iload(kJp).aload(kRowJ).op(Op::aastore);
  a.bind(no_swap);
  // if (j < M-1) scale column below diagonal
  auto no_scale = a.new_label();
  a.iload(kJ).iload(kM).iconst(1).op(Op::isub).if_icmpge(no_scale);
  a.dconst(1.0);
  a.aload(kA).iload(kJ).op(Op::aaload).iload(kJ).op(Op::daload);
  a.op(Op::ddiv).dstore(kRecp);
  a.iload(kJ).iconst(1).op(Op::iadd).istore(kK);
  auto s_head = a.new_label(), s_done = a.new_label();
  a.bind(s_head);
  a.iload(kK).iload(kM).if_icmpge(s_done);
  a.aload(kA).iload(kK).op(Op::aaload).iload(kJ);
  a.aload(kA).iload(kK).op(Op::aaload).iload(kJ).op(Op::daload);
  a.dload(kRecp).op(Op::dmul);
  a.op(Op::dastore);
  a.iinc(kK, 1);
  a.goto_(s_head);
  a.bind(s_done);
  a.bind(no_scale);
  // if (j < M-1) trailing update
  auto no_update = a.new_label();
  a.iload(kJ).iload(kM).iconst(1).op(Op::isub).if_icmpge(no_update);
  a.iload(kJ).iconst(1).op(Op::iadd).istore(kI);
  auto u_head = a.new_label(), u_done = a.new_label();
  a.bind(u_head);
  a.iload(kI).iload(kM).if_icmpge(u_done);
  a.aload(kA).iload(kI).op(Op::aaload).astore(kRowI);
  a.aload(kA).iload(kJ).op(Op::aaload).astore(kRowJ);
  a.aload(kRowI).iload(kJ).op(Op::daload).dstore(kAiiJ);
  a.iload(kJ).iconst(1).op(Op::iadd).istore(kJJ);
  auto v_head = a.new_label(), v_done = a.new_label();
  a.bind(v_head);
  a.iload(kJJ).iload(kM).if_icmpge(v_done);
  a.aload(kRowI).iload(kJJ);
  a.aload(kRowI).iload(kJJ).op(Op::daload);
  a.dload(kAiiJ).aload(kRowJ).iload(kJJ).op(Op::daload).op(Op::dmul);
  a.op(Op::dsub);
  a.op(Op::dastore);
  a.iinc(kJJ, 1);
  a.goto_(v_head);
  a.bind(v_done);
  a.iinc(kI, 1);
  a.goto_(u_head);
  a.bind(u_done);
  a.bind(no_update);

  a.iinc(kJ, 1);
  a.goto_(j_head);
  a.bind(j_done);
  a.iconst(0).op(Op::ireturn);
  p.methods.push_back(a.build());
}

void build_lu_solve(Program& p) {
  // static void solve(double[][] LU, int[] pivot, double[] b): apply the
  // pivot, then unit-lower forward substitution and upper back
  // substitution — LU.factor's companion method.
  Assembler a(p, "scimark.lu.LU.solve(AAA)V", "scimark.lu.large");
  a.args({ValueType::Ref, ValueType::Ref, ValueType::Ref})
      .returns(ValueType::Void);
  const int kLU = 0, kPvt = 1, kB = 2, kN = 3, kI = 4, kJ = 5, kP = 6;
  const int kT = 7, kSum = 9;  // doubles
  const int kRow = 11;
  a.locals(12);

  a.aload(kLU).op(Op::arraylength).istore(kN);
  // pivot application
  a.iconst(0).istore(kI);
  {
    auto head = a.new_label(), done = a.new_label();
    a.bind(head);
    a.iload(kI).iload(kN).if_icmpge(done);
    a.aload(kPvt).iload(kI).op(Op::iaload).istore(kP);
    a.aload(kB).iload(kP).op(Op::daload).dstore(kT);
    a.aload(kB).iload(kP);
    a.aload(kB).iload(kI).op(Op::daload);
    a.op(Op::dastore);
    a.aload(kB).iload(kI).dload(kT).op(Op::dastore);
    a.iinc(kI, 1);
    a.goto_(head);
    a.bind(done);
  }
  // forward substitution (unit diagonal)
  a.iconst(1).istore(kI);
  {
    auto ih = a.new_label(), id = a.new_label();
    a.bind(ih);
    a.iload(kI).iload(kN).if_icmpge(id);
    a.aload(kB).iload(kI).op(Op::daload).dstore(kSum);
    a.aload(kLU).iload(kI).op(Op::aaload).astore(kRow);
    a.iconst(0).istore(kJ);
    auto jh = a.new_label(), jd = a.new_label();
    a.bind(jh);
    a.iload(kJ).iload(kI).if_icmpge(jd);
    a.dload(kSum);
    a.aload(kRow).iload(kJ).op(Op::daload);
    a.aload(kB).iload(kJ).op(Op::daload);
    a.op(Op::dmul).op(Op::dsub).dstore(kSum);
    a.iinc(kJ, 1);
    a.goto_(jh);
    a.bind(jd);
    a.aload(kB).iload(kI).dload(kSum).op(Op::dastore);
    a.iinc(kI, 1);
    a.goto_(ih);
    a.bind(id);
  }
  // back substitution
  a.iload(kN).iconst(1).op(Op::isub).istore(kI);
  {
    auto ih = a.new_label(), id = a.new_label();
    a.bind(ih);
    a.iload(kI).iflt(id);
    a.aload(kB).iload(kI).op(Op::daload).dstore(kSum);
    a.aload(kLU).iload(kI).op(Op::aaload).astore(kRow);
    a.iload(kI).iconst(1).op(Op::iadd).istore(kJ);
    auto jh = a.new_label(), jd = a.new_label();
    a.bind(jh);
    a.iload(kJ).iload(kN).if_icmpge(jd);
    a.dload(kSum);
    a.aload(kRow).iload(kJ).op(Op::daload);
    a.aload(kB).iload(kJ).op(Op::daload);
    a.op(Op::dmul).op(Op::dsub).dstore(kSum);
    a.iinc(kJ, 1);
    a.goto_(jh);
    a.bind(jd);
    a.aload(kB).iload(kI);
    a.dload(kSum);
    a.aload(kRow).iload(kI).op(Op::daload);
    a.op(Op::ddiv);
    a.op(Op::dastore);
    a.iinc(kI, -1);
    a.goto_(ih);
    a.bind(id);
  }
  a.op(Op::return_);
  p.methods.push_back(a.build());
}

// ---- scimark.sor.SOR -------------------------------------------------------
void build_sor(Program& p) {
  // static double execute(double omega, double[][] G, int num_iterations)
  Assembler a(p, "scimark.sor.SOR.execute(DAI)D", "scimark.sor.large");
  a.args({ValueType::Double, ValueType::Ref, ValueType::Int})
      .returns(ValueType::Double);
  const int kOmega = 0, kG = 1, kNum = 2, kM = 3, kN = 4, kP = 5, kI = 6;
  const int kJ = 7, kGi = 8, kGim1 = 9, kGip1 = 10;
  const int kOof = 11, kOmo = 13;  // doubles: omega/4, 1-omega
  a.locals(15);

  a.aload(kG).op(Op::arraylength).istore(kM);
  a.aload(kG).iconst(0).op(Op::aaload).op(Op::arraylength).istore(kN);
  // omega_over_four = omega * 0.25
  a.dload(kOmega).dconst(0.25).op(Op::dmul).dstore(kOof);
  // one_minus_omega = 1.0 - omega
  a.dconst(1.0).dload(kOmega).op(Op::dsub).dstore(kOmo);

  a.iconst(0).istore(kP);
  auto p_head = a.new_label(), p_done = a.new_label();
  a.bind(p_head);
  a.iload(kP).iload(kNum).if_icmpge(p_done);
  a.iconst(1).istore(kI);
  auto i_head = a.new_label(), i_done = a.new_label();
  a.bind(i_head);
  a.iload(kI).iload(kM).iconst(1).op(Op::isub).if_icmpge(i_done);
  a.aload(kG).iload(kI).op(Op::aaload).astore(kGi);
  a.aload(kG).iload(kI).iconst(1).op(Op::isub).op(Op::aaload).astore(kGim1);
  a.aload(kG).iload(kI).iconst(1).op(Op::iadd).op(Op::aaload).astore(kGip1);
  a.iconst(1).istore(kJ);
  auto j_head = a.new_label(), j_done = a.new_label();
  a.bind(j_head);
  a.iload(kJ).iload(kN).iconst(1).op(Op::isub).if_icmpge(j_done);
  // Gi[j] = oof*(Gim1[j]+Gip1[j]+Gi[j-1]+Gi[j+1]) + omo*Gi[j]
  a.aload(kGi).iload(kJ);
  a.dload(kOof);
  a.aload(kGim1).iload(kJ).op(Op::daload);
  a.aload(kGip1).iload(kJ).op(Op::daload);
  a.op(Op::dadd);
  a.aload(kGi).iload(kJ).iconst(1).op(Op::isub).op(Op::daload);
  a.op(Op::dadd);
  a.aload(kGi).iload(kJ).iconst(1).op(Op::iadd).op(Op::daload);
  a.op(Op::dadd);
  a.op(Op::dmul);
  a.dload(kOmo).aload(kGi).iload(kJ).op(Op::daload).op(Op::dmul);
  a.op(Op::dadd);
  a.op(Op::dastore);
  a.iinc(kJ, 1);
  a.goto_(j_head);
  a.bind(j_done);
  a.iinc(kI, 1);
  a.goto_(i_head);
  a.bind(i_done);
  a.iinc(kP, 1);
  a.goto_(p_head);
  a.bind(p_done);
  a.aload(kG).iconst(1).op(Op::aaload).iconst(1).op(Op::daload);
  a.op(Op::dreturn);
  p.methods.push_back(a.build());
}

// ---- scimark.sparse.SparseCompRow ------------------------------------------
void build_sparse(Program& p) {
  // static void matmult(double[] y, double[] val, int[] row, int[] col,
  //                     double[] x, int NUM_ITERATIONS)
  Assembler a(p, "scimark.sparse.SparseCompRow.matmult(AAAAAI)V",
              "scimark.sparse.large");
  a.args({ValueType::Ref, ValueType::Ref, ValueType::Ref, ValueType::Ref,
          ValueType::Ref, ValueType::Int})
      .returns(ValueType::Void);
  const int kY = 0, kVal = 1, kRow = 2, kCol = 3, kX = 4, kIters = 5;
  const int kM = 6, kReps = 7, kR = 8, kRowR = 9, kRowRp1 = 10, kI = 11;
  const int kSum = 12;  // double
  a.locals(14);

  a.aload(kRow).op(Op::arraylength).iconst(1).op(Op::isub).istore(kM);
  a.iconst(0).istore(kReps);
  auto reps_head = a.new_label(), reps_done = a.new_label();
  a.bind(reps_head);
  a.iload(kReps).iload(kIters).if_icmpge(reps_done);
  a.iconst(0).istore(kR);
  auto r_head = a.new_label(), r_done = a.new_label();
  a.bind(r_head);
  a.iload(kR).iload(kM).if_icmpge(r_done);
  a.dconst(0.0).dstore(kSum);
  a.aload(kRow).iload(kR).op(Op::iaload).istore(kRowR);
  a.aload(kRow).iload(kR).iconst(1).op(Op::iadd).op(Op::iaload)
      .istore(kRowRp1);
  a.iload(kRowR).istore(kI);
  auto i_head = a.new_label(), i_done = a.new_label();
  a.bind(i_head);
  a.iload(kI).iload(kRowRp1).if_icmpge(i_done);
  a.dload(kSum);
  a.aload(kX);
  a.aload(kCol).iload(kI).op(Op::iaload);
  a.op(Op::daload);
  a.aload(kVal).iload(kI).op(Op::daload);
  a.op(Op::dmul).op(Op::dadd).dstore(kSum);
  a.iinc(kI, 1);
  a.goto_(i_head);
  a.bind(i_done);
  a.aload(kY).iload(kR).dload(kSum).op(Op::dastore);
  a.iinc(kR, 1);
  a.goto_(r_head);
  a.bind(r_done);
  a.iinc(kReps, 1);
  a.goto_(reps_head);
  a.bind(reps_done);
  a.op(Op::return_);
  p.methods.push_back(a.build());
}

// ---- scimark.monte_carlo.MonteCarlo ----------------------------------------
void build_monte_carlo(Program& p) {
  // static double integrate(int numSamples) — pi by dartboard.
  Assembler a(p, "scimark.monte_carlo.MonteCarlo.integrate(I)D",
              "scimark.monte_carlo");
  a.args({ValueType::Int}).returns(ValueType::Double);
  const int kNum = 0, kRnd = 1, kUnder = 2, kC = 3;
  const int kX = 4, kY = 6;  // doubles
  a.locals(8);
  a.new_object("scimark.utils.Random").astore(kRnd);
  a.aload(kRnd).iconst(113);
  a.invokevirtual("scimark.utils.Random.initialize(I)V", 2, ValueType::Void);
  a.iconst(0).istore(kUnder);
  a.iconst(0).istore(kC);
  auto head = a.new_label(), done = a.new_label();
  a.bind(head);
  a.iload(kC).iload(kNum).if_icmpge(done);
  a.aload(kRnd);
  a.invokevirtual("scimark.utils.Random.nextDouble()D", 1,
                  ValueType::Double);
  a.dstore(kX);
  a.aload(kRnd);
  a.invokevirtual("scimark.utils.Random.nextDouble()D", 1,
                  ValueType::Double);
  a.dstore(kY);
  auto miss = a.new_label();
  a.dload(kX).dload(kX).op(Op::dmul);
  a.dload(kY).dload(kY).op(Op::dmul);
  a.op(Op::dadd);
  a.dconst(1.0).op(Op::dcmpg).ifgt(miss);
  a.iinc(kUnder, 1);
  a.bind(miss);
  a.iinc(kC, 1);
  a.goto_(head);
  a.bind(done);
  a.dconst(4.0);
  a.iload(kUnder).op(Op::i2d).op(Op::dmul);
  a.iload(kNum).op(Op::i2d).op(Op::ddiv);
  a.op(Op::dreturn);
  p.methods.push_back(a.build());
}

// ---- drivers ---------------------------------------------------------------

Ref make_random(Interpreter& vm, int seed) {
  const Ref rnd =
      vm.heap().new_object(*vm.program().find_class("scimark.utils.Random"));
  vm.invoke("scimark.utils.Random.initialize(I)V",
            {Value::make_ref(rnd), Value::make_int(seed)});
  return rnd;
}

void expect(bool ok, const char* what) {
  if (!ok) throw std::runtime_error(std::string("workload check failed: ") +
                                    what);
}

void run_fft(Interpreter& vm) {
  const Ref rnd = make_random(vm, 113);
  const Value data = vm.invoke(
      "scimark.utils.kernel.RandomVector(IA)A",
      {Value::make_int(2 * 256), Value::make_ref(rnd)});
  std::vector<double> before;
  for (int k = 0; k < 512; ++k) {
    before.push_back(vm.heap().array_get(data.as_ref(), k).as_fp());
  }
  for (int it = 0; it < 4; ++it) {
    vm.invoke("scimark.fft.FFT.transform(A)V", {data});
    vm.invoke("scimark.fft.FFT.inverse(A)V", {data});
  }
  // Round-trip must reproduce the input (the SciMark validation check).
  for (int k = 0; k < 512; ++k) {
    const double now = vm.heap().array_get(data.as_ref(), k).as_fp();
    expect(std::abs(now - before[static_cast<std::size_t>(k)]) < 1e-8,
           "fft round trip");
  }
}

Ref make_matrix(Interpreter& vm, int n, Ref rnd) {
  const Ref mat = vm.heap().new_array(ValueType::Ref, n);
  for (int r = 0; r < n; ++r) {
    vm.heap().array_set(mat, r,
                        Value::make_ref(vm.heap().new_array(
                            ValueType::Double, n)));
  }
  vm.invoke("scimark.utils.kernel.RandomizeMatrix(AA)V",
            {Value::make_ref(mat), Value::make_ref(rnd)});
  return mat;
}

void run_lu(Interpreter& vm) {
  const int n = 32;
  const Ref rnd = make_random(vm, 7);
  const Ref A = make_matrix(vm, n, rnd);
  const Ref LU = make_matrix(vm, n, rnd);
  const Ref piv = vm.heap().new_array(ValueType::Int, n);
  for (int it = 0; it < 4; ++it) {
    vm.invoke("scimark.utils.kernel.CopyMatrix(AA)V",
              {Value::make_ref(LU), Value::make_ref(A)});
    const Value rc = vm.invoke("scimark.lu.LU.factor(AA)I",
                               {Value::make_ref(LU), Value::make_ref(piv)});
    expect(rc.as_int() == 0, "lu factor singular");
  }
  // Light validation: diagonal of U must be nonzero.
  for (int d = 0; d < n; ++d) {
    const Ref row = vm.heap().array_get(LU, d).as_ref();
    expect(vm.heap().array_get(row, d).as_fp() != 0.0, "lu diagonal");
  }
  // Full validation: solve A x = b for a known x and compare.
  const Value x_true = vm.invoke("scimark.utils.kernel.RandomVector(IA)A",
                                 {Value::make_int(n), Value::make_ref(rnd)});
  const Ref b = vm.heap().new_array(ValueType::Double, n);
  vm.invoke("scimark.utils.kernel.matvec(AAA)V",
            {Value::make_ref(A), x_true, Value::make_ref(b)});
  vm.invoke("scimark.lu.LU.solve(AAA)V",
            {Value::make_ref(LU), Value::make_ref(piv), Value::make_ref(b)});
  for (int k = 0; k < n; ++k) {
    const double got = vm.heap().array_get(b, k).as_fp();
    const double want = vm.heap().array_get(x_true.as_ref(), k).as_fp();
    expect(std::abs(got - want) < 1e-6, "lu solve residual");
  }
}

void run_sor(Interpreter& vm) {
  const Ref rnd = make_random(vm, 42);
  const Ref G = make_matrix(vm, 34, rnd);
  const Value r = vm.invoke(
      "scimark.sor.SOR.execute(DAI)D",
      {Value::make_double(1.25), Value::make_ref(G), Value::make_int(30)});
  expect(std::isfinite(r.as_fp()), "sor produced non-finite value");
}

void run_sparse(Interpreter& vm) {
  // 100x100 sparse matrix with ~5 nonzeros per row in CSR form.
  const int n = 100, nz_per_row = 5;
  const Ref rnd = make_random(vm, 9);
  auto& h = vm.heap();
  const Ref row = h.new_array(ValueType::Int, n + 1);
  const Ref col = h.new_array(ValueType::Int, n * nz_per_row);
  const Ref val = h.new_array(ValueType::Double, n * nz_per_row);
  for (int r = 0; r <= n; ++r) {
    h.array_set(row, r, Value::make_int(r * nz_per_row));
  }
  for (int k = 0; k < n * nz_per_row; ++k) {
    h.array_set(col, k, Value::make_int((k * 37) % n));
    h.array_set(val, k, Value::make_double(1.0 + (k % 7)));
  }
  const Value x = vm.invoke("scimark.utils.kernel.RandomVector(IA)A",
                            {Value::make_int(n), Value::make_ref(rnd)});
  const Ref y = h.new_array(ValueType::Double, n);
  vm.invoke("scimark.sparse.SparseCompRow.matmult(AAAAAI)V",
            {Value::make_ref(y), Value::make_ref(val), Value::make_ref(row),
             Value::make_ref(col), x, Value::make_int(20)});
  // Validate row 0 against a host-side dot product.
  double want = 0.0;
  for (int k = 0; k < nz_per_row; ++k) {
    want += h.array_get(val, k).as_fp() *
            h.array_get(x.as_ref(), h.array_get(col, k).as_int()).as_fp();
  }
  expect(std::abs(h.array_get(y, 0).as_fp() - want) < 1e-9,
         "sparse matmult row 0");
}

void run_monte_carlo(Interpreter& vm) {
  const Value pi = vm.invoke("scimark.monte_carlo.MonteCarlo.integrate(I)D",
                             {Value::make_int(20000)});
  expect(std::abs(pi.as_fp() - 3.14159265) < 0.1, "monte carlo pi estimate");
}

}  // namespace

std::vector<Benchmark> make_scimark_benchmarks(Program& p) {
  build_random(p);
  build_kernel_utils(p);
  build_fft(p);
  build_lu(p);
  build_lu_solve(p);
  build_sor(p);
  build_sparse(p);
  build_monte_carlo(p);

  std::vector<Benchmark> out;
  out.push_back({"scimark.fft.large",
                 "SpecJvm2008",
                 {"scimark.fft.FFT.transform_internal(AI)V",
                  "scimark.fft.FFT.bitreverse(A)V",
                  "scimark.utils.Random.nextDouble()D",
                  "scimark.fft.FFT.inverse(A)V",
                  "scimark.fft.FFT.log2(I)I",
                  "scimark.fft.FFT.transform(A)V"},
                 run_fft});
  out.push_back({"scimark.lu.large",
                 "SpecJvm2008",
                 {"scimark.lu.LU.factor(AA)I",
                  "scimark.utils.Random.nextDouble()D",
                  "scimark.lu.LU.solve(AAA)V",
                  "scimark.utils.kernel.matvec(AAA)V",
                  "scimark.utils.kernel.CopyMatrix(AA)V"},
                 run_lu});
  out.push_back({"scimark.monte_carlo",
                 "SpecJvm2008",
                 {"scimark.utils.Random.nextDouble()D",
                  "scimark.monte_carlo.MonteCarlo.integrate(I)D"},
                 run_monte_carlo});
  out.push_back({"scimark.sor.large",
                 "SpecJvm2008",
                 {"scimark.sor.SOR.execute(DAI)D",
                  "scimark.utils.Random.nextDouble()D",
                  "scimark.utils.kernel.RandomizeMatrix(AA)V"},
                 run_sor});
  out.push_back({"scimark.sparse.large",
                 "SpecJvm2008",
                 {"scimark.sparse.SparseCompRow.matmult(AAAAAI)V",
                  "scimark.utils.Random.nextDouble()D",
                  "scimark.utils.kernel.RandomVector(IA)A"},
                 run_sparse});
  return out;
}

}  // namespace javaflow::workloads
