#include "workloads/corpus.hpp"

#include <algorithm>
#include <cmath>
#include <random>

#include "workloads/generator.hpp"

namespace javaflow::workloads {

Suite make_suite() {
  Suite s;
  for (auto make : {make_compress_benchmarks, make_crypto_benchmarks,
                    make_scimark_benchmarks, make_mpegaudio_benchmarks,
                    make_jvm98_benchmarks}) {
    for (Benchmark& b : make(s.program)) {
      s.benchmarks.push_back(std::move(b));
    }
  }
  return s;
}

Corpus make_corpus(const CorpusOptions& options) {
  Corpus c;
  Suite suite = make_suite();
  c.program = std::move(suite.program);
  c.benchmarks = std::move(suite.benchmarks);
  c.kernel_methods = c.program.methods.size();

  // Benchmarks the generated tail is attributed to, round-robin.
  std::vector<std::string> tags;
  for (const Benchmark& b : c.benchmarks) tags.push_back(b.name);

  std::mt19937_64 rng(options.seed);
  // Log-normal around the paper's Table 9 shape: median 29 => mu = ln 29.
  std::lognormal_distribution<double> size_dist(std::log(25.0), 1.25);
  std::uniform_real_distribution<double> uni(0.0, 1.0);

  // Generated leaf helpers that later methods can call (the Call-group
  // population of a real corpus; §6.3 services them at the GPP).
  std::vector<std::string> callables;
  for (int h = 0; h < 8 && options.total_methods > 0; ++h) {
    GeneratorOptions gopt;
    gopt.target_size = 8 + static_cast<int>(rng() % 10);
    const std::string name =
        "synthetic.lib.helper" + std::to_string(h) + "(IIADFJ)I";
    c.program.methods.push_back(generate_method(
        c.program, name, tags[static_cast<std::size_t>(h) % tags.size()],
        options.seed + 31ULL * static_cast<std::uint64_t>(h + 1), gopt));
    callables.push_back(name);
  }

  int idx = 0;
  while (c.program.methods.size() <
         static_cast<std::size_t>(options.total_methods)) {
    int target;
    const double r = uni(rng);
    if (r < 0.42) {
      // Small-method slice (< 10 instructions — excluded by Filter 1).
      target = 3 + static_cast<int>(rng() % 6);
    } else if (r < 0.995) {
      target = static_cast<int>(size_dist(rng));
      target = std::clamp(target, 10, 980);
    } else {
      // A few oversized methods (> 1000 — excluded by Filter 1).
      target = 1050 + static_cast<int>(rng() % 400);
    }
    const std::string& tag = tags[static_cast<std::size_t>(idx) %
                                  tags.size()];
    GeneratorOptions gopt;
    gopt.target_size = target;
    gopt.callables = callables;
    const std::string name = "synthetic." + tag + ".m" +
                             std::to_string(idx) + "(IIADFJ)I";
    c.program.methods.push_back(
        generate_method(c.program, name, tag, options.seed + 7919ULL *
                        static_cast<std::uint64_t>(idx + 1), gopt));
    ++idx;
  }
  return c;
}

}  // namespace javaflow::workloads
