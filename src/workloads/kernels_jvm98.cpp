// SpecJvm98 object-oriented benchmark analogues (paper Table 4):
//   _202_jess  — rule-engine token equality: Value.equals,
//                ValueVector.equals, Token.data_equals, Node2.runTests
//   _209_db    — String.compareTo, Database.shell_sort, Vector.elementAt
//   _227_mtrt  — raytracer helpers: Point.Combine, OctNode.FindTreeNode,
//                Face.GetVert
//   _228_jack  — parser-generator: RunTimeNfaState.Move and a tokenizer
//                getNextTokenFromStream (tableswitch on char classes)
//
// These kernels exercise the object/field/call instruction groups the
// scientific kernels mostly avoid, which matters for the static-mix
// heterogeneity analysis (Table 6) and the control-flow analysis (Table 7).
#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include "bytecode/assembler.hpp"
#include "workloads/workloads.hpp"

namespace javaflow::workloads {
namespace {

using bytecode::Assembler;
using bytecode::ClassDef;
using bytecode::Op;
using bytecode::Program;
using bytecode::ValueType;
using jvm::Interpreter;
using jvm::Ref;
using jvm::Value;

const std::string kValue = "spec.benchmarks._202_jess.jess.Value";
const std::string kVV = "spec.benchmarks._202_jess.jess.ValueVector";
const std::string kToken = "spec.benchmarks._202_jess.jess.Token";
const std::string kNode2 = "spec.benchmarks._202_jess.jess.Node2";
const std::string kString = "java.lang.String";
const std::string kDb = "spec.benchmarks._209_db.Database";
const std::string kVector = "java.util.Vector";
const std::string kPoint = "spec.benchmarks._205_raytrace.Point";
const std::string kOct = "spec.benchmarks._205_raytrace.OctNode";
const std::string kFace = "spec.benchmarks._205_raytrace.Face";
const std::string kNfa = "spec.benchmarks._228_jack.RunTimeNfaState";
const std::string kTok = "spec.benchmarks._228_jack.TokenEngine";

// ---- _202_jess --------------------------------------------------------------

void build_jess(Program& p) {
  p.classes[kValue] = ClassDef{
      kValue,
      {{"type", ValueType::Int}, {"intval", ValueType::Int},
       {"floatval", ValueType::Double}},
      {}};
  p.classes[kVV] =
      ClassDef{kVV, {{"items", ValueType::Ref}, {"size", ValueType::Int}}, {}};
  p.classes[kToken] = ClassDef{
      kToken, {{"facts", ValueType::Ref}, {"size", ValueType::Int}}, {}};

  {
    // boolean Value.equals(Value other): type tag switch + payload compare.
    Assembler a(p, kValue + ".equals(A)Z", "_202_jess");
    a.instance().args({ValueType::Ref, ValueType::Ref})
        .returns(ValueType::Int);
    const int kThis = 0, kOther = 1;
    auto neq = a.new_label(), types_match = a.new_label();
    a.aload(kThis).getfield(kValue, "type", ValueType::Int);
    a.aload(kOther).getfield(kValue, "type", ValueType::Int);
    a.if_icmpeq(types_match);
    a.iconst(0).op(Op::ireturn);
    a.bind(types_match);
    auto is_float = a.new_label();
    a.aload(kThis).getfield(kValue, "type", ValueType::Int);
    a.iconst(1).if_icmpeq(is_float);
    // int payload
    a.aload(kThis).getfield(kValue, "intval", ValueType::Int);
    a.aload(kOther).getfield(kValue, "intval", ValueType::Int);
    a.if_icmpne(neq);
    a.iconst(1).op(Op::ireturn);
    a.bind(is_float);
    a.aload(kThis).getfield(kValue, "floatval", ValueType::Double);
    a.aload(kOther).getfield(kValue, "floatval", ValueType::Double);
    a.op(Op::dcmpl).ifne(neq);
    a.iconst(1).op(Op::ireturn);
    a.bind(neq);
    a.iconst(0).op(Op::ireturn);
    p.methods.push_back(a.build());
  }
  {
    // boolean ValueVector.equals(ValueVector other)
    Assembler a(p, kVV + ".equals(A)Z", "_202_jess");
    a.instance().args({ValueType::Ref, ValueType::Ref})
        .returns(ValueType::Int);
    const int kThis = 0, kOther = 1, kK = 2;
    auto neq = a.new_label(), size_ok = a.new_label();
    a.aload(kThis).getfield(kVV, "size", ValueType::Int);
    a.aload(kOther).getfield(kVV, "size", ValueType::Int);
    a.if_icmpeq(size_ok);
    a.iconst(0).op(Op::ireturn);
    a.bind(size_ok);
    a.iconst(0).istore(kK);
    auto head = a.new_label(), done = a.new_label();
    a.bind(head);
    a.iload(kK).aload(kThis).getfield(kVV, "size", ValueType::Int)
        .if_icmpge(done);
    a.aload(kThis).getfield(kVV, "items", ValueType::Ref);
    a.iload(kK).op(Op::aaload);
    a.aload(kOther).getfield(kVV, "items", ValueType::Ref);
    a.iload(kK).op(Op::aaload);
    a.invokevirtual(kValue + ".equals(A)Z", 2, ValueType::Int);
    a.ifeq(neq);
    a.iinc(kK, 1);
    a.goto_(head);
    a.bind(done);
    a.iconst(1).op(Op::ireturn);
    a.bind(neq);
    a.iconst(0).op(Op::ireturn);
    p.methods.push_back(a.build());
  }
  {
    // boolean Token.data_equals(Token other)
    Assembler a(p, kToken + ".data_equals(A)Z", "_202_jess");
    a.instance().args({ValueType::Ref, ValueType::Ref})
        .returns(ValueType::Int);
    const int kThis = 0, kOther = 1, kK = 2;
    auto neq = a.new_label(), size_ok = a.new_label();
    a.aload(kThis).getfield(kToken, "size", ValueType::Int);
    a.aload(kOther).getfield(kToken, "size", ValueType::Int);
    a.if_icmpeq(size_ok);
    a.iconst(0).op(Op::ireturn);
    a.bind(size_ok);
    a.iconst(0).istore(kK);
    auto head = a.new_label(), done = a.new_label();
    a.bind(head);
    a.iload(kK).aload(kThis).getfield(kToken, "size", ValueType::Int)
        .if_icmpge(done);
    a.aload(kThis).getfield(kToken, "facts", ValueType::Ref);
    a.iload(kK).op(Op::aaload);
    a.aload(kOther).getfield(kToken, "facts", ValueType::Ref);
    a.iload(kK).op(Op::aaload);
    a.invokevirtual(kVV + ".equals(A)Z", 2, ValueType::Int);
    a.ifeq(neq);
    a.iinc(kK, 1);
    a.goto_(head);
    a.bind(done);
    a.iconst(1).op(Op::ireturn);
    a.bind(neq);
    a.iconst(0).op(Op::ireturn);
    p.methods.push_back(a.build());
  }
  {
    // static int Node2.runTestsVaryRight(Token probe, Token[] rights):
    // the paper's Table 4 hot method — one left token tested against the
    // right memory, early-exiting on the first miss streak like the Rete
    // join nodes do.
    Assembler a(p, kNode2 + ".runTestsVaryRight(AA)I", "_202_jess");
    a.args({ValueType::Ref, ValueType::Ref}).returns(ValueType::Int);
    const int kProbe = 0, kRights = 1, kK = 2, kHits = 3, kMisses = 4;
    a.iconst(0).istore(kHits);
    a.iconst(0).istore(kMisses);
    a.iconst(0).istore(kK);
    auto head = a.new_label(), done = a.new_label(), miss = a.new_label(),
         cont = a.new_label();
    a.bind(head);
    a.iload(kK).aload(kRights).op(Op::arraylength).if_icmpge(done);
    a.aload(kProbe);
    a.aload(kRights).iload(kK).op(Op::aaload);
    a.invokevirtual(kToken + ".data_equals(A)Z", 2, ValueType::Int);
    a.ifeq(miss);
    a.iinc(kHits, 1);
    a.iconst(0).istore(kMisses);
    a.goto_(cont);
    a.bind(miss);
    a.iinc(kMisses, 1);
    a.iload(kMisses).iconst(32).if_icmplt(cont);
    a.goto_(done);  // long miss streak: give up early
    a.bind(cont);
    a.iinc(kK, 1);
    a.goto_(head);
    a.bind(done);
    a.iload(kHits).op(Op::ireturn);
    p.methods.push_back(a.build());
  }
  {
    // static int Node2.runTests(Token[] left, Token probe): counts matches
    // — the join-node test loop of the rule engine.
    Assembler a(p, kNode2 + ".runTests(AA)I", "_202_jess");
    a.args({ValueType::Ref, ValueType::Ref}).returns(ValueType::Int);
    const int kLeft = 0, kProbe = 1, kK = 2, kHits = 3;
    a.iconst(0).istore(kHits);
    a.iconst(0).istore(kK);
    auto head = a.new_label(), done = a.new_label(), miss = a.new_label();
    a.bind(head);
    a.iload(kK).aload(kLeft).op(Op::arraylength).if_icmpge(done);
    a.aload(kLeft).iload(kK).op(Op::aaload);
    a.aload(kProbe);
    a.invokevirtual(kToken + ".data_equals(A)Z", 2, ValueType::Int);
    a.ifeq(miss);
    a.iinc(kHits, 1);
    a.bind(miss);
    a.iinc(kK, 1);
    a.goto_(head);
    a.bind(done);
    a.iload(kHits).op(Op::ireturn);
    p.methods.push_back(a.build());
  }
}

// ---- _209_db ----------------------------------------------------------------

void build_db(Program& p) {
  {
    // static int compareTo(int[] a, int[] b): lexicographic char-array
    // compare — java.lang.String.compareTo's loop.
    Assembler a(p, kString + ".compareTo(AA)I", "_209_db");
    a.args({ValueType::Ref, ValueType::Ref}).returns(ValueType::Int);
    const int kA = 0, kB = 1, kN = 2, kK = 3, kD = 4;
    // n = min(a.length, b.length)
    a.aload(kA).op(Op::arraylength).istore(kN);
    auto amin = a.new_label();
    a.aload(kB).op(Op::arraylength).iload(kN).if_icmpge(amin);
    a.aload(kB).op(Op::arraylength).istore(kN);
    a.bind(amin);
    a.iconst(0).istore(kK);
    auto head = a.new_label(), done = a.new_label();
    a.bind(head);
    a.iload(kK).iload(kN).if_icmpge(done);
    a.aload(kA).iload(kK).op(Op::iaload);
    a.aload(kB).iload(kK).op(Op::iaload);
    a.op(Op::isub).istore(kD);
    auto cont = a.new_label();
    a.iload(kD).ifeq(cont);
    a.iload(kD).op(Op::ireturn);
    a.bind(cont);
    a.iinc(kK, 1);
    a.goto_(head);
    a.bind(done);
    a.aload(kA).op(Op::arraylength);
    a.aload(kB).op(Op::arraylength);
    a.op(Op::isub).op(Op::ireturn);
    p.methods.push_back(a.build());
  }
  {
    // static void shell_sort(Ref[] index, int n): gap sort over string
    // handles using compareTo.
    Assembler a(p, kDb + ".shell_sort(AI)V", "_209_db");
    a.args({ValueType::Ref, ValueType::Int}).returns(ValueType::Void);
    const int kIdx = 0, kN = 1, kGap = 2, kI = 3, kJ = 4, kTmp = 5;
    a.iload(kN).iconst(2).op(Op::idiv).istore(kGap);
    auto gap_head = a.new_label(), gap_done = a.new_label();
    a.bind(gap_head);
    a.iload(kGap).ifle(gap_done);
    a.iload(kGap).istore(kI);
    auto i_head = a.new_label(), i_done = a.new_label();
    a.bind(i_head);
    a.iload(kI).iload(kN).if_icmpge(i_done);
    a.aload(kIdx).iload(kI).op(Op::aaload).astore(kTmp);
    a.iload(kI).istore(kJ);
    auto j_head = a.new_label(), j_done = a.new_label();
    a.bind(j_head);
    a.iload(kJ).iload(kGap).if_icmplt(j_done);
    // if (compareTo(index[j-gap], tmp) <= 0) break
    a.aload(kIdx).iload(kJ).iload(kGap).op(Op::isub).op(Op::aaload);
    a.aload(kTmp);
    a.invokestatic(kString + ".compareTo(AA)I", 2, ValueType::Int);
    a.ifle(j_done);
    // index[j] = index[j-gap]; j -= gap
    a.aload(kIdx).iload(kJ);
    a.aload(kIdx).iload(kJ).iload(kGap).op(Op::isub).op(Op::aaload);
    a.op(Op::aastore);
    a.iload(kJ).iload(kGap).op(Op::isub).istore(kJ);
    a.goto_(j_head);
    a.bind(j_done);
    a.aload(kIdx).iload(kJ).aload(kTmp).op(Op::aastore);
    a.iinc(kI, 1);
    a.goto_(i_head);
    a.bind(i_done);
    a.iload(kGap).iconst(2).op(Op::idiv).istore(kGap);
    a.goto_(gap_head);
    a.bind(gap_done);
    a.op(Op::return_);
    p.methods.push_back(a.build());
  }
  {
    // static Ref elementAt(Ref[] data, int count, int i): bound-checked
    // access (Vector.elementAt + checkBoundExclusive folded together).
    Assembler a(p, kVector + ".elementAt(AII)A", "_209_db");
    a.args({ValueType::Ref, ValueType::Int, ValueType::Int})
        .returns(ValueType::Ref);
    const int kData = 0, kCount = 1, kI = 2;
    auto ok = a.new_label();
    a.iload(kI).iload(kCount).if_icmplt(ok);
    a.op(Op::aconst_null).op(Op::areturn);  // out of bounds -> null
    a.bind(ok);
    a.aload(kData).iload(kI).op(Op::aaload).op(Op::areturn);
    p.methods.push_back(a.build());
  }
}

void build_db_extras(Program& p) {
  p.classes["java.util.Hashtable$Entry"] = ClassDef{
      "java.util.Hashtable$Entry",
      {{"key", ValueType::Int}, {"next", ValueType::Ref}},
      {}};
  {
    // static Ref nextElement(Ref[] buckets, int bucket, Ref current):
    // java.util.Hashtable$EntryEnumerator.nextElement's walk (paper
    // Table 4, _228_jack): follow the chain, else scan later buckets.
    Assembler a(p, "java.util.Hashtable$EntryEnumerator.nextElement(AIA)A",
                "_228_jack");
    a.args({ValueType::Ref, ValueType::Int, ValueType::Ref})
        .returns(ValueType::Ref);
    const int kBuckets = 0, kBucket = 1, kCurrent = 2, kB = 3, kNext = 4;
    auto scan = a.new_label();
    a.aload(kCurrent).ifnull(scan);
    a.aload(kCurrent)
        .getfield("java.util.Hashtable$Entry", "next", ValueType::Ref)
        .astore(kNext);
    auto chain_done = a.new_label();
    a.aload(kNext).ifnull(chain_done);
    a.aload(kNext).op(Op::areturn);
    a.bind(chain_done);
    a.iinc(kBucket, 1);
    a.bind(scan);
    a.iload(kBucket).istore(kB);
    auto head = a.new_label(), done = a.new_label(), skip = a.new_label();
    a.bind(head);
    a.iload(kB).aload(kBuckets).op(Op::arraylength).if_icmpge(done);
    a.aload(kBuckets).iload(kB).op(Op::aaload).ifnull(skip);
    a.aload(kBuckets).iload(kB).op(Op::aaload).op(Op::areturn);
    a.bind(skip);
    a.iinc(kB, 1);
    a.goto_(head);
    a.bind(done);
    a.op(Op::aconst_null).op(Op::areturn);
    p.methods.push_back(a.build());
  }
  {
    // static int index_of(Ref[] index, int n, Ref key): linear search of
    // the sorted index with String.compareTo — Database's lookup loop.
    Assembler a(p, kDb + ".index_of(AIA)I", "_209_db");
    a.args({ValueType::Ref, ValueType::Int, ValueType::Ref})
        .returns(ValueType::Int);
    const int kIdx = 0, kN = 1, kKey = 2, kK = 3;
    a.iconst(0).istore(kK);
    auto head = a.new_label(), done = a.new_label(), miss = a.new_label();
    a.bind(head);
    a.iload(kK).iload(kN).if_icmpge(done);
    a.aload(kIdx).iload(kK).op(Op::aaload);
    a.aload(kKey);
    a.invokestatic(kString + ".compareTo(AA)I", 2, ValueType::Int);
    a.ifne(miss);
    a.iload(kK).op(Op::ireturn);
    a.bind(miss);
    a.iinc(kK, 1);
    a.goto_(head);
    a.bind(done);
    a.iconst(-1).op(Op::ireturn);
    p.methods.push_back(a.build());
  }
}

// ---- _227_mtrt ---------------------------------------------------------------

void build_mtrt(Program& p) {
  p.classes[kPoint] = ClassDef{
      kPoint,
      {{"x", ValueType::Float}, {"y", ValueType::Float},
       {"z", ValueType::Float}},
      {}};
  p.classes[kOct] = ClassDef{
      kOct,
      {{"child", ValueType::Ref},   // OctNode[8], null for leaf
       {"minx", ValueType::Float}, {"miny", ValueType::Float},
       {"minz", ValueType::Float}, {"midx", ValueType::Float},
       {"midy", ValueType::Float}, {"midz", ValueType::Float}},
      {}};
  p.classes[kFace] =
      ClassDef{kFace, {{"verts", ValueType::Ref}}, {}};

  {
    // void Point.Combine(Point p, Point v, float s1, float s2):
    //   this = s1*p + s2*v  (component-wise)
    Assembler a(p, kPoint + ".Combine(AAFF)V", "_227_mtrt");
    a.instance()
        .args({ValueType::Ref, ValueType::Ref, ValueType::Ref,
               ValueType::Float, ValueType::Float})
        .returns(ValueType::Void);
    const int kThis = 0, kP = 1, kV = 2, kS1 = 3, kS2 = 4;
    for (const char* f : {"x", "y", "z"}) {
      a.aload(kThis);
      a.fload(kS1).aload(kP).getfield(kPoint, f, ValueType::Float)
          .op(Op::fmul);
      a.fload(kS2).aload(kV).getfield(kPoint, f, ValueType::Float)
          .op(Op::fmul);
      a.op(Op::fadd);
      a.putfield(kPoint, f, ValueType::Float);
    }
    a.op(Op::return_);
    p.methods.push_back(a.build());
  }
  {
    // OctNode OctNode.FindTreeNode(Point p): descend the octree to the
    // leaf containing p (recursive, as in the original).
    Assembler a(p, kOct + ".FindTreeNode(A)A", "_227_mtrt");
    a.instance().args({ValueType::Ref, ValueType::Ref})
        .returns(ValueType::Ref);
    const int kThis = 0, kP = 1, kIdx = 2;
    auto leaf = a.new_label();
    a.aload(kThis).getfield(kOct, "child", ValueType::Ref);
    a.ifnull(leaf);
    // idx = (p.x >= midx) | (p.y >= midy)<<1 | (p.z >= midz)<<2
    a.iconst(0).istore(kIdx);
    auto xlo = a.new_label();
    a.aload(kP).getfield(kPoint, "x", ValueType::Float);
    a.aload(kThis).getfield(kOct, "midx", ValueType::Float);
    a.op(Op::fcmpl).iflt(xlo);
    a.iload(kIdx).iconst(1).op(Op::ior).istore(kIdx);
    a.bind(xlo);
    auto ylo = a.new_label();
    a.aload(kP).getfield(kPoint, "y", ValueType::Float);
    a.aload(kThis).getfield(kOct, "midy", ValueType::Float);
    a.op(Op::fcmpl).iflt(ylo);
    a.iload(kIdx).iconst(2).op(Op::ior).istore(kIdx);
    a.bind(ylo);
    auto zlo = a.new_label();
    a.aload(kP).getfield(kPoint, "z", ValueType::Float);
    a.aload(kThis).getfield(kOct, "midz", ValueType::Float);
    a.op(Op::fcmpl).iflt(zlo);
    a.iload(kIdx).iconst(4).op(Op::ior).istore(kIdx);
    a.bind(zlo);
    a.aload(kThis).getfield(kOct, "child", ValueType::Ref);
    a.iload(kIdx).op(Op::aaload);
    a.aload(kP);
    a.invokevirtual(kOct + ".FindTreeNode(A)A", 2, ValueType::Ref);
    a.op(Op::areturn);
    a.bind(leaf);
    a.aload(kThis).op(Op::areturn);
    p.methods.push_back(a.build());
  }
  {
    // Ref Face.GetVert(int i)
    Assembler a(p, kFace + ".GetVert(I)A", "_227_mtrt");
    a.instance().args({ValueType::Ref, ValueType::Int})
        .returns(ValueType::Ref);
    a.aload(0).getfield(kFace, "verts", ValueType::Ref);
    a.iload(1).op(Op::aaload).op(Op::areturn);
    p.methods.push_back(a.build());
  }
  {
    // float OctNode.Intersect(Point org, Point dir, float t): slab-test
    // style intersection arithmetic — dominated by float compares like the
    // original's.
    Assembler a(p, kOct + ".Intersect(AAF)F", "_227_mtrt");
    a.instance()
        .args({ValueType::Ref, ValueType::Ref, ValueType::Ref,
               ValueType::Float})
        .returns(ValueType::Float);
    const int kThis = 0, kOrg = 1, kDir = 2, kT = 3, kBest = 4;
    a.fload(kT).fstore(kBest);
    // for each axis: tx = (mid - org) / dir; if (0 < tx < best) best = tx
    const char* mids[3] = {"midx", "midy", "midz"};
    const char* axes[3] = {"x", "y", "z"};
    for (int ax = 0; ax < 3; ++ax) {
      auto skip = a.new_label();
      // guard dir.axis == 0
      a.aload(kDir).getfield(kPoint, axes[ax], ValueType::Float);
      a.fconst(0.0).op(Op::fcmpl).ifeq(skip);
      a.aload(kThis).getfield(kOct, mids[ax], ValueType::Float);
      a.aload(kOrg).getfield(kPoint, axes[ax], ValueType::Float);
      a.op(Op::fsub);
      a.aload(kDir).getfield(kPoint, axes[ax], ValueType::Float);
      a.op(Op::fdiv);
      a.fstore(kT);
      auto not_better = a.new_label();
      a.fload(kT).fconst(0.0).op(Op::fcmpl).ifle(not_better);
      a.fload(kT).fload(kBest).op(Op::fcmpg).ifge(not_better);
      a.fload(kT).fstore(kBest);
      a.bind(not_better);
      a.bind(skip);
    }
    a.fload(kBest).op(Op::freturn);
    p.methods.push_back(a.build());
  }
}

// ---- _228_jack ---------------------------------------------------------------

void build_jack(Program& p) {
  p.classes[kNfa] = ClassDef{
      kNfa,
      {{"lo", ValueType::Ref}, {"hi", ValueType::Ref},
       {"next", ValueType::Ref}, {"count", ValueType::Int}},
      {}};

  {
    // int RunTimeNfaState.Move(int c): scan [lo[k], hi[k]] ranges; return
    // next[k] for the first containing c, else -1.
    Assembler a(p, kNfa + ".Move(I)I", "_228_jack");
    a.instance().args({ValueType::Ref, ValueType::Int})
        .returns(ValueType::Int);
    const int kThis = 0, kC = 1, kK = 2;
    a.iconst(0).istore(kK);
    auto head = a.new_label(), done = a.new_label(), miss = a.new_label();
    a.bind(head);
    a.iload(kK).aload(kThis).getfield(kNfa, "count", ValueType::Int)
        .if_icmpge(done);
    a.iload(kC);
    a.aload(kThis).getfield(kNfa, "lo", ValueType::Ref);
    a.iload(kK).op(Op::iaload);
    a.if_icmplt(miss);
    a.iload(kC);
    a.aload(kThis).getfield(kNfa, "hi", ValueType::Ref);
    a.iload(kK).op(Op::iaload);
    a.if_icmpgt(miss);
    a.aload(kThis).getfield(kNfa, "next", ValueType::Ref);
    a.iload(kK).op(Op::iaload);
    a.op(Op::ireturn);
    a.bind(miss);
    a.iinc(kK, 1);
    a.goto_(head);
    a.bind(done);
    a.iconst(-1).op(Op::ireturn);
    p.methods.push_back(a.build());
  }
  {
    // static int getNextTokenFromStream(int[] text, int pos, int[] out):
    //   classify by tableswitch on a 4-way char class, scan the token,
    //   record [kind, end] in out, return end position. The paper singles
    //   out switch structures as interpreter-hostile (§3.3) — this kernel
    //   keeps one in the corpus.
    Assembler a(p, kTok + ".getNextTokenFromStream(AIA)I", "_228_jack");
    a.args({ValueType::Ref, ValueType::Int, ValueType::Ref})
        .returns(ValueType::Int);
    const int kText = 0, kPos = 1, kOut = 2, kC = 3, kKind = 4, kCls = 5;
    auto have = a.new_label();
    a.iload(kPos).aload(kText).op(Op::arraylength).if_icmplt(have);
    a.iconst(-1).op(Op::ireturn);
    a.bind(have);
    a.aload(kText).iload(kPos).op(Op::iaload).istore(kC);
    // cls: 0 space, 1 digit, 2 alpha, 3 other
    auto classify_done = a.new_label();
    auto not_space = a.new_label(), not_digit = a.new_label(),
         not_alpha = a.new_label();
    a.iload(kC).iconst(' ').if_icmpne(not_space);
    a.iconst(0).istore(kCls);
    a.goto_(classify_done);
    a.bind(not_space);
    a.iload(kC).iconst('0').if_icmplt(not_digit);
    a.iload(kC).iconst('9').if_icmpgt(not_digit);
    a.iconst(1).istore(kCls);
    a.goto_(classify_done);
    a.bind(not_digit);
    a.iload(kC).iconst('a').if_icmplt(not_alpha);
    a.iload(kC).iconst('z').if_icmpgt(not_alpha);
    a.iconst(2).istore(kCls);
    a.goto_(classify_done);
    a.bind(not_alpha);
    a.iconst(3).istore(kCls);
    a.bind(classify_done);
    // tableswitch on cls
    auto ws = a.new_label(), num = a.new_label(), word = a.new_label(),
         other = a.new_label(), dflt = a.new_label();
    a.iload(kCls);
    a.tableswitch(0, {ws, num, word, other}, dflt);
    // whitespace: skip run
    a.bind(ws);
    {
      a.iconst(0).istore(kKind);
      auto h = a.new_label(), d = a.new_label();
      a.bind(h);
      a.iload(kPos).aload(kText).op(Op::arraylength).if_icmpge(d);
      a.aload(kText).iload(kPos).op(Op::iaload).iconst(' ').if_icmpne(d);
      a.iinc(kPos, 1);
      a.goto_(h);
      a.bind(d);
      auto fin = a.new_label();
      a.goto_(fin);
      // number: scan digits
      a.bind(num);
      a.iconst(1).istore(kKind);
      auto h2 = a.new_label(), d2 = a.new_label();
      a.bind(h2);
      a.iload(kPos).aload(kText).op(Op::arraylength).if_icmpge(d2);
      a.aload(kText).iload(kPos).op(Op::iaload).iconst('0').if_icmplt(d2);
      a.aload(kText).iload(kPos).op(Op::iaload).iconst('9').if_icmpgt(d2);
      a.iinc(kPos, 1);
      a.goto_(h2);
      a.bind(d2);
      a.goto_(fin);
      // word: scan letters
      a.bind(word);
      a.iconst(2).istore(kKind);
      auto h3 = a.new_label(), d3 = a.new_label();
      a.bind(h3);
      a.iload(kPos).aload(kText).op(Op::arraylength).if_icmpge(d3);
      a.aload(kText).iload(kPos).op(Op::iaload).iconst('a').if_icmplt(d3);
      a.aload(kText).iload(kPos).op(Op::iaload).iconst('z').if_icmpgt(d3);
      a.iinc(kPos, 1);
      a.goto_(h3);
      a.bind(d3);
      a.goto_(fin);
      // other / default: single char token
      a.bind(other);
      a.bind(dflt);
      a.iconst(3).istore(kKind);
      a.iinc(kPos, 1);
      a.bind(fin);
    }
    a.aload(kOut).iconst(0).iload(kKind).op(Op::iastore);
    a.aload(kOut).iconst(1).iload(kPos).op(Op::iastore);
    a.iload(kPos).op(Op::ireturn);
    p.methods.push_back(a.build());
  }
  {
    // static int[] stringInit(int[] src): copy constructor —
    // java.lang.String.<init>([C)V in the paper's Table 4.
    Assembler a(p, kString + ".init(A)A", "_228_jack");
    a.args({ValueType::Ref}).returns(ValueType::Ref);
    const int kSrc = 0, kDst = 1, kK = 2;
    a.aload(kSrc).op(Op::arraylength).newarray(ValueType::Int).astore(kDst);
    a.iconst(0).istore(kK);
    auto head = a.new_label(), done = a.new_label();
    a.bind(head);
    a.iload(kK).aload(kSrc).op(Op::arraylength).if_icmpge(done);
    a.aload(kDst).iload(kK);
    a.aload(kSrc).iload(kK).op(Op::iaload);
    a.op(Op::iastore);
    a.iinc(kK, 1);
    a.goto_(head);
    a.bind(done);
    a.aload(kDst).op(Op::areturn);
    p.methods.push_back(a.build());
  }
}

// ---- drivers ----------------------------------------------------------------

void expect(bool ok, const char* what) {
  if (!ok) {
    throw std::runtime_error(std::string("jvm98 check failed: ") + what);
  }
}

Ref make_value(Interpreter& vm, int type, int iv, double fv) {
  auto& h = vm.heap();
  const Ref v = h.new_object(*vm.program().find_class(kValue));
  const auto& cls = *vm.program().find_class(kValue);
  h.put_field(v, *cls.instance_slot("type"), Value::make_int(type));
  h.put_field(v, *cls.instance_slot("intval"), Value::make_int(iv));
  h.put_field(v, *cls.instance_slot("floatval"), Value::make_double(fv));
  return v;
}

Ref make_vv(Interpreter& vm, const std::vector<Ref>& vals) {
  auto& h = vm.heap();
  const Ref items =
      h.new_array(ValueType::Ref, static_cast<std::int32_t>(vals.size()));
  for (std::size_t k = 0; k < vals.size(); ++k) {
    h.array_set(items, static_cast<std::int32_t>(k),
                Value::make_ref(vals[k]));
  }
  const Ref vv = h.new_object(*vm.program().find_class(kVV));
  const auto& cls = *vm.program().find_class(kVV);
  h.put_field(vv, *cls.instance_slot("items"), Value::make_ref(items));
  h.put_field(vv, *cls.instance_slot("size"),
              Value::make_int(static_cast<std::int32_t>(vals.size())));
  return vv;
}

Ref make_token(Interpreter& vm, const std::vector<Ref>& vvs) {
  auto& h = vm.heap();
  const Ref facts =
      h.new_array(ValueType::Ref, static_cast<std::int32_t>(vvs.size()));
  for (std::size_t k = 0; k < vvs.size(); ++k) {
    h.array_set(facts, static_cast<std::int32_t>(k),
                Value::make_ref(vvs[k]));
  }
  const Ref t = h.new_object(*vm.program().find_class(kToken));
  const auto& cls = *vm.program().find_class(kToken);
  h.put_field(t, *cls.instance_slot("facts"), Value::make_ref(facts));
  h.put_field(t, *cls.instance_slot("size"),
              Value::make_int(static_cast<std::int32_t>(vvs.size())));
  return t;
}

void run_jess(Interpreter& vm) {
  auto& h = vm.heap();
  // Build 64 tokens, 8 distinct patterns repeated — expect 8 matches each.
  std::vector<Ref> tokens;
  for (int t = 0; t < 64; ++t) {
    std::vector<Ref> vvs;
    for (int v = 0; v < 3; ++v) {
      std::vector<Ref> vals;
      for (int k = 0; k < 4; ++k) {
        vals.push_back(make_value(vm, k % 2, (t % 8) * 10 + k,
                                  0.5 * (t % 8) + k));
      }
      vvs.push_back(make_vv(vm, vals));
    }
    tokens.push_back(make_token(vm, vvs));
  }
  const Ref left = h.new_array(ValueType::Ref, 64);
  for (int t = 0; t < 64; ++t) {
    h.array_set(left, t, Value::make_ref(tokens[static_cast<std::size_t>(t)]));
  }
  for (int probe = 0; probe < 64; probe += 7) {
    const Value hits = vm.invoke(
        kNode2 + ".runTests(AA)I",
        {Value::make_ref(left),
         Value::make_ref(tokens[static_cast<std::size_t>(probe)])});
    expect(hits.as_int() == 8, "jess join hit count");
    const Value vary = vm.invoke(
        kNode2 + ".runTestsVaryRight(AA)I",
        {Value::make_ref(tokens[static_cast<std::size_t>(probe)]),
         Value::make_ref(left)});
    expect(vary.as_int() == 8, "jess vary-right hit count");
  }
}

void run_db(Interpreter& vm) {
  auto& h = vm.heap();
  const int n = 160;
  std::vector<std::string> words;
  unsigned s = 17;
  for (int k = 0; k < n; ++k) {
    std::string w;
    const int len = 3 + static_cast<int>(s % 10);
    for (int c = 0; c < len; ++c) {
      s = s * 1103515245u + 12345u;
      w.push_back(static_cast<char>('a' + (s >> 16) % 26));
    }
    words.push_back(w);
  }
  const Ref idx = h.new_array(ValueType::Ref, n);
  for (int k = 0; k < n; ++k) {
    h.array_set(idx, k,
                Value::make_ref(h.new_string(words[static_cast<std::size_t>(k)])));
  }
  vm.invoke(kDb + ".shell_sort(AI)V",
            {Value::make_ref(idx), Value::make_int(n)});
  std::sort(words.begin(), words.end());
  for (int k = 0; k < n; ++k) {
    expect(h.read_string(h.array_get(idx, k).as_ref()) ==
               words[static_cast<std::size_t>(k)],
           "db sort order");
  }
  const Value e = vm.invoke(kVector + ".elementAt(AII)A",
                            {Value::make_ref(idx), Value::make_int(n),
                             Value::make_int(5)});
  expect(e.as_ref() == h.array_get(idx, 5).as_ref(), "vector elementAt");
  // index_of finds every entry at its sorted position.
  for (int k = 0; k < n; k += 13) {
    const Value at = vm.invoke(
        kDb + ".index_of(AIA)I",
        {Value::make_ref(idx), Value::make_int(n), h.array_get(idx, k)});
    expect(at.as_int() == k, "db index_of");
  }
  const Ref missing = h.new_string("zzzzzz-not-there");
  const Value none = vm.invoke(
      kDb + ".index_of(AIA)I",
      {Value::make_ref(idx), Value::make_int(n), Value::make_ref(missing)});
  expect(none.as_int() == -1, "db index_of miss");
}

Ref make_point(Interpreter& vm, float x, float y, float z) {
  auto& h = vm.heap();
  const Ref pt = h.new_object(*vm.program().find_class(kPoint));
  const auto& cls = *vm.program().find_class(kPoint);
  h.put_field(pt, *cls.instance_slot("x"), Value::make_float(x));
  h.put_field(pt, *cls.instance_slot("y"), Value::make_float(y));
  h.put_field(pt, *cls.instance_slot("z"), Value::make_float(z));
  return pt;
}

Ref make_octree(Interpreter& vm, float minx, float miny, float minz,
                float size, int depth) {
  auto& h = vm.heap();
  const auto& cls = *vm.program().find_class(kOct);
  const Ref node = h.new_object(cls);
  h.put_field(node, *cls.instance_slot("minx"), Value::make_float(minx));
  h.put_field(node, *cls.instance_slot("miny"), Value::make_float(miny));
  h.put_field(node, *cls.instance_slot("minz"), Value::make_float(minz));
  const float half = size / 2.0F;
  h.put_field(node, *cls.instance_slot("midx"),
              Value::make_float(minx + half));
  h.put_field(node, *cls.instance_slot("midy"),
              Value::make_float(miny + half));
  h.put_field(node, *cls.instance_slot("midz"),
              Value::make_float(minz + half));
  if (depth > 0) {
    const Ref children = h.new_array(ValueType::Ref, 8);
    for (int c = 0; c < 8; ++c) {
      const float ox = (c & 1) != 0 ? half : 0.0F;
      const float oy = (c & 2) != 0 ? half : 0.0F;
      const float oz = (c & 4) != 0 ? half : 0.0F;
      h.array_set(children, c,
                  Value::make_ref(make_octree(vm, minx + ox, miny + oy,
                                              minz + oz, half, depth - 1)));
    }
    h.put_field(node, *cls.instance_slot("child"), Value::make_ref(children));
  }
  return node;
}

void run_mtrt(Interpreter& vm) {
  auto& h = vm.heap();
  const Ref root = make_octree(vm, 0.0F, 0.0F, 0.0F, 8.0F, 3);
  const auto& oct_cls = *vm.program().find_class(kOct);
  for (int q = 0; q < 200; ++q) {
    const float x = 0.04F * static_cast<float>(q);
    const Ref pt = make_point(vm, x, 8.0F - x, 4.0F);
    const Value leaf = vm.invoke(kOct + ".FindTreeNode(A)A",
                                 {Value::make_ref(root), Value::make_ref(pt)});
    expect(leaf.as_ref() != jvm::kNull, "octree leaf found");
    // Leaf must actually be a leaf.
    expect(h.get_field(leaf.as_ref(), *oct_cls.instance_slot("child"))
                   .as_ref() == jvm::kNull,
           "FindTreeNode returns leaf");
    // Combine: p = 0.5*p + 2.0*v
    const Ref dst = make_point(vm, 0, 0, 0);
    const Ref v = make_point(vm, 1.0F, 2.0F, 3.0F);
    vm.invoke(kPoint + ".Combine(AAFF)V",
              {Value::make_ref(dst), Value::make_ref(pt), Value::make_ref(v),
               Value::make_float(0.5F), Value::make_float(2.0F)});
    const auto& pcls = *vm.program().find_class(kPoint);
    expect(static_cast<float>(
               h.get_field(dst, *pcls.instance_slot("y")).as_fp()) ==
               0.5F * (8.0F - x) + 4.0F,
           "Point.Combine");
    vm.invoke(kOct + ".Intersect(AAF)F",
              {Value::make_ref(root), Value::make_ref(dst),
               Value::make_ref(v), Value::make_float(100.0F)});
  }
  // Face.GetVert plumbing.
  const Ref verts = h.new_array(ValueType::Ref, 3);
  for (int k = 0; k < 3; ++k) {
    h.array_set(verts, k,
                Value::make_ref(make_point(vm, static_cast<float>(k), 0, 0)));
  }
  const Ref face = h.new_object(*vm.program().find_class(kFace));
  h.put_field(face, *vm.program().find_class(kFace)->instance_slot("verts"),
              Value::make_ref(verts));
  const Value vert = vm.invoke(kFace + ".GetVert(I)A",
                               {Value::make_ref(face), Value::make_int(2)});
  expect(vert.as_ref() == h.array_get(verts, 2).as_ref(), "Face.GetVert");
}

void run_jack(Interpreter& vm) {
  auto& h = vm.heap();
  const std::string text =
      "the quick brown fox 42 jumps over 123 lazy dogs + 7 times ";
  std::string input;
  for (int k = 0; k < 40; ++k) input += text;
  const Ref buf = h.new_string(input);
  const Ref out = h.new_array(ValueType::Int, 2);
  int pos = 0, tokens = 0, words = 0, numbers = 0;
  while (true) {
    const Value next = vm.invoke(
        kTok + ".getNextTokenFromStream(AIA)I",
        {Value::make_ref(buf), Value::make_int(pos), Value::make_ref(out)});
    if (next.as_int() < 0) break;
    const int kind = h.array_get(out, 0).as_int();
    if (kind == 2) {
      ++words;
      // String.<init> analogue: materialize the token
      vm.invoke(kString + ".init(A)A", {Value::make_ref(out)});
    }
    if (kind == 1) ++numbers;
    ++tokens;
    pos = next.as_int();
  }
  expect(words == 40 * 9, "jack word count");
  expect(numbers == 40 * 3, "jack number count");
  expect(tokens > 0, "jack token count");

  // NFA Move over synthetic ranges.
  const auto& nfa_cls = *vm.program().find_class(kNfa);
  const Ref nfa = h.new_object(nfa_cls);
  const Ref lo = h.new_array(ValueType::Int, 3);
  const Ref hi = h.new_array(ValueType::Int, 3);
  const Ref nx = h.new_array(ValueType::Int, 3);
  const int los[3] = {'0', 'a', ' '};
  const int his[3] = {'9', 'z', ' '};
  const int nxs[3] = {1, 2, 3};
  for (int k = 0; k < 3; ++k) {
    h.array_set(lo, k, Value::make_int(los[k]));
    h.array_set(hi, k, Value::make_int(his[k]));
    h.array_set(nx, k, Value::make_int(nxs[k]));
  }
  h.put_field(nfa, *nfa_cls.instance_slot("lo"), Value::make_ref(lo));
  h.put_field(nfa, *nfa_cls.instance_slot("hi"), Value::make_ref(hi));
  h.put_field(nfa, *nfa_cls.instance_slot("next"), Value::make_ref(nx));
  h.put_field(nfa, *nfa_cls.instance_slot("count"), Value::make_int(3));
  // Hashtable enumerator walk: 8 buckets, chains of varying length.
  {
    const auto& entry_cls = *vm.program().find_class("java.util.Hashtable$Entry");
    const Ref buckets = h.new_array(ValueType::Ref, 8);
    int total_entries = 0;
    for (int bkt = 0; bkt < 8; bkt += 2) {  // every other bucket occupied
      Ref chain = jvm::kNull;
      for (int e = 0; e <= bkt / 2; ++e) {
        const Ref node = h.new_object(entry_cls);
        h.put_field(node, *entry_cls.instance_slot("key"),
                    Value::make_int(bkt * 10 + e));
        h.put_field(node, *entry_cls.instance_slot("next"),
                    Value::make_ref(chain));
        chain = node;
        ++total_entries;
      }
      h.array_set(buckets, bkt, Value::make_ref(chain));
    }
    int seen = 0, bucket = 0;
    Ref current = jvm::kNull;
    while (true) {
      const Value nxt = vm.invoke(
          "java.util.Hashtable$EntryEnumerator.nextElement(AIA)A",
          {Value::make_ref(buckets), Value::make_int(bucket),
           Value::make_ref(current)});
      if (nxt.as_ref() == jvm::kNull) break;
      ++seen;
      current = nxt.as_ref();
      // track the bucket the way the enumerator state would
      bool in_chain = false;
      // advance bucket only when current ends a chain; recompute lazily:
      // simplest faithful client: find current's bucket by scanning.
      for (int bkt = 0; bkt < 8; ++bkt) {
        Ref walk = h.array_get(buckets, bkt).as_ref();
        while (walk != jvm::kNull) {
          if (walk == current) {
            bucket = bkt;
            in_chain = true;
            break;
          }
          walk = h.get_field(walk, *entry_cls.instance_slot("next")).as_ref();
        }
        if (in_chain) break;
      }
    }
    expect(seen == total_entries, "hashtable enumerator count");
  }
  for (char c : input) {
    const Value r = vm.invoke(
        kNfa + ".Move(I)I", {Value::make_ref(nfa), Value::make_int(c)});
    if (c >= '0' && c <= '9') expect(r.as_int() == 1, "nfa digit move");
    else if (c >= 'a' && c <= 'z') expect(r.as_int() == 2, "nfa alpha move");
    else if (c == ' ') expect(r.as_int() == 3, "nfa space move");
    else expect(r.as_int() == -1, "nfa reject");
  }
}

}  // namespace

std::vector<Benchmark> make_jvm98_benchmarks(Program& p) {
  build_jess(p);
  build_db(p);
  build_db_extras(p);
  build_mtrt(p);
  build_jack(p);
  std::vector<Benchmark> out;
  out.push_back({"_202_jess",
                 "SpecJvm98",
                 {kNode2 + ".runTestsVaryRight(AA)I",
                  kNode2 + ".runTests(AA)I", kVV + ".equals(A)Z",
                  kValue + ".equals(A)Z", kToken + ".data_equals(A)Z"},
                 run_jess});
  out.push_back({"_209_db",
                 "SpecJvm98",
                 {kString + ".compareTo(AA)I", kDb + ".shell_sort(AI)V",
                  kVector + ".elementAt(AII)A"},
                 run_db});
  out.push_back({"_227_mtrt",
                 "SpecJvm98",
                 {kOct + ".Intersect(AAF)F", kPoint + ".Combine(AAFF)V",
                  kOct + ".FindTreeNode(A)A", kFace + ".GetVert(I)A"},
                 run_mtrt});
  out.push_back({"_228_jack",
                 "SpecJvm98",
                 {kNfa + ".Move(I)I",
                  kTok + ".getNextTokenFromStream(AIA)I",
                  kString + ".init(A)A",
                  "java.util.Hashtable$EntryEnumerator.nextElement(AIA)A"},
                 run_jack});
  return out;
}

}  // namespace javaflow::workloads
