// Corpus assembly — kernels + generated tail.
//
// The paper simulates 1605 methods ("Filter All", Table 16). Our corpus
// combines every hand-written kernel with generated methods whose size
// distribution matches the paper's Table 9 statistics (median ≈ 29,
// mean ≈ 56, long tail past 900, a slice below 10 and a few above 1000 so
// the three filters select distinct populations).
#pragma once

#include <cstdint>

#include "workloads/workloads.hpp"

namespace javaflow::workloads {

struct CorpusOptions {
  std::uint64_t seed = 20141215;  // the dissertation's month
  int total_methods = 1605;       // Table 16 "Filter All"
};

struct Corpus {
  bytecode::Program program;          // all methods, kernels first
  std::vector<Benchmark> benchmarks;  // runnable kernel drivers
  std::size_t kernel_methods = 0;     // methods[0..kernel_methods) are
                                      // hand-written kernels
};

Corpus make_corpus(const CorpusOptions& options = {});

}  // namespace javaflow::workloads
