#include "workloads/generator.hpp"

#include <random>
#include <vector>

#include "bytecode/assembler.hpp"
#include "util/rng.hpp"

namespace javaflow::workloads {
namespace {

using bytecode::Assembler;
using bytecode::Op;
using bytecode::Program;
using bytecode::ValueType;

// The generator's working set of typed local registers. All generated
// methods share the same signature:
//   (int a, int b, ref arr, double x, float f, long l) -> int
// which gives every statement kind a register of the right type to read.
struct Locals {
  std::vector<int> ints{0, 1};     // grown with extra scratch locals
  std::vector<int> refs{2};
  std::vector<int> doubles{3};
  std::vector<int> floats{4};
  std::vector<int> longs{5};
};

class Generator {
 public:
  Generator(Program& program, const std::string& name,
            const std::string& benchmark, std::uint64_t seed,
            const GeneratorOptions& options)
      : rng_(seed),
        options_(options),
        a_(program, name, benchmark) {
    // Shared Method-Area state: generated methods read/write static
    // fields like real benchmark code does (Figure 10's Class data).
    if (program.classes.find("synthetic.Globals") == program.classes.end()) {
      program.classes["synthetic.Globals"] = bytecode::ClassDef{
          "synthetic.Globals",
          {},
          {{"g0", ValueType::Int},
           {"g1", ValueType::Int},
           {"g2", ValueType::Int},
           {"d0", ValueType::Double},
           {"f0", ValueType::Float}}};
    }
    a_.args({ValueType::Int, ValueType::Int, ValueType::Ref,
             ValueType::Double, ValueType::Float, ValueType::Long})
        .returns(ValueType::Int);
    // A few scratch registers per type.
    int next = 6;
    for (int k = 0; k < 3; ++k) locals_.ints.push_back(next++);
    locals_.doubles.push_back(next++);
    locals_.floats.push_back(next++);
    a_.locals(static_cast<std::uint16_t>(next));
  }

  bytecode::Method run() {
    if (options_.target_size < 10) {
      // Genuinely tiny accessor-style methods (the sub-10 slice that the
      // paper's Filter 1 excludes as not worth an Anchor Node, §7.3).
      while (a_.position() < options_.target_size - 2) {
        switch (rnd(3)) {
          case 0: a_.iinc(pick(locals_.ints), 1); break;
          case 1:
            a_.iload(pick(locals_.ints));
            a_.istore(pick(locals_.ints));
            break;
          default:
            a_.iconst(rnd(64));
            a_.istore(pick(locals_.ints));
            break;
        }
      }
      a_.iload(pick(locals_.ints));
      a_.op(Op::ireturn);
      return a_.build();
    }
    while (a_.position() < options_.target_size) {
      emit_statement(0);
    }
    // Epilogue: return an int expression.
    a_.iload(pick(locals_.ints));
    a_.op(Op::ireturn);
    return a_.build();
  }

 private:
  // Draw helpers live in util::RandomSource (shared with the serving
  // request stream's SplitMix64); the mt19937_64 engine and the exact
  // draw expressions are unchanged, so the generated corpus is
  // bit-identical to the golden reference artifacts.
  int rnd(int n) { return rng_.below(n); }
  bool chance(double p) { return rng_.chance(p); }
  int pick(const std::vector<int>& v) { return rng_.pick(v); }
  const char* int_global() {
    static constexpr const char* kNames[] = {"g0", "g1", "g2"};
    return kNames[static_cast<std::size_t>(rnd(3))];
  }

  // Pushes an int expression of the given depth onto the stack.
  void emit_int_expr(int depth) {
    if (depth <= 0) {
      switch (rnd(3)) {
        case 0: a_.iload(pick(locals_.ints)); break;
        case 1: a_.iconst(rnd(200) - 100); break;
        default: a_.iload(pick(locals_.ints)); break;
      }
      return;
    }
    switch (rnd(8)) {
      case 0:
        emit_int_expr(depth - 1);
        emit_int_expr(depth - 1);
        a_.op(Op::iadd);
        break;
      case 1:
        emit_int_expr(depth - 1);
        emit_int_expr(depth - 1);
        a_.op(Op::isub);
        break;
      case 2:
        emit_int_expr(depth - 1);
        emit_int_expr(depth - 1);
        a_.op(Op::imul);
        break;
      case 3:
        emit_int_expr(depth - 1);
        emit_int_expr(depth - 1);
        a_.op(Op::iand);
        break;
      case 4:
        emit_int_expr(depth - 1);
        emit_int_expr(depth - 1);
        a_.op(Op::ixor);
        break;
      case 5:
        emit_int_expr(depth - 1);
        a_.iconst(1 + rnd(8));
        a_.op(rnd(2) != 0 ? Op::ishl : Op::ishr);
        break;
      case 6:
        // array element (ordered storage read)
        a_.aload(pick(locals_.refs));
        emit_int_expr(0);
        a_.op(Op::iaload);
        break;
      default:
        emit_int_expr(depth - 1);
        a_.op(Op::ineg);
        break;
    }
  }

  void emit_double_expr(int depth) {
    if (depth <= 0) {
      if (chance(0.3)) {
        a_.dconst(0.25 * (1 + rnd(16)));
      } else {
        a_.dload(pick(locals_.doubles));
      }
      return;
    }
    emit_double_expr(depth - 1);
    emit_double_expr(depth - 1);
    switch (rnd(4)) {
      case 0: a_.op(Op::dadd); break;
      case 1: a_.op(Op::dsub); break;
      case 2: a_.op(Op::dmul); break;
      default: a_.op(Op::ddiv); break;
    }
  }

  void emit_float_expr(int depth) {
    if (depth <= 0) {
      if (chance(0.3)) {
        a_.fconst(rnd(3));
      } else {
        a_.fload(pick(locals_.floats));
      }
      return;
    }
    emit_float_expr(depth - 1);
    emit_float_expr(depth - 1);
    switch (rnd(3)) {
      case 0: a_.op(Op::fadd); break;
      case 1: a_.op(Op::fsub); break;
      default: a_.op(Op::fmul); break;
    }
  }

  // A call statement: push the standard six arguments, invoke a helper,
  // store the result (the JAVAC calling pattern: args via the stack).
  void emit_call() {
    const std::string& callee = options_.callables[static_cast<std::size_t>(
        rnd(static_cast<int>(options_.callables.size())))];
    a_.iload(pick(locals_.ints));
    a_.iload(pick(locals_.ints));
    a_.aload(pick(locals_.refs));
    a_.dload(pick(locals_.doubles));
    a_.fload(pick(locals_.floats));
    a_.lload(pick(locals_.longs));
    a_.invokestatic(callee, 6, ValueType::Int);
    a_.istore(pick(locals_.ints));
  }

  // Emits a stack-neutral statement (possibly a nested construct). Near
  // the size budget only simple statements are emitted so small targets
  // stay small (the corpus needs a genuine sub-10-instruction slice).
  void emit_statement(int depth) {
    if (a_.position() + 14 > options_.target_size) {
      emit_simple();
      return;
    }
    const double r = rng_.uniform01();
    if (!options_.callables.empty() &&
        r >= 1.0 - options_.call_weight) {
      emit_call();
      return;
    }
    if (depth < options_.max_block_depth && r < options_.loop_weight) {
      emit_loop(depth);
      return;
    }
    if (depth < options_.max_block_depth &&
        r < options_.loop_weight + options_.if_weight) {
      emit_if(depth);
      return;
    }
    if (r < options_.loop_weight + options_.if_weight +
                options_.merge_weight) {
      emit_merge();
      return;
    }
    emit_simple();
  }

  // Statement-kind selector weighted toward the Table 6 conclusion mix
  // (60 % arith, 10 % float, 10 % control, 20 % storage); the control
  // share comes from the loop/if constructs in emit_statement.
  int weighted_case() {
    static constexpr int kWeighted[] = {
        0, 1, 2, 3, 3, 4, 4, 5, 6, 7, 8, 9, 10, 11,
        12, 12, 12, 13, 13, 14, 14, 15, 15,
        16, 16, 16, 16, 17, 17, 17, 18, 18, 18, 18, 19, 19, 19,
    };
    return kWeighted[static_cast<std::size_t>(
        rnd(static_cast<int>(std::size(kWeighted))))];
  }

  void emit_simple() {
    switch (weighted_case()) {
      case 12: {  // double array read (float + storage)
        emit_double_expr(0);
        a_.aload(pick(locals_.refs));
        emit_int_expr(0);
        a_.op(Op::daload);
        a_.op(Op::dmul);
        a_.dstore(pick(locals_.doubles));
        break;
      }
      case 13: {  // double array write (float + storage)
        a_.aload(pick(locals_.refs));
        emit_int_expr(0);
        emit_double_expr(1);
        a_.op(Op::dastore);
        break;
      }
      case 14: {  // float array read-modify-write
        a_.aload(pick(locals_.refs));
        emit_int_expr(0);
        a_.aload(pick(locals_.refs));
        emit_int_expr(0);
        a_.op(Op::faload);
        emit_float_expr(0);
        a_.op(Op::fmul);
        a_.op(Op::fastore);
        break;
      }
      case 15: {  // int array element exchange (two storage ops)
        a_.aload(pick(locals_.refs));
        emit_int_expr(0);
        a_.aload(pick(locals_.refs));
        emit_int_expr(0);
        a_.op(Op::iaload);
        emit_int_expr(0);
        a_.op(Op::iadd);
        a_.op(Op::iastore);
        break;
      }
      case 16: {  // static field read (Method Area access)
        a_.getstatic("synthetic.Globals", int_global(), ValueType::Int);
        a_.istore(pick(locals_.ints));
        break;
      }
      case 17: {  // static field accumulate (read + write)
        a_.getstatic("synthetic.Globals", int_global(), ValueType::Int);
        emit_int_expr(0);
        a_.op(Op::iadd);
        a_.putstatic("synthetic.Globals", int_global(), ValueType::Int);
        break;
      }
      case 18: {  // double static field update (float + storage)
        a_.getstatic("synthetic.Globals", "d0", ValueType::Double);
        emit_double_expr(0);
        a_.op(Op::dadd);
        a_.putstatic("synthetic.Globals", "d0", ValueType::Double);
        break;
      }
      case 19: {  // float static read into register
        a_.getstatic("synthetic.Globals", "f0", ValueType::Float);
        emit_float_expr(0);
        a_.op(Op::fmul);
        a_.fstore(pick(locals_.floats));
        break;
      }
      case 0:
      case 1:
      case 2: {  // int compute -> store
        emit_int_expr(1 + rnd(2));
        a_.istore(pick(locals_.ints));
        break;
      }
      case 3: {  // double compute -> store
        emit_double_expr(1);
        a_.dstore(pick(locals_.doubles));
        break;
      }
      case 4: {  // float compute -> store
        emit_float_expr(1);
        a_.fstore(pick(locals_.floats));
        break;
      }
      case 5: {  // conversion chain
        if (chance(0.5)) {
          a_.iload(pick(locals_.ints));
          a_.op(Op::i2d);
          emit_double_expr(0);
          a_.op(Op::dmul);
          a_.dstore(pick(locals_.doubles));
        } else {
          a_.dload(pick(locals_.doubles));
          a_.op(Op::d2i);
          a_.istore(pick(locals_.ints));
        }
        break;
      }
      case 6: {  // array write (ordered storage)
        a_.aload(pick(locals_.refs));
        emit_int_expr(0);
        emit_int_expr(1);
        a_.op(Op::iastore);
        break;
      }
      case 7: {  // array read -> store
        a_.aload(pick(locals_.refs));
        emit_int_expr(0);
        a_.op(Op::iaload);
        a_.istore(pick(locals_.ints));
        break;
      }
      case 8:  // register increment
        a_.iinc(pick(locals_.ints), rnd(5) - 2);
        break;
      case 9: {  // long arithmetic
        a_.lload(pick(locals_.longs));
        a_.iload(pick(locals_.ints));
        a_.op(Op::i2l);
        a_.op(rnd(2) != 0 ? Op::ladd : Op::lxor);
        a_.lstore(pick(locals_.longs));
        break;
      }
      case 10: {  // stack moves (dup/swap family)
        emit_int_expr(0);
        emit_int_expr(0);
        if (chance(0.5)) {
          a_.op(Op::swap);
          a_.op(Op::isub);
          a_.istore(pick(locals_.ints));
        } else {
          a_.op(Op::iadd);
          a_.op(Op::dup);
          a_.istore(pick(locals_.ints));
          a_.istore(pick(locals_.ints));
        }
        break;
      }
      default: {  // long constant load (ldc2_w, unordered storage)
        a_.lconst(0x123456789LL + rnd(64));
        a_.lload(pick(locals_.longs));
        a_.op(Op::ladd);
        a_.lstore(pick(locals_.longs));
        break;
      }
    }
  }

  void emit_if(int depth) {
    auto els = a_.new_label(), join = a_.new_label();
    // condition
    if (chance(0.5)) {
      a_.iload(pick(locals_.ints));
      switch (rnd(4)) {
        case 0: a_.ifle(els); break;
        case 1: a_.ifge(els); break;
        case 2: a_.ifne(els); break;
        default: a_.ifeq(els); break;
      }
    } else {
      a_.iload(pick(locals_.ints));
      a_.iload(pick(locals_.ints));
      switch (rnd(4)) {
        case 0: a_.if_icmplt(els); break;
        case 1: a_.if_icmpge(els); break;
        case 2: a_.if_icmpeq(els); break;
        default: a_.if_icmpgt(els); break;
      }
    }
    const int then_len = 1 + rnd(3);
    for (int k = 0; k < then_len; ++k) emit_statement(depth + 1);
    if (chance(0.6)) {
      a_.goto_(join);
      a_.bind(els);
      const int else_len = 1 + rnd(2);
      for (int k = 0; k < else_len; ++k) emit_statement(depth + 1);
      a_.bind(join);
    } else {
      a_.bind(els);
    }
  }

  void emit_loop(int depth) {
    // JAVAC's while-loop shape: forward goto to a bottom test with a
    // *conditional back jump* — the structure behind the paper's "back
    // jumps taken 90 %" execution model (§7.3 Method Execution).
    //   i = 0; goto test; body: ...; iinc i; test: if (i < bound) body
    const int counter = pick(locals_.ints);
    auto body = a_.new_label(), test = a_.new_label();
    a_.iconst(0).istore(counter);
    a_.goto_(test);
    a_.bind(body);
    const int body_len = 1 + rnd(3);
    for (int k = 0; k < body_len; ++k) emit_statement(depth + 1);
    a_.iinc(counter, 1);
    a_.bind(test);
    a_.iload(counter);
    a_.iconst(2 + rnd(14));
    a_.if_icmplt(body);
  }

  // Ternary-style construct producing a forward DataFlow merge: both arms
  // push one value that a single downstream consumer pops (Table 12).
  void emit_merge() {
    auto els = a_.new_label(), join = a_.new_label();
    a_.iload(pick(locals_.ints));
    a_.ifle(els);
    emit_int_expr(1);
    a_.goto_(join);
    a_.bind(els);
    emit_int_expr(1);
    a_.bind(join);
    a_.istore(pick(locals_.ints));
  }

  util::RandomSource<std::mt19937_64> rng_;
  GeneratorOptions options_;
  Assembler a_;
  Locals locals_;
};

}  // namespace

bytecode::Method generate_method(Program& program, const std::string& name,
                                 const std::string& benchmark,
                                 std::uint64_t seed,
                                 const GeneratorOptions& options) {
  Generator g(program, name, benchmark, seed, options);
  return g.run();
}

}  // namespace javaflow::workloads
