// crypto.signverify analogue — the paper's Table 3 hot methods:
// gnu.java.math.MPN.submul_1 / MPN.mul (multi-precision integer kernels
// behind RSA sign/verify) and gnu.java.security.hash Sha160.sha /
// Sha256.sha (the SHA compression functions).
//
// All four kernels are validated against host-side C++ reimplementations
// by the driver, so a wrong answer in either the assembler-written
// ByteCode or the interpreter fails the workload run.
#include <array>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "bytecode/assembler.hpp"
#include "workloads/workloads.hpp"

namespace javaflow::workloads {
namespace {

using bytecode::Assembler;
using bytecode::ClassDef;
using bytecode::Op;
using bytecode::Program;
using bytecode::ValueType;
using jvm::Interpreter;
using jvm::Ref;
using jvm::Value;

constexpr const char* kMpn = "gnu.java.math.MPN";
constexpr const char* kSha160 = "gnu.java.security.hash.Sha160";
constexpr const char* kSha256 = "gnu.java.security.hash.Sha256";
const std::string kBm = "crypto.signverify";

// ---- MPN -------------------------------------------------------------------

void build_mpn(Program& p) {
  {
    // static int submul_1(int[] dest, int offset, int[] x, int len, int y):
    //   dest[offset..offset+len) -= x[0..len) * y  (unsigned), returns the
    //   final borrow word. The GNU Classpath structure: 64-bit carry chain
    //   over 32-bit unsigned limbs.
    Assembler a(p, std::string(kMpn) + ".submul_1(AIAII)I", kBm);
    a.args({ValueType::Ref, ValueType::Int, ValueType::Ref, ValueType::Int,
            ValueType::Int})
        .returns(ValueType::Int);
    const int kDest = 0, kOff = 1, kX = 2, kLen = 3, kY = 4;
    const int kYl = 5, kCarry = 7;            // longs
    const int kJ = 9, kProdLow = 10, kXj = 11, kDiff = 12;
    a.locals(14);
    // yl = y & 0xffffffffL
    a.iload(kY).op(Op::i2l);
    a.lconst(0xffffffffLL);
    a.op(Op::land).lstore(kYl);
    a.lconst(0).lstore(kCarry);
    a.iconst(0).istore(kJ);
    auto head = a.new_label(), done = a.new_label();
    a.bind(head);
    a.iload(kJ).iload(kLen).if_icmpge(done);
    // carry += (x[j] & 0xffffffffL) * yl
    a.lload(kCarry);
    a.aload(kX).iload(kJ).op(Op::iaload).op(Op::i2l);
    a.lconst(0xffffffffLL).op(Op::land);
    a.lload(kYl).op(Op::lmul);
    a.op(Op::ladd).lstore(kCarry);
    // prod_low = (int) carry; carry >>>= 32
    a.lload(kCarry).op(Op::l2i).istore(kProdLow);
    a.lload(kCarry).iconst(32).op(Op::lushr).lstore(kCarry);
    // x_j = dest[offset + j]; diff = x_j - prod_low
    a.aload(kDest).iload(kOff).iload(kJ).op(Op::iadd).op(Op::iaload)
        .istore(kXj);
    a.iload(kXj).iload(kProdLow).op(Op::isub).istore(kDiff);
    // if (unsigned(diff) > unsigned(x_j)) carry++   (borrow occurred)
    auto no_borrow = a.new_label();
    a.iload(kDiff).iconst(static_cast<std::int32_t>(0x80000000u))
        .op(Op::ixor);
    a.iload(kXj).iconst(static_cast<std::int32_t>(0x80000000u)).op(Op::ixor);
    a.if_icmple(no_borrow);
    a.lload(kCarry).lconst(1).op(Op::ladd).lstore(kCarry);
    a.bind(no_borrow);
    // dest[offset + j] = diff
    a.aload(kDest).iload(kOff).iload(kJ).op(Op::iadd).iload(kDiff)
        .op(Op::iastore);
    a.iinc(kJ, 1);
    a.goto_(head);
    a.bind(done);
    a.lload(kCarry).op(Op::l2i).op(Op::ireturn);
    p.methods.push_back(a.build());
  }
  {
    // static void mul(int[] dest, int[] x, int xlen, int[] y, int ylen):
    //   schoolbook multi-precision multiply, dest has xlen+ylen limbs.
    Assembler a(p, std::string(kMpn) + ".mul(AAIAI)V", kBm);
    a.args({ValueType::Ref, ValueType::Ref, ValueType::Int, ValueType::Ref,
            ValueType::Int})
        .returns(ValueType::Void);
    const int kDest = 0, kX = 1, kXlen = 2, kY = 3, kYlen = 4;
    const int kI = 5, kJ = 6, kK = 7;
    const int kYw = 8, kCarry = 10;  // longs
    a.locals(12);
    // zero dest
    a.iconst(0).istore(kK);
    auto zh = a.new_label(), zd = a.new_label();
    a.bind(zh);
    a.iload(kK).iload(kXlen).iload(kYlen).op(Op::iadd).if_icmpge(zd);
    a.aload(kDest).iload(kK).iconst(0).op(Op::iastore);
    a.iinc(kK, 1);
    a.goto_(zh);
    a.bind(zd);
    // outer over y limbs
    a.iconst(0).istore(kI);
    auto ih = a.new_label(), id = a.new_label();
    a.bind(ih);
    a.iload(kI).iload(kYlen).if_icmpge(id);
    a.aload(kY).iload(kI).op(Op::iaload).op(Op::i2l);
    a.lconst(0xffffffffLL).op(Op::land).lstore(kYw);
    a.lconst(0).lstore(kCarry);
    a.iconst(0).istore(kJ);
    auto jh = a.new_label(), jd = a.new_label();
    a.bind(jh);
    a.iload(kJ).iload(kXlen).if_icmpge(jd);
    // carry += (x[j] & M) * yw + (dest[i+j] & M)
    a.lload(kCarry);
    a.aload(kX).iload(kJ).op(Op::iaload).op(Op::i2l);
    a.lconst(0xffffffffLL).op(Op::land);
    a.lload(kYw).op(Op::lmul);
    a.op(Op::ladd);
    a.aload(kDest).iload(kI).iload(kJ).op(Op::iadd).op(Op::iaload)
        .op(Op::i2l);
    a.lconst(0xffffffffLL).op(Op::land);
    a.op(Op::ladd).lstore(kCarry);
    // dest[i+j] = (int) carry; carry >>>= 32
    a.aload(kDest).iload(kI).iload(kJ).op(Op::iadd);
    a.lload(kCarry).op(Op::l2i);
    a.op(Op::iastore);
    a.lload(kCarry).iconst(32).op(Op::lushr).lstore(kCarry);
    a.iinc(kJ, 1);
    a.goto_(jh);
    a.bind(jd);
    // dest[i + xlen] = (int) carry
    a.aload(kDest).iload(kI).iload(kXlen).op(Op::iadd);
    a.lload(kCarry).op(Op::l2i);
    a.op(Op::iastore);
    a.iinc(kI, 1);
    a.goto_(ih);
    a.bind(id);
    a.op(Op::return_);
    p.methods.push_back(a.build());
  }
}

void build_mpn_addsub(Program& p) {
  {
    // static int add_n(int[] dest, int[] x, int[] y, int len):
    //   dest = x + y (unsigned limbs), returns the carry out.
    Assembler a(p, std::string(kMpn) + ".add_n(AAAI)I", kBm);
    a.args({ValueType::Ref, ValueType::Ref, ValueType::Ref, ValueType::Int})
        .returns(ValueType::Int);
    const int kDest = 0, kX = 1, kY = 2, kLen = 3;
    const int kCarry = 4;  // long
    const int kI = 6;
    a.locals(8);
    a.lconst(0).lstore(kCarry);
    a.iconst(0).istore(kI);
    auto head = a.new_label(), done = a.new_label();
    a.bind(head);
    a.iload(kI).iload(kLen).if_icmpge(done);
    // carry += (x[i] & M) + (y[i] & M)
    a.lload(kCarry);
    a.aload(kX).iload(kI).op(Op::iaload).op(Op::i2l);
    a.lconst(0xffffffffLL).op(Op::land);
    a.op(Op::ladd);
    a.aload(kY).iload(kI).op(Op::iaload).op(Op::i2l);
    a.lconst(0xffffffffLL).op(Op::land);
    a.op(Op::ladd).lstore(kCarry);
    // dest[i] = (int) carry; carry >>>= 32
    a.aload(kDest).iload(kI);
    a.lload(kCarry).op(Op::l2i);
    a.op(Op::iastore);
    a.lload(kCarry).iconst(32).op(Op::lushr).lstore(kCarry);
    a.iinc(kI, 1);
    a.goto_(head);
    a.bind(done);
    a.lload(kCarry).op(Op::l2i).op(Op::ireturn);
    p.methods.push_back(a.build());
  }
  {
    // static int sub_n(int[] dest, int[] x, int[] y, int len):
    //   dest = x - y (unsigned limbs), returns the borrow out — the
    //   method whose DataFlow translation the paper walks through in
    //   Figure 22 ("gnu\java\math\MPN\sub_n([I[I[II)I").
    Assembler a(p, std::string(kMpn) + ".sub_n(AAAI)I", kBm);
    a.args({ValueType::Ref, ValueType::Ref, ValueType::Ref, ValueType::Int})
        .returns(ValueType::Int);
    const int kDest = 0, kX = 1, kY = 2, kLen = 3;
    const int kCy = 4, kI = 5, kXi = 6, kYi = 7;
    a.locals(9);
    a.iconst(0).istore(kCy);
    a.iconst(0).istore(kI);
    auto head = a.new_label(), done = a.new_label();
    a.bind(head);
    a.iload(kI).iload(kLen).if_icmpge(done);
    a.aload(kX).iload(kI).op(Op::iaload).istore(kXi);
    a.aload(kY).iload(kI).op(Op::iaload).istore(kYi);
    // y += cy; cy = unsigned(y) < unsigned(cy) ? 1 : 0
    a.iload(kYi).iload(kCy).op(Op::iadd).istore(kYi);
    auto no_ovf1 = a.new_label(), join1 = a.new_label();
    a.iload(kYi).iconst(static_cast<std::int32_t>(0x80000000u))
        .op(Op::ixor);
    a.iload(kCy).iconst(static_cast<std::int32_t>(0x80000000u))
        .op(Op::ixor);
    a.if_icmpge(no_ovf1);
    a.iconst(1).istore(kCy);
    a.goto_(join1);
    a.bind(no_ovf1);
    a.iconst(0).istore(kCy);
    a.bind(join1);
    // y = x - y; cy += unsigned(y) > unsigned(x) ? 1 : 0
    a.iload(kXi).iload(kYi).op(Op::isub).istore(kYi);
    auto no_borrow = a.new_label();
    a.iload(kYi).iconst(static_cast<std::int32_t>(0x80000000u))
        .op(Op::ixor);
    a.iload(kXi).iconst(static_cast<std::int32_t>(0x80000000u))
        .op(Op::ixor);
    a.if_icmple(no_borrow);
    a.iinc(kCy, 1);
    a.bind(no_borrow);
    a.aload(kDest).iload(kI).iload(kYi).op(Op::iastore);
    a.iinc(kI, 1);
    a.goto_(head);
    a.bind(done);
    a.iload(kCy).op(Op::ireturn);
    p.methods.push_back(a.build());
  }
}

// ---- SHA-160 ----------------------------------------------------------------

void build_sha160(Program& p) {
  p.classes[kSha160] = ClassDef{kSha160, {}, {}};
  // static int[] sha(int h0..h4, int[] block16): one SHA-1 compression.
  Assembler a(p, std::string(kSha160) + ".sha(IIIIIA)A", kBm);
  a.args({ValueType::Int, ValueType::Int, ValueType::Int, ValueType::Int,
          ValueType::Int, ValueType::Ref})
      .returns(ValueType::Ref);
  const int kH0 = 0, kBlock = 5;
  const int kW = 6, kI = 7, kT = 8;
  const int kA = 9, kB = 10, kC = 11, kD = 12, kE = 13, kF = 14, kK = 15;
  const int kTemp = 16, kOut = 17;
  a.locals(18);

  // W = new int[80]; W[0..15] = block[0..15]
  a.iconst(80).newarray(ValueType::Int).astore(kW);
  a.iconst(0).istore(kI);
  auto ch = a.new_label(), cd = a.new_label();
  a.bind(ch);
  a.iload(kI).iconst(16).if_icmpge(cd);
  a.aload(kW).iload(kI);
  a.aload(kBlock).iload(kI).op(Op::iaload);
  a.op(Op::iastore);
  a.iinc(kI, 1);
  a.goto_(ch);
  a.bind(cd);
  // for (i=16..79) { t = W[i-3]^W[i-8]^W[i-14]^W[i-16]; W[i]=rotl(t,1); }
  auto eh = a.new_label(), ed = a.new_label();
  a.bind(eh);
  a.iload(kI).iconst(80).if_icmpge(ed);
  a.aload(kW).iload(kI).iconst(3).op(Op::isub).op(Op::iaload);
  a.aload(kW).iload(kI).iconst(8).op(Op::isub).op(Op::iaload);
  a.op(Op::ixor);
  a.aload(kW).iload(kI).iconst(14).op(Op::isub).op(Op::iaload);
  a.op(Op::ixor);
  a.aload(kW).iload(kI).iconst(16).op(Op::isub).op(Op::iaload);
  a.op(Op::ixor).istore(kT);
  a.aload(kW).iload(kI);
  a.iload(kT).iconst(1).op(Op::ishl);
  a.iload(kT).iconst(31).op(Op::iushr);
  a.op(Op::ior);
  a.op(Op::iastore);
  a.iinc(kI, 1);
  a.goto_(eh);
  a.bind(ed);
  // working registers
  a.iload(kH0 + 0).istore(kA);
  a.iload(kH0 + 1).istore(kB);
  a.iload(kH0 + 2).istore(kC);
  a.iload(kH0 + 3).istore(kD);
  a.iload(kH0 + 4).istore(kE);
  // 80 rounds
  a.iconst(0).istore(kI);
  auto rh = a.new_label(), rd = a.new_label();
  a.bind(rh);
  a.iload(kI).iconst(80).if_icmpge(rd);
  auto ph2 = a.new_label(), ph3 = a.new_label(), ph4 = a.new_label();
  auto have_f = a.new_label();
  a.iload(kI).iconst(20).if_icmpge(ph2);
  // f = (B & C) | (~B & D); k = 0x5A827999
  a.iload(kB).iload(kC).op(Op::iand);
  a.iload(kB).iconst(-1).op(Op::ixor).iload(kD).op(Op::iand);
  a.op(Op::ior).istore(kF);
  a.iconst(0x5A827999).istore(kK);
  a.goto_(have_f);
  a.bind(ph2);
  a.iload(kI).iconst(40).if_icmpge(ph3);
  a.iload(kB).iload(kC).op(Op::ixor).iload(kD).op(Op::ixor).istore(kF);
  a.iconst(0x6ED9EBA1).istore(kK);
  a.goto_(have_f);
  a.bind(ph3);
  a.iload(kI).iconst(60).if_icmpge(ph4);
  // f = (B & C) | (B & D) | (C & D)
  a.iload(kB).iload(kC).op(Op::iand);
  a.iload(kB).iload(kD).op(Op::iand);
  a.op(Op::ior);
  a.iload(kC).iload(kD).op(Op::iand);
  a.op(Op::ior).istore(kF);
  a.iconst(static_cast<std::int32_t>(0x8F1BBCDC)).istore(kK);
  a.goto_(have_f);
  a.bind(ph4);
  a.iload(kB).iload(kC).op(Op::ixor).iload(kD).op(Op::ixor).istore(kF);
  a.iconst(static_cast<std::int32_t>(0xCA62C1D6)).istore(kK);
  a.bind(have_f);
  // temp = rotl(A,5) + f + E + k + W[i]
  a.iload(kA).iconst(5).op(Op::ishl);
  a.iload(kA).iconst(27).op(Op::iushr);
  a.op(Op::ior);
  a.iload(kF).op(Op::iadd);
  a.iload(kE).op(Op::iadd);
  a.iload(kK).op(Op::iadd);
  a.aload(kW).iload(kI).op(Op::iaload).op(Op::iadd);
  a.istore(kTemp);
  // E=D; D=C; C=rotl(B,30); B=A; A=temp
  a.iload(kD).istore(kE);
  a.iload(kC).istore(kD);
  a.iload(kB).iconst(30).op(Op::ishl);
  a.iload(kB).iconst(2).op(Op::iushr);
  a.op(Op::ior).istore(kC);
  a.iload(kA).istore(kB);
  a.iload(kTemp).istore(kA);
  a.iinc(kI, 1);
  a.goto_(rh);
  a.bind(rd);
  // out[5] = {h+working}
  a.iconst(5).newarray(ValueType::Int).astore(kOut);
  a.aload(kOut).iconst(0).iload(kH0 + 0).iload(kA).op(Op::iadd)
      .op(Op::iastore);
  a.aload(kOut).iconst(1).iload(kH0 + 1).iload(kB).op(Op::iadd)
      .op(Op::iastore);
  a.aload(kOut).iconst(2).iload(kH0 + 2).iload(kC).op(Op::iadd)
      .op(Op::iastore);
  a.aload(kOut).iconst(3).iload(kH0 + 3).iload(kD).op(Op::iadd)
      .op(Op::iastore);
  a.aload(kOut).iconst(4).iload(kH0 + 4).iload(kE).op(Op::iadd)
      .op(Op::iastore);
  a.aload(kOut).op(Op::areturn);
  p.methods.push_back(a.build());
}

// ---- SHA-256 ----------------------------------------------------------------

constexpr std::array<std::uint32_t, 64> kSha256K = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

// Emits "rotr(local, n)" leaving the result on the stack.
void emit_rotr(Assembler& a, int local, int n) {
  a.iload(local).iconst(n).op(Op::iushr);
  a.iload(local).iconst(32 - n).op(Op::ishl);
  a.op(Op::ior);
}

void build_sha256(Program& p) {
  p.classes[kSha256] =
      ClassDef{kSha256, {}, {{"K", ValueType::Ref}}};
  // static int[] sha(int[] h8, int[] block16): one SHA-256 compression.
  // The K round constants live in a static field (Method Area data, like
  // the Constant Pool accesses the paper describes in Figure 10).
  Assembler a(p, std::string(kSha256) + ".sha(AA)A", kBm);
  a.args({ValueType::Ref, ValueType::Ref}).returns(ValueType::Ref);
  const int kH = 0, kBlock = 1;
  const int kW = 2, kI = 3, kT = 4;
  const int kA = 5, kB = 6, kC = 7, kD = 8, kE = 9, kF = 10, kG = 11,
            kHh = 12;
  const int kT1 = 13, kT2 = 14, kOut = 15, kKtab = 16, kS0 = 17, kS1 = 18;
  a.locals(19);

  // W = new int[64]; W[0..15] = block
  a.iconst(64).newarray(ValueType::Int).astore(kW);
  a.iconst(0).istore(kI);
  auto ch = a.new_label(), cd = a.new_label();
  a.bind(ch);
  a.iload(kI).iconst(16).if_icmpge(cd);
  a.aload(kW).iload(kI);
  a.aload(kBlock).iload(kI).op(Op::iaload);
  a.op(Op::iastore);
  a.iinc(kI, 1);
  a.goto_(ch);
  a.bind(cd);
  // message schedule: W[i] = s1(W[i-2]) + W[i-7] + s0(W[i-15]) + W[i-16]
  auto eh = a.new_label(), ed = a.new_label();
  a.bind(eh);
  a.iload(kI).iconst(64).if_icmpge(ed);
  // s0 = rotr(w15,7) ^ rotr(w15,18) ^ (w15 >>> 3)
  a.aload(kW).iload(kI).iconst(15).op(Op::isub).op(Op::iaload).istore(kT);
  emit_rotr(a, kT, 7);
  emit_rotr(a, kT, 18);
  a.op(Op::ixor);
  a.iload(kT).iconst(3).op(Op::iushr);
  a.op(Op::ixor).istore(kS0);
  // s1 = rotr(w2,17) ^ rotr(w2,19) ^ (w2 >>> 10)
  a.aload(kW).iload(kI).iconst(2).op(Op::isub).op(Op::iaload).istore(kT);
  emit_rotr(a, kT, 17);
  emit_rotr(a, kT, 19);
  a.op(Op::ixor);
  a.iload(kT).iconst(10).op(Op::iushr);
  a.op(Op::ixor).istore(kS1);
  a.aload(kW).iload(kI);
  a.iload(kS1);
  a.aload(kW).iload(kI).iconst(7).op(Op::isub).op(Op::iaload);
  a.op(Op::iadd);
  a.iload(kS0).op(Op::iadd);
  a.aload(kW).iload(kI).iconst(16).op(Op::isub).op(Op::iaload);
  a.op(Op::iadd);
  a.op(Op::iastore);
  a.iinc(kI, 1);
  a.goto_(eh);
  a.bind(ed);

  // load working registers from h[0..7]
  a.aload(kH).iconst(0).op(Op::iaload).istore(kA);
  a.aload(kH).iconst(1).op(Op::iaload).istore(kB);
  a.aload(kH).iconst(2).op(Op::iaload).istore(kC);
  a.aload(kH).iconst(3).op(Op::iaload).istore(kD);
  a.aload(kH).iconst(4).op(Op::iaload).istore(kE);
  a.aload(kH).iconst(5).op(Op::iaload).istore(kF);
  a.aload(kH).iconst(6).op(Op::iaload).istore(kG);
  a.aload(kH).iconst(7).op(Op::iaload).istore(kHh);
  a.getstatic(kSha256, "K", ValueType::Ref).astore(kKtab);

  // 64 rounds
  a.iconst(0).istore(kI);
  auto rh = a.new_label(), rd = a.new_label();
  a.bind(rh);
  a.iload(kI).iconst(64).if_icmpge(rd);
  // S1 = rotr(e,6)^rotr(e,11)^rotr(e,25)
  emit_rotr(a, kE, 6);
  emit_rotr(a, kE, 11);
  a.op(Op::ixor);
  emit_rotr(a, kE, 25);
  a.op(Op::ixor).istore(kS1);
  // ch = (e & f) ^ (~e & g)
  a.iload(kE).iload(kF).op(Op::iand);
  a.iload(kE).iconst(-1).op(Op::ixor).iload(kG).op(Op::iand);
  a.op(Op::ixor).istore(kT);
  // t1 = h + S1 + ch + K[i] + W[i]
  a.iload(kHh).iload(kS1).op(Op::iadd);
  a.iload(kT).op(Op::iadd);
  a.aload(kKtab).iload(kI).op(Op::iaload).op(Op::iadd);
  a.aload(kW).iload(kI).op(Op::iaload).op(Op::iadd);
  a.istore(kT1);
  // S0 = rotr(a,2)^rotr(a,13)^rotr(a,22)
  emit_rotr(a, kA, 2);
  emit_rotr(a, kA, 13);
  a.op(Op::ixor);
  emit_rotr(a, kA, 22);
  a.op(Op::ixor).istore(kS0);
  // maj = (a & b) ^ (a & c) ^ (b & c)
  a.iload(kA).iload(kB).op(Op::iand);
  a.iload(kA).iload(kC).op(Op::iand);
  a.op(Op::ixor);
  a.iload(kB).iload(kC).op(Op::iand);
  a.op(Op::ixor).istore(kT);
  // t2 = S0 + maj
  a.iload(kS0).iload(kT).op(Op::iadd).istore(kT2);
  // rotate registers
  a.iload(kG).istore(kHh);
  a.iload(kF).istore(kG);
  a.iload(kE).istore(kF);
  a.iload(kD).iload(kT1).op(Op::iadd).istore(kE);
  a.iload(kC).istore(kD);
  a.iload(kB).istore(kC);
  a.iload(kA).istore(kB);
  a.iload(kT1).iload(kT2).op(Op::iadd).istore(kA);
  a.iinc(kI, 1);
  a.goto_(rh);
  a.bind(rd);

  // out[8] = h[] + working
  a.iconst(8).newarray(ValueType::Int).astore(kOut);
  const int regs[8] = {kA, kB, kC, kD, kE, kF, kG, kHh};
  for (int k = 0; k < 8; ++k) {
    a.aload(kOut).iconst(k);
    a.aload(kH).iconst(k).op(Op::iaload);
    a.iload(regs[k]).op(Op::iadd);
    a.op(Op::iastore);
  }
  a.aload(kOut).op(Op::areturn);
  p.methods.push_back(a.build());
}

// ---- host-side oracles ------------------------------------------------------

std::uint32_t rotl(std::uint32_t v, int n) {
  return (v << n) | (v >> (32 - n));
}
std::uint32_t rotr(std::uint32_t v, int n) {
  return (v >> n) | (v << (32 - n));
}

std::array<std::uint32_t, 5> host_sha1(const std::array<std::uint32_t, 5>& h,
                                       const std::array<std::uint32_t, 16>& m) {
  std::uint32_t w[80];
  for (int i = 0; i < 16; ++i) w[i] = m[static_cast<std::size_t>(i)];
  for (int i = 16; i < 80; ++i) {
    w[i] = rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }
  std::uint32_t a = h[0], b = h[1], c = h[2], d = h[3], e = h[4];
  for (int i = 0; i < 80; ++i) {
    std::uint32_t f, k;
    if (i < 20) {
      f = (b & c) | (~b & d);
      k = 0x5A827999;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDC;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6;
    }
    const std::uint32_t temp = rotl(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = rotl(b, 30);
    b = a;
    a = temp;
  }
  return {h[0] + a, h[1] + b, h[2] + c, h[3] + d, h[4] + e};
}

std::array<std::uint32_t, 8> host_sha256(
    const std::array<std::uint32_t, 8>& h,
    const std::array<std::uint32_t, 16>& m) {
  std::uint32_t w[64];
  for (int i = 0; i < 16; ++i) w[i] = m[static_cast<std::size_t>(i)];
  for (int i = 16; i < 64; ++i) {
    const std::uint32_t s0 =
        rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    const std::uint32_t s1 =
        rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = s1 + w[i - 7] + s0 + w[i - 16];
  }
  std::uint32_t a = h[0], b = h[1], c = h[2], d = h[3], e = h[4], f = h[5],
                g = h[6], hh = h[7];
  for (int i = 0; i < 64; ++i) {
    const std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
    const std::uint32_t ch = (e & f) ^ (~e & g);
    const std::uint32_t t1 = hh + s1 + ch + kSha256K[static_cast<std::size_t>(i)] + w[i];
    const std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
    const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint32_t t2 = s0 + maj;
    hh = g;
    g = f;
    f = e;
    e = d + t1;
    d = c;
    c = b;
    b = a;
    a = t1 + t2;
  }
  return {h[0] + a, h[1] + b, h[2] + c, h[3] + d,
          h[4] + e, h[5] + f, h[6] + g, h[7] + hh};
}

void expect(bool ok, const char* what) {
  if (!ok) {
    throw std::runtime_error(std::string("crypto check failed: ") + what);
  }
}

void run_crypto(Interpreter& vm) {
  auto& h = vm.heap();
  // ---- MPN.add_n / sub_n vs host (Figure 22's example kernels) ----
  {
    const int limbs = 16;
    std::vector<std::uint32_t> xs(limbs), ys(limbs);
    unsigned seed = 5;
    const Ref xa = h.new_array(ValueType::Int, limbs);
    const Ref ya = h.new_array(ValueType::Int, limbs);
    const Ref da = h.new_array(ValueType::Int, limbs);
    for (int k = 0; k < limbs; ++k) {
      seed = seed * 1664525u + 1013904223u;
      xs[static_cast<std::size_t>(k)] = seed;
      seed = seed * 1664525u + 1013904223u;
      ys[static_cast<std::size_t>(k)] = seed;
      h.array_set(xa, k, Value::make_int(static_cast<std::int32_t>(
                             xs[static_cast<std::size_t>(k)])));
      h.array_set(ya, k, Value::make_int(static_cast<std::int32_t>(
                             ys[static_cast<std::size_t>(k)])));
    }
    for (int reps = 0; reps < 50; ++reps) {
      const Value carry = vm.invoke(
          std::string(kMpn) + ".add_n(AAAI)I",
          {Value::make_ref(da), Value::make_ref(xa), Value::make_ref(ya),
           Value::make_int(limbs)});
      std::uint64_t c = 0;
      for (int k = 0; k < limbs; ++k) {
        c += std::uint64_t{xs[static_cast<std::size_t>(k)]} +
             ys[static_cast<std::size_t>(k)];
        expect(static_cast<std::uint32_t>(h.array_get(da, k).as_int()) ==
                   static_cast<std::uint32_t>(c),
               "MPN.add_n limb");
        c >>= 32;
      }
      expect(static_cast<std::uint32_t>(carry.as_int()) ==
                 static_cast<std::uint32_t>(c),
             "MPN.add_n carry");
      const Value borrow = vm.invoke(
          std::string(kMpn) + ".sub_n(AAAI)I",
          {Value::make_ref(da), Value::make_ref(xa), Value::make_ref(ya),
           Value::make_int(limbs)});
      std::int64_t b = 0;
      for (int k = 0; k < limbs; ++k) {
        const std::int64_t diff =
            std::int64_t{xs[static_cast<std::size_t>(k)]} -
            ys[static_cast<std::size_t>(k)] - b;
        expect(static_cast<std::uint32_t>(h.array_get(da, k).as_int()) ==
                   static_cast<std::uint32_t>(diff),
               "MPN.sub_n limb");
        b = diff < 0 ? 1 : 0;
      }
      expect(borrow.as_int() == static_cast<std::int32_t>(b),
             "MPN.sub_n borrow");
    }
  }
  // ---- MPN.mul + submul_1 vs host 128-limb arithmetic ----
  const int limbs = 24;
  std::vector<std::uint32_t> x(limbs), y(limbs);
  unsigned s = 99;
  for (int k = 0; k < limbs; ++k) {
    s = s * 1664525u + 1013904223u;
    x[static_cast<std::size_t>(k)] = s;
    s = s * 1664525u + 1013904223u;
    y[static_cast<std::size_t>(k)] = s;
  }
  const Ref xa = h.new_array(ValueType::Int, limbs);
  const Ref ya = h.new_array(ValueType::Int, limbs);
  const Ref dest = h.new_array(ValueType::Int, 2 * limbs);
  for (int k = 0; k < limbs; ++k) {
    h.array_set(xa, k, Value::make_int(static_cast<std::int32_t>(
                           x[static_cast<std::size_t>(k)])));
    h.array_set(ya, k, Value::make_int(static_cast<std::int32_t>(
                           y[static_cast<std::size_t>(k)])));
  }
  for (int reps = 0; reps < 40; ++reps) {
    vm.invoke(std::string(kMpn) + ".mul(AAIAI)V",
              {Value::make_ref(dest), Value::make_ref(xa),
               Value::make_int(limbs), Value::make_ref(ya),
               Value::make_int(limbs)});
  }
  // host schoolbook multiply
  std::vector<std::uint32_t> want(2 * static_cast<std::size_t>(limbs), 0);
  for (int i = 0; i < limbs; ++i) {
    std::uint64_t carry = 0;
    for (int j = 0; j < limbs; ++j) {
      carry += std::uint64_t{x[static_cast<std::size_t>(j)]} *
                   y[static_cast<std::size_t>(i)] +
               want[static_cast<std::size_t>(i + j)];
      want[static_cast<std::size_t>(i + j)] =
          static_cast<std::uint32_t>(carry);
      carry >>= 32;
    }
    want[static_cast<std::size_t>(i + limbs)] =
        static_cast<std::uint32_t>(carry);
  }
  for (int k = 0; k < 2 * limbs; ++k) {
    expect(static_cast<std::uint32_t>(h.array_get(dest, k).as_int()) ==
               want[static_cast<std::size_t>(k)],
           "MPN.mul limb");
  }
  // submul_1: dest -= x * y0  (host check over the low limbs)
  std::vector<std::uint32_t> before(2 * static_cast<std::size_t>(limbs));
  for (int k = 0; k < 2 * limbs; ++k) {
    before[static_cast<std::size_t>(k)] =
        static_cast<std::uint32_t>(h.array_get(dest, k).as_int());
  }
  const std::uint32_t y0 = y[0];
  for (int reps = 0; reps < 40; ++reps) {
    vm.invoke(std::string(kMpn) + ".submul_1(AIAII)I",
              {Value::make_ref(dest), Value::make_int(0),
               Value::make_ref(xa), Value::make_int(limbs),
               Value::make_int(static_cast<std::int32_t>(y0))});
    // host model of one submul_1 application
    std::uint64_t carry = 0;
    for (int j = 0; j < limbs; ++j) {
      carry += std::uint64_t{x[static_cast<std::size_t>(j)]} * y0;
      const auto prod_low = static_cast<std::uint32_t>(carry);
      carry >>= 32;
      const std::uint32_t xj = before[static_cast<std::size_t>(j)];
      const std::uint32_t diff = xj - prod_low;
      if (diff > xj) ++carry;
      before[static_cast<std::size_t>(j)] = diff;
    }
    for (int j = 0; j < limbs; ++j) {
      expect(static_cast<std::uint32_t>(h.array_get(dest, j).as_int()) ==
                 before[static_cast<std::size_t>(j)],
             "MPN.submul_1 limb");
    }
  }

  // ---- Sha160 vs host ----
  std::array<std::uint32_t, 5> h1 = {0x67452301, 0xEFCDAB89, 0x98BADCFE,
                                     0x10325476, 0xC3D2E1F0};
  const Ref block = h.new_array(ValueType::Int, 16);
  for (int rounds = 0; rounds < 60; ++rounds) {
    std::array<std::uint32_t, 16> m;
    for (int k = 0; k < 16; ++k) {
      s = s * 22695477u + 1u;
      m[static_cast<std::size_t>(k)] = s;
      h.array_set(block, k,
                  Value::make_int(static_cast<std::int32_t>(s)));
    }
    const Value out = vm.invoke(
        std::string(kSha160) + ".sha(IIIIIA)A",
        {Value::make_int(static_cast<std::int32_t>(h1[0])),
         Value::make_int(static_cast<std::int32_t>(h1[1])),
         Value::make_int(static_cast<std::int32_t>(h1[2])),
         Value::make_int(static_cast<std::int32_t>(h1[3])),
         Value::make_int(static_cast<std::int32_t>(h1[4])),
         Value::make_ref(block)});
    h1 = host_sha1(h1, m);
    for (int k = 0; k < 5; ++k) {
      expect(static_cast<std::uint32_t>(
                 h.array_get(out.as_ref(), k).as_int()) ==
                 h1[static_cast<std::size_t>(k)],
             "Sha160 word");
    }
  }

  // ---- Sha256 vs host ----
  const bytecode::ClassDef& sha256_cls = *vm.program().find_class(kSha256);
  const Ref ktab = h.new_array(ValueType::Int, 64);
  for (int k = 0; k < 64; ++k) {
    h.array_set(ktab, k,
                Value::make_int(static_cast<std::int32_t>(
                    kSha256K[static_cast<std::size_t>(k)])));
  }
  h.put_static(sha256_cls, *sha256_cls.static_slot("K"),
               Value::make_ref(ktab));
  std::array<std::uint32_t, 8> h2 = {0x6a09e667, 0xbb67ae85, 0x3c6ef372,
                                     0xa54ff53a, 0x510e527f, 0x9b05688c,
                                     0x1f83d9ab, 0x5be0cd19};
  const Ref harr = h.new_array(ValueType::Int, 8);
  for (int rounds = 0; rounds < 50; ++rounds) {
    for (int k = 0; k < 8; ++k) {
      h.array_set(harr, k,
                  Value::make_int(static_cast<std::int32_t>(
                      h2[static_cast<std::size_t>(k)])));
    }
    std::array<std::uint32_t, 16> m;
    for (int k = 0; k < 16; ++k) {
      s = s * 22695477u + 1u;
      m[static_cast<std::size_t>(k)] = s;
      h.array_set(block, k, Value::make_int(static_cast<std::int32_t>(s)));
    }
    const Value out =
        vm.invoke(std::string(kSha256) + ".sha(AA)A",
                  {Value::make_ref(harr), Value::make_ref(block)});
    h2 = host_sha256(h2, m);
    for (int k = 0; k < 8; ++k) {
      expect(static_cast<std::uint32_t>(
                 h.array_get(out.as_ref(), k).as_int()) ==
                 h2[static_cast<std::size_t>(k)],
             "Sha256 word");
    }
  }
}

}  // namespace

std::vector<Benchmark> make_crypto_benchmarks(Program& p) {
  build_mpn(p);
  build_mpn_addsub(p);
  build_sha160(p);
  build_sha256(p);
  return {{"crypto.signverify",
           "SpecJvm2008",
           {std::string(kMpn) + ".submul_1(AIAII)I",
            std::string(kSha160) + ".sha(IIIIIA)A",
            std::string(kSha256) + ".sha(AA)A",
            std::string(kMpn) + ".mul(AAIAI)V"},
           run_crypto}};
}

}  // namespace javaflow::workloads
