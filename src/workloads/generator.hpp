// Seeded random generator of verifier-valid ByteCode methods.
//
// The paper's population is ~1600 methods drawn from the SPEC class files
// plus their harnesses; our hand-written kernels cover the hot methods,
// and this generator supplies the long tail with the same structural
// discipline (stack empty at block boundaries, registers for loop-carried
// values) and a static mix steered toward the Table 6 conclusion row
// (60 % arith, 10 % float, 10 % control, 20 % storage).
//
// Generated methods are structurally analyzable and executable by the
// machine's predictor-driven simulation (which never interprets data),
// but are not run under the reference interpreter.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bytecode/method.hpp"

namespace javaflow::workloads {

struct GeneratorOptions {
  int target_size = 30;      // approximate linear instruction count
  int max_block_depth = 3;   // nesting of if/loop constructs
  double loop_weight = 0.16;
  double if_weight = 0.22;
  double merge_weight = 0.05;  // ternary-style forward dataflow merges
  // Callable helper methods (qualified names with the generator's
  // standard (IIADFJ)I signature); when non-empty, statements may emit
  // invokestatic sites, giving the corpus the Call-group population real
  // benchmark code has (GPP-serviced at execution, §6.3).
  std::vector<std::string> callables;
  double call_weight = 0.06;
};

// Generates one method. Deterministic in (seed, options). The method has
// been verified; throws only on internal generator bugs.
bytecode::Method generate_method(bytecode::Program& program,
                                 const std::string& name,
                                 const std::string& benchmark,
                                 std::uint64_t seed,
                                 const GeneratorOptions& options);

}  // namespace javaflow::workloads
