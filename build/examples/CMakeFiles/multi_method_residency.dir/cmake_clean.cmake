file(REMOVE_RECURSE
  "CMakeFiles/multi_method_residency.dir/multi_method_residency.cpp.o"
  "CMakeFiles/multi_method_residency.dir/multi_method_residency.cpp.o.d"
  "multi_method_residency"
  "multi_method_residency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_method_residency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
