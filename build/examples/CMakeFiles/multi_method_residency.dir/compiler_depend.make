# Empty compiler generated dependencies file for multi_method_residency.
# This may be replaced when dependencies are built.
