# Empty compiler generated dependencies file for fabric_anatomy.
# This may be replaced when dependencies are built.
