file(REMOVE_RECURSE
  "CMakeFiles/fabric_anatomy.dir/fabric_anatomy.cpp.o"
  "CMakeFiles/fabric_anatomy.dir/fabric_anatomy.cpp.o.d"
  "fabric_anatomy"
  "fabric_anatomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabric_anatomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
