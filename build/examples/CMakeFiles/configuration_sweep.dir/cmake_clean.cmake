file(REMOVE_RECURSE
  "CMakeFiles/configuration_sweep.dir/configuration_sweep.cpp.o"
  "CMakeFiles/configuration_sweep.dir/configuration_sweep.cpp.o.d"
  "configuration_sweep"
  "configuration_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/configuration_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
