# Empty dependencies file for configuration_sweep.
# This may be replaced when dependencies are built.
