# Empty dependencies file for jfasm_tool.
# This may be replaced when dependencies are built.
