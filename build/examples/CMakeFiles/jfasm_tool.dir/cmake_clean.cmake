file(REMOVE_RECURSE
  "CMakeFiles/jfasm_tool.dir/jfasm_tool.cpp.o"
  "CMakeFiles/jfasm_tool.dir/jfasm_tool.cpp.o.d"
  "jfasm_tool"
  "jfasm_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jfasm_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
