# Empty dependencies file for compress_workload.
# This may be replaced when dependencies are built.
