file(REMOVE_RECURSE
  "CMakeFiles/compress_workload.dir/compress_workload.cpp.o"
  "CMakeFiles/compress_workload.dir/compress_workload.cpp.o.d"
  "compress_workload"
  "compress_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compress_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
