file(REMOVE_RECURSE
  "CMakeFiles/test_fabric_manager.dir/test_fabric_manager.cpp.o"
  "CMakeFiles/test_fabric_manager.dir/test_fabric_manager.cpp.o.d"
  "test_fabric_manager"
  "test_fabric_manager.pdb"
  "test_fabric_manager[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fabric_manager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
