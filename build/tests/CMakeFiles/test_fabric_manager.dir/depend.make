# Empty dependencies file for test_fabric_manager.
# This may be replaced when dependencies are built.
