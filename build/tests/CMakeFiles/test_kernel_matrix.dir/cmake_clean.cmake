file(REMOVE_RECURSE
  "CMakeFiles/test_kernel_matrix.dir/test_kernel_matrix.cpp.o"
  "CMakeFiles/test_kernel_matrix.dir/test_kernel_matrix.cpp.o.d"
  "test_kernel_matrix"
  "test_kernel_matrix.pdb"
  "test_kernel_matrix[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernel_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
