file(REMOVE_RECURSE
  "CMakeFiles/test_corpus_execution.dir/test_corpus_execution.cpp.o"
  "CMakeFiles/test_corpus_execution.dir/test_corpus_execution.cpp.o.d"
  "test_corpus_execution"
  "test_corpus_execution.pdb"
  "test_corpus_execution[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_corpus_execution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
