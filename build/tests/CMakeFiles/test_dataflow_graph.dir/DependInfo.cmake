
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_dataflow_graph.cpp" "tests/CMakeFiles/test_dataflow_graph.dir/test_dataflow_graph.cpp.o" "gcc" "tests/CMakeFiles/test_dataflow_graph.dir/test_dataflow_graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/javaflow_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/javaflow_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/javaflow_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/javaflow_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/javaflow_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/javaflow_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/javaflow_jvm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/javaflow_bytecode.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
