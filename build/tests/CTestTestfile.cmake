# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_opcode[1]_include.cmake")
include("/root/repo/build/tests/test_assembler[1]_include.cmake")
include("/root/repo/build/tests/test_verifier[1]_include.cmake")
include("/root/repo/build/tests/test_interpreter[1]_include.cmake")
include("/root/repo/build/tests/test_networks[1]_include.cmake")
include("/root/repo/build/tests/test_fabric[1]_include.cmake")
include("/root/repo/build/tests/test_dataflow_graph[1]_include.cmake")
include("/root/repo/build/tests/test_resolver[1]_include.cmake")
include("/root/repo/build/tests/test_engine[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_corpus_execution[1]_include.cmake")
include("/root/repo/build/tests/test_fabric_manager[1]_include.cmake")
include("/root/repo/build/tests/test_folding[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_heap[1]_include.cmake")
include("/root/repo/build/tests/test_exceptions[1]_include.cmake")
include("/root/repo/build/tests/test_textio[1]_include.cmake")
include("/root/repo/build/tests/test_kernel_matrix[1]_include.cmake")
include("/root/repo/build/tests/test_printer[1]_include.cmake")
