file(REMOVE_RECURSE
  "CMakeFiles/ablation_idus.dir/bench/ablation_idus.cpp.o"
  "CMakeFiles/ablation_idus.dir/bench/ablation_idus.cpp.o.d"
  "bench/ablation_idus"
  "bench/ablation_idus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_idus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
