# Empty dependencies file for ablation_idus.
# This may be replaced when dependencies are built.
