# Empty dependencies file for fig21_resolution_example.
# This may be replaced when dependencies are built.
