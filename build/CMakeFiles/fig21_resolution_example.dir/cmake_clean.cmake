file(REMOVE_RECURSE
  "CMakeFiles/fig21_resolution_example.dir/bench/fig21_resolution_example.cpp.o"
  "CMakeFiles/fig21_resolution_example.dir/bench/fig21_resolution_example.cpp.o.d"
  "bench/fig21_resolution_example"
  "bench/fig21_resolution_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig21_resolution_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
