# Empty compiler generated dependencies file for table26_parallelism.
# This may be replaced when dependencies are built.
