file(REMOVE_RECURSE
  "CMakeFiles/table26_parallelism.dir/bench/table26_parallelism.cpp.o"
  "CMakeFiles/table26_parallelism.dir/bench/table26_parallelism.cpp.o.d"
  "bench/table26_parallelism"
  "bench/table26_parallelism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table26_parallelism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
