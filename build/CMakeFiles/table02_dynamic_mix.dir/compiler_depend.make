# Empty compiler generated dependencies file for table02_dynamic_mix.
# This may be replaced when dependencies are built.
