file(REMOVE_RECURSE
  "CMakeFiles/table02_dynamic_mix.dir/bench/table02_dynamic_mix.cpp.o"
  "CMakeFiles/table02_dynamic_mix.dir/bench/table02_dynamic_mix.cpp.o.d"
  "bench/table02_dynamic_mix"
  "bench/table02_dynamic_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table02_dynamic_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
