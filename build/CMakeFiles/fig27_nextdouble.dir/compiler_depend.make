# Empty compiler generated dependencies file for fig27_nextdouble.
# This may be replaced when dependencies are built.
