file(REMOVE_RECURSE
  "CMakeFiles/fig27_nextdouble.dir/bench/fig27_nextdouble.cpp.o"
  "CMakeFiles/fig27_nextdouble.dir/bench/fig27_nextdouble.cpp.o.d"
  "bench/fig27_nextdouble"
  "bench/fig27_nextdouble.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig27_nextdouble.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
