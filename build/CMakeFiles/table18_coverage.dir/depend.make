# Empty dependencies file for table18_coverage.
# This may be replaced when dependencies are built.
