file(REMOVE_RECURSE
  "CMakeFiles/table18_coverage.dir/bench/table18_coverage.cpp.o"
  "CMakeFiles/table18_coverage.dir/bench/table18_coverage.cpp.o.d"
  "bench/table18_coverage"
  "bench/table18_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table18_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
