file(REMOVE_RECURSE
  "CMakeFiles/ablation_trace.dir/bench/ablation_trace.cpp.o"
  "CMakeFiles/ablation_trace.dir/bench/ablation_trace.cpp.o.d"
  "bench/ablation_trace"
  "bench/ablation_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
