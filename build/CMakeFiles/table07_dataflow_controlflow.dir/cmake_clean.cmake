file(REMOVE_RECURSE
  "CMakeFiles/table07_dataflow_controlflow.dir/bench/table07_dataflow_controlflow.cpp.o"
  "CMakeFiles/table07_dataflow_controlflow.dir/bench/table07_dataflow_controlflow.cpp.o.d"
  "bench/table07_dataflow_controlflow"
  "bench/table07_dataflow_controlflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table07_dataflow_controlflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
