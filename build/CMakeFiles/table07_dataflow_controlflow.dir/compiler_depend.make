# Empty compiler generated dependencies file for table07_dataflow_controlflow.
# This may be replaced when dependencies are built.
