file(REMOVE_RECURSE
  "CMakeFiles/table06_static_mix.dir/bench/table06_static_mix.cpp.o"
  "CMakeFiles/table06_static_mix.dir/bench/table06_static_mix.cpp.o.d"
  "bench/table06_static_mix"
  "bench/table06_static_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table06_static_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
