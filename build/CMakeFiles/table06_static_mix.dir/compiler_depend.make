# Empty compiler generated dependencies file for table06_static_mix.
# This may be replaced when dependencies are built.
