file(REMOVE_RECURSE
  "CMakeFiles/table01_method_utilization.dir/bench/table01_method_utilization.cpp.o"
  "CMakeFiles/table01_method_utilization.dir/bench/table01_method_utilization.cpp.o.d"
  "bench/table01_method_utilization"
  "bench/table01_method_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table01_method_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
