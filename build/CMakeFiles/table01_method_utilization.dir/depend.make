# Empty dependencies file for table01_method_utilization.
# This may be replaced when dependencies are built.
