# Empty dependencies file for table09_dataflow_stats.
# This may be replaced when dependencies are built.
