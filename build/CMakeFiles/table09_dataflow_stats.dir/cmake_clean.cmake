file(REMOVE_RECURSE
  "CMakeFiles/table09_dataflow_stats.dir/bench/table09_dataflow_stats.cpp.o"
  "CMakeFiles/table09_dataflow_stats.dir/bench/table09_dataflow_stats.cpp.o.d"
  "bench/table09_dataflow_stats"
  "bench/table09_dataflow_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table09_dataflow_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
