file(REMOVE_RECURSE
  "CMakeFiles/ablation_folding.dir/bench/ablation_folding.cpp.o"
  "CMakeFiles/ablation_folding.dir/bench/ablation_folding.cpp.o.d"
  "bench/ablation_folding"
  "bench/ablation_folding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_folding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
