file(REMOVE_RECURSE
  "CMakeFiles/table27_top4_fom.dir/bench/table27_top4_fom.cpp.o"
  "CMakeFiles/table27_top4_fom.dir/bench/table27_top4_fom.cpp.o.d"
  "bench/table27_top4_fom"
  "bench/table27_top4_fom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table27_top4_fom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
