# Empty dependencies file for table27_top4_fom.
# This may be replaced when dependencies are built.
