file(REMOVE_RECURSE
  "CMakeFiles/table21_ipc_fom.dir/bench/table21_ipc_fom.cpp.o"
  "CMakeFiles/table21_ipc_fom.dir/bench/table21_ipc_fom.cpp.o.d"
  "bench/table21_ipc_fom"
  "bench/table21_ipc_fom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table21_ipc_fom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
