# Empty compiler generated dependencies file for table21_ipc_fom.
# This may be replaced when dependencies are built.
