
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fabric/dataflow_graph.cpp" "src/CMakeFiles/javaflow_fabric.dir/fabric/dataflow_graph.cpp.o" "gcc" "src/CMakeFiles/javaflow_fabric.dir/fabric/dataflow_graph.cpp.o.d"
  "/root/repo/src/fabric/fabric.cpp" "src/CMakeFiles/javaflow_fabric.dir/fabric/fabric.cpp.o" "gcc" "src/CMakeFiles/javaflow_fabric.dir/fabric/fabric.cpp.o.d"
  "/root/repo/src/fabric/folding.cpp" "src/CMakeFiles/javaflow_fabric.dir/fabric/folding.cpp.o" "gcc" "src/CMakeFiles/javaflow_fabric.dir/fabric/folding.cpp.o.d"
  "/root/repo/src/fabric/instruction_node.cpp" "src/CMakeFiles/javaflow_fabric.dir/fabric/instruction_node.cpp.o" "gcc" "src/CMakeFiles/javaflow_fabric.dir/fabric/instruction_node.cpp.o.d"
  "/root/repo/src/fabric/loader.cpp" "src/CMakeFiles/javaflow_fabric.dir/fabric/loader.cpp.o" "gcc" "src/CMakeFiles/javaflow_fabric.dir/fabric/loader.cpp.o.d"
  "/root/repo/src/fabric/resolver.cpp" "src/CMakeFiles/javaflow_fabric.dir/fabric/resolver.cpp.o" "gcc" "src/CMakeFiles/javaflow_fabric.dir/fabric/resolver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/javaflow_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/javaflow_bytecode.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
