file(REMOVE_RECURSE
  "libjavaflow_fabric.a"
)
