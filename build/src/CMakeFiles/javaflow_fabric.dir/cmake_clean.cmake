file(REMOVE_RECURSE
  "CMakeFiles/javaflow_fabric.dir/fabric/dataflow_graph.cpp.o"
  "CMakeFiles/javaflow_fabric.dir/fabric/dataflow_graph.cpp.o.d"
  "CMakeFiles/javaflow_fabric.dir/fabric/fabric.cpp.o"
  "CMakeFiles/javaflow_fabric.dir/fabric/fabric.cpp.o.d"
  "CMakeFiles/javaflow_fabric.dir/fabric/folding.cpp.o"
  "CMakeFiles/javaflow_fabric.dir/fabric/folding.cpp.o.d"
  "CMakeFiles/javaflow_fabric.dir/fabric/instruction_node.cpp.o"
  "CMakeFiles/javaflow_fabric.dir/fabric/instruction_node.cpp.o.d"
  "CMakeFiles/javaflow_fabric.dir/fabric/loader.cpp.o"
  "CMakeFiles/javaflow_fabric.dir/fabric/loader.cpp.o.d"
  "CMakeFiles/javaflow_fabric.dir/fabric/resolver.cpp.o"
  "CMakeFiles/javaflow_fabric.dir/fabric/resolver.cpp.o.d"
  "libjavaflow_fabric.a"
  "libjavaflow_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/javaflow_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
