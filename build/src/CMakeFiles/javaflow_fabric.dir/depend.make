# Empty dependencies file for javaflow_fabric.
# This may be replaced when dependencies are built.
