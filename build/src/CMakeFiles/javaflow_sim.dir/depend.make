# Empty dependencies file for javaflow_sim.
# This may be replaced when dependencies are built.
