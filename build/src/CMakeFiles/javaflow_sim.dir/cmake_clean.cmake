file(REMOVE_RECURSE
  "CMakeFiles/javaflow_sim.dir/sim/branch_predictor.cpp.o"
  "CMakeFiles/javaflow_sim.dir/sim/branch_predictor.cpp.o.d"
  "CMakeFiles/javaflow_sim.dir/sim/config.cpp.o"
  "CMakeFiles/javaflow_sim.dir/sim/config.cpp.o.d"
  "CMakeFiles/javaflow_sim.dir/sim/engine.cpp.o"
  "CMakeFiles/javaflow_sim.dir/sim/engine.cpp.o.d"
  "libjavaflow_sim.a"
  "libjavaflow_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/javaflow_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
