file(REMOVE_RECURSE
  "libjavaflow_sim.a"
)
