file(REMOVE_RECURSE
  "libjavaflow_net.a"
)
