file(REMOVE_RECURSE
  "CMakeFiles/javaflow_net.dir/net/message.cpp.o"
  "CMakeFiles/javaflow_net.dir/net/message.cpp.o.d"
  "libjavaflow_net.a"
  "libjavaflow_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/javaflow_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
