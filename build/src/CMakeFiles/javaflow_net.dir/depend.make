# Empty dependencies file for javaflow_net.
# This may be replaced when dependencies are built.
