# Empty compiler generated dependencies file for javaflow_jvm.
# This may be replaced when dependencies are built.
