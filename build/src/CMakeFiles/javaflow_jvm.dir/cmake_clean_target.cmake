file(REMOVE_RECURSE
  "libjavaflow_jvm.a"
)
