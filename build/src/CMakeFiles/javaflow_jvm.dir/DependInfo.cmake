
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/jvm/heap.cpp" "src/CMakeFiles/javaflow_jvm.dir/jvm/heap.cpp.o" "gcc" "src/CMakeFiles/javaflow_jvm.dir/jvm/heap.cpp.o.d"
  "/root/repo/src/jvm/interpreter.cpp" "src/CMakeFiles/javaflow_jvm.dir/jvm/interpreter.cpp.o" "gcc" "src/CMakeFiles/javaflow_jvm.dir/jvm/interpreter.cpp.o.d"
  "/root/repo/src/jvm/profiler.cpp" "src/CMakeFiles/javaflow_jvm.dir/jvm/profiler.cpp.o" "gcc" "src/CMakeFiles/javaflow_jvm.dir/jvm/profiler.cpp.o.d"
  "/root/repo/src/jvm/value.cpp" "src/CMakeFiles/javaflow_jvm.dir/jvm/value.cpp.o" "gcc" "src/CMakeFiles/javaflow_jvm.dir/jvm/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/javaflow_bytecode.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
