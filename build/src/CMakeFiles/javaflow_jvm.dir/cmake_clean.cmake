file(REMOVE_RECURSE
  "CMakeFiles/javaflow_jvm.dir/jvm/heap.cpp.o"
  "CMakeFiles/javaflow_jvm.dir/jvm/heap.cpp.o.d"
  "CMakeFiles/javaflow_jvm.dir/jvm/interpreter.cpp.o"
  "CMakeFiles/javaflow_jvm.dir/jvm/interpreter.cpp.o.d"
  "CMakeFiles/javaflow_jvm.dir/jvm/profiler.cpp.o"
  "CMakeFiles/javaflow_jvm.dir/jvm/profiler.cpp.o.d"
  "CMakeFiles/javaflow_jvm.dir/jvm/value.cpp.o"
  "CMakeFiles/javaflow_jvm.dir/jvm/value.cpp.o.d"
  "libjavaflow_jvm.a"
  "libjavaflow_jvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/javaflow_jvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
