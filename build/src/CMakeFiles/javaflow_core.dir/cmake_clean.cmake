file(REMOVE_RECURSE
  "CMakeFiles/javaflow_core.dir/core/fabric_manager.cpp.o"
  "CMakeFiles/javaflow_core.dir/core/fabric_manager.cpp.o.d"
  "CMakeFiles/javaflow_core.dir/core/javaflow.cpp.o"
  "CMakeFiles/javaflow_core.dir/core/javaflow.cpp.o.d"
  "libjavaflow_core.a"
  "libjavaflow_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/javaflow_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
