file(REMOVE_RECURSE
  "libjavaflow_core.a"
)
