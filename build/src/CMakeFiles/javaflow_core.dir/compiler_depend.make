# Empty compiler generated dependencies file for javaflow_core.
# This may be replaced when dependencies are built.
