file(REMOVE_RECURSE
  "libjavaflow_analysis.a"
)
