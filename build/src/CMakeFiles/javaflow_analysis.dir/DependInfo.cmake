
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/dataflow_analysis.cpp" "src/CMakeFiles/javaflow_analysis.dir/analysis/dataflow_analysis.cpp.o" "gcc" "src/CMakeFiles/javaflow_analysis.dir/analysis/dataflow_analysis.cpp.o.d"
  "/root/repo/src/analysis/figure_of_merit.cpp" "src/CMakeFiles/javaflow_analysis.dir/analysis/figure_of_merit.cpp.o" "gcc" "src/CMakeFiles/javaflow_analysis.dir/analysis/figure_of_merit.cpp.o.d"
  "/root/repo/src/analysis/mix.cpp" "src/CMakeFiles/javaflow_analysis.dir/analysis/mix.cpp.o" "gcc" "src/CMakeFiles/javaflow_analysis.dir/analysis/mix.cpp.o.d"
  "/root/repo/src/analysis/report.cpp" "src/CMakeFiles/javaflow_analysis.dir/analysis/report.cpp.o" "gcc" "src/CMakeFiles/javaflow_analysis.dir/analysis/report.cpp.o.d"
  "/root/repo/src/analysis/stats.cpp" "src/CMakeFiles/javaflow_analysis.dir/analysis/stats.cpp.o" "gcc" "src/CMakeFiles/javaflow_analysis.dir/analysis/stats.cpp.o.d"
  "/root/repo/src/analysis/trace.cpp" "src/CMakeFiles/javaflow_analysis.dir/analysis/trace.cpp.o" "gcc" "src/CMakeFiles/javaflow_analysis.dir/analysis/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/javaflow_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/javaflow_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/javaflow_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/javaflow_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/javaflow_jvm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/javaflow_bytecode.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
