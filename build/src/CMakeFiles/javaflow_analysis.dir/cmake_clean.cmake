file(REMOVE_RECURSE
  "CMakeFiles/javaflow_analysis.dir/analysis/dataflow_analysis.cpp.o"
  "CMakeFiles/javaflow_analysis.dir/analysis/dataflow_analysis.cpp.o.d"
  "CMakeFiles/javaflow_analysis.dir/analysis/figure_of_merit.cpp.o"
  "CMakeFiles/javaflow_analysis.dir/analysis/figure_of_merit.cpp.o.d"
  "CMakeFiles/javaflow_analysis.dir/analysis/mix.cpp.o"
  "CMakeFiles/javaflow_analysis.dir/analysis/mix.cpp.o.d"
  "CMakeFiles/javaflow_analysis.dir/analysis/report.cpp.o"
  "CMakeFiles/javaflow_analysis.dir/analysis/report.cpp.o.d"
  "CMakeFiles/javaflow_analysis.dir/analysis/stats.cpp.o"
  "CMakeFiles/javaflow_analysis.dir/analysis/stats.cpp.o.d"
  "CMakeFiles/javaflow_analysis.dir/analysis/trace.cpp.o"
  "CMakeFiles/javaflow_analysis.dir/analysis/trace.cpp.o.d"
  "libjavaflow_analysis.a"
  "libjavaflow_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/javaflow_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
