# Empty compiler generated dependencies file for javaflow_analysis.
# This may be replaced when dependencies are built.
