
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bytecode/assembler.cpp" "src/CMakeFiles/javaflow_bytecode.dir/bytecode/assembler.cpp.o" "gcc" "src/CMakeFiles/javaflow_bytecode.dir/bytecode/assembler.cpp.o.d"
  "/root/repo/src/bytecode/method.cpp" "src/CMakeFiles/javaflow_bytecode.dir/bytecode/method.cpp.o" "gcc" "src/CMakeFiles/javaflow_bytecode.dir/bytecode/method.cpp.o.d"
  "/root/repo/src/bytecode/opcode.cpp" "src/CMakeFiles/javaflow_bytecode.dir/bytecode/opcode.cpp.o" "gcc" "src/CMakeFiles/javaflow_bytecode.dir/bytecode/opcode.cpp.o.d"
  "/root/repo/src/bytecode/printer.cpp" "src/CMakeFiles/javaflow_bytecode.dir/bytecode/printer.cpp.o" "gcc" "src/CMakeFiles/javaflow_bytecode.dir/bytecode/printer.cpp.o.d"
  "/root/repo/src/bytecode/textio.cpp" "src/CMakeFiles/javaflow_bytecode.dir/bytecode/textio.cpp.o" "gcc" "src/CMakeFiles/javaflow_bytecode.dir/bytecode/textio.cpp.o.d"
  "/root/repo/src/bytecode/verifier.cpp" "src/CMakeFiles/javaflow_bytecode.dir/bytecode/verifier.cpp.o" "gcc" "src/CMakeFiles/javaflow_bytecode.dir/bytecode/verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
