file(REMOVE_RECURSE
  "CMakeFiles/javaflow_bytecode.dir/bytecode/assembler.cpp.o"
  "CMakeFiles/javaflow_bytecode.dir/bytecode/assembler.cpp.o.d"
  "CMakeFiles/javaflow_bytecode.dir/bytecode/method.cpp.o"
  "CMakeFiles/javaflow_bytecode.dir/bytecode/method.cpp.o.d"
  "CMakeFiles/javaflow_bytecode.dir/bytecode/opcode.cpp.o"
  "CMakeFiles/javaflow_bytecode.dir/bytecode/opcode.cpp.o.d"
  "CMakeFiles/javaflow_bytecode.dir/bytecode/printer.cpp.o"
  "CMakeFiles/javaflow_bytecode.dir/bytecode/printer.cpp.o.d"
  "CMakeFiles/javaflow_bytecode.dir/bytecode/textio.cpp.o"
  "CMakeFiles/javaflow_bytecode.dir/bytecode/textio.cpp.o.d"
  "CMakeFiles/javaflow_bytecode.dir/bytecode/verifier.cpp.o"
  "CMakeFiles/javaflow_bytecode.dir/bytecode/verifier.cpp.o.d"
  "libjavaflow_bytecode.a"
  "libjavaflow_bytecode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/javaflow_bytecode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
