file(REMOVE_RECURSE
  "libjavaflow_bytecode.a"
)
