# Empty dependencies file for javaflow_bytecode.
# This may be replaced when dependencies are built.
