
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/corpus.cpp" "src/CMakeFiles/javaflow_workloads.dir/workloads/corpus.cpp.o" "gcc" "src/CMakeFiles/javaflow_workloads.dir/workloads/corpus.cpp.o.d"
  "/root/repo/src/workloads/generator.cpp" "src/CMakeFiles/javaflow_workloads.dir/workloads/generator.cpp.o" "gcc" "src/CMakeFiles/javaflow_workloads.dir/workloads/generator.cpp.o.d"
  "/root/repo/src/workloads/kernels_compress.cpp" "src/CMakeFiles/javaflow_workloads.dir/workloads/kernels_compress.cpp.o" "gcc" "src/CMakeFiles/javaflow_workloads.dir/workloads/kernels_compress.cpp.o.d"
  "/root/repo/src/workloads/kernels_crypto.cpp" "src/CMakeFiles/javaflow_workloads.dir/workloads/kernels_crypto.cpp.o" "gcc" "src/CMakeFiles/javaflow_workloads.dir/workloads/kernels_crypto.cpp.o.d"
  "/root/repo/src/workloads/kernels_jvm98.cpp" "src/CMakeFiles/javaflow_workloads.dir/workloads/kernels_jvm98.cpp.o" "gcc" "src/CMakeFiles/javaflow_workloads.dir/workloads/kernels_jvm98.cpp.o.d"
  "/root/repo/src/workloads/kernels_mpegaudio.cpp" "src/CMakeFiles/javaflow_workloads.dir/workloads/kernels_mpegaudio.cpp.o" "gcc" "src/CMakeFiles/javaflow_workloads.dir/workloads/kernels_mpegaudio.cpp.o.d"
  "/root/repo/src/workloads/kernels_scimark.cpp" "src/CMakeFiles/javaflow_workloads.dir/workloads/kernels_scimark.cpp.o" "gcc" "src/CMakeFiles/javaflow_workloads.dir/workloads/kernels_scimark.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/javaflow_jvm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/javaflow_bytecode.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
