file(REMOVE_RECURSE
  "CMakeFiles/javaflow_workloads.dir/workloads/corpus.cpp.o"
  "CMakeFiles/javaflow_workloads.dir/workloads/corpus.cpp.o.d"
  "CMakeFiles/javaflow_workloads.dir/workloads/generator.cpp.o"
  "CMakeFiles/javaflow_workloads.dir/workloads/generator.cpp.o.d"
  "CMakeFiles/javaflow_workloads.dir/workloads/kernels_compress.cpp.o"
  "CMakeFiles/javaflow_workloads.dir/workloads/kernels_compress.cpp.o.d"
  "CMakeFiles/javaflow_workloads.dir/workloads/kernels_crypto.cpp.o"
  "CMakeFiles/javaflow_workloads.dir/workloads/kernels_crypto.cpp.o.d"
  "CMakeFiles/javaflow_workloads.dir/workloads/kernels_jvm98.cpp.o"
  "CMakeFiles/javaflow_workloads.dir/workloads/kernels_jvm98.cpp.o.d"
  "CMakeFiles/javaflow_workloads.dir/workloads/kernels_mpegaudio.cpp.o"
  "CMakeFiles/javaflow_workloads.dir/workloads/kernels_mpegaudio.cpp.o.d"
  "CMakeFiles/javaflow_workloads.dir/workloads/kernels_scimark.cpp.o"
  "CMakeFiles/javaflow_workloads.dir/workloads/kernels_scimark.cpp.o.d"
  "libjavaflow_workloads.a"
  "libjavaflow_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/javaflow_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
