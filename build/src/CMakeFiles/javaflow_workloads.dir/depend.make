# Empty dependencies file for javaflow_workloads.
# This may be replaced when dependencies are built.
