file(REMOVE_RECURSE
  "libjavaflow_workloads.a"
)
