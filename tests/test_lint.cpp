// Fabric lint tests: each rule id must fire on a hand-crafted malformed
// artifact (graph corruption, bad placement, capacity/fan-out overrun),
// the clean cases must stay silent, and the full 1605-method corpus must
// lint clean on every Table 15 configuration.
#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/figure_of_merit.hpp"
#include "analysis/lint.hpp"
#include "bytecode/assembler.hpp"
#include "bytecode/verifier.hpp"
#include "fabric/dataflow_graph.hpp"
#include "fabric/loader.hpp"
#include "sim/config.hpp"
#include "workloads/corpus.hpp"

namespace javaflow::analysis {
namespace {

using bytecode::Assembler;
using bytecode::Op;
using bytecode::Program;
using bytecode::ValueType;
using fabric::DataflowGraph;
using fabric::Edge;

// Straight-line arithmetic: iconst, iconst, iadd, ireturn.
bytecode::Method straight_line(Program& p) {
  Assembler a(p, "lint.straight()I", "test");
  a.returns(ValueType::Int);
  a.iconst(2).iconst(3).op(Op::iadd).op(Op::ireturn);
  return a.build();
}

// Accumulating loop whose backward branch ifgt@6 -> 0 spans [0, 6]; the
// serial token bundle re-arms every node in that interval each iteration.
bytecode::Method counting_loop(Program& p) {
  Assembler a(p, "lint.loop(I)I", "test");
  a.args({ValueType::Int}).returns(ValueType::Int);
  auto body = a.new_label();
  a.bind(body);
  a.iload(0).iload(0).op(Op::iadd);  // 0,1,2
  a.istore(1);                       // 3
  a.iinc(0, -1);                     // 4
  a.iload(0).ifgt(body);             // 5,6
  a.iload(1).op(Op::ireturn);        // 7,8
  return a.build();
}

struct Built {
  bytecode::Method method;
  bytecode::VerifyResult vr;
  DataflowGraph graph;
};

Built build(Program& p, bytecode::Method m) {
  Built b;
  b.method = std::move(m);
  b.vr = bytecode::verify(b.method, p.pool);
  EXPECT_TRUE(b.vr.ok) << b.vr.error;
  b.graph = fabric::build_dataflow_graph(b.method, p.pool);
  return b;
}

// Re-derives consumers_of from edges so corruptions stay consistent
// between the two views (inconsistency is its own rule, JF-E002).
void reindex(DataflowGraph& g, std::size_t n) {
  g.consumers_of.assign(n, {});
  for (const Edge& e : g.edges) {
    g.consumers_of[static_cast<std::size_t>(e.producer)].push_back(e);
  }
}

TEST(LintRules, CleanMethodProducesNoFindings) {
  Program p;
  const Built b = build(p, straight_line(p));
  LintReport report;
  lint_graph(b.method, p.pool, b.vr, b.graph, {}, report);
  EXPECT_TRUE(report.clean());
  EXPECT_TRUE(report.findings.empty()) << to_text(report);
  EXPECT_EQ(report.methods_linted, 1u);
}

TEST(LintRules, DanglingProducerTriggersE001) {
  Program p;
  Built b = build(p, straight_line(p));
  // Drop every edge feeding iadd@2 side 1: the pop can never resolve.
  std::erase_if(b.graph.edges, [](const Edge& e) {
    return e.consumer == 2 && e.side == 1;
  });
  reindex(b.graph, b.method.code.size());
  LintReport report;
  lint_graph(b.method, p.pool, b.vr, b.graph, {}, report);
  ASSERT_TRUE(report.has(LintRule::DanglingEdge)) << to_text(report);
  EXPECT_FALSE(report.clean());
  const auto& f = report.findings.front();
  EXPECT_EQ(lint_rule_id(f.rule), "JF-E001");
  EXPECT_EQ(f.severity, LintSeverity::Error);
  EXPECT_EQ(f.pc, 2);
}

TEST(LintRules, EdgeOutOfRangeTriggersE001) {
  Program p;
  Built b = build(p, straight_line(p));
  Edge bogus;
  bogus.producer = 99;  // beyond the 4-instruction method
  bogus.consumer = 2;
  bogus.side = 1;
  b.graph.edges.push_back(bogus);
  LintReport report;
  lint_graph(b.method, p.pool, b.vr, b.graph, {}, report);
  EXPECT_TRUE(report.has(LintRule::DanglingEdge)) << to_text(report);
}

TEST(LintRules, DuplicateEdgeTriggersE002) {
  Program p;
  Built b = build(p, straight_line(p));
  b.graph.edges.push_back(b.graph.edges.front());
  reindex(b.graph, b.method.code.size());
  LintReport report;
  lint_graph(b.method, p.pool, b.vr, b.graph, {}, report);
  EXPECT_TRUE(report.has(LintRule::InconsistentEdge)) << to_text(report);
  EXPECT_FALSE(report.clean());
}

TEST(LintRules, ConsumerArrayDisagreementTriggersE002) {
  Program p;
  Built b = build(p, straight_line(p));
  // Corrupt only the per-producer index, not the edge list.
  b.graph.consumers_of[0].clear();
  LintReport report;
  lint_graph(b.method, p.pool, b.vr, b.graph, {}, report);
  EXPECT_TRUE(report.has(LintRule::InconsistentEdge)) << to_text(report);
}

TEST(LintRules, OperandCountMismatchTriggersE003) {
  Program p;
  Built b = build(p, straight_line(p));
  b.method.code[2].pop = 3;  // iadd pops 2 by signature
  LintReport report;
  lint_graph(b.method, p.pool, b.vr, b.graph, {}, report);
  ASSERT_TRUE(report.has(LintRule::OperandMismatch)) << to_text(report);
  EXPECT_FALSE(report.clean());
}

TEST(LintRules, OperandTypeMismatchTriggersE003) {
  Program p;
  Built b = build(p, straight_line(p));
  // Claim the entry stack of iadd@2 holds a float on top: the signature
  // (II>I) disagrees with the verifier-recorded operand typing.
  b.vr.entry_stack[2][1] = ValueType::Float;
  LintReport report;
  lint_graph(b.method, p.pool, b.vr, b.graph, {}, report);
  EXPECT_TRUE(report.has(LintRule::OperandMismatch)) << to_text(report);
}

TEST(LintRules, UntokenizedCycleTriggersE004) {
  Program p;
  Built b = build(p, straight_line(p));
  // A back edge with no backward control transfer anywhere: the consumer
  // waits on an operand produced only after it fires. Deadlock.
  Edge back;
  back.producer = 2;
  back.consumer = 1;
  back.side = 1;
  back.back = true;
  b.graph.edges.push_back(back);
  reindex(b.graph, b.method.code.size());
  LintReport report;
  lint_graph(b.method, p.pool, b.vr, b.graph, {}, report);
  EXPECT_TRUE(report.has(LintRule::UntokenizedCycle)) << to_text(report);
  EXPECT_FALSE(report.clean());
}

TEST(LintRules, TokenCoveredBackEdgeOnlyWarnsW101) {
  Program p;
  Built b = build(p, counting_loop(p));
  // Back edge iload@5 -> istore@3 inside the loop interval [0, 6]: the
  // token bundle re-arms it each iteration, so it is executable — but
  // §5.4 says valid Java never produces one, hence the warning.
  Edge back;
  back.producer = 5;
  back.consumer = 3;
  back.side = 1;
  back.back = true;
  back.merge = true;  // istore side 1 now has two producers
  b.graph.edges.push_back(back);
  for (Edge& e : b.graph.edges) {
    if (e.consumer == 3 && e.side == 1) e.merge = true;
  }
  reindex(b.graph, b.method.code.size());
  LintReport report;
  lint_graph(b.method, p.pool, b.vr, b.graph, {}, report);
  EXPECT_FALSE(report.has(LintRule::UntokenizedCycle)) << to_text(report);
  EXPECT_TRUE(report.has(LintRule::BackEdge));
  EXPECT_TRUE(report.clean());  // warning severity does not fail
  EXPECT_GT(report.warnings, 0);
}

TEST(LintRules, CapacityOverflowTriggersE005) {
  Program p;
  Built b = build(p, straight_line(p));  // max_stack == 2
  LintOptions options;
  options.node_buffer_capacity = 1;
  LintReport report;
  lint_graph(b.method, p.pool, b.vr, b.graph, options, report);
  ASSERT_TRUE(report.has(LintRule::CapacityOverflow)) << to_text(report);
  EXPECT_EQ(lint_rule_id(LintRule::CapacityOverflow), "JF-E005");
}

TEST(LintRules, FanoutOverflowTriggersE006) {
  Program p;
  Assembler a(p, "lint.fan()I", "test");
  a.returns(ValueType::Int);
  a.iconst(3);        // 0: feeds both imul sides via dup
  a.op(Op::dup);      // 1: fan-out 2
  a.op(Op::imul);     // 2
  a.op(Op::ireturn);  // 3
  Built b = build(p, a.build());
  LintOptions options;
  options.mesh_fanout_limit = 1;
  LintReport report;
  lint_graph(b.method, p.pool, b.vr, b.graph, options, report);
  ASSERT_TRUE(report.has(LintRule::FanoutOverflow)) << to_text(report);
  EXPECT_EQ(report.findings.front().pc, 1);
}

TEST(LintRules, UnplacedReachableNodeTriggersE007) {
  Program p;
  Built b = build(p, straight_line(p));
  const fabric::Fabric f(sim::config_by_name("Compact2").fabric_options());
  fabric::Placement placement = fabric::load_method(f, b.method);
  ASSERT_TRUE(placement.fits);
  placement.slot_of[2] = -1;  // un-place the iadd
  LintReport report;
  lint_placement(b.method, f, placement, b.vr, {}, report);
  ASSERT_TRUE(report.has(LintRule::UnplacedNode)) << to_text(report);
  EXPECT_EQ(report.findings.front().pc, 2);
}

TEST(LintRules, NodeBudgetMissTriggersE007) {
  Program p;
  Built b = build(p, straight_line(p));
  sim::MachineConfig config = sim::config_by_name("Compact2");
  config.capacity = 2;  // 4 instructions cannot fit
  const fabric::Fabric f(config.fabric_options());
  const fabric::Placement placement = fabric::load_method(f, b.method);
  ASSERT_FALSE(placement.fits);
  LintReport report;
  lint_placement(b.method, f, placement, b.vr, {}, report);
  EXPECT_TRUE(report.has(LintRule::UnplacedNode)) << to_text(report);
}

TEST(LintRules, SlotTypeMismatchTriggersE007) {
  Program p;
  Built b = build(p, straight_line(p));
  // On the Sparse layout odd chain slots are blank (router-only) nodes;
  // forcing an instruction onto one is an illegal placement.
  const fabric::Fabric f(sim::config_by_name("Sparse2").fabric_options());
  fabric::Placement placement = fabric::load_method(f, b.method);
  ASSERT_TRUE(placement.fits);
  ASSERT_FALSE(f.slot_accepts(1, bytecode::NodeType::Arithmetic));
  placement.slot_of[2] = 1;
  LintReport report;
  lint_placement(b.method, f, placement, b.vr, {}, report);
  EXPECT_TRUE(report.has(LintRule::UnplacedNode)) << to_text(report);
}

TEST(LintRules, DuplicateSlotAssignmentTriggersE007) {
  Program p;
  Built b = build(p, straight_line(p));
  const fabric::Fabric f(sim::config_by_name("Compact2").fabric_options());
  fabric::Placement placement = fabric::load_method(f, b.method);
  placement.slot_of[2] = placement.slot_of[1];
  LintReport report;
  lint_placement(b.method, f, placement, b.vr, {}, report);
  EXPECT_TRUE(report.has(LintRule::UnplacedNode)) << to_text(report);
}

TEST(LintRules, UnreachableCodeWarnsW102) {
  Program p;
  Assembler a(p, "lint.dead()I", "test");
  a.returns(ValueType::Int);
  auto over = a.new_label();
  a.goto_(over);      // 0
  a.op(Op::nop);      // 1: never reached
  a.bind(over);
  a.iconst(1).op(Op::ireturn);  // 2,3
  Built b = build(p, a.build());
  LintReport report;
  lint_graph(b.method, p.pool, b.vr, b.graph, {}, report);
  ASSERT_TRUE(report.has(LintRule::UnreachableCode)) << to_text(report);
  EXPECT_TRUE(report.clean());
  LintOptions no_warn;
  no_warn.warnings = false;
  LintReport silent;
  lint_graph(b.method, p.pool, b.vr, b.graph, no_warn, silent);
  EXPECT_TRUE(silent.findings.empty()) << to_text(silent);
}

TEST(LintRules, EveryRuleIdIsUniqueAndStable) {
  const LintRule all[] = {
      LintRule::DanglingEdge,     LintRule::InconsistentEdge,
      LintRule::OperandMismatch,  LintRule::UntokenizedCycle,
      LintRule::CapacityOverflow, LintRule::FanoutOverflow,
      LintRule::UnplacedNode,     LintRule::BackEdge,
      LintRule::UnreachableCode,  LintRule::BufferBoundOverflow,
      LintRule::TokenDeadlock,    LintRule::BoundViolation,
      LintRule::BoundUnproven,
  };
  std::vector<std::string_view> ids;
  for (const LintRule r : all) {
    ids.push_back(lint_rule_id(r));
    const bool is_error = lint_rule_id(r)[3] == 'E';
    EXPECT_EQ(lint_rule_severity(r) == LintSeverity::Error, is_error)
        << lint_rule_id(r);
  }
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::unique(ids.begin(), ids.end()), ids.end());
}

TEST(LintReportRendering, TextAndJsonCarryRuleIds) {
  Program p;
  Built b = build(p, straight_line(p));
  std::erase_if(b.graph.edges, [](const Edge& e) {
    return e.consumer == 2 && e.side == 1;
  });
  reindex(b.graph, b.method.code.size());
  LintReport report;
  lint_graph(b.method, p.pool, b.vr, b.graph, {}, report);
  ASSERT_FALSE(report.clean());
  const std::string text = to_text(report);
  EXPECT_NE(text.find("JF-E001"), std::string::npos) << text;
  EXPECT_NE(text.find("lint.straight()I"), std::string::npos) << text;
  const std::string json = to_json(report);
  EXPECT_NE(json.find("\"rule\":\"JF-E001\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"errors\":"), std::string::npos) << json;
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(LintMethod, ComposesAllLayers) {
  Program p;
  const bytecode::Method m = straight_line(p);
  const LintReport report =
      lint_method(m, p.pool, sim::config_by_name("Hetero2"));
  EXPECT_TRUE(report.clean()) << to_text(report);
  EXPECT_EQ(report.methods_linted, 1u);
  EXPECT_EQ(report.placements_linted, 1u);
}

// ---- corpus-wide acceptance: the shipped corpus must lint clean ----

TEST(LintCorpus, FullCorpusLintsCleanOnEveryConfiguration) {
  const workloads::Corpus corpus = workloads::make_corpus({});
  const LintReport report =
      lint_corpus(corpus.program, sim::table15_configs(), {}, /*threads=*/0);
  EXPECT_EQ(report.errors, 0) << to_text(report);
  EXPECT_EQ(report.warnings, 0) << to_text(report);
  EXPECT_EQ(report.methods_linted, corpus.program.methods.size());
  EXPECT_EQ(report.placements_linted,
            corpus.program.methods.size() * 6);
}

TEST(LintCorpus, ParallelAndSerialReportsAgree) {
  workloads::CorpusOptions options;
  options.total_methods = 120;
  const workloads::Corpus corpus = workloads::make_corpus(options);
  const std::vector<sim::MachineConfig> configs = {
      sim::config_by_name("Compact2")};
  const LintReport serial =
      lint_corpus(corpus.program, configs, {}, /*threads=*/1);
  const LintReport parallel =
      lint_corpus(corpus.program, configs, {}, /*threads=*/4);
  EXPECT_EQ(serial.findings, parallel.findings);
  EXPECT_EQ(serial.errors, parallel.errors);
  EXPECT_EQ(serial.warnings, parallel.warnings);
}

// ---- sweep debug mode ----

TEST(SweepLint, DebugModeLintsEveryGraphBeforeExecuting) {
  workloads::CorpusOptions corpus_options;
  corpus_options.total_methods = 0;  // kernels only
  const workloads::Corpus corpus = workloads::make_corpus(corpus_options);
  std::vector<const bytecode::Method*> methods;
  for (const auto& m : corpus.program.methods) methods.push_back(&m);

  SweepOptions options;
  options.configs = {sim::config_by_name("Baseline"),
                     sim::config_by_name("Compact2")};
  options.scenarios = {sim::BranchPredictor::Scenario::BP1};
  options.stride = 7;
  options.lint = true;
  const Sweep sweep =
      run_sweep(methods, corpus.program.pool, {}, options);
  EXPECT_EQ(sweep.lint_errors, 0) << to_text(LintReport{
      sweep.lint_findings, sweep.lint_errors, sweep.lint_warnings, 0, 0});
  EXPECT_TRUE(sweep.lint_findings.empty());
  EXPECT_FALSE(sweep.samples.empty());

  // Off by default: no lint work, no findings.
  options.lint = false;
  const Sweep plain =
      run_sweep(methods, corpus.program.pool, {}, options);
  EXPECT_TRUE(plain.lint_findings.empty());
  EXPECT_EQ(plain.samples.size(), sweep.samples.size());
}

}  // namespace
}  // namespace javaflow::analysis
